package main

// The serve-load and serve-smoke modes turn sptbench into the load
// generator of the sptd daemon: they drive the HTTP API through the typed
// spt/client package and verify that served results are bit-identical to
// the one-shot local pipeline, that duplicate requests coalesce into one
// underlying simulation (cache-hit metric), and that a full queue answers
// with correct 429 backpressure.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/arch"
	"repro/internal/harness"
	"repro/internal/service"
	"repro/spt/client"
)

// localExpectation runs the benchmark through the local (one-shot) pipeline
// and flattens it exactly the way the daemon does: the comparison below is
// therefore field-by-field over the same RunStats shape.
func localExpectation(benchName string, scale int) (*client.SimulateResponse, error) {
	run, err := harness.RunBenchmark(benchName, scale, arch.DefaultConfig())
	if err != nil {
		return nil, err
	}
	return &client.SimulateResponse{
		Benchmark: benchName,
		Scale:     scale,
		Baseline:  service.Summarize(run.Baseline),
		SPT:       service.Summarize(run.SPT),
		Speedup:   run.Speedup(),
	}, nil
}

// sameSim compares a served response against the local expectation,
// ignoring the job id (every response carries a fresh one).
func sameSim(got, want *client.SimulateResponse) bool {
	return got.Benchmark == want.Benchmark &&
		got.Scale == want.Scale &&
		got.Baseline == want.Baseline &&
		got.SPT == want.SPT &&
		got.Speedup == want.Speedup
}

// cacheCounters extracts the coalescing-relevant samples from a /metrics
// scrape.
func cacheCounters(metrics string) (hits, misses float64) {
	hits, _ = client.MetricValue(metrics, "sptd_cache_hits_total")
	misses, _ = client.MetricValue(metrics, "sptd_cache_misses_total")
	return hits, misses
}

// runServeLoad drives `requests` identical simulate requests at
// `concurrency` against the daemon at url. 429s are retried after the
// server's Retry-After (that is the backpressure contract); any other
// failure, any panicked 500 and any non-identical result is fatal.
// It returns the process exit code.
func runServeLoad(url, benchName string, scale, requests, concurrency int) int {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	cl := client.New(url, nil)

	if _, err := cl.Health(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "sptbench: serve-load: daemon not healthy: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "serve-load: computing local expectation for %s scale %d...\n", benchName, scale)
	want, err := localExpectation(benchName, scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sptbench: serve-load: local pipeline: %v\n", err)
		return 1
	}
	m0, err := cl.Metrics(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sptbench: serve-load: metrics: %v\n", err)
		return 1
	}
	hits0, misses0 := cacheCounters(m0)

	req := client.SimulateRequest{Benchmark: benchName, Scale: scale}
	var (
		ok, rejected, mismatches, panicked, hardErrors atomic.Int64
		firstErr                                       atomic.Value
	)
	sem := make(chan struct{}, concurrency)
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			for {
				resp, err := cl.Simulate(ctx, req)
				if err == nil {
					if sameSim(resp, want) {
						ok.Add(1)
					} else {
						mismatches.Add(1)
						firstErr.CompareAndSwap(nil, fmt.Sprintf("result mismatch: got %+v want %+v", resp, want))
					}
					return
				}
				var ae *client.APIError
				if errors.As(err, &ae) && ae.Body.Panicked {
					panicked.Add(1)
					firstErr.CompareAndSwap(nil, "panicked response: "+ae.Error())
					return
				}
				if client.IsBackpressure(err) {
					// The contract: a 429/503 carries Retry-After; back off
					// and resubmit. Count each shed request once.
					rejected.Add(1)
					delay := time.Second
					if errors.As(err, &ae) && ae.RetryAfterSeconds > 0 {
						delay = time.Duration(ae.RetryAfterSeconds) * time.Second
					}
					select {
					case <-ctx.Done():
						hardErrors.Add(1)
						firstErr.CompareAndSwap(nil, "timed out retrying backpressure")
						return
					case <-time.After(delay):
						continue
					}
				}
				hardErrors.Add(1)
				firstErr.CompareAndSwap(nil, err.Error())
				return
			}
		}()
	}
	wg.Wait()

	m1, err := cl.Metrics(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sptbench: serve-load: metrics after: %v\n", err)
		return 1
	}
	hits1, misses1 := cacheCounters(m1)
	hitsDelta, missesDelta := hits1-hits0, misses1-misses0

	fmt.Printf("serve-load: %d requests (%d concurrent) against %s\n", requests, concurrency, url)
	fmt.Printf("  ok %d  backpressure-retries %d  mismatches %d  panics %d  errors %d\n",
		ok.Load(), rejected.Load(), mismatches.Load(), panicked.Load(), hardErrors.Load())
	fmt.Printf("  cache: +%g hits, +%g misses (coalesced %d identical requests into %g computations)\n",
		hitsDelta, missesDelta, ok.Load(), missesDelta)

	failed := false
	if ok.Load() != int64(requests) {
		failed = true
	}
	// One (program, config) point means a handful of artifact computations
	// no matter how many clients asked: anything more means coalescing is
	// broken. (program + compile + baseline + SPT simulation, plus slack.)
	if missesDelta > 8 {
		failed = true
		fmt.Fprintf(os.Stderr, "sptbench: serve-load: %g cache misses for one request point; duplicates were not coalesced\n", missesDelta)
	}
	if hitsDelta <= 0 {
		failed = true
		fmt.Fprintln(os.Stderr, "sptbench: serve-load: no cache hits recorded; duplicates were not coalesced")
	}
	if msg := firstErr.Load(); msg != nil {
		fmt.Fprintf(os.Stderr, "sptbench: serve-load: first failure: %s\n", msg)
	}
	if failed {
		return 1
	}
	fmt.Println("serve-load: PASS (all responses bit-identical to the local pipeline)")
	return 0
}

// runServeSmoke is the CI smoke: one compile, one simulate (verified
// bit-identical to the local pipeline), a concurrent duplicate pair
// (verified coalesced via the cache-hit counter), and one async job driven
// through the polling API. It returns the process exit code.
func runServeSmoke(url, benchName string, scale int) int {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	cl := client.New(url, nil)
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "sptbench: serve-smoke: "+format+"\n", args...)
		return 1
	}

	h, err := cl.Health(ctx)
	if err != nil {
		return fail("daemon not healthy: %v", err)
	}
	fmt.Printf("serve-smoke: daemon up (%d workers, queue depth %d)\n", h.Workers, h.QueueDepth)

	// 1. Compile.
	cres, err := cl.Compile(ctx, client.CompileRequest{Benchmark: benchName, Scale: scale})
	if err != nil {
		return fail("compile: %v", err)
	}
	if cres.Fingerprint == "" || len(cres.Loops) == 0 {
		return fail("compile response incomplete: %+v", cres)
	}
	fmt.Printf("serve-smoke: compile ok (job %s, %d loops, %d selected)\n", cres.JobID, len(cres.Loops), cres.SelectedLoops)

	// 2. Simulate, verified bit-identical against the local pipeline.
	want, err := localExpectation(benchName, scale)
	if err != nil {
		return fail("local pipeline: %v", err)
	}
	sres, err := cl.Simulate(ctx, client.SimulateRequest{Benchmark: benchName, Scale: scale})
	if err != nil {
		return fail("simulate: %v", err)
	}
	if !sameSim(sres, want) {
		return fail("simulate result differs from local pipeline:\n  got  %+v\n  want %+v", sres, want)
	}
	fmt.Printf("serve-smoke: simulate ok (speedup %.3fx, bit-identical to local run)\n", sres.Speedup)

	// 3. Concurrent duplicate pair: both must succeed with identical
	// results, and the cache-hit counter must rise (the second request was
	// served from the first's computation).
	m0, err := cl.Metrics(ctx)
	if err != nil {
		return fail("metrics: %v", err)
	}
	hits0, _ := cacheCounters(m0)
	var pair [2]*client.SimulateResponse
	var perr [2]error
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pair[i], perr[i] = cl.Simulate(ctx, client.SimulateRequest{Benchmark: benchName, Scale: scale})
		}(i)
	}
	wg.Wait()
	for i := 0; i < 2; i++ {
		if perr[i] != nil {
			return fail("duplicate request %d: %v", i, perr[i])
		}
		if !sameSim(pair[i], want) {
			return fail("duplicate request %d differs from local pipeline", i)
		}
	}
	m1, err := cl.Metrics(ctx)
	if err != nil {
		return fail("metrics after pair: %v", err)
	}
	hits1, _ := cacheCounters(m1)
	if hits1 <= hits0 {
		return fail("cache hits did not rise across the duplicate pair (%g -> %g); coalescing broken", hits0, hits1)
	}
	fmt.Printf("serve-smoke: duplicate pair coalesced (cache hits %g -> %g)\n", hits0, hits1)

	// 4. Async submission through the polling API.
	ares, err := cl.Simulate(ctx, client.SimulateRequest{
		Benchmark:  benchName,
		Scale:      scale,
		JobRequest: client.JobRequest{Async: true, Priority: client.PriorityHigh},
	})
	if err != nil {
		return fail("async submit: %v", err)
	}
	js, err := cl.Wait(ctx, ares.JobID, 0)
	if err != nil {
		return fail("async wait: %v", err)
	}
	if js.Outcome != client.OutcomeOK {
		return fail("async job outcome %q: %+v", js.Outcome, js.Error)
	}
	var async client.SimulateResponse
	if err := js.DecodeResult(&async); err != nil {
		return fail("async decode: %v", err)
	}
	if !sameSim(&async, want) {
		return fail("async result differs from local pipeline")
	}
	fmt.Printf("serve-smoke: async job %s ok\n", ares.JobID)
	fmt.Println("serve-smoke: PASS")
	return 0
}
