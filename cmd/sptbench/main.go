// Command sptbench regenerates the paper's evaluation (Section 5): Table 1,
// Figures 6–9, the Figure 1 parser-loop statistics, and the Table 1
// ablations (recovery mechanism, register checker, SRB size).
//
// Usage:
//
//	sptbench -all              # everything (default)
//	sptbench -table1 -fig9     # selected artifacts
//	sptbench -scale 2          # larger derived input sets
//	sptbench -fig9 -timeout 60s -retries 1
//	sptbench -all -cpuprofile cpu.out -memprofile mem.out
//
//	sptbench -serve-smoke http://127.0.0.1:8750   # end-to-end sptd check
//	sptbench -serve-load  http://127.0.0.1:8750 -load-requests 200 -load-concurrency 100
//
// The serve modes drive a running sptd daemon through spt/client: the
// smoke exercises compile, simulate (bit-identical to a local run), a
// coalesced duplicate pair and an async job; the load generator hammers
// one simulate point concurrently and verifies backpressure (429 +
// Retry-After) and coalescing via the daemon's cache metrics.
//
// The benchmark sweep runs under the guarded harness: -timeout, -budget
// and -cycles bound each stage, -retries reruns budget-exceeded
// benchmarks at reduced scale, and one benchmark's failure never takes
// down the suite — figures are printed for the benchmarks that completed,
// a JSON failure report goes to stdout, and sptbench exits non-zero.
//
// Every figure and ablation shares one artifact cache, so a full run
// generates, compiles, and simulates each distinct (program,
// configuration) point exactly once; the ablation sweeps and coverage
// curves run concurrently under the harness work-slot semaphore with
// deterministic output ordering.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"

	"repro/internal/arch"
	"repro/internal/artifact"
	"repro/internal/bench"
	"repro/internal/guard"
	"repro/internal/harness"
)

func main() {
	var (
		scale      = flag.Int("scale", 1, "workload scale (the paper's derived input sets)")
		all        = flag.Bool("all", false, "produce every table and figure")
		table1     = flag.Bool("table1", false, "Table 1: machine configuration")
		fig1       = flag.Bool("fig1", false, "Figure 1: the parser list-free loop")
		fig6       = flag.Bool("fig6", false, "Figure 6: loop coverage vs body size")
		fig7       = flag.Bool("fig7", false, "Figure 7: SPT loop number and coverage")
		fig8       = flag.Bool("fig8", false, "Figure 8: SPT loop performance")
		fig9       = flag.Bool("fig9", false, "Figure 9: program speedup breakdown")
		ablate     = flag.Bool("ablate", false, "Table 1 ablations (recovery / reg check / SRB)")
		timeout    = flag.Duration("timeout", 0, "wall-clock budget per benchmark stage (0 = unlimited)")
		steps      = flag.Int64("budget", 0, "architectural step budget per simulation (0 = unlimited)")
		cycles     = flag.Int64("cycles", 0, "cycle budget per simulation (0 = unlimited)")
		retries    = flag.Int("retries", 0, "rerun budget-exceeded benchmarks at halved scale up to this many times")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file at exit")
		traceStats = flag.Bool("trace-cache", false, "print recording-cache statistics (hits/misses/bytes/evictions) to stderr after the run")
		traceBytes = flag.Int64("trace-bytes", 0, "byte bound for cached trace recordings (LRU-evicted; 0 = unbounded)")

		serveLoad       = flag.String("serve-load", "", "URL of a running sptd: drive a concurrent simulate load through spt/client, verifying bit-identical results, 429 backpressure and cache coalescing")
		serveSmoke      = flag.String("serve-smoke", "", "URL of a running sptd: one compile + one simulate + a duplicate pair + an async job, asserting cache coalescing")
		loadRequests    = flag.Int("load-requests", 200, "serve-load: total simulate requests")
		loadConcurrency = flag.Int("load-concurrency", 100, "serve-load: concurrent in-flight requests")
		loadBench       = flag.String("load-bench", "parser", "serve-load / serve-smoke / chaos-soak: benchmark to request")

		chaosSoak    = flag.Bool("chaos-soak", false, "run the fault-injection soak: start sptd under a seeded chaos plan, drive durable async jobs, SIGKILL + restart mid-run, require bit-identical convergence")
		clusterSoak  = flag.Bool("cluster-soak", false, "run the node-killing cluster soak: 3 sptd nodes with tiered stores and work stealing, SIGKILL one mid-run, require zero lost jobs and a zero-recompute warm restart")
		sptdBin      = flag.String("sptd-bin", "", "chaos-soak: path to the sptd binary to launch")
		soakRequests = flag.Int("soak-requests", 24, "chaos-soak: async jobs per phase")
		soakSeed     = flag.Int64("chaos-seed", 1, "chaos-soak: seed for the daemon's built-in fault plan")
		soakDir      = flag.String("soak-dir", "", "chaos-soak: work dir for journals and metrics snapshots (empty = temp dir)")
	)
	flag.Parse()
	if *chaosSoak {
		os.Exit(runChaosSoak(*sptdBin, *loadBench, *scale, *soakRequests, *soakSeed, *soakDir))
	}
	if *clusterSoak {
		os.Exit(runClusterSoak(*sptdBin, *scale, *soakRequests, *soakDir))
	}
	if *serveSmoke != "" {
		os.Exit(runServeSmoke(*serveSmoke, *loadBench, *scale))
	}
	if *serveLoad != "" {
		os.Exit(runServeLoad(*serveLoad, *loadBench, *scale, *loadRequests, *loadConcurrency))
	}
	if !(*table1 || *fig1 || *fig6 || *fig7 || *fig8 || *fig9 || *ablate) {
		*all = true
	}
	if *all {
		*table1, *fig1, *fig6, *fig7, *fig8, *fig9, *ablate = true, true, true, true, true, true, true
	}
	if err := startProfiles(*cpuprofile, *memprofile); err != nil {
		fmt.Fprintln(os.Stderr, "sptbench:", err)
		os.Exit(1)
	}

	cfg := arch.DefaultConfig()
	cache := artifact.NewBoundedBytes(0, *traceBytes)
	opts := harness.GuardOptions{
		Budget: guard.Budget{
			Timeout: *timeout, Steps: *steps, Cycles: *cycles, Retries: *retries,
		},
		Artifacts: cache,
	}

	if *table1 {
		printTable1(cfg)
	}
	if *fig6 {
		printFig6(*scale, cache)
	}

	var runs []*harness.BenchRun
	var rep *harness.Report
	if *fig7 || *fig8 || *fig9 {
		fmt.Fprintf(os.Stderr, "evaluating %d benchmarks at scale %d...\n", len(bench.Names()), *scale)
		rep = harness.RunAllGuarded(context.Background(), *scale, cfg, opts)
		runs = rep.Successes()
		for _, se := range rep.Failures {
			fmt.Fprintf(os.Stderr, "sptbench: %v (continuing with the rest)\n", se)
		}
	}
	if *fig7 {
		printFig7(runs)
	}
	if *fig8 {
		printFig8(runs)
	}
	if *fig9 {
		printFig9(runs)
	}
	if *fig1 {
		printFig1(*scale, cache)
	}
	sweepFailed := false
	if *ablate {
		sweepFailed = printAblations(*scale, opts)
	}
	if *traceStats {
		printTraceCacheStats(cache)
	}
	if rep != nil && len(rep.Failures) > 0 {
		emitFailureReport(*scale, rep)
		exit(1)
	}
	if sweepFailed {
		exit(1)
	}
	exit(0)
}

// ---- profiling ----

var profState struct {
	cpu     *os.File
	memPath string
	once    sync.Once
}

// startProfiles begins CPU profiling and records where to write the heap
// profile at exit. Empty paths disable the respective profile.
func startProfiles(cpuPath, memPath string) error {
	profState.memPath = memPath
	if cpuPath == "" {
		return nil
	}
	f, err := os.Create(cpuPath)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return err
	}
	profState.cpu = f
	return nil
}

// stopProfiles finalizes the requested profiles; it is safe to call on
// every exit path.
func stopProfiles() {
	profState.once.Do(func() {
		if profState.cpu != nil {
			pprof.StopCPUProfile()
			profState.cpu.Close()
		}
		if profState.memPath != "" {
			f, err := os.Create(profState.memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sptbench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "sptbench:", err)
			}
		}
	})
}

// exit flushes the profiles and terminates with the given status.
func exit(code int) {
	stopProfiles()
	os.Exit(code)
}

// printTraceCacheStats reports how the shared recording cache behaved:
// each miss is one interpreter pass, each hit is a simulation that fed
// from a replayed trace instead of re-interpreting the program.
func printTraceCacheStats(cache *artifact.Cache) {
	st := cache.Stats()
	fmt.Fprintf(os.Stderr,
		"trace cache: %d recordings interpreted, %d simulations replayed, %d bytes resident, %d evicted (%d integrity)\n",
		st.RecordingMisses, st.RecordingHits, st.Bytes, st.Evictions, st.IntegrityEvictions)
}

// ---- output ----

// emitFailureReport writes the partial-results JSON record for a degraded
// sweep: which benchmarks completed, and a structured entry per failure.
func emitFailureReport(scale int, rep *harness.Report) {
	type failure struct {
		Benchmark      string `json:"benchmark"`
		Stage          string `json:"stage"`
		Error          string `json:"error"`
		BudgetExceeded bool   `json:"budget_exceeded"`
		Panicked       bool   `json:"panicked,omitempty"`
	}
	out := struct {
		Scale     int       `json:"scale"`
		Completed []string  `json:"completed"`
		Failures  []failure `json:"failures"`
	}{Scale: scale}
	for _, run := range rep.Successes() {
		out.Completed = append(out.Completed, run.Name)
	}
	for _, se := range rep.Failures {
		out.Failures = append(out.Failures, failure{
			Benchmark:      se.Benchmark,
			Stage:          se.Stage,
			Error:          se.Err.Error(),
			BudgetExceeded: guard.Exceeded(se),
			Panicked:       se.Panicked,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	_ = enc.Encode(out)
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sptbench:", err)
		exit(1)
	}
}

func header(title string) {
	fmt.Printf("\n%s\n%s\n", title, strings.Repeat("-", len(title)))
}

func printTable1(cfg arch.Config) {
	header("Table 1: Default machine configuration")
	for _, row := range harness.Table1(cfg) {
		fmt.Printf("  %-36s %s\n", row[0], row[1])
	}
}

func printFig6(scale int, cache *artifact.Cache) {
	header("Figure 6: Accumulative loop coverage vs loop body size")
	fmt.Printf("  %-8s", "size<=")
	for _, lim := range harness.Fig6SizeLimits {
		fmt.Printf(" %8.0f", lim)
	}
	fmt.Println()
	// Profile the benchmarks concurrently, print in name order.
	names := bench.Names()
	curves := make([][]harness.CoveragePoint, len(names))
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			curves[i], errs[i] = harness.LoopCoverageCached(name, scale, cache)
		}(i, name)
	}
	wg.Wait()
	for i, name := range names {
		die(errs[i])
		fmt.Printf("  %-8s", name)
		for _, p := range curves[i] {
			fmt.Printf(" %7.1f%%", 100*p.Coverage)
		}
		fmt.Println()
	}
}

func printFig7(runs []*harness.BenchRun) {
	header("Figure 7: SPT loop number and coverage")
	fmt.Printf("  %-8s %10s %14s %14s\n", "bench", "#SPT loops", "max coverage", "SPT coverage")
	var loops int
	var maxCov, sptCov float64
	for _, r := range runs {
		row := harness.Fig7(r)
		fmt.Printf("  %-8s %10d %13.1f%% %13.1f%%\n",
			row.Name, row.NumSPTLoops, 100*row.MaxCoverage, 100*row.SPTCoverage)
		loops += row.NumSPTLoops
		maxCov += row.MaxCoverage
		sptCov += row.SPTCoverage
	}
	if n := float64(len(runs)); n > 0 {
		fmt.Printf("  %-8s %10.1f %13.1f%% %13.1f%%\n", "Average",
			float64(loops)/n, 100*maxCov/n, 100*sptCov/n)
	}
}

func printFig8(runs []*harness.BenchRun) {
	header("Figure 8: SPT loop performance")
	fmt.Printf("  %-8s %14s %14s %14s\n", "bench", "loop speedup", "fast-commit", "misspec ratio")
	var spd, fc, ms float64
	var n float64
	for _, r := range runs {
		row := harness.Fig8(r)
		if row.LoopsMeasured == 0 {
			fmt.Printf("  %-8s %14s %14s %14s\n", row.Name, "-", "-", "-")
			continue
		}
		fmt.Printf("  %-8s %13.1f%% %13.1f%% %13.2f%%\n",
			row.Name, 100*(row.LoopSpeedup-1), 100*row.FastCommitRatio, 100*row.MisspecRatio)
		spd += row.LoopSpeedup
		fc += row.FastCommitRatio
		ms += row.MisspecRatio
		n++
	}
	if n > 0 {
		fmt.Printf("  %-8s %13.1f%% %13.1f%% %13.2f%%\n", "Average",
			100*(spd/n-1), 100*fc/n, 100*ms/n)
	}
}

func printFig9(runs []*harness.BenchRun) {
	header("Figure 9: Program speedup (execution / pipeline-stall / d-cache-stall breakdown)")
	fmt.Printf("  %-8s %9s %9s %9s %9s\n", "bench", "speedup", "exec", "pipe", "dcache")
	var rows []harness.Fig9Row
	for _, r := range runs {
		row := harness.Fig9(r)
		rows = append(rows, row)
		fmt.Printf("  %-8s %8.1f%% %8.1f%% %8.1f%% %8.1f%%\n",
			row.Name, 100*(row.Speedup-1), 100*row.ExecPart, 100*row.PipePart, 100*row.DcachePart)
	}
	avg := harness.Average(rows)
	fmt.Printf("  %-8s %8.1f%% %8.1f%% %8.1f%% %8.1f%%\n",
		"Average", 100*(avg.Speedup-1), 100*avg.ExecPart, 100*avg.PipePart, 100*avg.DcachePart)
	fmt.Println("  (paper: 15.6% average = 8.4% execution + 1.7% pipeline stalls + 5.5% d-cache stalls)")
}

func printFig1(scale int, cache *artifact.Cache) {
	header("Figure 1: the parser list-free loop")
	st, err := harness.Fig1ParserCached(scale, cache)
	die(err)
	fmt.Printf("  loop speedup     %6.1f%%   (paper: >40%%)\n", 100*(st.LoopSpeedup-1))
	fmt.Printf("  fast-commit      %6.1f%%   (paper: ~20%% of threads perfectly parallel)\n", 100*st.FastCommitRatio)
	fmt.Printf("  misspeculated    %6.2f%%   (paper: ~5%% of speculative instructions invalid)\n", 100*st.MisspecRatio)
	fmt.Printf("  windows          %6d\n", st.Windows)
}

// sweepJob is one ablation sweep: a benchmark, its variants, and the row
// format its group prints with.
type sweepJob struct {
	name     string
	variants []harness.Variant
	format   string
}

// printAblations runs every ablation sweep concurrently (the per-variant
// evaluations inside each sweep fan out further under the harness work
// semaphore) and prints the rows in the fixed historical order. It reports
// whether any sweep failed; completed rows are printed either way.
func printAblations(scale int, opts harness.GuardOptions) (failed bool) {
	header("Ablations (Table 1 'default' knobs)")
	var jobs []sweepJob
	for _, name := range []string{"parser", "mcf", "gcc"} {
		jobs = append(jobs, sweepJob{name, harness.RecoveryVariants(), "  %-8s recovery=%-45s speedup %6.1f%%\n"})
	}
	for _, name := range []string{"parser", "mcf"} {
		jobs = append(jobs, sweepJob{name, harness.RegCheckVariants(), "  %-8s regcheck=%-44s speedup %6.1f%%\n"})
	}
	jobs = append(jobs,
		sweepJob{"parser", harness.SRBVariants([]int{16, 64, 256, 1024}), "  %-8s %-53s speedup %6.1f%%\n"},
		sweepJob{"parser", harness.OverheadVariants([]int{1, 4, 16}), "  %-8s %-53s speedup %6.1f%%\n"},
		sweepJob{"parser", harness.CoresVariants([]int{2, 4, 8}), "  %-8s %-53s speedup %6.1f%%\n"},
		sweepJob{"parser", harness.SchedVariants(4, []int{2, 4}), "  %-8s %-53s speedup %6.1f%%\n"},
	)
	rows := make([][]harness.AblationRow, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j sweepJob) {
			defer wg.Done()
			rows[i], errs[i] = harness.Sweep(context.Background(), j.name, scale, j.variants, opts)
		}(i, j)
	}
	wg.Wait()
	for i, j := range jobs {
		for _, r := range rows[i] {
			if r.Err != nil {
				// A failed variant keeps its row: the table shows exactly
				// which configuration died while the siblings' numbers stand.
				fmt.Printf("  %-8s %-53s ERROR: %v\n", r.Name, r.Variant, r.Err)
				continue
			}
			fmt.Printf(j.format, r.Name, r.Variant, 100*(r.Speedup-1))
		}
		if errs[i] != nil {
			failed = true
			fmt.Fprintf(os.Stderr, "sptbench: ablation %s: %v (continuing with the rest)\n", j.name, errs[i])
		}
	}
	return failed
}
