package main

// The cluster-soak mode is the node-killing endurance run of the sharded
// serving stack: it starts THREE sptd nodes sharing a journal root and
// per-node tiered stores, drives durable async jobs through the
// consistent-hash cluster client, SIGKILLs one node mid-run and leaves it
// dead — the survivors must detect the death, steal the victim's journal,
// adopt its jobs, and every accepted job must still converge to a result
// bit-identical to the fault-free local pipeline, with zero lost and zero
// divergent duplicates. Three more phases then exercise the replication
// and membership layers: the victim's store dir is DELETED and the two
// survivors alone must serve every result from RF=2 replicas with zero
// recomputations; a fourth node -joins by gossip and must take traffic
// within two gossip intervals; and a full two-way partition between the
// survivors must heal with zero false deaths (the joined node vouches for
// both sides via indirect probes).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/spt/client"
)

// clusterSoakBenches spreads route keys over the ring: the route key is
// (benchmark, scale), so using several benchmarks shards the work across
// nodes instead of funneling everything to one owner.
var clusterSoakBenches = []string{"parser", "mcf", "gzip"}

// clusterSoakGossipInterval is the soak's gossip round cadence: fast enough
// that a kill is detected well inside the soak's polling, slow enough that
// an instrumented build's handler latency does not fake a death.
const clusterSoakGossipInterval = 250 * time.Millisecond

// clusterNode manages one member daemon of the soak cluster.
type clusterNode struct {
	name, addr, bin string
	clusterSpec     string // static member list ("" when joining by gossip)
	joinSeed        string // seed URL for the -join path
	journalRoot     string
	storeDir        string
	cmd             *exec.Cmd
	dead            bool
}

func (n *clusterNode) start(ctx context.Context) error {
	args := []string{
		"-addr", n.addr,
		"-node-id", n.name,
		"-cluster-journal-root", n.journalRoot,
		"-store-dir", n.storeDir,
		"-gossip-interval", clusterSoakGossipInterval.String(),
		"-heartbeat-misses", "3",
		"-anti-entropy-interval", "250ms",
		// The partition-heal phase drives POST /v1/gossip/block; the hook is
		// compiled out of routing unless explicitly enabled.
		"-cluster-test-hooks",
		"-workers", "2",
		"-max-attempts", "8",
		"-drain-timeout", "30s",
	}
	if n.joinSeed != "" {
		args = append(args, "-join", n.joinSeed, "-advertise", "http://"+n.addr)
	} else {
		args = append(args, "-cluster", n.clusterSpec)
	}
	cmd := exec.Command(n.bin, args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("start node %s: %w", n.name, err)
	}
	n.cmd = cmd
	n.dead = false
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) && ctx.Err() == nil {
		resp, err := http.Get("http://" + n.addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("node %s on %s did not become healthy", n.name, n.addr)
}

// kill SIGKILLs the node — the failure mode the stealing protocol exists
// for. The node is NOT restarted; the survivors must absorb its work.
func (n *clusterNode) kill() {
	if n.cmd != nil && n.cmd.Process != nil {
		_ = n.cmd.Process.Signal(syscall.SIGKILL)
		_, _ = n.cmd.Process.Wait()
	}
	n.dead = true
}

// stop SIGTERMs for a graceful drain at phase end.
func (n *clusterNode) stop() {
	if n.dead || n.cmd == nil || n.cmd.Process == nil {
		return
	}
	_ = n.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan struct{})
	go func() { _, _ = n.cmd.Process.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(45 * time.Second):
		_ = n.cmd.Process.Kill()
		<-done
	}
	n.dead = true
}

// scrape fetches the node's /metrics text.
func (n *clusterNode) scrape() (string, error) {
	resp, err := http.Get("http://" + n.addr + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

// soakClusterView is the slice of GET /v1/cluster the soak asserts on.
type soakClusterView struct {
	Self               string   `json:"self"`
	Stolen             []string `json:"stolen"`
	StoreDegraded      bool     `json:"store_degraded"`
	ReplicationPending int      `json:"replication_pending"`
	Gossip             []struct {
		Name        string `json:"name"`
		State       string `json:"state"`
		Incarnation uint64 `json:"incarnation"`
	} `json:"gossip"`
}

// view fetches and decodes the node's /v1/cluster membership view.
func (n *clusterNode) view() (*soakClusterView, error) {
	resp, err := http.Get("http://" + n.addr + "/v1/cluster")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var v soakClusterView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return nil, err
	}
	return &v, nil
}

// stolenPeers returns which dead peers' journals the node has adopted.
func (n *clusterNode) stolenPeers() ([]string, error) {
	v, err := n.view()
	if err != nil {
		return nil, err
	}
	return v.Stolen, nil
}

// gossipState returns the state the node's view assigns to member name
// ("" when the member is unknown to it).
func (v *soakClusterView) gossipState(name string) string {
	for _, g := range v.Gossip {
		if g.Name == name {
			return g.State
		}
	}
	return ""
}

// setBlocked drives the node's partition test hook against one peer.
func (n *clusterNode) setBlocked(peer string, inbound, outbound bool) error {
	body := fmt.Sprintf(`{"peer":%q,"inbound":%v,"outbound":%v}`, peer, inbound, outbound)
	resp, err := http.Post("http://"+n.addr+"/v1/gossip/block", "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("block hook on %s: status %d", n.name, resp.StatusCode)
	}
	return nil
}

// snapshotMetrics writes every live node's /metrics to the work dir (the
// CI uploads these, plus the journals, on failure).
func snapshotMetrics(nodes []*clusterNode, workDir, phase string) {
	for _, n := range nodes {
		if n.dead {
			continue
		}
		m, err := n.scrape()
		if err != nil {
			continue
		}
		path := filepath.Join(workDir, fmt.Sprintf("%s-%s-metrics.txt", phase, n.name))
		_ = os.WriteFile(path, []byte(m), 0o644)
	}
}

// clusterSoakJob is one unit of soak work with its precomputed expectation.
type clusterSoakJob struct {
	req  client.SimulateRequest
	want *client.SimulateResponse
	key  string // ring route key
	id   string
	node string // node that accepted the submission
}

// runClusterSoak is the -cluster-soak entry point; returns the exit code.
func runClusterSoak(bin string, scale, requests int, workDir string) int {
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "sptbench: cluster-soak: "+format+"\n", args...)
		return 1
	}
	if bin == "" {
		return fail("-sptd-bin is required")
	}
	if workDir == "" {
		dir, err := os.MkdirTemp("", "cluster-soak-")
		if err != nil {
			return fail("temp dir: %v", err)
		}
		workDir = dir
	}
	if err := os.MkdirAll(workDir, 0o755); err != nil {
		return fail("work dir: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Minute)
	defer cancel()

	// Work set: distinct (benchmark, SRB) simulate points. Distinct SRBs
	// keep every job a distinct simulation (no cache hit can hide a lost
	// job); the benchmark rotation spreads route keys over the ring.
	jobs := make([]*clusterSoakJob, requests)
	expErrs := make([]error, requests)
	fmt.Fprintf(os.Stderr, "cluster-soak: computing %d fault-free expectations locally...\n", requests)
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		req := client.SimulateRequest{
			Benchmark:  clusterSoakBenches[i%len(clusterSoakBenches)],
			Scale:      scale,
			SRB:        soakSRB(i),
			JobRequest: client.JobRequest{Async: true},
		}
		jobs[i] = &clusterSoakJob{req: req, key: client.RouteKey(req.Benchmark, req.Scale)}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			jobs[i].want, expErrs[i] = soakExpectation(jobs[i].req)
		}(i)
	}
	wg.Wait()
	for i, err := range expErrs {
		if err != nil {
			return fail("local expectation (%s srb=%d): %v", jobs[i].req.Benchmark, jobs[i].req.SRB, err)
		}
	}

	// Three nodes, one shared journal root, per-node store dirs.
	names := []string{"n1", "n2", "n3"}
	members := make(map[string]string, len(names))
	nodes := make([]*clusterNode, len(names))
	journalRoot := filepath.Join(workDir, "journals")
	spec := ""
	for i, name := range names {
		addr, err := soakFreeAddr()
		if err != nil {
			return fail("listen: %v", err)
		}
		members[name] = "http://" + addr
		if spec != "" {
			spec += ","
		}
		spec += name + "=http://" + addr
		nodes[i] = &clusterNode{
			name: name, addr: addr, bin: bin,
			journalRoot: journalRoot,
			storeDir:    filepath.Join(workDir, "store", name),
		}
	}
	for _, n := range nodes {
		n.clusterSpec = spec
	}
	startAll := func() error {
		for _, n := range nodes {
			if err := n.start(ctx); err != nil {
				return err
			}
		}
		return nil
	}
	stopAll := func() {
		for _, n := range nodes {
			n.stop()
		}
	}

	fmt.Fprintf(os.Stderr, "cluster-soak: phase kill: 3 nodes, %d jobs, SIGKILL mid-run\n", requests)
	if err := startAll(); err != nil {
		return fail("%v", err)
	}
	cl := client.NewCluster(members, client.ClusterConfig{
		Resilient: client.ResilientConfig{
			MaxAttempts: 6,
			Seed:        1,
			Backoff:     client.Backoff{Base: 20 * time.Millisecond, Max: 250 * time.Millisecond},
		},
	})

	killBegin := time.Now()
	latencies := make([]time.Duration, requests)
	for i, job := range jobs {
		sub, node, err := cl.Simulate(ctx, job.req)
		if err != nil {
			stopAll()
			return fail("submit job %d: %v", i, err)
		}
		if sub.JobID == "" {
			stopAll()
			return fail("submit job %d: no id", i)
		}
		job.id, job.node = sub.JobID, node
	}

	// Pick the victim: the node that accepted the most submissions — the
	// one whose journal the survivors must steal.
	accepted := map[string]int{}
	for _, job := range jobs {
		accepted[job.node]++
	}
	victim := nodes[0]
	for _, n := range nodes {
		if accepted[n.name] > accepted[victim.name] {
			victim = n
		}
	}

	var done atomic.Int64
	finished := make([]*client.JobStatus, requests)
	waitErrs := make([]error, requests)
	submitted := time.Now()
	for i, job := range jobs {
		wg.Add(1)
		go func(i int, job *clusterSoakJob) {
			defer wg.Done()
			js, err := cl.WaitAnywhere(ctx, job.key, job.id, 40*time.Millisecond)
			finished[i], waitErrs[i] = js, err
			latencies[i] = time.Since(submitted)
			done.Add(1)
		}(i, job)
	}

	// Let a few jobs finish (their journaled results must survive the
	// kill), then SIGKILL the victim and leave it dead.
	killDeadline := time.Now().Add(2 * time.Minute)
	for done.Load() < 2 && time.Now().Before(killDeadline) {
		time.Sleep(2 * time.Millisecond)
	}
	fmt.Fprintf(os.Stderr, "cluster-soak: SIGKILL %s (accepted %d/%d jobs) after %d done\n",
		victim.name, accepted[victim.name], requests, done.Load())
	victim.kill()
	wg.Wait()
	killWall := time.Since(killBegin)

	// Zero lost: every job converged OK and bit-identical to the fault-free
	// pipeline.
	for i, err := range waitErrs {
		if err != nil {
			snapshotMetrics(nodes, workDir, "kill")
			stopAll()
			return fail("job %s (%s srb=%d) did not converge: %v", jobs[i].id, jobs[i].req.Benchmark, jobs[i].req.SRB, err)
		}
		js := finished[i]
		if js.Outcome != client.OutcomeOK {
			snapshotMetrics(nodes, workDir, "kill")
			stopAll()
			return fail("job %s outcome %q (err %+v)", jobs[i].id, js.Outcome, js.Error)
		}
		var got client.SimulateResponse
		if err := js.DecodeResult(&got); err != nil {
			stopAll()
			return fail("decode job %s: %v", jobs[i].id, err)
		}
		if !sameSim(&got, jobs[i].want) {
			snapshotMetrics(nodes, workDir, "kill")
			stopAll()
			return fail("job %s (%s srb=%d) diverged from fault-free pipeline:\n  got  %+v\n  want %+v",
				jobs[i].id, jobs[i].req.Benchmark, jobs[i].req.SRB, got, *jobs[i].want)
		}
	}

	// Zero divergent duplicates: a job adopted after the kill may be
	// pollable on several nodes (the adopter serves the dead node's ids);
	// every holder must report byte-identical results.
	for _, job := range jobs {
		js, holders, err := cl.JobAnywhere(ctx, job.key, job.id)
		if err != nil {
			stopAll()
			return fail("job %s vanished after convergence: %v", job.id, err)
		}
		first := js.Result
		for _, holder := range holders[1:] {
			hjs, err := cl.Node(holder).Job(ctx, job.id)
			if err != nil {
				continue
			}
			if !bytes.Equal(first, hjs.Result) {
				stopAll()
				return fail("job %s duplicated with divergent results across %v", job.id, holders)
			}
		}
	}

	// The machinery must demonstrably have engaged: exactly one survivor
	// stole the victim's journal, and the client-side breaker opened on
	// the dead node (asserted through the exported Prometheus text —
	// satellite coverage for the client metrics exporter).
	snapshotMetrics(nodes, workDir, "kill")
	var stealsWon, adopted float64
	victimSteals := 0
	for _, n := range nodes {
		if n.dead {
			continue
		}
		m, err := n.scrape()
		if err != nil {
			stopAll()
			return fail("scrape %s: %v", n.name, err)
		}
		stealsWon += metricTotal(m, "sptd_cluster_steals_won_total")
		adopted += metricTotal(m, "sptd_steal_adopted_total")
		stolen, err := n.stolenPeers()
		if err != nil {
			stopAll()
			return fail("cluster view %s: %v", n.name, err)
		}
		for _, name := range stolen {
			if name == victim.name {
				victimSteals++
			}
		}
	}
	// The victim's journal must have been claimed by exactly one survivor —
	// the rename arbitration at work. (A heavily instrumented build can
	// additionally false-positive a slow-but-alive peer and steal its
	// journal too; that is a tolerated inefficiency, not a correctness
	// failure, so the assertion is per-victim, not global.)
	if victimSteals != 1 {
		stopAll()
		return fail("expected exactly one survivor to steal %s's journal, got %d (total steals %g)",
			victim.name, victimSteals, stealsWon)
	}
	var clientMetrics bytes.Buffer
	cl.WriteMetrics(&clientMetrics)
	if opens := metricTotal(clientMetrics.String(), "spt_client_breaker_opens_total"); opens < 1 {
		stopAll()
		return fail("client breaker never opened against the killed node (opens=%g)\n%s", opens, clientMetrics.String())
	}
	st := cl.Stats()
	if st.Retries < 1 {
		stopAll()
		return fail("cluster client never retried across the kill (stats %+v)", st)
	}
	fmt.Fprintf(os.Stderr, "cluster-soak: kill phase ok: victim steals=1 (total %g) adopted=%g client retries=%d breaker opens present\n",
		stealsWon, adopted, st.Retries)

	// Before tearing the survivors down, wait for replication to settle:
	// every survivor's push queue must drain so each artifact lives on two
	// nodes — the victim's disk is about to be destroyed for good.
	settleDeadline := time.Now().Add(60 * time.Second)
	for {
		pending := 0
		for _, n := range nodes {
			if n.dead {
				continue
			}
			v, err := n.view()
			if err != nil {
				stopAll()
				return fail("replication settle view %s: %v", n.name, err)
			}
			pending += v.ReplicationPending
		}
		if pending == 0 {
			break
		}
		if time.Now().After(settleDeadline) {
			snapshotMetrics(nodes, workDir, "settle")
			stopAll()
			return fail("replication never settled: %d pushes still pending", pending)
		}
		time.Sleep(50 * time.Millisecond)
	}
	// A few anti-entropy rounds mop up keys whose only push had landed on
	// the victim before the kill.
	time.Sleep(750 * time.Millisecond)
	stopAll()

	// Phase 2: replication. The victim's store dir is DELETED — permanent
	// disk loss, not a warm restart — and only the two survivors come back.
	// The same work must still be served entirely from the replicated
	// store: zero recomputations, bit-identical results.
	if err := os.RemoveAll(victim.storeDir); err != nil {
		return fail("destroy victim store: %v", err)
	}
	fmt.Fprintf(os.Stderr, "cluster-soak: phase replication: %s's store deleted; same %d jobs against the two survivors\n",
		victim.name, requests)
	var survivors []*clusterNode
	survivorMembers := map[string]string{}
	for _, n := range nodes {
		if n.name == victim.name {
			continue
		}
		survivors = append(survivors, n)
		survivorMembers[n.name] = members[n.name]
	}
	replBegin := time.Now()
	for _, n := range survivors {
		if err := n.start(ctx); err != nil {
			return fail("replication restart: %v", err)
		}
	}
	defer stopAll()
	cl2 := client.NewCluster(survivorMembers, client.ClusterConfig{
		Resilient: client.ResilientConfig{MaxAttempts: 6, Seed: 2},
	})
	replLatencies := make([]time.Duration, requests)
	for i, job := range jobs {
		req := job.req
		req.Async = false
		t0 := time.Now()
		got, _, err := cl2.Simulate(ctx, req)
		replLatencies[i] = time.Since(t0)
		if err != nil {
			return fail("replication job %d: %v", i, err)
		}
		got.JobID = ""
		if !sameSim(got, job.want) {
			return fail("replication job %d (%s srb=%d) diverged:\n  got  %+v\n  want %+v",
				i, job.req.Benchmark, job.req.SRB, *got, *job.want)
		}
	}
	replWall := time.Since(replBegin)
	snapshotMetrics(nodes, workDir, "replication")
	var misses, memHits, diskHits, peerHits float64
	for _, n := range survivors {
		m, err := n.scrape()
		if err != nil {
			return fail("replication scrape %s: %v", n.name, err)
		}
		misses += metricTotal(m, "sptd_store_misses_total")
		memHits += metricTotal(m, "sptd_store_mem_hits_total")
		diskHits += metricTotal(m, "sptd_store_disk_hits_total")
		peerHits += metricTotal(m, "sptd_store_peer_hits_total")
	}
	if misses != 0 {
		return fail("replication phase recomputed %g jobs after the victim's disk loss (mem=%g disk=%g peer=%g)",
			misses, memHits, diskHits, peerHits)
	}
	if memHits+diskHits+peerHits < float64(requests) {
		return fail("replication phase served %g store hits for %d jobs", memHits+diskHits+peerHits, requests)
	}
	fmt.Fprintf(os.Stderr, "cluster-soak: replication phase ok: 0 recomputes after permanent disk loss (mem=%g disk=%g peer=%g hits)\n",
		memHits, diskHits, peerHits)

	// Phase 3: join. A brand-new node enters with -join <survivor> — no
	// -cluster list, no restarts anywhere — and must show up alive in a
	// survivor's view within two gossip intervals, then take traffic for
	// the ring arcs it now owns.
	fmt.Fprintf(os.Stderr, "cluster-soak: phase join: n4 joins via gossip seed %s\n", survivors[0].name)
	addr4, err := soakFreeAddr()
	if err != nil {
		return fail("listen: %v", err)
	}
	n4 := &clusterNode{
		name: "n4", addr: addr4, bin: bin,
		joinSeed:    survivorMembers[survivors[0].name],
		journalRoot: journalRoot,
		storeDir:    filepath.Join(workDir, "store", "n4"),
	}
	nodes = append(nodes, n4)
	if err := n4.start(ctx); err != nil {
		return fail("join: %v", err)
	}
	joinStart := time.Now()
	joinDeadline := joinStart.Add(2 * clusterSoakGossipInterval)
	seen := false
	for !seen && time.Now().Before(joinDeadline) {
		v, err := survivors[0].view()
		if err == nil && v.gossipState("n4") == "alive" {
			seen = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	joinVisible := time.Since(joinStart)
	if !seen {
		snapshotMetrics(nodes, workDir, "join")
		return fail("n4 not alive in %s's view within 2 gossip intervals (%v)", survivors[0].name, 2*clusterSoakGossipInterval)
	}
	if err := cl2.Refresh(ctx); err != nil {
		return fail("client refresh after join: %v", err)
	}
	// Find a route key the ring now assigns to n4 and send it traffic.
	var joinReq client.SimulateRequest
	for sc := scale; sc < scale+8 && joinReq.Benchmark == ""; sc++ {
		for _, bench := range clusterSoakBenches {
			if owner, ok := cl2.Ring().Owner(client.RouteKey(bench, sc)); ok && owner == "n4" {
				joinReq = client.SimulateRequest{Benchmark: bench, Scale: sc, SRB: soakSRB(requests)}
				break
			}
		}
	}
	if joinReq.Benchmark == "" {
		return fail("ring assigned no candidate key to n4 after refresh (alive: %v)", cl2.Ring().Alive())
	}
	joinWant, err := soakExpectation(joinReq)
	if err != nil {
		return fail("join expectation: %v", err)
	}
	joinGot, servedBy, err := cl2.Simulate(ctx, joinReq)
	if err != nil {
		return fail("join job: %v", err)
	}
	if servedBy != "n4" || !strings.HasPrefix(joinGot.JobID, "n4-") {
		return fail("join job served by %q with id %q, want n4", servedBy, joinGot.JobID)
	}
	joinGot.JobID = ""
	if !sameSim(joinGot, joinWant) {
		return fail("join job diverged:\n  got  %+v\n  want %+v", *joinGot, *joinWant)
	}
	fmt.Fprintf(os.Stderr, "cluster-soak: join phase ok: n4 alive in view after %v, served %s scale=%d itself\n",
		joinVisible, joinReq.Benchmark, joinReq.Scale)

	// Phase 4: partition-heal. A full two-way partition between the two
	// survivors (test hook, no netem) must NOT kill either of them — n4
	// vouches for both via indirect probes — and healing must leave every
	// member alive with zero deaths declared.
	s1, s2 := survivors[0], survivors[1]
	fmt.Fprintf(os.Stderr, "cluster-soak: phase partition-heal: %s <-/-> %s, %s must vouch\n", s1.name, s2.name, n4.name)
	live := []*clusterNode{s1, s2, n4}
	// The restarted survivors re-detect the victim's death from their
	// static member list (and n4 learns it by rumor) — those are
	// legitimate deaths. Wait for that to converge everywhere so the
	// peers-died counters are quiescent before the partition's delta is
	// measured.
	convergeDeadline := time.Now().Add(20 * time.Second)
	for {
		converged := true
		for _, n := range live {
			v, err := n.view()
			if err != nil {
				return fail("pre-partition view %s: %v", n.name, err)
			}
			if v.gossipState(victim.name) != "dead" {
				converged = false
			}
		}
		if converged {
			break
		}
		if time.Now().After(convergeDeadline) {
			snapshotMetrics(nodes, workDir, "partition")
			return fail("victim %s's death never converged in every view before the partition", victim.name)
		}
		time.Sleep(50 * time.Millisecond)
	}
	diedBefore := 0.0
	for _, n := range live {
		m, err := n.scrape()
		if err != nil {
			return fail("partition scrape %s: %v", n.name, err)
		}
		diedBefore += metricTotal(m, "sptd_cluster_peers_died_total")
	}
	if err := s1.setBlocked(s2.name, true, true); err != nil {
		return fail("%v", err)
	}
	// The blocked pair needs MissThreshold failed probes each before
	// indirect confirmation engages; with 3 probe targets in rotation that
	// is ~2.5s. Hold the partition well past that and watch for false
	// deaths the whole time.
	partitionUntil := time.Now().Add(5 * time.Second)
	for time.Now().Before(partitionUntil) {
		for _, n := range live {
			v, err := n.view()
			if err != nil {
				return fail("partition view %s: %v", n.name, err)
			}
			for _, g := range v.Gossip {
				if g.State == "dead" && g.Name != victim.name {
					snapshotMetrics(nodes, workDir, "partition")
					return fail("partition falsely killed %s in %s's view", g.Name, n.name)
				}
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	indirect := 0.0
	for _, n := range []*clusterNode{s1, s2} {
		m, err := n.scrape()
		if err != nil {
			return fail("partition scrape %s: %v", n.name, err)
		}
		indirect += metricTotal(m, "sptd_gossip_indirect_probes_total")
	}
	if indirect < 1 {
		snapshotMetrics(nodes, workDir, "partition")
		return fail("partition never triggered an indirect probe (the hook did not bite?)")
	}
	if err := s1.setBlocked(s2.name, false, false); err != nil {
		return fail("heal: %v", err)
	}
	healDeadline := time.Now().Add(10 * time.Second)
	for {
		allAlive := true
		for _, n := range live {
			v, err := n.view()
			if err != nil {
				return fail("heal view %s: %v", n.name, err)
			}
			for _, peer := range live {
				if v.gossipState(peer.name) != "alive" {
					allAlive = false
				}
			}
		}
		if allAlive {
			break
		}
		if time.Now().After(healDeadline) {
			snapshotMetrics(nodes, workDir, "heal")
			return fail("membership did not settle all-alive after heal")
		}
		time.Sleep(50 * time.Millisecond)
	}
	diedAfter := 0.0
	for _, n := range live {
		m, err := n.scrape()
		if err != nil {
			return fail("heal scrape %s: %v", n.name, err)
		}
		diedAfter += metricTotal(m, "sptd_cluster_peers_died_total")
	}
	if diedAfter != diedBefore {
		return fail("partition-heal declared %g deaths (had %g before)", diedAfter, diedBefore)
	}
	snapshotMetrics(nodes, workDir, "heal")
	fmt.Fprintf(os.Stderr, "cluster-soak: partition-heal phase ok: %g indirect probes, zero false deaths, all alive after heal\n", indirect)

	killRes := &phaseResult{latencies: latencies, wall: killWall}
	replRes := &phaseResult{latencies: replLatencies, wall: replWall}
	fmt.Printf("BenchmarkClusterSoak/kill %d %d ns/op %.1f p99-ms %.3f jobs/s\n",
		len(killRes.latencies), killRes.meanNS(),
		float64(killRes.p99().Microseconds())/1000, killRes.jobsPerSec())
	fmt.Printf("BenchmarkClusterSoak/replication %d %d ns/op %.1f p99-ms %.3f jobs/s\n",
		len(replRes.latencies), replRes.meanNS(),
		float64(replRes.p99().Microseconds())/1000, replRes.jobsPerSec())
	fmt.Println("cluster-soak: PASS (node killed and disk destroyed, journal stolen, replicas served everything, gossip join took traffic, partition healed with zero false deaths)")
	return 0
}
