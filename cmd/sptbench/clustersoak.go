package main

// The cluster-soak mode is the node-killing endurance run of the sharded
// serving stack: it starts THREE sptd nodes sharing a journal root and
// per-node tiered stores, drives durable async jobs through the
// consistent-hash cluster client, SIGKILLs one node mid-run and leaves it
// dead — the survivors must detect the death, steal the victim's journal,
// adopt its jobs, and every accepted job must still converge to a result
// bit-identical to the fault-free local pipeline, with zero lost and zero
// divergent duplicates. A second phase then restarts all three nodes warm
// and re-submits the same work, asserting the disk-spill tier serves every
// request with zero recomputations.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/spt/client"
)

// clusterSoakBenches spreads route keys over the ring: the route key is
// (benchmark, scale), so using several benchmarks shards the work across
// nodes instead of funneling everything to one owner.
var clusterSoakBenches = []string{"parser", "mcf", "gzip"}

// clusterNode manages one member daemon of the soak cluster.
type clusterNode struct {
	name, addr, bin string
	clusterSpec     string
	journalRoot     string
	storeDir        string
	cmd             *exec.Cmd
	dead            bool
}

func (n *clusterNode) start(ctx context.Context) error {
	cmd := exec.Command(n.bin,
		"-addr", n.addr,
		"-node-id", n.name,
		"-cluster", n.clusterSpec,
		"-cluster-journal-root", n.journalRoot,
		"-store-dir", n.storeDir,
		// 250ms probes: fast enough that a kill is detected well inside the
		// soak's polling, slow enough that an instrumented (-race) build's
		// handler latency does not fake a death.
		"-heartbeat", "250ms",
		"-heartbeat-misses", "3",
		"-workers", "2",
		"-max-attempts", "8",
		"-drain-timeout", "30s",
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("start node %s: %w", n.name, err)
	}
	n.cmd = cmd
	n.dead = false
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) && ctx.Err() == nil {
		resp, err := http.Get("http://" + n.addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("node %s on %s did not become healthy", n.name, n.addr)
}

// kill SIGKILLs the node — the failure mode the stealing protocol exists
// for. The node is NOT restarted; the survivors must absorb its work.
func (n *clusterNode) kill() {
	if n.cmd != nil && n.cmd.Process != nil {
		_ = n.cmd.Process.Signal(syscall.SIGKILL)
		_, _ = n.cmd.Process.Wait()
	}
	n.dead = true
}

// stop SIGTERMs for a graceful drain at phase end.
func (n *clusterNode) stop() {
	if n.dead || n.cmd == nil || n.cmd.Process == nil {
		return
	}
	_ = n.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan struct{})
	go func() { _, _ = n.cmd.Process.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(45 * time.Second):
		_ = n.cmd.Process.Kill()
		<-done
	}
	n.dead = true
}

// scrape fetches the node's /metrics text.
func (n *clusterNode) scrape() (string, error) {
	resp, err := http.Get("http://" + n.addr + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

// stolenPeers fetches the node's /v1/cluster view and returns which dead
// peers' journals it has adopted.
func (n *clusterNode) stolenPeers() ([]string, error) {
	resp, err := http.Get("http://" + n.addr + "/v1/cluster")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var view struct {
		Stolen []string `json:"stolen"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return nil, err
	}
	return view.Stolen, nil
}

// snapshotMetrics writes every live node's /metrics to the work dir (the
// CI uploads these, plus the journals, on failure).
func snapshotMetrics(nodes []*clusterNode, workDir, phase string) {
	for _, n := range nodes {
		if n.dead {
			continue
		}
		m, err := n.scrape()
		if err != nil {
			continue
		}
		path := filepath.Join(workDir, fmt.Sprintf("%s-%s-metrics.txt", phase, n.name))
		_ = os.WriteFile(path, []byte(m), 0o644)
	}
}

// clusterSoakJob is one unit of soak work with its precomputed expectation.
type clusterSoakJob struct {
	req  client.SimulateRequest
	want *client.SimulateResponse
	key  string // ring route key
	id   string
	node string // node that accepted the submission
}

// runClusterSoak is the -cluster-soak entry point; returns the exit code.
func runClusterSoak(bin string, scale, requests int, workDir string) int {
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "sptbench: cluster-soak: "+format+"\n", args...)
		return 1
	}
	if bin == "" {
		return fail("-sptd-bin is required")
	}
	if workDir == "" {
		dir, err := os.MkdirTemp("", "cluster-soak-")
		if err != nil {
			return fail("temp dir: %v", err)
		}
		workDir = dir
	}
	if err := os.MkdirAll(workDir, 0o755); err != nil {
		return fail("work dir: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Minute)
	defer cancel()

	// Work set: distinct (benchmark, SRB) simulate points. Distinct SRBs
	// keep every job a distinct simulation (no cache hit can hide a lost
	// job); the benchmark rotation spreads route keys over the ring.
	jobs := make([]*clusterSoakJob, requests)
	expErrs := make([]error, requests)
	fmt.Fprintf(os.Stderr, "cluster-soak: computing %d fault-free expectations locally...\n", requests)
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		req := client.SimulateRequest{
			Benchmark:  clusterSoakBenches[i%len(clusterSoakBenches)],
			Scale:      scale,
			SRB:        soakSRB(i),
			JobRequest: client.JobRequest{Async: true},
		}
		jobs[i] = &clusterSoakJob{req: req, key: client.RouteKey(req.Benchmark, req.Scale)}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			jobs[i].want, expErrs[i] = soakExpectation(jobs[i].req)
		}(i)
	}
	wg.Wait()
	for i, err := range expErrs {
		if err != nil {
			return fail("local expectation (%s srb=%d): %v", jobs[i].req.Benchmark, jobs[i].req.SRB, err)
		}
	}

	// Three nodes, one shared journal root, per-node store dirs.
	names := []string{"n1", "n2", "n3"}
	members := make(map[string]string, len(names))
	nodes := make([]*clusterNode, len(names))
	journalRoot := filepath.Join(workDir, "journals")
	spec := ""
	for i, name := range names {
		addr, err := soakFreeAddr()
		if err != nil {
			return fail("listen: %v", err)
		}
		members[name] = "http://" + addr
		if spec != "" {
			spec += ","
		}
		spec += name + "=http://" + addr
		nodes[i] = &clusterNode{
			name: name, addr: addr, bin: bin,
			journalRoot: journalRoot,
			storeDir:    filepath.Join(workDir, "store", name),
		}
	}
	for _, n := range nodes {
		n.clusterSpec = spec
	}
	startAll := func() error {
		for _, n := range nodes {
			if err := n.start(ctx); err != nil {
				return err
			}
		}
		return nil
	}
	stopAll := func() {
		for _, n := range nodes {
			n.stop()
		}
	}

	fmt.Fprintf(os.Stderr, "cluster-soak: phase kill: 3 nodes, %d jobs, SIGKILL mid-run\n", requests)
	if err := startAll(); err != nil {
		return fail("%v", err)
	}
	cl := client.NewCluster(members, client.ClusterConfig{
		Resilient: client.ResilientConfig{
			MaxAttempts: 6,
			Seed:        1,
			Backoff:     client.Backoff{Base: 20 * time.Millisecond, Max: 250 * time.Millisecond},
		},
	})

	killBegin := time.Now()
	latencies := make([]time.Duration, requests)
	for i, job := range jobs {
		sub, node, err := cl.Simulate(ctx, job.req)
		if err != nil {
			stopAll()
			return fail("submit job %d: %v", i, err)
		}
		if sub.JobID == "" {
			stopAll()
			return fail("submit job %d: no id", i)
		}
		job.id, job.node = sub.JobID, node
	}

	// Pick the victim: the node that accepted the most submissions — the
	// one whose journal the survivors must steal.
	accepted := map[string]int{}
	for _, job := range jobs {
		accepted[job.node]++
	}
	victim := nodes[0]
	for _, n := range nodes {
		if accepted[n.name] > accepted[victim.name] {
			victim = n
		}
	}

	var done atomic.Int64
	finished := make([]*client.JobStatus, requests)
	waitErrs := make([]error, requests)
	submitted := time.Now()
	for i, job := range jobs {
		wg.Add(1)
		go func(i int, job *clusterSoakJob) {
			defer wg.Done()
			js, err := cl.WaitAnywhere(ctx, job.key, job.id, 40*time.Millisecond)
			finished[i], waitErrs[i] = js, err
			latencies[i] = time.Since(submitted)
			done.Add(1)
		}(i, job)
	}

	// Let a few jobs finish (their journaled results must survive the
	// kill), then SIGKILL the victim and leave it dead.
	killDeadline := time.Now().Add(2 * time.Minute)
	for done.Load() < 2 && time.Now().Before(killDeadline) {
		time.Sleep(2 * time.Millisecond)
	}
	fmt.Fprintf(os.Stderr, "cluster-soak: SIGKILL %s (accepted %d/%d jobs) after %d done\n",
		victim.name, accepted[victim.name], requests, done.Load())
	victim.kill()
	wg.Wait()
	killWall := time.Since(killBegin)

	// Zero lost: every job converged OK and bit-identical to the fault-free
	// pipeline.
	for i, err := range waitErrs {
		if err != nil {
			snapshotMetrics(nodes, workDir, "kill")
			stopAll()
			return fail("job %s (%s srb=%d) did not converge: %v", jobs[i].id, jobs[i].req.Benchmark, jobs[i].req.SRB, err)
		}
		js := finished[i]
		if js.Outcome != client.OutcomeOK {
			snapshotMetrics(nodes, workDir, "kill")
			stopAll()
			return fail("job %s outcome %q (err %+v)", jobs[i].id, js.Outcome, js.Error)
		}
		var got client.SimulateResponse
		if err := js.DecodeResult(&got); err != nil {
			stopAll()
			return fail("decode job %s: %v", jobs[i].id, err)
		}
		if !sameSim(&got, jobs[i].want) {
			snapshotMetrics(nodes, workDir, "kill")
			stopAll()
			return fail("job %s (%s srb=%d) diverged from fault-free pipeline:\n  got  %+v\n  want %+v",
				jobs[i].id, jobs[i].req.Benchmark, jobs[i].req.SRB, got, *jobs[i].want)
		}
	}

	// Zero divergent duplicates: a job adopted after the kill may be
	// pollable on several nodes (the adopter serves the dead node's ids);
	// every holder must report byte-identical results.
	for _, job := range jobs {
		js, holders, err := cl.JobAnywhere(ctx, job.key, job.id)
		if err != nil {
			stopAll()
			return fail("job %s vanished after convergence: %v", job.id, err)
		}
		first := js.Result
		for _, holder := range holders[1:] {
			hjs, err := cl.Node(holder).Job(ctx, job.id)
			if err != nil {
				continue
			}
			if !bytes.Equal(first, hjs.Result) {
				stopAll()
				return fail("job %s duplicated with divergent results across %v", job.id, holders)
			}
		}
	}

	// The machinery must demonstrably have engaged: exactly one survivor
	// stole the victim's journal, and the client-side breaker opened on
	// the dead node (asserted through the exported Prometheus text —
	// satellite coverage for the client metrics exporter).
	snapshotMetrics(nodes, workDir, "kill")
	var stealsWon, adopted float64
	victimSteals := 0
	for _, n := range nodes {
		if n.dead {
			continue
		}
		m, err := n.scrape()
		if err != nil {
			stopAll()
			return fail("scrape %s: %v", n.name, err)
		}
		stealsWon += metricTotal(m, "sptd_cluster_steals_won_total")
		adopted += metricTotal(m, "sptd_steal_adopted_total")
		stolen, err := n.stolenPeers()
		if err != nil {
			stopAll()
			return fail("cluster view %s: %v", n.name, err)
		}
		for _, name := range stolen {
			if name == victim.name {
				victimSteals++
			}
		}
	}
	// The victim's journal must have been claimed by exactly one survivor —
	// the rename arbitration at work. (A heavily instrumented build can
	// additionally false-positive a slow-but-alive peer and steal its
	// journal too; that is a tolerated inefficiency, not a correctness
	// failure, so the assertion is per-victim, not global.)
	if victimSteals != 1 {
		stopAll()
		return fail("expected exactly one survivor to steal %s's journal, got %d (total steals %g)",
			victim.name, victimSteals, stealsWon)
	}
	var clientMetrics bytes.Buffer
	cl.WriteMetrics(&clientMetrics)
	if opens := metricTotal(clientMetrics.String(), "spt_client_breaker_opens_total"); opens < 1 {
		stopAll()
		return fail("client breaker never opened against the killed node (opens=%g)\n%s", opens, clientMetrics.String())
	}
	st := cl.Stats()
	if st.Retries < 1 {
		stopAll()
		return fail("cluster client never retried across the kill (stats %+v)", st)
	}
	fmt.Fprintf(os.Stderr, "cluster-soak: kill phase ok: victim steals=1 (total %g) adopted=%g client retries=%d breaker opens present\n",
		stealsWon, adopted, st.Retries)
	stopAll()

	// Phase 2: warm restart. All three nodes come back against their
	// surviving store dirs; the same work must be served entirely from the
	// tiered store — zero recomputations cluster-wide.
	fmt.Fprintf(os.Stderr, "cluster-soak: phase warm-restart: same %d jobs against restarted cluster\n", requests)
	warmBegin := time.Now()
	if err := startAll(); err != nil {
		return fail("warm restart: %v", err)
	}
	defer stopAll()
	cl2 := client.NewCluster(members, client.ClusterConfig{
		Resilient: client.ResilientConfig{MaxAttempts: 6, Seed: 2},
	})
	warmLatencies := make([]time.Duration, requests)
	for i, job := range jobs {
		req := job.req
		req.Async = false
		t0 := time.Now()
		got, _, err := cl2.Simulate(ctx, req)
		warmLatencies[i] = time.Since(t0)
		if err != nil {
			return fail("warm job %d: %v", i, err)
		}
		got.JobID = ""
		if !sameSim(got, job.want) {
			return fail("warm job %d (%s srb=%d) diverged:\n  got  %+v\n  want %+v",
				i, job.req.Benchmark, job.req.SRB, *got, *job.want)
		}
	}
	warmWall := time.Since(warmBegin)
	snapshotMetrics(nodes, workDir, "warm")
	var misses, memHits, diskHits, peerHits float64
	for _, n := range nodes {
		m, err := n.scrape()
		if err != nil {
			return fail("warm scrape %s: %v", n.name, err)
		}
		misses += metricTotal(m, "sptd_store_misses_total")
		memHits += metricTotal(m, "sptd_store_mem_hits_total")
		diskHits += metricTotal(m, "sptd_store_disk_hits_total")
		peerHits += metricTotal(m, "sptd_store_peer_hits_total")
	}
	if misses != 0 {
		return fail("warm restart recomputed %g jobs; every result should have come from the store (mem=%g disk=%g peer=%g)",
			misses, memHits, diskHits, peerHits)
	}
	if memHits+diskHits+peerHits < float64(requests) {
		return fail("warm restart served %g store hits for %d jobs", memHits+diskHits+peerHits, requests)
	}
	fmt.Fprintf(os.Stderr, "cluster-soak: warm phase ok: 0 recomputes (mem=%g disk=%g peer=%g hits)\n",
		memHits, diskHits, peerHits)

	killRes := &phaseResult{latencies: latencies, wall: killWall}
	warmRes := &phaseResult{latencies: warmLatencies, wall: warmWall}
	fmt.Printf("BenchmarkClusterSoak/kill %d %d ns/op %.1f p99-ms %.3f jobs/s\n",
		len(killRes.latencies), killRes.meanNS(),
		float64(killRes.p99().Microseconds())/1000, killRes.jobsPerSec())
	fmt.Printf("BenchmarkClusterSoak/warmrestart %d %d ns/op %.1f p99-ms %.3f jobs/s\n",
		len(warmRes.latencies), warmRes.meanNS(),
		float64(warmRes.p99().Microseconds())/1000, warmRes.jobsPerSec())
	fmt.Println("cluster-soak: PASS (node killed, journal stolen, zero jobs lost, zero divergent duplicates, warm restart recomputed nothing)")
	return 0
}
