package main

// The chaos-soak mode is the fault-injection endurance run of the serving
// stack: it starts sptd itself (journaled, with the seeded chaos plan),
// drives async jobs through the resilient client, SIGKILLs and restarts
// the daemon mid-run, and requires every accepted job to converge to a
// result bit-identical to the fault-free local pipeline. A fault-free
// phase runs first so the printed benchmark lines compare soak throughput
// and p99 latency with and without chaos.

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/harness"
	"repro/internal/service"
	"repro/spt/client"
)

// soakSRB gives every job a distinct SRB size, so every job is a distinct
// simulation: no artifact-cache hit can paper over a lost or corrupted
// job, and the worker queue stays busy long enough for the mid-run
// SIGKILL to land while work is still journaled as pending.
func soakSRB(i int) int { return 16 + 8*i }

// soakDaemon manages one sptd process across kills and restarts.
type soakDaemon struct {
	bin, addr, journalDir string
	chaosSeed             int64
	cmd                   *exec.Cmd
}

func (d *soakDaemon) args() []string {
	a := []string{
		"-addr", d.addr,
		"-journal-dir", d.journalDir,
		"-workers", "2",
		"-max-attempts", "8",
		"-drain-timeout", "30s",
	}
	if d.chaosSeed != 0 {
		a = append(a, "-chaos-seed", strconv.FormatInt(d.chaosSeed, 10))
	}
	return a
}

func (d *soakDaemon) start(ctx context.Context) error {
	cmd := exec.Command(d.bin, d.args()...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("start sptd: %w", err)
	}
	d.cmd = cmd
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) && ctx.Err() == nil {
		resp, err := http.Get("http://" + d.addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("sptd on %s did not become healthy", d.addr)
}

// kill SIGKILLs the daemon — the crash the journal exists for.
func (d *soakDaemon) kill() {
	if d.cmd != nil && d.cmd.Process != nil {
		_ = d.cmd.Process.Signal(syscall.SIGKILL)
		_, _ = d.cmd.Process.Wait()
	}
}

// stop SIGTERMs the daemon for a graceful drain at phase end.
func (d *soakDaemon) stop() {
	if d.cmd == nil || d.cmd.Process == nil {
		return
	}
	_ = d.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan struct{})
	go func() { _, _ = d.cmd.Process.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(45 * time.Second):
		_ = d.cmd.Process.Kill()
		<-done
	}
}

func soakFreeAddr() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	l.Close()
	return addr, nil
}

// soakExpectation computes the fault-free local pipeline result for req,
// derived through the same config translation the daemon uses.
func soakExpectation(req client.SimulateRequest) (*client.SimulateResponse, error) {
	cfg, err := service.ConfigFromRequest(req)
	if err != nil {
		return nil, err
	}
	scale := req.Scale
	if scale <= 0 {
		scale = 1
	}
	run, err := harness.RunBenchmark(req.Benchmark, scale, cfg)
	if err != nil {
		return nil, err
	}
	return &client.SimulateResponse{
		Benchmark: req.Benchmark,
		Scale:     scale,
		Baseline:  service.Summarize(run.Baseline),
		SPT:       service.Summarize(run.SPT),
		Speedup:   run.Speedup(),
	}, nil
}

// phaseResult aggregates one soak phase.
type phaseResult struct {
	latencies []time.Duration
	wall      time.Duration
	stats     client.ResilientStats
	metrics   string
}

func (p *phaseResult) p99() time.Duration {
	if len(p.latencies) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), p.latencies...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := (99*len(s) + 99) / 100
	if i > len(s) {
		i = len(s)
	}
	return s[i-1]
}

func (p *phaseResult) meanNS() int64 {
	if len(p.latencies) == 0 {
		return 0
	}
	var sum time.Duration
	for _, l := range p.latencies {
		sum += l
	}
	return int64(sum) / int64(len(p.latencies))
}

func (p *phaseResult) jobsPerSec() float64 {
	if p.wall <= 0 {
		return 0
	}
	return float64(len(p.latencies)) / p.wall.Seconds()
}

// waitConverged rides out daemon downtime: Resilient.Wait gives up once a
// poll exhausts its retries, so the soak re-enters it until the job lands
// or the phase deadline passes. The failing polls underneath are what trip
// (and, after the restart, recover) the circuit breaker.
func waitConverged(ctx context.Context, r *client.Resilient, id string) (*client.JobStatus, error) {
	for {
		js, err := r.Wait(ctx, id, 40*time.Millisecond)
		if err == nil {
			return js, nil
		}
		if ctx.Err() != nil {
			return js, fmt.Errorf("job %s did not converge: %w", id, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// runSoakPhase submits `requests` async jobs, optionally SIGKILLing and
// restarting the daemon once a few have finished, waits for every job to
// converge, and verifies each result bit-identical to its expectation.
func runSoakPhase(ctx context.Context, d *soakDaemon, reqs []client.SimulateRequest, want []*client.SimulateResponse, killMidRun bool) (*phaseResult, error) {
	if err := d.start(ctx); err != nil {
		return nil, err
	}
	defer d.stop()

	r := client.NewResilient(client.New("http://"+d.addr, nil), client.ResilientConfig{
		MaxAttempts: 6,
		HedgeAfter:  150 * time.Millisecond,
		Seed:        1,
	})

	begin := time.Now()
	ids := make([]string, len(reqs))
	submitted := make([]time.Time, len(reqs))
	for i, req := range reqs {
		sub, err := r.Simulate(ctx, req)
		if err != nil {
			return nil, fmt.Errorf("submit job %d: %w", i, err)
		}
		if sub.JobID == "" {
			return nil, fmt.Errorf("submit job %d: no id", i)
		}
		ids[i] = sub.JobID
		submitted[i] = time.Now()
	}

	res := &phaseResult{latencies: make([]time.Duration, len(reqs))}
	finished := make([]*client.JobStatus, len(reqs))
	errs := make([]error, len(reqs))
	var wg sync.WaitGroup
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			js, err := waitConverged(ctx, r, ids[i])
			finished[i], errs[i] = js, err
			res.latencies[i] = time.Since(submitted[i])
		}(i)
	}

	if killMidRun {
		// Let a few jobs finish (their journaled results must survive the
		// crash), then SIGKILL while the rest are queued or running. The
		// downtime window is long enough for poll failures to trip the
		// circuit breaker before the restart recovers it.
		waitDeadline := time.Now().Add(2 * time.Minute)
		for countDone(finished) < 2 && time.Now().Before(waitDeadline) {
			time.Sleep(2 * time.Millisecond)
		}
		fmt.Fprintf(os.Stderr, "chaos-soak: SIGKILL after %d jobs done\n", countDone(finished))
		d.kill()
		time.Sleep(1500 * time.Millisecond)
		if err := d.start(ctx); err != nil {
			return nil, fmt.Errorf("restart after SIGKILL: %w", err)
		}
	}
	wg.Wait()
	res.wall = time.Since(begin)

	for i, err := range errs {
		if err != nil {
			return nil, err
		}
		js := finished[i]
		if js.Outcome != client.OutcomeOK {
			return nil, fmt.Errorf("job %s outcome %q (err %+v)", ids[i], js.Outcome, js.Error)
		}
		var got client.SimulateResponse
		if err := js.DecodeResult(&got); err != nil {
			return nil, fmt.Errorf("decode job %s result: %w", ids[i], err)
		}
		if !sameSim(&got, want[i]) {
			return nil, fmt.Errorf("job %s (srb=%d) diverged from fault-free pipeline:\n  got  %+v\n  want %+v",
				ids[i], reqs[i].SRB, got, want[i])
		}
	}

	m, err := r.Metrics(ctx)
	if err != nil {
		return nil, fmt.Errorf("final metrics scrape: %w", err)
	}
	res.metrics = m
	res.stats = r.Stats()
	return res, nil
}

func countDone(js []*client.JobStatus) int {
	n := 0
	for _, j := range js {
		if j != nil {
			n++
		}
	}
	return n
}

// metricTotal sums every sample of a (possibly labeled) metric family.
func metricTotal(metrics, family string) float64 {
	var sum float64
	for _, line := range strings.Split(metrics, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, family) || strings.HasPrefix(line, "#") {
			continue
		}
		rest := line[len(family):]
		if rest != "" && rest[0] != '{' && rest[0] != ' ' {
			continue // longer family name sharing the prefix
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		if v, err := strconv.ParseFloat(fields[len(fields)-1], 64); err == nil {
			sum += v
		}
	}
	return sum
}

// runChaosSoak is the -chaos-soak entry point; it returns the process exit
// code.
func runChaosSoak(bin, benchName string, scale, requests int, seed int64, workDir string) int {
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "sptbench: chaos-soak: "+format+"\n", args...)
		return 1
	}
	if bin == "" {
		return fail("-sptd-bin is required")
	}
	if workDir == "" {
		dir, err := os.MkdirTemp("", "chaos-soak-")
		if err != nil {
			return fail("temp dir: %v", err)
		}
		workDir = dir
	}
	if err := os.MkdirAll(workDir, 0o755); err != nil {
		return fail("work dir: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Minute)
	defer cancel()

	// Request mix: `requests` async jobs, every one a distinct simulate
	// point; expectations computed locally up front, concurrently.
	reqs := make([]client.SimulateRequest, requests)
	want := make([]*client.SimulateResponse, requests)
	expErrs := make([]error, requests)
	fmt.Fprintf(os.Stderr, "chaos-soak: computing %d fault-free expectations locally...\n", requests)
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		reqs[i] = client.SimulateRequest{
			Benchmark:  benchName,
			Scale:      scale,
			SRB:        soakSRB(i),
			JobRequest: client.JobRequest{Async: true},
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			want[i], expErrs[i] = soakExpectation(reqs[i])
		}(i)
	}
	wg.Wait()
	for i, err := range expErrs {
		if err != nil {
			return fail("local expectation (srb=%d): %v", reqs[i].SRB, err)
		}
	}

	runPhase := func(name string, chaosSeed int64, kill bool) (*phaseResult, int) {
		addr, err := soakFreeAddr()
		if err != nil {
			return nil, fail("listen: %v", err)
		}
		d := &soakDaemon{
			bin: bin, addr: addr,
			journalDir: filepath.Join(workDir, name),
			chaosSeed:  chaosSeed,
		}
		fmt.Fprintf(os.Stderr, "chaos-soak: phase %s: %d jobs against %s\n", name, requests, addr)
		res, err := runSoakPhase(ctx, d, reqs, want, kill)
		if err != nil {
			return nil, fail("phase %s: %v", name, err)
		}
		snap := filepath.Join(workDir, name+"-metrics.txt")
		if werr := os.WriteFile(snap, []byte(res.metrics), 0o644); werr != nil {
			fmt.Fprintf(os.Stderr, "chaos-soak: write %s: %v\n", snap, werr)
		}
		return res, 0
	}

	faultfree, code := runPhase("faultfree", 0, false)
	if code != 0 {
		return code
	}
	chaos, code := runPhase("chaos", seed, true)
	if code != 0 {
		return code
	}

	// The run only counts if the resilience machinery demonstrably engaged:
	// faults fired, the journal replayed interrupted work, and the circuit
	// breaker opened during the outage and recovered after the restart.
	if n := metricTotal(chaos.metrics, "chaos_faults_injected_total"); n <= 0 {
		return fail("no chaos faults injected (plan seed %d)", seed)
	}
	if n := metricTotal(chaos.metrics, "sptd_journal_replayed_total"); n <= 0 {
		return fail("daemon restart replayed no journaled jobs")
	}
	if chaos.stats.Retries <= 0 {
		return fail("resilient client never retried under chaos")
	}
	if chaos.stats.BreakerOpens < 1 || chaos.stats.BreakerRecoveries < 1 {
		return fail("circuit breaker did not open and recover (opens=%d recoveries=%d)",
			chaos.stats.BreakerOpens, chaos.stats.BreakerRecoveries)
	}

	fmt.Fprintf(os.Stderr, "chaos-soak: faultfree %s wall, chaos %s wall; chaos client: %d retries, %d hedges, breaker opens=%d recoveries=%d; journal replayed %g, faults %g\n",
		faultfree.wall.Round(time.Millisecond), chaos.wall.Round(time.Millisecond),
		chaos.stats.Retries, chaos.stats.Hedges, chaos.stats.BreakerOpens, chaos.stats.BreakerRecoveries,
		metricTotal(chaos.metrics, "sptd_journal_replayed_total"),
		metricTotal(chaos.metrics, "chaos_faults_injected_total"))

	// Benchmark-format lines for cmd/benchjson (BENCH_pr4.json).
	fmt.Printf("BenchmarkChaosSoak/faultfree %d %d ns/op %.1f p99-ms %.3f jobs/s\n",
		len(faultfree.latencies), faultfree.meanNS(),
		float64(faultfree.p99().Microseconds())/1000, faultfree.jobsPerSec())
	fmt.Printf("BenchmarkChaosSoak/chaos %d %d ns/op %.1f p99-ms %.3f jobs/s\n",
		len(chaos.latencies), chaos.meanNS(),
		float64(chaos.p99().Microseconds())/1000, chaos.jobsPerSec())
	fmt.Println("chaos-soak: PASS (every accepted job converged bit-identical under faults, crash and restart)")
	return 0
}
