// Command sptc runs the SPT compiler on a benchmark and reports the
// cost-driven loop analysis: every candidate loop, its profiled
// characteristics, the optimal partition's misspeculation cost and
// estimated speedup, and the selection decision. With -disasm it prints
// the transformed program.
//
// Usage:
//
//	sptc -bench parser
//	sptc -bench gap -scale 2 -disasm
//	sptc -bench mcf -o mcf.spt      # emit the textual IR for sptsim -file
//	sptc -bench gcc -timeout 10s    # bound profiling + analysis wall clock
//
// With -timeout the compile (including its profiling run) is guarded: on
// budget exhaustion sptc emits a JSON error record on stdout and exits
// non-zero instead of hanging.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/compiler"
	"repro/internal/guard"
	"repro/internal/ir"
	"repro/internal/lang"
)

func main() {
	var (
		name    = flag.String("bench", "parser", "benchmark name ("+fmt.Sprint(bench.Names())+")")
		src     = flag.String("src", "", "compile a MiniC source file instead of a benchmark")
		scale   = flag.Int("scale", 1, "workload scale")
		disasm  = flag.Bool("disasm", false, "print the transformed program")
		out     = flag.String("o", "", "write the transformed program (textual IR) to this file")
		jsonTo  = flag.String("json", "", "write the pass-1 loop analysis report (JSON) to this file")
		timeout = flag.Duration("timeout", 0, "wall-clock budget for the compile (0 = unlimited)")
	)
	flag.Parse()

	var prog *ir.Program
	opts := compiler.DefaultOptions()
	label := *name
	if *src != "" {
		data, err := os.ReadFile(*src)
		die(err)
		p, err := lang.Compile(string(data))
		die(err)
		prog = p
		label = *src
	} else {
		b, ok := bench.ByName(*name)
		if !ok {
			fmt.Fprintf(os.Stderr, "sptc: unknown benchmark %q; have %v\n", *name, bench.Names())
			os.Exit(2)
		}
		prog = b.Build(*scale)
		opts = bench.CompilerOptions(*name)
	}
	var res *compiler.Result
	err := guard.Run(label, guard.StageCompile, func() error {
		ctx, cancel := guard.Budget{Timeout: *timeout}.Context(context.Background())
		defer cancel()
		var cerr error
		res, cerr = compiler.CompileContext(ctx, prog, opts)
		return cerr
	})
	if err != nil {
		fail(label, err)
	}

	fmt.Printf("%s (scale %d): %d candidate loops, %d selected\n\n",
		label, *scale, len(res.Loops), len(res.SelectedLoops()))
	fmt.Printf("%-28s %9s %7s %7s %8s %8s %8s %-6s %s\n",
		"loop", "body", "trip", "cov%", "misscost", "prefork", "est.spd", "unroll", "decision")
	for _, l := range res.Loops {
		decision := "SELECTED"
		if !l.Selected {
			decision = "rejected: " + l.Reason
		}
		unroll := "-"
		if l.Unrolled > 1 {
			unroll = fmt.Sprintf("x%d", l.Unrolled)
		}
		fmt.Printf("%-28s %9.1f %7.1f %6.1f%% %8.2f %8.1f %7.2fx %-6s %s\n",
			l.Key.Func+"/"+l.Key.Header, l.BodySize, l.TripCount, 100*l.Coverage,
			l.MissCost, l.PreFork, l.EstSpeedup, unroll, decision)
		if l.Selected {
			fmt.Printf("%-28s hoisted=%v predicted=%v fork->%s\n", "", l.Hoisted, l.Predicted, l.StartLabel)
		}
	}
	if *disasm {
		fmt.Println()
		fmt.Println(res.Program.Disasm())
	}
	if *out != "" {
		if err := os.WriteFile(*out, []byte(res.Program.Disasm()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "sptc:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", *out)
	}
	if *jsonTo != "" {
		f, err := os.Create(*jsonTo)
		if err == nil {
			err = compiler.WriteReport(f, res)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "sptc:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonTo)
	}
}

// fail emits a structured JSON error record on stdout and exits non-zero;
// machine consumers of sptc get the failure in the same channel as -json.
func fail(label string, err error) {
	rep := struct {
		Label          string `json:"label"`
		Stage          string `json:"stage,omitempty"`
		Error          string `json:"error"`
		BudgetExceeded bool   `json:"budget_exceeded"`
		Panicked       bool   `json:"panicked,omitempty"`
	}{Label: label, Error: err.Error(), BudgetExceeded: guard.Exceeded(err)}
	var se *guard.StageError
	if errors.As(err, &se) {
		rep.Stage = se.Stage
		rep.Panicked = se.Panicked
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	_ = enc.Encode(rep)
	os.Exit(1)
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sptc:", err)
		os.Exit(1)
	}
}
