// Command sptsim compiles one benchmark with the SPT compiler and runs it
// on both the single-core baseline and the two-core SPT machine, printing
// the cycle counts, speculation statistics and per-loop results.
//
// Usage:
//
//	sptsim -bench mcf
//	sptsim -bench parser -recovery squash -regcheck update -srb 64
//	sptsim -bench gcc -timeout 30s -budget 50000000
//
// Every stage (compile, baseline run, SPT run) is guarded: a wall-clock
// timeout (-timeout), step budget (-budget) or cycle budget (-cycles)
// aborts the stage with a structured error, and sptsim exits non-zero
// after emitting a partial-results JSON record on stdout.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/arch"
	"repro/internal/bench"
	"repro/internal/compiler"
	"repro/internal/guard"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/multispec"
	"repro/internal/opt"
)

func main() {
	var (
		name     = flag.String("bench", "parser", "benchmark name")
		file     = flag.String("file", "", "simulate a textual-IR program file instead of a benchmark (runs it as-is: compile first with sptc -o)")
		src      = flag.String("src", "", "compile a MiniC source file, run it through the SPT compiler, and simulate")
		scale    = flag.Int("scale", 1, "workload scale")
		recovery = flag.String("recovery", "srxfc", "misspeculation recovery: srxfc | squash")
		regcheck = flag.String("regcheck", "value", "register dependence checking: value | update")
		srb      = flag.Int("srb", 1024, "speculation result buffer entries")
		ncores   = flag.Int("cores", 0, "total CMP cores (0 or 2 = the paper's classic machine, 3+ = chained speculation)")
		sched    = flag.String("sched", "inorder", "spec-thread scheduling policy: inorder | stride | eager")
		stride   = flag.Int("stride", 1, "iteration lookahead per spawn for -sched stride")
		livein   = flag.String("livein", "svp", "spawned-thread live-in delivery: svp | slice")
		timeout  = flag.Duration("timeout", 0, "wall-clock budget per stage (0 = unlimited)")
		steps    = flag.Int64("budget", 0, "architectural step budget per simulation (0 = unlimited)")
		cycles   = flag.Int64("cycles", 0, "cycle budget per simulation (0 = unlimited)")
	)
	flag.Parse()
	budget := guard.Budget{Timeout: *timeout, Steps: *steps, Cycles: *cycles}

	label := *name
	if *file != "" {
		label = *file
	}
	if *src != "" {
		label = *src
	}

	var prog, sptProg *ir.Program
	if *src != "" {
		data, err := os.ReadFile(*src)
		die(err)
		p, err := lang.Compile(string(data))
		die(err)
		cres, err := compile(budget, label, p, compiler.DefaultOptions())
		if err != nil {
			fail(label, err, nil)
		}
		prog = opt.Optimize(p)
		sptProg = cres.Program
	} else if *file != "" {
		data, err := os.ReadFile(*file)
		die(err)
		p, err := ir.Parse(string(data))
		die(err)
		prog, sptProg = p, p
	} else {
		b, ok := bench.ByName(*name)
		if !ok {
			fmt.Fprintf(os.Stderr, "sptsim: unknown benchmark %q; have %v\n", *name, bench.Names())
			os.Exit(2)
		}
		// The baseline is the optimized program (the paper's -O3 reference),
		// exactly as the harness and the sptd service evaluate it — the
		// three paths produce bit-identical cycle counts.
		prog = opt.Optimize(b.Build(*scale))
		cres, err := compile(budget, label, prog, bench.CompilerOptions(*name))
		if err != nil {
			fail(label, err, nil)
		}
		sptProg = cres.Program
	}
	cfg := arch.DefaultConfig()
	cfg.SRBSize = *srb
	switch *recovery {
	case "srxfc":
		cfg.Recovery = arch.RecoverySRXFC
	case "squash":
		cfg.Recovery = arch.RecoverySquash
	default:
		fmt.Fprintln(os.Stderr, "sptsim: bad -recovery")
		os.Exit(2)
	}
	switch *regcheck {
	case "value":
		cfg.RegCheck = arch.RegCheckValue
	case "update":
		cfg.RegCheck = arch.RegCheckUpdate
	default:
		fmt.Fprintln(os.Stderr, "sptsim: bad -regcheck")
		os.Exit(2)
	}
	cfg.Cores = *ncores
	pol, err := multispec.ParsePolicy(*sched)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sptsim: bad -sched (want inorder | stride | eager)")
		os.Exit(2)
	}
	cfg.Sched = pol
	cfg.SchedStride = *stride
	li, err := multispec.ParseLiveIn(*livein)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sptsim: bad -livein (want svp | slice)")
		os.Exit(2)
	}
	cfg.LiveIn = li
	if err := cfg.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "sptsim: %v\n", err)
		os.Exit(2)
	}

	base, err := simulate(budget, label, guard.StageBaseline, prog, arch.BaselineConfig())
	if err != nil {
		fail(label, err, nil)
	}
	spt, err := simulate(budget, label, guard.StageSimulate, sptProg, cfg)
	if err != nil {
		fail(label, err, base)
	}

	fmt.Printf("%s (scale %d)\n", label, *scale)
	fmt.Printf("  baseline: %12d cycles  %12d instrs  (exec %d, pipe %d, dcache %d)\n",
		base.Cycles, base.Instrs, base.Breakdown.Exec, base.Breakdown.PipeStall, base.Breakdown.DcacheStall)
	fmt.Printf("  SPT:      %12d cycles  %12d instrs  (exec %d, pipe %d, dcache %d)\n",
		spt.Cycles, spt.Instrs, spt.Breakdown.Exec, spt.Breakdown.PipeStall, spt.Breakdown.DcacheStall)
	fmt.Printf("  speedup:  %.3fx\n\n", float64(base.Cycles)/float64(spt.Cycles))
	fmt.Printf("  windows %d  fast-commits %d (%.1f%%)  replays %d  kills %d  suppressed forks %d\n",
		spt.Windows, spt.FastCommits, 100*spt.FastCommitRatio(), spt.Replays, spt.Kills, spt.NoForks)
	fmt.Printf("  speculative instrs %d  committed %d  misspeculated %d (%.2f%%)\n",
		spt.SpecInstrs, spt.CommittedInstr, spt.MisspecInstrs, 100*spt.MisspecRatio())
	fmt.Printf("  speculative core utilization %.1f%%\n\n", 100*spt.SpecUtilization())

	fmt.Printf("  %-26s %12s %12s %9s %6s %6s\n", "loop", "base cycles", "spt cycles", "speedup", "fast%", "miss%")
	keys := make([]string, 0)
	for k := range spt.PerLoop {
		keys = append(keys, k.Func+"/"+k.Header)
	}
	sort.Strings(keys)
	for _, ks := range keys {
		var sl, bl *arch.LoopStats
		for k, v := range spt.PerLoop {
			if k.Func+"/"+k.Header == ks {
				sl = v
				bl = base.PerLoop[k]
			}
		}
		if sl == nil || bl == nil || sl.Windows == 0 {
			continue
		}
		fmt.Printf("  %-26s %12d %12d %8.2fx %5.1f%% %5.2f%%\n",
			ks, bl.Cycles, sl.Cycles, float64(bl.Cycles)/float64(sl.Cycles),
			100*sl.FastCommitRatio(), 100*sl.MisspecRatio())
	}
}

// compile runs the SPT compiler under the stage guard and budget.
func compile(budget guard.Budget, label string, p *ir.Program, opts compiler.Options) (*compiler.Result, error) {
	var res *compiler.Result
	err := guard.Run(label, guard.StageCompile, func() error {
		ctx, cancel := budget.Context(context.Background())
		defer cancel()
		var cerr error
		res, cerr = compiler.CompileContext(ctx, p, opts)
		return cerr
	})
	return res, err
}

// simulate runs one machine configuration under the stage guard and budget.
func simulate(budget guard.Budget, label, stage string, p *ir.Program, cfg arch.Config) (*arch.RunStats, error) {
	var st *arch.RunStats
	err := guard.Run(label, stage, func() error {
		lp, err := interp.Load(p)
		if err != nil {
			return err
		}
		ctx, cancel := budget.Context(context.Background())
		defer cancel()
		var serr error
		st, serr = arch.NewMachine(lp, budget.Apply(cfg)).RunContext(ctx)
		return serr
	})
	return st, err
}

// simSummary is the JSON shape of a completed simulation in a partial
// failure report.
type simSummary struct {
	Cycles int64 `json:"cycles"`
	Instrs int64 `json:"instrs"`
}

// failReport is the partial-results JSON record emitted on stdout when a
// guarded stage fails.
type failReport struct {
	Label          string      `json:"label"`
	Stage          string      `json:"stage,omitempty"`
	Error          string      `json:"error"`
	BudgetExceeded bool        `json:"budget_exceeded"`
	Panicked       bool        `json:"panicked,omitempty"`
	Baseline       *simSummary `json:"baseline,omitempty"`
}

func fail(label string, err error, base *arch.RunStats) {
	rep := failReport{Label: label, Error: err.Error(), BudgetExceeded: guard.Exceeded(err)}
	var se *guard.StageError
	if errors.As(err, &se) {
		rep.Stage = se.Stage
		rep.Panicked = se.Panicked
	}
	if base != nil {
		rep.Baseline = &simSummary{Cycles: base.Cycles, Instrs: base.Instrs}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	_ = enc.Encode(rep)
	os.Exit(1)
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sptsim:", err)
		os.Exit(1)
	}
}
