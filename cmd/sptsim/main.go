// Command sptsim compiles one benchmark with the SPT compiler and runs it
// on both the single-core baseline and the two-core SPT machine, printing
// the cycle counts, speculation statistics and per-loop results.
//
// Usage:
//
//	sptsim -bench mcf
//	sptsim -bench parser -recovery squash -regcheck update -srb 64
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/arch"
	"repro/internal/bench"
	"repro/internal/compiler"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/opt"
)

func main() {
	var (
		name     = flag.String("bench", "parser", "benchmark name")
		file     = flag.String("file", "", "simulate a textual-IR program file instead of a benchmark (runs it as-is: compile first with sptc -o)")
		src      = flag.String("src", "", "compile a MiniC source file, run it through the SPT compiler, and simulate")
		scale    = flag.Int("scale", 1, "workload scale")
		recovery = flag.String("recovery", "srxfc", "misspeculation recovery: srxfc | squash")
		regcheck = flag.String("regcheck", "value", "register dependence checking: value | update")
		srb      = flag.Int("srb", 1024, "speculation result buffer entries")
	)
	flag.Parse()

	var prog, sptProg *ir.Program
	if *src != "" {
		data, err := os.ReadFile(*src)
		die(err)
		p, err := lang.Compile(string(data))
		die(err)
		cres, err := compiler.Compile(p, compiler.DefaultOptions())
		die(err)
		prog = opt.Optimize(p)
		sptProg = cres.Program
	} else if *file != "" {
		data, err := os.ReadFile(*file)
		die(err)
		p, err := ir.Parse(string(data))
		die(err)
		prog, sptProg = p, p
	} else {
		b, ok := bench.ByName(*name)
		if !ok {
			fmt.Fprintf(os.Stderr, "sptsim: unknown benchmark %q; have %v\n", *name, bench.Names())
			os.Exit(2)
		}
		prog = b.Build(*scale)
		cres, err := compiler.Compile(prog, bench.CompilerOptions(*name))
		die(err)
		sptProg = cres.Program
	}
	cfg := arch.DefaultConfig()
	cfg.SRBSize = *srb
	switch *recovery {
	case "srxfc":
		cfg.Recovery = arch.RecoverySRXFC
	case "squash":
		cfg.Recovery = arch.RecoverySquash
	default:
		fmt.Fprintln(os.Stderr, "sptsim: bad -recovery")
		os.Exit(2)
	}
	switch *regcheck {
	case "value":
		cfg.RegCheck = arch.RegCheckValue
	case "update":
		cfg.RegCheck = arch.RegCheckUpdate
	default:
		fmt.Fprintln(os.Stderr, "sptsim: bad -regcheck")
		os.Exit(2)
	}

	base := simulate(prog, arch.BaselineConfig())
	spt := simulate(sptProg, cfg)

	label := *name
	if *file != "" {
		label = *file
	}
	if *src != "" {
		label = *src
	}
	fmt.Printf("%s (scale %d)\n", label, *scale)
	fmt.Printf("  baseline: %12d cycles  %12d instrs  (exec %d, pipe %d, dcache %d)\n",
		base.Cycles, base.Instrs, base.Breakdown.Exec, base.Breakdown.PipeStall, base.Breakdown.DcacheStall)
	fmt.Printf("  SPT:      %12d cycles  %12d instrs  (exec %d, pipe %d, dcache %d)\n",
		spt.Cycles, spt.Instrs, spt.Breakdown.Exec, spt.Breakdown.PipeStall, spt.Breakdown.DcacheStall)
	fmt.Printf("  speedup:  %.3fx\n\n", float64(base.Cycles)/float64(spt.Cycles))
	fmt.Printf("  windows %d  fast-commits %d (%.1f%%)  replays %d  kills %d  suppressed forks %d\n",
		spt.Windows, spt.FastCommits, 100*spt.FastCommitRatio(), spt.Replays, spt.Kills, spt.NoForks)
	fmt.Printf("  speculative instrs %d  committed %d  misspeculated %d (%.2f%%)\n",
		spt.SpecInstrs, spt.CommittedInstr, spt.MisspecInstrs, 100*spt.MisspecRatio())
	fmt.Printf("  speculative core utilization %.1f%%\n\n", 100*spt.SpecUtilization())

	fmt.Printf("  %-26s %12s %12s %9s %6s %6s\n", "loop", "base cycles", "spt cycles", "speedup", "fast%", "miss%")
	keys := make([]string, 0)
	for k := range spt.PerLoop {
		keys = append(keys, k.Func+"/"+k.Header)
	}
	sort.Strings(keys)
	for _, ks := range keys {
		var sl, bl *arch.LoopStats
		for k, v := range spt.PerLoop {
			if k.Func+"/"+k.Header == ks {
				sl = v
				bl = base.PerLoop[k]
			}
		}
		if sl == nil || bl == nil || sl.Windows == 0 {
			continue
		}
		fmt.Printf("  %-26s %12d %12d %8.2fx %5.1f%% %5.2f%%\n",
			ks, bl.Cycles, sl.Cycles, float64(bl.Cycles)/float64(sl.Cycles),
			100*sl.FastCommitRatio(), 100*sl.MisspecRatio())
	}
}

func simulate(p *ir.Program, cfg arch.Config) *arch.RunStats {
	lp, err := interp.Load(p)
	die(err)
	st, err := arch.NewMachine(lp, cfg).Run()
	die(err)
	return st
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sptsim:", err)
		os.Exit(1)
	}
}
