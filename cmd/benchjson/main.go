// benchjson converts `go test -bench` output on stdin into a small JSON
// document recording per-benchmark metrics (ns/op, allocs/op, custom
// ReportMetric units) and per-package plus total wall-clock. CI pipes the
// benchmark smoke run through it to emit BENCH_pr<N>.json so the perf
// trajectory of the reproduction is tracked across PRs.
//
// Usage: go test -run=NONE -bench=. -benchtime=1x -benchmem ./... | benchjson -o BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the emitted document.
type Report struct {
	SuiteSeconds float64            `json:"suite_seconds"`
	Packages     map[string]float64 `json:"package_seconds"`
	Benchmarks   []Benchmark        `json:"benchmarks"`
}

// parseBench parses a `BenchmarkX-8  10  123 ns/op  4 B/op  0 allocs/op`
// line; ok is false for lines that are not benchmark results.
func parseBench(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	// Strip the -GOMAXPROCS suffix so names are stable across machines.
	name := f[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	b := Benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			// Not every line carries the full value/unit pair list: without
			// -benchmem there is no allocs column, and some harnesses append
			// free-form notes. Keep the metrics parsed so far rather than
			// rejecting the whole line.
			break
		}
		b.Metrics[f[i+1]] = v
	}
	return b, len(b.Metrics) > 0
}

// parseOK parses an `ok  <pkg>  1.234s` package-summary line.
func parseOK(line string) (pkg string, secs float64, ok bool) {
	f := strings.Fields(line)
	if len(f) < 3 || f[0] != "ok" || !strings.HasSuffix(f[2], "s") {
		return "", 0, false
	}
	secs, err := strconv.ParseFloat(strings.TrimSuffix(f[2], "s"), 64)
	if err != nil {
		return "", 0, false
	}
	return f[1], secs, true
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	rep := Report{Packages: map[string]float64{}, Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if b, ok := parseBench(line); ok {
			rep.Benchmarks = append(rep.Benchmarks, b)
		} else if pkg, secs, ok := parseOK(line); ok {
			rep.Packages[pkg] = secs
			rep.SuiteSeconds += secs
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
