// benchjson converts `go test -bench` output on stdin into a small JSON
// document recording per-benchmark metrics (ns/op, allocs/op, custom
// ReportMetric units) and per-package plus total wall-clock. CI pipes the
// benchmark smoke run through it to emit BENCH_pr<N>.json so the perf
// trajectory of the reproduction is tracked across PRs.
//
// Usage: go test -run=NONE -bench=. -benchtime=1x -benchmem ./... | benchjson -o BENCH.json
//
// With -compare it becomes a regression gate instead: it diffs a new
// report (positional JSON file, or bench text on stdin) against an old
// one and exits non-zero when any selected benchmark's ns/op regressed
// past -threshold percent:
//
//	benchjson -compare BENCH_pr2.json -match '^BenchmarkAblation' BENCH_pr5.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the emitted document.
type Report struct {
	SuiteSeconds float64            `json:"suite_seconds"`
	Packages     map[string]float64 `json:"package_seconds"`
	Benchmarks   []Benchmark        `json:"benchmarks"`
}

// parseBench parses a `BenchmarkX-8  10  123 ns/op  4 B/op  0 allocs/op`
// line; ok is false for lines that are not benchmark results.
func parseBench(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	// Strip the -GOMAXPROCS suffix so names are stable across machines.
	name := f[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	b := Benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			// Not every line carries the full value/unit pair list: without
			// -benchmem there is no allocs column, and some harnesses append
			// free-form notes. Keep the metrics parsed so far rather than
			// rejecting the whole line.
			break
		}
		b.Metrics[f[i+1]] = v
	}
	return b, len(b.Metrics) > 0
}

// parseOK parses an `ok  <pkg>  1.234s` package-summary line.
func parseOK(line string) (pkg string, secs float64, ok bool) {
	f := strings.Fields(line)
	if len(f) < 3 || f[0] != "ok" || !strings.HasSuffix(f[2], "s") {
		return "", 0, false
	}
	secs, err := strconv.ParseFloat(strings.TrimSuffix(f[2], "s"), 64)
	if err != nil {
		return "", 0, false
	}
	return f[1], secs, true
}

// readReport parses `go test -bench` text from r into a Report.
func readReport(r io.Reader) (Report, error) {
	rep := Report{Packages: map[string]float64{}, Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if b, ok := parseBench(line); ok {
			rep.Benchmarks = append(rep.Benchmarks, b)
		} else if pkg, secs, ok := parseOK(line); ok {
			rep.Packages[pkg] = secs
			rep.SuiteSeconds += secs
		}
	}
	return rep, sc.Err()
}

// loadReport reads a previously emitted JSON report.
func loadReport(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return Report{}, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// delta is one compared benchmark: the relative ns/op change from old to
// new, positive when the new run is slower.
type delta struct {
	name     string
	old, new float64 // ns/op
	pct      float64 // 100 * (new-old)/old
}

// compareReports matches benchmarks by name (optionally filtered by re)
// and computes the ns/op delta for every benchmark present in both
// reports. Benchmarks that exist on only one side are skipped: the gate
// judges the common set, and an empty common set is the caller's error.
func compareReports(oldRep, newRep Report, re *regexp.Regexp) []delta {
	oldNs := make(map[string]float64, len(oldRep.Benchmarks))
	for _, b := range oldRep.Benchmarks {
		if ns, ok := b.Metrics["ns/op"]; ok {
			oldNs[b.Name] = ns
		}
	}
	var ds []delta
	for _, b := range newRep.Benchmarks {
		if re != nil && !re.MatchString(b.Name) {
			continue
		}
		newNs, ok := b.Metrics["ns/op"]
		if !ok {
			continue
		}
		old, ok := oldNs[b.Name]
		if !ok || old <= 0 {
			continue
		}
		ds = append(ds, delta{name: b.Name, old: old, new: newNs, pct: 100 * (newNs - old) / old})
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].pct > ds[j].pct })
	return ds
}

// runCompare diffs the new report (JSON file at newPath, or bench text on
// stdin when empty) against the old JSON report and returns the process
// exit code: 1 when any selected benchmark regressed past threshold
// percent, or when the comparison matched nothing at all.
func runCompare(oldPath, newPath, match string, threshold float64) int {
	var re *regexp.Regexp
	if match != "" {
		var err error
		if re, err = regexp.Compile(match); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: -match:", err)
			return 1
		}
	}
	oldRep, err := loadReport(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	var newRep Report
	if newPath != "" {
		newRep, err = loadReport(newPath)
	} else {
		newRep, err = readReport(os.Stdin)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}

	ds := compareReports(oldRep, newRep, re)
	if len(ds) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no benchmarks in common between %s and the new report (match %q) — refusing to pass an empty gate\n", oldPath, match)
		return 1
	}
	failed := 0
	fmt.Printf("%-40s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, d := range ds {
		mark := ""
		if d.pct > threshold {
			mark = "  REGRESSION"
			failed++
		}
		fmt.Printf("%-40s %14.0f %14.0f %+7.1f%%%s\n", d.name, d.old, d.new, d.pct, mark)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d of %d benchmarks regressed more than %g%%\n", failed, len(ds), threshold)
		return 1
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks within %g%% of %s\n", len(ds), threshold, oldPath)
	return 0
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	compare := flag.String("compare", "", "old JSON report to gate against: print ns/op deltas, exit 1 past -threshold")
	threshold := flag.Float64("threshold", 25, "compare: maximum tolerated ns/op regression in percent")
	match := flag.String("match", "", "compare: regexp selecting benchmark names to gate (empty = all common)")
	flag.Parse()

	if *compare != "" {
		os.Exit(runCompare(*compare, flag.Arg(0), *match, *threshold))
	}

	rep, err := readReport(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
