package main

import (
	"reflect"
	"testing"
)

func TestParseBenchMixedFormats(t *testing.T) {
	cases := []struct {
		name string
		line string
		want Benchmark
		ok   bool
	}{
		{
			name: "full benchmem line",
			line: "BenchmarkSim-8  10  123456 ns/op  512 B/op  7 allocs/op",
			want: Benchmark{Name: "BenchmarkSim", Iterations: 10, Metrics: map[string]float64{
				"ns/op": 123456, "B/op": 512, "allocs/op": 7,
			}},
			ok: true,
		},
		{
			name: "no allocs column",
			line: "BenchmarkCompile-4  200  98765 ns/op",
			want: Benchmark{Name: "BenchmarkCompile", Iterations: 200, Metrics: map[string]float64{
				"ns/op": 98765,
			}},
			ok: true,
		},
		{
			name: "custom ReportMetric units",
			line: "BenchmarkSweep  3  1.5 cycles/instr  2000 ns/op",
			want: Benchmark{Name: "BenchmarkSweep", Iterations: 3, Metrics: map[string]float64{
				"cycles/instr": 1.5, "ns/op": 2000,
			}},
			ok: true,
		},
		{
			name: "trailing free-form note keeps parsed metrics",
			line: "BenchmarkLoad-2  50  42 ns/op  some trailing note",
			want: Benchmark{Name: "BenchmarkLoad", Iterations: 50, Metrics: map[string]float64{
				"ns/op": 42,
			}},
			ok: true,
		},
		{
			name: "no numeric metrics at all",
			line: "BenchmarkBroken-2  50  oops ns/op",
			ok:   false,
		},
		{
			name: "not a benchmark line",
			line: "ok  \trepro/internal/arch\t1.234s",
			ok:   false,
		},
		{
			name: "header line",
			line: "goos: linux",
			ok:   false,
		},
		{
			name: "non-numeric iteration count",
			line: "BenchmarkX-8  fast  1 ns/op",
			ok:   false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := parseBench(tc.line)
			if ok != tc.ok {
				t.Fatalf("parseBench(%q) ok = %v; want %v", tc.line, ok, tc.ok)
			}
			if ok && !reflect.DeepEqual(got, tc.want) {
				t.Errorf("parseBench(%q) = %+v; want %+v", tc.line, got, tc.want)
			}
		})
	}
}

func TestParseOK(t *testing.T) {
	pkg, secs, ok := parseOK("ok  \trepro/internal/arch\t1.234s")
	if !ok || pkg != "repro/internal/arch" || secs != 1.234 {
		t.Errorf("parseOK = %q %v %v; want repro/internal/arch 1.234 true", pkg, secs, ok)
	}
	if _, _, ok := parseOK("FAIL\trepro/internal/arch\t0.1s"); ok {
		t.Error("parseOK accepted a FAIL line")
	}
	if _, _, ok := parseOK("ok  \trepro/internal/arch\t(cached)"); ok {
		t.Error("parseOK accepted a cached line without seconds")
	}
}
