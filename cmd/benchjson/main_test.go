package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"testing"
)

func TestParseBenchMixedFormats(t *testing.T) {
	cases := []struct {
		name string
		line string
		want Benchmark
		ok   bool
	}{
		{
			name: "full benchmem line",
			line: "BenchmarkSim-8  10  123456 ns/op  512 B/op  7 allocs/op",
			want: Benchmark{Name: "BenchmarkSim", Iterations: 10, Metrics: map[string]float64{
				"ns/op": 123456, "B/op": 512, "allocs/op": 7,
			}},
			ok: true,
		},
		{
			name: "no allocs column",
			line: "BenchmarkCompile-4  200  98765 ns/op",
			want: Benchmark{Name: "BenchmarkCompile", Iterations: 200, Metrics: map[string]float64{
				"ns/op": 98765,
			}},
			ok: true,
		},
		{
			name: "custom ReportMetric units",
			line: "BenchmarkSweep  3  1.5 cycles/instr  2000 ns/op",
			want: Benchmark{Name: "BenchmarkSweep", Iterations: 3, Metrics: map[string]float64{
				"cycles/instr": 1.5, "ns/op": 2000,
			}},
			ok: true,
		},
		{
			name: "trailing free-form note keeps parsed metrics",
			line: "BenchmarkLoad-2  50  42 ns/op  some trailing note",
			want: Benchmark{Name: "BenchmarkLoad", Iterations: 50, Metrics: map[string]float64{
				"ns/op": 42,
			}},
			ok: true,
		},
		{
			name: "no numeric metrics at all",
			line: "BenchmarkBroken-2  50  oops ns/op",
			ok:   false,
		},
		{
			name: "not a benchmark line",
			line: "ok  \trepro/internal/arch\t1.234s",
			ok:   false,
		},
		{
			name: "header line",
			line: "goos: linux",
			ok:   false,
		},
		{
			name: "non-numeric iteration count",
			line: "BenchmarkX-8  fast  1 ns/op",
			ok:   false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := parseBench(tc.line)
			if ok != tc.ok {
				t.Fatalf("parseBench(%q) ok = %v; want %v", tc.line, ok, tc.ok)
			}
			if ok && !reflect.DeepEqual(got, tc.want) {
				t.Errorf("parseBench(%q) = %+v; want %+v", tc.line, got, tc.want)
			}
		})
	}
}

func report(pairs map[string]float64) Report {
	rep := Report{Packages: map[string]float64{}}
	for name, ns := range pairs {
		rep.Benchmarks = append(rep.Benchmarks, Benchmark{
			Name: name, Iterations: 1, Metrics: map[string]float64{"ns/op": ns},
		})
	}
	return rep
}

func TestCompareReports(t *testing.T) {
	oldRep := report(map[string]float64{
		"BenchmarkAblationSRB":      100,
		"BenchmarkAblationRecovery": 200,
		"BenchmarkOnlyOld":          50,
	})
	newRep := report(map[string]float64{
		"BenchmarkAblationSRB":      300, // +200%
		"BenchmarkAblationRecovery": 150, // -25%
		"BenchmarkOnlyNew":          10,
	})

	ds := compareReports(oldRep, newRep, nil)
	if len(ds) != 2 {
		t.Fatalf("compared %d benchmarks; want 2 (the common set)", len(ds))
	}
	// Sorted worst-first.
	if ds[0].name != "BenchmarkAblationSRB" || ds[0].pct != 200 {
		t.Errorf("worst delta = %+v; want BenchmarkAblationSRB +200%%", ds[0])
	}
	if ds[1].name != "BenchmarkAblationRecovery" || ds[1].pct != -25 {
		t.Errorf("second delta = %+v; want BenchmarkAblationRecovery -25%%", ds[1])
	}

	re := regexp.MustCompile("Recovery$")
	if ds := compareReports(oldRep, newRep, re); len(ds) != 1 || ds[0].name != "BenchmarkAblationRecovery" {
		t.Errorf("filtered compare = %+v; want just BenchmarkAblationRecovery", ds)
	}
}

func writeReport(t *testing.T, dir, name string, rep Report) string {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunCompareGate(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", report(map[string]float64{
		"BenchmarkA": 100, "BenchmarkB": 100,
	}))
	okPath := writeReport(t, dir, "ok.json", report(map[string]float64{
		"BenchmarkA": 110, "BenchmarkB": 90,
	}))
	badPath := writeReport(t, dir, "bad.json", report(map[string]float64{
		"BenchmarkA": 110, "BenchmarkB": 200,
	}))
	disjointPath := writeReport(t, dir, "disjoint.json", report(map[string]float64{
		"BenchmarkZ": 1,
	}))

	if code := runCompare(oldPath, okPath, "", 25); code != 0 {
		t.Errorf("within-threshold compare exited %d; want 0", code)
	}
	if code := runCompare(oldPath, badPath, "", 25); code != 1 {
		t.Errorf("+100%% regression exited %d; want 1", code)
	}
	// The regressed benchmark filtered out by -match: gate passes.
	if code := runCompare(oldPath, badPath, "^BenchmarkA$", 25); code != 0 {
		t.Errorf("filtered compare exited %d; want 0", code)
	}
	// An empty common set must fail, not silently pass.
	if code := runCompare(oldPath, disjointPath, "", 25); code != 1 {
		t.Errorf("disjoint compare exited %d; want 1", code)
	}
	if code := runCompare(oldPath, okPath, "NoSuchBenchmark", 25); code != 1 {
		t.Errorf("unmatched -match exited %d; want 1", code)
	}
	if code := runCompare(oldPath, okPath, "(", 25); code != 1 {
		t.Errorf("invalid -match regexp exited %d; want 1", code)
	}
	if code := runCompare(filepath.Join(dir, "missing.json"), okPath, "", 25); code != 1 {
		t.Errorf("missing old report exited %d; want 1", code)
	}
}

func TestParseOK(t *testing.T) {
	pkg, secs, ok := parseOK("ok  \trepro/internal/arch\t1.234s")
	if !ok || pkg != "repro/internal/arch" || secs != 1.234 {
		t.Errorf("parseOK = %q %v %v; want repro/internal/arch 1.234 true", pkg, secs, ok)
	}
	if _, _, ok := parseOK("FAIL\trepro/internal/arch\t0.1s"); ok {
		t.Error("parseOK accepted a FAIL line")
	}
	if _, _, ok := parseOK("ok  \trepro/internal/arch\t(cached)"); ok {
		t.Error("parseOK accepted a cached line without seconds")
	}
}
