// Command sptd serves the SPT pipeline as a daemon: a batching,
// backpressured simulation-as-a-service layer over the compile → profile →
// baseline → SPT-simulate pipeline (internal/service).
//
// Usage:
//
//	sptd -addr :8750
//	sptd -addr :8750 -queue 128 -workers 8 -cache-entries 8192
//	sptd -addr :8750 -timeout 30s -cycles 500000000 -drain-timeout 20s
//	sptd -addr :8751 -node-id n1 -cluster n1=http://h1:8751,n2=http://h2:8751 \
//	     -cluster-journal-root /srv/spt/journals -store-dir /srv/spt/store1
//	sptd -addr :8752 -node-id n4 -join http://h1:8751 -store-dir /srv/spt/store4
//
// Endpoints:
//
//	POST /v1/compile         {"benchmark":"parser","scale":1}
//	POST /v1/simulate        {"benchmark":"parser","recovery":"squash","srb":64}
//	POST /v1/sweep           {"benchmark":"parser","sweep":"srb","points":[16,64]}
//	GET  /v1/jobs/{id}       poll an async job ("async": true on any POST)
//	GET  /v1/store/{key}     fetch a stored result by content key (peer tier)
//	GET  /v1/cluster         ring view: self, alive peers, stolen journals
//	GET  /healthz            liveness + queue state (legacy, always detailed)
//	GET  /livez              process liveness only — restart-worthy failures
//	GET  /readyz             503 while draining / replaying / store-degraded
//	GET  /metrics            Prometheus text exposition
//
// A full queue rejects with 429 + Retry-After (backpressure); SIGTERM or
// SIGINT begins a graceful drain: admission stops (503), queued and
// in-flight jobs finish under -drain-timeout, then the process exits 0 on
// a clean drain and 1 if jobs had to be canceled.
//
// With -node-id and -cluster (or -join), daemons form a crash-tolerant
// cluster: membership spreads by gossip (a node started with -join needs
// only one live seed URL), submissions are forwarded one hop to the
// consistent-hash owner of the request's benchmark/scale, results read
// through a tiered store (memory → checksummed disk under -store-dir →
// alive peers) and are replicated ahead of failure to -replicas ring
// successors with background anti-entropy repair, and each node gossips
// with the others — when one dies, exactly one survivor steals its journal
// under -cluster-journal-root (atomic rename), adopts its jobs, and
// restores its journaled results into the store. See ARCHITECTURE.md,
// "Distributed operation".
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/guard"
	"repro/internal/nativecap"
	"repro/internal/service"
)

// parseMembers decodes -cluster's "n1=http://host:port,n2=..." syntax.
func parseMembers(spec string) (map[string]string, error) {
	members := make(map[string]string)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, url, ok := strings.Cut(part, "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("bad -cluster entry %q (want name=url)", part)
		}
		members[name] = strings.TrimRight(url, "/")
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("-cluster listed no members")
	}
	return members, nil
}

// advertiseURL derives the base URL peers reach this node at: the explicit
// -advertise wins; otherwise it is built from -addr, substituting
// 127.0.0.1 for a wildcard host.
func advertiseURL(advertise, addr string) string {
	if advertise != "" {
		return strings.TrimRight(advertise, "/")
	}
	host, port, ok := strings.Cut(addr, ":")
	if !ok {
		return "http://" + addr
	}
	if host == "" || host == "0.0.0.0" || host == "[::]" {
		host = "127.0.0.1"
	}
	return "http://" + host + ":" + port
}

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8750", "listen address")
		queueCap     = flag.Int("queue", 64, "job queue bound (full queue answers 429)")
		workers      = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		cacheEntries = flag.Int("cache-entries", 4096, "artifact cache bound (LRU-evicted; -1 = unbounded)")
		cacheBytes   = flag.Int64("cache-bytes", 1<<30, "trace recording cache byte bound (LRU-evicted; -1 = unbounded)")
		timeout      = flag.Duration("timeout", 0, "default wall-clock budget per job stage (0 = unlimited)")
		steps        = flag.Int64("budget", 0, "default architectural step budget per simulation (0 = unlimited)")
		cycles       = flag.Int64("cycles", 0, "default cycle budget per simulation (0 = unlimited)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain waits for in-flight jobs")
		journalDir   = flag.String("journal-dir", "", "write-ahead journal directory for durable async jobs (empty = no journal)")
		maxAttempts  = flag.Int("max-attempts", 0, "executions per durable async job before it fails terminally (0 = default 3)")
		compactEvery = flag.Int("compact-every", 0, "auto-compact the journal after this many appends (0 = default 256, negative = manual only)")
		chaosSeed    = flag.Int64("chaos-seed", 0, "enable the built-in chaos fault plan with this seed (0 = off)")
		chaosPlan    = flag.String("chaos-plan", "", "JSON fault-plan file (overrides -chaos-seed's default plan)")
		nativeCap    = flag.Bool("native-capture", true, "compile programs to native capture modules via the Go toolchain (silent interpreter fallback when unavailable)")
		nativeDir    = flag.String("native-cache-dir", "", "native-capture module cache directory (empty = <tmp>/sptd-nativecap)")
		nativeBytes  = flag.Int64("native-cache-bytes", 256<<20, "native-capture module cache byte bound (LRU-evicted)")

		nodeID      = flag.String("node-id", "", "this node's cluster name (enables cluster mode with -cluster or -join)")
		clusterSpec = flag.String("cluster", "", "static cluster members as name=url,name=url (must include -node-id)")
		joinSpec    = flag.String("join", "", "comma-separated seed URLs of existing members to gossip-join (no static list needed)")
		advertise   = flag.String("advertise", "", "base URL peers reach this node at (default derived from -addr; required with -join behind NAT)")
		storeDir    = flag.String("store-dir", "", "tiered result store disk-spill directory (survives restarts; empty = memory tier only)")
		journalRoot = flag.String("cluster-journal-root", "", "shared directory of per-node journal dirs (<root>/<node>/jobs.journal) enabling work stealing")
		heartbeat   = flag.Duration("heartbeat", 500*time.Millisecond, "cluster peer probe interval (legacy name)")
		gossipEvery = flag.Duration("gossip-interval", 0, "gossip round interval (0 = -heartbeat)")
		missesMax   = flag.Int("heartbeat-misses", 3, "consecutive missed gossip exchanges before indirect probes and suspicion")
		suspectFor  = flag.Duration("suspect-after", 0, "grace between suspect and dead, during which a live peer can refute (0 = 3x gossip interval)")
		replicas    = flag.Int("replicas", 2, "store replication factor RF, copies per object including the owner (1 = off)")
		aeEvery     = flag.Duration("anti-entropy-interval", 2*time.Second, "store digest-exchange cadence")
		testHooks   = flag.Bool("cluster-test-hooks", false, "mount POST /v1/gossip/block (partition testing only; never in production)")
	)
	flag.Parse()

	cfg := service.Config{
		QueueCapacity: *queueCap,
		Workers:       *workers,
		CacheEntries:  *cacheEntries,
		CacheBytes:    *cacheBytes,
		MaxAttempts:   *maxAttempts,
		CompactEvery:  *compactEvery,
		NodeName:      *nodeID,
		DefaultBudget: guard.Budget{Timeout: *timeout, Steps: *steps, Cycles: *cycles},
	}
	clustered := *nodeID != "" && (*clusterSpec != "" || *joinSpec != "")
	jdir := *journalDir
	if clustered && *journalRoot != "" {
		// In cluster mode the journal lives under the shared root so peers
		// can steal it; an explicit -journal-dir still wins.
		if jdir == "" {
			jdir = filepath.Join(*journalRoot, *nodeID)
		}
	}
	if jdir != "" {
		jn, err := service.OpenJournal(jdir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sptd: open journal:", err)
			os.Exit(1)
		}
		cfg.Journal = jn
	}
	// Native capture is best-effort by design: a missing toolchain or an
	// unbuildable module falls back to the interpreter per capture, so a
	// construction failure (unusable cache dir) only disables the fast path.
	if *nativeCap {
		nc, err := nativecap.New(nativecap.Options{Dir: *nativeDir, MaxBytes: *nativeBytes})
		if err != nil {
			fmt.Fprintln(os.Stderr, "sptd: native capture disabled:", err)
		} else {
			cfg.Native = nc
			defer nc.Close()
		}
	}
	var injector *chaos.Injector
	if *chaosPlan != "" {
		plan, err := chaos.LoadPlan(*chaosPlan)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sptd:", err)
			os.Exit(1)
		}
		injector = chaos.New(plan)
	} else if *chaosSeed != 0 {
		injector = chaos.New(chaos.DefaultPlan(*chaosSeed))
	}

	// The tiered store is useful standalone too (-store-dir without
	// -cluster): warm restarts serve from disk instead of recomputing.
	var store *cluster.Store
	var srv *service.Server // captured by the degradation callback below
	if *storeDir != "" || clustered {
		st, err := cluster.NewStore(cluster.StoreConfig{
			Dir: *storeDir,
			OnDegraded: func(degraded bool) {
				if srv != nil {
					srv.SetCondition(service.CondStoreDegraded, degraded)
				}
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "sptd:", err)
			os.Exit(1)
		}
		store = st
	}

	// Pipeline composition, innermost first: real pipeline, chaos faults,
	// store read-through. The store wraps chaos so a stored result is
	// served without re-exposing the job to fault injection — exactly like
	// a cache hit skips recomputation.
	cfg.WrapPipeline = func(p service.Pipeline) service.Pipeline {
		if injector != nil {
			p = injector.WrapPipeline(p)
		}
		if store != nil {
			p = cluster.NewPipeline(p, store)
		}
		return p
	}
	// extras is appended to after construction (the cluster manager needs
	// the server first); the closure reads it at scrape time.
	var extras []func(io.Writer)
	if injector != nil {
		extras = append(extras, injector.Metrics)
		fmt.Fprintln(os.Stderr, "sptd: chaos fault injection ENABLED")
	}
	if store != nil {
		extras = append(extras, store.Metrics)
	}
	cfg.ExtraMetrics = func(w io.Writer) {
		for _, f := range extras {
			f(w)
		}
	}

	s, err := service.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sptd:", err)
		os.Exit(1)
	}
	srv = s
	handler := srv.Handler()
	if injector != nil {
		handler = injector.Middleware(handler)
	}

	var mgr *cluster.Manager
	if clustered {
		var members map[string]string
		if *clusterSpec != "" {
			members, err = parseMembers(*clusterSpec)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sptd:", err)
				os.Exit(1)
			}
		} else {
			// -join mode: the static view is just this node; everything else
			// arrives by gossip through the seeds.
			members = map[string]string{*nodeID: advertiseURL(*advertise, *addr)}
		}
		var seeds []string
		for _, s := range strings.Split(*joinSpec, ",") {
			if s = strings.TrimRight(strings.TrimSpace(s), "/"); s != "" {
				seeds = append(seeds, s)
			}
		}
		interval := *gossipEvery
		if interval <= 0 {
			interval = *heartbeat
		}
		mgr, err = cluster.NewManager(cluster.ManagerConfig{
			Self:                *nodeID,
			Members:             members,
			Seeds:               seeds,
			JournalRoot:         *journalRoot,
			Heartbeat:           interval,
			MissThreshold:       *missesMax,
			SuspectAfter:        *suspectFor,
			Replicas:            *replicas,
			AntiEntropyInterval: *aeEvery,
			EnableTestHooks:     *testHooks,
			Store:               store,
			Server:              srv,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "sptd:", err)
			os.Exit(1)
		}
		extras = append(extras, mgr.Metrics)
		handler = mgr.Middleware(handler)
		names := make([]string, 0, len(members))
		for n := range members {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(os.Stderr, "sptd: cluster mode, node %s of %s", *nodeID, strings.Join(names, ","))
		if len(seeds) > 0 {
			fmt.Fprintf(os.Stderr, ", joining via %s", strings.Join(seeds, ","))
		}
		fmt.Fprintln(os.Stderr)
		if *testHooks {
			fmt.Fprintln(os.Stderr, "sptd: cluster test hooks ENABLED (partition endpoint mounted)")
		}
	}
	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	if mgr != nil {
		mgr.Start()
	}

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "sptd: listening on %s\n", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "sptd:", err)
		os.Exit(1)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "sptd: %v — draining (deadline %s)\n", sig, *drainTimeout)
	}

	// Stop admission first so in-flight request handlers see 503, then let
	// queued + running jobs finish under the deadline.
	srv.BeginDrain()
	if mgr != nil {
		mgr.Stop()
	}
	drainErr := srv.Drain(*drainTimeout)

	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "sptd: http shutdown:", err)
	}
	if drainErr != nil {
		fmt.Fprintln(os.Stderr, "sptd:", drainErr)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "sptd: drained cleanly")
}
