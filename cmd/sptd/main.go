// Command sptd serves the SPT pipeline as a daemon: a batching,
// backpressured simulation-as-a-service layer over the compile → profile →
// baseline → SPT-simulate pipeline (internal/service).
//
// Usage:
//
//	sptd -addr :8750
//	sptd -addr :8750 -queue 128 -workers 8 -cache-entries 8192
//	sptd -addr :8750 -timeout 30s -cycles 500000000 -drain-timeout 20s
//
// Endpoints:
//
//	POST /v1/compile    {"benchmark":"parser","scale":1}
//	POST /v1/simulate   {"benchmark":"parser","recovery":"squash","srb":64}
//	POST /v1/sweep      {"benchmark":"parser","sweep":"srb","points":[16,64]}
//	GET  /v1/jobs/{id}  poll an async job ("async": true on any POST)
//	GET  /healthz       liveness + queue state
//	GET  /metrics       Prometheus text exposition
//
// A full queue rejects with 429 + Retry-After (backpressure); SIGTERM or
// SIGINT begins a graceful drain: admission stops (503), queued and
// in-flight jobs finish under -drain-timeout, then the process exits 0 on
// a clean drain and 1 if jobs had to be canceled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/guard"
	"repro/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8750", "listen address")
		queueCap     = flag.Int("queue", 64, "job queue bound (full queue answers 429)")
		workers      = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		cacheEntries = flag.Int("cache-entries", 4096, "artifact cache bound (LRU-evicted; -1 = unbounded)")
		cacheBytes   = flag.Int64("cache-bytes", 1<<30, "trace recording cache byte bound (LRU-evicted; -1 = unbounded)")
		timeout      = flag.Duration("timeout", 0, "default wall-clock budget per job stage (0 = unlimited)")
		steps        = flag.Int64("budget", 0, "default architectural step budget per simulation (0 = unlimited)")
		cycles       = flag.Int64("cycles", 0, "default cycle budget per simulation (0 = unlimited)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain waits for in-flight jobs")
		journalDir   = flag.String("journal-dir", "", "write-ahead journal directory for durable async jobs (empty = no journal)")
		maxAttempts  = flag.Int("max-attempts", 0, "executions per durable async job before it fails terminally (0 = default 3)")
		chaosSeed    = flag.Int64("chaos-seed", 0, "enable the built-in chaos fault plan with this seed (0 = off)")
		chaosPlan    = flag.String("chaos-plan", "", "JSON fault-plan file (overrides -chaos-seed's default plan)")
	)
	flag.Parse()

	cfg := service.Config{
		QueueCapacity: *queueCap,
		Workers:       *workers,
		CacheEntries:  *cacheEntries,
		CacheBytes:    *cacheBytes,
		MaxAttempts:   *maxAttempts,
		DefaultBudget: guard.Budget{Timeout: *timeout, Steps: *steps, Cycles: *cycles},
	}
	if *journalDir != "" {
		jn, err := service.OpenJournal(*journalDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sptd: open journal:", err)
			os.Exit(1)
		}
		cfg.Journal = jn
	}
	var injector *chaos.Injector
	if *chaosPlan != "" {
		plan, err := chaos.LoadPlan(*chaosPlan)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sptd:", err)
			os.Exit(1)
		}
		injector = chaos.New(plan)
	} else if *chaosSeed != 0 {
		injector = chaos.New(chaos.DefaultPlan(*chaosSeed))
	}
	if injector != nil {
		cfg.WrapPipeline = injector.WrapPipeline
		cfg.ExtraMetrics = injector.Metrics
		fmt.Fprintln(os.Stderr, "sptd: chaos fault injection ENABLED")
	}

	srv, err := service.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sptd:", err)
		os.Exit(1)
	}
	handler := srv.Handler()
	if injector != nil {
		handler = injector.Middleware(handler)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: handler}

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "sptd: listening on %s\n", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "sptd:", err)
		os.Exit(1)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "sptd: %v — draining (deadline %s)\n", sig, *drainTimeout)
	}

	// Stop admission first so in-flight request handlers see 503, then let
	// queued + running jobs finish under the deadline.
	srv.BeginDrain()
	drainErr := srv.Drain(*drainTimeout)

	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "sptd: http shutdown:", err)
	}
	if drainErr != nil {
		fmt.Fprintln(os.Stderr, "sptd:", drainErr)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "sptd: drained cleanly")
}
