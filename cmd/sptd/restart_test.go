package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"repro/spt/client"
)

// buildSptd compiles the daemon binary once per test run.
func buildSptd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "sptd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build sptd: %v\n%s", err, out)
	}
	return bin
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// startDaemon launches sptd and waits for /healthz.
func startDaemon(t *testing.T, bin, addr, journalDir string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, "-addr", addr, "-journal-dir", journalDir, "-workers", "1")
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start sptd: %v", err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	})
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatal("sptd did not become healthy")
	return nil
}

// TestRestartRecoversDurableJobs is satellite (c): submit async jobs
// against a journaled daemon, SIGKILL it mid-flight, restart it on the
// same journal, and require every job to reach done with results identical
// to a fault-free synchronous run.
func TestRestartRecoversDurableJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test: builds and kills a daemon")
	}
	bin := buildSptd(t)
	addr := freeAddr(t)
	journalDir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	daemon := startDaemon(t, bin, addr, journalDir)
	cl := client.New("http://"+addr, http.DefaultClient)

	// Distinct SRB sizes make each job a distinct simulation — no artifact
	// cache hit can paper over a lost job.
	reqs := []client.SimulateRequest{
		{Benchmark: "parser", SRB: 16, JobRequest: client.JobRequest{Async: true}},
		{Benchmark: "parser", SRB: 32, JobRequest: client.JobRequest{Async: true}},
		{Benchmark: "parser", SRB: 64, JobRequest: client.JobRequest{Async: true}},
		{Benchmark: "parser", SRB: 128, JobRequest: client.JobRequest{Async: true}},
	}
	ids := make([]string, len(reqs))
	for i, req := range reqs {
		sub, err := cl.Simulate(ctx, req)
		if err != nil {
			t.Fatalf("submit job %d: %v", i, err)
		}
		if sub.JobID == "" {
			t.Fatalf("job %d: no id", i)
		}
		ids[i] = sub.JobID
	}

	// Wait until the single worker is actually executing something, then
	// SIGKILL: at least one job dies mid-run, the rest die queued.
	waitUntil(t, ctx, func() bool {
		for _, id := range ids {
			js, err := cl.Job(ctx, id)
			if err == nil && js.State == client.StateRunning {
				return true
			}
		}
		return false
	}, "a job to enter running state")
	if err := daemon.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	_, _ = daemon.Process.Wait()

	// Restart on the same journal; every job must converge to done/ok.
	startDaemon(t, bin, addr, journalDir)
	results := make([]*client.SimulateResponse, len(ids))
	for i, id := range ids {
		js, err := cl.Wait(ctx, id, 50*time.Millisecond)
		if err != nil {
			t.Fatalf("wait %s after restart: %v", id, err)
		}
		if js.Outcome != client.OutcomeOK {
			t.Fatalf("job %s outcome = %s (err %+v), want ok", id, js.Outcome, js.Error)
		}
		var resp client.SimulateResponse
		if err := jsonUnmarshal(js.Result, &resp); err != nil {
			t.Fatalf("decode %s result: %v", id, err)
		}
		results[i] = &resp
	}

	// Correctness: the recovered results are bit-identical to a fault-free
	// synchronous run of the same request (the simulator is deterministic
	// and the restarted daemon is healthy).
	for i, req := range reqs {
		req.Async = false
		fresh, err := cl.Simulate(ctx, req)
		if err != nil {
			t.Fatalf("fresh sync run %d: %v", i, err)
		}
		got, want := results[i], fresh
		if got.Baseline != want.Baseline || got.SPT != want.SPT || got.Speedup != want.Speedup {
			t.Fatalf("job %s diverged from fault-free run:\nrecovered %+v\nfresh     %+v", ids[i], got, want)
		}
	}
}

func waitUntil(t *testing.T, ctx context.Context, cond func() bool, what string) {
	t.Helper()
	for {
		if cond() {
			return
		}
		select {
		case <-ctx.Done():
			t.Fatalf("timed out waiting for %s", what)
		case <-time.After(20 * time.Millisecond):
		}
	}
}

func jsonUnmarshal(data []byte, v any) error {
	if len(data) == 0 {
		return fmt.Errorf("empty result payload")
	}
	return json.Unmarshal(data, v)
}
