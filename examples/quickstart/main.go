// Quickstart: build a small loop in the IR, run it through the cost-driven
// SPT compiler, and compare the single-core baseline against the two-core
// SPT machine.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/ir"
	"repro/spt"
)

// buildProgram constructs:
//
//	sum = 0
//	for i = 3000; i > 0; i-- {
//	    v = hash-ish chain over i      (independent per iteration)
//	    sum ^= v                        (cheap carried accumulator)
//	}
//	return sum
func buildProgram() *spt.Program {
	b := ir.NewFuncBuilder("main", 0)
	i, sum, cond, zero, v := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
	b.Block("entry")
	b.MovI(i, 3000)
	b.MovI(sum, 0)
	b.MovI(zero, 0)
	b.Jmp("loop")
	b.Block("loop")
	b.ALU(ir.CmpGT, cond, i, zero)
	b.Br(cond, "body", "done")
	b.Block("body")
	b.MulI(v, i, 2654435761)
	for k := 0; k < 12; k++ { // a serial dependence chain: realistic scalar ILP
		b.AddI(v, v, int64(k+1))
		b.MulI(v, v, 3)
	}
	b.ALU(ir.Xor, sum, sum, v)
	b.AddI(i, i, -1)
	b.Jmp("loop")
	b.Block("done")
	b.Ret(sum)
	return ir.NewProgramBuilder("main").AddFunc(b.Done()).Done()
}

func main() {
	prog := buildProgram()

	// 1. Compile: profiling, misspeculation-cost-driven partition search,
	//    loop selection, SPT code emission.
	cres, err := spt.Compile(prog, spt.DefaultCompileOptions())
	if err != nil {
		log.Fatal(err)
	}
	for _, l := range cres.Loops {
		status := "rejected: " + l.Reason
		if l.Selected {
			status = fmt.Sprintf("SELECTED (est. %.2fx, hoisted %v)", l.EstSpeedup, l.Hoisted)
		}
		fmt.Printf("loop %s/%s: body %.0f instrs, trip %.0f — %s\n",
			l.Key.Func, l.Key.Header, l.BodySize, l.TripCount, status)
	}

	// 2. Sequential semantics are preserved exactly.
	r1, _, _ := spt.Run(prog)
	r2, _, _ := spt.Run(cres.Program)
	fmt.Printf("\nresult: original=%d transformed=%d (equal: %v)\n", r1, r2, r1 == r2)

	// 3. Simulate both machines.
	base, err := spt.Simulate(prog, spt.BaselineMachine())
	if err != nil {
		log.Fatal(err)
	}
	fast, err := spt.Simulate(cres.Program, spt.DefaultMachine())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbaseline: %d cycles\nSPT:      %d cycles\nspeedup:  %.2fx\n",
		base.Cycles, fast.Cycles, float64(base.Cycles)/float64(fast.Cycles))
	fmt.Printf("windows %d, fast-commit %.0f%%, misspeculated %.2f%% of speculative instructions\n",
		fast.Windows, 100*fast.FastCommitRatio(), 100*fast.MisspecRatio())
}
