// Figure 5 walkthrough: software value prediction. A loop-carried value is
// updated through an opaque, memory-writing call (x = bar(x)), so the
// compiler cannot hoist its computation pre-fork. Value profiling finds
// that bar reliably adds 2, so the compiler emits a software predictor
// (pred_x = x + 2 before SPT_FORK) and check/recovery code after the call —
// the carried dependence probability collapses to the misprediction rate.
//
//	go run ./examples/svp
package main

import (
	"fmt"
	"log"

	"repro/internal/ir"
	"repro/spt"
)

func buildProgram(n int64) *spt.Program {
	// bar(x): writes a global (not hoistable) and returns x+2 — usually.
	bar := ir.NewFuncBuilder("bar", 1)
	v, g, t, c := bar.NewReg(), bar.NewReg(), bar.NewReg(), bar.NewReg()
	bar.Block("entry")
	bar.GAddr(g, "side")
	bar.Store(g, 0, bar.Param(0))
	// Every 32nd value takes a different path (misprediction fodder).
	bar.MovI(t, 31)
	bar.ALU(ir.And, c, bar.Param(0), t)
	bar.Br(c, "common", "rare")
	bar.Block("common")
	bar.AddI(v, bar.Param(0), 2)
	bar.Ret(v)
	bar.Block("rare")
	bar.AddI(v, bar.Param(0), 7)
	bar.Ret(v)

	// foo(x): independent per-iteration work.
	foo := ir.NewFuncBuilder("foo", 1)
	w := foo.NewReg()
	foo.Block("entry")
	foo.MulI(w, foo.Param(0), 3)
	for k := 0; k < 10; k++ {
		foo.AddI(w, w, int64(k))
		foo.MulI(w, w, 5)
	}
	foo.Ret(w)

	b := ir.NewFuncBuilder("main", 0)
	x, i, cond, zero, acc, t2 := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
	b.Block("entry")
	b.MovI(x, 64)
	b.MovI(i, n)
	b.MovI(zero, 0)
	b.MovI(acc, 0)
	b.Jmp("loop")
	b.Block("loop")
	b.ALU(ir.CmpGT, cond, i, zero)
	b.Br(cond, "body", "done")
	b.Block("body")
	b.Call(t2, "foo", x) // foo(x)
	b.ALU(ir.Xor, acc, acc, t2)
	b.Call(x, "bar", x) // x = bar(x): the critical carried dependence
	b.AddI(i, i, -1)
	b.Jmp("loop")
	b.Block("done")
	b.Ret(acc)
	return ir.NewProgramBuilder("main").
		AddFunc(b.Done()).AddFunc(foo.Done()).AddFunc(bar.Done()).
		AddGlobal("side", 1).Done()
}

func main() {
	prog := buildProgram(2000)

	// With SVP (the default pipeline).
	withSVP, err := spt.Compile(prog, spt.DefaultCompileOptions())
	if err != nil {
		log.Fatal(err)
	}
	// Without SVP: set the confidence bar impossibly high.
	opts := spt.DefaultCompileOptions()
	opts.Cost.MinSVPConfidence = 1.01
	withoutSVP, err := spt.Compile(prog, opts)
	if err != nil {
		log.Fatal(err)
	}

	for _, l := range withSVP.Loops {
		if l.Key.Func != "main" {
			continue
		}
		fmt.Printf("loop %s/%s: %d candidates, predicted regs %v, hoisted %v\n",
			l.Key.Func, l.Key.Header, l.Candidates, l.Predicted, l.Hoisted)
		fmt.Printf("  with SVP: misspec cost %.2f, est. speedup %.2fx, %s\n",
			l.MissCost, l.EstSpeedup, status(l))
	}
	for _, l := range withoutSVP.Loops {
		if l.Key.Func != "main" {
			continue
		}
		fmt.Printf("  without SVP: misspec cost %.2f, est. speedup %.2fx, %s\n",
			l.MissCost, l.EstSpeedup, status(l))
	}

	base, _ := spt.Simulate(prog, spt.BaselineMachine())
	svpRun, _ := spt.Simulate(withSVP.Program, spt.DefaultMachine())
	plainRun, _ := spt.Simulate(withoutSVP.Program, spt.DefaultMachine())

	fmt.Printf("\nbaseline            %8d cycles\n", base.Cycles)
	fmt.Printf("SPT without SVP     %8d cycles  (%.2fx, fast-commit %.0f%%)\n",
		plainRun.Cycles, float64(base.Cycles)/float64(plainRun.Cycles), 100*plainRun.FastCommitRatio())
	fmt.Printf("SPT with SVP        %8d cycles  (%.2fx, fast-commit %.0f%%)\n",
		svpRun.Cycles, float64(base.Cycles)/float64(svpRun.Cycles), 100*svpRun.FastCommitRatio())

	r1, _, _ := spt.Run(prog)
	r2, _, _ := spt.Run(withSVP.Program)
	fmt.Printf("\nresults equal: %v (the check/recovery code repairs mispredictions)\n", r1 == r2)
}

func status(l *spt.LoopReport) string {
	if l.Selected {
		return "selected"
	}
	return "rejected: " + l.Reason
}
