// Figure 1 walkthrough: the paper opens with a loop from SPECint2000
// parser that frees a linked list node by node. Classic parallelization
// fails (the list chase is a sequential dependence), but the SPT compiler
// hoists the next-pointer load into the pre-fork region and the machine
// runs consecutive iterations on two cores, recovering the occasional
// free-list bookkeeping violations with selective re-execution.
//
//	go run ./examples/parserloop
package main

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/spt"
)

func main() {
	prog := spt.Benchmark("parser", 1)
	cres, err := spt.Compile(prog, spt.BenchmarkCompileOptions("parser"))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("The Figure 1 loop (freelist):")
	for _, l := range cres.Loops {
		if l.Key.Func != "freelist" {
			continue
		}
		fmt.Printf("  body %.0f dynamic instrs, trip %.0f, %d violation candidates\n",
			l.BodySize, l.TripCount, l.Candidates)
		fmt.Printf("  optimal partition: hoist %v pre-fork (size %.0f cycles), misspec cost %.2f\n",
			l.Hoisted, l.PreFork, l.MissCost)
		fmt.Printf("  estimated loop speedup %.2fx -> %s\n", l.EstSpeedup, verdict(l))
	}

	base, err := spt.Simulate(prog, spt.BaselineMachine())
	if err != nil {
		log.Fatal(err)
	}
	fast, err := spt.Simulate(cres.Program, spt.DefaultMachine())
	if err != nil {
		log.Fatal(err)
	}

	key := spt.LoopKey{Func: "freelist", Header: "head"}
	bl, sl := base.PerLoop[key], fast.PerLoop[key]
	if bl == nil || sl == nil {
		log.Fatal("free loop not measured")
	}
	fmt.Printf("\nMeasured on the two-core SPT machine (paper's headline in parens):\n")
	fmt.Printf("  loop speedup        %5.1f%%   (>40%%)\n", 100*(float64(bl.Cycles)/float64(sl.Cycles)-1))
	fmt.Printf("  perfectly parallel  %5.1f%%   (~20%% of speculative threads)\n", 100*sl.FastCommitRatio())
	fmt.Printf("  invalid instrs      %5.2f%%   (~5%% of speculatively executed instructions)\n",
		100*sl.MisspecRatio())
	fmt.Printf("  windows: %d (%d fast commits, %d replays, %d kills)\n",
		sl.Windows, sl.FastCommits, sl.Replays, sl.Kills)

	fmt.Printf("\nWhole program: %.1f%% speedup (%d -> %d cycles)\n",
		100*(float64(base.Cycles)/float64(fast.Cycles)-1), base.Cycles, fast.Cycles)
	_ = arch.DefaultConfig
}

func verdict(l *spt.LoopReport) string {
	if l.Selected {
		return "selected as an SPT loop"
	}
	return "rejected: " + l.Reason
}
