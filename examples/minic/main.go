// MiniC front end: the toolchain end to end from *source code* — a small
// C-like program is compiled to the IR, auto-parallelized by the
// cost-driven SPT compiler, and raced against the single-core baseline.
//
//	go run ./examples/minic
package main

import (
	"fmt"
	"log"

	"repro/spt"
)

const source = `
# Histogram + smoothing over a data table: the hot loops carry only cheap
# induction state, so the SPT compiler hoists it and the two cores overlap
# whole iterations.

var data[4096];
var hist[64];

func mix(x) {
    var v = x * 2654435761;
    var k;
    for (k = 0; k < 8; k = k + 1) {
        v = v * 3 + k;
    }
    return v;
}

func main() {
    var i;
    # fill the table with pseudo-random values
    for (i = 0; i < 4096; i = i + 1) {
        data[i] = mix(i);
    }
    # histogram the top bits
    for (i = 0; i < 4096; i = i + 1) {
        var b = (data[i] >> 58) & 63;
        hist[b] = hist[b] + 1;
    }
    # fold the histogram into a checksum
    var s = 0;
    for (i = 0; i < 64; i = i + 1) {
        if (i < 63 && hist[i] > 0) {
            s = s ^ (hist[i] * (i + 1));
        }
    }
    return s;
}
`

func main() {
	prog, err := spt.CompileSource(source)
	if err != nil {
		log.Fatal(err)
	}
	ret, steps, err := spt.Run(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MiniC program: %d dynamic instructions, returns %d\n\n", steps, ret)

	cres, err := spt.Compile(prog, spt.DefaultCompileOptions())
	if err != nil {
		log.Fatal(err)
	}
	for _, l := range cres.Loops {
		status := "rejected: " + l.Reason
		if l.Selected {
			status = fmt.Sprintf("SELECTED (est %.2fx, hoisted %v)", l.EstSpeedup, l.Hoisted)
		}
		fmt.Printf("  loop %s/%s (body %.0f, trip %.0f): %s\n",
			l.Key.Func, l.Key.Header, l.BodySize, l.TripCount, status)
	}

	base, err := spt.Simulate(spt.Optimize(prog), spt.BaselineMachine())
	if err != nil {
		log.Fatal(err)
	}
	fast, err := spt.Simulate(cres.Program, spt.DefaultMachine())
	if err != nil {
		log.Fatal(err)
	}
	r2, _, _ := spt.Run(cres.Program)
	fmt.Printf("\nbaseline %d cycles, SPT %d cycles: %.2fx speedup (results equal: %v)\n",
		base.Cycles, fast.Cycles, float64(base.Cycles)/float64(fast.Cycles), ret == r2)
}
