// Region-based speculation (the paper's Section 6 future-work direction):
// instead of speculating on the next loop iteration, fork the second half
// of a straight-line region while the main core executes the first half.
// Works when the halves are independent; dependent halves misspeculate and
// replay.
//
//	go run ./examples/region
package main

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/transform"
	"repro/spt"
)

func buildProgram(reps int64, dependent bool) *spt.Program {
	w := ir.NewFuncBuilder("work", 1)
	x := w.Param(0)
	a, b2 := w.NewReg(), w.NewReg()
	w.Block("entry")
	w.MulI(a, x, 3)
	for k := 0; k < 15; k++ {
		w.AddI(a, a, int64(k))
		w.MulI(a, a, 5)
	}
	seed := x
	if dependent {
		seed = a // second half consumes the first half's result
	}
	w.MulI(b2, seed, 7)
	for k := 0; k < 15; k++ {
		w.AddI(b2, b2, int64(k)+1)
		w.MulI(b2, b2, 3)
	}
	w.ALU(ir.Xor, a, a, b2)
	w.Ret(a)

	m := ir.NewFuncBuilder("main", 0)
	i, c, z, s, v := m.NewReg(), m.NewReg(), m.NewReg(), m.NewReg(), m.NewReg()
	m.Block("entry")
	m.MovI(i, reps)
	m.MovI(z, 0)
	m.MovI(s, 0)
	m.Jmp("head")
	m.Block("head")
	m.ALU(ir.CmpGT, c, i, z)
	m.Br(c, "body", "exit")
	m.Block("body")
	m.Call(v, "work", i)
	m.ALU(ir.Xor, s, s, v)
	m.AddI(i, i, -1)
	m.Jmp("head")
	m.Block("exit")
	m.Ret(s)
	return ir.NewProgramBuilder("main").AddFunc(m.Done()).AddFunc(w.Done()).Done()
}

func run(p *spt.Program, sptOn bool) *arch.RunStats {
	lp, err := interp.Load(p)
	if err != nil {
		log.Fatal(err)
	}
	cfg := arch.DefaultConfig()
	cfg.SPT = sptOn
	st, err := arch.NewMachine(lp, cfg).Run()
	if err != nil {
		log.Fatal(err)
	}
	return st
}

func measure(label string, dependent bool) {
	p := buildProgram(500, dependent)
	x := p.Clone()
	if _, err := transform.ApplyRegionFork(x.Func("work"), "entry", 31); err != nil {
		log.Fatal(err)
	}
	x.Finalize()
	if err := x.Validate(); err != nil {
		log.Fatal(err)
	}
	r1, _, _ := spt.Run(p)
	r2, _, _ := spt.Run(x)
	base := run(p, false)
	fast := run(x, true)
	fmt.Printf("%-22s speedup %.2fx  fast-commit %5.1f%%  misspec %5.2f%%  (results equal: %v)\n",
		label, float64(base.Cycles)/float64(fast.Cycles),
		100*fast.FastCommitRatio(), 100*fast.MisspecRatio(), r1 == r2)
}

func main() {
	fmt.Println("Region-based speculation: fork the second half of a straight-line region")
	measure("independent halves:", false)
	measure("dependent halves:", true)
}
