// Memory-parallelism walkthrough (the mcf story): when a loop's iterations
// miss the cache, the SPT machine's speculative core issues the *next*
// iteration's misses while the main core waits on the current one — the
// d-cache-stall reduction that dominates mcf's bar in Figure 9.
//
//	go run ./examples/memwall
package main

import (
	"fmt"
	"log"

	"repro/internal/ir"
	"repro/spt"
)

// buildProgram streams over a working set far larger than L2 with a
// dependent load in every iteration.
func buildProgram(words int64) *spt.Program {
	pb := ir.NewProgramBuilder("main")
	pb.AddGlobal("table", words)

	b := ir.NewFuncBuilder("main", 0)
	i, cond, zero, g, a, v, acc, stride := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
	b.Block("entry")
	b.MovI(i, words/8)
	b.MovI(zero, 0)
	b.MovI(acc, 0)
	b.MovI(stride, 8) // one access per cache line
	b.Jmp("init")
	// Initialization pass (warms nothing useful: the table is too big).
	b.Block("init")
	b.ALU(ir.CmpGT, cond, i, zero)
	b.Br(cond, "initbody", "sweep")
	b.Block("initbody")
	b.GAddr(g, "table")
	b.ALU(ir.Mul, a, i, stride)
	b.ALU(ir.Add, a, g, a)
	b.MulI(v, i, 37)
	b.Store(a, -8, v)
	b.AddI(i, i, -1)
	b.Jmp("init")
	// The measured sweep: dependent load + compute chain per line.
	b.Block("sweep")
	b.MovI(i, words/8)
	b.Jmp("loop")
	b.Block("loop")
	b.ALU(ir.CmpGT, cond, i, zero)
	b.Br(cond, "body", "done")
	b.Block("body")
	b.GAddr(g, "table")
	b.ALU(ir.Mul, a, i, stride)
	b.ALU(ir.Add, a, g, a)
	b.Load(v, a, -8)
	for k := 0; k < 4; k++ { // consume the load: expose the miss latency
		b.MulI(v, v, 3)
		b.AddI(v, v, int64(k))
	}
	b.ALU(ir.Xor, acc, acc, v)
	b.AddI(i, i, -1)
	b.Jmp("loop")
	b.Block("done")
	b.Ret(acc)
	return pb.AddFunc(b.Done()).Done()
}

func main() {
	prog := buildProgram(200_000) // 1.6 MB table: misses L1 and L2
	cres, err := spt.Compile(prog, spt.DefaultCompileOptions())
	if err != nil {
		log.Fatal(err)
	}
	base, err := spt.Simulate(prog, spt.BaselineMachine())
	if err != nil {
		log.Fatal(err)
	}
	fast, err := spt.Simulate(cres.Program, spt.DefaultMachine())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("working set: 1.6MB (L2 is 256KB, L3 is 3MB)\n\n")
	fmt.Printf("%-10s %12s %12s %12s %12s\n", "", "cycles", "exec", "pipe-stall", "dcache-stall")
	fmt.Printf("%-10s %12d %12d %12d %12d\n", "baseline",
		base.Cycles, base.Breakdown.Exec, base.Breakdown.PipeStall, base.Breakdown.DcacheStall)
	fmt.Printf("%-10s %12d %12d %12d %12d\n", "SPT",
		fast.Cycles, fast.Breakdown.Exec, fast.Breakdown.PipeStall, fast.Breakdown.DcacheStall)
	fmt.Printf("\nspeedup %.2fx; d-cache stalls reduced by %.0f%%\n",
		float64(base.Cycles)/float64(fast.Cycles),
		100*(1-float64(fast.Breakdown.DcacheStall)/float64(base.Breakdown.DcacheStall)))
	fmt.Printf("L1D misses: baseline %d, SPT %d (shared cache: speculative loads prefetch for the main core)\n",
		base.Cache.L1D.Misses, fast.Cache.L1D.Misses)
}
