// Package repro is a from-scratch Go reproduction of "Speculative Parallel
// Threading Architecture and Compilation" (Xiao-Feng Li, Zhao-Hui Du, Chen
// Yang, Chu-Cheow Lim, Tin-Fook Ngai; ICPP Workshops 2005).
//
// The public API lives in repro/spt; the command-line tools in cmd/sptc,
// cmd/sptsim and cmd/sptbench; runnable walkthroughs in examples/. The
// root-level benchmarks (bench_test.go) regenerate every table and figure
// of the paper's evaluation — see EXPERIMENTS.md for paper-vs-measured.
package repro
