// Package artifact memoizes the expensive artifacts of the evaluation
// pipeline — generated benchmark programs, compile results, profiles and
// simulation statistics — so that sweeps revisiting the same
// (program, configuration) point do the work exactly once.
//
// Programs are identified by content: Fingerprint hashes the canonical
// disassembly, so two structurally identical programs share cache lines no
// matter how they were produced. Simulation results are additionally keyed
// by the canonicalized machine configuration (arch.Config.Canonical), which
// folds away speculation parameters that cannot influence a baseline run —
// one baseline simulation then serves a whole ablation sweep.
//
// Concurrency: the cache is safe for concurrent use and deduplicates
// in-flight computations (single-flight): when several goroutines request
// the same key, one computes while the rest wait for its result. Errors and
// panics are never cached — a failed computation is retried by the next
// caller. Cached values are shared between callers and must be treated as
// read-only.
package artifact

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/arch"
	"repro/internal/compiler"
	"repro/internal/ir"
	"repro/internal/profiler"
	"repro/internal/trace"
)

// kindRecording is the key namespace of captured execution traces; they are
// the only artifact kind bounded by bytes rather than entry count.
const kindRecording = "recording"

// Sized is implemented by artifact values whose retention is bounded by
// bytes (trace.Recording). The cache reads the size once, at completion.
type Sized interface {
	CacheBytes() int64
}

// fpCache memoizes fingerprints per *ir.Program. Pipeline stages treat
// programs as immutable once built (the compiler clones its input), so a
// pointer identity maps to a stable hash.
var fpCache sync.Map // *ir.Program -> string

// Fingerprint returns a content hash of the program: the sha256 of its
// canonical disassembly. It is memoized per program pointer; callers must
// not mutate a program after fingerprinting it.
func Fingerprint(p *ir.Program) string {
	if p == nil {
		return ""
	}
	if v, ok := fpCache.Load(p); ok {
		return v.(string)
	}
	sum := sha256.Sum256([]byte(p.Disasm()))
	fp := hex.EncodeToString(sum[:])
	fpCache.Store(p, fp)
	return fp
}

// key identifies one cached artifact. kind separates the namespaces;
// a and b carry the content identity (fingerprint, benchmark name, options
// rendering); cfg is the canonical machine configuration for simulations
// and the zero Config otherwise. arch.Config is comparable, so the whole
// key is directly usable as a map key.
type key struct {
	kind string
	a, b string
	cfg  arch.Config
}

// entry is one single-flight cache slot. done is closed when the
// computation finishes; val/err are immutable afterwards. elem is the
// entry's recency-list node (nil once evicted or after a Reset).
type entry struct {
	done chan struct{}
	val  any
	err  error
	elem *list.Element

	// bytes is the completed value's CacheBytes (0 for unsized values). It
	// is written before done closes and read only by eviction paths, which
	// all require a completed entry.
	bytes int64

	// Integrity (when enabled on the cache): sum is the sha256 of the
	// completed value's canonical encoding, recorded once at completion.
	// summed is false for value types with no stable encoding — those are
	// exempt from verification rather than spuriously evicted.
	sum    string
	summed bool
}

// completed reports whether the entry's computation has finished.
func (e *entry) completed() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// Cache memoizes pipeline artifacts. The zero value is ready to use and
// unbounded; a nil *Cache is valid and caches nothing (every call computes
// directly), so plumbing can pass an optional cache without branching.
// NewBounded builds a cache with an entry cap for long-running processes.
type Cache struct {
	mu       sync.Mutex
	entries  map[key]*entry
	lru      *list.List // element values are keys; front = most recent
	max      int        // entry cap (0 = unbounded)
	maxBytes int64      // byte cap over Sized values (0 = unbounded)
	curBytes int64      // resident Sized bytes; guarded by mu

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64

	recHits   atomic.Int64
	recMisses atomic.Int64

	integrity          atomic.Bool
	integrityEvictions atomic.Int64
}

// EnableIntegrity turns on artifact checksumming: completed entries record
// a sha256 over their canonical encoding, every hit re-verifies it, and an
// entry whose bytes no longer match is evicted and recomputed — a corrupted
// artifact is never served. The daemon enables this; the zero cache leaves
// it off so hot local sweeps skip the verification cost.
func (c *Cache) EnableIntegrity() {
	if c == nil {
		return
	}
	c.integrity.Store(true)
}

// checksumOf returns the sha256 of v's canonical encoding. Only value types
// with a stable canonical form participate: simulation statistics (field
// rendering with the per-loop map sorted) and programs (disassembly —
// hashed fresh, NOT through the memoized Fingerprint, which would return
// the pre-corruption hash for a mutated program). Other types report
// ok=false and are exempt.
func checksumOf(v any) (sum string, ok bool) {
	switch t := v.(type) {
	case *arch.RunStats:
		if t == nil {
			return "", false
		}
		return checksumRunStats(t), true
	case *ir.Program:
		if t == nil {
			return "", false
		}
		s := sha256.Sum256([]byte(t.Disasm()))
		return hex.EncodeToString(s[:]), true
	case *trace.Recording:
		if t == nil {
			return "", false
		}
		return fmt.Sprintf("%016x", t.Checksum()), true
	}
	return "", false
}

// checksumRunStats renders RunStats deterministically: the scalar fields
// via %+v with the PerLoop map detached (map iteration order — and
// json.Marshal, which rejects struct-keyed maps — are both unusable), then
// the per-loop entries in sorted key order.
func checksumRunStats(rs *arch.RunStats) string {
	cp := *rs
	cp.PerLoop = nil
	var sb strings.Builder
	fmt.Fprintf(&sb, "%+v\n", cp)
	keys := make([]profiler.LoopKey, 0, len(rs.PerLoop))
	for k := range rs.PerLoop {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Func != keys[j].Func {
			return keys[i].Func < keys[j].Func
		}
		return keys[i].Header < keys[j].Header
	})
	for _, k := range keys {
		if ls := rs.PerLoop[k]; ls != nil {
			fmt.Fprintf(&sb, "%s/%s %+v\n", k.Func, k.Header, *ls)
		}
	}
	s := sha256.Sum256([]byte(sb.String()))
	return hex.EncodeToString(s[:])
}

// verifyLocked re-derives a completed entry's checksum and compares it to
// the one recorded at completion. Exempt entries always verify.
func verifyLocked(e *entry) bool {
	if !e.summed || e.err != nil {
		return true
	}
	sum, ok := checksumOf(e.val)
	return !ok || sum == e.sum
}

// NewBounded returns a cache holding at most maxEntries completed
// artifacts: inserting beyond the cap evicts the least recently used
// completed entry. In-flight computations are never evicted (waiters hold
// references to them), so the cache can transiently exceed the cap by the
// number of concurrent distinct computations. maxEntries <= 0 means
// unbounded.
func NewBounded(maxEntries int) *Cache {
	return &Cache{max: maxEntries}
}

// NewBoundedBytes is NewBounded with an additional byte bound over Sized
// artifacts (recordings): when their resident bytes exceed maxBytes, least
// recently used completed entries are evicted until the cache fits again.
// Unsized artifacts count zero bytes and are governed only by the entry
// cap. maxBytes <= 0 means no byte bound.
func NewBoundedBytes(maxEntries int, maxBytes int64) *Cache {
	if maxBytes < 0 {
		maxBytes = 0
	}
	return &Cache{max: maxEntries, maxBytes: maxBytes}
}

// Stats reports cache effectiveness counters.
type Stats struct {
	Hits               int64 // calls served from a completed or in-flight computation
	Misses             int64 // calls that had to compute
	Entries            int   // currently cached artifacts
	Evictions          int64 // completed artifacts dropped by the LRU bound
	IntegrityEvictions int64 // artifacts evicted because their checksum no longer matched

	RecordingHits   int64 // recording lookups that coalesced onto an existing capture
	RecordingMisses int64 // recording lookups that had to interpret
	Bytes           int64 // resident bytes of Sized artifacts (recordings)
}

// HitRatio returns Hits / (Hits + Misses), or 0 before any traffic.
func (s Stats) HitRatio() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	n := len(c.entries)
	bytes := c.curBytes
	c.mu.Unlock()
	return Stats{
		Hits:               c.hits.Load(),
		Misses:             c.misses.Load(),
		Entries:            n,
		Evictions:          c.evictions.Load(),
		IntegrityEvictions: c.integrityEvictions.Load(),
		RecordingHits:      c.recHits.Load(),
		RecordingMisses:    c.recMisses.Load(),
		Bytes:              bytes,
	}
}

// Len returns the number of currently cached artifacts (including
// in-flight computations).
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Evictions returns how many completed artifacts the LRU bound has dropped.
func (c *Cache) Evictions() int64 {
	if c == nil {
		return 0
	}
	return c.evictions.Load()
}

// Reset drops every cached artifact and zeroes the counters. In-flight
// computations complete normally but are not retained.
func (c *Cache) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	for _, e := range c.entries {
		e.elem = nil // detach so late evict/complete paths ignore the old list
	}
	c.entries = nil
	c.lru = nil
	c.curBytes = 0
	c.mu.Unlock()
	c.hits.Store(0)
	c.misses.Store(0)
	c.evictions.Store(0)
	c.integrityEvictions.Store(0)
	c.recHits.Store(0)
	c.recMisses.Store(0)
}

// enforceCapLocked evicts least-recently-used completed entries until the
// cache fits its bound. Entries still computing are skipped: their waiters
// hold the entry, and dropping it would duplicate in-flight work.
func (c *Cache) enforceCapLocked() {
	if c.lru == nil {
		return
	}
	over := func() bool {
		return (c.max > 0 && len(c.entries) > c.max) ||
			(c.maxBytes > 0 && c.curBytes > c.maxBytes)
	}
	for el := c.lru.Back(); el != nil && over(); {
		prev := el.Prev()
		k := el.Value.(key)
		if e, ok := c.entries[k]; ok && e.completed() {
			delete(c.entries, k)
			c.lru.Remove(el)
			e.elem = nil
			c.curBytes -= e.bytes
			c.evictions.Add(1)
		}
		el = prev
	}
}

// staleLocked evicts a completed entry whose stored bytes no longer match
// the checksum recorded at completion (a caller mutated a shared value, or
// memory was corrupted). It reports whether the entry was evicted; callers
// then fall through to a fresh computation so a corrupted artifact is never
// served. Must be called with c.mu held.
func (c *Cache) staleLocked(k key, e *entry) bool {
	if !c.integrity.Load() || !e.completed() || verifyLocked(e) {
		return false
	}
	delete(c.entries, k)
	if e.elem != nil && c.lru != nil {
		c.lru.Remove(e.elem)
		e.elem = nil
	}
	c.curBytes -= e.bytes
	c.integrityEvictions.Add(1)
	return true
}

// claimLocked installs a fresh in-flight entry for k. Must be called with
// c.mu held; the caller owns completing the entry via complete.
func (c *Cache) claimLocked(k key) *entry {
	e := &entry{done: make(chan struct{})}
	if c.entries == nil {
		c.entries = map[key]*entry{}
	}
	if c.lru == nil {
		c.lru = list.New()
	}
	e.elem = c.lru.PushFront(k)
	c.entries[k] = e
	return e
}

// complete publishes a claimed entry's result: failed computations are
// evicted so the next caller retries, successful ones record their
// integrity checksum and byte footprint, and done is closed on every path
// so waiters never block forever.
func (c *Cache) complete(k key, e *entry) {
	if e.err != nil {
		c.evict(k, e)
	} else {
		if c.integrity.Load() {
			e.sum, e.summed = checksumOf(e.val) // before close: hits read after <-done
		}
		if s, ok := e.val.(Sized); ok {
			// Record the footprint before done closes: every eviction
			// path requires a completed entry, so the add below is
			// always observed before any subtract.
			e.bytes = s.CacheBytes()
			c.mu.Lock()
			if c.entries[k] == e {
				c.curBytes += e.bytes
			} else {
				e.bytes = 0 // detached by a concurrent Reset
			}
			c.mu.Unlock()
		}
	}
	close(e.done)
	// Now that this entry is evictable, re-check the bound: inserts that
	// happened while it was in-flight may have left an overflow.
	c.mu.Lock()
	c.enforceCapLocked()
	c.mu.Unlock()
}

// do returns the cached value for k, computing it with fn on first use.
// Concurrent callers for the same key share one computation.
func (c *Cache) do(k key, fn func() (any, error)) (any, error) {
	if c == nil {
		return fn()
	}
	c.mu.Lock()
	if e, ok := c.entries[k]; ok && !c.staleLocked(k, e) {
		if e.elem != nil && c.lru != nil {
			c.lru.MoveToFront(e.elem)
		}
		c.mu.Unlock()
		c.hits.Add(1)
		if k.kind == kindRecording {
			c.recHits.Add(1)
		}
		<-e.done
		return e.val, e.err
	}
	e := c.claimLocked(k)
	c.enforceCapLocked()
	c.mu.Unlock()
	c.misses.Add(1)
	if k.kind == kindRecording {
		c.recMisses.Add(1)
	}

	defer func() {
		if r := recover(); r != nil {
			e.err = fmt.Errorf("artifact: computation panicked: %v", r)
			c.complete(k, e)
			panic(r)
		}
		c.complete(k, e)
	}()
	e.val, e.err = fn()
	return e.val, e.err
}

// evict removes the entry for k if it is still the one we installed (a
// Reset may have dropped the whole map in between).
func (c *Cache) evict(k key, e *entry) {
	c.mu.Lock()
	if c.entries[k] == e {
		delete(c.entries, k)
		if e.elem != nil && c.lru != nil {
			c.lru.Remove(e.elem)
			e.elem = nil
		}
		c.curBytes -= e.bytes
	}
	c.mu.Unlock()
}

// cached adapts do to a typed computation.
func cached[T any](c *Cache, k key, fn func() (T, error)) (T, error) {
	v, err := c.do(k, func() (any, error) { return fn() })
	if t, ok := v.(T); ok {
		return t, err
	}
	var zero T
	return zero, err
}

// Program memoizes a generated (and possibly optimized) benchmark program.
// stage distinguishes different derivations of the same benchmark — e.g.
// the raw build used for coverage profiling vs. the optimized baseline.
func (c *Cache) Program(name string, scale int, stage string, build func() (*ir.Program, error)) (*ir.Program, error) {
	k := key{kind: "program", a: name, b: fmt.Sprintf("%d/%s", scale, stage)}
	return cached(c, k, build)
}

// CompileResult memoizes an SPT compilation of program p under the options
// rendered into optsKey (any stable rendering of the compiler options).
func (c *Cache) CompileResult(p *ir.Program, optsKey string, fn func() (*compiler.Result, error)) (*compiler.Result, error) {
	k := key{kind: "compile", a: Fingerprint(p), b: optsKey}
	return cached(c, k, fn)
}

// Profile memoizes a profiling run of program p; extra distinguishes
// profiling variants (e.g. step limits).
func (c *Cache) Profile(p *ir.Program, extra string, fn func() (*profiler.Profile, error)) (*profiler.Profile, error) {
	k := key{kind: "profile", a: Fingerprint(p), b: extra}
	return cached(c, k, fn)
}

// Simulate memoizes a simulation of program p under cfg. The configuration
// is canonicalized first, so baseline runs that differ only in speculation
// parameters share one simulation. The returned stats are shared: callers
// must not mutate them.
func (c *Cache) Simulate(p *ir.Program, cfg arch.Config, fn func() (*arch.RunStats, error)) (*arch.RunStats, error) {
	k := key{kind: "simulate", a: Fingerprint(p), cfg: cfg.Canonical()}
	return cached(c, k, fn)
}

// SimulateBatch memoizes a batch of simulations of one program in a single
// cache transaction: every cached (or in-flight) configuration is served as
// a hit, duplicates within the batch coalesce onto one entry, and the
// remaining misses are claimed together and handed to compute as index
// positions into cfgs. compute runs exactly once per SimulateBatch call (if
// anything is missing) and must return one stats/err pair per miss index, in
// order — this is what lets a sweep decode a shared recording once and
// broadcast it to all missing variants. Failed entries are evicted so later
// callers retry; a panic in compute fails every claimed entry before
// propagating.
func (c *Cache) SimulateBatch(p *ir.Program, cfgs []arch.Config, compute func(miss []int) ([]*arch.RunStats, []error)) ([]*arch.RunStats, []error) {
	out := make([]*arch.RunStats, len(cfgs))
	errs := make([]error, len(cfgs))
	if len(cfgs) == 0 {
		return out, errs
	}
	if c == nil {
		all := make([]int, len(cfgs))
		for i := range all {
			all[i] = i
		}
		st, er := compute(all)
		copy(out, st)
		copy(errs, er)
		return out, errs
	}
	fp := Fingerprint(p)
	keys := make([]key, len(cfgs))
	wait := make([]*entry, len(cfgs)) // entry each index reads its result from
	mine := map[key]*entry{}          // entries claimed by THIS call
	var miss []int                    // first cfg index per claimed key
	var hits, misses int64

	c.mu.Lock()
	for i := range cfgs {
		k := key{kind: "simulate", a: fp, cfg: cfgs[i].Canonical()}
		keys[i] = k
		if e, ok := mine[k]; ok {
			// Duplicate within the batch: coalesce onto the first claim.
			wait[i] = e
			hits++
			continue
		}
		if e, ok := c.entries[k]; ok && !c.staleLocked(k, e) {
			if e.elem != nil && c.lru != nil {
				c.lru.MoveToFront(e.elem)
			}
			wait[i] = e
			hits++
			continue
		}
		e := c.claimLocked(k)
		mine[k] = e
		wait[i] = e
		miss = append(miss, i)
		misses++
	}
	c.enforceCapLocked()
	c.mu.Unlock()
	c.hits.Add(hits)
	c.misses.Add(misses)

	if len(miss) > 0 {
		func() {
			defer func() {
				if r := recover(); r != nil {
					for _, i := range miss {
						e := mine[keys[i]]
						if !e.completed() {
							e.err = fmt.Errorf("artifact: computation panicked: %v", r)
							c.complete(keys[i], e)
						}
					}
					panic(r)
				}
			}()
			st, er := compute(miss)
			for j, i := range miss {
				e := mine[keys[i]]
				if j < len(st) {
					e.val = st[j]
				}
				if j < len(er) {
					e.err = er[j]
				}
				if e.val == nil && e.err == nil {
					e.err = fmt.Errorf("artifact: batch compute returned no result for index %d", i)
				}
				c.complete(keys[i], e)
			}
		}()
	}

	for i := range cfgs {
		e := wait[i]
		<-e.done
		if v, ok := e.val.(*arch.RunStats); ok {
			out[i] = v
		}
		errs[i] = e.err
	}
	return out, errs
}

// Recording memoizes a captured execution trace of program p, keyed by the
// program fingerprint and the step limit it was captured under (a limit is
// part of the trace's identity: a capture that exceeds it fails, and errors
// are never cached). Concurrent simulations of the same program coalesce
// onto one interpretation and replay the shared capture; the recording is
// read-only for every caller (replay never mutates it) and must not be
// Released while the cache can still serve it.
func (c *Cache) Recording(p *ir.Program, stepLimit int64, fn func() (*trace.Recording, error)) (*trace.Recording, error) {
	k := key{kind: kindRecording, a: Fingerprint(p), b: fmt.Sprintf("limit=%d", stepLimit)}
	return cached(c, k, fn)
}

// ReleaseRecordings evicts every completed recording and returns their
// chunk storage to the shared pool. It is ONLY safe on a private cache
// whose users have all finished: a released recording's chunks are
// immediately reusable, so releasing under a still-running replayer
// corrupts that replay. Sweep-local caches call this after their last
// variant joins; long-lived shared caches (the daemon) must rely on LRU
// eviction plus garbage collection instead.
func (c *Cache) ReleaseRecordings() {
	if c == nil {
		return
	}
	var recs []*trace.Recording
	c.mu.Lock()
	for k, e := range c.entries {
		if k.kind != kindRecording || !e.completed() {
			continue
		}
		delete(c.entries, k)
		if e.elem != nil && c.lru != nil {
			c.lru.Remove(e.elem)
			e.elem = nil
		}
		c.curBytes -= e.bytes
		if r, ok := e.val.(*trace.Recording); ok && r != nil {
			recs = append(recs, r)
		}
	}
	c.mu.Unlock()
	for _, r := range recs {
		r.Release()
	}
}
