// Package artifact memoizes the expensive artifacts of the evaluation
// pipeline — generated benchmark programs, compile results, profiles and
// simulation statistics — so that sweeps revisiting the same
// (program, configuration) point do the work exactly once.
//
// Programs are identified by content: Fingerprint hashes the canonical
// disassembly, so two structurally identical programs share cache lines no
// matter how they were produced. Simulation results are additionally keyed
// by the canonicalized machine configuration (arch.Config.Canonical), which
// folds away speculation parameters that cannot influence a baseline run —
// one baseline simulation then serves a whole ablation sweep.
//
// Concurrency: the cache is safe for concurrent use and deduplicates
// in-flight computations (single-flight): when several goroutines request
// the same key, one computes while the rest wait for its result. Errors and
// panics are never cached — a failed computation is retried by the next
// caller. Cached values are shared between callers and must be treated as
// read-only.
package artifact

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/arch"
	"repro/internal/compiler"
	"repro/internal/ir"
	"repro/internal/profiler"
)

// fpCache memoizes fingerprints per *ir.Program. Pipeline stages treat
// programs as immutable once built (the compiler clones its input), so a
// pointer identity maps to a stable hash.
var fpCache sync.Map // *ir.Program -> string

// Fingerprint returns a content hash of the program: the sha256 of its
// canonical disassembly. It is memoized per program pointer; callers must
// not mutate a program after fingerprinting it.
func Fingerprint(p *ir.Program) string {
	if p == nil {
		return ""
	}
	if v, ok := fpCache.Load(p); ok {
		return v.(string)
	}
	sum := sha256.Sum256([]byte(p.Disasm()))
	fp := hex.EncodeToString(sum[:])
	fpCache.Store(p, fp)
	return fp
}

// key identifies one cached artifact. kind separates the namespaces;
// a and b carry the content identity (fingerprint, benchmark name, options
// rendering); cfg is the canonical machine configuration for simulations
// and the zero Config otherwise. arch.Config is comparable, so the whole
// key is directly usable as a map key.
type key struct {
	kind string
	a, b string
	cfg  arch.Config
}

// entry is one single-flight cache slot. done is closed when the
// computation finishes; val/err are immutable afterwards.
type entry struct {
	done chan struct{}
	val  any
	err  error
}

// Cache memoizes pipeline artifacts. The zero value is ready to use; a nil
// *Cache is valid and caches nothing (every call computes directly), so
// plumbing can pass an optional cache without branching.
type Cache struct {
	mu      sync.Mutex
	entries map[key]*entry

	hits   atomic.Int64
	misses atomic.Int64
}

// Stats reports cache effectiveness counters.
type Stats struct {
	Hits    int64 // calls served from a completed or in-flight computation
	Misses  int64 // calls that had to compute
	Entries int   // currently cached artifacts
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	return Stats{Hits: c.hits.Load(), Misses: c.misses.Load(), Entries: n}
}

// Reset drops every cached artifact and zeroes the counters. In-flight
// computations complete normally but are not retained.
func (c *Cache) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.entries = nil
	c.mu.Unlock()
	c.hits.Store(0)
	c.misses.Store(0)
}

// do returns the cached value for k, computing it with fn on first use.
// Concurrent callers for the same key share one computation.
func (c *Cache) do(k key, fn func() (any, error)) (any, error) {
	if c == nil {
		return fn()
	}
	c.mu.Lock()
	if e, ok := c.entries[k]; ok {
		c.mu.Unlock()
		c.hits.Add(1)
		<-e.done
		return e.val, e.err
	}
	e := &entry{done: make(chan struct{})}
	if c.entries == nil {
		c.entries = map[key]*entry{}
	}
	c.entries[k] = e
	c.mu.Unlock()
	c.misses.Add(1)

	defer func() {
		// Failed computations (error or panic) are evicted so the next
		// caller retries; done is closed on every path or waiters would
		// block forever.
		if r := recover(); r != nil {
			e.err = fmt.Errorf("artifact: computation panicked: %v", r)
			c.evict(k, e)
			close(e.done)
			panic(r)
		}
		if e.err != nil {
			c.evict(k, e)
		}
		close(e.done)
	}()
	e.val, e.err = fn()
	return e.val, e.err
}

// evict removes the entry for k if it is still the one we installed (a
// Reset may have dropped the whole map in between).
func (c *Cache) evict(k key, e *entry) {
	c.mu.Lock()
	if c.entries[k] == e {
		delete(c.entries, k)
	}
	c.mu.Unlock()
}

// cached adapts do to a typed computation.
func cached[T any](c *Cache, k key, fn func() (T, error)) (T, error) {
	v, err := c.do(k, func() (any, error) { return fn() })
	if t, ok := v.(T); ok {
		return t, err
	}
	var zero T
	return zero, err
}

// Program memoizes a generated (and possibly optimized) benchmark program.
// stage distinguishes different derivations of the same benchmark — e.g.
// the raw build used for coverage profiling vs. the optimized baseline.
func (c *Cache) Program(name string, scale int, stage string, build func() (*ir.Program, error)) (*ir.Program, error) {
	k := key{kind: "program", a: name, b: fmt.Sprintf("%d/%s", scale, stage)}
	return cached(c, k, build)
}

// CompileResult memoizes an SPT compilation of program p under the options
// rendered into optsKey (any stable rendering of the compiler options).
func (c *Cache) CompileResult(p *ir.Program, optsKey string, fn func() (*compiler.Result, error)) (*compiler.Result, error) {
	k := key{kind: "compile", a: Fingerprint(p), b: optsKey}
	return cached(c, k, fn)
}

// Profile memoizes a profiling run of program p; extra distinguishes
// profiling variants (e.g. step limits).
func (c *Cache) Profile(p *ir.Program, extra string, fn func() (*profiler.Profile, error)) (*profiler.Profile, error) {
	k := key{kind: "profile", a: Fingerprint(p), b: extra}
	return cached(c, k, fn)
}

// Simulate memoizes a simulation of program p under cfg. The configuration
// is canonicalized first, so baseline runs that differ only in speculation
// parameters share one simulation. The returned stats are shared: callers
// must not mutate them.
func (c *Cache) Simulate(p *ir.Program, cfg arch.Config, fn func() (*arch.RunStats, error)) (*arch.RunStats, error) {
	k := key{kind: "simulate", a: Fingerprint(p), cfg: cfg.Canonical()}
	return cached(c, k, fn)
}
