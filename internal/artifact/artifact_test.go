package artifact

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/arch"
	"repro/internal/ir"
	"repro/internal/profiler"
)

// tinyProgram builds a minimal valid program returning imm.
func tinyProgram(imm int64) *ir.Program {
	b := ir.NewFuncBuilder("main", 0)
	b.Block("entry")
	r := b.NewReg()
	b.MovI(r, imm)
	b.Ret(r)
	p := &ir.Program{Funcs: []*ir.Func{b.Done()}, Entry: "main"}
	p.Finalize()
	return p
}

func TestFingerprintContentIdentity(t *testing.T) {
	a, b := tinyProgram(7), tinyProgram(7)
	c := tinyProgram(8)
	if Fingerprint(a) != Fingerprint(b) {
		t.Error("structurally identical programs should share a fingerprint")
	}
	if Fingerprint(a) == Fingerprint(c) {
		t.Error("different programs should not share a fingerprint")
	}
	if got := Fingerprint(a); got != Fingerprint(a) {
		t.Errorf("fingerprint not stable: %s", got)
	}
	if Fingerprint(nil) != "" {
		t.Error("nil program should fingerprint to the empty string")
	}
}

func TestCacheHitMiss(t *testing.T) {
	c := &Cache{}
	calls := 0
	build := func() (*ir.Program, error) { calls++; return tinyProgram(1), nil }

	p1, err := c.Program("bench", 3, "opt", build)
	if err != nil || p1 == nil {
		t.Fatalf("first build: %v", err)
	}
	p2, err := c.Program("bench", 3, "opt", build)
	if err != nil {
		t.Fatalf("second build: %v", err)
	}
	if p1 != p2 {
		t.Error("cache hit should return the same program")
	}
	if calls != 1 {
		t.Errorf("build ran %d times; want 1", calls)
	}
	// A different key computes separately.
	if _, err := c.Program("bench", 4, "opt", build); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Errorf("build ran %d times after new scale; want 2", calls)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 2 {
		t.Errorf("stats = %+v; want 1 hit, 2 misses, 2 entries", st)
	}
}

func TestCacheReset(t *testing.T) {
	c := &Cache{}
	calls := 0
	build := func() (*ir.Program, error) { calls++; return tinyProgram(1), nil }
	if _, err := c.Program("b", 1, "raw", build); err != nil {
		t.Fatal(err)
	}
	c.Reset()
	if st := c.Stats(); st.Entries != 0 || st.Hits != 0 || st.Misses != 0 {
		t.Errorf("stats after Reset = %+v; want zeros", st)
	}
	if _, err := c.Program("b", 1, "raw", build); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Errorf("build ran %d times; Reset should force a recompute", calls)
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	c := &Cache{}
	boom := errors.New("boom")
	calls := 0
	p := tinyProgram(1)
	_, err := c.Profile(p, "", func() (*profiler.Profile, error) {
		calls++
		return nil, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v; want boom", err)
	}
	_, err = c.Profile(p, "", func() (*profiler.Profile, error) {
		calls++
		return nil, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v; want boom", err)
	}
	if calls != 2 {
		t.Errorf("failed computation ran %d times; errors must not be cached", calls)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Errorf("entries = %d after failures; want 0", st.Entries)
	}
}

func TestCachePanicPropagatesAndIsNotCached(t *testing.T) {
	c := &Cache{}
	p := tinyProgram(2)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate")
			}
		}()
		_, _ = c.Simulate(p, arch.DefaultConfig(), func() (*arch.RunStats, error) {
			panic("kaboom")
		})
	}()
	// The slot must be free again and the next computation succeeds.
	rs, err := c.Simulate(p, arch.DefaultConfig(), func() (*arch.RunStats, error) {
		return &arch.RunStats{Cycles: 42}, nil
	})
	if err != nil || rs == nil || rs.Cycles != 42 {
		t.Fatalf("recompute after panic: %v %+v", err, rs)
	}
}

func TestCacheSingleFlight(t *testing.T) {
	c := &Cache{}
	p := tinyProgram(3)
	var computes atomic.Int64
	var wg sync.WaitGroup
	results := make([]*arch.RunStats, 16)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rs, err := c.Simulate(p, arch.DefaultConfig(), func() (*arch.RunStats, error) {
				computes.Add(1)
				return &arch.RunStats{Cycles: 7}, nil
			})
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
			}
			results[i] = rs
		}(i)
	}
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Errorf("computed %d times under concurrency; want 1", n)
	}
	for i, rs := range results {
		if rs != results[0] {
			t.Errorf("goroutine %d got a different stats pointer", i)
		}
	}
}

func TestSimulateSharesCanonicalBaselines(t *testing.T) {
	c := &Cache{}
	p := tinyProgram(4)
	calls := 0
	run := func() (*arch.RunStats, error) { calls++; return &arch.RunStats{Cycles: 9}, nil }

	// Two baseline configs that differ only in speculation parameters must
	// share one simulation...
	a := arch.BaselineConfig()
	b := arch.BaselineConfig()
	b.SRBSize = 16
	b.Recovery = arch.RecoverySquash
	if _, err := c.Simulate(p, a, run); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Simulate(p, b, run); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("baseline simulated %d times; canonicalization should share it", calls)
	}
	// ...while the same divergence in SPT mode is a real config change.
	sa := arch.DefaultConfig()
	sb := arch.DefaultConfig()
	sb.SRBSize = 16
	if _, err := c.Simulate(p, sa, run); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Simulate(p, sb, run); err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Errorf("SPT variants simulated %d times total; want 3", calls)
	}
}

func TestNilCacheComputesDirectly(t *testing.T) {
	var c *Cache
	calls := 0
	for i := 0; i < 2; i++ {
		p, err := c.Program("b", 1, "raw", func() (*ir.Program, error) {
			calls++
			return tinyProgram(5), nil
		})
		if err != nil || p == nil {
			t.Fatalf("nil cache compute: %v", err)
		}
	}
	if calls != 2 {
		t.Errorf("nil cache ran build %d times; want 2 (no caching)", calls)
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Errorf("nil cache stats = %+v; want zero", st)
	}
	c.Reset() // must not panic
}

func TestBoundedCacheEvictsLRU(t *testing.T) {
	c := NewBounded(2)
	calls := map[string]int{}
	get := func(name string) {
		t.Helper()
		_, err := c.Program(name, 1, "opt", func() (*ir.Program, error) {
			calls[name]++
			return tinyProgram(1), nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	get("a")
	get("b")
	get("a") // refresh a: b is now least recently used
	get("c") // evicts b
	if c.Len() != 2 {
		t.Fatalf("Len = %d; want 2", c.Len())
	}
	if c.Evictions() != 1 {
		t.Fatalf("Evictions = %d; want 1", c.Evictions())
	}
	get("a") // still cached
	get("b") // recomputes
	if calls["a"] != 1 {
		t.Errorf("a computed %d times; the refreshed entry should have survived", calls["a"])
	}
	if calls["b"] != 2 {
		t.Errorf("b computed %d times; the LRU entry should have been evicted", calls["b"])
	}
	if st := c.Stats(); st.Evictions != c.Evictions() {
		t.Errorf("Stats.Evictions = %d, Evictions() = %d; want equal", st.Evictions, c.Evictions())
	}
}

func TestBoundedCacheNeverEvictsInFlight(t *testing.T) {
	c := NewBounded(1)
	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = c.Program("slow", 1, "opt", func() (*ir.Program, error) {
			close(started)
			<-release
			return tinyProgram(1), nil
		})
	}()
	<-started
	// Fill past the cap while "slow" is still computing: it must not be
	// evicted (its waiter would lose the result), so the cache transiently
	// overflows and the completed fillers get evicted instead.
	for i := 0; i < 3; i++ {
		if _, err := c.Program("fill", i, "opt", func() (*ir.Program, error) {
			return tinyProgram(2), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	close(release)
	wg.Wait()
	// slow must still be resident: a second request hits without computing.
	calls := 0
	if _, err := c.Program("slow", 1, "opt", func() (*ir.Program, error) {
		calls++
		return tinyProgram(3), nil
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Error("in-flight entry was evicted; want it retained for its waiters")
	}
	if n := c.Len(); n > 2 {
		t.Errorf("Len = %d after completion; want the bound restored (<= 2)", n)
	}
}

func TestBoundedCacheSingleFlightUnderBound(t *testing.T) {
	c := NewBounded(4)
	p := tinyProgram(6)
	var computes atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.Simulate(p, arch.DefaultConfig(), func() (*arch.RunStats, error) {
				computes.Add(1)
				return &arch.RunStats{Cycles: 11}, nil
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Errorf("bounded cache computed %d times; want 1 (single-flight intact)", n)
	}
}
