package artifact

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/ir"
)

// TestIntegrityEvictsMutatedRunStats: cached values are shared and must be
// treated as read-only; with integrity on, a caller that mutates one is
// caught at the next lookup — the poisoned entry is evicted and recomputed,
// never served.
func TestIntegrityEvictsMutatedRunStats(t *testing.T) {
	c := NewBounded(16)
	c.EnableIntegrity()
	p := tinyProgram(1)
	cfg := arch.DefaultConfig()
	calls := 0
	run := func() (*arch.RunStats, error) { calls++; return &arch.RunStats{Cycles: 42}, nil }

	first, err := c.Simulate(p, cfg, run)
	if err != nil {
		t.Fatal(err)
	}
	first.Cycles = 999 // corrupt the shared artifact in place

	second, err := c.Simulate(p, cfg, run)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("corrupted entry was served from cache (computed %d times, want 2)", calls)
	}
	if second.Cycles != 42 {
		t.Fatalf("recomputed stats wrong: cycles = %d", second.Cycles)
	}
	if got := c.Stats().IntegrityEvictions; got != 1 {
		t.Fatalf("IntegrityEvictions = %d, want 1", got)
	}

	// The recomputed entry is intact: the next lookup is a clean hit.
	third, err := c.Simulate(p, cfg, run)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 || third != second {
		t.Fatalf("clean entry not served from cache (calls=%d)", calls)
	}
}

// TestIntegrityEvictsMutatedProgram: the program checksum hashes the
// disassembly fresh (not the memoized Fingerprint, which would report the
// pre-corruption hash), so in-place mutation of a cached program is caught.
func TestIntegrityEvictsMutatedProgram(t *testing.T) {
	c := NewBounded(16)
	c.EnableIntegrity()
	calls := 0
	buildProg := func() (*ir.Program, error) { calls++; return tinyProgram(7), nil }
	p1, err := c.Program("bench", 1, "opt", buildProg)
	if err != nil {
		t.Fatal(err)
	}
	p1.Funcs[0].Name = "mutated" // corrupt the cached program's content

	p2, err := c.Program("bench", 1, "opt", buildProg)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("mutated program served from cache (built %d times, want 2)", calls)
	}
	if p2.Funcs[0].Name == "mutated" {
		t.Fatal("recomputed program still carries the mutation")
	}
	if got := c.Stats().IntegrityEvictions; got != 1 {
		t.Fatalf("IntegrityEvictions = %d, want 1", got)
	}
}

// TestIntegrityOffByDefault: the zero cache skips verification — local
// sweeps keep their hot path — so a mutation goes unnoticed.
func TestIntegrityOffByDefault(t *testing.T) {
	c := NewBounded(16)
	p := tinyProgram(2)
	cfg := arch.DefaultConfig()
	calls := 0
	run := func() (*arch.RunStats, error) { calls++; return &arch.RunStats{Cycles: 5}, nil }
	first, err := c.Simulate(p, cfg, run)
	if err != nil {
		t.Fatal(err)
	}
	first.Cycles = 11
	if _, err := c.Simulate(p, cfg, run); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("integrity-off cache recomputed (%d calls)", calls)
	}
	if c.Stats().IntegrityEvictions != 0 {
		t.Fatal("integrity evictions counted with integrity off")
	}
}
