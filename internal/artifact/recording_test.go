package artifact

// Tests for the recording artifact kind: byte-bounded LRU retention,
// per-kind hit/miss accounting, integrity checksums and bulk release.

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/trace"
)

// syntheticRecording captures n synthetic events into a Recording.
func syntheticRecording(n int) *trace.Recording {
	r := trace.NewRecorder(nil)
	ev := &trace.Event{}
	for i := 0; i < n; i++ {
		ev.Func = 0
		ev.ID = int32(i % 5)
		ev.Frame = int64(i / 9)
		ev.Val = int64(i) * 31
		r.Event(ev)
	}
	return r.Finalize(int64(n))
}

func TestRecordingCacheCoalesces(t *testing.T) {
	c := &Cache{}
	p := tinyProgram(1)
	calls := 0
	get := func() (*trace.Recording, error) {
		return c.Recording(p, 0, func() (*trace.Recording, error) {
			calls++
			return syntheticRecording(1000), nil
		})
	}
	a, err := get()
	if err != nil || a == nil {
		t.Fatalf("first capture: %v", err)
	}
	b, err := get()
	if err != nil {
		t.Fatalf("second capture: %v", err)
	}
	if a != b || calls != 1 {
		t.Fatalf("recording not coalesced: %d captures", calls)
	}
	// A different step limit is a different trace identity.
	if _, err := c.Recording(p, 500, func() (*trace.Recording, error) {
		calls++
		return syntheticRecording(500), nil
	}); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.RecordingHits != 1 || st.RecordingMisses != 2 {
		t.Fatalf("recording stats = %d hits / %d misses; want 1/2", st.RecordingHits, st.RecordingMisses)
	}
	if st.Bytes != a.Bytes()+syntheticRecording(500).Bytes() {
		t.Fatalf("resident bytes %d do not match the stored recordings", st.Bytes)
	}
}

func TestByteBoundEvictsRecordings(t *testing.T) {
	one := syntheticRecording(10).Bytes()
	// Room for roughly two recordings; storing four must evict.
	c := NewBoundedBytes(0, 2*one+one/2)
	progs := []int64{1, 2, 3, 4}
	for _, imm := range progs {
		if _, err := c.Recording(tinyProgram(imm), 0, func() (*trace.Recording, error) {
			return syntheticRecording(10), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("byte bound never evicted")
	}
	if st.Bytes > 2*one+one/2 {
		t.Fatalf("resident bytes %d exceed the bound %d", st.Bytes, 2*one+one/2)
	}
	if st.Bytes <= 0 {
		t.Fatalf("resident bytes %d; want > 0", st.Bytes)
	}
}

func TestByteBoundLeavesUnsizedAlone(t *testing.T) {
	c := NewBoundedBytes(0, 1) // absurdly small byte bound
	for i := int64(0); i < 5; i++ {
		imm := i
		if _, err := c.Program("p", int(imm), "opt", func() (*ir.Program, error) { return tinyProgram(imm), nil }); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Evictions != 0 || st.Entries != 5 {
		t.Fatalf("unsized artifacts were evicted by the byte bound: %+v", st)
	}
}

func TestRecordingIntegrityEviction(t *testing.T) {
	c := &Cache{}
	c.EnableIntegrity()
	p := tinyProgram(9)
	calls := 0
	get := func() (*trace.Recording, error) {
		return c.Recording(p, 0, func() (*trace.Recording, error) {
			calls++
			return syntheticRecording(2000), nil
		})
	}
	rec, err := get()
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the stored recording in place; the next lookup must detect
	// the drift, evict it and recompute instead of serving it.
	rec.Truncate(1000)
	again, err := get()
	if err != nil {
		t.Fatal(err)
	}
	if again == rec || calls != 2 {
		t.Fatalf("corrupted recording was served (calls=%d)", calls)
	}
	if got := c.Stats().IntegrityEvictions; got != 1 {
		t.Fatalf("IntegrityEvictions = %d; want 1", got)
	}
}

func TestReleaseRecordings(t *testing.T) {
	c := &Cache{}
	p := tinyProgram(3)
	rec, err := c.Recording(p, 0, func() (*trace.Recording, error) {
		return syntheticRecording(100), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Program("keep", 1, "opt", func() (*ir.Program, error) { return tinyProgram(8), nil }); err != nil {
		t.Fatal(err)
	}
	c.ReleaseRecordings()
	if got := c.Stats().Entries; got != 1 {
		t.Fatalf("release dropped non-recording entries: %d left; want 1", got)
	}
	if rec.Len() != 0 {
		t.Fatal("release did not empty the recording")
	}
	st := c.Stats()
	if st.Bytes != 0 {
		t.Fatalf("resident bytes %d after release; want 0", st.Bytes)
	}
	// The recording key must be recomputable afterwards.
	calls := 0
	if _, err := c.Recording(p, 0, func() (*trace.Recording, error) {
		calls++
		return syntheticRecording(100), nil
	}); err != nil || calls != 1 {
		t.Fatalf("recompute after release: err=%v calls=%d", err, calls)
	}
}
