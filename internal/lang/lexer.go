// Package lang is the front end of the toolchain: a small C-like language
// ("MiniC") that compiles to the SPT IR. The paper's compiler consumes C
// through ORC; this front end plays the same role at matching scale, so the
// full pipeline is source → IR → profile → cost-driven SPT transformation →
// two-core simulation.
//
// The language: 64-bit integers only; global word arrays; register locals;
// functions with value parameters and a single return value; expressions
// with C operator precedence including short-circuit && and ||; array
// indexing a[i] on globals and pointer locals; if/else, while, for, break,
// continue, return; and the memory builtins load(base, off),
// store(base, off, v), alloc(words), free(addr).
//
//	var hist[64];
//
//	func weigh(x) {
//	    var v = x * 2654435761;
//	    return (v >> 7) & 63;
//	}
//
//	func main() {
//	    var i; var s = 0;
//	    for (i = 1000; i > 0; i = i - 1) {
//	        var b = weigh(i);
//	        hist[b] = hist[b] + 1;
//	        s = s ^ b;
//	    }
//	    return s;
//	}
package lang

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokPunct   // single or multi-char operator / punctuation
	tokKeyword // var func if else while for break continue return
)

var keywords = map[string]bool{
	"var": true, "func": true, "if": true, "else": true,
	"while": true, "for": true, "break": true, "continue": true,
	"return": true,
}

type token struct {
	kind tokKind
	text string
	line int
}

// lexer tokenizes MiniC source.
type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

// multi-character operators, longest first.
var multiOps = []string{"<<", ">>", "<=", ">=", "==", "!=", "&&", "||"}

func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '#' || (c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/'):
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case unicode.IsDigit(rune(c)):
			start := l.pos
			for l.pos < len(l.src) && (unicode.IsDigit(rune(l.src[l.pos])) ||
				l.src[l.pos] == 'x' || l.src[l.pos] == 'X' ||
				(l.pos > start && isHexDigit(l.src[l.pos]))) {
				l.pos++
			}
			l.emit(tokNumber, l.src[start:l.pos])
		case unicode.IsLetter(rune(c)) || c == '_':
			start := l.pos
			for l.pos < len(l.src) && (unicode.IsLetter(rune(l.src[l.pos])) ||
				unicode.IsDigit(rune(l.src[l.pos])) || l.src[l.pos] == '_') {
				l.pos++
			}
			word := l.src[start:l.pos]
			if keywords[word] {
				l.emit(tokKeyword, word)
			} else {
				l.emit(tokIdent, word)
			}
		default:
			matched := false
			for _, op := range multiOps {
				if strings.HasPrefix(l.src[l.pos:], op) {
					l.emit(tokPunct, op)
					l.pos += len(op)
					matched = true
					break
				}
			}
			if matched {
				continue
			}
			if strings.ContainsRune("+-*/%&|^<>=!(){}[],;", rune(c)) {
				l.emit(tokPunct, string(c))
				l.pos++
				continue
			}
			return nil, fmt.Errorf("lang: line %d: unexpected character %q", l.line, c)
		}
	}
	l.emit(tokEOF, "")
	return l.toks, nil
}

func isHexDigit(c byte) bool {
	return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func (l *lexer) emit(k tokKind, text string) {
	l.toks = append(l.toks, token{kind: k, text: text, line: l.line})
}

func parseNumber(text string) (int64, error) {
	return strconv.ParseInt(text, 0, 64)
}
