package lang

import (
	"math/bits"
	"os"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/compiler"
	"repro/internal/interp"
	"repro/internal/ir"
)

func compileRun(t *testing.T, src string) interp.Result {
	t.Helper()
	p, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	lp, err := interp.Load(p)
	if err != nil {
		t.Fatalf("Load: %v\n%s", err, p.Disasm())
	}
	m := interp.New(lp)
	m.SetStepLimit(50_000_000)
	res, err := m.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestArithmeticAndPrecedence(t *testing.T) {
	cases := []struct {
		expr string
		want int64
	}{
		{"1 + 2 * 3", 7},
		{"(1 + 2) * 3", 9},
		{"10 - 3 - 2", 5},
		{"7 / 2", 3},
		{"7 % 3", 1},
		{"1 << 4", 16},
		{"-8 >> 1", -4},
		{"6 & 3", 2},
		{"6 | 3", 7},
		{"6 ^ 3", 5},
		{"3 < 4", 1},
		{"4 <= 4", 1},
		{"5 == 5", 1},
		{"5 != 5", 0},
		{"-5", -5},
		{"!0", 1},
		{"!7", 0},
		{"1 + 2 == 3", 1},
		{"2 < 3 & 1", 1},
		{"0x10", 16},
	}
	for _, c := range cases {
		src := "func main() { return " + c.expr + "; }"
		if got := compileRun(t, src).Ret; got != c.want {
			t.Errorf("%s = %d, want %d", c.expr, got, c.want)
		}
	}
}

func TestControlFlow(t *testing.T) {
	src := `
# gauss sum with a twist: skip multiples of 7, stop at 90
func main() {
    var s = 0;
    var i;
    for (i = 1; i <= 100; i = i + 1) {
        if (i % 7 == 0) { continue; }
        if (i > 90) { break; }
        s = s + i;
    }
    while (s % 10 != 0) { s = s - 1; }
    return s;
}`
	want := int64(0)
	for i := int64(1); i <= 100; i++ {
		if i%7 == 0 {
			continue
		}
		if i > 90 {
			break
		}
		want += i
	}
	for want%10 != 0 {
		want--
	}
	if got := compileRun(t, src).Ret; got != want {
		t.Errorf("Ret = %d, want %d", got, want)
	}
}

func TestIfElseChains(t *testing.T) {
	src := `
func classify(x) {
    if (x < 0) { return -1; }
    else if (x == 0) { return 0; }
    else if (x < 10) { return 1; }
    else { return 2; }
}
func main() {
    return classify(-5) * 1000 + classify(0) * 100 + classify(5) * 10 + classify(50);
}`
	if got := compileRun(t, src).Ret; got != -1000+0+10+2 {
		t.Errorf("Ret = %d", got)
	}
}

func TestGlobalsAndMemoryBuiltins(t *testing.T) {
	src := `
var table[8] = { 5, 10, 15 };
func main() {
    var i;
    for (i = 3; i < 8; i = i + 1) {
        store(table, i, load(table, i - 1) + 5);
    }
    var node = alloc(2);
    store(node, 0, load(table, 7));
    store(node, 1, 100);
    var out = load(node, 0) + load(node, 1);
    free(node);
    return out;
}`
	// table[7] = 5 + 5*7 = 40; out = 40 + 100
	if got := compileRun(t, src).Ret; got != 140 {
		t.Errorf("Ret = %d, want 140", got)
	}
}

func TestRecursionInLang(t *testing.T) {
	src := `
func fib(n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
func main() { return fib(12); }`
	if got := compileRun(t, src).Ret; got != 144 {
		t.Errorf("fib(12) = %d", got)
	}
}

func TestLinkedListProgram(t *testing.T) {
	// The Figure 1 pattern written in MiniC: build a list, walk and free it.
	src := `
func main() {
    var head = 0;
    var i;
    for (i = 1; i <= 50; i = i + 1) {
        var node = alloc(2);
        store(node, 0, i * i);
        store(node, 1, head);
        head = node;
    }
    var sum = 0;
    var c = head;
    while (c != 0) {
        var nxt = load(c, 1);
        sum = sum + load(c, 0);
        free(c);
        c = nxt;
    }
    return sum;
}`
	want := int64(0)
	for i := int64(1); i <= 50; i++ {
		want += i * i
	}
	if got := compileRun(t, src).Ret; got != want {
		t.Errorf("Ret = %d, want %d", got, want)
	}
}

func TestParseErrorsInLang(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"missing main", "func helper() { return 1; }"},
		{"main with params", "func main(x) { return x; }"},
		{"undefined var", "func main() { return nope; }"},
		{"undefined func", "func main() { return nope(); }"},
		{"bad arity", "func f(a, b) { return a; } func main() { return f(1); }"},
		{"duplicate var", "func main() { var a; var a; return 0; }"},
		{"duplicate func", "func f() { return 0; } func f() { return 1; } func main() { return 0; }"},
		{"duplicate global", "var g[1]; var g[2]; func main() { return 0; }"},
		{"break outside loop", "func main() { break; return 0; }"},
		{"continue outside loop", "func main() { continue; return 0; }"},
		{"assign undeclared", "func main() { x = 3; return 0; }"},
		{"bare expr stmt", "func main() { 1 + 2; return 0; }"},
		{"unterminated block", "func main() { return 0;"},
		{"bad global size", "var g[0]; func main() { return 0; }"},
		{"init too long", "var g[1] = {1, 2}; func main() { return 0; }"},
		{"load arity", "func main() { return load(1); }"},
		{"store arity", "func main() { store(1, 2); return 0; }"},
		{"stray char", "func main() { return 1 @ 2; }"},
	}
	for _, c := range cases {
		if _, err := Compile(c.src); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestStatementsAfterReturnAreDeadButValid(t *testing.T) {
	src := `
func main() {
    return 42;
    var x = 1;
    x = x + 1;
}`
	if got := compileRun(t, src).Ret; got != 42 {
		t.Errorf("Ret = %d", got)
	}
}

func TestImplicitReturnZero(t *testing.T) {
	src := `func main() { var x = 9; x = x + 1; }`
	if got := compileRun(t, src).Ret; got != 0 {
		t.Errorf("Ret = %d, want 0", got)
	}
}

func TestLangProgramThroughSPTPipeline(t *testing.T) {
	// A MiniC program with a parallel hot loop flows through the full
	// cost-driven pipeline and keeps its semantics.
	src := `
var out[4096];
func work(x) {
    var v = x * 2654435761;
    var k;
    for (k = 0; k < 10; k = k + 1) {
        v = v * 3 + k;
    }
    return v;
}
func main() {
    var i;
    var s = 0;
    for (i = 2000; i > 0; i = i - 1) {
        var v = work(i);
        store(out, i & 4095, v);
        s = s ^ v;
    }
    return s;
}`
	p, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := compiler.Compile(p, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SelectedLoops()) == 0 {
		for _, l := range res.Loops {
			t.Logf("loop %v: %q est=%.2f trip=%.1f", l.Key, l.Reason, l.EstSpeedup, l.TripCount)
		}
		t.Fatal("hot MiniC loop not selected")
	}
	r1 := compileRun(t, src)
	lp, _ := interp.Load(res.Program)
	m := interp.New(lp)
	r2, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Ret != r2.Ret || r1.MemChecksum != r2.MemChecksum {
		t.Errorf("SPT pipeline changed MiniC semantics: %d vs %d", r1.Ret, r2.Ret)
	}
}

func TestLangDisasmRoundTrip(t *testing.T) {
	src := `
var g[4] = { 1, 2, 3, 4 };
func main() {
    var i; var s = 0;
    for (i = 0; i < 4; i = i + 1) { s = s + load(g, i); }
    return s;
}`
	p, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	text := p.Disasm()
	q, err := ir.Parse(text)
	if err != nil {
		t.Fatalf("compiled MiniC does not re-parse: %v", err)
	}
	if q.Disasm() != text {
		t.Error("MiniC program's textual IR does not round trip")
	}
	if !strings.Contains(text, "func main") {
		t.Error("missing main")
	}
}

// golden returns the expected result of each testdata program, computed by
// an independent Go re-implementation.
func golden(name string) int64 {
	switch name {
	case "sum.mc":
		return 1000 * 1001 / 2
	case "collatz.mc":
		var total int64
		for i := int64(1); i <= 60; i++ {
			n, c := i, int64(0)
			for n != 1 {
				if n%2 == 0 {
					n /= 2
				} else {
					n = 3*n + 1
				}
				c++
			}
			total += c
		}
		return total
	case "sieve.mc":
		mark := make([]bool, 500)
		var count int64
		for i := 2; i < 500; i++ {
			if !mark[i] {
				count++
				for j := i + i; j < 500; j += i {
					mark[j] = true
				}
			}
		}
		return count
	case "qsort.mc":
		arr := make([]int64, 256)
		seed := int64(88172645463325252)
		for i := 0; i < 256; i++ {
			seed ^= seed << 13
			seed ^= seed >> 7
			seed ^= seed << 17
			arr[i] = seed % 10007
		}
		sort.Slice(arr, func(i, j int) bool { return arr[i] < arr[j] })
		var s int64
		for i := int64(1); i < 256; i++ {
			s += arr[i] * i
		}
		return s % 1000003
	case "bitcount.mc":
		var total int64
		v := int64(1)
		for i := 0; i < 300; i++ {
			v = v*6364136223846793005 + 1442695040888963407
			total += int64(bits.OnesCount64(uint64(v)))
		}
		return total
	case "matrix.mc":
		a, b, c := make([]int64, 64), make([]int64, 64), make([]int64, 64)
		for i := int64(0); i < 64; i++ {
			a[i] = i*3 + 1
			b[i] = i*7 - 5
		}
		for i := 0; i < 8; i++ {
			for j := 0; j < 8; j++ {
				var acc int64
				for k := 0; k < 8; k++ {
					acc += a[i*8+k] * b[k*8+j]
				}
				c[i*8+j] = acc
			}
		}
		var s int64
		for i := int64(0); i < 64; i++ {
			s ^= c[i] * (i + 1)
		}
		return s
	}
	panic("no golden for " + name)
}

func TestGoldenPrograms(t *testing.T) {
	files, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 4 {
		t.Fatalf("expected testdata programs, found %d", len(files))
	}
	for _, f := range files {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			data, err := os.ReadFile("testdata/" + f.Name())
			if err != nil {
				t.Fatal(err)
			}
			got := compileRun(t, string(data)).Ret
			if want := golden(f.Name()); got != want {
				t.Errorf("%s = %d, want %d", f.Name(), got, want)
			}
		})
	}
}

func TestCompileNeverPanics(t *testing.T) {
	f := func(s string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = Compile(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	// Mutations of a valid program must not panic either.
	base := `func main() { var i; var s = 0; for (i = 0; i < 9; i = i + 1) { s = s + i; } return s; }`
	g := func(pos uint16, repl byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		b := []byte(base)
		b[int(pos)%len(b)] = repl
		_, _ = Compile(string(b))
		return true
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestIndexingSugar(t *testing.T) {
	src := `
var g[16];
func main() {
    var i;
    for (i = 0; i < 16; i = i + 1) { g[i] = i * i; }
    var p = alloc(4);
    p[0] = g[3];
    p[1] = g[4];
    p[2] = p[0] + p[1];
    var out = p[2];
    free(p);
    return out + g[15];
}`
	if got := compileRun(t, src).Ret; got != 9+16+225 {
		t.Errorf("Ret = %d, want %d", got, 9+16+225)
	}
}

func TestShortCircuitSemantics(t *testing.T) {
	cases := []struct {
		expr string
		want int64
	}{
		{"1 && 1", 1},
		{"1 && 0", 0},
		{"0 && 1", 0},
		{"7 && 9", 1}, // normalized to 0/1
		{"0 || 0", 0},
		{"0 || 5", 1},
		{"3 || 0", 1},
		{"1 && 0 || 1", 1}, // && binds tighter than ||
		{"0 || 1 && 0", 0},
	}
	for _, c := range cases {
		src := "func main() { return " + c.expr + "; }"
		if got := compileRun(t, src).Ret; got != c.want {
			t.Errorf("%s = %d, want %d", c.expr, got, c.want)
		}
	}
}

func TestShortCircuitDoesNotEvaluateRHS(t *testing.T) {
	// The right operand stores to a global; it must not run when the left
	// operand decides the result.
	src := `
var flag[1];
func touch() { flag[0] = 1; return 1; }
func main() {
    var a = 0 && touch();
    var b = 1 || touch();
    return flag[0] * 10 + a + b;
}`
	// flag stays 0; a=0, b=1 -> 1
	if got := compileRun(t, src).Ret; got != 1 {
		t.Errorf("Ret = %d, want 1 (RHS must not evaluate)", got)
	}
	// And it does evaluate when needed.
	src2 := `
var flag[1];
func touch() { flag[0] = 1; return 1; }
func main() {
    var a = 1 && touch();
    return flag[0] * 10 + a;
}`
	if got := compileRun(t, src2).Ret; got != 11 {
		t.Errorf("Ret = %d, want 11 (RHS must evaluate)", got)
	}
}

func TestShortCircuitInLoopCondition(t *testing.T) {
	src := `
var data[64];
func main() {
    var i;
    for (i = 0; i < 64; i = i + 1) { data[i] = 64 - i; }
    # walk while in bounds AND positive value (bounds check guards the load)
    i = 0;
    var n = 0;
    while (i < 64 && data[i] > 32) {
        n = n + 1;
        i = i + 1;
    }
    return n;
}`
	if got := compileRun(t, src).Ret; got != 32 {
		t.Errorf("Ret = %d, want 32", got)
	}
}

func TestIndexedSPTPipeline(t *testing.T) {
	// Indexing sugar + short-circuit guards flow through the SPT compiler.
	src := `
var out[8192];
func main() {
    var i; var s = 0;
    for (i = 3000; i > 0; i = i - 1) {
        var v = i * 2654435761;
        var k;
        for (k = 0; k < 8; k = k + 1) { v = v * 3 + k; }
        if (v > 0 && (v & 7) != 0) { out[i & 8191] = v; }
        s = s ^ v;
    }
    return s;
}`
	p, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := compiler.Compile(p, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r1 := compileRun(t, src)
	lp, _ := interp.Load(res.Program)
	r2, err := interp.New(lp).Run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Ret != r2.Ret || r1.MemChecksum != r2.MemChecksum {
		t.Error("SPT pipeline changed indexed MiniC semantics")
	}
}

func TestIndexErrorCases(t *testing.T) {
	cases := []string{
		"func main() { return nosuch[0]; }",
		"func main() { nosuch[0] = 1; return 0; }",
		"func main() { return g[; }",
		"var g[4]; func main() { g[1 = 2; return 0; }",
	}
	for _, src := range cases {
		if _, err := Compile(src); err == nil {
			t.Errorf("accepted: %s", src)
		}
	}
}
