package lang

import "testing"

// FuzzCompile exercises the MiniC front end with mutated sources. The
// invariants: no panic, and any accepted program is valid IR.
func FuzzCompile(f *testing.F) {
	f.Add("func main() { return 1 + 2 * 3; }")
	f.Add(`var g[8]; func main() { var i; for (i = 0; i < 8; i = i + 1) { g[i] = i; } return g[7]; }`)
	f.Add("func f(x) { if (x > 0 && x < 9) { return -x; } return x; } func main() { return f(4); }")
	f.Add("func main() { while (1) { break; } return 0; }")
	f.Add("func main(")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Compile(src)
		if err != nil {
			return
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("Compile produced an invalid program: %v", verr)
		}
	})
}
