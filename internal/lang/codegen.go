package lang

import (
	"fmt"

	"repro/internal/ir"
)

// Compile translates MiniC source into a validated IR program. The entry
// function must be `func main()` with no parameters.
func Compile(src string) (*ir.Program, error) {
	ast, err := parseProgram(src)
	if err != nil {
		return nil, err
	}
	globals := map[string]bool{}
	pb := ir.NewProgramBuilder("main")
	for _, g := range ast.globals {
		if globals[g.name] {
			return nil, fmt.Errorf("lang: line %d: duplicate global %q", g.line, g.name)
		}
		globals[g.name] = true
		pb.AddGlobal(g.name, g.size, g.init...)
	}
	funcs := map[string]int{} // name -> arity
	for _, f := range ast.funcs {
		if _, dup := funcs[f.name]; dup {
			return nil, fmt.Errorf("lang: line %d: duplicate function %q", f.line, f.name)
		}
		funcs[f.name] = len(f.params)
	}
	if arity, ok := funcs["main"]; !ok || arity != 0 {
		return nil, fmt.Errorf("lang: program needs a zero-parameter main()")
	}
	for i := range ast.funcs {
		fd := &ast.funcs[i]
		cg := &codegen{globals: globals, funcs: funcs}
		irf, err := cg.genFunc(fd)
		if err != nil {
			return nil, err
		}
		pb.AddFunc(irf)
	}
	p := pb.Done()
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("lang: internal codegen error: %w", err)
	}
	return p, nil
}

// codegen emits one function.
type codegen struct {
	globals map[string]bool
	funcs   map[string]int

	b          *ir.FuncBuilder
	locals     map[string]ir.Reg
	terminated bool // current block already ended in a terminator
	labelSeq   int

	// break/continue targets, innermost last
	breakTo, continueTo []string
}

func (c *codegen) fresh(base string) string {
	c.labelSeq++
	return fmt.Sprintf("%s.%d", base, c.labelSeq)
}

// startBlock opens a new block, terminating the current one with a jump to
// it when control can fall through.
func (c *codegen) startBlock(label string) {
	if !c.terminated {
		c.b.Jmp(label)
	}
	c.b.Block(label)
	c.terminated = false
}

// ensureLive makes sure the current block can receive instructions: after a
// return/break/continue, further statements go into a fresh unreachable
// block (valid IR; the optimizer removes it).
func (c *codegen) ensureLive() {
	if c.terminated {
		c.b.Block(c.fresh("dead"))
		c.terminated = false
	}
}

func (c *codegen) genFunc(fd *funcDecl) (*ir.Func, error) {
	c.b = ir.NewFuncBuilder(fd.name, len(fd.params))
	c.locals = map[string]ir.Reg{}
	for i, pn := range fd.params {
		if _, dup := c.locals[pn]; dup {
			return nil, fmt.Errorf("lang: line %d: duplicate parameter %q", fd.line, pn)
		}
		c.locals[pn] = c.b.Param(i)
	}
	c.b.Block("entry")
	c.terminated = false
	if err := c.genStmts(fd.body); err != nil {
		return nil, err
	}
	if !c.terminated {
		c.b.Ret(ir.NoReg) // implicit return 0
		c.terminated = true
	}
	return c.b.Done(), nil
}

func (c *codegen) genStmts(ss []stmt) error {
	for _, s := range ss {
		if err := c.genStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *codegen) genStmt(s stmt) error {
	c.ensureLive()
	switch st := s.(type) {
	case *declStmt:
		if _, dup := c.locals[st.name]; dup {
			return fmt.Errorf("lang: line %d: duplicate variable %q", st.line, st.name)
		}
		r := c.b.NewReg()
		c.locals[st.name] = r
		if st.init != nil {
			v, err := c.genExpr(st.init)
			if err != nil {
				return err
			}
			c.b.Mov(r, v)
		} else {
			c.b.MovI(r, 0)
		}
		return nil
	case *assignStmt:
		r, ok := c.locals[st.name]
		if !ok {
			return fmt.Errorf("lang: line %d: assignment to undeclared variable %q", st.line, st.name)
		}
		v, err := c.genExpr(st.value)
		if err != nil {
			return err
		}
		c.b.Mov(r, v)
		return nil
	case *exprStmt:
		_, err := c.genExpr(st.x)
		return err
	case *indexStoreStmt:
		base, err := c.baseAddr(st.base, st.line)
		if err != nil {
			return err
		}
		if n, ok := st.idx.(*numLit); ok {
			v, err := c.genExpr(st.value)
			if err != nil {
				return err
			}
			c.b.Store(base, n.v, v)
			return nil
		}
		idx, err := c.genExpr(st.idx)
		if err != nil {
			return err
		}
		addr := c.b.NewReg()
		c.b.ALU(ir.Add, addr, base, idx)
		v, err := c.genExpr(st.value)
		if err != nil {
			return err
		}
		c.b.Store(addr, 0, v)
		return nil
	case *returnStmt:
		if st.value == nil {
			c.b.Ret(ir.NoReg)
		} else {
			v, err := c.genExpr(st.value)
			if err != nil {
				return err
			}
			c.b.Ret(v)
		}
		c.terminated = true
		return nil
	case *breakStmt:
		if len(c.breakTo) == 0 {
			return fmt.Errorf("lang: line %d: break outside a loop", st.line)
		}
		c.b.Jmp(c.breakTo[len(c.breakTo)-1])
		c.terminated = true
		return nil
	case *continueStmt:
		if len(c.continueTo) == 0 {
			return fmt.Errorf("lang: line %d: continue outside a loop", st.line)
		}
		c.b.Jmp(c.continueTo[len(c.continueTo)-1])
		c.terminated = true
		return nil
	case *ifStmt:
		cond, err := c.genExpr(st.cond)
		if err != nil {
			return err
		}
		thenL, endL := c.fresh("if.then"), c.fresh("if.end")
		elseL := endL
		if len(st.els) > 0 {
			elseL = c.fresh("if.else")
		}
		c.b.Br(cond, thenL, elseL)
		c.terminated = true
		c.b.Block(thenL)
		c.terminated = false
		if err := c.genStmts(st.then); err != nil {
			return err
		}
		if len(st.els) > 0 {
			if !c.terminated {
				c.b.Jmp(endL)
				c.terminated = true
			}
			c.b.Block(elseL)
			c.terminated = false
			if err := c.genStmts(st.els); err != nil {
				return err
			}
		}
		c.startBlock(endL)
		return nil
	case *whileStmt:
		headL, bodyL, endL := c.fresh("while.head"), c.fresh("while.body"), c.fresh("while.end")
		c.startBlock(headL)
		cond, err := c.genExpr(st.cond)
		if err != nil {
			return err
		}
		c.b.Br(cond, bodyL, endL)
		c.terminated = true
		c.b.Block(bodyL)
		c.terminated = false
		c.breakTo = append(c.breakTo, endL)
		c.continueTo = append(c.continueTo, headL)
		err = c.genStmts(st.body)
		c.breakTo = c.breakTo[:len(c.breakTo)-1]
		c.continueTo = c.continueTo[:len(c.continueTo)-1]
		if err != nil {
			return err
		}
		if !c.terminated {
			c.b.Jmp(headL)
			c.terminated = true
		}
		c.b.Block(endL)
		c.terminated = false
		return nil
	case *forStmt:
		if st.init != nil {
			if err := c.genStmt(st.init); err != nil {
				return err
			}
		}
		headL, bodyL, postL, endL := c.fresh("for.head"), c.fresh("for.body"), c.fresh("for.post"), c.fresh("for.end")
		c.startBlock(headL)
		if st.cond != nil {
			cond, err := c.genExpr(st.cond)
			if err != nil {
				return err
			}
			c.b.Br(cond, bodyL, endL)
		} else {
			c.b.Jmp(bodyL)
		}
		c.terminated = true
		c.b.Block(bodyL)
		c.terminated = false
		c.breakTo = append(c.breakTo, endL)
		c.continueTo = append(c.continueTo, postL)
		err := c.genStmts(st.body)
		c.breakTo = c.breakTo[:len(c.breakTo)-1]
		c.continueTo = c.continueTo[:len(c.continueTo)-1]
		if err != nil {
			return err
		}
		c.startBlock(postL)
		if st.post != nil {
			if err := c.genStmt(st.post); err != nil {
				return err
			}
		}
		if !c.terminated {
			c.b.Jmp(headL)
			c.terminated = true
		}
		c.b.Block(endL)
		c.terminated = false
		return nil
	default:
		return fmt.Errorf("lang: line %d: unhandled statement", s.stmtLine())
	}
}

var binOps = map[string]ir.Op{
	"+": ir.Add, "-": ir.Sub, "*": ir.Mul, "/": ir.Div, "%": ir.Rem,
	"&": ir.And, "|": ir.Or, "^": ir.Xor, "<<": ir.Shl, ">>": ir.Shr,
	"==": ir.CmpEQ, "!=": ir.CmpNE, "<": ir.CmpLT, "<=": ir.CmpLE,
	">": ir.CmpGT, ">=": ir.CmpGE,
}

func (c *codegen) genExpr(e expr) (ir.Reg, error) {
	switch ex := e.(type) {
	case *numLit:
		r := c.b.NewReg()
		c.b.MovI(r, ex.v)
		return r, nil
	case *varRef:
		if r, ok := c.locals[ex.name]; ok {
			return r, nil
		}
		if c.globals[ex.name] {
			r := c.b.NewReg()
			c.b.GAddr(r, ex.name)
			return r, nil
		}
		return 0, fmt.Errorf("lang: line %d: undefined variable %q", ex.line, ex.name)
	case *unExpr:
		x, err := c.genExpr(ex.x)
		if err != nil {
			return 0, err
		}
		r := c.b.NewReg()
		switch ex.op {
		case "-":
			z := c.b.NewReg()
			c.b.MovI(z, 0)
			c.b.ALU(ir.Sub, r, z, x)
		case "!":
			z := c.b.NewReg()
			c.b.MovI(z, 0)
			c.b.ALU(ir.CmpEQ, r, x, z)
		default:
			return 0, fmt.Errorf("lang: line %d: unknown unary %q", ex.line, ex.op)
		}
		return r, nil
	case *indexExpr:
		base, err := c.baseAddr(ex.base, ex.line)
		if err != nil {
			return 0, err
		}
		r := c.b.NewReg()
		if n, ok := ex.idx.(*numLit); ok {
			c.b.Load(r, base, n.v)
			return r, nil
		}
		idx, err := c.genExpr(ex.idx)
		if err != nil {
			return 0, err
		}
		addr := c.b.NewReg()
		c.b.ALU(ir.Add, addr, base, idx)
		c.b.Load(r, addr, 0)
		return r, nil
	case *binExpr:
		if ex.op == "&&" || ex.op == "||" {
			return c.genShortCircuit(ex)
		}
		op, ok := binOps[ex.op]
		if !ok {
			return 0, fmt.Errorf("lang: line %d: unknown operator %q", ex.line, ex.op)
		}
		// Constant immediates fold into AddI/MulI for better downstream
		// analysis (static offsets feed the alias oracle).
		if n, isNum := ex.r.(*numLit); isNum && (ex.op == "+" || ex.op == "*" || ex.op == "-") {
			l, err := c.genExpr(ex.l)
			if err != nil {
				return 0, err
			}
			r := c.b.NewReg()
			switch ex.op {
			case "+":
				c.b.AddI(r, l, n.v)
			case "-":
				c.b.AddI(r, l, -n.v)
			case "*":
				c.b.MulI(r, l, n.v)
			}
			return r, nil
		}
		l, err := c.genExpr(ex.l)
		if err != nil {
			return 0, err
		}
		rr, err := c.genExpr(ex.r)
		if err != nil {
			return 0, err
		}
		r := c.b.NewReg()
		c.b.ALU(op, r, l, rr)
		return r, nil
	case *callExpr:
		return c.genCall(ex)
	default:
		return 0, fmt.Errorf("lang: line %d: unhandled expression", e.exprLine())
	}
}

func (c *codegen) genCall(ex *callExpr) (ir.Reg, error) {
	switch ex.name {
	case "load":
		if len(ex.args) != 2 {
			return 0, fmt.Errorf("lang: line %d: load(base, off) wants 2 arguments", ex.line)
		}
		base, err := c.genExpr(ex.args[0])
		if err != nil {
			return 0, err
		}
		r := c.b.NewReg()
		if n, ok := ex.args[1].(*numLit); ok {
			c.b.Load(r, base, n.v)
			return r, nil
		}
		off, err := c.genExpr(ex.args[1])
		if err != nil {
			return 0, err
		}
		addr := c.b.NewReg()
		c.b.ALU(ir.Add, addr, base, off)
		c.b.Load(r, addr, 0)
		return r, nil
	case "store":
		if len(ex.args) != 3 {
			return 0, fmt.Errorf("lang: line %d: store(base, off, v) wants 3 arguments", ex.line)
		}
		base, err := c.genExpr(ex.args[0])
		if err != nil {
			return 0, err
		}
		if n, ok := ex.args[1].(*numLit); ok {
			v, err := c.genExpr(ex.args[2])
			if err != nil {
				return 0, err
			}
			c.b.Store(base, n.v, v)
			return v, nil
		}
		off, err := c.genExpr(ex.args[1])
		if err != nil {
			return 0, err
		}
		addr := c.b.NewReg()
		c.b.ALU(ir.Add, addr, base, off)
		v, err := c.genExpr(ex.args[2])
		if err != nil {
			return 0, err
		}
		c.b.Store(addr, 0, v)
		return v, nil
	case "alloc":
		if len(ex.args) != 1 {
			return 0, fmt.Errorf("lang: line %d: alloc(words) wants 1 argument", ex.line)
		}
		r := c.b.NewReg()
		if n, ok := ex.args[0].(*numLit); ok {
			c.b.AllocI(r, n.v)
			return r, nil
		}
		sz, err := c.genExpr(ex.args[0])
		if err != nil {
			return 0, err
		}
		c.b.Alloc(r, sz)
		return r, nil
	case "free":
		if len(ex.args) != 1 {
			return 0, fmt.Errorf("lang: line %d: free(addr) wants 1 argument", ex.line)
		}
		a, err := c.genExpr(ex.args[0])
		if err != nil {
			return 0, err
		}
		c.b.Free(a)
		return a, nil
	}
	arity, ok := c.funcs[ex.name]
	if !ok {
		return 0, fmt.Errorf("lang: line %d: call to undefined function %q", ex.line, ex.name)
	}
	if arity != len(ex.args) {
		return 0, fmt.Errorf("lang: line %d: %s wants %d arguments, got %d",
			ex.line, ex.name, arity, len(ex.args))
	}
	var args []ir.Reg
	for _, a := range ex.args {
		v, err := c.genExpr(a)
		if err != nil {
			return 0, err
		}
		args = append(args, v)
	}
	r := c.b.NewReg()
	c.b.Call(r, ex.name, args...)
	return r, nil
}

// baseAddr resolves an identifier used as an indexing base: a local holding
// a pointer, or a global (whose address is materialized).
func (c *codegen) baseAddr(name string, line int) (ir.Reg, error) {
	if r, ok := c.locals[name]; ok {
		return r, nil
	}
	if c.globals[name] {
		r := c.b.NewReg()
		c.b.GAddr(r, name)
		return r, nil
	}
	return 0, fmt.Errorf("lang: line %d: undefined variable %q", line, name)
}

// genShortCircuit lowers && and || with branching evaluation: the right
// operand runs only when it can affect the (0/1) result.
func (c *codegen) genShortCircuit(ex *binExpr) (ir.Reg, error) {
	l, err := c.genExpr(ex.l)
	if err != nil {
		return 0, err
	}
	r := c.b.NewReg()
	rhsL, endL := c.fresh("sc.rhs"), c.fresh("sc.end")
	if ex.op == "&&" {
		c.b.MovI(r, 0)
		c.b.Br(l, rhsL, endL)
	} else {
		c.b.MovI(r, 1)
		c.b.Br(l, endL, rhsL)
	}
	c.terminated = true
	c.b.Block(rhsL)
	c.terminated = false
	rv, err := c.genExpr(ex.r)
	if err != nil {
		return 0, err
	}
	z := c.b.NewReg()
	c.b.MovI(z, 0)
	c.b.ALU(ir.CmpNE, r, rv, z)
	c.startBlock(endL)
	return r, nil
}
