package lang

import "fmt"

// ---- AST ----

type program struct {
	globals []globalDecl
	funcs   []funcDecl
}

type globalDecl struct {
	name string
	size int64
	init []int64
	line int
}

type funcDecl struct {
	name   string
	params []string
	body   []stmt
	line   int
}

type stmt interface{ stmtLine() int }

type declStmt struct {
	name string
	init expr // nil means zero
	line int
}
type assignStmt struct {
	name  string
	value expr
	line  int
}
type exprStmt struct {
	x    expr
	line int
}
type ifStmt struct {
	cond      expr
	then, els []stmt
	line      int
}
type whileStmt struct {
	cond expr
	body []stmt
	line int
}
type forStmt struct {
	init stmt // may be nil
	cond expr // may be nil (infinite)
	post stmt // may be nil
	body []stmt
	line int
}
type indexStoreStmt struct {
	base  string
	idx   expr
	value expr
	line  int
}
type breakStmt struct{ line int }
type continueStmt struct{ line int }
type returnStmt struct {
	value expr // may be nil
	line  int
}

func (s *declStmt) stmtLine() int       { return s.line }
func (s *assignStmt) stmtLine() int     { return s.line }
func (s *exprStmt) stmtLine() int       { return s.line }
func (s *ifStmt) stmtLine() int         { return s.line }
func (s *whileStmt) stmtLine() int      { return s.line }
func (s *forStmt) stmtLine() int        { return s.line }
func (s *indexStoreStmt) stmtLine() int { return s.line }
func (s *breakStmt) stmtLine() int      { return s.line }
func (s *continueStmt) stmtLine() int   { return s.line }
func (s *returnStmt) stmtLine() int     { return s.line }

type expr interface{ exprLine() int }

type numLit struct {
	v    int64
	line int
}
type varRef struct {
	name string
	line int
}
type binExpr struct {
	op   string
	l, r expr
	line int
}
type unExpr struct {
	op   string
	x    expr
	line int
}
type callExpr struct {
	name string
	args []expr
	line int
}
type indexExpr struct {
	base string
	idx  expr
	line int
}

func (e *numLit) exprLine() int    { return e.line }
func (e *varRef) exprLine() int    { return e.line }
func (e *binExpr) exprLine() int   { return e.line }
func (e *unExpr) exprLine() int    { return e.line }
func (e *callExpr) exprLine() int  { return e.line }
func (e *indexExpr) exprLine() int { return e.line }

// ---- parser ----

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("lang: line %d: %s", p.cur().line, fmt.Sprintf(format, args...))
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.cur().kind == kind && p.cur().text == text {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) error {
	if !p.accept(kind, text) {
		return p.errf("expected %q, found %q", text, p.cur().text)
	}
	return nil
}

func parseProgram(src string) (*program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &program{}
	for p.cur().kind != tokEOF {
		switch {
		case p.cur().kind == tokKeyword && p.cur().text == "var":
			g, err := p.globalDecl()
			if err != nil {
				return nil, err
			}
			prog.globals = append(prog.globals, g)
		case p.cur().kind == tokKeyword && p.cur().text == "func":
			f, err := p.funcDecl()
			if err != nil {
				return nil, err
			}
			prog.funcs = append(prog.funcs, f)
		default:
			return nil, p.errf("expected 'var' or 'func' at top level, found %q", p.cur().text)
		}
	}
	return prog, nil
}

// globalDecl: var name [ size ] ( = { n, n, ... } )? ;
func (p *parser) globalDecl() (globalDecl, error) {
	g := globalDecl{line: p.cur().line}
	p.next() // var
	if p.cur().kind != tokIdent {
		return g, p.errf("expected global name")
	}
	g.name = p.next().text
	if err := p.expect(tokPunct, "["); err != nil {
		return g, err
	}
	if p.cur().kind != tokNumber {
		return g, p.errf("expected global size")
	}
	size, err := parseNumber(p.next().text)
	if err != nil || size <= 0 {
		return g, p.errf("bad global size")
	}
	g.size = size
	if err := p.expect(tokPunct, "]"); err != nil {
		return g, err
	}
	if p.accept(tokPunct, "=") {
		if err := p.expect(tokPunct, "{"); err != nil {
			return g, err
		}
		for {
			neg := p.accept(tokPunct, "-")
			if p.cur().kind != tokNumber {
				return g, p.errf("expected initializer value")
			}
			v, err := parseNumber(p.next().text)
			if err != nil {
				return g, p.errf("bad initializer")
			}
			if neg {
				v = -v
			}
			g.init = append(g.init, v)
			if !p.accept(tokPunct, ",") {
				break
			}
		}
		if err := p.expect(tokPunct, "}"); err != nil {
			return g, err
		}
		if int64(len(g.init)) > g.size {
			return g, p.errf("initializer longer than global %q", g.name)
		}
	}
	return g, p.expect(tokPunct, ";")
}

// funcDecl: func name ( params ) { stmts }
func (p *parser) funcDecl() (funcDecl, error) {
	f := funcDecl{line: p.cur().line}
	p.next() // func
	if p.cur().kind != tokIdent {
		return f, p.errf("expected function name")
	}
	f.name = p.next().text
	if err := p.expect(tokPunct, "("); err != nil {
		return f, err
	}
	for p.cur().kind == tokIdent {
		f.params = append(f.params, p.next().text)
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	if err := p.expect(tokPunct, ")"); err != nil {
		return f, err
	}
	body, err := p.block()
	if err != nil {
		return f, err
	}
	f.body = body
	return f, nil
}

func (p *parser) block() ([]stmt, error) {
	if err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	var out []stmt
	for !p.accept(tokPunct, "}") {
		if p.cur().kind == tokEOF {
			return nil, p.errf("unexpected end of input in block")
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func (p *parser) statement() (stmt, error) {
	line := p.cur().line
	switch {
	case p.cur().kind == tokKeyword && p.cur().text == "var":
		p.next()
		if p.cur().kind != tokIdent {
			return nil, p.errf("expected variable name")
		}
		name := p.next().text
		var init expr
		if p.accept(tokPunct, "=") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			init = e
		}
		return &declStmt{name: name, init: init, line: line}, p.expect(tokPunct, ";")
	case p.cur().kind == tokKeyword && p.cur().text == "if":
		p.next()
		if err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		then, err := p.block()
		if err != nil {
			return nil, err
		}
		var els []stmt
		if p.accept(tokKeyword, "else") {
			if p.cur().kind == tokKeyword && p.cur().text == "if" {
				s, err := p.statement()
				if err != nil {
					return nil, err
				}
				els = []stmt{s}
			} else {
				els, err = p.block()
				if err != nil {
					return nil, err
				}
			}
		}
		return &ifStmt{cond: cond, then: then, els: els, line: line}, nil
	case p.cur().kind == tokKeyword && p.cur().text == "while":
		p.next()
		if err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &whileStmt{cond: cond, body: body, line: line}, nil
	case p.cur().kind == tokKeyword && p.cur().text == "for":
		p.next()
		if err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		var init, post stmt
		var cond expr
		var err error
		if !p.accept(tokPunct, ";") {
			init, err = p.simpleStmt()
			if err != nil {
				return nil, err
			}
			if err := p.expect(tokPunct, ";"); err != nil {
				return nil, err
			}
		}
		if !p.accept(tokPunct, ";") {
			cond, err = p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(tokPunct, ";"); err != nil {
				return nil, err
			}
		}
		if p.cur().kind != tokPunct || p.cur().text != ")" {
			post, err = p.simpleStmt()
			if err != nil {
				return nil, err
			}
		}
		if err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &forStmt{init: init, cond: cond, post: post, body: body, line: line}, nil
	case p.cur().kind == tokKeyword && p.cur().text == "break":
		p.next()
		return &breakStmt{line: line}, p.expect(tokPunct, ";")
	case p.cur().kind == tokKeyword && p.cur().text == "continue":
		p.next()
		return &continueStmt{line: line}, p.expect(tokPunct, ";")
	case p.cur().kind == tokKeyword && p.cur().text == "return":
		p.next()
		if p.accept(tokPunct, ";") {
			return &returnStmt{line: line}, nil
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &returnStmt{value: e, line: line}, p.expect(tokPunct, ";")
	default:
		s, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		return s, p.expect(tokPunct, ";")
	}
}

// simpleStmt: assignment or expression statement (used bare and in for).
func (p *parser) simpleStmt() (stmt, error) {
	line := p.cur().line
	if p.cur().kind == tokIdent && p.toks[p.pos+1].kind == tokPunct && p.toks[p.pos+1].text == "[" {
		// name [ idx ] = value
		name := p.next().text
		p.next() // [
		idx, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokPunct, "]"); err != nil {
			return nil, err
		}
		if err := p.expect(tokPunct, "="); err != nil {
			return nil, err
		}
		val, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &indexStoreStmt{base: name, idx: idx, value: val, line: line}, nil
	}
	if p.cur().kind == tokIdent && p.toks[p.pos+1].kind == tokPunct && p.toks[p.pos+1].text == "=" {
		name := p.next().text
		p.next() // =
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &assignStmt{name: name, value: e, line: line}, nil
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, ok := e.(*callExpr); !ok {
		return nil, fmt.Errorf("lang: line %d: expression statement must be a call", line)
	}
	return &exprStmt{x: e, line: line}, nil
}

// ---- expressions (precedence climbing) ----

var binPrec = map[string]int{
	"||": 1, "&&": 2,
	"|": 3, "^": 4, "&": 5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) expr() (expr, error) { return p.binary(1) }

func (p *parser) binary(minPrec int) (expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		prec, ok := binPrec[t.text]
		if t.kind != tokPunct || !ok || prec < minPrec {
			return lhs, nil
		}
		p.next()
		rhs, err := p.binary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &binExpr{op: t.text, l: lhs, r: rhs, line: t.line}
	}
}

func (p *parser) unary() (expr, error) {
	t := p.cur()
	if t.kind == tokPunct && (t.text == "-" || t.text == "!") {
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &unExpr{op: t.text, x: x, line: t.line}, nil
	}
	return p.primary()
}

func (p *parser) primary() (expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.next()
		v, err := parseNumber(t.text)
		if err != nil {
			return nil, fmt.Errorf("lang: line %d: bad number %q", t.line, t.text)
		}
		return &numLit{v: v, line: t.line}, nil
	case t.kind == tokIdent:
		p.next()
		if p.accept(tokPunct, "[") {
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(tokPunct, "]"); err != nil {
				return nil, err
			}
			return &indexExpr{base: t.text, idx: idx, line: t.line}, nil
		}
		if p.accept(tokPunct, "(") {
			call := &callExpr{name: t.text, line: t.line}
			if !p.accept(tokPunct, ")") {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					call.args = append(call.args, a)
					if !p.accept(tokPunct, ",") {
						break
					}
				}
				if err := p.expect(tokPunct, ")"); err != nil {
					return nil, err
				}
			}
			return call, nil
		}
		return &varRef{name: t.text, line: t.line}, nil
	case t.kind == tokPunct && t.text == "(":
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		return e, p.expect(tokPunct, ")")
	default:
		return nil, fmt.Errorf("lang: line %d: unexpected token %q", t.line, t.text)
	}
}
