package cfg

import "sort"

// CtrlDep records that a block executes only when the terminating branch of
// block Branch goes to the given side (Taken == true means the Br Target,
// false means Target2).
type CtrlDep struct {
	Branch int
	Taken  bool
}

// LoopControlDeps computes intra-iteration control dependences for the
// blocks of loop l: the loop body is viewed acyclically (back edges to the
// header removed, exit edges redirected to a virtual exit) and standard
// postdominator-based control dependence is computed on that view. The SPT
// loop transformation uses this to know which branches must be copied into
// the pre-fork region when hoisting conditionally executed statements
// (Section 4.3).
func LoopControlDeps(g *Graph, l *Loop) map[int][]CtrlDep {
	return LoopControlDepsAt(g, l, l.Header)
}

// LoopControlDepsAt is LoopControlDeps with an explicit iteration boundary:
// the acyclic view treats edges into the start block as iteration exits.
// For while-shaped loops the SPT start-point is the header's in-loop
// successor, and relative to it the header test executes at the *end* of
// the iteration — so body statements are not control dependent on it, and
// hoist slices need not copy the loop-continuation branch.
func LoopControlDepsAt(g *Graph, l *Loop, start int) map[int][]CtrlDep {
	body := l.BodyRPO(g)
	idx := make(map[int]int, len(body)) // block -> subgraph node
	for i, b := range body {
		idx[b] = i
	}
	n := len(body)
	exit := n // virtual exit node
	succ := make([][]int, n+1)
	for i, b := range body {
		for _, s := range g.Succ[b] {
			switch {
			case s == start:
				// iteration boundary: flows to exit
				succ[i] = append(succ[i], exit)
			case l.Contains(s):
				succ[i] = append(succ[i], idx[s])
			default:
				succ[i] = append(succ[i], exit)
			}
		}
	}
	// Terminal blocks (e.g. ending in Ret) flow to exit too.
	for i := 0; i <= n; i++ {
		if i != exit && len(succ[i]) == 0 {
			succ[i] = append(succ[i], exit)
		}
	}
	ipdom := postDominators(succ, exit)

	deps := make(map[int][]CtrlDep, n)
	for i, b := range body {
		if len(succ[i]) < 2 {
			continue
		}
		for si, s := range succ[i] {
			// Nodes control dependent on edge (i -> s): walk s up the
			// postdominator tree until ipdom(i).
			taken := si == 0 // Br successor order: [Target, Target2]
			for v := s; v != ipdom[i] && v != exit && v >= 0; v = ipdom[v] {
				blk := body[v]
				deps[blk] = append(deps[blk], CtrlDep{Branch: b, Taken: taken})
			}
		}
	}
	// Deduplicate and order for determinism.
	for b, ds := range deps {
		sort.Slice(ds, func(i, j int) bool {
			if ds[i].Branch != ds[j].Branch {
				return ds[i].Branch < ds[j].Branch
			}
			return !ds[i].Taken && ds[j].Taken
		})
		out := ds[:0]
		for i, d := range ds {
			if i == 0 || d != ds[i-1] {
				out = append(out, d)
			}
		}
		deps[b] = out
	}
	return deps
}

// postDominators computes immediate postdominators of an acyclic-ish graph
// given by succ, with the designated exit node, using the iterative
// algorithm on the reverse graph. entry is used to seed reachability.
func postDominators(succ [][]int, exit int) []int {
	n := len(succ)
	pred := make([][]int, n)
	for u, ss := range succ {
		for _, v := range ss {
			pred[v] = append(pred[v], u)
		}
	}
	// Postorder of the reverse graph from exit == reverse postorder for
	// postdominance.
	order := make([]int, 0, n)
	seen := make([]bool, n)
	type frame struct{ b, i int }
	stack := []frame{{exit, 0}}
	seen[exit] = true
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		if top.i < len(pred[top.b]) {
			p := pred[top.b][top.i]
			top.i++
			if !seen[p] {
				seen[p] = true
				stack = append(stack, frame{p, 0})
			}
			continue
		}
		order = append(order, top.b)
		stack = stack[:len(stack)-1]
	}
	// order is postorder of reverse graph; we want RPO: reverse it.
	rpo := make([]int, 0, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		rpo = append(rpo, order[i])
	}
	num := make([]int, n)
	for i := range num {
		num[i] = -1
	}
	for i, b := range rpo {
		num[b] = i
	}
	ipdom := make([]int, n)
	for i := range ipdom {
		ipdom[i] = -1
	}
	ipdom[exit] = exit
	intersect := func(a, b int) int {
		for a != b {
			for num[a] > num[b] {
				a = ipdom[a]
			}
			for num[b] > num[a] {
				b = ipdom[b]
			}
		}
		return a
	}
	changed := true
	for changed {
		changed = false
		for _, b := range rpo {
			if b == exit {
				continue
			}
			newIp := -1
			for _, s := range succ[b] {
				if num[s] == -1 || ipdom[s] == -1 {
					continue
				}
				if newIp == -1 {
					newIp = s
				} else {
					newIp = intersect(s, newIp)
				}
			}
			if newIp != -1 && ipdom[b] != newIp {
				ipdom[b] = newIp
				changed = true
			}
		}
	}
	return ipdom
}
