// Package cfg builds control-flow graphs over IR functions and derives the
// structures the SPT compiler needs: dominator trees, the natural-loop
// forest, and intra-loop control dependences. These are the "annotated
// control-flow graph" substrate of the paper's cost-driven compilation
// framework (Figure 4); the annotations themselves (reach probabilities)
// come from the profiler.
package cfg

import (
	"fmt"
	"sort"

	"repro/internal/ir"
)

// Graph is the control-flow graph of one function. Nodes are block indices
// into F.Blocks.
type Graph struct {
	F    *ir.Func
	Succ [][]int
	Pred [][]int

	// RPO is a reverse-postorder enumeration of reachable blocks starting
	// at block 0. RPONum[b] is b's position in RPO, or -1 if unreachable.
	RPO    []int
	RPONum []int

	// Idom[b] is the immediate dominator of block b (Idom[entry] == entry);
	// -1 for unreachable blocks.
	Idom []int
}

// Build constructs the CFG and dominator tree for f (must be finalized).
// A function whose control flow targets an unknown label — possible only
// when the program skipped ir.Validate — yields an error, never a panic.
func Build(f *ir.Func) (*Graph, error) {
	n := len(f.Blocks)
	if n == 0 {
		return nil, fmt.Errorf("cfg: %s has no blocks", f.Name)
	}
	g := &Graph{
		F:      f,
		Succ:   make([][]int, n),
		Pred:   make([][]int, n),
		RPONum: make([]int, n),
		Idom:   make([]int, n),
	}
	for bi, b := range f.Blocks {
		for _, lbl := range b.Succs(nil) {
			si := f.BlockIndex(lbl)
			if si < 0 {
				return nil, fmt.Errorf("cfg: unknown label %q in %s", lbl, f.Name)
			}
			g.Succ[bi] = append(g.Succ[bi], si)
			g.Pred[si] = append(g.Pred[si], bi)
		}
	}
	g.computeRPO()
	g.computeDominators()
	return g, nil
}

func (g *Graph) computeRPO() {
	n := len(g.Succ)
	seen := make([]bool, n)
	post := make([]int, 0, n)
	// Iterative DFS with explicit stack to handle deep graphs.
	type frame struct{ b, i int }
	stack := []frame{{0, 0}}
	seen[0] = true
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		if top.i < len(g.Succ[top.b]) {
			s := g.Succ[top.b][top.i]
			top.i++
			if !seen[s] {
				seen[s] = true
				stack = append(stack, frame{s, 0})
			}
			continue
		}
		post = append(post, top.b)
		stack = stack[:len(stack)-1]
	}
	g.RPO = make([]int, len(post))
	for i := range post {
		g.RPO[i] = post[len(post)-1-i]
	}
	for i := range g.RPONum {
		g.RPONum[i] = -1
	}
	for i, b := range g.RPO {
		g.RPONum[b] = i
	}
}

// computeDominators uses the Cooper–Harvey–Kennedy iterative algorithm.
func (g *Graph) computeDominators() {
	for i := range g.Idom {
		g.Idom[i] = -1
	}
	g.Idom[0] = 0
	changed := true
	for changed {
		changed = false
		for _, b := range g.RPO {
			if b == 0 {
				continue
			}
			newIdom := -1
			for _, p := range g.Pred[b] {
				if g.Idom[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = g.intersect(p, newIdom)
				}
			}
			if newIdom != -1 && g.Idom[b] != newIdom {
				g.Idom[b] = newIdom
				changed = true
			}
		}
	}
}

func (g *Graph) intersect(a, b int) int {
	for a != b {
		for g.RPONum[a] > g.RPONum[b] {
			a = g.Idom[a]
		}
		for g.RPONum[b] > g.RPONum[a] {
			b = g.Idom[b]
		}
	}
	return a
}

// Dominates reports whether block a dominates block b (reflexive).
func (g *Graph) Dominates(a, b int) bool {
	if g.RPONum[b] == -1 {
		return false
	}
	for {
		if a == b {
			return true
		}
		if b == 0 {
			return false
		}
		nb := g.Idom[b]
		if nb == b || nb == -1 {
			return false
		}
		b = nb
	}
}

// Reachable reports whether block b is reachable from the entry.
func (g *Graph) Reachable(b int) bool { return g.RPONum[b] != -1 }

// Edge is a directed CFG edge between block indices.
type Edge struct{ From, To int }

// Loop is a natural loop: the union of all natural loops sharing a header.
type Loop struct {
	Header  int
	Blocks  []int  // sorted block indices, including Header
	Latches []int  // blocks with a back edge to Header
	Exits   []Edge // edges from a loop block to a non-loop block

	Parent   *Loop
	Children []*Loop
	Depth    int // 1 for outermost

	inLoop map[int]bool
}

// Contains reports whether the loop body contains block b.
func (l *Loop) Contains(b int) bool { return l.inLoop[b] }

// IsInnermost reports whether the loop has no nested loops.
func (l *Loop) IsInnermost() bool { return len(l.Children) == 0 }

// BodyRPO returns the loop's blocks in reverse postorder of the enclosing
// graph (header first).
func (l *Loop) BodyRPO(g *Graph) []int {
	out := append([]int(nil), l.Blocks...)
	sort.Slice(out, func(i, j int) bool { return g.RPONum[out[i]] < g.RPONum[out[j]] })
	return out
}

// Forest is the loop nest of one function.
type Forest struct {
	Loops []*Loop // all loops, outer loops before their children
	Roots []*Loop
	// InnermostAt[b] is the innermost loop containing block b, or nil.
	InnermostAt []*Loop
}

// FindLoops identifies all natural loops of g and their nesting.
func FindLoops(g *Graph) *Forest {
	n := len(g.Succ)
	byHeader := map[int]*Loop{}
	for b := 0; b < n; b++ {
		if !g.Reachable(b) {
			continue
		}
		for _, s := range g.Succ[b] {
			if g.Dominates(s, b) { // back edge b -> s
				l := byHeader[s]
				if l == nil {
					l = &Loop{Header: s, inLoop: map[int]bool{s: true}}
					byHeader[s] = l
				}
				l.Latches = append(l.Latches, b)
				collectNaturalLoop(g, l, b)
			}
		}
	}
	f := &Forest{InnermostAt: make([]*Loop, n)}
	for _, l := range byHeader {
		for b := range l.inLoop {
			l.Blocks = append(l.Blocks, b)
		}
		sort.Ints(l.Blocks)
		sort.Ints(l.Latches)
		for _, b := range l.Blocks {
			for _, s := range g.Succ[b] {
				if !l.inLoop[s] {
					l.Exits = append(l.Exits, Edge{b, s})
				}
			}
		}
		sort.Slice(l.Exits, func(i, j int) bool {
			if l.Exits[i].From != l.Exits[j].From {
				return l.Exits[i].From < l.Exits[j].From
			}
			return l.Exits[i].To < l.Exits[j].To
		})
		f.Loops = append(f.Loops, l)
	}
	// Sort loops by size descending so parents precede children, then by
	// header for determinism.
	sort.Slice(f.Loops, func(i, j int) bool {
		if len(f.Loops[i].Blocks) != len(f.Loops[j].Blocks) {
			return len(f.Loops[i].Blocks) > len(f.Loops[j].Blocks)
		}
		return f.Loops[i].Header < f.Loops[j].Header
	})
	// Nesting: the parent of l is the smallest loop strictly containing it.
	for i, l := range f.Loops {
		var best *Loop
		for j := 0; j < i; j++ {
			o := f.Loops[j]
			if o != l && o.inLoop[l.Header] && len(o.Blocks) > len(l.Blocks) {
				// Keep the smallest strict container as the parent.
				if best == nil || len(o.Blocks) < len(best.Blocks) {
					best = o
				}
			}
		}
		l.Parent = best
		if best != nil {
			best.Children = append(best.Children, l)
		} else {
			f.Roots = append(f.Roots, l)
		}
	}
	var setDepth func(l *Loop, d int)
	setDepth = func(l *Loop, d int) {
		l.Depth = d
		for _, c := range l.Children {
			setDepth(c, d+1)
		}
	}
	for _, r := range f.Roots {
		setDepth(r, 1)
	}
	// Innermost loop per block: smallest loop containing it.
	for _, l := range f.Loops {
		for _, b := range l.Blocks {
			cur := f.InnermostAt[b]
			if cur == nil || len(l.Blocks) < len(cur.Blocks) {
				f.InnermostAt[b] = l
			}
		}
	}
	return f
}

func collectNaturalLoop(g *Graph, l *Loop, latch int) {
	if l.inLoop[latch] {
		return
	}
	stack := []int{latch}
	l.inLoop[latch] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range g.Pred[b] {
			if !l.inLoop[p] && g.Reachable(p) {
				l.inLoop[p] = true
				stack = append(stack, p)
			}
		}
	}
}
