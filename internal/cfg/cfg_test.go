package cfg

import (
	"testing"

	"repro/internal/ir"
)

// buildDiamondLoop builds a function with this shape:
//
//	entry -> head
//	head: br -> body | exit
//	body: br -> then | else
//	then -> join; else -> join
//	join -> head (latch)
//	exit: ret
func buildDiamondLoop() *ir.Func {
	b := ir.NewFuncBuilder("f", 0)
	c := b.NewReg()
	b.Block("entry")
	b.MovI(c, 1)
	b.Jmp("head")
	b.Block("head")
	b.Br(c, "body", "exit")
	b.Block("body")
	b.Br(c, "then", "else")
	b.Block("then")
	b.Jmp("join")
	b.Block("else")
	b.Jmp("join")
	b.Block("join")
	b.AddI(c, c, -1)
	b.Jmp("head")
	b.Block("exit")
	b.Ret(c)
	return b.Done()
}

func idxOf(t *testing.T, f *ir.Func, label string) int {
	t.Helper()
	i := f.BlockIndex(label)
	if i < 0 {
		t.Fatalf("no block %q", label)
	}
	return i
}

func TestDominators(t *testing.T) {
	f := buildDiamondLoop()
	g, err := Build(f)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	entry := idxOf(t, f, "entry")
	head := idxOf(t, f, "head")
	body := idxOf(t, f, "body")
	then := idxOf(t, f, "then")
	els := idxOf(t, f, "else")
	join := idxOf(t, f, "join")
	exit := idxOf(t, f, "exit")

	cases := []struct {
		a, b int
		want bool
	}{
		{entry, exit, true},
		{head, body, true},
		{head, exit, true},
		{body, join, true},
		{then, join, false},
		{els, join, false},
		{join, head, false}, // join does not dominate head (entry path)
		{body, body, true},
	}
	for _, c := range cases {
		if got := g.Dominates(c.a, c.b); got != c.want {
			t.Errorf("Dominates(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	if g.Idom[join] != body {
		t.Errorf("Idom(join) = %d, want body=%d", g.Idom[join], body)
	}
	if g.Idom[exit] != head {
		t.Errorf("Idom(exit) = %d, want head=%d", g.Idom[exit], head)
	}
}

func TestFindLoopsSimple(t *testing.T) {
	f := buildDiamondLoop()
	g, err := Build(f)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	forest := FindLoops(g)
	if len(forest.Loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(forest.Loops))
	}
	l := forest.Loops[0]
	head := idxOf(t, f, "head")
	join := idxOf(t, f, "join")
	exit := idxOf(t, f, "exit")
	if l.Header != head {
		t.Errorf("header = %d, want %d", l.Header, head)
	}
	if len(l.Blocks) != 5 { // head, body, then, else, join
		t.Errorf("loop has %d blocks, want 5: %v", len(l.Blocks), l.Blocks)
	}
	if !l.Contains(join) || l.Contains(exit) {
		t.Error("Contains wrong")
	}
	if len(l.Latches) != 1 || l.Latches[0] != join {
		t.Errorf("latches = %v, want [join]", l.Latches)
	}
	if len(l.Exits) != 1 || l.Exits[0] != (Edge{head, exit}) {
		t.Errorf("exits = %v", l.Exits)
	}
	if !l.IsInnermost() || l.Depth != 1 {
		t.Error("loop nesting wrong")
	}
	rpo := l.BodyRPO(g)
	if rpo[0] != head {
		t.Errorf("BodyRPO[0] = %d, want header", rpo[0])
	}
}

// buildNestedLoops builds two nested counted loops.
func buildNestedLoops() *ir.Func {
	b := ir.NewFuncBuilder("f", 0)
	i, j, c, s := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
	b.Block("entry")
	b.MovI(i, 10)
	b.MovI(s, 0)
	b.Jmp("ohead")
	b.Block("ohead")
	b.MovI(c, 0)
	b.ALU(ir.CmpGT, c, i, c)
	b.Br(c, "obody", "exit")
	b.Block("obody")
	b.MovI(j, 10)
	b.Jmp("ihead")
	b.Block("ihead")
	b.MovI(c, 0)
	b.ALU(ir.CmpGT, c, j, c)
	b.Br(c, "ibody", "olatch")
	b.Block("ibody")
	b.ALU(ir.Add, s, s, j)
	b.AddI(j, j, -1)
	b.Jmp("ihead")
	b.Block("olatch")
	b.AddI(i, i, -1)
	b.Jmp("ohead")
	b.Block("exit")
	b.Ret(s)
	return b.Done()
}

func TestFindLoopsNested(t *testing.T) {
	f := buildNestedLoops()
	g, err := Build(f)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	forest := FindLoops(g)
	if len(forest.Loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(forest.Loops))
	}
	outer, inner := forest.Loops[0], forest.Loops[1]
	if len(outer.Blocks) < len(inner.Blocks) {
		outer, inner = inner, outer
	}
	if inner.Parent != outer {
		t.Error("inner loop's parent is not outer")
	}
	if outer.Parent != nil {
		t.Error("outer loop should have no parent")
	}
	if inner.Depth != 2 || outer.Depth != 1 {
		t.Errorf("depths = %d/%d, want 2/1", inner.Depth, outer.Depth)
	}
	if outer.IsInnermost() || !inner.IsInnermost() {
		t.Error("IsInnermost wrong")
	}
	ihead := idxOf(t, f, "ihead")
	if forest.InnermostAt[ihead] != inner {
		t.Error("InnermostAt(ihead) should be inner loop")
	}
	ohead := idxOf(t, f, "ohead")
	if forest.InnermostAt[ohead] != outer {
		t.Error("InnermostAt(ohead) should be outer loop")
	}
}

func TestLoopControlDeps(t *testing.T) {
	f := buildDiamondLoop()
	g, err := Build(f)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	forest := FindLoops(g)
	l := forest.Loops[0]
	deps := LoopControlDeps(g, l)

	head := idxOf(t, f, "head")
	body := idxOf(t, f, "body")
	then := idxOf(t, f, "then")
	els := idxOf(t, f, "else")
	join := idxOf(t, f, "join")

	// then/else are control dependent on body's branch (opposite sides).
	dThen, dEls := deps[then], deps[els]
	if len(dThen) != 1 || dThen[0].Branch != body || !dThen[0].Taken {
		t.Errorf("deps[then] = %v", dThen)
	}
	if len(dEls) != 1 || dEls[0].Branch != body || dEls[0].Taken {
		t.Errorf("deps[else] = %v", dEls)
	}
	// body and join are control dependent on head's branch (the iteration
	// executes only when the loop continues), but not on body's branch.
	for _, blk := range []int{body, join} {
		ds := deps[blk]
		found := false
		for _, d := range ds {
			if d.Branch == body {
				t.Errorf("block %d wrongly control dependent on body branch", blk)
			}
			if d.Branch == head && d.Taken {
				found = true
			}
		}
		if !found {
			t.Errorf("block %d missing control dep on head: %v", blk, ds)
		}
	}
	// The header itself has no intra-iteration control deps.
	if len(deps[head]) != 0 {
		t.Errorf("deps[head] = %v, want none", deps[head])
	}
}

func TestUnreachableBlocksIgnored(t *testing.T) {
	b := ir.NewFuncBuilder("f", 0)
	r := b.NewReg()
	b.Block("entry")
	b.MovI(r, 1)
	b.Ret(r)
	b.Block("dead")
	b.Jmp("dead") // unreachable self-loop
	f := b.Done()
	g, err := Build(f)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	dead := f.BlockIndex("dead")
	if g.Reachable(dead) {
		t.Error("dead block marked reachable")
	}
	forest := FindLoops(g)
	for _, l := range forest.Loops {
		if l.Header == dead {
			t.Error("unreachable loop reported")
		}
	}
}

func TestRotatedLoop(t *testing.T) {
	// do-while: entry -> body; body: ... br body|exit.
	b := ir.NewFuncBuilder("f", 0)
	i, c := b.NewReg(), b.NewReg()
	b.Block("entry")
	b.MovI(i, 5)
	b.Jmp("body")
	b.Block("body")
	b.AddI(i, i, -1)
	b.MovI(c, 0)
	b.ALU(ir.CmpGT, c, i, c)
	b.Br(c, "body", "exit")
	b.Block("exit")
	b.Ret(i)
	f := b.Done()
	g, err := Build(f)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	forest := FindLoops(g)
	if len(forest.Loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(forest.Loops))
	}
	l := forest.Loops[0]
	bodyIdx := f.BlockIndex("body")
	if l.Header != bodyIdx || len(l.Blocks) != 1 {
		t.Errorf("rotated loop wrong: header=%d blocks=%v", l.Header, l.Blocks)
	}
	if len(l.Latches) != 1 || l.Latches[0] != bodyIdx {
		t.Errorf("latches = %v", l.Latches)
	}
}
