package transform

import (
	"fmt"

	"repro/internal/ir"
)

// ApplyRegionFork implements the paper's region-based speculation (the
// Section 6 future-work direction): a straight-line region is parallelized
// by forking its second half while the main thread executes the first half.
// The block labelled blockLabel is split at instruction index splitIdx; the
// first half forks a speculative thread at the second half's start. All
// cross-half dependences are left to the hardware checkers — register
// values unchanged across the first half (value-based checking) and memory
// the halves do not share commit cleanly; anything else replays through
// selective re-execution.
//
// The split index must land inside the block (0 < splitIdx < len-1) so both
// halves are non-empty and the terminator stays in the second half.
func ApplyRegionFork(f *ir.Func, blockLabel string, splitIdx int) (*Result, error) {
	bi := f.BlockIndex(blockLabel)
	if bi < 0 {
		return nil, fmt.Errorf("transform: no block %q", blockLabel)
	}
	blk := f.Blocks[bi]
	if splitIdx <= 0 || splitIdx >= len(blk.Instrs)-1 {
		return nil, fmt.Errorf("transform: split index %d out of range for block %q (len %d)",
			splitIdx, blockLabel, len(blk.Instrs))
	}

	labels := map[string]bool{}
	for _, b := range f.Blocks {
		labels[b.Label] = true
	}
	half := "spt.region." + blockLabel
	for i := 1; labels[half]; i++ {
		half = fmt.Sprintf("spt.region.%s.%d", blockLabel, i)
	}

	second := &ir.Block{Label: half, Instrs: append([]ir.Instr(nil), blk.Instrs[splitIdx:]...)}
	// The fork leads the *first* half: while the main core executes the
	// first half, the speculative core runs the second half from the
	// fork-time register context; the main thread's arrival at the midpoint
	// label triggers the usual dependence check and commit.
	first := []ir.Instr{{Op: ir.SptFork, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, Target: half}}
	first = append(first, blk.Instrs[:splitIdx]...)
	first = append(first,
		ir.Instr{Op: ir.Jmp, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, Target: half})
	blk.Instrs = first

	blocks := append([]*ir.Block{}, f.Blocks[:bi+1]...)
	blocks = append(blocks, second)
	blocks = append(blocks, f.Blocks[bi+1:]...)
	f.Blocks = blocks
	f.Finalize()
	return &Result{Header: blockLabel, StartLabel: half, PreForkLen: splitIdx}, nil
}
