package transform

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/interp"
	"repro/internal/ir"
)

// buildStraightLine builds a function with two independent computation
// halves inside one block, called repeatedly from a driver loop so the
// simulator has many regions to speculate on.
func buildRegionProgram(reps int64, dependent bool) *ir.Program {
	w := ir.NewFuncBuilder("work", 1)
	x := w.Param(0)
	a, b2 := w.NewReg(), w.NewReg()
	w.Block("entry")
	// First half: long chain into a.
	w.MulI(a, x, 3)
	for k := 0; k < 15; k++ {
		w.AddI(a, a, int64(k))
		w.MulI(a, a, 5)
	}
	// Second half: chain into b2. Either independent (seeded from the
	// parameter) or dependent on the first half's result.
	if dependent {
		w.MulI(b2, a, 7)
	} else {
		w.MulI(b2, x, 7)
	}
	for k := 0; k < 15; k++ {
		w.AddI(b2, b2, int64(k)+1)
		w.MulI(b2, b2, 3)
	}
	w.ALU(ir.Xor, a, a, b2)
	w.Ret(a)
	work := w.Done()

	m := ir.NewFuncBuilder("main", 0)
	i, c, z, s, v := m.NewReg(), m.NewReg(), m.NewReg(), m.NewReg(), m.NewReg()
	m.Block("entry")
	m.MovI(i, reps)
	m.MovI(z, 0)
	m.MovI(s, 0)
	m.Jmp("head")
	m.Block("head")
	m.ALU(ir.CmpGT, c, i, z)
	m.Br(c, "body", "exit")
	m.Block("body")
	m.Call(v, "work", i)
	m.ALU(ir.Xor, s, s, v)
	m.AddI(i, i, -1)
	m.Jmp("head")
	m.Block("exit")
	m.Ret(s)
	return ir.NewProgramBuilder("main").AddFunc(m.Done()).AddFunc(work).Done()
}

// regionSplit applies the region fork at the midpoint of work's entry block.
func regionSplit(t *testing.T, p *ir.Program) *ir.Program {
	t.Helper()
	clone := p.Clone()
	f := clone.Func("work")
	// Split right where the second half's seed begins (after the first
	// 31-instruction chain).
	res, err := ApplyRegionFork(f, "entry", 31)
	if err != nil {
		t.Fatalf("ApplyRegionFork: %v", err)
	}
	if res.StartLabel == "" {
		t.Fatal("no start label")
	}
	clone.Finalize()
	if err := clone.Validate(); err != nil {
		t.Fatalf("region program invalid: %v\n%s", err, clone.Disasm())
	}
	return clone
}

func TestRegionForkPreservesSemantics(t *testing.T) {
	for _, dep := range []bool{false, true} {
		p := buildRegionProgram(50, dep)
		xp := regionSplit(t, p)
		checkEquivalent(t, p, xp)
	}
}

func TestRegionForkRejectsBadSplits(t *testing.T) {
	p := buildRegionProgram(1, false)
	f := p.Func("work")
	if _, err := ApplyRegionFork(f, "nosuch", 1); err == nil {
		t.Error("unknown block accepted")
	}
	if _, err := ApplyRegionFork(f, "entry", 0); err == nil {
		t.Error("split at 0 accepted")
	}
	if _, err := ApplyRegionFork(f, "entry", len(f.BlockByLabel("entry").Instrs)-1); err == nil {
		t.Error("split at terminator accepted")
	}
}

func TestRegionForkStructure(t *testing.T) {
	p := buildRegionProgram(1, false)
	xp := regionSplit(t, p)
	f := xp.Func("work")
	entry := f.BlockByLabel("entry")
	if entry.Instrs[0].Op != ir.SptFork {
		t.Errorf("first half does not lead with spt_fork: %v", entry.Instrs[0].Op)
	}
	if f.BlockByLabel("spt.region.entry") == nil {
		t.Error("second-half block missing")
	}
	if entry.Instrs[0].Target != "spt.region.entry" {
		t.Errorf("fork targets %q", entry.Instrs[0].Target)
	}
}

func TestRegionForkSimulation(t *testing.T) {
	// Independent halves overlap on the two cores; dependent halves
	// misspeculate and gain little. This is the paper's Section 6
	// region-based speculation hypothesis, demonstrated end to end.
	simulate := func(p *ir.Program, sptOn bool) int64 {
		lp, err := interp.Load(p)
		if err != nil {
			t.Fatal(err)
		}
		cfg := arch.DefaultConfig()
		cfg.SPT = sptOn
		st, err := arch.NewMachine(lp, cfg).Run()
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles
	}

	indep := buildRegionProgram(300, false)
	indepX := regionSplit(t, indep)
	baseI := simulate(indep, false)
	sptI := simulate(indepX, true)
	spI := float64(baseI) / float64(sptI)
	if spI < 1.2 {
		t.Errorf("independent halves: speedup %.2f, want > 1.2 (base %d, spt %d)", spI, baseI, sptI)
	}

	dep := buildRegionProgram(300, true)
	depX := regionSplit(t, dep)
	baseD := simulate(dep, false)
	sptD := simulate(depX, true)
	spD := float64(baseD) / float64(sptD)
	if spD > spI-0.1 {
		t.Errorf("dependent halves speedup %.2f should trail independent %.2f", spD, spI)
	}
	if spD < 0.7 {
		t.Errorf("dependent halves slowdown %.2f too severe — selective replay should bound it", spD)
	}
}
