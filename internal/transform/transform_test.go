package transform

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cfg"
	"repro/internal/cost"
	"repro/internal/ddg"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/profiler"
)

// run executes p and returns the result.
func run(t *testing.T, p *ir.Program) interp.Result {
	t.Helper()
	lp, err := interp.Load(p)
	if err != nil {
		t.Fatalf("Load: %v\n%s", err, p.Disasm())
	}
	m := interp.New(lp)
	m.SetStepLimit(50_000_000)
	res, err := m.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// sptPipeline profiles p, searches the optimal partition of the loop headed
// at header in the entry function, and returns a transformed clone plus the
// transformation result.
func sptPipeline(t *testing.T, p *ir.Program, header string) (*ir.Program, *Result) {
	t.Helper()
	lp, err := interp.Load(p)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	prof, err := profiler.Collect(lp, 0)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	clone := p.Clone()
	f := clone.EntryFunc()
	g, err := cfg.Build(f)
	if err != nil {
		t.Fatalf("cfg.Build: %v", err)
	}
	forest := cfg.FindLoops(g)
	eff := ddg.ComputeEffects(clone)
	for _, l := range forest.Loops {
		if f.Blocks[l.Header].Label != header {
			continue
		}
		a := ddg.Analyze(clone, f, g, l, eff)
		if a == nil {
			t.Fatalf("loop %s unsupported", header)
		}
		lprof := prof.Loop(profiler.LoopKey{Func: f.Name, Header: header})
		if lprof == nil {
			t.Fatalf("loop %s not profiled", header)
		}
		model := cost.NewModel(a, lprof, cost.DefaultParams())
		// Hoist everything hoistable and predict the rest when possible —
		// the broadest stress of the emitter.
		part := cost.NewPartition()
		for _, c := range model.Candidates {
			switch {
			case c.HoistOK():
				part.Hoist[c.Reg] = true
			case c.SVPOK:
				part.SVP[c.Reg] = true
			}
		}
		plan, err := BuildPlan(model, part)
		if err != nil {
			t.Fatalf("BuildPlan: %v", err)
		}
		res, err := ApplySPT(f, a, plan)
		if err != nil {
			t.Fatalf("ApplySPT: %v", err)
		}
		clone.Finalize()
		if err := clone.Validate(); err != nil {
			t.Fatalf("transformed program invalid: %v\n%s", err, clone.Disasm())
		}
		return clone, res
	}
	t.Fatalf("no loop %s", header)
	return nil, nil
}

// checkEquivalent runs both programs and compares results.
func checkEquivalent(t *testing.T, orig, xform *ir.Program) {
	t.Helper()
	r1 := run(t, orig)
	r2 := run(t, xform)
	if r1.Ret != r2.Ret {
		t.Errorf("Ret: orig %d, transformed %d\n%s", r1.Ret, r2.Ret, xform.Disasm())
	}
	if r1.MemChecksum != r2.MemChecksum {
		t.Errorf("MemChecksum differs: %x vs %x", r1.MemChecksum, r2.MemChecksum)
	}
}

func buildCounterLoop(n int64) *ir.Program {
	b := ir.NewFuncBuilder("main", 0)
	i, s, c, z := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
	b.Block("entry")
	b.MovI(i, n)
	b.MovI(s, 0)
	b.MovI(z, 0)
	b.Jmp("head")
	b.Block("head")
	b.ALU(ir.CmpGT, c, i, z)
	b.Br(c, "body", "exit")
	b.Block("body")
	b.ALU(ir.Add, s, s, i)
	b.AddI(i, i, -1)
	b.Jmp("head")
	b.Block("exit")
	b.Ret(s)
	return ir.NewProgramBuilder("main").AddFunc(b.Done()).Done()
}

func TestSPTCounterLoopEquivalent(t *testing.T) {
	p := buildCounterLoop(100)
	xp, res := sptPipeline(t, p, "head")
	checkEquivalent(t, p, xp)
	if res.PreForkLen <= 0 {
		t.Errorf("PreForkLen = %d, want > 0", res.PreForkLen)
	}
	// Exactly one fork, targeting the start label.
	forks := 0
	for _, blk := range xp.EntryFunc().Blocks {
		for i := range blk.Instrs {
			if blk.Instrs[i].Op == ir.SptFork {
				forks++
				if blk.Instrs[i].Target != res.StartLabel {
					t.Errorf("fork targets %q, want %q", blk.Instrs[i].Target, res.StartLabel)
				}
			}
		}
	}
	if forks != 1 {
		t.Errorf("forks = %d, want 1", forks)
	}
	// spt_kill on the exit path.
	kills := 0
	for _, blk := range xp.EntryFunc().Blocks {
		for i := range blk.Instrs {
			if blk.Instrs[i].Op == ir.SptKill {
				kills++
			}
		}
	}
	if kills == 0 {
		t.Error("no spt_kill emitted on loop exits")
	}
}

// Figure 1 pattern: list free loop with pointer chase hoisting.
func buildListFreeProgram(n int64) *ir.Program {
	w := ir.NewFuncBuilder("work", 1)
	v := w.NewReg()
	w.Block("entry")
	w.Load(v, w.Param(0), 0)
	w.MulI(v, v, 3)
	w.Store(w.Param(0), 0, v)
	w.Ret(v)
	work := w.Done()

	b := ir.NewFuncBuilder("main", 0)
	c, c1, cond, z, t0, i, sum := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
	b.Block("entry")
	b.MovI(c, 0)
	b.MovI(i, n)
	b.MovI(z, 0)
	b.MovI(sum, 0)
	b.Jmp("mk")
	b.Block("mk")
	b.ALU(ir.CmpGT, cond, i, z)
	b.Br(cond, "mkbody", "head")
	b.Block("mkbody")
	b.AllocI(t0, 2)
	b.Store(t0, 0, i)
	b.Store(t0, 1, c)
	b.Mov(c, t0)
	b.AddI(i, i, -1)
	b.Jmp("mk")
	b.Block("head")
	b.ALU(ir.CmpNE, cond, c, z)
	b.Br(cond, "body", "exit")
	b.Block("body")
	b.Load(c1, c, 1) // next pointer first: Figure 1 hoistable pattern
	b.Call(t0, "work", c)
	b.ALU(ir.Add, sum, sum, t0)
	b.Free(c)
	b.Mov(c, c1)
	b.Jmp("head")
	b.Block("exit")
	b.Ret(sum)
	return ir.NewProgramBuilder("main").AddFunc(b.Done()).AddFunc(work).Done()
}

func TestSPTListFreeEquivalent(t *testing.T) {
	p := buildListFreeProgram(64)
	xp, res := sptPipeline(t, p, "head")
	checkEquivalent(t, p, xp)
	if res.NumTemps == 0 {
		t.Error("expected temp registers for the pointer chase")
	}
}

// Figure 5 pattern: carried value updated through an impure call -> SVP.
func buildSVPProgram(n int64) *ir.Program {
	bar := ir.NewFuncBuilder("bar", 1)
	v, g := bar.NewReg(), bar.NewReg()
	bar.Block("entry")
	bar.GAddr(g, "side")
	bar.Store(g, 0, bar.Param(0))
	bar.AddI(v, bar.Param(0), 2)
	bar.Ret(v)

	b := ir.NewFuncBuilder("main", 0)
	x, i, c, z := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
	b.Block("entry")
	b.MovI(x, 10)
	b.MovI(i, n)
	b.MovI(z, 0)
	b.Jmp("head")
	b.Block("head")
	b.ALU(ir.CmpGT, c, i, z)
	b.Br(c, "body", "exit")
	b.Block("body")
	b.Call(x, "bar", x)
	b.AddI(i, i, -1)
	b.Jmp("head")
	b.Block("exit")
	b.Ret(x)
	return ir.NewProgramBuilder("main").AddFunc(b.Done()).AddFunc(bar.Done()).
		AddGlobal("side", 1).Done()
}

func TestSPTSVPEquivalent(t *testing.T) {
	p := buildSVPProgram(50)
	xp, _ := sptPipeline(t, p, "head")
	checkEquivalent(t, p, xp)
	// The SVP check/recovery must exist: a CmpNE on the prediction temp.
	hasRepair := false
	for _, blk := range xp.EntryFunc().Blocks {
		if len(blk.Label) >= 8 && blk.Label[:7] == "spt.svp" {
			hasRepair = true
		}
	}
	if !hasRepair {
		t.Errorf("no SVP repair blocks emitted:\n%s", xp.Disasm())
	}
}

// Guarded carried def: if (i&1) { p += 3 }.
func buildGuardedProgram(n int64) *ir.Program {
	b := ir.NewFuncBuilder("main", 0)
	i, pr, c, z, one, t0 := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
	b.Block("entry")
	b.MovI(i, n)
	b.MovI(pr, 0)
	b.MovI(z, 0)
	b.MovI(one, 1)
	b.Jmp("head")
	b.Block("head")
	b.ALU(ir.CmpGT, c, i, z)
	b.Br(c, "body", "exit")
	b.Block("body")
	b.ALU(ir.And, t0, i, one)
	b.Br(t0, "then", "join")
	b.Block("then")
	b.AddI(pr, pr, 3)
	b.Jmp("join")
	b.Block("join")
	b.AddI(i, i, -1)
	b.Jmp("head")
	b.Block("exit")
	b.Ret(pr)
	return ir.NewProgramBuilder("main").AddFunc(b.Done()).Done()
}

func TestSPTGuardedEquivalent(t *testing.T) {
	for _, n := range []int64{0, 1, 2, 7, 100, 101} {
		p := buildGuardedProgram(n)
		xp, _ := sptPipeline(t, p, "head")
		checkEquivalent(t, p, xp)
	}
}

// Rotated (do-shape) single-block loop.
func buildDoLoop(n int64) *ir.Program {
	b := ir.NewFuncBuilder("main", 0)
	i, s, c := b.NewReg(), b.NewReg(), b.NewReg()
	b.Block("entry")
	b.MovI(i, n)
	b.MovI(s, 0)
	b.Jmp("body")
	b.Block("body")
	b.ALU(ir.Add, s, s, i)
	b.AddI(i, i, -1)
	b.MovI(c, 0)
	b.ALU(ir.CmpGT, c, i, c)
	b.Br(c, "body", "exit")
	b.Block("exit")
	b.Ret(s)
	return ir.NewProgramBuilder("main").AddFunc(b.Done()).Done()
}

func TestSPTDoShapeEquivalent(t *testing.T) {
	for _, n := range []int64{1, 2, 33} {
		p := buildDoLoop(n)
		xp, res := sptPipeline(t, p, "body")
		checkEquivalent(t, p, xp)
		if res.StartLabel == "" {
			t.Error("missing start label")
		}
	}
}

func TestUnrollEquivalent(t *testing.T) {
	for _, factor := range []int{2, 3, 4} {
		for _, n := range []int64{0, 1, 2, 3, 10, 97} {
			p := buildCounterLoop(n)
			clone := p.Clone()
			f := clone.EntryFunc()
			_, l := FindLoop(f, "head")
			if l == nil {
				t.Fatal("loop not found")
			}
			if err := Unroll(f, l, factor); err != nil {
				t.Fatalf("Unroll: %v", err)
			}
			clone.Finalize()
			if err := clone.Validate(); err != nil {
				t.Fatalf("unrolled invalid: %v\n%s", err, clone.Disasm())
			}
			checkEquivalent(t, p, clone)
		}
	}
}

func TestUnrollThenSPT(t *testing.T) {
	p := buildCounterLoop(100)
	clone := p.Clone()
	f := clone.EntryFunc()
	_, l := FindLoop(f, "head")
	if err := Unroll(f, l, 2); err != nil {
		t.Fatalf("Unroll: %v", err)
	}
	clone.Finalize()
	if err := clone.Validate(); err != nil {
		t.Fatalf("unrolled invalid: %v", err)
	}
	// Run the SPT pipeline on the unrolled program.
	xp, _ := sptPipeline(t, clone, "head")
	checkEquivalent(t, p, xp)
}

func TestUnrollRejectsBadFactor(t *testing.T) {
	p := buildCounterLoop(5)
	f := p.EntryFunc()
	_, l := FindLoop(f, "head")
	if err := Unroll(f, l, 1); err == nil {
		t.Error("factor 1 accepted")
	}
}

// randomLoopProgram generates a random but analyzable loop: a mix of
// carried updates (some guarded), iteration-local computation, global
// array traffic and optionally a pure-call-carried value.
func randomLoopProgram(rng *rand.Rand) *ir.Program {
	n := int64(rng.Intn(60) + 1)
	nCarried := rng.Intn(3) + 1
	nLocal := rng.Intn(4)
	useMem := rng.Intn(2) == 0
	useGuard := rng.Intn(2) == 0

	b := ir.NewFuncBuilder("main", 0)
	i, c, z := b.NewReg(), b.NewReg(), b.NewReg()
	carried := make([]ir.Reg, nCarried)
	for j := range carried {
		carried[j] = b.NewReg()
	}
	locals := make([]ir.Reg, nLocal)
	for j := range locals {
		locals[j] = b.NewReg()
	}
	g, v := b.NewReg(), b.NewReg()
	t0 := b.NewReg()

	b.Block("entry")
	b.MovI(i, n)
	b.MovI(z, 0)
	for j := range carried {
		b.MovI(carried[j], int64(rng.Intn(20)))
	}
	for j := range locals {
		b.MovI(locals[j], 0)
	}
	b.Jmp("head")
	b.Block("head")
	b.ALU(ir.CmpGT, c, i, z)
	b.Br(c, "body", "exit")
	b.Block("body")
	for j := range locals {
		b.MulI(locals[j], i, int64(rng.Intn(7)+1))
	}
	if useMem {
		b.GAddr(g, "arr")
		b.ALU(ir.And, v, i, z) // v = 0 (deterministic index base)
		b.ALU(ir.Add, v, v, i)
		b.ALU(ir.And, v, v, carried[0]) // semi-random in [0,..]
		b.MovI(t0, 31)
		b.ALU(ir.And, v, v, t0) // clamp to table
		b.ALU(ir.Add, g, g, v)
		b.Load(t0, g, 0)
		b.ALU(ir.Add, carried[0], carried[0], t0)
		b.MulI(t0, i, 5)
		b.Store(g, 0, t0)
	}
	if useGuard && nCarried > 1 {
		one := locals1(b)
		b.ALU(ir.And, t0, i, one)
		b.Br(t0, "then", "join")
		b.Block("then")
		b.AddI(carried[1], carried[1], 11)
		b.Jmp("join")
		b.Block("join")
	}
	for j := range carried {
		if j == 1 && useGuard && nCarried > 1 {
			continue // updated under the guard
		}
		b.AddI(carried[j], carried[j], int64(rng.Intn(9)+1))
	}
	b.AddI(i, i, -1)
	b.Jmp("head")
	b.Block("exit")
	sum := carried[0]
	for j := 1; j < nCarried; j++ {
		b.ALU(ir.Add, sum, sum, carried[j])
	}
	for j := range locals {
		b.ALU(ir.Add, sum, sum, locals[j])
	}
	b.Ret(sum)
	return ir.NewProgramBuilder("main").AddFunc(b.Done()).AddGlobal("arr", 32).Done()
}

func locals1(b *ir.FuncBuilder) ir.Reg {
	r := b.NewReg()
	b.MovI(r, 1)
	return r
}

func TestSPTRandomizedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(20050711)) // ICPP'05 vintage seed
	for trial := 0; trial < 60; trial++ {
		p := randomLoopProgram(rng)
		if err := p.Validate(); err != nil {
			t.Fatalf("trial %d: generated program invalid: %v", trial, err)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d panicked: %v\n%s", trial, r, p.Disasm())
				}
			}()
			xp, _ := sptPipeline(t, p, "head")
			r1, r2 := run(t, p), run(t, xp)
			if r1.Ret != r2.Ret || r1.MemChecksum != r2.MemChecksum {
				t.Errorf("trial %d: mismatch ret %d/%d checksum %x/%x\norig:\n%s\nxform:\n%s",
					trial, r1.Ret, r2.Ret, r1.MemChecksum, r2.MemChecksum,
					p.Disasm(), xp.Disasm())
			}
		}()
		if t.Failed() {
			break
		}
	}
}

func TestSPTZeroTripLoop(t *testing.T) {
	// A loop that never executes: transformation must keep entry semantics.
	p := buildCounterLoop(0)
	xp, _ := sptPipeline(t, p, "head")
	checkEquivalent(t, p, xp)
}

func TestBuildPlanRejectsIllegal(t *testing.T) {
	p := buildSVPProgram(30)
	lp, _ := interp.Load(p)
	prof, _ := profiler.Collect(lp, 0)
	f := p.EntryFunc()
	g, err := cfg.Build(f)
	if err != nil {
		t.Fatalf("cfg.Build: %v", err)
	}
	forest := cfg.FindLoops(g)
	eff := ddg.ComputeEffects(p)
	var model *cost.Model
	for _, l := range forest.Loops {
		if f.Blocks[l.Header].Label == "head" {
			a := ddg.Analyze(p, f, g, l, eff)
			model = cost.NewModel(a, prof.Loop(profiler.LoopKey{Func: "main", Header: "head"}), cost.DefaultParams())
		}
	}
	part := cost.NewPartition()
	part.Hoist[0] = true // x is call-carried: not hoistable
	if _, err := BuildPlan(model, part); err == nil {
		t.Error("hoisting a call-carried candidate must fail")
	}
	part2 := cost.NewPartition()
	part2.SVP[ir.Reg(2)] = true // z is not a predictable candidate
	if _, err := BuildPlan(model, part2); err == nil {
		t.Error("predicting a non-candidate must fail")
	}
}

var _ = fmt.Sprintf // keep fmt for debug helpers
