package transform

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/ir"
)

// Unroll replicates the loop body factor times (Section 4.1's loop
// preprocessing: "loop unrolling ... for more opportunities of thread-level
// parallelism"). The transformation is a pure code replication with the
// loop test kept between copies, so it preserves semantics for any trip
// count: each copy's back edges route to the next copy's header clone and
// the last copy routes back to the original header. Exit edges of every
// copy leave the loop unchanged.
func Unroll(f *ir.Func, l *cfg.Loop, factor int) error {
	if factor < 2 {
		return fmt.Errorf("transform: unroll factor %d < 2", factor)
	}
	if !l.IsInnermost() {
		return fmt.Errorf("transform: unrolling non-innermost loop")
	}
	headerLabel := f.Blocks[l.Header].Label
	loopLabels := map[string]bool{}
	for _, bi := range l.Blocks {
		loopLabels[f.Blocks[bi].Label] = true
	}
	var order []string // loop block labels in Blocks order for stable output
	for _, b := range f.Blocks {
		if loopLabels[b.Label] {
			order = append(order, b.Label)
		}
	}

	used := map[string]bool{}
	for _, b := range f.Blocks {
		used[b.Label] = true
	}
	cloneLabel := func(lbl string, k int) string {
		nl := fmt.Sprintf("%s.u%d", lbl, k)
		for used[nl] {
			nl += "x"
		}
		return nl
	}
	// Pre-compute all clone labels so edges can be remapped.
	type copyKey struct {
		label string
		k     int
	}
	names := map[copyKey]string{}
	for k := 1; k < factor; k++ {
		for _, lbl := range order {
			nl := cloneLabel(lbl, k)
			used[nl] = true
			names[copyKey{lbl, k}] = nl
		}
	}
	nameOf := func(lbl string, k int) string { return names[copyKey{lbl, k}] }

	// Retarget original copy's back edges to copy 1's header clone.
	redirectBackEdges := func(blocks []*ir.Block, nextHeader string) {
		for _, b := range blocks {
			term := b.Term()
			if term.Target == headerLabel {
				term.Target = nextHeader
			}
			if term.Op == ir.Br && term.Target2 == headerLabel {
				term.Target2 = nextHeader
			}
		}
	}

	var origBlocks []*ir.Block
	for _, b := range f.Blocks {
		if loopLabels[b.Label] {
			origBlocks = append(origBlocks, b)
		}
	}

	var newBlocks []*ir.Block
	for k := 1; k < factor; k++ {
		for _, lbl := range order {
			src := f.BlockByLabel(lbl)
			nb := &ir.Block{Label: nameOf(lbl, k), Instrs: make([]ir.Instr, len(src.Instrs))}
			copy(nb.Instrs, src.Instrs)
			for i := range nb.Instrs {
				in := &nb.Instrs[i]
				if len(in.Args) > 0 {
					in.Args = append([]ir.Reg(nil), in.Args...)
				}
				retarget := func(tgt string) string {
					switch {
					case tgt == headerLabel:
						// back edge: next copy (wraps to original header)
						if k+1 == factor {
							return headerLabel
						}
						return nameOf(headerLabel, k+1)
					case loopLabels[tgt]:
						return nameOf(tgt, k) // intra-copy edge
					default:
						return tgt // exit edge
					}
				}
				switch in.Op {
				case ir.Br:
					in.Target = retarget(in.Target)
					in.Target2 = retarget(in.Target2)
				case ir.Jmp:
					in.Target = retarget(in.Target)
				}
			}
			newBlocks = append(newBlocks, nb)
		}
	}
	// Original copy's back edges now go to copy 1's header clone.
	redirectBackEdges(origBlocks, nameOf(headerLabel, 1))

	f.Blocks = append(f.Blocks, newBlocks...)
	f.Finalize()
	return nil
}

// FindLoop looks up the loop headed at the given label in a freshly built
// CFG of f, returning the graph and loop (nil if not found). Convenience
// used by the compiler and tests after transformations invalidate previous
// analyses.
func FindLoop(f *ir.Func, header string) (*cfg.Graph, *cfg.Loop) {
	g, err := cfg.Build(f)
	if err != nil {
		return nil, nil
	}
	forest := cfg.FindLoops(g)
	hi := f.BlockIndex(header)
	for _, l := range forest.Loops {
		if l.Header == hi {
			return g, l
		}
	}
	return g, nil
}
