// Package transform rewrites selected loops into SPT loops (Section 4.3 of
// the paper): it re-orders the loop so that the chosen violation
// candidates' computations precede the SPT_FORK statement, introduces
// temporary registers to break overlapping live ranges, copies guard
// branches to preserve control dependences, emits software value
// prediction code (Section 4.4, Figure 5), inserts spt_kill on loop exits,
// and provides the loop unrolling preprocessing of the two-pass framework.
//
// All transformations preserve sequential semantics exactly — SptFork and
// SptKill are no-ops to the sequential interpreter — and the test suite
// checks result/state equivalence between original and transformed
// programs.
package transform

import (
	"fmt"
	"sort"

	"repro/internal/cost"
	"repro/internal/ddg"
	"repro/internal/ir"
)

// Plan is the concrete transformation recipe for one loop, derived from a
// cost.Model and the partition chosen by the search.
type Plan struct {
	// Hoist maps each hoisted candidate register to its carried defs.
	Hoist map[ir.Reg][]int
	// Slice is the union hoist slice of all hoisted candidates.
	Slice *ddg.Slice
	// SVP maps each software-value-predicted register to its stride.
	SVP map[ir.Reg]int64
}

// BuildPlan converts a partition into a transformation plan using the
// model's candidate table. It returns an error if the partition references
// unknown or illegal candidates.
func BuildPlan(m *cost.Model, part cost.Partition) (*Plan, error) {
	plan := &Plan{Hoist: map[ir.Reg][]int{}, SVP: map[ir.Reg]int64{}}
	known := map[ir.Reg]bool{}
	for i := range m.Candidates {
		known[m.Candidates[i].Reg] = true
	}
	for r := range part.Hoist {
		if !known[r] {
			return nil, fmt.Errorf("transform: r%d is not a violation candidate", r)
		}
	}
	for r := range part.SVP {
		if !known[r] {
			return nil, fmt.Errorf("transform: r%d is not a violation candidate", r)
		}
	}
	var allDefs []int
	for i := range m.Candidates {
		c := &m.Candidates[i]
		if part.Hoist[c.Reg] {
			if !c.HoistOK() {
				return nil, fmt.Errorf("transform: candidate r%d not hoistable", c.Reg)
			}
			plan.Hoist[c.Reg] = c.Defs
			allDefs = append(allDefs, c.Defs...)
		}
		if part.SVP[c.Reg] {
			if !c.SVPOK {
				return nil, fmt.Errorf("transform: candidate r%d not predictable", c.Reg)
			}
			plan.SVP[c.Reg] = c.SVPStride
		}
	}
	if len(allDefs) > 0 {
		plan.Slice = m.A.UnionSlices(allDefs)
		if plan.Slice == nil || !plan.Slice.OK {
			return nil, fmt.Errorf("transform: union slice invalid")
		}
	}
	return plan, nil
}

// Result describes the emitted SPT loop.
type Result struct {
	Header     string // original loop header label
	StartLabel string // the spt.start block: fork target / start-point
	NumTemps   int    // temporaries introduced
	PreForkLen int    // instructions in the pre-fork region (binds+svp+slice)
}

// ApplySPT rewrites loop a.L of function f (in place) into an SPT loop per
// the plan. The caller is responsible for re-validating the enclosing
// program. The ddg analysis must have been computed on f's current shape.
func ApplySPT(f *ir.Func, a *ddg.Analysis, plan *Plan) (*Result, error) {
	t := &sptEmitter{f: f, a: a, plan: plan,
		labels:  map[string]bool{},
		created: map[string]bool{},
		temps:   map[ir.Reg]ir.Reg{},
		renames: map[int]ir.Reg{},
	}
	for _, b := range f.Blocks {
		t.labels[b.Label] = true
	}
	// Capture loop identity by label before any mutation: block indices
	// shift as blocks are inserted.
	t.headerLabel = f.Blocks[a.L.Header].Label
	t.startLabel = f.Blocks[a.StartBlock].Label
	t.loopLabels = map[string]bool{}
	for _, bi := range a.L.Blocks {
		t.loopLabels[f.Blocks[bi].Label] = true
	}
	return t.run()
}

type sptEmitter struct {
	f    *ir.Func
	a    *ddg.Analysis
	plan *Plan

	headerLabel string
	startLabel  string
	loopLabels  map[string]bool

	temps    map[ir.Reg]ir.Reg // candidate reg -> temp_r / pred_r
	renames  map[int]ir.Reg    // slice def instr id -> pre-fork destination
	numTemps int
	labels   map[string]bool // all labels in the function
	created  map[string]bool // labels created by this emitter
}

func (t *sptEmitter) run() (*Result, error) {
	f := t.f

	// Allocate temps for hoisted and predicted registers.
	var hoistRegs, svpRegs []ir.Reg
	for r := range t.plan.Hoist {
		hoistRegs = append(hoistRegs, r)
	}
	sort.Slice(hoistRegs, func(i, j int) bool { return hoistRegs[i] < hoistRegs[j] })
	for r := range t.plan.SVP {
		svpRegs = append(svpRegs, r)
	}
	sort.Slice(svpRegs, func(i, j int) bool { return svpRegs[i] < svpRegs[j] })
	for _, r := range append(append([]ir.Reg{}, hoistRegs...), svpRegs...) {
		if _, dup := t.temps[r]; dup {
			return nil, fmt.Errorf("transform: register r%d both hoisted and predicted", r)
		}
		t.temps[r] = f.NewReg()
		t.numTemps++
	}

	// 1. SVP check/recovery on every latch edge (in-loop edges into the
	//    header): executes after all body defs of the predicted register,
	//    restoring the invariant pred_r == r at the next iteration's bind.
	if len(svpRegs) > 0 {
		t.insertSVPRepairs(svpRegs)
	}

	// 2. Build the spt.start block chain: binds, SVP predictors, pre-fork
	//    slice (with guard diamonds), SPT_FORK, jump to the body entry.
	newStartLabel := t.freshLabel("spt.start." + t.headerLabel)
	newStart := &ir.Block{Label: newStartLabel}
	for _, r := range hoistRegs {
		newStart.Instrs = append(newStart.Instrs,
			ir.Instr{Op: ir.Mov, Dst: r, A: t.temps[r], B: ir.NoReg})
	}
	for _, r := range svpRegs {
		newStart.Instrs = append(newStart.Instrs,
			ir.Instr{Op: ir.Mov, Dst: r, A: t.temps[r], B: ir.NoReg})
	}
	for _, r := range svpRegs {
		// pred_r = r + stride (r was just bound to the prediction).
		newStart.Instrs = append(newStart.Instrs,
			ir.Instr{Op: ir.AddI, Dst: t.temps[r], A: r, B: ir.NoReg, Imm: t.plan.SVP[r]})
	}
	guardBlocks, err := t.emitSlice(newStart)
	if err != nil {
		return nil, err
	}
	tail := newStart
	if len(guardBlocks) > 0 {
		tail = guardBlocks[len(guardBlocks)-1]
	}
	tail.Instrs = append(tail.Instrs,
		ir.Instr{Op: ir.SptFork, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, Target: newStartLabel},
		ir.Instr{Op: ir.Jmp, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, Target: t.startLabel})
	preLen := len(newStart.Instrs)
	for _, gb := range guardBlocks {
		preLen += len(gb.Instrs)
	}
	preLen -= 2 // exclude the fork and the jump

	// 3. Splice spt.start in front of the body entry and redirect edges.
	if t.startLabel == t.headerLabel {
		// do-shape: every edge into the header (entries, repaired latches)
		// now enters spt.start first.
		t.retargetAll(t.startLabel, newStartLabel)
	} else {
		// while-shape: only the header's in-loop edge.
		t.retargetBlock(f.BlockByLabel(t.headerLabel), t.startLabel, newStartLabel)
	}
	insertAt := f.BlockIndex(t.startLabel)
	blocks := append([]*ir.Block{}, f.Blocks[:insertAt]...)
	blocks = append(blocks, newStart)
	blocks = append(blocks, guardBlocks...)
	blocks = append(blocks, f.Blocks[insertAt:]...)
	f.Blocks = blocks
	f.Finalize()

	// 4. Entry inits: split every edge entering the loop from outside with
	//    temp_r = r (and pred_r = r) initializers.
	t.insertEntryInits(newStartLabel, append(append([]ir.Reg{}, hoistRegs...), svpRegs...))

	// 5. spt_kill on every loop exit edge.
	t.insertKills(newStartLabel)

	f.Finalize()
	return &Result{
		Header:     t.headerLabel,
		StartLabel: newStartLabel,
		NumTemps:   t.numTemps,
		PreForkLen: preLen,
	}, nil
}

// freshLabel returns a label not yet used in the function and records it as
// created by this emitter.
func (t *sptEmitter) freshLabel(base string) string {
	l := base
	for i := 1; t.labels[l]; i++ {
		l = fmt.Sprintf("%s.%d", base, i)
	}
	t.labels[l] = true
	t.created[l] = true
	return l
}

// retargetBlock rewrites terminator targets equal to old in block b.
func (t *sptEmitter) retargetBlock(b *ir.Block, old, new string) {
	term := b.Term()
	if term.Target == old {
		term.Target = new
	}
	if term.Op == ir.Br && term.Target2 == old {
		term.Target2 = new
	}
}

// retargetAll rewrites every edge into old across the function.
func (t *sptEmitter) retargetAll(old, new string) {
	for _, b := range t.f.Blocks {
		t.retargetBlock(b, old, new)
	}
}

// emitSlice appends the pre-fork copies of the plan's slice to newStart;
// guarded groups become diamond blocks returned in flow order, the last of
// which receives the fork.
func (t *sptEmitter) emitSlice(newStart *ir.Block) ([]*ir.Block, error) {
	if t.plan.Slice == nil {
		return nil, nil
	}
	a := t.a
	sl := t.plan.Slice

	// Destination register per candidate def: the candidate's temp.
	rootTemp := map[int]ir.Reg{}
	for r, defs := range t.plan.Hoist {
		for _, d := range defs {
			rootTemp[d] = t.temps[r]
		}
	}

	type groupKey struct {
		branch int
		taken  bool
	}
	var unguarded []int
	groups := map[groupKey][]int{}
	var groupOrder []groupKey
	for _, id := range sl.Instrs {
		if sl.Guards[id] {
			continue // guard branches are emitted with their groups
		}
		cds := a.CtrlDeps[a.F.Linear[id].Block]
		switch len(cds) {
		case 0:
			unguarded = append(unguarded, id)
		case 1:
			k := groupKey{branch: cds[0].Branch, taken: cds[0].Taken}
			if _, ok := groups[k]; !ok {
				groupOrder = append(groupOrder, k)
			}
			groups[k] = append(groups[k], id)
		default:
			return nil, fmt.Errorf("transform: instruction %d multiply guarded", id)
		}
	}

	// A use reads either its unique in-slice def's pre-fork destination or
	// the original register (live-in: the bind already ran).
	resolve := func(id int, r ir.Reg) ir.Reg {
		for _, dep := range a.IntraReg[id] {
			if dep.Reg == r {
				if nr, ok := t.renames[dep.Def]; ok {
					return nr
				}
				return r
			}
		}
		return r
	}
	emitCopy := func(dst *ir.Block, id int) {
		in := *a.F.InstrByID(id)
		n := in.Op.NumSrc()
		if n >= 1 && in.A != ir.NoReg {
			in.A = resolve(id, in.A)
		}
		if n >= 2 && in.B != ir.NoReg {
			in.B = resolve(id, in.B)
		}
		if in.Op.HasDst() {
			if tr, ok := rootTemp[id]; ok {
				in.Dst = tr
			} else {
				in.Dst = t.f.NewReg()
				t.numTemps++
			}
			t.renames[id] = in.Dst
		}
		dst.Instrs = append(dst.Instrs, in)
	}

	for _, id := range unguarded {
		emitCopy(newStart, id)
	}

	var out []*ir.Block
	cur := newStart
	for _, k := range groupOrder {
		brInstr := a.F.Blocks[k.branch].Term()
		cond := resolve(brInstr.ID, brInstr.A)
		thenLbl := t.freshLabel("spt.guard.then")
		contLbl := t.freshLabel("spt.guard.cont")
		tgt1, tgt2 := thenLbl, contLbl
		if !k.taken {
			tgt1, tgt2 = contLbl, thenLbl
		}
		cur.Instrs = append(cur.Instrs,
			ir.Instr{Op: ir.Br, Dst: ir.NoReg, A: cond, B: ir.NoReg, Target: tgt1, Target2: tgt2})
		thenBlk := &ir.Block{Label: thenLbl}
		for _, id := range groups[k] {
			emitCopy(thenBlk, id)
		}
		thenBlk.Instrs = append(thenBlk.Instrs,
			ir.Instr{Op: ir.Jmp, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, Target: contLbl})
		contBlk := &ir.Block{Label: contLbl}
		out = append(out, thenBlk, contBlk)
		cur = contBlk
	}
	return out, nil
}

// insertSVPRepairs splits every in-loop edge into the header with the
// Figure 5 check/recovery code: if pred_r != r { pred_r = r }.
func (t *sptEmitter) insertSVPRepairs(svpRegs []ir.Reg) {
	f := t.f
	var latches []*ir.Block
	for _, b := range f.Blocks {
		if !t.loopLabels[b.Label] {
			continue
		}
		for _, s := range b.Succs(nil) {
			if s == t.headerLabel {
				latches = append(latches, b)
				break
			}
		}
	}
	cond := f.NewReg()
	t.numTemps++
	for _, b := range latches {
		lbl := t.freshLabel("spt.svp." + b.Label)
		cur := &ir.Block{Label: lbl}
		blocks := []*ir.Block{cur}
		for _, r := range svpRegs {
			fixLbl := t.freshLabel("spt.svpfix")
			contLbl := t.freshLabel("spt.svpcont")
			cur.Instrs = append(cur.Instrs,
				ir.Instr{Op: ir.CmpNE, Dst: cond, A: t.temps[r], B: r},
				ir.Instr{Op: ir.Br, Dst: ir.NoReg, A: cond, B: ir.NoReg, Target: fixLbl, Target2: contLbl})
			fix := &ir.Block{Label: fixLbl, Instrs: []ir.Instr{
				{Op: ir.Mov, Dst: t.temps[r], A: r, B: ir.NoReg},
				{Op: ir.Jmp, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, Target: contLbl},
			}}
			cont := &ir.Block{Label: contLbl}
			blocks = append(blocks, fix, cont)
			cur = cont
		}
		cur.Instrs = append(cur.Instrs,
			ir.Instr{Op: ir.Jmp, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, Target: t.headerLabel})
		t.retargetBlock(b, t.headerLabel, lbl)
		f.Blocks = append(f.Blocks, blocks...)
	}
	f.Finalize()
}

// insertEntryInits splits every edge entering the loop from outside with a
// block initializing each temp to its register's current value, so the
// first iteration's binds are identities.
func (t *sptEmitter) insertEntryInits(newStartLabel string, regs []ir.Reg) {
	f := t.f
	entryLabel := t.headerLabel
	if t.startLabel == t.headerLabel {
		entryLabel = newStartLabel // do-shape: the header was redirected
	}
	inLoop := func(lbl string) bool { return t.loopLabels[lbl] || t.created[lbl] }
	var outsidePreds []*ir.Block
	for _, b := range f.Blocks {
		if inLoop(b.Label) {
			continue
		}
		for _, s := range b.Succs(nil) {
			if s == entryLabel {
				outsidePreds = append(outsidePreds, b)
				break
			}
		}
	}
	for _, p := range outsidePreds {
		lbl := t.freshLabel("spt.init." + p.Label)
		blk := &ir.Block{Label: lbl}
		for _, r := range regs {
			blk.Instrs = append(blk.Instrs,
				ir.Instr{Op: ir.Mov, Dst: t.temps[r], A: r, B: ir.NoReg})
		}
		blk.Instrs = append(blk.Instrs,
			ir.Instr{Op: ir.Jmp, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, Target: entryLabel})
		t.retargetBlock(p, entryLabel, lbl)
		// Init blocks are outside the loop; do not record as created-inside.
		delete(t.created, lbl)
		f.Blocks = append(f.Blocks, blk)
	}
	f.Finalize()
}

// insertKills splits every loop exit edge with an spt_kill block.
func (t *sptEmitter) insertKills(newStartLabel string) {
	f := t.f
	inLoop := func(lbl string) bool { return t.loopLabels[lbl] || t.created[lbl] }
	type split struct {
		from *ir.Block
		to   string
	}
	var splits []split
	for _, b := range f.Blocks {
		if !inLoop(b.Label) {
			continue
		}
		for _, s := range b.Succs(nil) {
			if !inLoop(s) {
				splits = append(splits, split{b, s})
			}
		}
	}
	for _, sp := range splits {
		lbl := t.freshLabel("spt.kill." + sp.from.Label)
		delete(t.created, lbl) // the kill block is outside the loop
		blk := &ir.Block{Label: lbl, Instrs: []ir.Instr{
			{Op: ir.SptKill, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg},
			{Op: ir.Jmp, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, Target: sp.to},
		}}
		t.retargetBlock(sp.from, sp.to, lbl)
		f.Blocks = append(f.Blocks, blk)
	}
	f.Finalize()
}
