package service

import (
	"context"
	"fmt"

	"repro/internal/arch"
	"repro/internal/artifact"
	"repro/internal/bench"
	"repro/internal/guard"
	"repro/internal/harness"
	"repro/internal/multispec"
	"repro/internal/nativecap"
	"repro/spt/client"
)

// Pipeline executes the daemon's three job kinds. The production
// implementation (sptPipeline) runs the real SPT pipeline through the
// shared artifact cache; tests substitute stubs to exercise failure paths
// (blocking, panicking, budget-exceeding executions) deterministically.
type Pipeline interface {
	Compile(ctx context.Context, req client.CompileRequest, budget guard.Budget) (*client.CompileResponse, error)
	Simulate(ctx context.Context, req client.SimulateRequest, budget guard.Budget) (*client.SimulateResponse, error)
	Sweep(ctx context.Context, req client.SweepRequest, budget guard.Budget) (*client.SweepResponse, error)
}

// sptPipeline is the real pipeline: every stage flows through the shared
// singleflight artifact cache, so concurrent identical requests coalesce
// into one underlying compilation/simulation and repeated requests are
// served from memory.
type sptPipeline struct {
	cache *artifact.Cache
	// native, when non-nil, serves trace captures from compiled modules
	// (internal/nativecap). Fallback to the interpreter is silent and
	// result-identical, so the pipeline passes it through unconditionally.
	native *nativecap.Capturer
}

// Compile builds and SPT-compiles the benchmark, reporting per-loop
// selection decisions and the transformed program's content fingerprint.
func (p *sptPipeline) Compile(ctx context.Context, req client.CompileRequest, budget guard.Budget) (*client.CompileResponse, error) {
	var resp *client.CompileResponse
	err := guard.Run(req.Benchmark, guard.StageCompile, func() error {
		sctx, cancel := budget.Context(ctx)
		defer cancel()
		cres, err := harness.CompileBenchmarkCached(sctx, req.Benchmark, scaleOf(req.Scale), p.cache)
		if err != nil {
			return err
		}
		resp = &client.CompileResponse{
			Benchmark:   req.Benchmark,
			Scale:       scaleOf(req.Scale),
			Fingerprint: artifact.Fingerprint(cres.Program),
		}
		for _, l := range cres.Loops {
			resp.Loops = append(resp.Loops, client.LoopSummary{
				Func:     l.Key.Func,
				Header:   l.Key.Header,
				Selected: l.Selected,
				Coverage: l.Coverage,
				BodySize: l.BodySize,
				Reason:   l.Reason,
			})
			if l.Selected {
				resp.SelectedLoops++
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// Simulate evaluates baseline + SPT for the benchmark under the requested
// machine configuration. It is the exact pipeline of the one-shot cmd/sptsim
// path (optimize → compile → simulate both configurations), so responses are
// bit-identical to a local run.
func (p *sptPipeline) Simulate(ctx context.Context, req client.SimulateRequest, budget guard.Budget) (*client.SimulateResponse, error) {
	cfg, err := ConfigFromRequest(req)
	if err != nil {
		return nil, err
	}
	run, err := harness.RunBenchmarkGuarded(ctx, req.Benchmark, scaleOf(req.Scale), cfg, harness.GuardOptions{
		Budget:    budget,
		Artifacts: p.cache,
		// The daemon's cache is byte-bounded and outlives the request, so
		// captured traces fan out across later simulate/sweep requests for
		// the same benchmark.
		RecordTraces: true,
		Native:       p.native,
	})
	if err != nil {
		return nil, err
	}
	return &client.SimulateResponse{
		Benchmark: req.Benchmark,
		Scale:     scaleOf(req.Scale),
		Baseline:  Summarize(run.Baseline),
		SPT:       Summarize(run.SPT),
		Speedup:   run.Speedup(),
	}, nil
}

// Sweep runs one ablation family over the benchmark.
func (p *sptPipeline) Sweep(ctx context.Context, req client.SweepRequest, budget guard.Budget) (*client.SweepResponse, error) {
	variants, err := sweepVariants(req)
	if err != nil {
		return nil, err
	}
	rows, err := harness.Sweep(ctx, req.Benchmark, scaleOf(req.Scale), variants, harness.GuardOptions{
		Budget:    budget,
		Artifacts: p.cache,
		Native:    p.native,
	})
	wireRows, err := sweepRows(rows, err)
	if err != nil {
		return nil, err
	}
	return &client.SweepResponse{
		Benchmark: req.Benchmark,
		Scale:     scaleOf(req.Scale),
		Sweep:     req.Sweep,
		Rows:      wireRows,
	}, nil
}

// sweepRows maps harness ablation rows onto the wire shape. A sweep
// degrades per variant: a failed variant's row carries its error string
// while siblings keep their speedups. Only a total failure — every row
// errored, or no rows at all — becomes a job error.
func sweepRows(rows []harness.AblationRow, err error) ([]client.SweepRow, error) {
	failed := 0
	for _, r := range rows {
		if r.Err != nil {
			failed++
		}
	}
	if err != nil && (len(rows) == 0 || failed == len(rows)) {
		return nil, err
	}
	out := make([]client.SweepRow, 0, len(rows))
	for _, r := range rows {
		row := client.SweepRow{Variant: r.Variant, Speedup: r.Speedup}
		if r.Err != nil {
			row.Error = r.Err.Error()
		}
		out = append(out, row)
	}
	return out, nil
}

func scaleOf(s int) int {
	if s <= 0 {
		return 1
	}
	return s
}

// ValidateBenchmark rejects unknown benchmark names at admission time, so
// bad requests fail with 400 before consuming a queue slot.
func ValidateBenchmark(name string) error {
	if name == "" {
		return fmt.Errorf("missing benchmark name")
	}
	if _, ok := bench.ByName(name); !ok {
		return fmt.Errorf("unknown benchmark %q; have %v", name, bench.Names())
	}
	return nil
}

// ConfigFromRequest maps a simulate request's knobs onto the Table 1
// default machine configuration. Invalid knob values are client errors.
func ConfigFromRequest(req client.SimulateRequest) (arch.Config, error) {
	cfg := arch.DefaultConfig()
	switch req.Recovery {
	case "", "srxfc":
		cfg.Recovery = arch.RecoverySRXFC
	case "squash":
		cfg.Recovery = arch.RecoverySquash
	default:
		return cfg, fmt.Errorf("bad recovery %q (want srxfc | squash)", req.Recovery)
	}
	switch req.RegCheck {
	case "", "value":
		cfg.RegCheck = arch.RegCheckValue
	case "update":
		cfg.RegCheck = arch.RegCheckUpdate
	default:
		return cfg, fmt.Errorf("bad regcheck %q (want value | update)", req.RegCheck)
	}
	if req.SRB > 0 {
		cfg.SRBSize = req.SRB
	}
	if req.Cores > 0 {
		cfg.Cores = req.Cores
	}
	pol, err := multispec.ParsePolicy(req.Sched)
	if err != nil {
		return cfg, fmt.Errorf("bad sched %q (want inorder | stride | eager)", req.Sched)
	}
	cfg.Sched = pol
	if req.Stride > 0 {
		cfg.SchedStride = req.Stride
	}
	li, err := multispec.ParseLiveIn(req.LiveIn)
	if err != nil {
		return cfg, fmt.Errorf("bad livein %q (want svp | slice)", req.LiveIn)
	}
	cfg.LiveIn = li
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// sweepVariants resolves the request's sweep family.
func sweepVariants(req client.SweepRequest) ([]harness.Variant, error) {
	switch req.Sweep {
	case "recovery":
		return harness.RecoveryVariants(), nil
	case "regcheck":
		return harness.RegCheckVariants(), nil
	case "srb":
		pts := req.Points
		if len(pts) == 0 {
			pts = []int{16, 64, 256, 1024}
		}
		for _, n := range pts {
			if n <= 0 {
				return nil, fmt.Errorf("bad srb size %d", n)
			}
		}
		return harness.SRBVariants(pts), nil
	case "overhead":
		pts := req.Points
		if len(pts) == 0 {
			pts = []int{1, 4, 16}
		}
		for _, n := range pts {
			if n <= 0 {
				return nil, fmt.Errorf("bad overhead cycles %d", n)
			}
		}
		return harness.OverheadVariants(pts), nil
	case "cores":
		pts := req.Points
		if len(pts) == 0 {
			pts = []int{2, 4, 8}
		}
		for _, n := range pts {
			if n < 2 || n > multispec.MaxCores {
				return nil, fmt.Errorf("bad core count %d (want 2..%d)", n, multispec.MaxCores)
			}
		}
		return harness.CoresVariants(pts), nil
	case "sched":
		pts := req.Points
		if len(pts) == 0 {
			pts = []int{2, 4}
		}
		for _, n := range pts {
			if n <= 0 {
				return nil, fmt.Errorf("bad stride %d", n)
			}
		}
		if req.Cores < 0 || req.Cores == 1 || req.Cores > multispec.MaxCores {
			return nil, fmt.Errorf("bad core count %d (want 2..%d)", req.Cores, multispec.MaxCores)
		}
		return harness.SchedVariants(req.Cores, pts), nil
	case "livein":
		if req.Cores < 0 || req.Cores == 1 || req.Cores > multispec.MaxCores {
			return nil, fmt.Errorf("bad core count %d (want 2..%d)", req.Cores, multispec.MaxCores)
		}
		return harness.LiveInVariants(req.Cores), nil
	default:
		return nil, fmt.Errorf("bad sweep %q (want recovery | regcheck | srb | overhead | cores | sched | livein)", req.Sweep)
	}
}

// Summarize flattens run statistics onto the wire shape. The sptbench load
// generator uses it to build its locally-computed expectation, so a
// bit-identical comparison against daemon responses compares the underlying
// RunStats field by field.
func Summarize(rs *arch.RunStats) client.SimSummary {
	if rs == nil {
		return client.SimSummary{}
	}
	return client.SimSummary{
		Cycles:         rs.Cycles,
		Instrs:         rs.Instrs,
		Exec:           rs.Breakdown.Exec,
		PipeStall:      rs.Breakdown.PipeStall,
		DcacheStall:    rs.Breakdown.DcacheStall,
		Windows:        rs.Windows,
		FastCommits:    rs.FastCommits,
		Replays:        rs.Replays,
		Kills:          rs.Kills,
		SpecInstrs:     rs.SpecInstrs,
		MisspecInstrs:  rs.MisspecInstrs,
		CommittedInstr: rs.CommittedInstr,
	}
}
