package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/spt/client"
)

// Journal is the daemon's write-ahead job log: every durable (async) job
// appends a record at submission, at each state transition, and at
// completion, so a crashed daemon can reconstruct its queue on the next
// boot. The format is append-only JSONL where each line is
//
//	<sha256-hex-of-payload> <payload-json>\n
//
// and every append is fsync'd before the submission is acknowledged. A
// SIGKILL can therefore at worst tear the final line; Replay verifies each
// checksum and truncates the file back to the last intact record, which is
// exactly the paper's speculation discipline applied to serving: an
// interrupted write is mis-speculated state, and recovery rolls back to the
// last architecturally committed prefix.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	lock *os.File // exclusive journal-dir lock, held for the journal's lifetime
	path string

	size         int64 // current file length in bytes
	autoEvery    int   // compact after this many appends (0 = manual only)
	sinceCompact int
	compactions  int64
}

// Journal record types.
const (
	recSubmit = "submit"
	recState  = "state"
	recDone   = "done"
)

// journalRecord is one journal line's payload.
type journalRecord struct {
	Type     string          `json:"type"`
	ID       string          `json:"id"`
	Kind     string          `json:"kind,omitempty"`
	Priority string          `json:"priority,omitempty"`
	Req      json.RawMessage `json:"req,omitempty"`
	State    string          `json:"state,omitempty"`
	Outcome  string          `json:"outcome,omitempty"`
	Error    string          `json:"error,omitempty"`
	Attempts int             `json:"attempts,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
}

// journalLockName is the sidecar file a running daemon flocks for the
// journal's whole lifetime. Unlike jobs.journal it is never renamed or
// replaced, so the lock identity is stable across compactions and steals.
const journalLockName = "daemon.lock"

// ErrJournalLocked reports that a journal dir's exclusive lock is held by a
// live process — either a daemon already running on the dir, or (from the
// stealing side) a peer that missed heartbeats but is not actually dead.
var ErrJournalLocked = errors.New("service: journal dir locked by a live process")

// TryLockJournalDir attempts the exclusive lock a running daemon holds on
// its journal dir. Success proves no live process owns the dir (the kernel
// releases flocks at process death, SIGKILL included) and returns a release
// func; ErrJournalLocked means the owner is still alive. Work stealing
// calls this before touching a dead-looking peer's journal: missed
// heartbeats can be a slow or partitioned node, the lock cannot.
func TryLockJournalDir(dir string) (release func(), err error) {
	f, err := os.OpenFile(filepath.Join(dir, journalLockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := flockTry(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: %s", ErrJournalLocked, dir)
	}
	return func() { _ = f.Close() }, nil
}

// OpenJournal opens (creating if necessary) the job journal in dir and
// takes the dir's exclusive lock, which it holds until Close. A second
// daemon opening the same dir — or a peer trying to steal the journal of a
// node that is slow rather than dead — fails with ErrJournalLocked.
func OpenJournal(dir string) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: journal dir: %w", err)
	}
	lock, err := os.OpenFile(filepath.Join(dir, journalLockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: journal lock: %w", err)
	}
	if err := flockTry(lock); err != nil {
		lock.Close()
		return nil, fmt.Errorf("%w: %s", ErrJournalLocked, dir)
	}
	path := filepath.Join(dir, "jobs.journal")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		lock.Close()
		return nil, fmt.Errorf("service: open journal: %w", err)
	}
	size, err := f.Seek(0, 2)
	if err != nil {
		f.Close()
		lock.Close()
		return nil, err
	}
	return &Journal{f: f, lock: lock, path: path, size: size}, nil
}

// Path returns the journal file's location.
func (j *Journal) Path() string { return j.path }

// SetAutoCompact arms append-triggered compaction: after every `every`
// appends the journal folds itself down to the live job set (boot replay
// already compacts unconditionally). every <= 0 keeps compaction manual.
func (j *Journal) SetAutoCompact(every int) {
	j.mu.Lock()
	j.autoEvery = every
	j.mu.Unlock()
}

// SizeBytes returns the journal file's current length — the
// sptd_journal_bytes gauge.
func (j *Journal) SizeBytes() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size
}

// Compactions returns how many times the journal has been compacted —
// the sptd_journal_compactions_total counter.
func (j *Journal) Compactions() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.compactions
}

// Close releases the journal file and the journal-dir lock. After Close
// the dir is stealable: a SIGKILL releases the lock the same way, via the
// kernel.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	err := j.f.Close()
	if j.lock != nil {
		_ = j.lock.Close()
	}
	return err
}

// Append durably writes one record: marshal, checksum, write, fsync.
func (j *Journal) Append(rec journalRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("service: encode journal record: %w", err)
	}
	line := encodeLine(payload)
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("service: journal write: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("service: journal fsync: %w", err)
	}
	j.size += int64(len(line))
	j.sinceCompact++
	if j.autoEvery > 0 && j.sinceCompact >= j.autoEvery {
		// Fold the file down inline: one append pays the rewrite so the
		// journal stays proportional to the live job set, not the daemon's
		// lifetime. A compaction failure degrades disk footprint, not
		// durability — the record above is already fsync'd. A failed READ
		// must skip the round entirely: folding nil would rewrite an empty
		// journal over the WAL, destroying every record it still holds.
		if data, rerr := readAllLocked(j); rerr == nil {
			jobs, _ := foldJournal(data)
			_ = j.compactLocked(jobs)
		}
	}
	return nil
}

// readAllLocked reads the journal file's current contents (callers hold
// mu). The error is propagated, never swallowed: a caller that compacts
// must distinguish "empty journal" from "could not read the journal".
func readAllLocked(j *Journal) ([]byte, error) {
	return os.ReadFile(j.path)
}

func encodeLine(payload []byte) []byte {
	sum := sha256.Sum256(payload)
	line := make([]byte, 0, len(payload)+sha256.Size*2+2)
	line = append(line, hex.EncodeToString(sum[:])...)
	line = append(line, ' ')
	line = append(line, payload...)
	line = append(line, '\n')
	return line
}

// decodeLine verifies one journal line's checksum and decodes its payload.
func decodeLine(line []byte) (journalRecord, error) {
	var rec journalRecord
	i := bytes.IndexByte(line, ' ')
	if i != sha256.Size*2 {
		return rec, fmt.Errorf("malformed journal line")
	}
	sum := sha256.Sum256(line[i+1:])
	if hex.EncodeToString(sum[:]) != string(line[:i]) {
		return rec, fmt.Errorf("journal checksum mismatch")
	}
	if err := json.Unmarshal(line[i+1:], &rec); err != nil {
		return rec, fmt.Errorf("journal payload: %w", err)
	}
	return rec, nil
}

// ReplayedJob is the folded terminal view of one journaled job after a
// replay: its submission plus the latest observed state.
type ReplayedJob struct {
	Submit   journalRecord
	State    string // client.StateQueued / StateRunning / StateRetryable / StateDone
	Outcome  string
	Error    string
	Attempts int
	Result   json.RawMessage
}

// foldJournal parses data line by line, verifying every record's checksum,
// and folds the records into per-job terminal states in submission order.
// Parsing stops at the first corrupt or torn line; intactBytes is the length
// of the verified prefix. It is the single decode path shared by boot
// replay, compaction, and work stealing (a survivor folding a dead peer's
// journal).
func foldJournal(data []byte) (jobs []ReplayedJob, intactBytes int64) {
	byID := map[string]*ReplayedJob{}
	var offset int64
	rest := data
	for len(rest) > 0 {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			break // torn final line, no newline yet
		}
		rec, derr := decodeLine(rest[:nl])
		if derr != nil {
			break // corrupt record: everything from here on is suspect
		}
		offset += int64(nl) + 1
		rest = rest[nl+1:]
		switch rec.Type {
		case recSubmit:
			if byID[rec.ID] != nil {
				continue // duplicate submit (double-journaled adoption): first wins
			}
			byID[rec.ID] = &ReplayedJob{Submit: rec, State: client.StateQueued, Attempts: rec.Attempts}
			jobs = append(jobs, ReplayedJob{Submit: rec}) // order placeholder; folded below
		case recState:
			if rj := byID[rec.ID]; rj != nil {
				rj.State = rec.State
				if rec.Attempts > rj.Attempts {
					rj.Attempts = rec.Attempts
				}
			}
		case recDone:
			if rj := byID[rec.ID]; rj != nil {
				rj.State = client.StateDone
				rj.Outcome = rec.Outcome
				rj.Error = rec.Error
				rj.Result = rec.Result
				if rec.Attempts > rj.Attempts {
					rj.Attempts = rec.Attempts
				}
			}
		}
	}
	// The byID map carries the folded state; re-project it onto the ordered
	// slice (which still holds the submit-time snapshots).
	for i := range jobs {
		if rj := byID[jobs[i].Submit.ID]; rj != nil {
			jobs[i] = *rj
		}
	}
	return jobs, offset
}

// FoldJournalFile reads and folds a journal file without opening it for
// writing — how a surviving node inspects a stolen peer journal.
func FoldJournalFile(path string) ([]ReplayedJob, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("service: read journal %s: %w", path, err)
	}
	jobs, _ := foldJournal(data)
	return jobs, nil
}

// Replay reads the journal, verifying every record's checksum, and folds
// the records into per-job terminal states in submission order. The first
// corrupt or torn line ends the replay: the file is truncated back to the
// intact prefix (a crash mid-append is the expected way such a line
// appears) and truncatedBytes reports how much was dropped.
func (j *Journal) Replay() (jobs []ReplayedJob, truncatedBytes int64, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	data, err := os.ReadFile(j.path)
	if err != nil {
		return nil, 0, fmt.Errorf("service: read journal: %w", err)
	}
	jobs, offset := foldJournal(data)
	truncatedBytes = int64(len(data)) - offset
	if truncatedBytes > 0 {
		if terr := j.f.Truncate(offset); terr != nil {
			return nil, truncatedBytes, fmt.Errorf("service: truncate torn journal tail: %w", terr)
		}
		if _, serr := j.f.Seek(offset, 0); serr != nil {
			return nil, truncatedBytes, serr
		}
	}
	j.size = offset
	return jobs, truncatedBytes, nil
}

// Compact rewrites the journal to the folded state of the given jobs —
// incomplete jobs keep a submit (+ state) record, finished jobs a submit +
// done pair — dropping the transition history. Called after a replay so
// the file stays proportional to the live job set rather than to the
// daemon's lifetime.
func (j *Journal) Compact(jobs []ReplayedJob) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.compactLocked(jobs)
}

// CompactNow folds the journal's own current contents and rewrites it —
// the append-triggered and operator-triggered compaction entry point.
func (j *Journal) CompactNow() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	data, err := os.ReadFile(j.path)
	if err != nil {
		return fmt.Errorf("service: read journal: %w", err)
	}
	jobs, _ := foldJournal(data)
	return j.compactLocked(jobs)
}

func (j *Journal) compactLocked(jobs []ReplayedJob) error {
	tmp := j.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("service: journal compact: %w", err)
	}
	write := func(rec journalRecord) error {
		payload, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		_, err = f.Write(encodeLine(payload))
		return err
	}
	for _, rj := range jobs {
		sub := rj.Submit
		sub.Attempts = rj.Attempts
		if err := write(sub); err != nil {
			f.Close()
			return err
		}
		switch rj.State {
		case client.StateDone:
			if err := write(journalRecord{
				Type: recDone, ID: sub.ID, Outcome: rj.Outcome,
				Error: rj.Error, Attempts: rj.Attempts, Result: rj.Result,
			}); err != nil {
				f.Close()
				return err
			}
		case client.StateRetryable:
			if err := write(journalRecord{
				Type: recState, ID: sub.ID, State: client.StateRetryable, Attempts: rj.Attempts,
			}); err != nil {
				f.Close()
				return err
			}
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, j.path); err != nil {
		return fmt.Errorf("service: journal compact rename: %w", err)
	}
	old := j.f
	nf, err := os.OpenFile(j.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("service: reopen compacted journal: %w", err)
	}
	size, err := nf.Seek(0, 2)
	if err != nil {
		nf.Close()
		return err
	}
	j.f = nf
	_ = old.Close()
	j.size = size
	j.sinceCompact = 0
	j.compactions++
	return nil
}
