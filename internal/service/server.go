// Package service is the serving layer of the SPT reproduction: a batching,
// backpressured simulation-as-a-service daemon core. It exposes the full
// compile → profile → baseline → SPT-simulate pipeline over HTTP/JSON
// (cmd/sptd is the thin binary around it) with:
//
//   - a bounded, priority-classed job queue with admission control: a full
//     queue rejects with 429 + Retry-After (backpressure) instead of
//     buffering unboundedly;
//   - a worker pool sized to GOMAXPROCS whose executions flow through the
//     singleflight artifact cache, so concurrent clients asking for the
//     same (program, configuration) share one underlying simulation;
//   - per-request guard.Budget deadlines and panic isolation: a panicking
//     job becomes a structured 500, never a dead daemon;
//   - graceful drain: admission stops, queued and in-flight jobs finish
//     under a shutdown deadline, stragglers are canceled.
//
// The wire types live in repro/spt/client, which is also the typed Go
// client used by tests and the sptbench load generator.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/artifact"
	"repro/internal/guard"
	"repro/spt/client"
)

// Config sizes the daemon. Zero values take the documented defaults.
type Config struct {
	// QueueCapacity bounds the admission queue (default 64). Pushes beyond
	// it are rejected with 429.
	QueueCapacity int
	// Workers sizes the worker pool (default GOMAXPROCS).
	Workers int
	// DefaultBudget bounds jobs that do not carry their own budget fields;
	// a request's non-zero fields override the corresponding defaults.
	DefaultBudget guard.Budget
	// CacheEntries bounds the artifact cache (default 4096 entries,
	// LRU-evicted; negative = unbounded).
	CacheEntries int
	// RetainJobs bounds how many finished jobs stay pollable via
	// GET /v1/jobs/{id} (default 512, FIFO-evicted).
	RetainJobs int
	// Pipeline overrides the execution layer; nil means the real SPT
	// pipeline. Tests inject stubs here.
	Pipeline Pipeline
}

func (c Config) withDefaults() Config {
	if c.QueueCapacity <= 0 {
		c.QueueCapacity = 64
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 4096
	}
	if c.CacheEntries < 0 {
		c.CacheEntries = 0 // unbounded
	}
	if c.RetainJobs <= 0 {
		c.RetainJobs = 512
	}
	return c
}

// Server is the daemon core: queue, worker pool, job registry, artifact
// cache and metrics. Construct with New; serve its Handler; stop with
// Drain.
type Server struct {
	cfg   Config
	pipe  Pipeline
	cache *artifact.Cache
	queue *queue
	met   *metrics

	mu        sync.Mutex
	jobs      map[string]*job
	doneOrder []string           // finished job ids, oldest first (retention)
	running   map[*job]struct{}  // jobs currently executing (forced-drain cancel)

	inflight atomic.Int64
	nextID   atomic.Int64
	draining atomic.Bool
	start    time.Time
	wg       sync.WaitGroup
}

// New builds the server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		cache:   artifact.NewBounded(cfg.CacheEntries),
		queue:   newQueue(cfg.QueueCapacity),
		met:     newMetrics(KindCompile, KindSimulate, KindSweep),
		jobs:    make(map[string]*job),
		running: make(map[*job]struct{}),
		start:   time.Now(),
	}
	s.pipe = cfg.Pipeline
	if s.pipe == nil {
		s.pipe = &sptPipeline{cache: s.cache}
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// CacheStats exposes the artifact cache counters (tests, metrics).
func (s *Server) CacheStats() artifact.Stats { return s.cache.Stats() }

// Draining reports whether admission has stopped.
func (s *Server) Draining() bool { return s.draining.Load() }

// budgetFor merges a request's budget fields over the server default.
func (s *Server) budgetFor(jr client.JobRequest) guard.Budget {
	b := s.cfg.DefaultBudget
	if jr.TimeoutMS > 0 {
		b.Timeout = time.Duration(jr.TimeoutMS) * time.Millisecond
	}
	if jr.Steps > 0 {
		b.Steps = jr.Steps
	}
	if jr.Cycles > 0 {
		b.Cycles = jr.Cycles
	}
	return b
}

// enqueue admits one job. mkRun builds the execution closure once the job
// id is known (responses embed their job id). reqCtx is the submitting
// request's context for synchronous jobs and nil for async jobs (which
// must survive the submitting connection).
func (s *Server) enqueue(reqCtx context.Context, kind, label string, prio client.Priority, mkRun func(id string) func(context.Context) (any, error)) (*job, error) {
	if s.draining.Load() {
		s.met.countOutcome("rejected")
		return nil, ErrDraining
	}
	base := reqCtx
	if base == nil {
		base = context.Background()
	}
	ctx, cancel := context.WithCancel(base)
	j := &job{
		id:       fmt.Sprintf("j%06d", s.nextID.Add(1)),
		kind:     kind,
		label:    label,
		priority: prio,
		ctx:      ctx,
		cancel:   cancel,
		state:    client.StateQueued,
		done:     make(chan struct{}),
	}
	j.run = mkRun(j.id)
	s.mu.Lock()
	s.jobs[j.id] = j
	s.mu.Unlock()
	if err := s.queue.push(j); err != nil {
		s.mu.Lock()
		delete(s.jobs, j.id)
		s.mu.Unlock()
		cancel()
		s.met.countOutcome("rejected")
		return nil, err
	}
	return j, nil
}

// lookup returns a registered job by id.
func (s *Server) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// worker is one pool goroutine: it pops jobs until the queue closes and
// drains.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.queue.pop()
		if !ok {
			return
		}
		s.runJob(j)
	}
}

// runJob executes one job with panic isolation and records its outcome.
func (s *Server) runJob(j *job) {
	// A job whose submitter is already gone (sync client disconnected
	// while queued) is finished as canceled without running.
	if err := j.ctx.Err(); err != nil {
		s.finishJob(j, nil, fmt.Errorf("canceled while queued: %w", err), 0)
		return
	}
	j.setRunning()
	s.mu.Lock()
	s.running[j] = struct{}{}
	s.mu.Unlock()
	s.inflight.Add(1)
	started := time.Now()

	var res any
	// guard.Run converts a panic anywhere in the job into a structured
	// *guard.StageError: the worker (and the daemon) survive, and the
	// client sees a 500 carrying the stage and the panic flag.
	err := guard.Run(j.label, j.kind, func() error {
		var rerr error
		res, rerr = j.run(j.ctx)
		return rerr
	})
	elapsed := time.Since(started)

	s.inflight.Add(-1)
	s.mu.Lock()
	delete(s.running, j)
	s.mu.Unlock()
	s.finishJob(j, res, err, elapsed)
}

// finishJob records the terminal state, updates metrics and enforces the
// finished-job retention bound.
func (s *Server) finishJob(j *job, res any, err error, elapsed time.Duration) {
	if err != nil && j.ctx.Err() != nil && errors.Is(err, context.Canceled) {
		// Normalize: cancellation through any wrapping is one outcome.
		err = fmt.Errorf("job canceled: %w", context.Canceled)
	}
	j.finish(res, err)
	s.met.countOutcome(j.outcomeOf())
	if elapsed > 0 {
		s.met.observeStage(j.kind, elapsed.Seconds())
	}
	s.mu.Lock()
	s.doneOrder = append(s.doneOrder, j.id)
	for len(s.doneOrder) > s.cfg.RetainJobs {
		delete(s.jobs, s.doneOrder[0])
		s.doneOrder = s.doneOrder[1:]
	}
	s.mu.Unlock()
}

// BeginDrain stops admission: every subsequent submit is rejected with 503.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Drain gracefully shuts the worker pool down: admission stops, queued and
// in-flight jobs run to completion under the timeout, and stragglers are
// canceled (their clients see a canceled outcome). It returns nil on a
// clean drain and an error when jobs had to be canceled.
func (s *Server) Drain(timeout time.Duration) error {
	s.BeginDrain()
	s.queue.close()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	if timeout <= 0 {
		<-done
		return nil
	}
	select {
	case <-done:
		return nil
	case <-time.After(timeout):
	}
	// Deadline passed: cancel whatever is still running and wait for the
	// workers to observe it.
	s.mu.Lock()
	n := len(s.running)
	for j := range s.running {
		j.cancel()
	}
	s.mu.Unlock()
	<-done
	return fmt.Errorf("service: drain deadline exceeded; canceled %d in-flight job(s)", n)
}

// gaugesNow snapshots the live state for a metrics scrape.
func (s *Server) gaugesNow() gauges {
	cs := s.cache.Stats()
	return gauges{
		uptimeSeconds:  time.Since(s.start).Seconds(),
		queueDepth:     s.queue.depth(),
		queueCapacity:  s.cfg.QueueCapacity,
		workers:        s.cfg.Workers,
		inflight:       s.inflight.Load(),
		draining:       s.draining.Load(),
		cacheHits:      cs.Hits,
		cacheMisses:    cs.Misses,
		cacheEntries:   cs.Entries,
		cacheEvictions: cs.Evictions,
		cacheHitRatio:  cs.HitRatio(),
	}
}
