// Package service is the serving layer of the SPT reproduction: a batching,
// backpressured simulation-as-a-service daemon core. It exposes the full
// compile → profile → baseline → SPT-simulate pipeline over HTTP/JSON
// (cmd/sptd is the thin binary around it) with:
//
//   - a bounded, priority-classed job queue with admission control: a full
//     queue rejects with 429 + Retry-After (backpressure) instead of
//     buffering unboundedly;
//   - a worker pool sized to GOMAXPROCS whose executions flow through the
//     singleflight artifact cache, so concurrent clients asking for the
//     same (program, configuration) share one underlying simulation;
//   - per-request guard.Budget deadlines and panic isolation: a panicking
//     job becomes a structured 500, never a dead daemon;
//   - graceful drain: admission stops, queued and in-flight jobs finish
//     under a shutdown deadline, stragglers are canceled.
//
// The wire types live in repro/spt/client, which is also the typed Go
// client used by tests and the sptbench load generator.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/artifact"
	"repro/internal/guard"
	"repro/internal/harness"
	"repro/internal/nativecap"
	"repro/spt/client"
)

// Config sizes the daemon. Zero values take the documented defaults.
type Config struct {
	// QueueCapacity bounds the admission queue (default 64). Pushes beyond
	// it are rejected with 429.
	QueueCapacity int
	// Workers sizes the worker pool (default GOMAXPROCS).
	Workers int
	// DefaultBudget bounds jobs that do not carry their own budget fields;
	// a request's non-zero fields override the corresponding defaults.
	DefaultBudget guard.Budget
	// CacheEntries bounds the artifact cache (default 4096 entries,
	// LRU-evicted; negative = unbounded).
	CacheEntries int
	// CacheBytes bounds the resident bytes of cached trace recordings
	// (default 1 GiB, LRU-evicted; negative = unbounded). Recordings let
	// concurrent requests for the same program coalesce onto a single
	// interpretation, but a multi-hundred-MB trace must never pin the
	// daemon's memory — the byte bound, not the entry bound, governs them.
	CacheBytes int64
	// RetainJobs bounds how many finished jobs stay pollable via
	// GET /v1/jobs/{id} (default 512, FIFO-evicted).
	RetainJobs int
	// Pipeline overrides the execution layer; nil means the real SPT
	// pipeline. Tests inject stubs here.
	Pipeline Pipeline
	// WrapPipeline decorates the resolved pipeline (real or injected) —
	// the chaos fault injector hooks in here without the service layer
	// knowing about it.
	WrapPipeline func(Pipeline) Pipeline
	// Journal, when non-nil, write-ahead-logs every async job so it
	// survives daemon restarts: on construction the server replays the
	// journal, re-enqueues queued jobs, marks interrupted running jobs
	// retryable and resumes them.
	Journal *Journal
	// MaxAttempts bounds executions per durable async job (default 3): a
	// failed attempt below the bound re-enqueues the job instead of
	// finishing it. Crash interruptions do not consume attempts.
	MaxAttempts int
	// NodeName, when set, namespaces job ids as "<node>-j000001" so jobs
	// adopted from a dead peer's journal can never collide with local ones,
	// and reports the node in /healthz. Empty for a standalone daemon.
	NodeName string
	// CompactEvery auto-compacts the journal after this many appends
	// (default 256; negative = manual compaction only). Boot replay always
	// compacts.
	CompactEvery int
	// ExtraMetrics, when non-nil, is rendered at the end of every /metrics
	// scrape (the chaos injector publishes its fault counters through it).
	ExtraMetrics func(io.Writer)
	// Native, when non-nil, routes the pipeline's trace captures through
	// compiled native modules (internal/nativecap). The capturer falls
	// back to the interpreter silently on any failure, so enabling it
	// never changes results. The caller owns its lifecycle (Close).
	Native *nativecap.Capturer
}

func (c Config) withDefaults() Config {
	if c.QueueCapacity <= 0 {
		c.QueueCapacity = 64
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 4096
	}
	if c.CacheEntries < 0 {
		c.CacheEntries = 0 // unbounded
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 1 << 30
	}
	if c.CacheBytes < 0 {
		c.CacheBytes = 0 // unbounded
	}
	if c.RetainJobs <= 0 {
		c.RetainJobs = 512
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.CompactEvery == 0 {
		c.CompactEvery = 256
	}
	if c.CompactEvery < 0 {
		c.CompactEvery = 0 // manual only
	}
	return c
}

// Server is the daemon core: queue, worker pool, job registry, artifact
// cache and metrics. Construct with New; serve its Handler; stop with
// Drain.
type Server struct {
	cfg     Config
	pipe    Pipeline
	cache   *artifact.Cache
	queue   *queue
	met     *metrics
	journal *Journal

	mu        sync.Mutex
	jobs      map[string]*job
	doneOrder []string          // finished job ids, oldest first (retention)
	running   map[*job]struct{} // jobs currently executing (forced-drain cancel)
	conds     map[string]bool   // active not-ready conditions (journal-replay, store-degraded, ...)

	inflight atomic.Int64
	nextID   atomic.Int64
	draining atomic.Bool
	idPrefix string // "<node>-" when NodeName is set
	start    time.Time
	wg       sync.WaitGroup
}

// New builds the server, replays its journal (when configured) and starts
// the worker pool. A journal replay failure is a construction failure: a
// daemon that silently dropped durable jobs would be worse than one that
// refuses to start.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		cache:   artifact.NewBoundedBytes(cfg.CacheEntries, cfg.CacheBytes),
		queue:   newQueue(cfg.QueueCapacity),
		met:     newMetrics(KindCompile, KindSimulate, KindSweep),
		jobs:    make(map[string]*job),
		running: make(map[*job]struct{}),
		conds:   make(map[string]bool),
		journal: cfg.Journal,
		start:   time.Now(),
	}
	s.cache.EnableIntegrity()
	if cfg.NodeName != "" {
		s.idPrefix = cfg.NodeName + "-"
	}
	if s.journal != nil {
		s.journal.SetAutoCompact(cfg.CompactEvery)
	}
	s.pipe = cfg.Pipeline
	if s.pipe == nil {
		s.pipe = &sptPipeline{cache: s.cache, native: cfg.Native}
	}
	if cfg.WrapPipeline != nil {
		s.pipe = cfg.WrapPipeline(s.pipe)
	}
	if err := s.replayJournal(); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// MustNew is New for callers whose configuration cannot fail (no journal).
// It panics on error.
func MustNew(cfg Config) *Server {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// replayJournal reconstructs the durable job set after a restart: finished
// jobs become pollable again (their results were journaled), queued jobs
// are re-enqueued as-is, and jobs that were running when the process died
// are marked retryable and re-enqueued — their re-execution is idempotent
// because results flow through the content-keyed artifact cache.
func (s *Server) replayJournal() error {
	if s.journal == nil {
		return nil
	}
	replayed, truncated, err := s.journal.Replay()
	if err != nil {
		return err
	}
	if truncated > 0 {
		s.met.journalTruncatedBytes.Add(truncated)
	}
	var maxID int64
	for _, rj := range replayed {
		if n := numericJobID(rj.Submit.ID); n > maxID {
			maxID = n
		}
		switch rj.State {
		case client.StateDone:
			s.resurrectDone(rj)
		default:
			if err := s.resurrectPending(rj); err != nil {
				return err
			}
		}
	}
	s.nextID.Store(maxID)
	return s.journal.Compact(replayed)
}

// numericJobID parses the sequence number out of a "j%06d" or
// "<node>-j%06d" id (0 when the id does not match). Adopted peer ids carry
// a foreign node prefix and never advance the local sequence because
// replayJournal compares against ids as a whole only via this function —
// a foreign prefix still yields its numeric tail, which is fine: sequence
// numbers only need to be monotonic per prefix, and ids are compared as
// full strings everywhere else.
func numericJobID(id string) int64 {
	if i := lastIndexByte(id, '-'); i >= 0 {
		id = id[i+1:]
	}
	if len(id) < 2 || id[0] != 'j' {
		return 0
	}
	var n int64
	for _, c := range id[1:] {
		if c < '0' || c > '9' {
			return 0
		}
		n = n*10 + int64(c-'0')
	}
	return n
}

func lastIndexByte(s string, b byte) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// resurrectDone restores a finished job's polling view from the journal.
func (s *Server) resurrectDone(rj ReplayedJob) {
	j := &job{
		id:        rj.Submit.ID,
		kind:      rj.Submit.Kind,
		journaled: true,
		state:     client.StateDone,
		outcome:   rj.Outcome,
		attempts:  rj.Attempts,
		rawResult: rj.Result,
		done:      make(chan struct{}),
		cancel:    func() {},
	}
	if rj.Error != "" {
		j.err = errors.New(rj.Error)
	}
	close(j.done)
	s.mu.Lock()
	s.jobs[j.id] = j
	s.doneOrder = append(s.doneOrder, j.id)
	for len(s.doneOrder) > s.cfg.RetainJobs {
		delete(s.jobs, s.doneOrder[0])
		s.doneOrder = s.doneOrder[1:]
	}
	s.mu.Unlock()
}

// resurrectPending re-enqueues an unfinished journaled job.
func (s *Server) resurrectPending(rj ReplayedJob) error {
	label, runner, err := s.runnerFor(rj.Submit.Kind, rj.Submit.Req)
	if err != nil {
		// The journal outlived the API shape that produced it; surface the
		// job as failed rather than dropping it silently.
		s.resurrectDone(ReplayedJob{
			Submit: rj.Submit, State: client.StateDone,
			Outcome: client.OutcomeFailed, Error: "journal replay: " + err.Error(),
			Attempts: rj.Attempts,
		})
		return nil
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		id:        rj.Submit.ID,
		kind:      rj.Submit.Kind,
		label:     label,
		priority:  client.Priority(rj.Submit.Priority),
		ctx:       ctx,
		cancel:    cancel,
		raw:       rj.Submit.Req,
		journaled: s.journal != nil,
		attempts:  rj.Attempts,
		state:     client.StateQueued,
		done:      make(chan struct{}),
	}
	j.run = func(ctx context.Context) (any, error) { return runner(ctx, j.id) }
	interrupted := rj.State == client.StateRunning || rj.State == client.StateRetryable
	if interrupted {
		// The crash tore this job mid-execution; its next run is a recovery
		// replay, not a failure-charged retry.
		j.state = client.StateRetryable
		s.met.replayedInterrupted.Add(1)
	} else {
		s.met.replayedQueued.Add(1)
	}
	s.mu.Lock()
	s.jobs[j.id] = j
	s.mu.Unlock()
	if !s.queue.forcePush(j) {
		return fmt.Errorf("service: queue closed during journal replay")
	}
	return nil
}

// CacheStats exposes the artifact cache counters (tests, metrics).
func (s *Server) CacheStats() artifact.Stats { return s.cache.Stats() }

// Draining reports whether admission has stopped.
func (s *Server) Draining() bool { return s.draining.Load() }

// Node returns the configured cluster node name ("" standalone).
func (s *Server) Node() string { return s.cfg.NodeName }

// SetCondition raises (or clears, when active is false) a named not-ready
// condition — "journal-replay" while adopting a dead peer's jobs,
// "store-degraded" while the spill store is quarantining, and so on. A node
// with any active condition keeps serving traffic it already holds but
// reports 503 on /readyz so routers stop sending it new work.
func (s *Server) SetCondition(name string, active bool) {
	s.mu.Lock()
	if active {
		s.conds[name] = true
	} else {
		delete(s.conds, name)
	}
	s.mu.Unlock()
}

// Well-known readiness conditions.
const (
	CondDraining      = "draining"
	CondJournalReplay = "journal-replay"
	CondStoreDegraded = "store-degraded"
	// CondReplicationLag is raised while this node's store has a backlog of
	// artifacts not yet pushed to their replicas — killing it now would make
	// those artifacts single-copy again.
	CondReplicationLag = "replication-lag"
)

// ReadyState reports liveness-independent readiness: ready is true only
// when no condition is active. Conditions are ordered dominant-first:
// draining, then journal-replay, then store-degraded, then
// replication-lag, then anything else alphabetically.
func (s *Server) ReadyState() (ready bool, conditions []string) {
	if s.draining.Load() {
		conditions = append(conditions, CondDraining)
	}
	ordered := []string{CondJournalReplay, CondStoreDegraded, CondReplicationLag}
	s.mu.Lock()
	for _, name := range ordered {
		if s.conds[name] {
			conditions = append(conditions, name)
		}
	}
	var rest []string
	for name, on := range s.conds {
		if on && name != CondJournalReplay && name != CondStoreDegraded && name != CondReplicationLag {
			rest = append(rest, name)
		}
	}
	s.mu.Unlock()
	sort.Strings(rest)
	conditions = append(conditions, rest...)
	return len(conditions) == 0, conditions
}

// Adopt ingests a dead peer's folded journal: finished jobs become pollable
// here (so clients polling the dead node's job ids find them on the
// adopter), unfinished jobs are re-journaled into this node's own journal —
// making the adoption itself crash-durable — and re-enqueued. Duplicate ids
// (already adopted, or re-delivered by a second steal attempt) are skipped,
// which makes adoption idempotent. The journal-replay readiness condition
// is raised for the duration so routers don't pile new work onto a node
// busy absorbing a peer's backlog.
func (s *Server) Adopt(jobs []ReplayedJob, from string) (adoptedPending, adoptedDone int) {
	if len(jobs) == 0 {
		return 0, 0
	}
	s.SetCondition(CondJournalReplay, true)
	defer s.SetCondition(CondJournalReplay, false)
	for _, rj := range jobs {
		if _, exists := s.lookup(rj.Submit.ID); exists {
			continue
		}
		if s.journal != nil {
			// Write-ahead before resurrection, exactly like live admission:
			// if this node dies mid-adoption, the next thief re-folds these
			// records (duplicate submits fold to first-wins).
			sub := rj.Submit
			sub.Attempts = rj.Attempts
			if err := s.journal.Append(sub); err != nil {
				s.met.journalErrors.Add(1)
			}
		}
		if rj.State == client.StateDone {
			s.resurrectDone(rj)
			if s.journal != nil {
				if err := s.journal.Append(journalRecord{
					Type: recDone, ID: rj.Submit.ID, Outcome: rj.Outcome,
					Error: rj.Error, Attempts: rj.Attempts, Result: rj.Result,
				}); err != nil {
					s.met.journalErrors.Add(1)
				}
			}
			adoptedDone++
			s.met.adoptedDone.Add(1)
			continue
		}
		if rj.State == client.StateRunning || rj.State == client.StateRetryable {
			if s.journal != nil {
				if err := s.journal.Append(journalRecord{
					Type: recState, ID: rj.Submit.ID, State: client.StateRetryable, Attempts: rj.Attempts,
				}); err != nil {
					s.met.journalErrors.Add(1)
				}
			}
		}
		if err := s.resurrectPending(rj); err != nil {
			// Queue closed (we are draining): the job stays in our journal
			// for the next steal; nothing more to do here.
			continue
		}
		adoptedPending++
		s.met.adoptedPending.Add(1)
	}
	return adoptedPending, adoptedDone
}

// budgetFor merges a request's budget fields over the server default.
func (s *Server) budgetFor(jr client.JobRequest) guard.Budget {
	b := s.cfg.DefaultBudget
	if jr.TimeoutMS > 0 {
		b.Timeout = time.Duration(jr.TimeoutMS) * time.Millisecond
	}
	if jr.Steps > 0 {
		b.Steps = jr.Steps
	}
	if jr.Cycles > 0 {
		b.Cycles = jr.Cycles
	}
	return b
}

// runnerFor rebuilds a job's execution closure from its kind and raw
// request payload. It is the single dispatch point shared by live HTTP
// submissions and journal replays, so a replayed job runs exactly the code
// a fresh one would.
func (s *Server) runnerFor(kind string, raw json.RawMessage) (label string, runner func(ctx context.Context, id string) (any, error), err error) {
	switch kind {
	case KindCompile:
		var req client.CompileRequest
		if err := json.Unmarshal(raw, &req); err != nil {
			return "", nil, fmt.Errorf("service: decode %s request: %w", kind, err)
		}
		budget := s.budgetFor(req.JobRequest)
		return req.Benchmark, func(ctx context.Context, id string) (any, error) {
			resp, err := s.pipe.Compile(ctx, req, budget)
			if err != nil {
				return nil, err
			}
			resp.JobID = id
			return resp, nil
		}, nil
	case KindSimulate:
		var req client.SimulateRequest
		if err := json.Unmarshal(raw, &req); err != nil {
			return "", nil, fmt.Errorf("service: decode %s request: %w", kind, err)
		}
		budget := s.budgetFor(req.JobRequest)
		return req.Benchmark, func(ctx context.Context, id string) (any, error) {
			resp, err := s.pipe.Simulate(ctx, req, budget)
			if err != nil {
				return nil, err
			}
			resp.JobID = id
			return resp, nil
		}, nil
	case KindSweep:
		var req client.SweepRequest
		if err := json.Unmarshal(raw, &req); err != nil {
			return "", nil, fmt.Errorf("service: decode %s request: %w", kind, err)
		}
		budget := s.budgetFor(req.JobRequest)
		return req.Benchmark, func(ctx context.Context, id string) (any, error) {
			resp, err := s.pipe.Sweep(ctx, req, budget)
			if err != nil {
				return nil, err
			}
			resp.JobID = id
			return resp, nil
		}, nil
	default:
		return "", nil, fmt.Errorf("service: unknown job kind %q", kind)
	}
}

// enqueue admits one job built from its kind and raw request payload.
// reqCtx is the submitting request's context for synchronous jobs and nil
// for async jobs (which must survive the submitting connection — and,
// under a journal, the daemon itself).
func (s *Server) enqueue(reqCtx context.Context, kind string, prio client.Priority, raw json.RawMessage) (*job, error) {
	if s.draining.Load() {
		s.met.countOutcome("rejected")
		return nil, ErrDraining
	}
	label, runner, err := s.runnerFor(kind, raw)
	if err != nil {
		return nil, err
	}
	base := reqCtx
	if base == nil {
		base = context.Background()
	}
	ctx, cancel := context.WithCancel(base)
	j := &job{
		id:        fmt.Sprintf("%sj%06d", s.idPrefix, s.nextID.Add(1)),
		kind:      kind,
		label:     label,
		priority:  prio,
		ctx:       ctx,
		cancel:    cancel,
		raw:       raw,
		journaled: reqCtx == nil && s.journal != nil,
		state:     client.StateQueued,
		done:      make(chan struct{}),
	}
	j.run = func(ctx context.Context) (any, error) { return runner(ctx, j.id) }
	if j.journaled {
		// Write-ahead: the submission is durable before it is acknowledged.
		if err := s.journal.Append(journalRecord{
			Type: recSubmit, ID: j.id, Kind: kind, Priority: string(prio), Req: raw,
		}); err != nil {
			cancel()
			return nil, err
		}
	}
	s.mu.Lock()
	s.jobs[j.id] = j
	s.mu.Unlock()
	if err := s.queue.push(j); err != nil {
		s.mu.Lock()
		delete(s.jobs, j.id)
		s.mu.Unlock()
		cancel()
		if j.journaled {
			s.journalDone(j, client.OutcomeCanceled, "rejected at admission", nil)
		}
		s.met.countOutcome("rejected")
		return nil, err
	}
	return j, nil
}

// journalState appends a state-transition record; journal write failures
// degrade durability, not liveness, so they only count a metric.
func (s *Server) journalState(j *job, state string) {
	if err := s.journal.Append(journalRecord{
		Type: recState, ID: j.id, State: state, Attempts: j.attemptCount(),
	}); err != nil {
		s.met.journalErrors.Add(1)
	}
}

// journalDone appends a job's terminal record, result included, so a
// restarted daemon can serve its polling view.
func (s *Server) journalDone(j *job, outcome, errMsg string, result any) {
	rec := journalRecord{Type: recDone, ID: j.id, Outcome: outcome, Error: errMsg, Attempts: j.attemptCount()}
	if result != nil {
		if raw, err := json.Marshal(result); err == nil {
			rec.Result = raw
		}
	}
	if err := s.journal.Append(rec); err != nil {
		s.met.journalErrors.Add(1)
	}
}

// lookup returns a registered job by id.
func (s *Server) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// worker is one pool goroutine: it pops jobs until the queue closes and
// drains.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.queue.pop()
		if !ok {
			return
		}
		s.runJob(j)
	}
}

// runJob executes one job with panic isolation and records its outcome.
func (s *Server) runJob(j *job) {
	// A job whose submitter is already gone (sync client disconnected
	// while queued) is finished as canceled without running.
	if err := j.ctx.Err(); err != nil {
		s.finishJob(j, nil, fmt.Errorf("canceled while queued: %w", err), 0)
		return
	}
	j.setRunning()
	if j.journaled {
		s.journalState(j, client.StateRunning)
	}
	s.mu.Lock()
	s.running[j] = struct{}{}
	s.mu.Unlock()
	s.inflight.Add(1)
	started := time.Now()

	var res any
	// guard.Run converts a panic anywhere in the job into a structured
	// *guard.StageError: the worker (and the daemon) survive, and the
	// client sees a 500 carrying the stage and the panic flag.
	err := guard.Run(j.label, j.kind, func() error {
		var rerr error
		res, rerr = j.run(j.ctx)
		return rerr
	})
	elapsed := time.Since(started)

	s.inflight.Add(-1)
	s.mu.Lock()
	delete(s.running, j)
	s.mu.Unlock()
	s.finishJob(j, res, err, elapsed)
}

// finishJob records the terminal state, updates metrics and enforces the
// finished-job retention bound. Durable async jobs that fail below their
// attempt bound are re-enqueued instead of finished — at-least-once
// execution, idempotent through the artifact cache.
func (s *Server) finishJob(j *job, res any, err error, elapsed time.Duration) {
	if err != nil && j.ctx.Err() != nil && errors.Is(err, context.Canceled) {
		// Normalize: cancellation through any wrapping is one outcome.
		err = fmt.Errorf("job canceled: %w", context.Canceled)
	}
	if err != nil && j.journaled && !errors.Is(err, context.Canceled) &&
		j.attemptCount()+1 < s.cfg.MaxAttempts {
		j.setRetryable()
		s.journalState(j, client.StateRetryable)
		if s.queue.forcePush(j) {
			s.met.jobsRetried.Add(1)
			if elapsed > 0 {
				s.met.observeStage(j.kind, elapsed.Seconds())
			}
			return
		}
		// Queue closed (drain): fall through to a terminal failure.
	}
	j.finish(res, err)
	if j.journaled {
		msg := ""
		if err != nil {
			msg = err.Error()
		}
		s.journalDone(j, j.outcomeOf(), msg, res)
	}
	s.met.countOutcome(j.outcomeOf())
	if elapsed > 0 {
		s.met.observeStage(j.kind, elapsed.Seconds())
	}
	s.mu.Lock()
	s.doneOrder = append(s.doneOrder, j.id)
	for len(s.doneOrder) > s.cfg.RetainJobs {
		delete(s.jobs, s.doneOrder[0])
		s.doneOrder = s.doneOrder[1:]
	}
	s.mu.Unlock()
}

// BeginDrain stops admission: every subsequent submit is rejected with 503.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Drain gracefully shuts the worker pool down: admission stops, queued and
// in-flight jobs run to completion under the timeout, and stragglers are
// canceled (their clients see a canceled outcome). It returns nil on a
// clean drain and an error when jobs had to be canceled.
func (s *Server) Drain(timeout time.Duration) error {
	s.BeginDrain()
	s.queue.close()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	if timeout <= 0 {
		<-done
		return nil
	}
	select {
	case <-done:
		return nil
	case <-time.After(timeout):
	}
	// Deadline passed: cancel whatever is still running and wait for the
	// workers to observe it.
	s.mu.Lock()
	n := len(s.running)
	for j := range s.running {
		j.cancel()
	}
	s.mu.Unlock()
	<-done
	return fmt.Errorf("service: drain deadline exceeded; canceled %d in-flight job(s)", n)
}

// retryAfterSeconds derives the backpressure hint a shed request should
// honor: the queue's expected drain time for this job class —
// (depth+1) × observed mean service time ÷ workers — instead of a
// constant. Deterministic given the same queue state and latency history;
// clamped to [1s, 60s]. With no latency history yet, one second.
func (s *Server) retryAfterSeconds(kind string) int {
	mean := s.met.meanStageSeconds(kind)
	if mean <= 0 {
		return 1
	}
	secs := math.Ceil(float64(s.queue.depth()+1) * mean / float64(s.cfg.Workers))
	switch {
	case secs < 1:
		return 1
	case secs > 60:
		return 60
	default:
		return int(secs)
	}
}

// gaugesNow snapshots the live state for a metrics scrape.
func (s *Server) gaugesNow() gauges {
	cs := s.cache.Stats()
	bp, bv := harness.BroadcastStats()
	var jbytes, jcompactions int64
	if s.journal != nil {
		jbytes = s.journal.SizeBytes()
		jcompactions = s.journal.Compactions()
	}
	return gauges{
		journalBytes:       jbytes,
		journalCompactions: jcompactions,
		uptimeSeconds:      time.Since(s.start).Seconds(),
		queueDepth:         s.queue.depth(),
		queueCapacity:      s.cfg.QueueCapacity,
		workers:            s.cfg.Workers,
		inflight:           s.inflight.Load(),
		draining:           s.draining.Load(),
		retryAfter:         s.retryAfterSeconds(""),
		cacheHits:          cs.Hits,
		cacheMisses:        cs.Misses,
		cacheEntries:       cs.Entries,
		cacheEvictions:     cs.Evictions,
		cacheCorruptions:   cs.IntegrityEvictions,
		cacheHitRatio:      cs.HitRatio(),
		traceHits:          cs.RecordingHits,
		traceMisses:        cs.RecordingMisses,
		traceBytes:         cs.Bytes,
		broadcastPasses:    bp,
		batchedVariants:    bv,
		specOutcomes:       harness.SpecOutcomes(),
	}
}
