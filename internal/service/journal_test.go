package service

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/guard"
	"repro/spt/client"
)

func openTestJournal(t *testing.T, dir string) *Journal {
	t.Helper()
	jn, err := OpenJournal(dir)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	t.Cleanup(func() { _ = jn.Close() })
	return jn
}

func TestJournalAppendReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	jn := openTestJournal(t, dir)

	req := json.RawMessage(`{"benchmark":"parser"}`)
	for _, rec := range []journalRecord{
		{Type: recSubmit, ID: "j000001", Kind: KindSimulate, Priority: "high", Req: req},
		{Type: recState, ID: "j000001", State: client.StateRunning},
		{Type: recDone, ID: "j000001", Outcome: client.OutcomeOK, Result: json.RawMessage(`{"speedup":2}`)},
		{Type: recSubmit, ID: "j000002", Kind: KindCompile, Req: req},
		{Type: recState, ID: "j000002", State: client.StateRunning},
	} {
		if err := jn.Append(rec); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}

	jobs, truncated, err := jn.Replay()
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if truncated != 0 {
		t.Fatalf("clean journal reported %d truncated bytes", truncated)
	}
	if len(jobs) != 2 {
		t.Fatalf("replayed %d jobs, want 2", len(jobs))
	}
	if jobs[0].Submit.ID != "j000001" || jobs[0].State != client.StateDone ||
		jobs[0].Outcome != client.OutcomeOK || string(jobs[0].Result) != `{"speedup":2}` {
		t.Fatalf("job 1 folded wrong: %+v", jobs[0])
	}
	if jobs[1].Submit.ID != "j000002" || jobs[1].State != client.StateRunning {
		t.Fatalf("job 2 folded wrong: %+v", jobs[1])
	}
}

func TestJournalTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	jn := openTestJournal(t, dir)
	if err := jn.Append(journalRecord{Type: recSubmit, ID: "j000001", Kind: KindSimulate}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	// A SIGKILL mid-append leaves a half-written final line.
	f, err := os.OpenFile(jn.Path(), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := "deadbeef torn-record-without-checksum-or-newline"
	if _, err := f.WriteString(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	jobs, truncated, err := jn.Replay()
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if truncated != int64(len(torn)) {
		t.Fatalf("truncated = %d, want %d", truncated, len(torn))
	}
	if len(jobs) != 1 || jobs[0].Submit.ID != "j000001" {
		t.Fatalf("intact prefix lost: %+v", jobs)
	}
	// The file itself must be rolled back to the committed prefix so the
	// next append starts clean.
	data, err := os.ReadFile(jn.Path())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "torn-record") {
		t.Fatal("torn tail still present after replay")
	}
	if err := jn.Append(journalRecord{Type: recDone, ID: "j000001", Outcome: client.OutcomeOK}); err != nil {
		t.Fatalf("append after truncation: %v", err)
	}
	jobs, _, err = jn.Replay()
	if err != nil {
		t.Fatalf("second replay: %v", err)
	}
	if len(jobs) != 1 || jobs[0].State != client.StateDone {
		t.Fatalf("post-truncation append not replayed: %+v", jobs)
	}
}

func TestJournalChecksumMismatchEndsReplay(t *testing.T) {
	dir := t.TempDir()
	jn := openTestJournal(t, dir)
	for i := 1; i <= 3; i++ {
		rec := journalRecord{Type: recSubmit, ID: "j00000" + string(rune('0'+i)), Kind: KindCompile}
		if err := jn.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	// Flip one byte inside the second record's payload.
	data, err := os.ReadFile(jn.Path())
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	lines[1] = strings.Replace(lines[1], "submit", "sabmit", 1)
	if err := os.WriteFile(jn.Path(), []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}

	jobs, truncated, err := jn.Replay()
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(jobs) != 1 {
		t.Fatalf("replay past corrupt record: got %d jobs, want 1", len(jobs))
	}
	if truncated == 0 {
		t.Fatal("corrupt suffix not counted as truncated")
	}
}

func TestJournalCompact(t *testing.T) {
	dir := t.TempDir()
	jn := openTestJournal(t, dir)
	req := json.RawMessage(`{"benchmark":"parser"}`)
	// A job with a long transition history plus one unfinished job.
	if err := jn.Append(journalRecord{Type: recSubmit, ID: "j000001", Kind: KindSimulate, Req: req}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := jn.Append(journalRecord{Type: recState, ID: "j000001", State: client.StateRunning}); err != nil {
			t.Fatal(err)
		}
	}
	if err := jn.Append(journalRecord{Type: recDone, ID: "j000001", Outcome: client.OutcomeOK, Result: json.RawMessage(`{"x":1}`)}); err != nil {
		t.Fatal(err)
	}
	if err := jn.Append(journalRecord{Type: recSubmit, ID: "j000002", Kind: KindCompile, Req: req}); err != nil {
		t.Fatal(err)
	}

	jobs, _, err := jn.Replay()
	if err != nil {
		t.Fatal(err)
	}
	before, _ := os.Stat(jn.Path())
	if err := jn.Compact(jobs); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after, _ := os.Stat(jn.Path())
	if after.Size() >= before.Size() {
		t.Fatalf("compaction did not shrink journal: %d -> %d", before.Size(), after.Size())
	}
	jobs2, truncated, err := jn.Replay()
	if err != nil {
		t.Fatalf("replay after compact: %v", err)
	}
	if truncated != 0 {
		t.Fatal("compacted journal has torn bytes")
	}
	if len(jobs2) != 2 || jobs2[0].State != client.StateDone || string(jobs2[0].Result) != `{"x":1}` ||
		jobs2[1].State != client.StateQueued {
		t.Fatalf("compacted state wrong: %+v", jobs2)
	}
}

// TestJournalDirLockExcludesSecondOpener: a running daemon's journal-dir
// lock keeps both a second daemon and a work-stealing peer out until the
// journal is closed (or the process dies, which releases flocks the same
// way).
func TestJournalDirLockExcludesSecondOpener(t *testing.T) {
	dir := t.TempDir()
	jn := openTestJournal(t, dir)
	if _, err := OpenJournal(dir); !errors.Is(err, ErrJournalLocked) {
		t.Fatalf("second OpenJournal = %v, want ErrJournalLocked", err)
	}
	if _, err := TryLockJournalDir(dir); !errors.Is(err, ErrJournalLocked) {
		t.Fatalf("TryLockJournalDir while open = %v, want ErrJournalLocked", err)
	}
	if err := jn.Close(); err != nil {
		t.Fatal(err)
	}
	release, err := TryLockJournalDir(dir)
	if err != nil {
		t.Fatalf("TryLockJournalDir after close: %v", err)
	}
	release()
	jn2, err := OpenJournal(dir)
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	_ = jn2.Close()
}

// TestAutoCompactSkipsOnReadError: when the journal file cannot be read
// back (e.g. it vanished from under the daemon), append-triggered
// compaction must skip the round — folding nil would rewrite an EMPTY
// journal over the WAL, destroying every durable record.
func TestAutoCompactSkipsOnReadError(t *testing.T) {
	dir := t.TempDir()
	jn := openTestJournal(t, dir)
	jn.SetAutoCompact(1)
	if err := jn.Append(journalRecord{Type: recSubmit, ID: "j000001", Kind: KindSimulate}); err != nil {
		t.Fatal(err)
	}
	if jn.Compactions() != 1 {
		t.Fatalf("compactions = %d, want 1", jn.Compactions())
	}
	if err := os.Remove(jn.Path()); err != nil {
		t.Fatal(err)
	}
	if err := jn.Append(journalRecord{Type: recState, ID: "j000001", State: client.StateRunning}); err != nil {
		t.Fatal(err)
	}
	if jn.Compactions() != 1 {
		t.Fatalf("compactions after read failure = %d, want still 1 (round skipped)", jn.Compactions())
	}
	if _, err := os.Stat(jn.Path()); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("read-failure compaction recreated %s (stat err = %v)", jn.Path(), err)
	}
}

// TestDurableJobRetriesUntilSuccess: a durable async job whose first two
// executions fail is re-enqueued and succeeds on the third attempt.
func TestDurableJobRetriesUntilSuccess(t *testing.T) {
	var calls atomic.Int64
	stub := &stubPipeline{
		simulate: func(_ context.Context, req client.SimulateRequest, _ guard.Budget) (*client.SimulateResponse, error) {
			if calls.Add(1) < 3 {
				return nil, errors.New("transient stage failure")
			}
			return &client.SimulateResponse{Benchmark: req.Benchmark, Speedup: 2}, nil
		},
	}
	jn := openTestJournal(t, t.TempDir())
	_, _, cl := startServer(t, Config{Workers: 1, Pipeline: stub, Journal: jn, MaxAttempts: 3})

	ctx := context.Background()
	sub, err := cl.Simulate(ctx, client.SimulateRequest{
		Benchmark:  "parser",
		JobRequest: client.JobRequest{Async: true},
	})
	if err != nil {
		t.Fatalf("async submit: %v", err)
	}
	js, err := cl.Wait(ctx, sub.JobID, time.Millisecond)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if js.Outcome != client.OutcomeOK {
		t.Fatalf("outcome = %s (err %v), want ok", js.Outcome, js.Error)
	}
	if calls.Load() != 3 {
		t.Fatalf("pipeline ran %d times, want 3", calls.Load())
	}
	if js.Attempts != 2 {
		t.Fatalf("status attempts = %d, want 2 failed attempts recorded", js.Attempts)
	}
}

// TestDurableJobFailsAfterMaxAttempts: a job that always fails is retried
// up to the bound, then finishes failed.
func TestDurableJobFailsAfterMaxAttempts(t *testing.T) {
	var calls atomic.Int64
	stub := &stubPipeline{
		simulate: func(context.Context, client.SimulateRequest, guard.Budget) (*client.SimulateResponse, error) {
			calls.Add(1)
			return nil, errors.New("permanent stage failure")
		},
	}
	jn := openTestJournal(t, t.TempDir())
	_, _, cl := startServer(t, Config{Workers: 1, Pipeline: stub, Journal: jn, MaxAttempts: 3})

	ctx := context.Background()
	sub, err := cl.Simulate(ctx, client.SimulateRequest{
		Benchmark:  "parser",
		JobRequest: client.JobRequest{Async: true},
	})
	if err != nil {
		t.Fatalf("async submit: %v", err)
	}
	js, err := cl.Wait(ctx, sub.JobID, time.Millisecond)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if js.Outcome != client.OutcomeFailed {
		t.Fatalf("outcome = %s, want failed", js.Outcome)
	}
	if calls.Load() != 3 {
		t.Fatalf("pipeline ran %d times, want exactly MaxAttempts=3", calls.Load())
	}
}

// TestServerReplaysJournalOnBoot: a journal holding a finished job, a
// queued job and an interrupted running job boots into a server that
// serves the finished result and re-runs the other two.
func TestServerReplaysJournalOnBoot(t *testing.T) {
	dir := t.TempDir()
	jn := openTestJournal(t, dir)
	simReq, _ := json.Marshal(client.SimulateRequest{Benchmark: "parser"})
	doneResult := json.RawMessage(`{"benchmark":"parser","speedup":7}`)
	records := []journalRecord{
		{Type: recSubmit, ID: "j000001", Kind: KindSimulate, Req: simReq},
		{Type: recDone, ID: "j000001", Outcome: client.OutcomeOK, Result: doneResult},
		{Type: recSubmit, ID: "j000002", Kind: KindSimulate, Req: simReq}, // still queued
		{Type: recSubmit, ID: "j000003", Kind: KindSimulate, Req: simReq},
		{Type: recState, ID: "j000003", State: client.StateRunning}, // interrupted mid-run
	}
	for _, rec := range records {
		if err := jn.Append(rec); err != nil {
			t.Fatal(err)
		}
	}

	var calls atomic.Int64
	stub := &stubPipeline{
		simulate: func(_ context.Context, req client.SimulateRequest, _ guard.Budget) (*client.SimulateResponse, error) {
			calls.Add(1)
			return &client.SimulateResponse{Benchmark: req.Benchmark, Speedup: 2}, nil
		},
	}
	s, _, cl := startServer(t, Config{Workers: 1, Pipeline: stub, Journal: jn})

	ctx := context.Background()
	// The finished job's result survived the restart verbatim.
	js, err := cl.Job(ctx, "j000001")
	if err != nil {
		t.Fatalf("poll finished job: %v", err)
	}
	var restored struct {
		Speedup float64 `json:"speedup"`
	}
	if err := json.Unmarshal(js.Result, &restored); err != nil {
		t.Fatalf("decode resurrected result: %v", err)
	}
	if js.Outcome != client.OutcomeOK || restored.Speedup != 7 {
		t.Fatalf("resurrected done job wrong: %+v", js)
	}
	// The queued and interrupted jobs re-run to completion.
	for _, id := range []string{"j000002", "j000003"} {
		js, err := cl.Wait(ctx, id, time.Millisecond)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		if js.Outcome != client.OutcomeOK {
			t.Fatalf("%s outcome = %s, want ok", id, js.Outcome)
		}
	}
	if calls.Load() != 2 {
		t.Fatalf("replayed pipeline executions = %d, want 2", calls.Load())
	}
	if got := s.met.replayedQueued.Load(); got != 1 {
		t.Fatalf("replayedQueued = %d, want 1", got)
	}
	if got := s.met.replayedInterrupted.Load(); got != 1 {
		t.Fatalf("replayedInterrupted = %d, want 1", got)
	}
	// New submissions must not collide with replayed ids.
	sub, err := cl.Simulate(ctx, client.SimulateRequest{Benchmark: "parser", JobRequest: client.JobRequest{Async: true}})
	if err != nil {
		t.Fatal(err)
	}
	if sub.JobID != "j000004" {
		t.Fatalf("next id = %s, want j000004 (resume past replayed ids)", sub.JobID)
	}
	if _, err := cl.Wait(ctx, sub.JobID, time.Millisecond); err != nil {
		t.Fatal(err)
	}
}

// TestRetryAfterDeterministic: the backpressure hint is derived from queue
// depth and observed service time, deterministically.
func TestRetryAfterDeterministic(t *testing.T) {
	s, ts, _ := startServer(t, Config{Workers: 2, Pipeline: &stubPipeline{}})
	// No latency history: 1 second floor.
	if got := s.retryAfterSeconds(KindSimulate); got != 1 {
		t.Fatalf("cold retry-after = %d, want 1", got)
	}
	// 4s mean service time, empty queue, 2 workers: ceil((0+1)*4/2) = 2.
	s.met.observeStage(KindSimulate, 4.0)
	if got := s.retryAfterSeconds(KindSimulate); got != 2 {
		t.Fatalf("retry-after = %d, want 2", got)
	}
	// Same inputs, same answer.
	if got := s.retryAfterSeconds(KindSimulate); got != 2 {
		t.Fatal("retry-after not deterministic")
	}
	// A kind with no history borrows the all-kind mean.
	if got := s.retryAfterSeconds(KindCompile); got != 2 {
		t.Fatalf("fallback retry-after = %d, want 2", got)
	}
	// Absurd service times clamp to 60.
	s.met.observeStage(KindSweep, 100000)
	if got := s.retryAfterSeconds(KindSweep); got != 60 {
		t.Fatalf("clamped retry-after = %d, want 60", got)
	}
	// And the gauge is scraped.
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "sptd_retry_after_seconds") {
		t.Fatal("/metrics missing sptd_retry_after_seconds")
	}
}
