package service

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/harness"
	"repro/internal/multispec"
	"repro/spt/client"
)

// TestConfigFromRequestMultiSpec covers the multi-core knobs of the
// simulate request: valid values land on the Config, bad values are client
// errors, and the zero request stays the Table 1 default machine.
func TestConfigFromRequestMultiSpec(t *testing.T) {
	cfg, err := ConfigFromRequest(client.SimulateRequest{
		Benchmark: "parser", Cores: 8, Sched: "stride", Stride: 3, LiveIn: "slice",
	})
	if err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	if cfg.Cores != 8 || cfg.Sched != multispec.SchedStride || cfg.SchedStride != 3 ||
		cfg.LiveIn != multispec.LiveInSlice {
		t.Fatalf("knobs not applied: %+v", cfg)
	}

	zero, err := ConfigFromRequest(client.SimulateRequest{Benchmark: "parser"})
	if err != nil {
		t.Fatalf("zero request rejected: %v", err)
	}
	if zero.Cores != 0 || zero.Sched != multispec.SchedInOrder || zero.LiveIn != multispec.LiveInSVP {
		t.Fatalf("zero request is not the classic machine: %+v", zero)
	}

	for _, bad := range []client.SimulateRequest{
		{Benchmark: "parser", Cores: 1},
		{Benchmark: "parser", Cores: multispec.MaxCores + 1},
		{Benchmark: "parser", Sched: "psychic"},
		{Benchmark: "parser", LiveIn: "prophecy"},
	} {
		if _, err := ConfigFromRequest(bad); err == nil {
			t.Errorf("request %+v accepted; want an error", bad)
		}
	}
}

// TestSweepVariantsMultiSpec covers the new sweep families: defaults,
// point overrides, and rejection of senseless parameters.
func TestSweepVariantsMultiSpec(t *testing.T) {
	vs, err := sweepVariants(client.SweepRequest{Sweep: "cores"})
	if err != nil || len(vs) != 3 {
		t.Fatalf("default cores sweep: %d variants, %v", len(vs), err)
	}
	for i, want := range []int{2, 4, 8} {
		if vs[i].Config.Cores != want {
			t.Errorf("cores[%d] = %d, want %d", i, vs[i].Config.Cores, want)
		}
	}
	if _, err := sweepVariants(client.SweepRequest{Sweep: "cores", Points: []int{1}}); err == nil {
		t.Error("cores=1 accepted")
	}
	if _, err := sweepVariants(client.SweepRequest{Sweep: "cores", Points: []int{multispec.MaxCores + 1}}); err == nil {
		t.Error("oversized core count accepted")
	}

	vs, err = sweepVariants(client.SweepRequest{Sweep: "sched", Cores: 8, Points: []int{2, 4}})
	if err != nil || len(vs) != 4 { // inorder + 2 strides + eager
		t.Fatalf("sched sweep: %d variants, %v", len(vs), err)
	}
	for _, v := range vs {
		if v.Config.Cores != 8 {
			t.Errorf("sched variant %q has cores=%d, want 8", v.Label, v.Config.Cores)
		}
	}
	if _, err := sweepVariants(client.SweepRequest{Sweep: "sched", Points: []int{0}}); err == nil {
		t.Error("stride=0 accepted")
	}
	if _, err := sweepVariants(client.SweepRequest{Sweep: "sched", Cores: 1}); err == nil {
		t.Error("sched at cores=1 accepted")
	}

	vs, err = sweepVariants(client.SweepRequest{Sweep: "livein"})
	if err != nil || len(vs) != 2 {
		t.Fatalf("livein sweep: %d variants, %v", len(vs), err)
	}
}

// TestSweepRowsPartialFailure locks in the degradation contract of the
// sweep job: an errored variant keeps its row (error string, zero speedup)
// while siblings stand; only a total failure becomes a job error.
func TestSweepRowsPartialFailure(t *testing.T) {
	boom := errors.New("cycle budget exceeded")
	rows, err := sweepRows([]harness.AblationRow{
		{Variant: "ok", Speedup: 1.25},
		{Variant: "broken", Err: boom},
	}, boom)
	if err != nil {
		t.Fatalf("partial failure became a job error: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Error != "" || rows[0].Speedup != 1.25 {
		t.Errorf("healthy row perturbed: %+v", rows[0])
	}
	if !strings.Contains(rows[1].Error, "cycle budget") || rows[1].Speedup != 0 {
		t.Errorf("broken row = %+v; want the error string and zero speedup", rows[1])
	}

	if _, err := sweepRows([]harness.AblationRow{
		{Variant: "a", Err: boom}, {Variant: "b", Err: boom},
	}, boom); err == nil {
		t.Error("total failure did not become a job error")
	}
	if _, err := sweepRows(nil, boom); err == nil {
		t.Error("empty rows with an error did not become a job error")
	}
	if rows, err := sweepRows(nil, nil); err != nil || len(rows) != 0 {
		t.Errorf("empty sweep: rows=%v err=%v", rows, err)
	}
}
