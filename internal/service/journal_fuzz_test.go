package service

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/spt/client"
)

// fuzzSeedJournal builds a small valid journal: one finished job with its
// full transition history and one still-queued job.
func fuzzSeedJournal(tb testing.TB) []byte {
	tb.Helper()
	var buf bytes.Buffer
	write := func(rec journalRecord) {
		payload, err := json.Marshal(rec)
		if err != nil {
			tb.Fatalf("marshal: %v", err)
		}
		buf.Write(encodeLine(payload))
	}
	req, err := json.Marshal(client.SimulateRequest{Benchmark: "parser"})
	if err != nil {
		tb.Fatalf("marshal request: %v", err)
	}
	write(journalRecord{Type: recSubmit, ID: "j000001", Kind: KindSimulate, Req: req})
	write(journalRecord{Type: recState, ID: "j000001", State: client.StateRunning, Attempts: 1})
	write(journalRecord{Type: recDone, ID: "j000001", Outcome: client.OutcomeOK, Attempts: 1,
		Result: json.RawMessage(`{"benchmark":"parser","speedup":1.5}`)})
	write(journalRecord{Type: recSubmit, ID: "j000002", Kind: KindCompile, Req: req})
	return buf.Bytes()
}

// FuzzJournalReplay feeds arbitrary bytes — seeded with valid journals,
// truncated tails and bit-flipped records — through the fold and replay
// paths. The invariants under attack:
//
//   - folding never panics, whatever the bytes;
//   - the reported intact prefix re-folds to the same job set (the fold is
//     a pure function of the committed prefix);
//   - Replay truncates exactly the torn tail, so a second Replay of the
//     same file is clean (truncation is idempotent — the recovery itself
//     never needs recovering).
func FuzzJournalReplay(f *testing.F) {
	valid := fuzzSeedJournal(f)
	f.Add([]byte{})
	f.Add(valid)
	for _, cut := range []int{1, len(valid) / 3, len(valid) - 1} {
		f.Add(append([]byte(nil), valid[:cut]...)) // torn tails
	}
	for _, pos := range []int{0, len(valid) / 2, len(valid) - 2} {
		flipped := append([]byte(nil), valid...)
		flipped[pos] ^= 0x04 // single-bit rot
		f.Add(flipped)
	}
	f.Add([]byte("deadbeef not a record\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		jobs, intact := foldJournal(data)
		if intact < 0 || intact > int64(len(data)) {
			t.Fatalf("intact prefix %d outside [0, %d]", intact, len(data))
		}
		again, intact2 := foldJournal(data[:intact])
		if intact2 != intact {
			t.Fatalf("re-fold of intact prefix claims %d intact bytes, want %d", intact2, intact)
		}
		if len(again) != len(jobs) {
			t.Fatalf("re-fold of intact prefix found %d jobs, want %d", len(again), len(jobs))
		}

		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "jobs.journal"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		jn, err := OpenJournal(dir)
		if err != nil {
			t.Fatalf("OpenJournal: %v", err)
		}
		defer jn.Close()
		replayed, truncated, err := jn.Replay()
		if err != nil {
			t.Fatalf("Replay: %v", err)
		}
		if want := int64(len(data)) - intact; truncated != want {
			t.Fatalf("Replay truncated %d bytes, want %d", truncated, want)
		}
		if len(replayed) != len(jobs) {
			t.Fatalf("Replay found %d jobs, foldJournal found %d", len(replayed), len(jobs))
		}
		if got := jn.SizeBytes(); got != intact {
			t.Fatalf("post-replay SizeBytes %d, want intact prefix %d", got, intact)
		}
		replayed2, truncated2, err := jn.Replay()
		if err != nil {
			t.Fatalf("second Replay: %v", err)
		}
		if truncated2 != 0 {
			t.Fatalf("second Replay truncated %d bytes, want 0 (truncation must be idempotent)", truncated2)
		}
		if len(replayed2) != len(replayed) {
			t.Fatalf("second Replay found %d jobs, first found %d", len(replayed2), len(replayed))
		}
	})
}
