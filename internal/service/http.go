package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"repro/internal/guard"
	"repro/spt/client"
)

// Handler returns the daemon's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/compile", s.handleCompile)
	mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /livez", s.handleLive)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	var req client.CompileRequest
	if !decodeRequest(w, r, &req) {
		return
	}
	if err := ValidateBenchmark(req.Benchmark); err != nil {
		writeError(w, http.StatusBadRequest, client.ErrorBody{Error: err.Error()})
		return
	}
	s.submit(w, r, KindCompile, req.JobRequest, req)
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req client.SimulateRequest
	if !decodeRequest(w, r, &req) {
		return
	}
	if err := ValidateBenchmark(req.Benchmark); err != nil {
		writeError(w, http.StatusBadRequest, client.ErrorBody{Error: err.Error()})
		return
	}
	if _, err := ConfigFromRequest(req); err != nil {
		writeError(w, http.StatusBadRequest, client.ErrorBody{Error: err.Error()})
		return
	}
	s.submit(w, r, KindSimulate, req.JobRequest, req)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req client.SweepRequest
	if !decodeRequest(w, r, &req) {
		return
	}
	if err := ValidateBenchmark(req.Benchmark); err != nil {
		writeError(w, http.StatusBadRequest, client.ErrorBody{Error: err.Error()})
		return
	}
	if _, err := sweepVariants(req); err != nil {
		writeError(w, http.StatusBadRequest, client.ErrorBody{Error: err.Error()})
		return
	}
	s.submit(w, r, KindSweep, req.JobRequest, req)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, client.ErrorBody{Error: "unknown job id"})
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// healthNow assembles the shared /healthz and /readyz body.
func (s *Server) healthNow() client.Health {
	ready, conds := s.ReadyState()
	status := "ok"
	if len(conds) > 0 {
		status = conds[0]
	}
	return client.Health{
		Status:     status,
		Ready:      ready,
		Draining:   s.draining.Load(),
		Conditions: conds,
		Node:       s.cfg.NodeName,
		QueueDepth: s.queue.depth(),
		InFlight:   int(s.inflight.Load()),
		Workers:    s.cfg.Workers,
		UptimeMS:   time.Since(s.start).Milliseconds(),
	}
}

// handleHealth is the informational probe: always 200 while the process is
// up, with the full state in the body (Status/Ready/Conditions distinguish
// draining, journal-replay and store-degraded).
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.healthNow())
}

// handleLive is the liveness probe: 200 iff the process can serve HTTP at
// all. Restart-worthy failures only — never condition-dependent, or a
// draining node would be killed mid-drain.
func (s *Server) handleLive(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReady is the readiness probe: 200 when the node should receive new
// work, 503 (body names the conditions) when it should not — draining,
// replaying a stolen journal, or running with a degraded spill store.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	h := s.healthNow()
	code := http.StatusOK
	if !h.Ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.render(w, s.gaugesNow())
	// Nil-safe: a daemon without native capture scrapes the same series
	// with zero values, so dashboards never see a metric appear mid-flight.
	s.cfg.Native.WriteMetrics(w)
	if s.cfg.ExtraMetrics != nil {
		s.cfg.ExtraMetrics(w)
	}
}

// submit admits the job and either returns 202 (async) or blocks until the
// job settles (sync). A synchronous client that disconnects cancels its
// job through the shared context. The request is marshaled back to its raw
// payload so durable jobs can be journaled and replayed verbatim.
func (s *Server) submit(w http.ResponseWriter, r *http.Request, kind string, jr client.JobRequest, req any) {
	raw, err := json.Marshal(req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, client.ErrorBody{Error: "encode request: " + err.Error()})
		return
	}
	var reqCtx context.Context
	if !jr.Async {
		reqCtx = r.Context()
	}
	j, err := s.enqueue(reqCtx, kind, jr.Priority, raw)
	if err != nil {
		s.writeAdmissionError(w, kind, err)
		return
	}
	if jr.Async {
		writeJSON(w, http.StatusAccepted, map[string]string{"job_id": j.id})
		return
	}
	select {
	case <-j.done:
	case <-r.Context().Done():
		// The client is gone; j.ctx (derived from the request) cancels the
		// execution and the worker records a canceled outcome. There is
		// nobody left to write a response to.
		return
	}
	writeJobResult(w, j)
}

// writeJobResult maps a settled job onto an HTTP response: 200 with the
// result, 504 for budget exhaustion, 503 for a drain-canceled job, 500 for
// every other failure (including isolated panics).
func writeJobResult(w http.ResponseWriter, j *job) {
	js := j.status()
	switch js.Outcome {
	case client.OutcomeOK:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(js.Result)
		_, _ = w.Write([]byte("\n"))
	case client.OutcomeCanceled:
		writeError(w, http.StatusServiceUnavailable, orBody(js.Error, "job canceled"))
	default:
		status := http.StatusInternalServerError
		if js.Error != nil && js.Error.BudgetExceeded {
			status = http.StatusGatewayTimeout
		}
		writeError(w, status, orBody(js.Error, "job failed"))
	}
}

func orBody(eb *client.ErrorBody, fallback string) client.ErrorBody {
	if eb != nil {
		return *eb
	}
	return client.ErrorBody{Error: fallback}
}

// writeAdmissionError maps queue rejection onto backpressure responses. The
// Retry-After on a full queue is the queue's expected drain time for this
// job class, not a constant — deterministic given the same queue state and
// latency history.
func (s *Server) writeAdmissionError(w http.ResponseWriter, kind string, err error) {
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds(kind)))
		writeError(w, http.StatusTooManyRequests, client.ErrorBody{Error: err.Error()})
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, client.ErrorBody{Error: err.Error()})
	default:
		writeError(w, http.StatusInternalServerError, client.ErrorBody{Error: err.Error(), BudgetExceeded: guard.Exceeded(err)})
	}
}

// decodeRequest parses the JSON body into dst; on failure it writes a 400
// and reports false.
func decodeRequest(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, client.ErrorBody{Error: "bad request body: " + err.Error()})
		return false
	}
	return true
}

func writeError(w http.ResponseWriter, status int, eb client.ErrorBody) {
	writeJSON(w, status, eb)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
