package service

import (
	"errors"
	"sync"

	"repro/spt/client"
)

// ErrQueueFull is returned by push when the queue is at capacity. The HTTP
// layer maps it to 429 with a Retry-After header — the daemon's
// backpressure signal.
var ErrQueueFull = errors.New("service: job queue full")

// ErrDraining is returned by push once the daemon has begun draining; the
// HTTP layer maps it to 503.
var ErrDraining = errors.New("service: draining, not accepting jobs")

// queue is the bounded, priority-classed admission queue. push never
// blocks — a full queue rejects, which is what gives clients backpressure —
// while pop blocks until a job arrives or the queue is closed and empty.
type queue struct {
	mu       sync.Mutex
	cond     *sync.Cond
	capacity int
	closed   bool
	classes  [3][]*job // high, normal, low; FIFO within a class
	n        int
}

func newQueue(capacity int) *queue {
	q := &queue{capacity: capacity}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// classIndex maps a priority to its queue class (unknown values degrade to
// normal rather than erroring: priority is advisory).
func classIndex(p client.Priority) int {
	switch p {
	case client.PriorityHigh:
		return 0
	case client.PriorityLow:
		return 2
	default:
		return 1
	}
}

// push admits j or rejects it with ErrQueueFull / ErrDraining.
func (q *queue) push(j *job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrDraining
	}
	if q.n >= q.capacity {
		return ErrQueueFull
	}
	i := classIndex(j.priority)
	q.classes[i] = append(q.classes[i], j)
	q.n++
	q.cond.Signal()
	return nil
}

// forcePush re-admits a job regardless of the capacity bound: journal
// replays and retries of already-admitted jobs must not be shed by the
// admission-control limit (they were accepted once and are owed execution).
// It reports false only when the queue is closed (drain has begun).
func (q *queue) forcePush(j *job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	i := classIndex(j.priority)
	q.classes[i] = append(q.classes[i], j)
	q.n++
	q.cond.Signal()
	return true
}

// pop removes the highest-priority oldest job, blocking while the queue is
// empty. ok is false once the queue is closed and fully drained — the
// workers' exit signal.
func (q *queue) pop() (j *job, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		for i := range q.classes {
			if len(q.classes[i]) > 0 {
				j = q.classes[i][0]
				q.classes[i][0] = nil // let the job be collected once done
				q.classes[i] = q.classes[i][1:]
				q.n--
				return j, true
			}
		}
		if q.closed {
			return nil, false
		}
		q.cond.Wait()
	}
}

// depth returns the number of queued (not yet running) jobs.
func (q *queue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// close stops admission. Queued jobs still drain through pop; once empty,
// pop returns ok=false.
func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}
