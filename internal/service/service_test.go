package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/guard"
	"repro/internal/harness"
	"repro/spt/client"
)

// stubPipeline lets tests script the execution layer: blocking, panicking
// and failing jobs become deterministic.
type stubPipeline struct {
	compile  func(ctx context.Context, req client.CompileRequest, b guard.Budget) (*client.CompileResponse, error)
	simulate func(ctx context.Context, req client.SimulateRequest, b guard.Budget) (*client.SimulateResponse, error)
	sweep    func(ctx context.Context, req client.SweepRequest, b guard.Budget) (*client.SweepResponse, error)
}

func (s *stubPipeline) Compile(ctx context.Context, req client.CompileRequest, b guard.Budget) (*client.CompileResponse, error) {
	if s.compile == nil {
		return &client.CompileResponse{Benchmark: req.Benchmark}, nil
	}
	return s.compile(ctx, req, b)
}

func (s *stubPipeline) Simulate(ctx context.Context, req client.SimulateRequest, b guard.Budget) (*client.SimulateResponse, error) {
	if s.simulate == nil {
		return &client.SimulateResponse{Benchmark: req.Benchmark}, nil
	}
	return s.simulate(ctx, req, b)
}

func (s *stubPipeline) Sweep(ctx context.Context, req client.SweepRequest, b guard.Budget) (*client.SweepResponse, error) {
	if s.sweep == nil {
		return &client.SweepResponse{Benchmark: req.Benchmark}, nil
	}
	return s.sweep(ctx, req, b)
}

// startServer builds a server + HTTP test harness and tears both down.
func startServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *client.Client) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		// Drain first: it force-cancels stragglers at the deadline, so
		// ts.Close never hangs on a still-blocked in-flight request.
		_ = s.Drain(2 * time.Second)
		ts.Close()
	})
	return s, ts, client.New(ts.URL, ts.Client())
}

func simulateJSON(t *testing.T, url string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/v1/simulate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/simulate: %v", err)
	}
	return resp
}

func TestQueueFullRejectsWith429AndRetryAfter(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	stub := &stubPipeline{
		simulate: func(ctx context.Context, req client.SimulateRequest, _ guard.Budget) (*client.SimulateResponse, error) {
			started <- struct{}{}
			select {
			case <-release:
				return &client.SimulateResponse{Benchmark: req.Benchmark}, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	}
	s, ts, cl := startServer(t, Config{Workers: 1, QueueCapacity: 1, Pipeline: stub})

	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	// First request occupies the single worker; second fills the queue.
	wg.Add(1)
	go func() { defer wg.Done(); _, errs[0] = cl.Simulate(ctx, client.SimulateRequest{Benchmark: "parser"}) }()
	<-started
	wg.Add(1)
	go func() { defer wg.Done(); _, errs[1] = cl.Simulate(ctx, client.SimulateRequest{Benchmark: "parser"}) }()
	waitFor(t, func() bool { return s.queue.depth() == 1 }, "second job queued")

	// Third request must be shed with 429 + Retry-After.
	_, err := cl.Simulate(ctx, client.SimulateRequest{Benchmark: "parser"})
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow request: got %v; want a 429 APIError", err)
	}
	if ae.RetryAfterSeconds <= 0 {
		t.Errorf("429 without Retry-After; backpressure needs a retry hint")
	}
	if !client.IsBackpressure(err) {
		t.Errorf("IsBackpressure = false for a 429")
	}

	close(release)
	wg.Wait()
	for i, e := range errs {
		if e != nil {
			t.Errorf("request %d failed after release: %v", i, e)
		}
	}
	if got := s.met.jobsRejected.Load(); got != 1 {
		t.Errorf("jobs rejected metric = %d; want 1", got)
	}
	_ = ts
}

func TestBudgetExceededJobReportsGuardClassification(t *testing.T) {
	// Real pipeline, absurd cycle budget: the baseline simulation trips
	// arch.ErrCycleLimit, which guard.Exceeded classifies as budget
	// exhaustion — the response must be a 504 carrying that flag and the
	// failing stage.
	_, ts, _ := startServer(t, Config{Workers: 2})
	resp := simulateJSON(t, ts.URL, `{"benchmark":"parser","cycles":1}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d; want 504 for a budget-exceeded job", resp.StatusCode)
	}
	var eb client.ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatalf("decode error body: %v", err)
	}
	if !eb.BudgetExceeded {
		t.Errorf("error body %+v; want budget_exceeded=true", eb)
	}
	if eb.Stage == "" {
		t.Errorf("error body %+v; want the failing stage recorded", eb)
	}
	if eb.Panicked {
		t.Errorf("budget exhaustion misreported as a panic: %+v", eb)
	}
}

func TestWorkerPanicBecomesStructured500AndDaemonSurvives(t *testing.T) {
	var calls int
	var mu sync.Mutex
	stub := &stubPipeline{
		simulate: func(_ context.Context, req client.SimulateRequest, _ guard.Budget) (*client.SimulateResponse, error) {
			mu.Lock()
			calls++
			first := calls == 1
			mu.Unlock()
			if first {
				panic("worker bomb")
			}
			return &client.SimulateResponse{Benchmark: req.Benchmark, Speedup: 1.5}, nil
		},
	}
	_, ts, cl := startServer(t, Config{Workers: 1, Pipeline: stub})

	resp := simulateJSON(t, ts.URL, `{"benchmark":"parser"}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d; want 500 for a panicked job", resp.StatusCode)
	}
	var eb client.ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatalf("decode error body: %v", err)
	}
	if !eb.Panicked || !strings.Contains(eb.Error, "worker bomb") {
		t.Errorf("error body %+v; want panicked=true carrying the panic message", eb)
	}
	if eb.BudgetExceeded {
		t.Errorf("panic misclassified as budget exhaustion: %+v", eb)
	}

	// The daemon must still serve: same worker, next request succeeds.
	out, err := cl.Simulate(context.Background(), client.SimulateRequest{Benchmark: "parser"})
	if err != nil {
		t.Fatalf("request after panic: %v", err)
	}
	if out.Speedup != 1.5 {
		t.Errorf("post-panic response = %+v; want the stub result", out)
	}
}

func TestClientDisconnectCancelsRunningJob(t *testing.T) {
	jobStarted := make(chan struct{})
	jobCanceled := make(chan struct{})
	stub := &stubPipeline{
		simulate: func(ctx context.Context, _ client.SimulateRequest, _ guard.Budget) (*client.SimulateResponse, error) {
			close(jobStarted)
			<-ctx.Done()
			close(jobCanceled)
			return nil, ctx.Err()
		},
	}
	s, ts, _ := startServer(t, Config{Workers: 1, Pipeline: stub})

	ctx, cancel := context.WithCancel(context.Background())
	cl := client.New(ts.URL, ts.Client())
	done := make(chan error, 1)
	go func() {
		_, err := cl.Simulate(ctx, client.SimulateRequest{Benchmark: "parser"})
		done <- err
	}()
	<-jobStarted
	cancel() // client walks away mid-job
	if err := <-done; err == nil {
		t.Error("client call returned nil after cancellation")
	}
	select {
	case <-jobCanceled:
	case <-time.After(5 * time.Second):
		t.Fatal("job context was not canceled after the client disconnected")
	}
	waitFor(t, func() bool { return s.met.jobsCanceled.Load() == 1 }, "canceled outcome recorded")
}

func TestSyncJobCanceledWhileQueuedIsNeverRun(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	var ran int
	var mu sync.Mutex
	stub := &stubPipeline{
		simulate: func(ctx context.Context, req client.SimulateRequest, _ guard.Budget) (*client.SimulateResponse, error) {
			mu.Lock()
			ran++
			mu.Unlock()
			started <- struct{}{}
			select {
			case <-release:
			case <-ctx.Done():
			}
			return &client.SimulateResponse{Benchmark: req.Benchmark}, nil
		},
	}
	s, ts, _ := startServer(t, Config{Workers: 1, QueueCapacity: 4, Pipeline: stub})
	cl := client.New(ts.URL, ts.Client())

	bg, err1 := context.Background(), error(nil)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _, err1 = cl.Simulate(bg, client.SimulateRequest{Benchmark: "parser"}) }()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = cl.Simulate(ctx, client.SimulateRequest{Benchmark: "parser"})
	}()
	waitFor(t, func() bool { return s.queue.depth() == 1 }, "second job queued")
	cancel() // abandon the queued job before a worker picks it up
	waitFor(t, func() bool {
		// The server notices the disconnect asynchronously; release the
		// worker only once the queued job's context is actually dead.
		s.mu.Lock()
		defer s.mu.Unlock()
		for _, j := range s.jobs {
			if j.ctx.Err() != nil {
				return true
			}
		}
		return false
	}, "queued job context canceled")
	close(release)
	wg.Wait()
	// The worker pops the abandoned job, sees its dead context, and
	// finishes it as canceled without ever invoking the pipeline.
	waitFor(t, func() bool { return s.met.jobsCanceled.Load() == 1 }, "queued job finished as canceled")
	if err1 != nil {
		t.Errorf("first request failed: %v", err1)
	}
	mu.Lock()
	defer mu.Unlock()
	if ran != 1 {
		t.Errorf("pipeline ran %d times; the canceled queued job must never execute", ran)
	}
}

func TestDrainRejectsNewWorkAndFinishesInFlight(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	stub := &stubPipeline{
		simulate: func(ctx context.Context, req client.SimulateRequest, _ guard.Budget) (*client.SimulateResponse, error) {
			started <- struct{}{}
			select {
			case <-release:
				return &client.SimulateResponse{Benchmark: req.Benchmark, Speedup: 2}, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	}
	s, _, cl := startServer(t, Config{Workers: 1, Pipeline: stub})

	var inflightErr error
	var inflightResp *client.SimulateResponse
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		inflightResp, inflightErr = cl.Simulate(context.Background(), client.SimulateRequest{Benchmark: "parser"})
	}()
	<-started

	s.BeginDrain()
	_, err := cl.Simulate(context.Background(), client.SimulateRequest{Benchmark: "parser"})
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain: got %v; want 503", err)
	}

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(10 * time.Second) }()
	time.Sleep(20 * time.Millisecond) // let Drain reach its wait
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v; want clean (in-flight job finishes under the deadline)", err)
	}
	wg.Wait()
	if inflightErr != nil || inflightResp == nil || inflightResp.Speedup != 2 {
		t.Errorf("in-flight job during drain: resp %+v err %v; want completion", inflightResp, inflightErr)
	}

	h, err := cl.Health(context.Background())
	if err != nil {
		t.Fatalf("healthz after drain: %v", err)
	}
	if !h.Draining || h.Status != "draining" {
		t.Errorf("health after drain = %+v; want draining", h)
	}
}

func TestDrainDeadlineCancelsStragglers(t *testing.T) {
	stub := &stubPipeline{
		simulate: func(ctx context.Context, _ client.SimulateRequest, _ guard.Budget) (*client.SimulateResponse, error) {
			<-ctx.Done() // never finishes voluntarily
			return nil, ctx.Err()
		},
	}
	s, ts, cl := startServer(t, Config{Workers: 1, Pipeline: stub})
	go func() {
		_, _ = cl.Simulate(context.Background(), client.SimulateRequest{Benchmark: "parser"})
	}()
	waitFor(t, func() bool { return s.inflight.Load() == 1 }, "job running")
	if err := s.Drain(50 * time.Millisecond); err == nil {
		t.Fatal("Drain returned nil; want an error reporting canceled stragglers")
	}
	waitFor(t, func() bool { return s.met.jobsCanceled.Load() == 1 }, "straggler recorded as canceled")
	_ = ts
}

func TestBadRequestsAreRejectedAtAdmission(t *testing.T) {
	_, ts, _ := startServer(t, Config{Workers: 1, Pipeline: &stubPipeline{}})
	cases := []struct {
		path, body string
	}{
		{"/v1/simulate", `{"benchmark":"nope"}`},
		{"/v1/simulate", `{"benchmark":"parser","recovery":"warp"}`},
		{"/v1/simulate", `{not json`},
		{"/v1/compile", `{"benchmark":""}`},
		{"/v1/sweep", `{"benchmark":"parser","sweep":"entropy"}`},
		{"/v1/sweep", `{"benchmark":"parser","sweep":"srb","points":[0]}`},
		{"/v1/simulate", `{"benchmark":"parser","cores":1}`},
		{"/v1/simulate", `{"benchmark":"parser","sched":"warp"}`},
		{"/v1/simulate", `{"benchmark":"parser","livein":"prophecy"}`},
		{"/v1/sweep", `{"benchmark":"parser","sweep":"cores","points":[1]}`},
		{"/v1/sweep", `{"benchmark":"parser","sweep":"sched","cores":1}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s %s: status %d; want 400", tc.path, tc.body, resp.StatusCode)
		}
	}
	// Admission rejections must not occupy job slots or the metrics'
	// outcome counters (they never became jobs).
	resp, err := http.Get(ts.URL + "/v1/jobs/j000001")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("jobs lookup after rejected admissions: %d; want 404", resp.StatusCode)
	}
}

func TestMetricsExposition(t *testing.T) {
	stub := &stubPipeline{}
	_, _, cl := startServer(t, Config{Workers: 2, QueueCapacity: 7, Pipeline: stub})
	if _, err := cl.Simulate(context.Background(), client.SimulateRequest{Benchmark: "parser"}); err != nil {
		t.Fatal(err)
	}
	m, err := cl.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"sptd_queue_depth", "sptd_queue_capacity", "sptd_workers",
		"sptd_inflight_workers", "sptd_draining",
		"sptd_jobs_total{outcome=\"ok\"}", "sptd_jobs_total{outcome=\"rejected\"}",
		"sptd_cache_hits_total", "sptd_cache_hit_ratio",
		"sptd_trace_cache_hits_total", "sptd_trace_cache_misses_total",
		"sptd_trace_cache_bytes",
		"sptd_stage_latency_seconds_bucket{stage=\"simulate\",le=\"+Inf\"}",
		"sptd_stage_latency_seconds_count{stage=\"simulate\"}",
		"sptd_spec_commits_total{kind=\"fast\"}", "sptd_spec_commits_total{kind=\"replay\"}",
		"sptd_spec_squashes_total{cause=\"violation\"}", "sptd_spec_squashes_total{cause=\"eager\"}",
		// Native-capture counters render zero-valued even with no capturer
		// configured, so dashboards see a stable series set.
		"sptd_capture_native_total", "sptd_capture_fallback_total{reason=\"no-toolchain\"}",
		"sptd_capture_fallback_total{reason=\"mismatch\"}", "sptd_capture_module_cache_bytes",
	} {
		if !strings.Contains(m, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
	if v, ok := client.MetricValue(m, `sptd_jobs_total{outcome="ok"}`); !ok || v != 1 {
		t.Errorf("ok jobs metric = %v %v; want 1", v, ok)
	}
	if v, ok := client.MetricValue(m, "sptd_queue_capacity"); !ok || v != 7 {
		t.Errorf("queue capacity metric = %v %v; want 7", v, ok)
	}
	if v, ok := client.MetricValue(m, `sptd_stage_latency_seconds_count{stage="simulate"}`); !ok || v != 1 {
		t.Errorf("stage count metric = %v %v; want 1", v, ok)
	}
}

func TestAsyncJobLifecycle(t *testing.T) {
	stub := &stubPipeline{
		simulate: func(_ context.Context, req client.SimulateRequest, _ guard.Budget) (*client.SimulateResponse, error) {
			return &client.SimulateResponse{Benchmark: req.Benchmark, Speedup: 3}, nil
		},
	}
	_, _, cl := startServer(t, Config{Workers: 1, Pipeline: stub})
	ctx := context.Background()
	sub, err := cl.Simulate(ctx, client.SimulateRequest{
		Benchmark:  "parser",
		JobRequest: client.JobRequest{Async: true},
	})
	if err != nil {
		t.Fatalf("async submit: %v", err)
	}
	if sub.JobID == "" {
		t.Fatal("async submit returned no job id")
	}
	js, err := cl.Wait(ctx, sub.JobID, time.Millisecond)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if js.Outcome != client.OutcomeOK || js.Kind != KindSimulate {
		t.Fatalf("job status %+v; want ok simulate", js)
	}
	var out client.SimulateResponse
	if err := js.DecodeResult(&out); err != nil {
		t.Fatal(err)
	}
	if out.Speedup != 3 || out.JobID != sub.JobID {
		t.Errorf("async result %+v; want the stub result under the same job id", out)
	}
	// Unknown ids are 404.
	if _, err := cl.Job(ctx, "j999999"); err == nil {
		t.Error("lookup of unknown job id succeeded; want 404")
	}
}

func TestPriorityOrderingUnderSingleWorker(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	var order []string
	var mu sync.Mutex
	stub := &stubPipeline{
		simulate: func(ctx context.Context, req client.SimulateRequest, _ guard.Budget) (*client.SimulateResponse, error) {
			mu.Lock()
			order = append(order, string(req.Priority))
			n := len(order)
			mu.Unlock()
			if n == 1 {
				started <- struct{}{}
				select {
				case <-release:
				case <-ctx.Done():
				}
			}
			return &client.SimulateResponse{Benchmark: req.Benchmark}, nil
		},
	}
	s, _, cl := startServer(t, Config{Workers: 1, QueueCapacity: 8, Pipeline: stub})
	ctx := context.Background()

	var wg sync.WaitGroup
	submit := func(p client.Priority) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = cl.Simulate(ctx, client.SimulateRequest{
				Benchmark:  "parser",
				JobRequest: client.JobRequest{Priority: p},
			})
		}()
	}
	// Occupy the worker, then queue low before high: the high job must
	// still run first once the worker frees up.
	submit("first")
	<-started
	submit(client.PriorityLow)
	waitFor(t, func() bool { return s.queue.depth() == 1 }, "low queued")
	submit(client.PriorityHigh)
	waitFor(t, func() bool { return s.queue.depth() == 2 }, "high queued")
	close(release)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	want := []string{"first", "high", "low"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Errorf("execution order %v; want %v", order, want)
	}
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestEndToEndRealPipeline drives the genuine SPT pipeline through the
// HTTP API: compile, simulate (checked against the local harness result),
// coalesced duplicates, and a sweep.
func TestEndToEndRealPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("real pipeline in -short mode")
	}
	s, _, cl := startServer(t, Config{Workers: 4, QueueCapacity: 32})
	ctx := context.Background()

	cres, err := cl.Compile(ctx, client.CompileRequest{Benchmark: "parser"})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if cres.Fingerprint == "" || cres.SelectedLoops == 0 {
		t.Errorf("compile response %+v; want a fingerprint and selected loops", cres)
	}

	want, err := localExpected(t)
	if err != nil {
		t.Fatal(err)
	}
	const dupes = 6
	got := make([]*client.SimulateResponse, dupes)
	var wg sync.WaitGroup
	for i := 0; i < dupes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var err error
			got[i], err = cl.Simulate(ctx, client.SimulateRequest{Benchmark: "parser"})
			if err != nil {
				t.Errorf("simulate %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	for i, g := range got {
		if g == nil {
			continue
		}
		if g.Baseline != want.Baseline || g.SPT != want.SPT || g.Speedup != want.Speedup {
			t.Errorf("response %d differs from the local pipeline:\n got %+v\nwant %+v", i, g, want)
		}
	}
	st := s.CacheStats()
	if st.Hits == 0 {
		t.Errorf("cache stats %+v; duplicate requests should have coalesced", st)
	}

	sres, err := cl.Sweep(ctx, client.SweepRequest{Benchmark: "parser", Sweep: "recovery"})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if len(sres.Rows) != 2 {
		t.Errorf("recovery sweep rows = %+v; want 2 variants", sres.Rows)
	}

	// The multi-core family rides the same broadcast sweep path; every row
	// must come back healthy with the classic machine first.
	cres2, err := cl.Sweep(ctx, client.SweepRequest{Benchmark: "parser", Sweep: "cores", Points: []int{2, 4}})
	if err != nil {
		t.Fatalf("cores sweep: %v", err)
	}
	if len(cres2.Rows) != 2 {
		t.Fatalf("cores sweep rows = %+v; want 2 variants", cres2.Rows)
	}
	for _, r := range cres2.Rows {
		if r.Error != "" || r.Speedup <= 0 {
			t.Errorf("cores row %+v; want a positive speedup and no error", r)
		}
	}
}

// localExpected computes the one-shot pipeline result the daemon must
// reproduce bit-identically.
func localExpected(t *testing.T) (*client.SimulateResponse, error) {
	t.Helper()
	run, err := harness.RunBenchmark("parser", 1, arch.DefaultConfig())
	if err != nil {
		return nil, err
	}
	return &client.SimulateResponse{
		Benchmark: "parser",
		Scale:     1,
		Baseline:  Summarize(run.Baseline),
		SPT:       Summarize(run.SPT),
		Speedup:   run.Speedup(),
	}, nil
}
