//go:build unix

package service

import (
	"os"
	"syscall"
)

// flockTry takes a non-blocking exclusive flock on f. The kernel holds the
// lock for the life of the open file description and releases it when the
// owning process exits — even by SIGKILL — which is what makes it a
// liveness fence: acquiring a journal dir's lock proves no live daemon
// still owns that dir, no matter how slow or paused it looks over the
// network.
func flockTry(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
}
