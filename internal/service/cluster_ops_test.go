package service

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"repro/spt/client"
)

func TestReadyStateConditionOrdering(t *testing.T) {
	s, _, _ := startServer(t, Config{Pipeline: &stubPipeline{}})
	if ready, conds := s.ReadyState(); !ready || len(conds) != 0 {
		t.Fatalf("fresh server not ready: ready=%v conds=%v", ready, conds)
	}
	s.SetCondition("zeta", true)
	s.SetCondition(CondStoreDegraded, true)
	s.SetCondition("alpha", true)
	s.SetCondition(CondJournalReplay, true)
	ready, conds := s.ReadyState()
	if ready {
		t.Fatal("ready with four active conditions")
	}
	want := []string{CondJournalReplay, CondStoreDegraded, "alpha", "zeta"}
	if len(conds) != len(want) {
		t.Fatalf("conditions = %v, want %v", conds, want)
	}
	for i := range want {
		if conds[i] != want[i] {
			t.Fatalf("conditions = %v, want %v (dominant-first, rest alphabetical)", conds, want)
		}
	}
	s.BeginDrain()
	if _, conds = s.ReadyState(); len(conds) != 5 || conds[0] != CondDraining {
		t.Fatalf("draining must lead the conditions, got %v", conds)
	}
	// Clearing a condition removes exactly it.
	s.SetCondition(CondStoreDegraded, false)
	if _, conds = s.ReadyState(); len(conds) != 4 || conds[1] != CondJournalReplay {
		t.Fatalf("after clearing store-degraded: %v", conds)
	}
}

func TestLivezReadyzEndpoints(t *testing.T) {
	s, ts, _ := startServer(t, Config{Pipeline: &stubPipeline{}, NodeName: "n1"})
	get := func(path string) (*http.Response, client.Health) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var h client.Health
		_ = json.NewDecoder(resp.Body).Decode(&h)
		return resp, h
	}

	if resp, _ := get("/livez"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/livez = %d, want 200", resp.StatusCode)
	}
	if resp, h := get("/readyz"); resp.StatusCode != http.StatusOK || !h.Ready {
		t.Fatalf("/readyz on a healthy node = %d ready=%v", resp.StatusCode, h.Ready)
	}

	s.SetCondition(CondStoreDegraded, true)
	resp, h := get("/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while store-degraded = %d, want 503", resp.StatusCode)
	}
	if h.Ready || h.Status != CondStoreDegraded || len(h.Conditions) != 1 || h.Conditions[0] != CondStoreDegraded {
		t.Fatalf("/readyz body = %+v, want store-degraded condition", h)
	}
	if h.Node != "n1" {
		t.Fatalf("/readyz node = %q, want n1", h.Node)
	}
	// Liveness and the informational probe stay 200: a degraded node must
	// not be restarted, only drained of new work.
	if resp, _ := get("/livez"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/livez while degraded = %d, want 200", resp.StatusCode)
	}
	if resp, h := get("/healthz"); resp.StatusCode != http.StatusOK || h.Ready {
		t.Fatalf("/healthz while degraded = %d ready=%v, want 200 + not ready", resp.StatusCode, h.Ready)
	}

	s.SetCondition(CondStoreDegraded, false)
	if resp, _ := get("/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz after recovery = %d, want 200", resp.StatusCode)
	}
}

func TestJournalAutoCompactKeepsFileBounded(t *testing.T) {
	dir := t.TempDir()
	jn := openTestJournal(t, dir)
	jn.SetAutoCompact(8)
	req, _ := json.Marshal(client.SimulateRequest{Benchmark: "parser"})
	if err := jn.Append(journalRecord{Type: recSubmit, ID: "j000001", Kind: KindSimulate, Req: req}); err != nil {
		t.Fatalf("Append submit: %v", err)
	}
	// A long retry storm: without compaction the file would grow one line
	// per transition; auto-compaction folds it back to submit + last state.
	for i := 1; i <= 100; i++ {
		state := client.StateRunning
		if i%2 == 0 {
			state = client.StateRetryable
		}
		if err := jn.Append(journalRecord{Type: recState, ID: "j000001", State: state, Attempts: i}); err != nil {
			t.Fatalf("Append state %d: %v", i, err)
		}
	}
	if c := jn.Compactions(); c < 10 {
		t.Fatalf("Compactions = %d, want >= 10 after 101 appends at every-8", c)
	}
	if sz := jn.SizeBytes(); sz > 2048 {
		t.Fatalf("SizeBytes = %d after compactions, want a bounded file", sz)
	}
	jobs, err := FoldJournalFile(jn.Path())
	if err != nil {
		t.Fatalf("FoldJournalFile: %v", err)
	}
	if len(jobs) != 1 || jobs[0].Submit.ID != "j000001" {
		t.Fatalf("compacted journal folds to %+v, want the single live job", jobs)
	}
	if jobs[0].Attempts != 100 {
		t.Fatalf("compaction lost the attempt count: %d, want 100", jobs[0].Attempts)
	}
}

func TestAdoptIsIdempotentAndDurable(t *testing.T) {
	req, _ := json.Marshal(client.SimulateRequest{Benchmark: "parser"})
	result := json.RawMessage(`{"benchmark":"parser","speedup":1.5}`)
	stolen := []ReplayedJob{
		{
			Submit: journalRecord{Type: recSubmit, ID: "a-j000001", Kind: KindSimulate, Req: req},
			State:  client.StateDone, Outcome: client.OutcomeOK, Attempts: 1, Result: result,
		},
		{
			Submit: journalRecord{Type: recSubmit, ID: "a-j000002", Kind: KindSimulate, Req: req},
			State:  client.StateRunning, Attempts: 1,
		},
	}

	jn := openTestJournal(t, t.TempDir())
	s, _, c := startServer(t, Config{Pipeline: &stubPipeline{}, Journal: jn, NodeName: "b"})
	pending, done := s.Adopt(stolen, "a")
	if pending != 1 || done != 1 {
		t.Fatalf("Adopt = (%d pending, %d done), want (1, 1)", pending, done)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// The finished job is pollable here with the journaled result bytes.
	js, err := c.Job(ctx, "a-j000001")
	if err != nil {
		t.Fatalf("Job(adopted done): %v", err)
	}
	if js.State != client.StateDone || js.Outcome != client.OutcomeOK {
		t.Fatalf("adopted done job = %+v", js)
	}
	// The transport may re-indent the JSON; the value must survive exactly.
	var want, got map[string]any
	if err := json.Unmarshal(result, &want); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(js.Result, &got); err != nil {
		t.Fatalf("adopted result is not JSON: %v", err)
	}
	if got["benchmark"] != want["benchmark"] || got["speedup"] != want["speedup"] {
		t.Fatalf("adopted result = %v, want %v", got, want)
	}
	// The interrupted job runs to completion on the adopter.
	js, err = c.Wait(ctx, "a-j000002", 5*time.Millisecond)
	if err != nil {
		t.Fatalf("Wait(adopted pending): %v", err)
	}
	if js.State != client.StateDone || js.Outcome != client.OutcomeOK {
		t.Fatalf("adopted pending job settled as %+v", js)
	}

	// Re-delivery (a second steal of the same records) adopts nothing.
	if p, d := s.Adopt(stolen, "a"); p != 0 || d != 0 {
		t.Fatalf("second Adopt = (%d, %d), want (0, 0)", p, d)
	}

	// The adoption is crash-durable: the adopter's own journal folds to
	// both jobs, so a crash here loses nothing.
	folded, err := FoldJournalFile(jn.Path())
	if err != nil {
		t.Fatalf("FoldJournalFile: %v", err)
	}
	byID := map[string]ReplayedJob{}
	for _, rj := range folded {
		byID[rj.Submit.ID] = rj
	}
	if rj, ok := byID["a-j000001"]; !ok || rj.State != client.StateDone {
		t.Fatalf("adopter journal missing done job: %+v", byID)
	}
	if _, ok := byID["a-j000002"]; !ok {
		t.Fatalf("adopter journal missing pending job: %+v", byID)
	}
}
