//go:build !unix

package service

import "os"

// flockTry is a no-op where flock is unavailable: every acquisition
// succeeds, so work stealing degrades to rename arbitration alone and the
// journal dir is not fenced against concurrent daemons.
func flockTry(f *os.File) error { return nil }
