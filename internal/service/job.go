package service

import (
	"context"
	"encoding/json"
	"errors"
	"sync"

	"repro/internal/guard"
	"repro/spt/client"
)

// Job kinds — also the stage label of the latency histograms.
const (
	KindCompile  = "compile"
	KindSimulate = "simulate"
	KindSweep    = "sweep"
)

// job is one unit of queued work. The ctx is derived from the submitting
// request for synchronous jobs (client disconnect cancels the job) and from
// the server's background context for async jobs.
type job struct {
	id       string
	kind     string
	label    string // benchmark name, for structured stage errors
	priority client.Priority
	ctx      context.Context
	cancel   context.CancelFunc
	run      func(ctx context.Context) (any, error)

	// Durability (async jobs under a journal): raw is the submitted request
	// payload as journaled, journaled marks the job write-ahead-logged, and
	// attempts counts completed executions (retries increment it).
	raw       json.RawMessage
	journaled bool

	mu        sync.Mutex
	state     string // client.StateQueued / StateRunning / StateRetryable / StateDone
	outcome   string // client.OutcomeOK / OutcomeFailed / OutcomeCanceled
	attempts  int
	result    any
	rawResult json.RawMessage // journal-replayed done jobs: result restored verbatim
	err       error
	done      chan struct{} // closed exactly once, when state becomes done
}

func (j *job) setRunning() {
	j.mu.Lock()
	j.state = client.StateRunning
	j.mu.Unlock()
}

// setRetryable parks a failed (or crash-interrupted) durable job for
// re-execution and returns its new attempt count.
func (j *job) setRetryable() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = client.StateRetryable
	j.attempts++
	return j.attempts
}

func (j *job) attemptCount() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.attempts
}

// finish records the job's terminal state and wakes every waiter.
func (j *job) finish(result any, err error) {
	j.mu.Lock()
	j.state = client.StateDone
	j.result = result
	j.err = err
	switch {
	case err == nil:
		j.outcome = client.OutcomeOK
	case errors.Is(err, context.Canceled):
		j.outcome = client.OutcomeCanceled
	default:
		j.outcome = client.OutcomeFailed
	}
	j.mu.Unlock()
	j.cancel() // release the context's resources
	close(j.done)
}

// status renders the polling view of the job.
func (j *job) status() client.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	js := client.JobStatus{ID: j.id, Kind: j.kind, State: j.state, Outcome: j.outcome, Attempts: j.attempts}
	if j.err != nil {
		js.Error = errorBody(j.err)
	}
	switch {
	case j.result != nil:
		if raw, err := json.Marshal(j.result); err == nil {
			js.Result = raw
		}
	case j.rawResult != nil:
		js.Result = j.rawResult
	}
	return js
}

// outcomeOf returns the job's outcome (empty until done).
func (j *job) outcomeOf() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.outcome
}

// errorBody converts a job failure into the wire error payload, carrying
// the guard classification (stage, budget exhaustion, panic).
func errorBody(err error) *client.ErrorBody {
	eb := &client.ErrorBody{Error: err.Error(), BudgetExceeded: guard.Exceeded(err)}
	var se *guard.StageError
	if errors.As(err, &se) {
		eb.Stage = se.Stage
		eb.Panicked = se.Panicked
	}
	return eb
}
