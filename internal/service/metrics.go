package service

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/multispec"
)

// latencyBuckets are the upper bounds (seconds) of the per-stage latency
// histograms. They span sub-millisecond cache hits up to minute-long sweeps.
var latencyBuckets = []float64{
	0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// histogram is a fixed-bucket latency histogram. Observations are cheap
// (one mutex, no allocation); rendering walks the buckets cumulatively in
// Prometheus style.
type histogram struct {
	mu     sync.Mutex
	counts []int64 // one per bucket plus +Inf
	sum    float64
	count  int64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]int64, len(latencyBuckets)+1)}
}

func (h *histogram) observe(v float64) {
	i := sort.SearchFloat64s(latencyBuckets, v)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// snapshot returns cumulative bucket counts, the sum and the total count.
func (h *histogram) snapshot() (cum []int64, sum float64, count int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum = make([]int64, len(h.counts))
	var acc int64
	for i, c := range h.counts {
		acc += c
		cum[i] = acc
	}
	return cum, h.sum, h.count
}

// metrics aggregates the daemon's counters. Gauges (queue depth, in-flight
// workers, cache state) are read live from the server at scrape time.
type metrics struct {
	jobsOK       atomic.Int64
	jobsFailed   atomic.Int64
	jobsCanceled atomic.Int64
	jobsRejected atomic.Int64

	jobsRetried           atomic.Int64 // failed durable jobs re-enqueued
	replayedQueued        atomic.Int64 // journal replay: jobs restored still queued
	replayedInterrupted   atomic.Int64 // journal replay: running jobs marked retryable
	journalErrors         atomic.Int64 // journal appends that failed (durability degraded)
	journalTruncatedBytes atomic.Int64 // torn-tail bytes dropped at replay
	adoptedPending        atomic.Int64 // work stealing: unfinished peer jobs re-enqueued here
	adoptedDone           atomic.Int64 // work stealing: finished peer jobs made pollable here

	stages map[string]*histogram // keyed by job kind; fixed at construction
}

func newMetrics(kinds ...string) *metrics {
	m := &metrics{stages: make(map[string]*histogram, len(kinds))}
	for _, k := range kinds {
		m.stages[k] = newHistogram()
	}
	return m
}

func (m *metrics) observeStage(kind string, seconds float64) {
	if h := m.stages[kind]; h != nil {
		h.observe(seconds)
	}
}

// meanStageSeconds is the observed mean service time of kind, falling back
// to the mean across all kinds, then to 1s before any traffic — the input
// of the queue-depth-derived Retry-After.
func (m *metrics) meanStageSeconds(kind string) float64 {
	if h := m.stages[kind]; h != nil {
		if _, sum, count := h.snapshot(); count > 0 {
			return sum / float64(count)
		}
	}
	var sum float64
	var count int64
	for _, h := range m.stages {
		_, s, c := h.snapshot()
		sum += s
		count += c
	}
	if count > 0 {
		return sum / float64(count)
	}
	return 1
}

func (m *metrics) countOutcome(outcome string) {
	switch outcome {
	case "ok":
		m.jobsOK.Add(1)
	case "failed":
		m.jobsFailed.Add(1)
	case "canceled":
		m.jobsCanceled.Add(1)
	case "rejected":
		m.jobsRejected.Add(1)
	}
}

// gauges is the live server state rendered alongside the counters.
type gauges struct {
	uptimeSeconds    float64
	queueDepth       int
	queueCapacity    int
	workers          int
	inflight         int64
	draining         bool
	retryAfter       int
	cacheHits        int64
	cacheMisses      int64
	cacheEntries     int
	cacheEvictions   int64
	cacheCorruptions int64
	cacheHitRatio    float64
	traceHits        int64
	traceMisses      int64
	traceBytes       int64

	broadcastPasses int64 // shared decode passes performed by batched sweeps
	batchedVariants int64 // variant engines fed by those passes

	// specOutcomes is the process-wide per-outcome speculation tally of
	// every simulation engine (commits by kind, squashes by cause).
	specOutcomes multispec.CounterSnapshot

	journalBytes       int64 // current journal file length (0 when no journal)
	journalCompactions int64 // lifetime journal compactions
}

// render writes the Prometheus text exposition of every metric.
func (m *metrics) render(w io.Writer, g gauges) {
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counterHead := func(name, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	}

	gauge("sptd_uptime_seconds", "Seconds since the daemon started.", g.uptimeSeconds)
	gauge("sptd_queue_depth", "Jobs waiting in the admission queue.", float64(g.queueDepth))
	gauge("sptd_queue_capacity", "Admission queue bound; pushes beyond it are rejected with 429.", float64(g.queueCapacity))
	gauge("sptd_workers", "Size of the worker pool.", float64(g.workers))
	gauge("sptd_inflight_workers", "Workers currently executing a job.", float64(g.inflight))
	draining := 0.0
	if g.draining {
		draining = 1
	}
	gauge("sptd_draining", "1 while the daemon is draining (new jobs rejected with 503).", draining)
	gauge("sptd_retry_after_seconds", "Backpressure hint shed requests receive: queue drain estimate from depth and observed service time.", float64(g.retryAfter))

	counterHead("sptd_jobs_total", "Finished jobs by outcome (rejected = refused at admission).")
	for _, oc := range []struct {
		name string
		v    int64
	}{
		{"ok", m.jobsOK.Load()},
		{"failed", m.jobsFailed.Load()},
		{"canceled", m.jobsCanceled.Load()},
		{"rejected", m.jobsRejected.Load()},
	} {
		fmt.Fprintf(w, "sptd_jobs_total{outcome=%q} %d\n", oc.name, oc.v)
	}

	counterHead("sptd_jobs_retried_total", "Failed durable jobs re-enqueued for another attempt.")
	fmt.Fprintf(w, "sptd_jobs_retried_total %d\n", m.jobsRetried.Load())
	counterHead("sptd_journal_replayed_total", "Jobs restored from the journal at boot, by disposition.")
	fmt.Fprintf(w, "sptd_journal_replayed_total{disposition=%q} %d\n", "queued", m.replayedQueued.Load())
	fmt.Fprintf(w, "sptd_journal_replayed_total{disposition=%q} %d\n", "interrupted", m.replayedInterrupted.Load())
	counterHead("sptd_journal_errors_total", "Journal appends that failed; durability is degraded while this grows.")
	fmt.Fprintf(w, "sptd_journal_errors_total %d\n", m.journalErrors.Load())
	counterHead("sptd_journal_truncated_bytes_total", "Torn-tail bytes dropped by journal replay after a crash.")
	fmt.Fprintf(w, "sptd_journal_truncated_bytes_total %d\n", m.journalTruncatedBytes.Load())
	gauge("sptd_journal_bytes", "Current length of the job journal file.", float64(g.journalBytes))
	counterHead("sptd_journal_compactions_total", "Times the journal was folded down to the live job set (boot and append-triggered).")
	fmt.Fprintf(w, "sptd_journal_compactions_total %d\n", g.journalCompactions)
	counterHead("sptd_steal_adopted_total", "Jobs adopted from dead peers' journals, by disposition.")
	fmt.Fprintf(w, "sptd_steal_adopted_total{disposition=%q} %d\n", "pending", m.adoptedPending.Load())
	fmt.Fprintf(w, "sptd_steal_adopted_total{disposition=%q} %d\n", "done", m.adoptedDone.Load())

	counterHead("sptd_cache_hits_total", "Artifact-cache lookups served from a completed or in-flight computation.")
	fmt.Fprintf(w, "sptd_cache_hits_total %d\n", g.cacheHits)
	counterHead("sptd_cache_misses_total", "Artifact-cache lookups that had to compute.")
	fmt.Fprintf(w, "sptd_cache_misses_total %d\n", g.cacheMisses)
	counterHead("sptd_cache_evictions_total", "Artifacts dropped by the cache's LRU bound.")
	fmt.Fprintf(w, "sptd_cache_evictions_total %d\n", g.cacheEvictions)
	counterHead("sptd_cache_integrity_evictions_total", "Artifacts whose checksum no longer matched at lookup; evicted and recomputed, never served.")
	fmt.Fprintf(w, "sptd_cache_integrity_evictions_total %d\n", g.cacheCorruptions)
	gauge("sptd_cache_entries", "Artifacts currently resident in the cache.", float64(g.cacheEntries))
	gauge("sptd_cache_hit_ratio", "hits / (hits + misses) since start.", g.cacheHitRatio)

	counterHead("sptd_trace_cache_hits_total", "Simulations that replayed a shared trace recording instead of re-interpreting.")
	fmt.Fprintf(w, "sptd_trace_cache_hits_total %d\n", g.traceHits)
	counterHead("sptd_trace_cache_misses_total", "Trace recordings that had to interpret the program.")
	fmt.Fprintf(w, "sptd_trace_cache_misses_total %d\n", g.traceMisses)
	gauge("sptd_trace_cache_bytes", "Resident bytes of cached trace recordings (LRU-bounded by -cache-bytes).", float64(g.traceBytes))

	counterHead("sptd_spec_commits_total", "Speculative windows committed by the simulation engines since start, by commit kind.")
	for _, c := range g.specOutcomes.Commits {
		fmt.Fprintf(w, "sptd_spec_commits_total{kind=%q} %d\n", c.Cause, c.N)
	}
	counterHead("sptd_spec_squashes_total", "Speculative threads squashed by the simulation engines since start, by cause.")
	for _, c := range g.specOutcomes.Squashes {
		fmt.Fprintf(w, "sptd_spec_squashes_total{cause=%q} %d\n", c.Cause, c.N)
	}

	counterHead("sptd_sweep_broadcast_passes_total", "Shared decode passes: each decoded a recording once and fanned it out to a batch of sweep variant engines.")
	fmt.Fprintf(w, "sptd_sweep_broadcast_passes_total %d\n", g.broadcastPasses)
	counterHead("sptd_sweep_batched_variants_total", "Variant engines fed by broadcast passes instead of private replays.")
	fmt.Fprintf(w, "sptd_sweep_batched_variants_total %d\n", g.batchedVariants)

	fmt.Fprintf(w, "# HELP sptd_stage_latency_seconds Wall-clock latency of finished jobs by stage.\n")
	fmt.Fprintf(w, "# TYPE sptd_stage_latency_seconds histogram\n")
	kinds := make([]string, 0, len(m.stages))
	for k := range m.stages {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, kind := range kinds {
		cum, sum, count := m.stages[kind].snapshot()
		for i, ub := range latencyBuckets {
			fmt.Fprintf(w, "sptd_stage_latency_seconds_bucket{stage=%q,le=%q} %d\n", kind, trimFloat(ub), cum[i])
		}
		fmt.Fprintf(w, "sptd_stage_latency_seconds_bucket{stage=%q,le=\"+Inf\"} %d\n", kind, cum[len(cum)-1])
		fmt.Fprintf(w, "sptd_stage_latency_seconds_sum{stage=%q} %g\n", kind, sum)
		fmt.Fprintf(w, "sptd_stage_latency_seconds_count{stage=%q} %d\n", kind, count)
	}
}

// trimFloat renders a bucket bound the way Prometheus expects (no
// exponent, no trailing zeros).
func trimFloat(f float64) string {
	if f == math.Trunc(f) {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%g", f)
}
