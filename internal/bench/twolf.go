package bench

import "repro/internal/ir"

// BuildTwolf models SPECint2000 twolf (standard-cell placement by simulated
// annealing): wire-cost evaluation sweeps over cells (parallel chains) and
// a swap loop whose conditionally accepted moves mutate the placement —
// moderately frequent violations, the mid-field of Figure 8.
func BuildTwolf(scale int) *ir.Program {
	if scale < 1 {
		scale = 1
	}
	cells := int64(260)
	moves := int64(900 * scale)

	rng := newRand(0x2017)
	pb := ir.NewProgramBuilder("main")
	arrayGlobal(pb, "cellX", cells+64, func(i int64) int64 { return rng.intn(1000) })
	arrayGlobal(pb, "cellY", cells+64, func(i int64) int64 { return rng.intn(1000) })
	arrayGlobal(pb, "netW", cells+64, func(i int64) int64 { return rng.intn(9) + 1 })
	pb.AddGlobal("cost", 4)
	pb.AddGlobal("rowCell", 2)
	addSerialLoop(pb, "rowPenalty", "rowCell", 7)
	addBallast(pb, "netRebuild", 8)

	// wireCost(n) -> acc: half-perimeter-ish cost over all cells —
	// independent heavy iterations.
	{
		b := ir.NewFuncBuilder("wireCost", 1)
		n := b.Param(0)
		i, c, z, xB, yB, wB, a, x, y, w, v, acc := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
		b.Block("entry")
		b.MovI(acc, 0)
		b.GAddr(xB, "cellX")
		b.GAddr(yB, "cellY")
		b.GAddr(wB, "netW")
		b.Mov(i, n)
		b.MovI(z, 0)
		b.Jmp("head")
		b.Block("head")
		b.ALU(ir.CmpGT, c, i, z)
		b.Br(c, "body", "exit")
		b.Block("body")
		// An 8-pin net per iteration: the paper-scale "hundreds of
		// instructions" loop bodies of Figure 6's mid range.
		b.MovI(v, 0)
		for pin := 0; pin < 8; pin++ {
			b.ALU(ir.Add, a, xB, i)
			b.Load(x, a, int64(-1-pin*3))
			b.ALU(ir.Add, a, yB, i)
			b.Load(y, a, int64(-1-pin*5))
			b.ALU(ir.Add, a, wB, i)
			b.Load(w, a, int64(-1-pin))
			b.ALU(ir.Sub, x, x, y)
			b.ALU(ir.Mul, x, x, w)
			emitSerialChain(b, y, x, 2, int64(0x83+pin))
			b.ALU(ir.Add, v, v, y)
		}
		emitSerialChain(b, v, v, 4, 0x83)
		b.ALU(ir.Add, acc, acc, v)
		b.AddI(i, i, -1)
		b.Jmp("head")
		b.Block("exit")
		b.Ret(acc)
		pb.AddFunc(b.Done())
	}

	// anneal(n) -> accepted: the swap loop. The xorshift PRNG is a pure
	// carried chain (hoistable pre-fork!); roughly half the moves mutate
	// the placement arrays and the global cost — those stores are the
	// violation sources the checker catches at runtime.
	{
		b := ir.NewFuncBuilder("anneal", 1)
		n := b.Param(0)
		i, c, z, r, t, xB, a, pos, v, acc, m, costG := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
		one, w := b.NewReg(), b.NewReg()
		b.Block("entry")
		b.MovI(acc, 0)
		b.MovI(r, 88172645463325252)
		b.MovI(one, 1)
		b.MovI(m, cells-1)
		b.GAddr(xB, "cellX")
		b.GAddr(costG, "cost")
		b.Mov(i, n)
		b.MovI(z, 0)
		b.Jmp("head")
		b.Block("head")
		b.ALU(ir.CmpGT, c, i, z)
		b.Br(c, "body", "exit")
		b.Block("body")
		// xorshift64 step (pure, hoistable carried chain).
		b.MovI(t, 13)
		b.ALU(ir.Shl, t, r, t)
		b.ALU(ir.Xor, r, r, t)
		b.MovI(t, 7)
		b.ALU(ir.Shr, t, r, t)
		b.ALU(ir.Xor, r, r, t)
		b.MovI(t, 17)
		b.ALU(ir.Shl, t, r, t)
		b.ALU(ir.Xor, r, r, t)
		// Current total cost read early; accepted moves write it back late
		// — the annealing loop's genuine cross-iteration dependence.
		b.Load(w, costG, 0)
		// Evaluate the move.
		b.ALU(ir.And, pos, r, m)
		b.ALU(ir.Add, a, xB, pos)
		b.Load(v, a, 0)
		emitSerialChain(b, v, v, 7, 0x97)
		b.ALU(ir.And, t, r, one)
		b.Br(t, "accept", "join")
		b.Block("accept")
		b.Store(a, 0, v) // mutate placement (~50% of moves)
		b.ALU(ir.Add, w, w, v)
		b.Store(costG, 0, w)
		b.AddI(acc, acc, 1)
		b.Jmp("join")
		b.Block("join")
		b.AddI(i, i, -1)
		b.Jmp("head")
		b.Block("exit")
		b.Ret(acc)
		pb.AddFunc(b.Done())
	}

	{
		b := ir.NewFuncBuilder("main", 0)
		s, c, z, v, sum, n := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
		b.Block("entry")
		b.MovI(sum, 0)
		b.MovI(s, 3)
		b.MovI(z, 0)
		b.Jmp("outer.head")
		b.Block("outer.head")
		b.ALU(ir.CmpGT, c, s, z)
		b.Br(c, "outer.body", "outer.exit")
		b.Block("outer.body")
		b.MovI(n, cells)
		b.Call(v, "wireCost", n)
		b.ALU(ir.Xor, sum, sum, v)
		b.MovI(n, moves)
		b.Call(v, "anneal", n)
		b.ALU(ir.Add, sum, sum, v)
		b.AddI(s, s, -1)
		b.Jmp("outer.head")
		b.Block("outer.exit")
		b.MovI(n, 1500*3)
		b.Call(v, "rowPenalty", n)
		b.MovI(n, 1300*3)
		b.Call(v, "netRebuild", n)
		b.ALU(ir.Xor, sum, sum, v)
		b.Ret(sum)
		pb.AddFunc(b.Done())
	}

	return pb.Done()
}
