package bench

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/opt"
)

func runProg(t *testing.T, p *ir.Program) interp.Result {
	t.Helper()
	lp, err := interp.Load(p)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	m := interp.New(lp)
	m.SetStepLimit(200_000_000)
	res, err := m.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestAllBenchmarksValidate(t *testing.T) {
	if err := Validate(1); err != nil {
		t.Fatal(err)
	}
	if err := Validate(2); err != nil {
		t.Fatal(err)
	}
}

func TestAllBenchmarksRunDeterministically(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			p1 := b.Build(1)
			p2 := b.Build(1)
			r1 := runProg(t, p1)
			r2 := runProg(t, p2)
			if r1.Ret != r2.Ret || r1.MemChecksum != r2.MemChecksum || r1.Steps != r2.Steps {
				t.Errorf("nondeterministic build/run: %+v vs %+v", r1, r2)
			}
			if r1.Steps < 10_000 {
				t.Errorf("suspiciously small workload: %d steps", r1.Steps)
			}
			if r1.Steps > 20_000_000 {
				t.Errorf("scale-1 workload too large for tests: %d steps", r1.Steps)
			}
		})
	}
}

func TestScaleGrowsWork(t *testing.T) {
	for _, b := range All() {
		p1 := b.Build(1)
		p3 := b.Build(3)
		r1 := runProg(t, p1)
		r3 := runProg(t, p3)
		if r3.Steps <= r1.Steps {
			t.Errorf("%s: scale 3 (%d steps) not larger than scale 1 (%d steps)",
				b.Name, r3.Steps, r1.Steps)
		}
	}
}

func TestBenchmarksCompileAndPreserveSemantics(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			p := b.Build(1)
			res, err := compiler.Compile(p, CompilerOptions(b.Name))
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			r1 := runProg(t, p)
			r2 := runProg(t, res.Program)
			if r1.Ret != r2.Ret || r1.MemChecksum != r2.MemChecksum {
				t.Errorf("SPT compilation changed semantics: ret %d/%d checksum %x/%x",
					r1.Ret, r2.Ret, r1.MemChecksum, r2.MemChecksum)
			}
		})
	}
}

func TestExpectedSelectionCharacter(t *testing.T) {
	// The per-benchmark character the paper describes: vortex has nothing
	// to select; parser, mcf, gzip, gcc and twolf have SPT loops.
	wantSome := map[string]bool{
		"parser": true, "mcf": true, "gzip": true, "gcc": true, "twolf": true, "vpr": true,
	}
	for _, b := range All() {
		p := b.Build(1)
		res, err := compiler.Compile(p, CompilerOptions(b.Name))
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		n := len(res.SelectedLoops())
		if b.Name == "vortex" && n != 0 {
			for _, l := range res.SelectedLoops() {
				t.Logf("vortex selected %v", l.Key)
			}
			t.Errorf("vortex selected %d SPT loops, want 0", n)
		}
		if wantSome[b.Name] && n == 0 {
			for _, l := range res.Loops {
				t.Logf("%s loop %v: reason=%q est=%.2f trip=%.1f body=%.0f",
					b.Name, l.Key, l.Reason, l.EstSpeedup, l.TripCount, l.BodySize)
			}
			t.Errorf("%s selected no SPT loops", b.Name)
		}
	}
}

func TestParserFreeLoopIsFigure1(t *testing.T) {
	// The freelist loop must be analyzed, selected, and have a hoisted
	// next-pointer candidate — the Figure 1 transformation.
	p := BuildParser(1)
	res, err := compiler.Compile(p, CompilerOptions("parser"))
	if err != nil {
		t.Fatal(err)
	}
	var free *compiler.LoopReport
	for _, l := range res.Loops {
		if l.Key.Func == "freelist" {
			free = l
		}
	}
	if free == nil {
		t.Fatal("freelist loop not analyzed")
	}
	if !free.Selected {
		t.Fatalf("freelist loop not selected: %q", free.Reason)
	}
	if len(free.Hoisted) == 0 {
		t.Error("freelist loop selected without hoisting the pointer chase")
	}
}

func TestGapBodySizeRequiresRaisedLimit(t *testing.T) {
	p := BuildGap(1)
	// Default 1000-instruction limit: the hot loop must be rejected for
	// body size; gap's raised limit admits it (Section 5.3).
	strict, err := compiler.Compile(p, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	raised, err := compiler.Compile(p, CompilerOptions("gap"))
	if err != nil {
		t.Fatal(err)
	}
	hotSelected := func(r *compiler.Result) (bool, float64) {
		for _, l := range r.Loops {
			if l.Key.Func == "main" && l.Key.Header == "hot.head" {
				return l.Selected, l.BodySize
			}
		}
		return false, 0
	}
	sStrict, size := hotSelected(strict)
	sRaised, _ := hotSelected(raised)
	if size < 500 {
		t.Errorf("gap hot loop body size = %.0f, want skewed-huge (>500)", size)
	}
	if sStrict {
		t.Error("hot loop selected under the 1000-instruction limit")
	}
	if !sRaised {
		t.Error("hot loop rejected even under gap's 2500-instruction limit")
	}
}

func TestByNameAndNames(t *testing.T) {
	if len(Names()) != 10 {
		t.Fatalf("have %d benchmarks, want 10", len(Names()))
	}
	if _, ok := ByName("parser"); !ok {
		t.Error("parser missing")
	}
	if _, ok := ByName("eon"); ok {
		t.Error("eon is excluded in the paper and must stay excluded")
	}
	seen := map[string]bool{}
	for _, n := range Names() {
		if seen[n] {
			t.Errorf("duplicate benchmark %s", n)
		}
		seen[n] = true
	}
}

func TestBenchmarksRoundTripThroughText(t *testing.T) {
	// Every benchmark serializes to the textual IR and parses back to a
	// program with identical text and identical execution.
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			p := b.Build(1)
			text := p.Disasm()
			q, err := ir.Parse(text)
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			if q.Disasm() != text {
				t.Fatal("textual round trip diverged")
			}
			r1 := runProg(t, p)
			r2 := runProg(t, q)
			if r1.Ret != r2.Ret || r1.MemChecksum != r2.MemChecksum || r1.Steps != r2.Steps {
				t.Errorf("parsed program diverges: %+v vs %+v", r1, r2)
			}
		})
	}
}

func TestOptimizerPreservesBenchmarks(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			p := b.Build(1)
			q, st := opt.OptimizeWithStats(p)
			if err := q.Validate(); err != nil {
				t.Fatalf("optimized %s invalid: %v", b.Name, err)
			}
			r1, r2 := runProg(t, p), runProg(t, q)
			if r1.Ret != r2.Ret || r1.MemChecksum != r2.MemChecksum {
				t.Errorf("%s: optimization changed semantics", b.Name)
			}
			if r2.Steps > r1.Steps {
				t.Errorf("%s: optimized program executes more instructions (%d > %d)",
					b.Name, r2.Steps, r1.Steps)
			}
			t.Logf("%s: folded %d, propagated %d, dead %d, blocks %d; %d -> %d dyn instrs",
				b.Name, st.Folded, st.Propagated, st.DeadRemoved, st.BlocksRemoved, r1.Steps, r2.Steps)
		})
	}
}
