package bench

import "repro/internal/ir"

// BuildMCF models SPECint2000 mcf (network simplex minimum-cost flow): its
// time goes into memory-bound sweeps over large arc arrays that blow out
// the cache hierarchy, plus pointer chasing along the spanning tree. SPT
// overlaps consecutive iterations' cache misses, so mcf shows the largest
// d-cache-stall reduction in Figure 9.
func BuildMCF(scale int) *ir.Program {
	if scale < 1 {
		scale = 1
	}
	arcs := int64(6000 * scale) // 3 arrays x 8B x 6000·scale: past L1/L2 at scale>=6
	nodes := arcs / 4
	sweeps := int64(4)

	rng := newRand(0x3C0F)
	pb := ir.NewProgramBuilder("main")
	arrayGlobal(pb, "arcCost", arcs, func(i int64) int64 { return rng.intn(1000) - 500 })
	arrayGlobal(pb, "arcTail", arcs, func(i int64) int64 { return rng.intn(nodes) })
	arrayGlobal(pb, "arcHead", arcs, func(i int64) int64 { return rng.intn(nodes) })
	pb.AddGlobal("redCost", arcs)
	arrayGlobal(pb, "nodePot", nodes, func(i int64) int64 { return rng.intn(4000) })
	arrayGlobal(pb, "treeNext", nodes, func(i int64) int64 {
		// A permutation-ish successor ring for the pointer walk.
		return (i*7 + 3) % nodes
	})
	addBallast(pb, "dumpSolution", 7)

	// clampFlag(x) -> 0/1: overflow guard used by the entering-arc scan; in
	// practice it always returns 0, so the flag register it feeds is
	// rewritten with the *same value* every iteration — update-based
	// register checking flags every window, value-based checking none
	// (the Table 1 default's motivating case).
	{
		b := ir.NewFuncBuilder("clampFlag", 1)
		x := b.Param(0)
		v, lim := b.NewReg(), b.NewReg()
		b.Block("entry")
		b.MovI(lim, 1<<50)
		b.ALU(ir.CmpGT, v, x, lim)
		b.Ret(v)
		pb.AddFunc(b.Done())
	}

	// priceSweep(n) -> acc: reduced-cost computation over all arcs —
	// independent iterations, heavy indexed loads (the d-cache star).
	{
		b := ir.NewFuncBuilder("priceSweep", 1)
		n := b.Param(0)
		i, c, z, acc := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
		costB, tailB, headB, potB, redB := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
		cost, tail, head, pt, ph, rc, a := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
		b.Block("entry")
		b.MovI(acc, 0)
		b.GAddr(costB, "arcCost")
		b.GAddr(tailB, "arcTail")
		b.GAddr(headB, "arcHead")
		b.GAddr(potB, "nodePot")
		b.GAddr(redB, "redCost")
		b.Mov(i, n)
		b.MovI(z, 0)
		b.Jmp("head")
		b.Block("head")
		b.ALU(ir.CmpGT, c, i, z)
		b.Br(c, "body", "exit")
		b.Block("body")
		b.ALU(ir.Add, a, costB, i)
		b.Load(cost, a, -1)
		b.ALU(ir.Add, a, tailB, i)
		b.Load(tail, a, -1)
		b.ALU(ir.Add, a, headB, i)
		b.Load(head, a, -1)
		b.ALU(ir.Add, a, potB, tail)
		b.Load(pt, a, 0)
		b.ALU(ir.Add, a, potB, head)
		b.Load(ph, a, 0)
		b.ALU(ir.Sub, rc, cost, pt)
		b.ALU(ir.Add, rc, rc, ph)
		emitSerialChain(b, rc, rc, 4, 0x71)
		b.ALU(ir.Add, a, redB, i)
		b.Store(a, -1, rc)
		b.ALU(ir.Xor, acc, acc, rc)
		b.AddI(i, i, -1)
		b.Jmp("head")
		b.Block("exit")
		b.Ret(acc)
		pb.AddFunc(b.Done())
	}

	// findEntering(n) -> best arc: scan reduced costs keeping a running
	// minimum — the carried minimum changes rarely, which is exactly what
	// value-based register checking exploits.
	{
		b := ir.NewFuncBuilder("findEntering", 1)
		n := b.Param(0)
		i, c, z, redB, a, rc, best, bestI, cmp := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
		flag := b.NewReg()
		b.Block("entry")
		b.MovI(best, 1<<40)
		b.MovI(bestI, 0)
		b.MovI(flag, 0)
		b.GAddr(redB, "redCost")
		b.Mov(i, n)
		b.MovI(z, 0)
		b.Jmp("head")
		b.Block("head")
		b.ALU(ir.CmpGT, c, i, z)
		b.Br(c, "body", "exit")
		b.Block("body")
		b.ALU(ir.Add, bestI, bestI, flag) // overflow flag consumed (it is 0)
		b.ALU(ir.Add, a, redB, i)
		b.Load(rc, a, -1)
		b.Call(flag, "clampFlag", rc) // rewritten with the same value (0)
		b.ALU(ir.CmpLT, cmp, rc, best)
		b.Br(cmp, "upd", "join")
		b.Block("upd")
		b.Mov(best, rc)
		b.Mov(bestI, i)
		b.Jmp("join")
		b.Block("join")
		b.AddI(i, i, -1)
		b.Jmp("head")
		b.Block("exit")
		b.ALU(ir.Add, best, best, bestI)
		b.Ret(best)
		pb.AddFunc(b.Done())
	}

	// treeWalk(start, steps) -> acc: pointer chase over treeNext. The next
	// index load sits first in the body, so the chase hoists pre-fork and
	// the two cores overlap alternate steps' misses.
	{
		b := ir.NewFuncBuilder("treeWalk", 2)
		cur, steps := b.Param(0), b.Param(1)
		i, c, z, nextB, potB, a, nx, v, acc := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
		b.Block("entry")
		b.MovI(acc, 0)
		b.GAddr(nextB, "treeNext")
		b.GAddr(potB, "nodePot")
		b.Mov(i, steps)
		b.MovI(z, 0)
		b.Jmp("head")
		b.Block("head")
		b.ALU(ir.CmpGT, c, i, z)
		b.Br(c, "body", "exit")
		b.Block("body")
		b.ALU(ir.Add, a, nextB, cur)
		b.Load(nx, a, 0) // next node first: hoistable chase
		b.ALU(ir.Add, a, potB, cur)
		b.Load(v, a, 0)
		emitSerialChain(b, v, v, 5, 0x13)
		b.ALU(ir.Add, acc, acc, v)
		b.Mov(cur, nx)
		b.AddI(i, i, -1)
		b.Jmp("head")
		b.Block("exit")
		b.Ret(acc)
		pb.AddFunc(b.Done())
	}

	// potentialUpdate(n): serial accumulation through one memory cell —
	// intentionally unparallelizable ballast.
	{
		b := ir.NewFuncBuilder("potentialUpdate", 1)
		n := b.Param(0)
		i, c, z, g, v := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
		b.Block("entry")
		b.GAddr(g, "nodePot")
		b.Mov(i, n)
		b.MovI(z, 0)
		b.Jmp("head")
		b.Block("head")
		b.ALU(ir.CmpGT, c, i, z)
		b.Br(c, "body", "exit")
		b.Block("body")
		b.Load(v, g, 0)
		emitSerialChain(b, v, v, 6, 0x2B)
		b.Store(g, 0, v)
		b.AddI(i, i, -1)
		b.Jmp("head")
		b.Block("exit")
		b.Ret(z)
		pb.AddFunc(b.Done())
	}

	// main: simplex-ish iterations.
	{
		b := ir.NewFuncBuilder("main", 0)
		s, c, z, n, v, sum, st, steps := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
		b.Block("entry")
		b.MovI(sum, 0)
		b.MovI(n, arcs)
		b.MovI(s, sweeps)
		b.MovI(z, 0)
		b.MovI(steps, nodes/2)
		b.Jmp("outer.head")
		b.Block("outer.head")
		b.ALU(ir.CmpGT, c, s, z)
		b.Br(c, "outer.body", "outer.exit")
		b.Block("outer.body")
		b.Call(v, "priceSweep", n)
		b.ALU(ir.Xor, sum, sum, v)
		b.Call(v, "findEntering", n)
		b.ALU(ir.Add, sum, sum, v)
		b.MovI(st, 1)
		b.Call(v, "treeWalk", st, steps)
		b.ALU(ir.Xor, sum, sum, v)
		b.AddI(s, s, -1)
		b.Jmp("outer.head")
		b.Block("outer.exit")
		b.MovI(st, 1500*sweeps)
		b.Call(v, "potentialUpdate", st)
		b.MovI(st, 1200*sweeps)
		b.Call(v, "dumpSolution", st)
		b.Ret(sum)
		pb.AddFunc(b.Done())
	}

	return pb.Done()
}
