package bench

import "repro/internal/ir"

// BuildGap models SPECint2000 gap (the GAP group-theory interpreter): the
// paper calls out one highly skewed, very hot loop whose body is usually
// small but occasionally becomes huge when certain function calls are made
// — its average dynamic body size approaches 2500 instructions, which is
// why gap alone gets a 2500-instruction body-size budget (Section 5.3) and
// why its Figure 6 coverage jumps from ~35% to ~95% at that point.
func BuildGap(scale int) *ir.Program {
	if scale < 1 {
		scale = 1
	}
	outer := int64(40 * scale) // hot-loop iterations
	heavyEvery := int64(3)     // every 3rd iteration calls the interpreter core
	heavyTrip := int64(200)    // inner evaluation loop trip count

	rng := newRand(0x6A9)
	pb := ir.NewProgramBuilder("main")
	arrayGlobal(pb, "bag", 4096, func(i int64) int64 { return rng.intn(1 << 20) })
	pb.AddGlobal("results", outer+1)
	pb.AddGlobal("gc", 4)
	addBallast(pb, "printGroup", 6)

	// evalLarge(x) -> v: the interpreter core — a long *recursive*
	// evaluation over the "bag" heap (interpreter dispatch is call-shaped,
	// not loop-shaped). Called from the hot loop's occasional heavy path,
	// its inclusive cost is what makes the caller's average body size huge
	// — and because it contains no loop of its own, that cost appears in
	// Figure 6 only once loops of ~2500 instructions are admitted.
	{
		b := ir.NewFuncBuilder("evalRec", 2)
		idx, n := b.Param(0), b.Param(1)
		c, z, g, a, v, w, m := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
		b.Block("entry")
		b.MovI(z, 0)
		b.ALU(ir.CmpGT, c, n, z)
		b.Br(c, "work", "done")
		b.Block("work")
		b.GAddr(g, "bag")
		b.MovI(m, 4095)
		b.ALU(ir.And, a, idx, m)
		b.ALU(ir.Add, a, g, a)
		b.Load(v, a, 0)
		emitSerialChain(b, v, v, 5, 0x91)
		b.AddI(a, idx, 17)
		b.AddI(w, n, -1)
		b.Call(w, "evalRec", a, w)
		b.ALU(ir.Add, v, v, w)
		b.Ret(v)
		b.Block("done")
		b.Ret(z)
		pb.AddFunc(b.Done())
	}
	{
		b := ir.NewFuncBuilder("evalLarge", 1)
		x := b.Param(0)
		n, v := b.NewReg(), b.NewReg()
		b.Block("entry")
		b.MovI(n, heavyTrip)
		b.Call(v, "evalRec", x, n)
		b.Ret(v)
		pb.AddFunc(b.Done())
	}

	// evalSmall(x) -> v: the common cheap path.
	{
		b := ir.NewFuncBuilder("evalSmall", 1)
		x := b.Param(0)
		v := b.NewReg()
		b.Block("entry")
		emitSerialChain(b, v, x, 8, 0x47)
		b.Ret(v)
		pb.AddFunc(b.Done())
	}

	// orbitScan(n) -> acc: a medium-size partially parallel loop phase — the
	// sub-1000-body loop share of gap's Figure 6 curve.
	{
		b := ir.NewFuncBuilder("orbitScan", 1)
		n := b.Param(0)
		i, c, z, g, a, v, acc, m := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
		t, w := b.NewReg(), b.NewReg()
		b.Block("entry")
		b.MovI(acc, 0)
		b.GAddr(g, "bag")
		b.MovI(m, 4095)
		b.Mov(i, n)
		b.MovI(z, 0)
		b.Jmp("head")
		b.Block("head")
		b.ALU(ir.CmpGT, c, i, z)
		b.Br(c, "body", "exit")
		b.Block("body")
		b.GAddr(t, "gc")
		b.Load(w, t, 1) // workspace watermark read early...
		b.MulI(a, i, 31)
		b.ALU(ir.And, a, a, m)
		b.ALU(ir.Add, a, g, a)
		b.Load(v, a, 0)
		emitSerialChain(b, v, v, 8, 0xD1)
		b.ALU(ir.Xor, acc, acc, v)
		b.MovI(a, 3)
		b.ALU(ir.And, a, v, a)
		b.Br(a, "noadj", "adj")
		b.Block("adj")
		b.ALU(ir.Add, w, w, v)
		b.Store(t, 1, w) // ...adjusted late on ~1/4 of orbits
		b.Jmp("noadj")
		b.Block("noadj")
		b.AddI(i, i, -1)
		b.Jmp("head")
		b.Block("exit")
		b.Ret(acc)
		pb.AddFunc(b.Done())
	}

	// gcSweep(n): a cold garbage-collection-ish serial loop.
	{
		b := ir.NewFuncBuilder("gcSweep", 1)
		n := b.Param(0)
		i, c, z, g, v := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
		b.Block("entry")
		b.GAddr(g, "gc")
		b.Mov(i, n)
		b.MovI(z, 0)
		b.Jmp("head")
		b.Block("head")
		b.ALU(ir.CmpGT, c, i, z)
		b.Br(c, "body", "exit")
		b.Block("body")
		b.Load(v, g, 0)
		emitSerialChain(b, v, v, 4, 0x53)
		b.Store(g, 0, v)
		b.AddI(i, i, -1)
		b.Jmp("head")
		b.Block("exit")
		b.Ret(z)
		pb.AddFunc(b.Done())
	}

	// main: THE hot loop. Iterations are independent — results land in a
	// per-iteration slot — but the body size is wildly skewed between the
	// small and the interpreter path, with an average in the thousands.
	{
		b := ir.NewFuncBuilder("main", 0)
		i, c, z, v, q, r, resB, a, sum, he := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
		n := b.NewReg()
		b.Block("entry")
		b.MovI(sum, 0)
		b.GAddr(resB, "results")
		b.MovI(he, heavyEvery)
		b.MovI(i, outer)
		b.MovI(z, 0)
		b.Jmp("hot.head")
		b.Block("hot.head")
		b.ALU(ir.CmpGT, c, i, z)
		b.Br(c, "hot.body", "hot.exit")
		b.Block("hot.body")
		b.ALU(ir.Rem, r, i, he)
		b.ALU(ir.CmpEQ, q, r, z)
		b.Br(q, "heavy", "light")
		b.Block("heavy")
		b.Call(v, "evalLarge", i)
		b.Jmp("store")
		b.Block("light")
		b.Call(v, "evalSmall", i)
		b.Jmp("store")
		b.Block("store")
		b.ALU(ir.Add, a, resB, i)
		b.Store(a, 0, v) // independent per-iteration slot
		b.AddI(i, i, -1)
		b.Jmp("hot.head")
		b.Block("hot.exit")
		// Orbit phase, fold results, cold GC, report.
		b.MovI(n, outer*12)
		b.Call(v, "orbitScan", n)
		b.ALU(ir.Xor, sum, sum, v)
		b.MovI(n, 400)
		b.Call(v, "gcSweep", n)
		b.MovI(n, 600)
		b.Call(v, "printGroup", n)
		b.MovI(i, outer)
		b.Jmp("fold.head")
		b.Block("fold.head")
		b.ALU(ir.CmpGT, c, i, z)
		b.Br(c, "fold.body", "fold.exit")
		b.Block("fold.body")
		b.ALU(ir.Add, a, resB, i)
		b.Load(v, a, 0)
		b.ALU(ir.Xor, sum, sum, v)
		b.AddI(i, i, -1)
		b.Jmp("fold.head")
		b.Block("fold.exit")
		b.Ret(sum)
		pb.AddFunc(b.Done())
	}

	return pb.Done()
}
