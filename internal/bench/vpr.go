package bench

import "repro/internal/ir"

// BuildVPR models SPECint2000 vpr (FPGA placement & routing): routing-cost
// sweeps over the grid (parallel, array-heavy) and a wavefront expansion
// whose frontier cursor hoists while occasional revisits of the same grid
// cell produce genuine runtime memory violations.
func BuildVPR(scale int) *ir.Program {
	if scale < 1 {
		scale = 1
	}
	grid := int64(2800)
	waves := int64(5 * scale)
	frontier := int64(700)

	rng := newRand(0x0F9A)
	pb := ir.NewProgramBuilder("main")
	arrayGlobal(pb, "gridCost", grid, func(i int64) int64 { return rng.intn(100) + 1 })
	pb.AddGlobal("visited", grid)
	arrayGlobal(pb, "nbr", grid, func(i int64) int64 {
		// Mostly-forward neighbor function with occasional repeats.
		step := rng.intn(5) + 1
		return (i + step) % grid
	})
	pb.AddGlobal("route", 8)
	addBallast(pb, "writeNetlist", 7)

	// costSweep(n) -> acc: timing-cost estimation over the grid.
	{
		b := ir.NewFuncBuilder("costSweep", 1)
		n := b.Param(0)
		i, c, z, gB, a, v, acc := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
		rB, best, seven := b.NewReg(), b.NewReg(), b.NewReg()
		b.Block("entry")
		b.MovI(acc, 0)
		b.MovI(seven, 7)
		b.GAddr(rB, "route")
		b.GAddr(gB, "gridCost")
		b.Mov(i, n)
		b.MovI(z, 0)
		b.Jmp("head")
		b.Block("head")
		b.ALU(ir.CmpGT, c, i, z)
		b.Br(c, "body", "exit")
		b.Block("body")
		b.ALU(ir.Add, a, gB, i)
		b.Load(v, a, -1)
		b.Load(best, rB, 1) // critical-path estimate read early...
		emitSerialChain(b, v, v, 7, 0xA1)
		b.ALU(ir.Add, acc, acc, v)
		b.ALU(ir.And, c, v, seven)
		b.Br(c, "nobest", "newbest")
		b.Block("newbest")
		b.ALU(ir.Xor, best, best, v)
		b.Store(rB, 1, best) // ...updated late on ~1/8 of cells
		b.Jmp("nobest")
		b.Block("nobest")
		b.AddI(i, i, -1)
		b.Jmp("head")
		b.Block("exit")
		b.Ret(acc)
		pb.AddFunc(b.Done())
	}

	// expand(start, n) -> acc: wavefront expansion — follow the neighbor
	// function, mark visited. The next-cell load leads the body
	// (hoistable); revisits of a recently-marked cell raise memory
	// violations at runtime.
	{
		b := ir.NewFuncBuilder("expand", 2)
		cur, n := b.Param(0), b.Param(1)
		i, c, z, nbB, visB, gB, a, nx, v, acc := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
		b.Block("entry")
		b.MovI(acc, 0)
		b.GAddr(nbB, "nbr")
		b.GAddr(visB, "visited")
		b.GAddr(gB, "gridCost")
		b.Mov(i, n)
		b.MovI(z, 0)
		b.Jmp("head")
		b.Block("head")
		b.ALU(ir.CmpGT, c, i, z)
		b.Br(c, "body", "exit")
		b.Block("body")
		b.ALU(ir.Add, a, nbB, cur)
		b.Load(nx, a, 0) // frontier successor first: hoistable
		b.ALU(ir.Add, a, gB, cur)
		b.Load(v, a, 0)
		emitSerialChain(b, v, v, 5, 0xB3)
		b.ALU(ir.Add, a, visB, cur)
		b.Store(a, 0, v) // mark: revisit of cur by next iterations violates
		b.ALU(ir.Add, acc, acc, v)
		b.Mov(cur, nx)
		b.AddI(i, i, -1)
		b.Jmp("head")
		b.Block("exit")
		b.Ret(acc)
		pb.AddFunc(b.Done())
	}

	// routeUpdate(n): serial global update ballast.
	{
		b := ir.NewFuncBuilder("routeUpdate", 1)
		n := b.Param(0)
		i, c, z, g, v := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
		b.Block("entry")
		b.GAddr(g, "route")
		b.Mov(i, n)
		b.MovI(z, 0)
		b.Jmp("head")
		b.Block("head")
		b.ALU(ir.CmpGT, c, i, z)
		b.Br(c, "body", "exit")
		b.Block("body")
		b.Load(v, g, 0)
		emitSerialChain(b, v, v, 4, 0xC5)
		b.Store(g, 0, v)
		b.AddI(i, i, -1)
		b.Jmp("head")
		b.Block("exit")
		b.Ret(z)
		pb.AddFunc(b.Done())
	}

	{
		b := ir.NewFuncBuilder("main", 0)
		s, c, z, v, sum, n, st := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
		b.Block("entry")
		b.MovI(sum, 0)
		b.MovI(s, waves)
		b.MovI(z, 0)
		b.Jmp("outer.head")
		b.Block("outer.head")
		b.ALU(ir.CmpGT, c, s, z)
		b.Br(c, "outer.body", "outer.exit")
		b.Block("outer.body")
		b.MovI(n, grid)
		b.Call(v, "costSweep", n)
		b.ALU(ir.Xor, sum, sum, v)
		b.MulI(st, s, 13)
		b.MovI(n, frontier)
		b.Call(v, "expand", st, n)
		b.ALU(ir.Add, sum, sum, v)
		b.AddI(s, s, -1)
		b.Jmp("outer.head")
		b.Block("outer.exit")
		b.MovI(n, 3200*waves)
		b.Call(v, "routeUpdate", n)
		b.MovI(n, 1200*waves)
		b.Call(v, "writeNetlist", n)
		b.Ret(sum)
		pb.AddFunc(b.Done())
	}

	return pb.Done()
}
