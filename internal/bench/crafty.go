package bench

import "repro/internal/ir"

// BuildCrafty models SPECint2000 crafty (chess): the search is a recursive
// alpha-beta tree — no hot loop at all — and the loops that do exist are
// piece-list and ray scans of a handful of iterations, repeated enormous
// numbers of times. The paper attributes crafty's weak SPT gain to exactly
// these "many loops of short iteration counts that are inefficient to
// parallelize at iteration level"; only a medium-size move-generation loop
// contributes a little speculative parallelism.
func BuildCrafty(scale int) *ir.Program {
	if scale < 1 {
		scale = 1
	}
	depth := int64(8)
	rootMoves := int64(2 * scale)
	pieces := int64(6) // short trip count: the crafty problem
	rays := int64(3)

	rng := newRand(0xC4AF)
	pb := ir.NewProgramBuilder("main")
	arrayGlobal(pb, "board", 64, func(i int64) int64 { return rng.intn(13) })
	arrayGlobal(pb, "pieceSq", 32, func(i int64) int64 { return rng.intn(64) })
	arrayGlobal(pb, "attackTbl", 512, func(i int64) int64 { return int64(rng.next() & 0xFFFF) })
	arrayGlobal(pb, "moveTbl", 64, func(i int64) int64 { return rng.intn(1 << 12) })
	pb.AddGlobal("history", 64)

	// evalPieces(seed) -> score: trip-6 loop over a piece list.
	{
		b := ir.NewFuncBuilder("evalPieces", 1)
		seed := b.Param(0)
		i, c, z, sqB, bdB, a, sq, v, score := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
		b.Block("entry")
		b.MovI(score, 0)
		b.GAddr(sqB, "pieceSq")
		b.GAddr(bdB, "board")
		b.MovI(i, pieces)
		b.MovI(z, 0)
		b.ALU(ir.Add, score, score, seed)
		b.Jmp("head")
		b.Block("head")
		b.ALU(ir.CmpGT, c, i, z)
		b.Br(c, "body", "exit")
		b.Block("body")
		b.ALU(ir.Add, a, sqB, i)
		b.Load(sq, a, 0)
		b.ALU(ir.Add, a, bdB, sq)
		b.Load(v, a, 0)
		emitSerialChain(b, v, v, 4, 0x61)
		b.ALU(ir.Add, score, score, v)
		b.AddI(i, i, -1)
		b.Jmp("head")
		b.Block("exit")
		b.Ret(score)
		pb.AddFunc(b.Done())
	}

	// rayAttacks(sq) -> mask: trip-3 loop over sliding rays.
	{
		b := ir.NewFuncBuilder("rayAttacks", 1)
		sq := b.Param(0)
		i, c, z, tbB, a, v, mask, m := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
		b.Block("entry")
		b.MovI(mask, 0)
		b.GAddr(tbB, "attackTbl")
		b.MovI(m, 511)
		b.MovI(i, rays)
		b.MovI(z, 0)
		b.Jmp("head")
		b.Block("head")
		b.ALU(ir.CmpGT, c, i, z)
		b.Br(c, "body", "exit")
		b.Block("body")
		b.MulI(a, sq, 4)
		b.ALU(ir.Add, a, a, i)
		b.ALU(ir.And, a, a, m)
		b.ALU(ir.Add, a, tbB, a)
		b.Load(v, a, 0)
		emitSerialChain(b, v, v, 3, 0x29)
		b.ALU(ir.Or, mask, mask, v)
		b.AddI(i, i, -1)
		b.Jmp("head")
		b.Block("exit")
		b.Ret(mask)
		pb.AddFunc(b.Done())
	}

	// genMoves(pos) -> acc: the one medium loop — scoring 8 pseudo-moves
	// with independent chains (crafty's small SPT contribution).
	{
		b := ir.NewFuncBuilder("genMoves", 1)
		pos := b.Param(0)
		i, c, z, tbB, a, v, acc, m := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
		hB, killer := b.NewReg(), b.NewReg()
		b.Block("entry")
		b.MovI(acc, 0)
		b.GAddr(tbB, "moveTbl")
		b.MovI(m, 63)
		b.MovI(i, 8)
		b.MovI(z, 0)
		b.Jmp("head")
		b.Block("head")
		b.ALU(ir.CmpGT, c, i, z)
		b.Br(c, "body", "exit")
		b.Block("body")
		b.GAddr(hB, "history")
		b.Load(killer, hB, 1) // killer-move slot read early...
		b.ALU(ir.Add, a, pos, i)
		b.ALU(ir.And, a, a, m)
		b.ALU(ir.Add, a, tbB, a)
		b.Load(v, a, 0)
		emitSerialChain(b, v, v, 3, 0x43)
		b.ALU(ir.Xor, acc, acc, v)
		b.MovI(a, 3)
		b.ALU(ir.And, a, v, a)
		b.Br(a, "nokill", "kill")
		b.Block("kill")
		b.ALU(ir.Xor, killer, killer, v)
		b.Store(hB, 1, killer) // ...replaced late on ~1/4 of moves
		b.Jmp("nokill")
		b.Block("nokill")
		b.AddI(i, i, -1)
		b.Jmp("head")
		b.Block("exit")
		b.Ret(acc)
		pb.AddFunc(b.Done())
	}

	// historyUpdate(mv): serial load-modify-store on the history table.
	{
		b := ir.NewFuncBuilder("historyUpdate", 1)
		mv := b.Param(0)
		g, a, v, m := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
		b.Block("entry")
		b.GAddr(g, "history")
		b.MovI(m, 63)
		b.ALU(ir.And, a, mv, m)
		b.ALU(ir.Add, a, g, a)
		b.Load(v, a, 0)
		b.AddI(v, v, 1)
		b.Store(a, 0, v)
		b.Ret(v)
		pb.AddFunc(b.Done())
	}

	// search(depth, pos) -> score: recursive alpha-beta-ish binary tree.
	{
		b := ir.NewFuncBuilder("search", 2)
		d, pos := b.Param(0), b.Param(1)
		c, z, v, w, x, s1, s2 := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
		b.Block("entry")
		b.MovI(z, 0)
		b.ALU(ir.CmpGT, c, d, z)
		b.Br(c, "node", "leaf")
		b.Block("leaf")
		b.Call(v, "evalPieces", pos)
		b.Ret(v)
		b.Block("node")
		b.Call(v, "genMoves", pos)
		b.MovI(w, 63)
		b.ALU(ir.And, x, pos, w)
		b.Call(w, "rayAttacks", x)
		b.ALU(ir.Xor, v, v, w)
		b.Call(w, "historyUpdate", v)
		b.AddI(x, d, -1)
		b.MulI(s1, pos, 2)
		b.AddI(s1, s1, 1)
		b.Call(s1, "search", x, s1)
		b.MulI(s2, pos, 2)
		b.AddI(s2, s2, 2)
		b.Call(s2, "search", x, s2)
		b.ALU(ir.CmpGT, c, s1, s2)
		b.Br(c, "left", "right")
		b.Block("left")
		b.ALU(ir.Add, v, v, s1)
		b.Ret(v)
		b.Block("right")
		b.ALU(ir.Add, v, v, s2)
		b.Ret(v)
		pb.AddFunc(b.Done())
	}

	{
		b := ir.NewFuncBuilder("main", 0)
		i, c, z, v, sum, d := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
		b.Block("entry")
		b.MovI(sum, 0)
		b.MovI(i, rootMoves)
		b.MovI(z, 0)
		b.Jmp("root.head")
		b.Block("root.head")
		b.ALU(ir.CmpGT, c, i, z)
		b.Br(c, "root.body", "root.exit")
		b.Block("root.body")
		b.MovI(d, depth)
		b.Call(v, "search", d, i)
		b.ALU(ir.Xor, sum, sum, v)
		b.AddI(i, i, -1)
		b.Jmp("root.head")
		b.Block("root.exit")
		b.Ret(sum)
		pb.AddFunc(b.Done())
	}

	return pb.Done()
}
