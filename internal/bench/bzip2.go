package bench

import "repro/internal/ir"

// BuildBzip2 models SPECint2000 bzip2 (block-sorting compression). The
// paper notes bzip2's SPT gain "is hurt by indirect global memory updates
// via function calls": the main stream loop updates a global CRC/state
// through a helper on every element, creating a carried memory dependence
// the compiler cannot hoist (the source is a call). Selective re-execution
// still recovers the independent transform work around it.
func BuildBzip2(scale int) *ir.Program {
	if scale < 1 {
		scale = 1
	}
	block := int64(2200 * scale)

	rng := newRand(0xB217)
	pb := ir.NewProgramBuilder("main")
	arrayGlobal(pb, "data", block, func(i int64) int64 { return rng.intn(256) })
	pb.AddGlobal("xform", block+8)
	pb.AddGlobal("crc", 2)
	arrayGlobal(pb, "mtf", 256, func(i int64) int64 { return i })

	// updateCRC(x) -> crc: load-modify-store on the global CRC — the
	// indirect global update the paper blames.
	{
		b := ir.NewFuncBuilder("updateCRC", 1)
		x := b.Param(0)
		g, v := b.NewReg(), b.NewReg()
		b.Block("entry")
		b.GAddr(g, "crc")
		b.Load(v, g, 0)
		b.ALU(ir.Xor, v, v, x)
		b.MulI(v, v, 33)
		b.Ret(v)
		pb.AddFunc(b.Done())
	}

	// transform(n) -> acc: the hot stream loop: big independent per-byte
	// transform chain + the CRC call. The call's global store feeds the
	// next iteration's load inside the callee: misspeculation on a small
	// tail of each window.
	{
		b := ir.NewFuncBuilder("transform", 1)
		n := b.Param(0)
		i, c, z, inB, outB, a, x, v, t, acc := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
		b.Block("entry")
		b.MovI(acc, 0)
		b.GAddr(inB, "data")
		b.GAddr(outB, "xform")
		b.Mov(i, n)
		b.MovI(z, 0)
		b.Jmp("head")
		b.Block("head")
		b.ALU(ir.CmpGT, c, i, z)
		b.Br(c, "body", "exit")
		b.Block("body")
		b.ALU(ir.Add, a, inB, i)
		b.Load(x, a, -1)
		b.Call(t, "updateCRC", x)         // global CRC read early, via call...
		emitSerialChain(b, v, x, 6, 0xB2) // independent transform work
		b.ALU(ir.Xor, v, v, t)            // half the chain depends on the CRC —
		emitSerialChain(b, v, v, 5, 0xB4) // the "hurt" the paper describes
		b.ALU(ir.Add, a, outB, i)
		b.Store(a, -1, v)
		b.GAddr(a, "crc")
		b.ALU(ir.Xor, t, t, v)
		b.Store(a, 0, t) // ...and written back late: the carried violation
		b.ALU(ir.Xor, acc, acc, t)
		b.AddI(i, i, -1)
		b.Jmp("head")
		b.Block("exit")
		b.Ret(acc)
		pb.AddFunc(b.Done())
	}

	// mtfPass(n) -> acc: move-to-front over a small table — an inherently
	// serial permutation shuffle (every iteration reads what the previous
	// one wrote).
	{
		b := ir.NewFuncBuilder("mtfPass", 1)
		n := b.Param(0)
		i, c, z, tabB, inB, a, x, idx, v, front, acc, m := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
		b.Block("entry")
		b.MovI(acc, 0)
		b.GAddr(tabB, "mtf")
		b.GAddr(inB, "data")
		b.MovI(m, 255)
		b.Mov(i, n)
		b.MovI(z, 0)
		b.Jmp("head")
		b.Block("head")
		b.ALU(ir.CmpGT, c, i, z)
		b.Br(c, "body", "exit")
		b.Block("body")
		b.ALU(ir.Add, a, inB, i)
		b.Load(x, a, -1)
		b.ALU(ir.And, idx, x, m)
		b.ALU(ir.Add, a, tabB, idx)
		b.Load(v, a, 0)
		b.Load(front, tabB, 0)
		b.Store(a, 0, front) // swap toward front: serial table mutation
		b.Store(tabB, 0, v)
		b.ALU(ir.Add, acc, acc, v)
		b.AddI(i, i, -1)
		b.Jmp("head")
		b.Block("exit")
		b.Ret(acc)
		pb.AddFunc(b.Done())
	}

	// rle(n) -> acc: run-length-ish output loop — parallel chain work with
	// a hoistable carried cursor.
	{
		b := ir.NewFuncBuilder("rle", 1)
		n := b.Param(0)
		i, c, z, outB, a, v, idx, acc := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
		st, run := b.NewReg(), b.NewReg()
		b.Block("entry")
		b.MovI(acc, 0)
		b.MovI(idx, 0)
		b.GAddr(outB, "xform")
		b.Mov(i, n)
		b.MovI(z, 0)
		b.Jmp("head")
		b.Block("head")
		b.ALU(ir.CmpGT, c, i, z)
		b.Br(c, "body", "exit")
		b.Block("body")
		b.GAddr(st, "crc")
		b.Load(run, st, 1) // run-length state read early...
		b.ALU(ir.Add, a, outB, idx)
		b.Load(v, a, 0)
		emitSerialChain(b, v, v, 6, 0x77)
		b.ALU(ir.Xor, acc, acc, v)
		b.MovI(a, 7)
		b.ALU(ir.And, a, v, a)
		b.Br(a, "norun", "runs")
		b.Block("runs")
		b.ALU(ir.Xor, run, run, v)
		b.Store(st, 1, run) // ...updated late on ~1/8 of symbols
		b.Jmp("norun")
		b.Block("norun")
		b.AddI(idx, idx, 1)
		b.AddI(i, i, -1)
		b.Jmp("head")
		b.Block("exit")
		b.Ret(acc)
		pb.AddFunc(b.Done())
	}

	addBallast(pb, "writeHeader", 8)
	{
		b := ir.NewFuncBuilder("main", 0)
		v, sum, n, half := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
		b.Block("entry")
		b.MovI(sum, 0)
		b.MovI(n, block)
		b.Call(v, "transform", n)
		b.ALU(ir.Xor, sum, sum, v)
		b.Mov(half, n)
		b.Call(v, "mtfPass", half)
		b.ALU(ir.Add, sum, sum, v)
		b.Call(v, "rle", n)
		b.ALU(ir.Xor, sum, sum, v)
		b.MovI(half, 1400)
		b.Call(v, "writeHeader", half)
		b.ALU(ir.Add, sum, sum, v)
		b.Ret(sum)
		pb.AddFunc(b.Done())
	}

	return pb.Done()
}
