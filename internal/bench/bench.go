// Package bench contains the ten synthetic workloads standing in for the
// SPECint2000 programs the paper evaluates (all except eon and perlbmk,
// excluded there for C++/syscall reasons). Real SPEC sources and reference
// inputs are unavailable in this reproduction, so each benchmark is built
// from scratch in the IR to reproduce the *loop-level characteristics* the
// paper reports for its namesake: loop coverage and body-size distribution
// (Figure 6), the number and coverage of SPT-parallelizable loops
// (Figure 7), dependence density / fast-commit behaviour (Figure 8), and
// the program-speedup character (Figure 9) — e.g. parser's linked-list free
// loops, gap's single skewed huge-body loop, crafty's short trip counts,
// bzip2's indirect global updates through calls, and vortex's near-total
// absence of loops. Workload data is generated deterministically from fixed
// seeds.
package bench

import (
	"fmt"

	"repro/internal/compiler"
	"repro/internal/ir"
)

// Benchmark is one synthetic SPECint2000 stand-in.
type Benchmark struct {
	Name        string
	Description string
	// Build constructs the program at the given scale (1 = default
	// evaluation size; tests use smaller scales). Programs are
	// deterministic for a given scale.
	Build func(scale int) *ir.Program
}

// All returns the ten benchmarks in the paper's order.
func All() []Benchmark {
	return []Benchmark{
		{"bzip2", "block-sorting compressor: streaming transforms whose inner loops update global state through helper calls", BuildBzip2},
		{"crafty", "chess engine: piece-list and attack loops with very short trip counts", BuildCrafty},
		{"gap", "group theory interpreter: one hot, highly skewed loop whose body occasionally explodes through interpreter calls", BuildGap},
		{"gcc", "optimizing compiler: many mid-size loops over insn lists and dataflow bitsets", BuildGCC},
		{"gzip", "LZ77 compressor: hash-chain match loops and literal encoding", BuildGzip},
		{"mcf", "network simplex: memory-bound arc-array sweeps and pointer chasing", BuildMCF},
		{"parser", "link grammar parser: linked-list build/free loops (the Figure 1 example) and tokenization", BuildParser},
		{"twolf", "standard-cell placement: cost evaluation sweeps with conditionally accepted swaps", BuildTwolf},
		{"vortex", "OO database: deep call trees with almost no loop coverage", BuildVortex},
		{"vpr", "FPGA place & route: grid cost sweeps and wavefront expansion", BuildVPR},
	}
}

// ByName returns the named benchmark.
func ByName(name string) (Benchmark, bool) {
	for _, b := range All() {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// Names returns all benchmark names in order.
func Names() []string {
	var out []string
	for _, b := range All() {
		out = append(out, b.Name)
	}
	return out
}

// CompilerOptions returns the per-benchmark SPT compiler configuration: the
// defaults everywhere, except gap, whose one hot loop needs the raised
// body-size limit the paper grants it (2500 instructions instead of 1000,
// Section 5.3).
func CompilerOptions(name string) compiler.Options {
	opts := compiler.DefaultOptions()
	if name == "gap" {
		opts.MaxBodySize = 2500
	}
	return opts
}

// Validate builds every benchmark at the given scale and validates it;
// useful as a smoke check for tooling.
func Validate(scale int) error {
	for _, b := range All() {
		p := b.Build(scale)
		if err := p.Validate(); err != nil {
			return fmt.Errorf("bench %s: %w", b.Name, err)
		}
	}
	return nil
}

// ---- shared IR emission helpers ----

// xorshift64 is the deterministic data generator used to fill globals.
type xorshift64 uint64

func newRand(seed uint64) *xorshift64 {
	x := xorshift64(seed | 1)
	return &x
}

func (x *xorshift64) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift64(v)
	return v
}

func (x *xorshift64) intn(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return int64(x.next() % uint64(n))
}

// arrayGlobal declares a global of n words filled by gen.
func arrayGlobal(pb *ir.ProgramBuilder, name string, n int64, gen func(i int64) int64) {
	init := make([]int64, n)
	for i := int64(0); i < n; i++ {
		init[i] = gen(i)
	}
	pb.AddGlobal(name, n, init...)
}

// emitSerialChain emits a serial dependence chain of ~2*depth single-cycle
// operations from src into dst — the low-ILP compute kernel shared by the
// benchmarks (scalar code rarely has more ILP than this).
func emitSerialChain(b *ir.FuncBuilder, dst, src ir.Reg, depth int, salt int64) {
	b.AddI(dst, src, salt)
	for k := 0; k < depth; k++ {
		b.MulI(dst, dst, 3)
		b.AddI(dst, dst, int64(k)^salt)
	}
}

// addBallast registers a recursive straight-line function named fn that
// burns roughly frames*(2*depth+8) dynamic instructions with *no loops* —
// the call-tree-shaped, unspeculatable work that keeps real programs' loop
// coverage below 100% (Figure 6).
func addBallast(pb *ir.ProgramBuilder, fn string, depth int) {
	b := ir.NewFuncBuilder(fn, 1)
	n := b.Param(0)
	c, z, v, w := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
	b.Block("entry")
	b.MovI(z, 0)
	b.ALU(ir.CmpGT, c, n, z)
	b.Br(c, "work", "done")
	b.Block("work")
	emitSerialChain(b, v, n, depth, 0x5A)
	b.AddI(w, n, -1)
	b.Call(w, fn, w)
	b.ALU(ir.Add, v, v, w)
	b.Ret(v)
	b.Block("done")
	b.Ret(z)
	pb.AddFunc(b.Done())
}

// addSerialLoop registers a function fn(n) running a fully serial loop: a
// load-chain-store recurrence through global cell (which must exist, >= 1
// word). It is profiled as a loop (Figure 6 coverage) but never selected —
// the unparallelizable share of the program.
func addSerialLoop(pb *ir.ProgramBuilder, fn, cell string, depth int) {
	b := ir.NewFuncBuilder(fn, 1)
	n := b.Param(0)
	i, c, z, g, v := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
	b.Block("entry")
	b.GAddr(g, cell)
	b.Mov(i, n)
	b.MovI(z, 0)
	b.Jmp("head")
	b.Block("head")
	b.ALU(ir.CmpGT, c, i, z)
	b.Br(c, "body", "exit")
	b.Block("body")
	b.Load(v, g, 0)
	emitSerialChain(b, v, v, depth, 0x6D)
	b.Store(g, 0, v)
	b.AddI(i, i, -1)
	b.Jmp("head")
	b.Block("exit")
	b.Ret(z)
	pb.AddFunc(b.Done())
}
