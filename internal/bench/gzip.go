package bench

import "repro/internal/ir"

// BuildGzip models SPECint2000 gzip (LZ77 compression): a hash-chain match
// loop with data-dependent short trips, a literal-encoding loop whose
// carried output index hoists cleanly, and a window-refill streaming loop.
func BuildGzip(scale int) *ir.Program {
	if scale < 1 {
		scale = 1
	}
	input := int64(2600 * scale)
	window := int64(4096)

	rng := newRand(0x6219)
	pb := ir.NewProgramBuilder("main")
	arrayGlobal(pb, "inbuf", input, func(i int64) int64 { return rng.intn(251) })
	pb.AddGlobal("outbuf", input*2+16)
	arrayGlobal(pb, "chain", window, func(i int64) int64 {
		// Short hash chains: each entry points a few slots back, ending at -1.
		if i < 8 || rng.intn(5) == 0 {
			return -1
		}
		return i - 1 - rng.intn(7)
	})
	pb.AddGlobal("state", 8)
	addSerialLoop(pb, "huffBuild", "state", 8)
	addBallast(pb, "flushBlock", 7)

	// matchLen(a, b) -> len: pure comparison chain.
	{
		b := ir.NewFuncBuilder("matchLen", 2)
		x, y := b.Param(0), b.Param(1)
		v := b.NewReg()
		b.Block("entry")
		b.ALU(ir.Xor, v, x, y)
		emitSerialChain(b, v, v, 4, 0x23)
		b.Ret(v)
		pb.AddFunc(b.Done())
	}

	// findMatch(pos) -> best: walk the hash chain for pos. The chain-next
	// load comes first (hoistable pointer chase); the trip count is short
	// and data dependent.
	{
		b := ir.NewFuncBuilder("findMatch", 1)
		pos := b.Param(0)
		cur, c, z, chB, a, nx, v, best := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
		m := b.NewReg()
		b.Block("entry")
		b.MovI(best, 0)
		b.MovI(z, 0)
		b.GAddr(chB, "chain")
		b.MovI(m, window-1)
		b.ALU(ir.And, cur, pos, m)
		b.Jmp("head")
		b.Block("head")
		b.ALU(ir.CmpGE, c, cur, z)
		b.Br(c, "body", "exit")
		b.Block("body")
		b.ALU(ir.Add, a, chB, cur)
		b.Load(nx, a, 0) // chain next first
		b.Call(v, "matchLen", cur, pos)
		b.ALU(ir.CmpGT, c, v, best)
		b.Br(c, "upd", "join")
		b.Block("upd")
		b.Mov(best, v)
		b.Jmp("join")
		b.Block("join")
		b.Mov(cur, nx)
		b.Jmp("head")
		b.Block("exit")
		b.Ret(best)
		pb.AddFunc(b.Done())
	}

	// encode(n) -> acc: literal encoding — heavy per-symbol chain, output
	// written at a carried index whose update hoists pre-fork, making
	// consecutive symbols fully parallel.
	{
		b := ir.NewFuncBuilder("encode", 1)
		n := b.Param(0)
		i, c, z, inB, outB, a, sym, v, idx, acc := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
		stB, bits, three := b.NewReg(), b.NewReg(), b.NewReg()
		b.Block("entry")
		b.MovI(acc, 0)
		b.MovI(idx, 0)
		b.MovI(three, 3)
		b.GAddr(stB, "state")
		b.GAddr(inB, "inbuf")
		b.GAddr(outB, "outbuf")
		b.Mov(i, n)
		b.MovI(z, 0)
		b.Jmp("head")
		b.Block("head")
		b.ALU(ir.CmpGT, c, i, z)
		b.Br(c, "body", "exit")
		b.Block("body")
		b.ALU(ir.Add, a, inB, i)
		b.Load(sym, a, -1)
		b.Load(bits, stB, 1) // bit buffer read early in the iteration...
		emitSerialChain(b, v, sym, 6, 0x3D)
		b.ALU(ir.Add, a, outB, idx)
		b.Store(a, 0, v)
		b.AddI(idx, idx, 2) // carried output cursor: cheap hoist
		b.ALU(ir.Xor, acc, acc, v)
		b.ALU(ir.And, c, sym, three)
		b.Br(c, "nospill", "spill")
		b.Block("spill")
		b.ALU(ir.Add, bits, bits, v)
		b.Store(stB, 1, bits) // ...spilled late on ~1/4 of symbols
		b.Jmp("nospill")
		b.Block("nospill")
		b.AddI(i, i, -1)
		b.Jmp("head")
		b.Block("exit")
		b.Ret(acc)
		pb.AddFunc(b.Done())
	}

	// refill(n): streaming window copy — memory bandwidth bound.
	{
		b := ir.NewFuncBuilder("refill", 1)
		n := b.Param(0)
		i, c, z, inB, outB, a, v := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
		b.Block("entry")
		b.GAddr(inB, "inbuf")
		b.GAddr(outB, "outbuf")
		b.Mov(i, n)
		b.MovI(z, 0)
		b.Jmp("head")
		b.Block("head")
		b.ALU(ir.CmpGT, c, i, z)
		b.Br(c, "body", "exit")
		b.Block("body")
		b.ALU(ir.Add, a, inB, i)
		b.Load(v, a, -1)
		b.AddI(v, v, 1)
		b.ALU(ir.Add, a, outB, i)
		b.Store(a, -1, v)
		b.AddI(i, i, -1)
		b.Jmp("head")
		b.Block("exit")
		b.Ret(z)
		pb.AddFunc(b.Done())
	}

	// main: deflate-ish phases. The match loop runs per position on a
	// stride, encode covers the input, refill streams the window.
	{
		b := ir.NewFuncBuilder("main", 0)
		i, c, z, v, sum, n, pos := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
		b.Block("entry")
		b.MovI(sum, 0)
		b.MovI(z, 0)
		b.MovI(i, input/8)
		b.Jmp("match.head")
		b.Block("match.head")
		b.ALU(ir.CmpGT, c, i, z)
		b.Br(c, "match.body", "match.exit")
		b.Block("match.body")
		b.MulI(pos, i, 8)
		b.Call(v, "findMatch", pos)
		b.ALU(ir.Add, sum, sum, v)
		b.AddI(i, i, -1)
		b.Jmp("match.head")
		b.Block("match.exit")
		b.MovI(n, input)
		b.Call(v, "encode", n)
		b.ALU(ir.Xor, sum, sum, v)
		b.Call(v, "refill", n)
		b.MovI(n, 5200)
		b.Call(v, "huffBuild", n)
		b.MovI(n, 2000)
		b.Call(v, "flushBlock", n)
		b.ALU(ir.Add, sum, sum, v)
		b.Ret(sum)
		pb.AddFunc(b.Done())
	}

	return pb.Done()
}
