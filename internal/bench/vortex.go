package bench

import "repro/internal/ir"

// BuildVortex models SPECint2000 vortex (an object-oriented database):
// Figure 6 shows it has almost no loop coverage — its time is in deep call
// trees doing straight-line object manipulation. The paper expects (and
// measures) no SPT speedup; so do we. The tiny loops that do exist have
// 2-3 iteration trips.
func BuildVortex(scale int) *ir.Program {
	if scale < 1 {
		scale = 1
	}
	transactions := int64(90 * scale)

	rng := newRand(0x0D8)
	pb := ir.NewProgramBuilder("main")
	arrayGlobal(pb, "objects", 2048, func(i int64) int64 { return rng.intn(1 << 16) })
	pb.AddGlobal("index", 256)
	pb.AddGlobal("journal", 1024)

	// field helpers: straight-line object accessors (no loops).
	{
		b := ir.NewFuncBuilder("getField", 2)
		obj, f := b.Param(0), b.Param(1)
		g, a, v, m := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
		b.Block("entry")
		b.GAddr(g, "objects")
		b.MovI(m, 2047)
		b.ALU(ir.Add, a, obj, f)
		b.ALU(ir.And, a, a, m)
		b.ALU(ir.Add, a, g, a)
		b.Load(v, a, 0)
		emitSerialChain(b, v, v, 4, 0x15)
		b.Ret(v)
		pb.AddFunc(b.Done())
	}
	{
		b := ir.NewFuncBuilder("putField", 2)
		obj, v := b.Param(0), b.Param(1)
		g, a, m, t := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
		b.Block("entry")
		b.GAddr(g, "objects")
		b.MovI(m, 2047)
		b.ALU(ir.And, a, obj, m)
		b.ALU(ir.Add, a, g, a)
		emitSerialChain(b, t, v, 3, 0x51)
		b.Store(a, 0, t)
		b.Ret(t)
		pb.AddFunc(b.Done())
	}

	// validate(obj) -> ok: deep straight-line checks through nested calls.
	{
		b := ir.NewFuncBuilder("checkA", 1)
		x := b.Param(0)
		f, v, w := b.NewReg(), b.NewReg(), b.NewReg()
		b.Block("entry")
		b.MovI(f, 3)
		b.Call(v, "getField", x, f)
		emitSerialChain(b, w, v, 6, 0x33)
		b.Ret(w)
		pb.AddFunc(b.Done())
	}
	{
		b := ir.NewFuncBuilder("checkB", 1)
		x := b.Param(0)
		v, w := b.NewReg(), b.NewReg()
		b.Block("entry")
		b.Call(v, "checkA", x)
		emitSerialChain(b, w, v, 6, 0x35)
		b.Ret(w)
		pb.AddFunc(b.Done())
	}
	{
		b := ir.NewFuncBuilder("validate", 1)
		x := b.Param(0)
		v, w := b.NewReg(), b.NewReg()
		b.Block("entry")
		b.Call(v, "checkB", x)
		b.Call(w, "checkA", v)
		b.ALU(ir.Xor, v, v, w)
		b.Ret(v)
		pb.AddFunc(b.Done())
	}

	// commit(obj, v): journal write + index touch through a trip-2 loop.
	{
		b := ir.NewFuncBuilder("commit", 2)
		obj, val := b.Param(0), b.Param(1)
		g, a, i, c, z, m, t := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
		b.Block("entry")
		b.GAddr(g, "journal")
		b.MovI(m, 1023)
		b.MovI(i, 2) // trip count 2: useless for SPT
		b.MovI(z, 0)
		b.Jmp("head")
		b.Block("head")
		b.ALU(ir.CmpGT, c, i, z)
		b.Br(c, "body", "exit")
		b.Block("body")
		b.ALU(ir.Add, a, obj, i)
		b.ALU(ir.And, a, a, m)
		b.ALU(ir.Add, a, g, a)
		emitSerialChain(b, t, val, 2, 0x59)
		b.Store(a, 0, t)
		b.AddI(i, i, -1)
		b.Jmp("head")
		b.Block("exit")
		b.Call(t, "putField", obj, val)
		b.Ret(t)
		pb.AddFunc(b.Done())
	}

	// main: a long straight-line transaction sequence driven by recursion
	// rather than a hot loop: process(t) recursively handles transaction
	// batches, so even the driver contributes no loop coverage.
	{
		b := ir.NewFuncBuilder("process", 1)
		t := b.Param(0)
		c, z, v, w, x := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
		b.Block("entry")
		b.MovI(z, 0)
		b.ALU(ir.CmpGT, c, t, z)
		b.Br(c, "work", "done")
		b.Block("work")
		b.MulI(x, t, 37)
		b.Call(v, "validate", x)
		b.Call(w, "commit", x, v)
		b.ALU(ir.Xor, v, v, w)
		b.AddI(x, t, -1)
		b.Call(w, "process", x)
		b.ALU(ir.Add, v, v, w)
		b.Ret(v)
		b.Block("done")
		b.Ret(z)
		pb.AddFunc(b.Done())
	}
	{
		b := ir.NewFuncBuilder("main", 0)
		v, n := b.NewReg(), b.NewReg()
		b.Block("entry")
		b.MovI(n, transactions)
		b.Call(v, "process", n)
		b.Ret(v)
		pb.AddFunc(b.Done())
	}

	return pb.Done()
}
