package bench

import "repro/internal/ir"

// BuildGCC models SPECint2000 gcc: an optimizing compiler's time is spread
// across many mid-size loops — dataflow bitset sweeps, insn-list walks with
// conditionally updated state, and register-conflict scans. A good number
// of them speculate well, which is why the paper highlights gcc's 14.3%
// speedup as notable for a "known hard-to-parallelize" program.
func BuildGCC(scale int) *ir.Program {
	if scale < 1 {
		scale = 1
	}
	words := int64(512)
	insns := int64(900)
	passes := int64(4 * scale)

	rng := newRand(0xCC00 + 7)
	pb := ir.NewProgramBuilder("main")
	arrayGlobal(pb, "genSet", words, func(i int64) int64 { return int64(rng.next()) })
	arrayGlobal(pb, "killSet", words, func(i int64) int64 { return int64(rng.next()) })
	pb.AddGlobal("inSet", words)
	pb.AddGlobal("outSet", words)
	arrayGlobal(pb, "insnNext", insns, func(i int64) int64 {
		if i+1 >= insns {
			return -1
		}
		return i + 1
	})
	arrayGlobal(pb, "insnKind", insns, func(i int64) int64 { return rng.intn(8) })
	arrayGlobal(pb, "insnCost", insns, func(i int64) int64 { return rng.intn(64) + 1 })
	pb.AddGlobal("conflicts", 256)
	pb.AddGlobal("counters", 16)
	addBallast(pb, "emitAsm", 8)

	// dataflowSweep(n) -> acc: out[i] = gen[i] | (in[i] &^ kill[i]) with a
	// little latency chain — independent iterations.
	{
		b := ir.NewFuncBuilder("dataflowSweep", 1)
		n := b.Param(0)
		i, c, z := b.NewReg(), b.NewReg(), b.NewReg()
		genB, killB, inB, outB := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
		a, g, k, in, out, acc := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
		b.Block("entry")
		b.MovI(acc, 0)
		b.GAddr(genB, "genSet")
		b.GAddr(killB, "killSet")
		b.GAddr(inB, "inSet")
		b.GAddr(outB, "outSet")
		b.Mov(i, n)
		b.MovI(z, 0)
		b.Jmp("head")
		b.Block("head")
		b.ALU(ir.CmpGT, c, i, z)
		b.Br(c, "body", "exit")
		b.Block("body")
		// Four bitset words per basic block: a mid-size Figure 6 body.
		for w := 0; w < 4; w++ {
			off := int64(-1 - w)
			b.ALU(ir.Add, a, genB, i)
			b.Load(g, a, off)
			b.ALU(ir.Add, a, killB, i)
			b.Load(k, a, off)
			b.ALU(ir.Add, a, inB, i)
			b.Load(in, a, off)
			b.ALU(ir.Xor, k, k, in)
			b.ALU(ir.And, k, k, in)
			b.ALU(ir.Or, out, g, k)
			emitSerialChain(b, out, out, 3, int64(0x19+w))
			b.ALU(ir.Add, a, outB, i)
			b.Store(a, off, out)
			b.ALU(ir.Xor, acc, acc, out)
		}
		b.AddI(i, i, -4)
		b.Jmp("head")
		b.Block("exit")
		b.Ret(acc)
		pb.AddFunc(b.Done())
	}

	// walkInsns(start) -> acc: insn-list walk with a guarded counter update
	// on "interesting" insns — the classic compiler list loop: next index
	// loads first (hoistable), the guarded global update violates rarely.
	{
		b := ir.NewFuncBuilder("walkInsns", 1)
		cur := b.Param(0)
		c, z, nextB, kindB, costB, cntB := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
		a, nx, kind, cost, v, acc, seven, w := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
		b.Block("entry")
		b.MovI(acc, 0)
		b.MovI(z, 0)
		b.MovI(seven, 7)
		b.GAddr(nextB, "insnNext")
		b.GAddr(kindB, "insnKind")
		b.GAddr(costB, "insnCost")
		b.GAddr(cntB, "counters")
		b.Jmp("head")
		b.Block("head")
		b.ALU(ir.CmpGE, c, cur, z)
		b.Br(c, "body", "exit")
		b.Block("body")
		b.ALU(ir.Add, a, nextB, cur)
		b.Load(nx, a, 0)   // next insn first: hoistable chase
		b.Load(w, cntB, 2) // pass statistics read early...
		b.ALU(ir.Add, a, kindB, cur)
		b.Load(kind, a, 0)
		b.ALU(ir.Add, a, costB, cur)
		b.Load(cost, a, 0)
		emitSerialChain(b, v, cost, 5, 0x67)
		b.ALU(ir.Add, acc, acc, v)
		b.ALU(ir.CmpEQ, c, kind, seven)
		b.Br(c, "mark", "join")
		b.Block("mark")
		b.AddI(w, w, 1)
		b.Store(cntB, 2, w) // ...updated late on ~1/8 of insns
		b.Jmp("join")
		b.Block("join")
		b.Mov(cur, nx)
		b.Jmp("head")
		b.Block("exit")
		b.Ret(acc)
		pb.AddFunc(b.Done())
	}

	// conflictScan(n) -> acc: register-allocation conflict counting with a
	// serial accumulator through memory — a poor SPT candidate kept for
	// realism.
	{
		b := ir.NewFuncBuilder("conflictScan", 1)
		n := b.Param(0)
		i, c, z, g, a, v, idx, m := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
		b.Block("entry")
		b.GAddr(g, "conflicts")
		b.MovI(m, 255)
		b.Mov(i, n)
		b.MovI(z, 0)
		b.Jmp("head")
		b.Block("head")
		b.ALU(ir.CmpGT, c, i, z)
		b.Br(c, "body", "exit")
		b.Block("body")
		b.Load(v, g, 0) // serial dependence through conflicts[0]
		emitSerialChain(b, v, v, 3, 0x2F)
		b.Store(g, 0, v)
		b.ALU(ir.And, idx, v, m)
		b.ALU(ir.Add, a, g, idx)
		b.Load(idx, a, 0)
		b.AddI(idx, idx, 1)
		b.Store(a, 0, idx)
		b.AddI(i, i, -1)
		b.Jmp("head")
		b.Block("exit")
		b.Ret(z)
		pb.AddFunc(b.Done())
	}

	// main: alternate passes over the IR.
	{
		b := ir.NewFuncBuilder("main", 0)
		s, c, z, n, v, sum, st := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
		b.Block("entry")
		b.MovI(sum, 0)
		b.MovI(s, passes)
		b.MovI(z, 0)
		b.Jmp("outer.head")
		b.Block("outer.head")
		b.ALU(ir.CmpGT, c, s, z)
		b.Br(c, "outer.body", "outer.exit")
		b.Block("outer.body")
		b.MovI(n, words)
		b.Call(v, "dataflowSweep", n)
		b.ALU(ir.Xor, sum, sum, v)
		b.MovI(st, 0)
		b.Call(v, "walkInsns", st)
		b.ALU(ir.Add, sum, sum, v)
		b.AddI(s, s, -1)
		b.Jmp("outer.head")
		b.Block("outer.exit")
		b.MovI(n, 900*passes)
		b.Call(v, "conflictScan", n)
		b.MovI(n, 900*passes)
		b.Call(v, "emitAsm", n)
		b.Ret(sum)
		pb.AddFunc(b.Done())
	}

	return pb.Done()
}
