package bench

import "repro/internal/ir"

// BuildParser models SPECint2000 parser (link grammar parser): sentences
// are tokenized, a linked list of clauses is built per sentence, evaluated,
// and then freed node by node — the free loop is exactly the Figure 1
// example whose next-pointer chase the SPT compiler hoists pre-fork. A
// free-list counter updated once per iteration provides the
// timing-dependent memory dependence that makes some windows violate while
// most speculative instructions remain correct (Section 3's 95%-correct
// observation).
func BuildParser(scale int) *ir.Program {
	if scale < 1 {
		scale = 1
	}
	sentences := int64(12 * scale)
	tokensPer := int64(48)
	total := sentences * tokensPer

	rng := newRand(0x9A25)
	pb := ir.NewProgramBuilder("main")
	arrayGlobal(pb, "tokens", total, func(i int64) int64 { return rng.intn(997) + 1 })
	pb.AddGlobal("dict", 512)
	pb.AddGlobal("stats", 8)
	pb.AddGlobal("serialCell", 2)
	addSerialLoop(pb, "rehash", "serialCell", 6)
	addBallast(pb, "printReport", 7)

	// work(node) -> value: evaluate one clause node (loads, serial chain,
	// store back). Impure: keeps the node load in the free loop from being
	// reordered below it, as in the paper's example.
	{
		b := ir.NewFuncBuilder("work", 1)
		node := b.Param(0)
		v, t := b.NewReg(), b.NewReg()
		b.Block("entry")
		b.Load(v, node, 0)
		emitSerialChain(b, t, v, 9, 0x11)
		b.Store(node, 0, t)
		b.Ret(t)
		pb.AddFunc(b.Done())
	}

	// hash(x) -> bucket: pure helper used by tokenization.
	{
		b := ir.NewFuncBuilder("hash", 1)
		x := b.Param(0)
		h, t := b.NewReg(), b.NewReg()
		b.Block("entry")
		b.MulI(h, x, 2654435761)
		b.MovI(t, 23)
		b.ALU(ir.Shr, h, h, t)
		b.MovI(t, 511)
		b.ALU(ir.And, h, h, t)
		b.Ret(h)
		pb.AddFunc(b.Done())
	}

	// tokenize(base, n) -> checksum: per-token serial chain plus a guarded
	// dictionary touch — a mostly-parallel SPT candidate.
	{
		b := ir.NewFuncBuilder("tokenize", 2)
		base, n := b.Param(0), b.Param(1)
		i, c, z, tok, v, d, sum, one := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
		addr := b.NewReg()
		b.Block("entry")
		b.MovI(sum, 0)
		b.MovI(one, 1)
		b.Mov(i, n)
		b.MovI(z, 0)
		b.Jmp("head")
		b.Block("head")
		b.ALU(ir.CmpGT, c, i, z)
		b.Br(c, "body", "exit")
		b.Block("body")
		b.ALU(ir.Add, addr, base, i)
		b.Load(tok, addr, -1) // token i-1
		emitSerialChain(b, v, tok, 7, 0x31)
		b.ALU(ir.And, d, tok, one)
		b.Br(d, "dict", "join")
		b.Block("dict")
		b.Call(d, "hash", tok)
		b.GAddr(addr, "dict")
		b.ALU(ir.Add, addr, addr, d)
		b.Load(d, addr, 0)
		b.ALU(ir.Add, d, d, one)
		b.Store(addr, 0, d)
		b.Jmp("join")
		b.Block("join")
		b.ALU(ir.Xor, sum, sum, v)
		b.AddI(i, i, -1)
		b.Jmp("head")
		b.Block("exit")
		b.Ret(sum)
		pb.AddFunc(b.Done())
	}

	// buildlist(base, n) -> head: allocate a clause node per token. The
	// carried head pointer flows through Alloc, so this loop stays
	// sequential (allocation order is architectural state).
	{
		b := ir.NewFuncBuilder("buildlist", 2)
		base, n := b.Param(0), b.Param(1)
		i, c, z, head, node, tok, addr := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
		b.Block("entry")
		b.MovI(head, 0)
		b.Mov(i, n)
		b.MovI(z, 0)
		b.Jmp("head")
		b.Block("head")
		b.ALU(ir.CmpGT, c, i, z)
		b.Br(c, "body", "exit")
		b.Block("body")
		b.ALU(ir.Add, addr, base, i)
		b.Load(tok, addr, -1)
		b.AllocI(node, 2)
		b.Store(node, 0, tok)  // value
		b.Store(node, 1, head) // next
		b.Mov(head, node)
		b.AddI(i, i, -1)
		b.Jmp("head")
		b.Block("exit")
		b.Ret(head)
		pb.AddFunc(b.Done())
	}

	// evaluate(head) -> sum: list walk calling work on every node. The
	// next-pointer load is first in the body (Figure 1's hoistable shape).
	{
		b := ir.NewFuncBuilder("evaluate", 1)
		cNode := b.Param(0)
		next, c, z, v, sum := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
		b.Block("entry")
		b.MovI(sum, 0)
		b.MovI(z, 0)
		b.Jmp("head")
		b.Block("head")
		b.ALU(ir.CmpNE, c, cNode, z)
		b.Br(c, "body", "exit")
		b.Block("body")
		b.Load(next, cNode, 1) // c1 = c->next (hoist candidate slice root)
		b.Call(v, "work", cNode)
		b.ALU(ir.Add, sum, sum, v)
		b.Mov(cNode, next) // c = c1
		b.Jmp("head")
		b.Block("exit")
		b.Ret(sum)
		pb.AddFunc(b.Done())
	}

	// freelist(head): Figure 1(a) verbatim — walk and free, with a free
	// counter in global memory whose once-per-iteration update creates the
	// runtime-timing memory dependence.
	{
		b := ir.NewFuncBuilder("freelist", 1)
		cNode := b.Param(0)
		next, c, z, v, g, t, cnt, seven := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
		b.Block("entry")
		b.MovI(z, 0)
		b.MovI(seven, 7)
		b.Jmp("head")
		b.Block("head")
		b.ALU(ir.CmpNE, c, cNode, z)
		b.Br(c, "body", "exit")
		b.Block("body")
		b.Load(next, cNode, 1) // c1 = c->next (Figure 1's hoistable chase)
		b.GAddr(g, "stats")
		b.Load(cnt, g, 0) // free-list head read — early in the iteration
		b.Load(v, cNode, 0)
		emitSerialChain(b, t, v, 12, 0x55) // free_Tconnector-ish work
		b.Free(cNode)
		b.ALU(ir.And, c, v, seven)
		b.Br(c, "bump", "skip") // most nodes touch the free-list bookkeeping
		b.Block("bump")
		b.ALU(ir.Add, cnt, cnt, t)
		b.Store(g, 0, cnt) // ...with a late store: the Figure 1 violations
		b.Jmp("skip")
		b.Block("skip")
		b.Mov(cNode, next)
		b.Jmp("head")
		b.Block("exit")
		b.Ret(z)
		pb.AddFunc(b.Done())
	}

	// main: per-sentence pipeline.
	{
		b := ir.NewFuncBuilder("main", 0)
		s, c, z, base, n, sum, v, head := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
		b.Block("entry")
		b.MovI(sum, 0)
		b.MovI(n, tokensPer)
		b.MovI(s, sentences)
		b.MovI(z, 0)
		b.Jmp("outer.head")
		b.Block("outer.head")
		b.ALU(ir.CmpGT, c, s, z)
		b.Br(c, "outer.body", "outer.exit")
		b.Block("outer.body")
		b.GAddr(base, "tokens")
		b.AddI(v, s, -1)
		b.MulI(v, v, tokensPer)
		b.ALU(ir.Add, base, base, v)
		b.Call(v, "tokenize", base, n)
		b.ALU(ir.Xor, sum, sum, v)
		b.Call(head, "buildlist", base, n)
		b.Call(v, "evaluate", head)
		b.ALU(ir.Add, sum, sum, v)
		b.Call(v, "freelist", head)
		b.AddI(s, s, -1)
		b.Jmp("outer.head")
		b.Block("outer.exit")
		b.MovI(v, 150*sentences)
		b.Call(v, "rehash", v)
		b.MovI(v, 220*sentences)
		b.Call(v, "printReport", v)
		b.Ret(sum)
		pb.AddFunc(b.Done())
	}

	p := pb.Done()
	return p
}
