package ddg

import (
	"sort"

	"repro/internal/ir"
)

// Slice is the backward hoist slice of one violation-candidate definition:
// the set of instructions that must move (or, for guard branches, be
// copied) into the pre-fork region so that the candidate's next-iteration
// value is available before SPT_FORK (Sections 4.2–4.3 of the paper).
type Slice struct {
	// OK reports whether hoisting the candidate is legal: every needed
	// instruction is pure or a load that no possibly-earlier store, call
	// or heap operation can interfere with, and every consumed value has a
	// unique in-iteration definition (or is live-in at the start-point).
	OK bool
	// Instrs lists the slice's instruction ids in iteration order,
	// including the candidate itself and any copied guard branches.
	Instrs []int
	// Guards marks the subset of Instrs that are Br instructions copied to
	// preserve control dependences.
	Guards map[int]bool
	// Size is the summed base latency of the slice — the pre-fork size
	// contribution used by the size-bounding function.
	Size int
}

// SliceOf computes (and caches) the hoist slice of candidate definition d.
func (a *Analysis) SliceOf(d int) *Slice {
	if s, ok := a.sliceCache[d]; ok {
		return s
	}
	s := a.buildSlice(d)
	a.sliceCache[d] = s
	return s
}

func (a *Analysis) buildSlice(d int) *Slice {
	set := map[int]bool{}
	guards := map[int]bool{}
	work := []int{d}
	fail := &Slice{OK: false}
	for len(work) > 0 {
		m := work[len(work)-1]
		work = work[:len(work)-1]
		if set[m] {
			continue
		}
		set[m] = true
		in := a.F.InstrByID(m)

		if !a.hoistableOp(in, guards[m]) {
			return fail
		}
		if a.FirstIterUnsafe(m) {
			// While-shaped loops execute the header once before the first
			// iteration; header-resident values have no pre-loop init
			// point, so they cannot be re-bound through a temp.
			return fail
		}
		if in.Op == ir.Load && !a.loadMotionLegal(m) {
			return fail
		}

		// Data sources: each consumed register must have a unique
		// in-iteration definition or be live-in at the start-point.
		var uses []ir.Reg
		uses = in.Uses(uses)
		for _, r := range uses {
			var defs []int
			for _, dep := range a.IntraReg[m] {
				if dep.Reg == r {
					defs = append(defs, dep.Def)
				}
			}
			ext := a.externalUse[m][r]
			switch {
			case len(defs) == 0 && ext:
				// live-in: bound at the start-point, nothing to hoist
			case len(defs) == 1 && !ext:
				work = append(work, defs[0])
			default:
				return fail // path-dependent value: cannot recompute pre-fork
			}
		}

		// Control sources: branches guarding m are copied into the slice.
		// The transformation emits guard structure one level deep, so
		// nested guards make the slice invalid.
		cds := a.CtrlDeps[a.blockOf(m)]
		if guards[m] {
			if len(cds) != 0 {
				return fail // guard branch under another guard
			}
			continue
		}
		if len(cds) > 1 {
			return fail // multiply-guarded candidate code
		}
		for _, cd := range cds {
			br := a.F.Blocks[cd.Branch].Term()
			guards[br.ID] = true
			if !set[br.ID] {
				work = append(work, br.ID)
			}
		}
	}
	out := &Slice{OK: true, Guards: guards}
	for id := range set {
		out.Instrs = append(out.Instrs, id)
		out.Size += a.F.InstrByID(id).Op.Latency()
	}
	sort.Slice(out.Instrs, func(i, j int) bool { return a.Pos[out.Instrs[i]] < a.Pos[out.Instrs[j]] })
	return out
}

// hoistableOp reports whether the instruction may appear in a pre-fork
// slice. Pure computations and loads qualify; branches qualify only as
// copied guards. Stores, calls, heap operations and SPT hooks never move —
// moving them would change architectural state ordering, which the
// hardware only protects for *speculative* execution, not for the main
// thread's own pre-fork code.
func (a *Analysis) hoistableOp(in *ir.Instr, asGuard bool) bool {
	if in.Op == ir.Br {
		return asGuard
	}
	return in.Op.IsPure() || in.Op == ir.Load
}

// loadMotionLegal reports whether hoisting the load to the start-point is
// legal: no store or memory-writing call that may execute between the
// start-point and the load's original position may alias it.
func (a *Analysis) loadMotionLegal(m int) bool {
	for _, s := range a.Stores {
		if a.PossiblyBefore(s, m) && a.MayAlias(s, m) {
			return false
		}
	}
	for _, c := range a.Calls {
		if !a.PossiblyBefore(c, m) {
			continue
		}
		callee := a.F.InstrByID(c).Target
		if a.Eff[callee].WritesMem || a.Eff[callee].Heap {
			return false
		}
	}
	return true
}

// UnionSlices merges several slices, deduplicating instructions; it returns
// nil if any input slice is invalid.
func (a *Analysis) UnionSlices(ds []int) *Slice {
	set := map[int]bool{}
	guards := map[int]bool{}
	for _, d := range ds {
		s := a.SliceOf(d)
		if !s.OK {
			return nil
		}
		for _, id := range s.Instrs {
			set[id] = true
			if s.Guards[id] {
				guards[id] = true
			}
		}
	}
	out := &Slice{OK: true, Guards: guards}
	for id := range set {
		out.Instrs = append(out.Instrs, id)
		out.Size += a.F.InstrByID(id).Op.Latency()
	}
	sort.Slice(out.Instrs, func(i, j int) bool { return a.Pos[out.Instrs[i]] < a.Pos[out.Instrs[j]] })
	return out
}
