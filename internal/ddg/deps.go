package ddg

import (
	"sort"

	"repro/internal/cfg"
	"repro/internal/ir"
)

// External is the pseudo definition id representing a value that flows into
// the iteration from outside (the preheader on the first iteration, the
// previous iteration afterwards).
const External = -1

// RegDep is a register flow dependence between two instructions (ids within
// the function). For carried dependences Def executes in iteration i and Use
// in iteration i+1.
type RegDep struct {
	Def, Use int
	Reg      ir.Reg
}

// LoopShape classifies candidate loops.
type LoopShape int

const (
	// ShapeUnsupported marks loops the SPT compiler does not speculate on
	// (irreducible bodies, inner loops, multi-successor headers, ...).
	ShapeUnsupported LoopShape = iota
	// ShapeWhile is a top-tested loop: the header ends in a Br with one
	// in-loop successor (the body entry == start-point) and one exit.
	ShapeWhile
	// ShapeDo is a bottom-tested loop: the header is the body entry.
	ShapeDo
)

// Analysis bundles everything the cost model, partition search and
// transformation need to know about one candidate loop. Instruction order
// is *iteration order*: the start-point block first and — for while-shaped
// loops — the header test last, because relative to the speculative thread's
// start-point the next-iteration test executes at the end of the iteration.
type Analysis struct {
	F   *ir.Func
	G   *cfg.Graph
	L   *cfg.Loop
	Eff map[string]Effects

	Shape      LoopShape
	StartBlock int   // block index of the start-point
	BlockOrder []int // body blocks in iteration order
	Body       []int // instruction ids in iteration order
	Pos        map[int]int

	IntraReg   map[int][]RegDep // use id -> same-iteration reg deps
	CarriedReg []RegDep         // cross-iteration reg deps
	LiveIn     map[ir.Reg]bool  // regs read before any body def on some path

	Loads  []int // Load instruction ids, iteration order
	Stores []int // Store instruction ids, iteration order
	Calls  []int // Call instruction ids, iteration order

	CtrlDeps map[int][]cfg.CtrlDep // block -> intra-iteration control deps

	// GlobalSize reports the size in words of the named global (used by the
	// alias oracle to bound static offsets).
	GlobalSize func(name string) (int64, bool)

	blockPos    map[int]int // block index -> position in BlockOrder
	reach       map[int]map[int]bool
	externalUse map[int]map[ir.Reg]bool // use id -> regs whose value may be live-in
	addrCache   map[int]addrRoot
	sliceCache  map[int]*Slice
}

// Analyze computes the dependence analysis for loop l of function f within
// program p, or nil if the loop shape is unsupported. eff must come from
// ComputeEffects(p).
func Analyze(p *ir.Program, f *ir.Func, g *cfg.Graph, l *cfg.Loop, eff map[string]Effects) *Analysis {
	sizes := make(map[string]int64, len(p.Globals))
	for _, gl := range p.Globals {
		sizes[gl.Name] = gl.Size
	}
	a := &Analysis{
		F: f, G: g, L: l, Eff: eff,
		Pos:         map[int]int{},
		IntraReg:    map[int][]RegDep{},
		LiveIn:      map[ir.Reg]bool{},
		blockPos:    map[int]int{},
		externalUse: map[int]map[ir.Reg]bool{},
		GlobalSize: func(name string) (int64, bool) {
			sz, ok := sizes[name]
			return sz, ok
		},
	}
	if !a.classify() {
		return nil
	}
	a.orderBody()
	a.reachingDefs()
	a.CtrlDeps = cfg.LoopControlDepsAt(g, l, a.StartBlock)
	a.computeBlockReach()
	a.addrCache = map[int]addrRoot{}
	a.sliceCache = map[int]*Slice{}
	return a
}

// classify determines the loop shape and start block.
func (a *Analysis) classify() bool {
	if !a.L.IsInnermost() {
		return false
	}
	h := a.L.Header
	term := a.F.Blocks[h].Term()
	switch term.Op {
	case ir.Br:
		t1 := a.F.BlockIndex(term.Target)
		t2 := a.F.BlockIndex(term.Target2)
		in1, in2 := a.L.Contains(t1), a.L.Contains(t2)
		switch {
		case in1 && !in2 && t1 == h, in2 && !in1 && t2 == h:
			// Bottom-tested single-block loop: the branch is a latch, not a
			// pre-iteration test; the header IS the body start and never
			// executes before the first iteration.
			a.Shape = ShapeDo
			a.StartBlock = h
		case in1 && !in2:
			a.Shape = ShapeWhile
			a.StartBlock = t1
		case in2 && !in1:
			a.Shape = ShapeWhile
			a.StartBlock = t2
		case in1 && in2:
			// Header branches to two in-loop blocks: treat the header
			// itself as the start-point (do-shape with a leading branch).
			a.Shape = ShapeDo
			a.StartBlock = h
		default:
			return false
		}
	case ir.Jmp:
		a.Shape = ShapeDo
		a.StartBlock = h
	default:
		return false // Ret-terminated header
	}
	return true
}

// orderBody produces BlockOrder/Body in iteration order: a topological order
// of the body with the edges into StartBlock treated as the iteration
// boundary.
func (a *Analysis) orderBody() {
	// DFS postorder from StartBlock over in-loop edges, skipping edges that
	// re-enter StartBlock.
	var post []int
	seen := map[int]bool{a.StartBlock: true}
	var dfs func(b int)
	dfs = func(b int) {
		for _, s := range a.G.Succ[b] {
			if s == a.StartBlock || !a.L.Contains(s) || seen[s] {
				continue
			}
			seen[s] = true
			dfs(s)
		}
		post = append(post, b)
	}
	dfs(a.StartBlock)
	a.BlockOrder = make([]int, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		a.BlockOrder = append(a.BlockOrder, post[i])
	}
	for i, b := range a.BlockOrder {
		a.blockPos[b] = i
	}
	for _, b := range a.BlockOrder {
		blk := a.F.Blocks[b]
		for i := range blk.Instrs {
			in := &blk.Instrs[i]
			a.Pos[in.ID] = len(a.Body)
			a.Body = append(a.Body, in.ID)
			switch in.Op {
			case ir.Load:
				a.Loads = append(a.Loads, in.ID)
			case ir.Store:
				a.Stores = append(a.Stores, in.ID)
			case ir.Call:
				a.Calls = append(a.Calls, in.ID)
			}
		}
	}
}

// defSet is a tiny sorted set of def ids (External == -1 allowed).
type defSet []int

func (s defSet) has(x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

func (s defSet) add(x int) defSet {
	if s.has(x) {
		return s
	}
	s = append(s, x)
	sort.Ints(s)
	return s
}

func (s defSet) union(o defSet) defSet {
	for _, v := range o {
		s = s.add(v)
	}
	return s
}

// reachingDefs runs the per-register reaching-definition dataflow over the
// acyclic (iteration-order) view of the body and derives intra-iteration and
// carried register dependences plus the live-in set.
func (a *Analysis) reachingDefs() {
	nr := a.F.NumRegs
	nb := len(a.BlockOrder)
	in := make([][]defSet, nb)
	out := make([][]defSet, nb)
	for i := range in {
		in[i] = make([]defSet, nr)
		out[i] = make([]defSet, nr)
	}
	for r := 0; r < nr; r++ {
		in[0][r] = defSet{External}
	}
	// One forward pass in topological order suffices on the acyclic view.
	for bi, b := range a.BlockOrder {
		if bi > 0 {
			for r := 0; r < nr; r++ {
				var s defSet
				none := true
				for _, p := range a.G.Pred[b] {
					pp, ok := a.blockPos[p]
					if !ok || pp >= bi {
						continue // non-loop or boundary/back edge
					}
					s = s.union(out[pp][r])
					none = false
				}
				if none {
					s = defSet{External}
				}
				in[bi][r] = s
			}
		}
		cur := make([]defSet, nr)
		copy(cur, in[bi])
		blk := a.F.Blocks[b]
		var uses []ir.Reg
		for i := range blk.Instrs {
			inst := &blk.Instrs[i]
			uses = inst.Uses(uses[:0])
			for _, r := range uses {
				for _, d := range cur[r] {
					if d == External {
						a.LiveIn[r] = true
						m := a.externalUse[inst.ID]
						if m == nil {
							m = map[ir.Reg]bool{}
							a.externalUse[inst.ID] = m
						}
						m[r] = true
					} else {
						a.IntraReg[inst.ID] = append(a.IntraReg[inst.ID],
							RegDep{Def: d, Use: inst.ID, Reg: r})
					}
				}
			}
			if d := inst.Def(); d != ir.NoReg {
				cur[d] = defSet{inst.ID}
			}
		}
		out[bi] = cur
	}
	// Boundary out: defs reaching the edges back into StartBlock.
	boundary := make([]defSet, nr)
	for _, p := range a.G.Pred[a.StartBlock] {
		pp, ok := a.blockPos[p]
		if !ok {
			continue // preheader edge
		}
		for r := 0; r < nr; r++ {
			boundary[r] = boundary[r].union(out[pp][r])
		}
	}
	// Carried deps: uses whose reaching set includes External are fed by the
	// previous iteration's boundary defs.
	for bi, b := range a.BlockOrder {
		cur := make([]defSet, nr)
		copy(cur, in[bi])
		blk := a.F.Blocks[b]
		var uses []ir.Reg
		for i := range blk.Instrs {
			inst := &blk.Instrs[i]
			uses = inst.Uses(uses[:0])
			for _, r := range uses {
				if cur[r].has(External) {
					for _, d := range boundary[r] {
						if d != External {
							a.CarriedReg = append(a.CarriedReg,
								RegDep{Def: d, Use: inst.ID, Reg: r})
						}
					}
				}
			}
			if d := inst.Def(); d != ir.NoReg {
				cur[d] = defSet{inst.ID}
			}
		}
	}
	sort.Slice(a.CarriedReg, func(i, j int) bool {
		x, y := a.CarriedReg[i], a.CarriedReg[j]
		if x.Def != y.Def {
			return a.Pos[x.Def] < a.Pos[y.Def]
		}
		if x.Use != y.Use {
			return a.Pos[x.Use] < a.Pos[y.Use]
		}
		return x.Reg < y.Reg
	})
}

// computeBlockReach precomputes acyclic reachability between body blocks.
func (a *Analysis) computeBlockReach() {
	a.reach = map[int]map[int]bool{}
	for i := len(a.BlockOrder) - 1; i >= 0; i-- {
		b := a.BlockOrder[i]
		m := map[int]bool{}
		for _, s := range a.G.Succ[b] {
			sp, ok := a.blockPos[s]
			if !ok || sp <= i {
				continue
			}
			m[s] = true
			for k := range a.reach[s] {
				m[k] = true
			}
		}
		a.reach[b] = m
	}
}

// blockOf returns the block index holding instruction id.
func (a *Analysis) blockOf(id int) int {
	ref := a.F.Linear[id]
	return ref.Block
}

// PossiblyBefore reports whether instruction x may execute before
// instruction y within the same iteration (acyclic view).
func (a *Analysis) PossiblyBefore(x, y int) bool {
	bx, by := a.blockOf(x), a.blockOf(y)
	if bx == by {
		return a.Pos[x] < a.Pos[y]
	}
	return a.reach[bx][by]
}

// FirstIterUnsafe reports whether instruction id executes once before the
// first iteration (a header-resident instruction of a while-shaped loop):
// such definitions cannot participate in temp re-binding because the entry
// init block runs before the header's first execution.
func (a *Analysis) FirstIterUnsafe(id int) bool {
	return a.Shape == ShapeWhile && a.blockOf(id) == a.L.Header
}

// LiveInReads returns the registers that instruction id may read from the
// iteration-start state (i.e. values possibly produced by the previous
// iteration) — the reads the SPT register dependence checker would flag.
func (a *Analysis) LiveInReads(id int) []ir.Reg {
	m := a.externalUse[id]
	if len(m) == 0 {
		return nil
	}
	out := make([]ir.Reg, 0, len(m))
	for r := range m {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CarriedDefs returns the distinct defs that are sources of carried register
// dependences — the paper's register "violation candidates" — in iteration
// order.
func (a *Analysis) CarriedDefs() []int {
	seen := map[int]bool{}
	var out []int
	for _, d := range a.CarriedReg {
		if !seen[d.Def] {
			seen[d.Def] = true
			out = append(out, d.Def)
		}
	}
	sort.Slice(out, func(i, j int) bool { return a.Pos[out[i]] < a.Pos[out[j]] })
	return out
}
