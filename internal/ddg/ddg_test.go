package ddg

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/ir"
)

// analyzeFirstLoop builds the CFG and analysis for the first loop of the
// entry function.
func analyzeFirstLoop(t *testing.T, p *ir.Program) *Analysis {
	t.Helper()
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	f := p.EntryFunc()
	g, err := cfg.Build(f)
	if err != nil {
		t.Fatalf("cfg.Build: %v", err)
	}
	forest := cfg.FindLoops(g)
	if len(forest.Loops) == 0 {
		t.Fatal("no loops found")
	}
	eff := ComputeEffects(p)
	a := Analyze(p, f, g, forest.Loops[0], eff)
	if a == nil {
		t.Fatal("loop shape unsupported")
	}
	return a
}

// buildCounterLoop: while-shaped counted sum loop.
//
//	entry: i=n; s=0
//	head:  c = i>0 ; br c, body, exit
//	body:  s += i; i -= 1; jmp head
//	exit:  ret s
func buildCounterLoop() *ir.Program {
	b := ir.NewFuncBuilder("main", 0)
	i, s, c, z := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
	b.Block("entry")
	b.MovI(i, 100)
	b.MovI(s, 0)
	b.MovI(z, 0)
	b.Jmp("head")
	b.Block("head")
	b.ALU(ir.CmpGT, c, i, z)
	b.Br(c, "body", "exit")
	b.Block("body")
	b.ALU(ir.Add, s, s, i)
	b.AddI(i, i, -1)
	b.Jmp("head")
	b.Block("exit")
	b.Ret(s)
	return ir.NewProgramBuilder("main").AddFunc(b.Done()).Done()
}

func TestAnalyzeWhileShape(t *testing.T) {
	p := buildCounterLoop()
	a := analyzeFirstLoop(t, p)
	if a.Shape != ShapeWhile {
		t.Fatalf("shape = %v, want while", a.Shape)
	}
	f := p.EntryFunc()
	if a.StartBlock != f.BlockIndex("body") {
		t.Errorf("start block = %d, want body", a.StartBlock)
	}
	// Iteration order: body first, header last.
	if a.BlockOrder[0] != f.BlockIndex("body") ||
		a.BlockOrder[len(a.BlockOrder)-1] != f.BlockIndex("head") {
		t.Errorf("block order = %v", a.BlockOrder)
	}
}

// instrByOp returns the id of the n-th instruction with the given opcode in
// body order.
func instrByOp(a *Analysis, op ir.Op, n int) int {
	for _, id := range a.Body {
		if a.F.InstrByID(id).Op == op {
			if n == 0 {
				return id
			}
			n--
		}
	}
	return -1
}

func TestCarriedAndIntraDeps(t *testing.T) {
	p := buildCounterLoop()
	a := analyzeFirstLoop(t, p)
	addI := instrByOp(a, ir.AddI, 0) // i -= 1
	add := instrByOp(a, ir.Add, 0)   // s += i
	cmp := instrByOp(a, ir.CmpGT, 0) // header test

	// i -= 1 is a carried def feeding next iteration's s += i and i -= 1.
	carried := a.CarriedDefs()
	found := map[int]bool{}
	for _, d := range carried {
		found[d] = true
	}
	if !found[addI] || !found[add] {
		t.Errorf("carried defs = %v, want to include AddI(%d) and Add(%d)", carried, addI, add)
	}
	// The header test reads i *after* i -= 1 within the same iteration, so
	// that's an intra dep, not carried.
	intra := a.IntraReg[cmp]
	ok := false
	for _, d := range intra {
		if d.Def == addI && d.Reg == 1 /* unused check below replaces */ {
		}
		if d.Def == addI {
			ok = true
		}
	}
	if !ok {
		t.Errorf("header test should have intra dep on AddI; got %v", intra)
	}
	for _, d := range a.CarriedReg {
		if d.Def == addI && d.Use == cmp {
			t.Error("header test wrongly classified as carried use of AddI")
		}
	}
	// s and i are live-in at the start-point.
	if !a.LiveIn[ir.Reg(0)] || !a.LiveIn[ir.Reg(1)] {
		t.Errorf("LiveIn = %v, want r0 (i) and r1 (s)", a.LiveIn)
	}
}

func TestSliceOfInduction(t *testing.T) {
	p := buildCounterLoop()
	a := analyzeFirstLoop(t, p)
	addI := instrByOp(a, ir.AddI, 0)
	s := a.SliceOf(addI)
	if !s.OK {
		t.Fatal("induction update should be hoistable")
	}
	if len(s.Instrs) != 1 || s.Instrs[0] != addI {
		t.Errorf("slice = %v, want just the AddI", s.Instrs)
	}
	if s.Size != ir.AddI.Latency() {
		t.Errorf("size = %d", s.Size)
	}

	// The accumulator s += i has a carried self-dep; its slice includes only
	// itself (reads s live-in, i live-in).
	add := instrByOp(a, ir.Add, 0)
	s2 := a.SliceOf(add)
	if !s2.OK || len(s2.Instrs) != 1 {
		t.Errorf("accumulator slice = %+v", s2)
	}
}

// buildListFreeLoop models Figure 1(a): pointer chase + free.
//
//	head: c != 0 ? body : exit
//	body: c1 = [c+1]; call work(c); free c; c = c1; jmp head
func buildListFreeLoop() *ir.Program {
	w := ir.NewFuncBuilder("work", 1)
	v := w.NewReg()
	w.Block("entry")
	w.Load(v, w.Param(0), 0)
	w.AddI(v, v, 1)
	w.Store(w.Param(0), 0, v)
	w.Ret(v)
	work := w.Done()

	b := ir.NewFuncBuilder("main", 0)
	c, c1, cond, z, t0, n := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
	b.Block("entry")
	// Build a short list.
	b.MovI(c, 0)
	b.MovI(n, 4)
	b.Jmp("mk")
	b.Block("mk")
	b.MovI(cond, 0)
	b.ALU(ir.CmpGT, cond, n, cond)
	b.Br(cond, "mkbody", "head")
	b.Block("mkbody")
	b.AllocI(t0, 2)
	b.Store(t0, 0, n)
	b.Store(t0, 1, c)
	b.Mov(c, t0)
	b.AddI(n, n, -1)
	b.Jmp("mk")
	b.Block("head")
	b.MovI(z, 0)
	b.ALU(ir.CmpNE, cond, c, z)
	b.Br(cond, "body", "exit")
	b.Block("body")
	b.Load(c1, c, 1) // c1 = c->next  (violation-candidate slice root)
	b.Call(t0, "work", c)
	b.Free(c)
	b.Mov(c, c1)
	b.Jmp("head")
	b.Block("exit")
	b.Ret(z)
	return ir.NewProgramBuilder("main").AddFunc(b.Done()).AddFunc(work).Done()
}

// secondLoop returns the analysis of the loop headed at the given label.
func loopAt(t *testing.T, p *ir.Program, label string) *Analysis {
	t.Helper()
	f := p.EntryFunc()
	g, err := cfg.Build(f)
	if err != nil {
		t.Fatalf("cfg.Build: %v", err)
	}
	forest := cfg.FindLoops(g)
	eff := ComputeEffects(p)
	for _, l := range forest.Loops {
		if f.Blocks[l.Header].Label == label {
			a := Analyze(p, f, g, l, eff)
			if a == nil {
				t.Fatalf("loop at %s unsupported", label)
			}
			return a
		}
	}
	t.Fatalf("no loop headed at %s", label)
	return nil
}

func TestListFreeLoopSlice(t *testing.T) {
	p := buildListFreeLoop()
	a := loopAt(t, p, "head")

	// The carried def of c is "c = c1" (Mov); its slice pulls in the load
	// c1 = [c+1]. The load sits at the top of the body — before the call
	// and the free — so motion is legal, exactly as in Figure 1.
	f := p.EntryFunc()
	var movID int = -1
	for _, id := range a.Body {
		in := f.InstrByID(id)
		if in.Op == ir.Mov {
			movID = id
		}
	}
	if movID < 0 {
		t.Fatal("no Mov in loop body")
	}
	s := a.SliceOf(movID)
	if !s.OK {
		t.Fatal("pointer-chase slice should be hoistable (Figure 1 pattern)")
	}
	if len(s.Instrs) != 2 {
		t.Errorf("slice = %v, want load + mov", s.Instrs)
	}
	hasLoad := false
	for _, id := range s.Instrs {
		if f.InstrByID(id).Op == ir.Load {
			hasLoad = true
		}
	}
	if !hasLoad {
		t.Error("slice misses the next-pointer load")
	}
}

func TestLoadAfterStoreNotHoistable(t *testing.T) {
	// Loop body: store to unknown pointer, THEN load the carried next
	// pointer — the load cannot move above the may-aliasing store.
	b := ir.NewFuncBuilder("main", 0)
	c, c1, cond, z, v := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
	b.Block("entry")
	b.AllocI(c, 2)
	b.MovI(v, 7)
	b.Jmp("head")
	b.Block("head")
	b.MovI(z, 0)
	b.ALU(ir.CmpNE, cond, c, z)
	b.Br(cond, "body", "exit")
	b.Block("body")
	b.Store(c, 0, v)  // store via carried pointer (live-in root c)
	b.Load(c1, c, 1)  // load via same live-in root, different offset: no alias
	b.Store(c1, 0, v) // store via *different* root — blocks nothing behind it
	b.Mov(c, c1)
	b.Jmp("head")
	b.Block("exit")
	b.Ret(z)
	p := ir.NewProgramBuilder("main").AddFunc(b.Done()).Done()
	a := loopAt(t, p, "head")
	f := p.EntryFunc()
	var movID = -1
	for _, id := range a.Body {
		if f.InstrByID(id).Op == ir.Mov {
			movID = id
		}
	}
	s := a.SliceOf(movID)
	// Store [c+0] vs load [c+1]: same live-in root, different offsets — the
	// alias oracle proves disjointness, so the slice is still legal.
	if !s.OK {
		t.Error("offset-disjoint store should not block the load")
	}

	// Now make the first store offset 1 == the load offset: must block.
	b2 := ir.NewFuncBuilder("main", 0)
	c, c1, cond, z, v = b2.NewReg(), b2.NewReg(), b2.NewReg(), b2.NewReg(), b2.NewReg()
	b2.Block("entry")
	b2.AllocI(c, 2)
	b2.MovI(v, 7)
	b2.Jmp("head")
	b2.Block("head")
	b2.MovI(z, 0)
	b2.ALU(ir.CmpNE, cond, c, z)
	b2.Br(cond, "body", "exit")
	b2.Block("body")
	b2.Store(c, 1, v)
	b2.Load(c1, c, 1)
	b2.Mov(c, c1)
	b2.Jmp("head")
	b2.Block("exit")
	b2.Ret(z)
	p2 := ir.NewProgramBuilder("main").AddFunc(b2.Done()).Done()
	a2 := loopAt(t, p2, "head")
	f2 := p2.EntryFunc()
	movID = -1
	for _, id := range a2.Body {
		if f2.InstrByID(id).Op == ir.Mov {
			movID = id
		}
	}
	if s := a2.SliceOf(movID); s.OK {
		t.Error("aliasing store must block load hoisting")
	}
}

func TestCallBlocksLoadMotion(t *testing.T) {
	// A memory-writing call before the load blocks hoisting.
	w := ir.NewFuncBuilder("clobber", 1)
	v := w.NewReg()
	w.Block("entry")
	w.MovI(v, 1)
	w.Store(w.Param(0), 0, v)
	w.Ret(v)

	b := ir.NewFuncBuilder("main", 0)
	c, c1, cond, z, t0 := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
	b.Block("entry")
	b.AllocI(c, 2)
	b.Jmp("head")
	b.Block("head")
	b.MovI(z, 0)
	b.ALU(ir.CmpNE, cond, c, z)
	b.Br(cond, "body", "exit")
	b.Block("body")
	b.Call(t0, "clobber", c)
	b.Load(c1, c, 1)
	b.Mov(c, c1)
	b.Jmp("head")
	b.Block("exit")
	b.Ret(z)
	p := ir.NewProgramBuilder("main").AddFunc(b.Done()).AddFunc(w.Done()).Done()
	a := loopAt(t, p, "head")
	f := p.EntryFunc()
	movID := -1
	for _, id := range a.Body {
		if f.InstrByID(id).Op == ir.Mov {
			movID = id
		}
	}
	if s := a.SliceOf(movID); s.OK {
		t.Error("memory-writing call must block load hoisting")
	}
}

func TestGuardedCandidateSlice(t *testing.T) {
	// body: if (i&1) { p = p + 3 }  — carried def under a branch; the
	// slice must copy the guard and its condition computation.
	b := ir.NewFuncBuilder("main", 0)
	i, pr, cond, z, one, t0 := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
	b.Block("entry")
	b.MovI(i, 10)
	b.MovI(pr, 0)
	b.Jmp("head")
	b.Block("head")
	b.MovI(z, 0)
	b.ALU(ir.CmpGT, cond, i, z)
	b.Br(cond, "body", "exit")
	b.Block("body")
	b.MovI(one, 1)
	b.ALU(ir.And, t0, i, one)
	b.Br(t0, "then", "join")
	b.Block("then")
	b.AddI(pr, pr, 3)
	b.Jmp("join")
	b.Block("join")
	b.AddI(i, i, -1)
	b.Jmp("head")
	b.Block("exit")
	b.Ret(pr)
	p := ir.NewProgramBuilder("main").AddFunc(b.Done()).Done()
	a := loopAt(t, p, "head")
	f := p.EntryFunc()
	var prDef = -1
	for _, id := range a.Body {
		in := f.InstrByID(id)
		if in.Op == ir.AddI && in.Imm == 3 {
			prDef = id
		}
	}
	if prDef < 0 {
		t.Fatal("no guarded def found")
	}
	s := a.SliceOf(prDef)
	if !s.OK {
		t.Fatal("guarded candidate should be hoistable with branch copy")
	}
	guardCount := 0
	for _, id := range s.Instrs {
		if s.Guards[id] {
			guardCount++
			if f.InstrByID(id).Op != ir.Br {
				t.Error("guard is not a branch")
			}
		}
	}
	if guardCount != 1 {
		t.Errorf("guards = %d, want 1 (the if); slice: %v", guardCount, s.Instrs)
	}
	// Condition computation (And, MovI) must be in the slice.
	ops := map[ir.Op]bool{}
	for _, id := range s.Instrs {
		ops[f.InstrByID(id).Op] = true
	}
	if !ops[ir.And] || !ops[ir.MovI] {
		t.Errorf("slice misses guard condition computation: %v", s.Instrs)
	}
}

func TestEffects(t *testing.T) {
	pure := ir.NewFuncBuilder("pure", 1)
	v := pure.NewReg()
	pure.Block("entry")
	pure.AddI(v, pure.Param(0), 1)
	pure.Ret(v)

	writer := ir.NewFuncBuilder("writer", 1)
	w := writer.NewReg()
	writer.Block("entry")
	writer.MovI(w, 1)
	writer.Store(writer.Param(0), 0, w)
	writer.Ret(w)

	indirect := ir.NewFuncBuilder("indirect", 1)
	x := indirect.NewReg()
	indirect.Block("entry")
	indirect.Call(x, "writer", indirect.Param(0))
	indirect.Ret(x)

	m := ir.NewFuncBuilder("main", 0)
	r := m.NewReg()
	m.Block("entry")
	m.MovI(r, 5)
	m.Call(r, "indirect", r)
	m.Ret(r)

	p := ir.NewProgramBuilder("main").
		AddFunc(m.Done()).AddFunc(pure.Done()).AddFunc(writer.Done()).AddFunc(indirect.Done()).
		Done()
	eff := ComputeEffects(p)
	if eff["pure"].Impure() {
		t.Error("pure function marked impure")
	}
	if !eff["writer"].WritesMem {
		t.Error("writer not marked as writing memory")
	}
	if !eff["indirect"].WritesMem {
		t.Error("transitive write effect not propagated")
	}
	if !eff["main"].WritesMem {
		t.Error("main should inherit write effect")
	}
}

func TestEffectsRecursion(t *testing.T) {
	// Mutually recursive functions, one of which stores.
	fa := ir.NewFuncBuilder("a", 1)
	v := fa.NewReg()
	fa.Block("entry")
	fa.Call(v, "b", fa.Param(0))
	fa.Ret(v)

	fb := ir.NewFuncBuilder("b", 1)
	w := fb.NewReg()
	fb.Block("entry")
	fb.MovI(w, 0)
	fb.Store(fb.Param(0), 0, w)
	fb.Call(w, "a", fb.Param(0))
	fb.Ret(w)

	m := ir.NewFuncBuilder("main", 0)
	r := m.NewReg()
	m.Block("entry")
	m.MovI(r, 1)
	m.Call(r, "a", r)
	m.Ret(r)

	p := ir.NewProgramBuilder("main").AddFunc(m.Done()).AddFunc(fa.Done()).AddFunc(fb.Done()).Done()
	eff := ComputeEffects(p)
	if !eff["a"].WritesMem || !eff["b"].WritesMem {
		t.Error("recursive effect propagation failed")
	}
}

func TestUnionSlices(t *testing.T) {
	p := buildCounterLoop()
	a := analyzeFirstLoop(t, p)
	addI := instrByOp(a, ir.AddI, 0)
	add := instrByOp(a, ir.Add, 0)
	u := a.UnionSlices([]int{addI, add})
	if u == nil || !u.OK {
		t.Fatal("union of valid slices should be valid")
	}
	if len(u.Instrs) != 2 {
		t.Errorf("union = %v", u.Instrs)
	}
	if u.Size != ir.AddI.Latency()+ir.Add.Latency() {
		t.Errorf("union size = %d", u.Size)
	}
}

func TestNestedLoopRejected(t *testing.T) {
	// Outer loop containing an inner loop: outer must be rejected.
	b := ir.NewFuncBuilder("main", 0)
	i, j, c, z := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
	b.Block("entry")
	b.MovI(i, 3)
	b.Jmp("ohead")
	b.Block("ohead")
	b.MovI(z, 0)
	b.ALU(ir.CmpGT, c, i, z)
	b.Br(c, "obody", "exit")
	b.Block("obody")
	b.MovI(j, 3)
	b.Jmp("ihead")
	b.Block("ihead")
	b.MovI(z, 0)
	b.ALU(ir.CmpGT, c, j, z)
	b.Br(c, "ibody", "olatch")
	b.Block("ibody")
	b.AddI(j, j, -1)
	b.Jmp("ihead")
	b.Block("olatch")
	b.AddI(i, i, -1)
	b.Jmp("ohead")
	b.Block("exit")
	b.Ret(i)
	p := ir.NewProgramBuilder("main").AddFunc(b.Done()).Done()
	f := p.EntryFunc()
	g, err := cfg.Build(f)
	if err != nil {
		t.Fatalf("cfg.Build: %v", err)
	}
	forest := cfg.FindLoops(g)
	eff := ComputeEffects(p)
	for _, l := range forest.Loops {
		a := Analyze(p, f, g, l, eff)
		if f.Blocks[l.Header].Label == "ohead" && a != nil {
			t.Error("outer loop with inner loop must be unsupported")
		}
		if f.Blocks[l.Header].Label == "ihead" && a == nil {
			t.Error("inner loop should be supported")
		}
	}
}

func TestLiveInReads(t *testing.T) {
	p := buildCounterLoop()
	a := analyzeFirstLoop(t, p)
	// The accumulator update "s += i" reads both s and i from the
	// iteration-start state.
	add := instrByOp(a, ir.Add, 0)
	regs := a.LiveInReads(add)
	if len(regs) != 2 || regs[0] != 0 || regs[1] != 1 {
		t.Errorf("LiveInReads(add) = %v, want [r0 r1]", regs)
	}
	// The decrement's read of i is live-in; the header test's read of i is
	// intra (after the decrement in iteration coordinates).
	addI := instrByOp(a, ir.AddI, 0)
	if got := a.LiveInReads(addI); len(got) != 1 || got[0] != 0 {
		t.Errorf("LiveInReads(addI) = %v, want [r0]", got)
	}
	cmp := instrByOp(a, ir.CmpGT, 0)
	for _, r := range a.LiveInReads(cmp) {
		if r == 0 {
			t.Error("header test's read of i wrongly classified live-in")
		}
	}
}

func TestClassifyDoShape(t *testing.T) {
	// Rotated loop: header is the body start (do-shape).
	b := ir.NewFuncBuilder("main", 0)
	i, c := b.NewReg(), b.NewReg()
	b.Block("entry")
	b.MovI(i, 9)
	b.Jmp("body")
	b.Block("body")
	b.AddI(i, i, -1)
	b.MovI(c, 0)
	b.ALU(ir.CmpGT, c, i, c)
	b.Br(c, "body", "exit")
	b.Block("exit")
	b.Ret(i)
	p := ir.NewProgramBuilder("main").AddFunc(b.Done()).Done()
	a := analyzeFirstLoop(t, p)
	if a.Shape != ShapeDo {
		t.Errorf("shape = %v, want do", a.Shape)
	}
	if a.StartBlock != p.EntryFunc().BlockIndex("body") {
		t.Error("do-shape start block wrong")
	}
	// Header-resident defs of do-shaped loops ARE re-bindable (no
	// pre-first-iteration execution).
	addI := instrByOp(a, ir.AddI, 0)
	if a.FirstIterUnsafe(addI) {
		t.Error("do-shape body def wrongly marked first-iteration-unsafe")
	}
	if s := a.SliceOf(addI); !s.OK {
		t.Error("do-shape induction not hoistable")
	}
}

func TestClassifyJmpHeader(t *testing.T) {
	// Header ending in Jmp (multi-block rotated loop).
	b := ir.NewFuncBuilder("main", 0)
	i, c := b.NewReg(), b.NewReg()
	b.Block("entry")
	b.MovI(i, 5)
	b.Jmp("h")
	b.Block("h")
	b.AddI(i, i, -1)
	b.Jmp("latch")
	b.Block("latch")
	b.MovI(c, 0)
	b.ALU(ir.CmpGT, c, i, c)
	b.Br(c, "h", "exit")
	b.Block("exit")
	b.Ret(i)
	p := ir.NewProgramBuilder("main").AddFunc(b.Done()).Done()
	a := analyzeFirstLoop(t, p)
	if a.Shape != ShapeDo || a.StartBlock != p.EntryFunc().BlockIndex("h") {
		t.Errorf("jmp-header loop misclassified: shape=%v start=%d", a.Shape, a.StartBlock)
	}
}
