package ddg

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/ir"
)

// aliasFixture builds one loop whose body contains memory operations with a
// variety of symbolic bases, and returns the analysis plus the ids of the
// Load/Store instructions in body order.
func aliasFixture(t *testing.T) (*Analysis, []int) {
	t.Helper()
	b := ir.NewFuncBuilder("main", 0)
	i, c, z := b.NewReg(), b.NewReg(), b.NewReg()
	ga, gb, p, q, v, cst := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
	b.Block("entry")
	b.MovI(i, 10)
	b.MovI(z, 0)
	b.AllocI(p, 8) // live-in heap pointer
	b.Jmp("head")
	b.Block("head")
	b.ALU(ir.CmpGT, c, i, z)
	b.Br(c, "body", "exit")
	b.Block("body")
	b.GAddr(ga, "gA")  // 0: global A base
	b.GAddr(gb, "gB")  // global B base
	b.Load(v, ga, 0)   // L0: gA[0]
	b.Store(ga, 1, v)  // S0: gA[1]   (different offset -> no alias L0)
	b.Store(gb, 0, v)  // S1: gB[0]   (different global -> no alias L0)
	b.Store(ga, 5, v)  // S2: gA[5]   (out of range: overlaps gB[1])
	b.AllocI(q, 4)     // fresh block each iteration
	b.Store(q, 0, v)   // S3: fresh alloc (no alias with globals)
	b.Load(v, q, 1)    // L1: same alloc, different offset
	b.Store(p, 2, v)   // S4: live-in pointer
	b.Load(v, p, 2)    // L2: same live-in pointer + same offset (must alias S4)
	b.MovI(cst, 64)    // constant address
	b.Store(cst, 0, v) // S5: const addr 64
	b.Load(v, cst, 1)  // L3: const addr 65 (different -> no alias S5)
	b.Load(v, gb, 1)   // L4: gB[1] == gA[5] in the address map
	b.Free(q)
	b.AddI(i, i, -1)
	b.Jmp("head")
	b.Block("exit")
	b.Ret(v)
	prog := ir.NewProgramBuilder("main").AddFunc(b.Done()).
		AddGlobal("gA", 4).AddGlobal("gB", 4).Done()
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	f := prog.EntryFunc()
	g, err := cfg.Build(f)
	if err != nil {
		t.Fatalf("cfg.Build: %v", err)
	}
	forest := cfg.FindLoops(g)
	eff := ComputeEffects(prog)
	for _, l := range forest.Loops {
		a := Analyze(prog, f, g, l, eff)
		if a == nil {
			t.Fatal("unsupported loop")
		}
		var mems []int
		for _, id := range a.Body {
			if f.InstrByID(id).Op.IsMem() {
				mems = append(mems, id)
			}
		}
		return a, mems
	}
	t.Fatal("no loop")
	return nil, nil
}

func TestAliasOracle(t *testing.T) {
	a, mems := aliasFixture(t)
	// mems order: L0, S0, S1, S2, S3, L1, S4, L2, S5, L3, L4
	if len(mems) != 11 {
		t.Fatalf("have %d memory ops, want 11", len(mems))
	}
	L0, S0, S1, S2, S3, L1, S4, L2, S5, L3, L4 :=
		mems[0], mems[1], mems[2], mems[3], mems[4], mems[5], mems[6], mems[7], mems[8], mems[9], mems[10]

	cases := []struct {
		name string
		x, y int
		want bool
	}{
		{"same global same offset", L0, L0, true},
		{"same global different offset", L0, S0, false},
		{"different globals", L0, S1, false},
		{"same global, different offsets never alias", L0, S2, false},
		{"out-of-range offset may overlap the neighbouring global", S2, L4, true},
		{"fresh alloc vs global", S3, S0, false},
		{"same alloc different offset", S3, L1, false},
		{"live-in ptr same offset", S4, L2, true},
		{"live-in ptr vs global (conservative)", S4, S0, true},
		{"const vs const different", S5, L3, false},
		{"const vs const same", S5, S5, true},
	}
	for _, c := range cases {
		if got := a.MayAlias(c.x, c.y); got != c.want {
			t.Errorf("%s: MayAlias = %v, want %v", c.name, got, c.want)
		}
		// Symmetry.
		if got := a.MayAlias(c.y, c.x); got != c.want {
			t.Errorf("%s (swapped): MayAlias = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestAddrOfChasesChains(t *testing.T) {
	// base computed through Mov and AddI chains resolves to the same root.
	b := ir.NewFuncBuilder("main", 0)
	i, c, z, g, g2, g3, v := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
	b.Block("entry")
	b.MovI(i, 5)
	b.MovI(z, 0)
	b.Jmp("head")
	b.Block("head")
	b.ALU(ir.CmpGT, c, i, z)
	b.Br(c, "body", "exit")
	b.Block("body")
	b.GAddr(g, "tbl")
	b.Mov(g2, g)      // copy
	b.AddI(g3, g2, 2) // offset 2
	b.Load(v, g3, 1)  // total offset 3
	b.Store(g, 3, v)  // total offset 3: same word -> alias
	b.Store(g, 0, v)  // offset 0 -> no alias
	b.AddI(i, i, -1)
	b.Jmp("head")
	b.Block("exit")
	b.Ret(v)
	p := ir.NewProgramBuilder("main").AddFunc(b.Done()).AddGlobal("tbl", 8).Done()
	f := p.EntryFunc()
	g4, err := cfg.Build(f)
	if err != nil {
		t.Fatalf("cfg.Build: %v", err)
	}
	forest := cfg.FindLoops(g4)
	eff := ComputeEffects(p)
	a := Analyze(p, f, g4, forest.Loops[0], eff)
	if a == nil {
		t.Fatal("unsupported")
	}
	var load, st3, st0 int
	for _, id := range a.Body {
		in := f.InstrByID(id)
		switch {
		case in.Op == ir.Load:
			load = id
		case in.Op == ir.Store && in.Imm == 3:
			st3 = id
		case in.Op == ir.Store && in.Imm == 0:
			st0 = id
		}
	}
	if !a.MayAlias(load, st3) {
		t.Error("chained base with equal total offset must alias")
	}
	if a.MayAlias(load, st0) {
		t.Error("chained base with different total offset must not alias")
	}
}
