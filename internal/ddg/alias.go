package ddg

import "repro/internal/ir"

// rootKind classifies the symbolic base of a memory reference.
type rootKind int

const (
	rootUnknown rootKind = iota
	rootGlobal           // &global + static offset
	rootAlloc            // result of a specific in-body Alloc + static offset
	rootLiveIn           // value of a register at iteration start + static offset
	rootConst            // constant address
	rootDef              // result of a specific in-body instruction + static offset
)

// addrRoot is the resolved symbolic address of a memory access.
type addrRoot struct {
	kind rootKind
	name string // rootGlobal: global name
	id   int    // rootAlloc/rootDef: defining instruction id
	reg  ir.Reg // rootLiveIn: the register
	off  int64  // accumulated static offset (words)
}

// AddrOf resolves the symbolic address of the Load/Store instruction with
// the given id. Results are cached.
func (a *Analysis) AddrOf(id int) addrRoot {
	if r, ok := a.addrCache[id]; ok {
		return r
	}
	in := a.F.InstrByID(id)
	var r addrRoot
	switch in.Op {
	case ir.Load, ir.Store:
		r = a.resolveReg(in.A, id, in.Imm, 16)
	default:
		r = addrRoot{kind: rootUnknown}
	}
	a.addrCache[id] = r
	return r
}

// resolveReg resolves the value of register reg as read by instruction at,
// chasing unique intra-iteration definitions through address arithmetic.
func (a *Analysis) resolveReg(reg ir.Reg, at int, off int64, depth int) addrRoot {
	if depth <= 0 {
		return addrRoot{kind: rootUnknown}
	}
	var defs []int
	for _, d := range a.IntraReg[at] {
		if d.Reg == reg {
			defs = append(defs, d.Def)
		}
	}
	ext := a.externalUse[at][reg]
	switch {
	case len(defs) == 0 && ext:
		return addrRoot{kind: rootLiveIn, reg: reg, off: off}
	case len(defs) == 1 && !ext:
		d := a.F.InstrByID(defs[0])
		switch d.Op {
		case ir.GAddr:
			return addrRoot{kind: rootGlobal, name: d.Target, off: off}
		case ir.Alloc:
			return addrRoot{kind: rootAlloc, id: d.ID, off: off}
		case ir.AddI:
			return a.resolveReg(d.A, d.ID, off+d.Imm, depth-1)
		case ir.Mov:
			return a.resolveReg(d.A, d.ID, off, depth-1)
		case ir.MovI:
			return addrRoot{kind: rootConst, off: off + d.Imm}
		default:
			return addrRoot{kind: rootDef, id: d.ID, off: off}
		}
	default:
		return addrRoot{kind: rootUnknown}
	}
}

// MayAlias reports whether the two memory instructions may access the same
// word within one iteration. It is conservative: unknown bases alias
// everything; only provably disjoint static shapes return false.
func (a *Analysis) MayAlias(m1, m2 int) bool {
	r1, r2 := a.AddrOf(m1), a.AddrOf(m2)
	if r1.kind == rootUnknown || r2.kind == rootUnknown {
		return true
	}
	if r1.kind == r2.kind {
		switch r1.kind {
		case rootGlobal:
			if r1.name == r2.name {
				return r1.off == r2.off
			}
			// Distinct globals are disjoint as long as the static offsets
			// stay within each global's extent.
			return !a.offInGlobal(r1) || !a.offInGlobal(r2)
		case rootAlloc:
			if r1.id == r2.id {
				return r1.off == r2.off
			}
			return false // two live blocks are disjoint
		case rootLiveIn:
			if r1.reg == r2.reg {
				return r1.off == r2.off
			}
			return true // different pointers may be equal
		case rootConst:
			return r1.off == r2.off
		case rootDef:
			if r1.id == r2.id {
				return r1.off == r2.off
			}
			return true
		}
	}
	// Mixed kinds: a fresh heap block is disjoint from any global whose
	// static offset stays in range.
	if (r1.kind == rootGlobal && r2.kind == rootAlloc) ||
		(r1.kind == rootAlloc && r2.kind == rootGlobal) {
		g := r1
		if g.kind != rootGlobal {
			g = r2
		}
		return !a.offInGlobal(g)
	}
	return true
}

// offInGlobal reports whether the root's offset falls inside the global.
func (a *Analysis) offInGlobal(r addrRoot) bool {
	if r.kind != rootGlobal || r.off < 0 {
		return false
	}
	// Size lookup: scan the program's globals lazily via the analysis's
	// global-size callback; when unavailable, be conservative.
	if a.GlobalSize == nil {
		return false
	}
	sz, ok := a.GlobalSize(r.name)
	return ok && r.off < sz
}
