// Package ddg computes the data-dependence information the SPT compiler
// consumes: per-loop intra-iteration def-use chains, loop-carried register
// dependences, memory-operation inventories, a conservative alias oracle,
// whole-program side-effect summaries, and the backward hoist slices that
// the optimal-partition search moves into the pre-fork region. Together
// with the profiler's probability annotations this is the "annotated
// DD-graph" of the paper's Figure 4.
package ddg

import "repro/internal/ir"

// Effects summarizes the transitive side effects of a function.
type Effects struct {
	WritesMem bool // performs Store (directly or transitively)
	ReadsMem  bool // performs Load
	Heap      bool // performs Alloc or Free
	Forks     bool // contains SptFork/SptKill
}

// Impure reports whether calling the function can affect memory or heap
// state (i.e. it cannot be treated as a pure value computation).
func (e Effects) Impure() bool { return e.WritesMem || e.Heap || e.Forks }

// ComputeEffects returns the transitive effect summary of every function in
// the program. Recursion is handled by iterating to a fixpoint.
func ComputeEffects(p *ir.Program) map[string]Effects {
	eff := make(map[string]Effects, len(p.Funcs))
	callees := make(map[string][]string, len(p.Funcs))
	for _, f := range p.Funcs {
		var e Effects
		var calls []string
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				switch b.Instrs[i].Op {
				case ir.Store:
					e.WritesMem = true
				case ir.Load:
					e.ReadsMem = true
				case ir.Alloc, ir.Free:
					e.Heap = true
				case ir.SptFork, ir.SptKill:
					e.Forks = true
				case ir.Call:
					calls = append(calls, b.Instrs[i].Target)
				}
			}
		}
		eff[f.Name] = e
		callees[f.Name] = calls
	}
	for changed := true; changed; {
		changed = false
		for _, f := range p.Funcs {
			e := eff[f.Name]
			for _, c := range callees[f.Name] {
				ce := eff[c]
				ne := Effects{
					WritesMem: e.WritesMem || ce.WritesMem,
					ReadsMem:  e.ReadsMem || ce.ReadsMem,
					Heap:      e.Heap || ce.Heap,
					Forks:     e.Forks || ce.Forks,
				}
				if ne != e {
					e = ne
					changed = true
				}
			}
			eff[f.Name] = e
		}
	}
	return eff
}
