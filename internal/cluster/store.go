// Package cluster turns a set of independent sptd daemons into one
// crash-tolerant simulation service: a tiered content-addressed result
// store (memory → checksummed disk spill → HTTP peer fetch), consistent-
// hash request routing on the program fingerprint, and journal-backed work
// stealing when a node dies. The design mirrors the paper's speculation
// discipline at the serving layer: every tier is allowed to be wrong
// (evicted, torn, stale) as long as mis-speculation is detected by
// checksum and recovery falls back to the next tier — ultimately to
// recomputation, which is always correct.
package cluster

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Key derives a store key from a job's identity fields: a sha256 over the
// kind and every request field that determines the result (budgets are
// excluded — they only bound execution, a successful result is identical
// under any budget that let it finish).
func Key(kind string, parts ...string) string {
	h := sha256.New()
	io.WriteString(h, kind)
	for _, p := range parts {
		io.WriteString(h, "\x00")
		io.WriteString(h, p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// StoreConfig sizes a Store. Zero values take the documented defaults.
type StoreConfig struct {
	// Dir is the disk-spill root ("" = memory tier only). Layout:
	//
	//	index/<key>         one line: hex sha256 of the payload
	//	objects/<sha256hex> the payload; the filename IS its checksum
	//	quarantine/         corrupt files moved here, never served
	//
	// Writes are atomic (tmp + fsync + rename), so the spill survives
	// SIGKILL: a torn write is at worst an orphaned tmp file.
	Dir string
	// MemEntries bounds the in-process LRU (default 512; negative = 0).
	MemEntries int
	// MemBytes bounds the in-process LRU's payload bytes (default 64 MiB;
	// negative = unbounded).
	MemBytes int64
	// MaxObjectBytes bounds one stored object (default 64 MiB; negative =
	// unbounded). Put refuses larger payloads and the peer-fetch tier skips
	// them, both counted in the Oversized stat — otherwise a locally stored
	// object bigger than the fetch limit would be truncated on every peer
	// fetch, fail the checksum, and silently force recomputation.
	MaxObjectBytes int64
	// HTTPClient fetches from peers (nil = a 2s-timeout client).
	HTTPClient *http.Client
	// OnDegraded, when non-nil, is called with true when the disk tier
	// starts failing writes (the node keeps serving from memory and
	// recompute) and false when a later disk write succeeds.
	OnDegraded func(degraded bool)
	// OnPut, when non-nil, is called after every locally computed Put with
	// the stored key — the replication hook. PutReplica (objects arriving
	// FROM replication) deliberately does not fire it, or two replicas
	// would push the same object back and forth forever.
	OnPut func(key string)
	// QuarantineMaxFiles bounds how many corrupt files quarantine/ may hold
	// (default 64; negative = unbounded). Oldest files are evicted first.
	QuarantineMaxFiles int
	// QuarantineMaxBytes bounds quarantine/'s total payload bytes (default
	// 16 MiB; negative = unbounded).
	QuarantineMaxBytes int64
}

// StoreStats are the Store's lifetime counters.
type StoreStats struct {
	MemHits     int64
	DiskHits    int64
	PeerHits    int64
	Misses      int64
	Writes      int64
	WriteErrors int64
	Quarantined int64 // corrupt disk files detected, moved aside, never served
	Oversized   int64 // payloads rejected at Put or skipped at peer fetch for exceeding MaxObjectBytes
}

// Store is the tiered result store: in-process LRU over a content-
// addressed checksummed disk spill over HTTP peer fetch. All tiers are
// read-through: a hit in a lower tier populates the tiers above it.
type Store struct {
	cfg  StoreConfig
	http *http.Client

	mu      sync.Mutex
	entries map[string]*list.Element
	lru     *list.List // front = most recent
	bytes   int64
	peers   func() []string // alive peer base URLs (excluding self); nil = no peer tier

	degraded atomic.Bool

	memHits, diskHits, peerHits atomic.Int64
	misses, writes, writeErrors atomic.Int64
	quarantined, oversized      atomic.Int64

	qmu             sync.Mutex   // serializes quarantine-dir eviction scans
	quarantineBytes atomic.Int64 // bytes currently held in quarantine/
}

type memEntry struct {
	key     string
	payload []byte
}

// NewStore builds the store and creates the disk layout when Dir is set.
func NewStore(cfg StoreConfig) (*Store, error) {
	if cfg.MemEntries == 0 {
		cfg.MemEntries = 512
	}
	if cfg.MemEntries < 0 {
		cfg.MemEntries = 0
	}
	if cfg.MemBytes == 0 {
		cfg.MemBytes = 64 << 20
	}
	if cfg.MemBytes < 0 {
		cfg.MemBytes = 0 // unbounded
	}
	if cfg.MaxObjectBytes == 0 {
		cfg.MaxObjectBytes = 64 << 20
	}
	if cfg.MaxObjectBytes < 0 {
		cfg.MaxObjectBytes = 0 // unbounded
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{Timeout: 2 * time.Second}
	}
	if cfg.QuarantineMaxFiles == 0 {
		cfg.QuarantineMaxFiles = 64
	}
	if cfg.QuarantineMaxFiles < 0 {
		cfg.QuarantineMaxFiles = 0 // unbounded
	}
	if cfg.QuarantineMaxBytes == 0 {
		cfg.QuarantineMaxBytes = 16 << 20
	}
	if cfg.QuarantineMaxBytes < 0 {
		cfg.QuarantineMaxBytes = 0 // unbounded
	}
	s := &Store{
		cfg:     cfg,
		http:    cfg.HTTPClient,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}
	if cfg.Dir != "" {
		for _, sub := range []string{"index", "objects", "quarantine"} {
			if err := os.MkdirAll(filepath.Join(cfg.Dir, sub), 0o755); err != nil {
				return nil, fmt.Errorf("cluster: store dir: %w", err)
			}
		}
		// A restart inherits whatever the previous process quarantined;
		// seed the gauge and re-apply the cap so the directory cannot keep
		// growing across process lifetimes.
		s.enforceQuarantineCap()
	}
	return s, nil
}

// SetPeerSource installs the alive-peers provider (the cluster Manager's
// view). Installed after construction because the manager itself needs the
// store for its HTTP middleware.
func (s *Store) SetPeerSource(peers func() []string) {
	s.mu.Lock()
	s.peers = peers
	s.mu.Unlock()
}

// SetOnPut installs the replication hook after construction (the manager
// owns the replicator but the store is built first, same dance as
// SetPeerSource). Put reads the hook without the LRU lock held, so a
// concurrent SetOnPut during startup is the owner's responsibility to
// sequence — sptd installs it before serving traffic.
func (s *Store) SetOnPut(fn func(key string)) { s.cfg.OnPut = fn }

// Stats snapshots the counters.
func (s *Store) Stats() StoreStats {
	return StoreStats{
		MemHits:     s.memHits.Load(),
		DiskHits:    s.diskHits.Load(),
		PeerHits:    s.peerHits.Load(),
		Misses:      s.misses.Load(),
		Writes:      s.writes.Load(),
		WriteErrors: s.writeErrors.Load(),
		Quarantined: s.quarantined.Load(),
		Oversized:   s.oversized.Load(),
	}
}

// Degraded reports whether the disk tier is currently failing writes.
func (s *Store) Degraded() bool { return s.degraded.Load() }

// Get resolves key through the tiers: memory, then disk (checksum
// verified; corrupt files quarantined and treated as misses), then alive
// peers. Lower-tier hits populate the tiers above. The final bool is false
// on a full miss — the caller recomputes.
func (s *Store) Get(key string) ([]byte, bool) {
	if p, ok := s.memGet(key); ok {
		s.memHits.Add(1)
		return p, true
	}
	if p, ok := s.diskGet(key); ok {
		s.diskHits.Add(1)
		s.memPut(key, p)
		return p, true
	}
	if p, ok := s.peerGet(key); ok {
		s.peerHits.Add(1)
		s.memPut(key, p)
		s.diskPut(key, p) // spill the fetched copy so a restart keeps it
		return p, true
	}
	s.misses.Add(1)
	return nil, false
}

// GetLocal resolves key through the local tiers only (memory, disk) — the
// read path of the peer-fetch HTTP endpoint, which must never recurse into
// its own peer tier.
func (s *Store) GetLocal(key string) ([]byte, bool) {
	if p, ok := s.memGet(key); ok {
		s.memHits.Add(1)
		return p, true
	}
	if p, ok := s.diskGet(key); ok {
		s.diskHits.Add(1)
		s.memPut(key, p)
		return p, true
	}
	return nil, false
}

// Put stores a computed payload in memory and on disk, then fires the
// OnPut replication hook. Payloads over MaxObjectBytes are refused and
// counted: storing one would poison the peer tier, whose bounded fetch
// would truncate it and fail the checksum on every sibling, silently
// recomputing forever.
func (s *Store) Put(key string, payload []byte) {
	if s.cfg.MaxObjectBytes > 0 && int64(len(payload)) > s.cfg.MaxObjectBytes {
		s.oversized.Add(1)
		return
	}
	s.writes.Add(1)
	s.memPut(key, payload)
	s.diskPut(key, payload)
	if s.cfg.OnPut != nil {
		s.cfg.OnPut(key)
	}
}

// PutReplica stores a payload that arrived FROM replication (a push or an
// anti-entropy pull). Identical to Put except it never fires OnPut: a
// replica landing must not re-trigger a push, or two replicas would bounce
// the same object between themselves forever.
func (s *Store) PutReplica(key string, payload []byte) {
	if s.cfg.MaxObjectBytes > 0 && int64(len(payload)) > s.cfg.MaxObjectBytes {
		s.oversized.Add(1)
		return
	}
	s.writes.Add(1)
	s.memPut(key, payload)
	s.diskPut(key, payload)
}

// Has reports whether key resolves locally (memory or disk index) without
// reading or verifying the payload — the cheap existence probe replication
// uses to decide what to push.
func (s *Store) Has(key string) bool {
	s.mu.Lock()
	_, inMem := s.entries[key]
	s.mu.Unlock()
	if inMem {
		return true
	}
	if s.cfg.Dir == "" {
		return false
	}
	_, err := os.Stat(s.indexPath(key))
	return err == nil
}

// KeySums enumerates every locally stored key with its payload sha256 (hex)
// — the raw material for anti-entropy digests. Disk is authoritative when
// present (index files already record the sum); with no disk tier the sums
// are computed from the memory entries. Keys are the sanitized on-disk
// form, which is the form peers address objects by.
func (s *Store) KeySums() map[string]string {
	out := make(map[string]string)
	if s.cfg.Dir != "" {
		entries, err := os.ReadDir(filepath.Join(s.cfg.Dir, "index"))
		if err == nil {
			for _, e := range entries {
				if e.IsDir() || strings.HasPrefix(e.Name(), ".tmp-") {
					continue
				}
				sumBytes, err := os.ReadFile(filepath.Join(s.cfg.Dir, "index", e.Name()))
				if err != nil {
					continue
				}
				sum := strings.TrimSpace(string(sumBytes))
				if isHex(sum) && len(sum) == sha256.Size*2 {
					out[e.Name()] = sum
				}
			}
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for key, el := range s.entries {
		sk := sanitizeKey(key)
		if _, ok := out[sk]; ok {
			continue
		}
		sum := sha256.Sum256(el.Value.(*memEntry).payload)
		out[sk] = hex.EncodeToString(sum[:])
	}
	return out
}

// --- memory tier ---

func (s *Store) memGet(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		return nil, false
	}
	s.lru.MoveToFront(el)
	return el.Value.(*memEntry).payload, true
}

func (s *Store) memPut(key string, payload []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		s.lru.MoveToFront(el)
		old := el.Value.(*memEntry)
		s.bytes += int64(len(payload)) - int64(len(old.payload))
		old.payload = payload
	} else {
		s.entries[key] = s.lru.PushFront(&memEntry{key: key, payload: payload})
		s.bytes += int64(len(payload))
	}
	for (s.cfg.MemEntries > 0 && s.lru.Len() > s.cfg.MemEntries) ||
		(s.cfg.MemBytes > 0 && s.bytes > s.cfg.MemBytes && s.lru.Len() > 1) {
		el := s.lru.Back()
		ent := el.Value.(*memEntry)
		s.lru.Remove(el)
		delete(s.entries, ent.key)
		s.bytes -= int64(len(ent.payload))
	}
}

// --- disk tier ---

func (s *Store) indexPath(key string) string {
	return filepath.Join(s.cfg.Dir, "index", sanitizeKey(key))
}

func (s *Store) objectPath(sum string) string {
	return filepath.Join(s.cfg.Dir, "objects", sum)
}

// sanitizeKey keeps arbitrary keys filesystem-safe (keys from Key() are
// already hex, but the store does not require that).
func sanitizeKey(key string) string {
	if isHex(key) {
		return key
	}
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

func isHex(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

func (s *Store) diskGet(key string) ([]byte, bool) {
	if s.cfg.Dir == "" {
		return nil, false
	}
	idx := s.indexPath(key)
	sumBytes, err := os.ReadFile(idx)
	if err != nil {
		return nil, false
	}
	sum := strings.TrimSpace(string(sumBytes))
	if !isHex(sum) || len(sum) != sha256.Size*2 {
		// The index file itself is corrupt: quarantine it; the object (if
		// any) stays — another intact index may still reference it.
		s.quarantine(idx)
		return nil, false
	}
	payload, err := os.ReadFile(s.objectPath(sum))
	if err != nil {
		return nil, false
	}
	if got := sha256.Sum256(payload); hex.EncodeToString(got[:]) != sum {
		// Bit rot or a torn write that slipped past rename atomicity: the
		// object's content no longer matches its name. Quarantine both
		// sides so nothing ever serves it, and miss — the caller
		// recomputes and rewrites a good copy.
		s.quarantine(s.objectPath(sum))
		s.quarantine(idx)
		return nil, false
	}
	return payload, true
}

// quarantine moves a corrupt file into the quarantine/ directory (best
// effort; removal is the fallback so a corrupt file is never re-read),
// then evicts oldest-first past the configured count/byte caps so an
// ongoing corruption source cannot fill the disk with evidence.
func (s *Store) quarantine(path string) {
	s.quarantined.Add(1)
	dst := filepath.Join(s.cfg.Dir, "quarantine", filepath.Base(path))
	if err := os.Rename(path, dst); err != nil {
		_ = os.Remove(path)
		return
	}
	s.enforceQuarantineCap()
}

// enforceQuarantineCap rescans quarantine/, refreshes the byte gauge, and
// deletes oldest files until both the file-count and byte caps hold.
func (s *Store) enforceQuarantineCap() {
	if s.cfg.Dir == "" {
		return
	}
	s.qmu.Lock()
	defer s.qmu.Unlock()
	dir := filepath.Join(s.cfg.Dir, "quarantine")
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	type qfile struct {
		name string
		size int64
		mod  time.Time
	}
	var files []qfile
	var total int64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, qfile{name: e.Name(), size: info.Size(), mod: info.ModTime()})
		total += info.Size()
	}
	sort.Slice(files, func(i, j int) bool {
		if !files[i].mod.Equal(files[j].mod) {
			return files[i].mod.Before(files[j].mod)
		}
		return files[i].name < files[j].name // deterministic tie-break
	})
	for len(files) > 0 &&
		((s.cfg.QuarantineMaxFiles > 0 && len(files) > s.cfg.QuarantineMaxFiles) ||
			(s.cfg.QuarantineMaxBytes > 0 && total > s.cfg.QuarantineMaxBytes)) {
		victim := files[0]
		files = files[1:]
		if err := os.Remove(filepath.Join(dir, victim.name)); err == nil {
			total -= victim.size
		}
	}
	s.quarantineBytes.Store(total)
}

func (s *Store) diskPut(key string, payload []byte) {
	if s.cfg.Dir == "" {
		return
	}
	sum := sha256.Sum256(payload)
	sumHex := hex.EncodeToString(sum[:])
	// Object first, index second: an index must never point at an object
	// that does not exist yet. A crash between the two leaves an orphaned
	// object — wasted bytes, not wrong answers.
	if err := atomicWrite(s.objectPath(sumHex), payload); err != nil {
		s.recordWriteError()
		return
	}
	if err := atomicWrite(s.indexPath(key), []byte(sumHex+"\n")); err != nil {
		s.recordWriteError()
		return
	}
	s.recordWriteOK()
}

func (s *Store) recordWriteError() {
	s.writeErrors.Add(1)
	if !s.degraded.Swap(true) && s.cfg.OnDegraded != nil {
		s.cfg.OnDegraded(true)
	}
}

func (s *Store) recordWriteOK() {
	if s.degraded.Swap(false) && s.cfg.OnDegraded != nil {
		s.cfg.OnDegraded(false)
	}
}

// atomicWrite writes data so a SIGKILL never leaves a half-written file at
// path: tmp in the same directory, fsync, rename.
func atomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}

// --- peer tier ---

// storeContentHeader carries the payload's sha256 on the peer-fetch
// response; the fetcher verifies it before trusting the bytes.
const storeContentHeader = "X-Spt-Store-Sha256"

func (s *Store) peerGet(key string) ([]byte, bool) {
	s.mu.Lock()
	peers := s.peers
	s.mu.Unlock()
	if peers == nil {
		return nil, false
	}
	for _, base := range peers() {
		resp, err := s.http.Get(base + "/v1/store/" + sanitizeKey(key))
		if err != nil {
			continue
		}
		var body io.Reader = resp.Body
		if s.cfg.MaxObjectBytes > 0 {
			// One byte past the bound distinguishes "exactly at the limit"
			// from "too large" without reading an unbounded response.
			body = io.LimitReader(resp.Body, s.cfg.MaxObjectBytes+1)
		}
		payload, err := io.ReadAll(body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		if s.cfg.MaxObjectBytes > 0 && int64(len(payload)) > s.cfg.MaxObjectBytes {
			s.oversized.Add(1)
			continue // the peer accepts bigger objects than this store does
		}
		want := resp.Header.Get(storeContentHeader)
		sum := sha256.Sum256(payload)
		if want == "" || hex.EncodeToString(sum[:]) != want {
			continue // a peer serving corrupt bytes is treated as absent
		}
		return payload, true
	}
	return nil, false
}

// ServeKey handles one local-only store read over HTTP (mounted by the
// cluster manager at GET /v1/store/{key}).
func (s *Store) ServeKey(w http.ResponseWriter, key string) {
	payload, ok := s.GetLocal(key)
	if !ok {
		http.Error(w, "not in local store", http.StatusNotFound)
		return
	}
	sum := sha256.Sum256(payload)
	w.Header().Set(storeContentHeader, hex.EncodeToString(sum[:]))
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(payload)
}

// Metrics renders the store counters as Prometheus text (appended to the
// daemon's /metrics through service.Config.ExtraMetrics).
func (s *Store) Metrics(w io.Writer) {
	st := s.Stats()
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("sptd_store_mem_hits_total", "Tiered-store reads served from the in-process LRU.", st.MemHits)
	counter("sptd_store_disk_hits_total", "Tiered-store reads served from the checksummed disk spill.", st.DiskHits)
	counter("sptd_store_peer_hits_total", "Tiered-store reads served by fetching from an alive peer.", st.PeerHits)
	counter("sptd_store_misses_total", "Tiered-store reads that fell through to recomputation.", st.Misses)
	counter("sptd_store_writes_total", "Computed results written into the store.", st.Writes)
	counter("sptd_store_write_errors_total", "Disk-spill writes that failed (store runs degraded while these grow).", st.WriteErrors)
	counter("sptd_store_quarantined_total", "Corrupt disk files detected by checksum, moved to quarantine, never served.", st.Quarantined)
	counter("sptd_store_oversized_total", "Payloads refused at Put or skipped at peer fetch for exceeding MaxObjectBytes.", st.Oversized)
	deg := 0
	if s.Degraded() {
		deg = 1
	}
	fmt.Fprintf(w, "# HELP sptd_store_degraded 1 while the disk tier is failing writes.\n# TYPE sptd_store_degraded gauge\nsptd_store_degraded %d\n", deg)
	fmt.Fprintf(w, "# HELP sptd_store_quarantine_bytes Bytes currently held in the capped quarantine directory.\n# TYPE sptd_store_quarantine_bytes gauge\nsptd_store_quarantine_bytes %d\n", s.quarantineBytes.Load())
}

// QuarantineBytes reports the byte gauge for tests and the cluster view.
func (s *Store) QuarantineBytes() int64 { return s.quarantineBytes.Load() }
