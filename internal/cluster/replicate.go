package cluster

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// This file replicates store objects ahead of failure so a SIGKILL'd node's
// artifacts are already elsewhere. Two mechanisms compose:
//
//   - Push: Store.Put fires OnPut → Enqueue; the replicator pushes the
//     object to the other members of its RF-sized replica set (the first RF
//     distinct alive nodes clockwise from the key's ring position), each
//     push verified end-to-end by X-Spt-Store-Sha256.
//   - Anti-entropy: a background loop exchanges 64-bucket FNV digests of
//     the local key→sum table with a rotating partner and transfers only
//     the keys under mismatched buckets — pulls what this node is missing,
//     pushes what the partner is missing — so pushes lost to a crash or a
//     partition converge anyway.
//
// This is the same bet the paper makes about speculative threads: do the
// work early on the assumption it will be needed, verify cheaply (a sha256
// compare is the squash check), and let a periodic reconciler mop up the
// rare case where the optimistic path lost a write.

// aeBuckets is the digest width: local keys hash into 64 buckets, and one
// round transfers keys only under buckets whose XOR-folded digests differ.
const aeBuckets = 64

// Peer identifies one alive cluster member for replication purposes.
type Peer struct {
	Name string
	URL  string
}

// ReplicatorConfig wires a Replicator.
type ReplicatorConfig struct {
	// Self is this node's name (never pushed to).
	Self string
	// RF is the replication factor — copies per object including the owner
	// (default 2; 1 disables pushing).
	RF int
	// Interval is the anti-entropy cadence (default 2s).
	Interval time.Duration
	// Store is the local tiered store.
	Store *Store
	// ReplicaSet returns the names of the RF members responsible for key,
	// owner first (the manager derives it from the ring's successor walk).
	ReplicaSet func(key string) []string
	// Peers returns the currently alive members other than self.
	Peers func() []Peer
	// HTTPClient performs pushes and pulls (nil = 2s timeout client).
	HTTPClient *http.Client
	// OnLag, when non-nil, is called with the pending-push count after
	// every change — the readyz replication-lag condition hook.
	OnLag func(pending int)
}

// Replicator owns the push queue and the anti-entropy loop.
type Replicator struct {
	cfg  ReplicatorConfig
	http *http.Client

	mu      sync.Mutex
	pending map[string]bool // keys with at least one outstanding replica push
	wake    chan struct{}
	aeIdx   int // round-robin anti-entropy partner cursor

	pushes       atomic.Int64
	pushFailures atomic.Int64
	aeRounds     atomic.Int64
	aePulls      atomic.Int64
	aePushes     atomic.Int64
	divergent    atomic.Int64
}

// NewReplicator builds a Replicator; the owner drives it via Run (or Tick
// in tests).
func NewReplicator(cfg ReplicatorConfig) *Replicator {
	if cfg.RF <= 0 {
		cfg.RF = 2
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{Timeout: 2 * time.Second}
	}
	return &Replicator{
		cfg:     cfg,
		http:    cfg.HTTPClient,
		pending: make(map[string]bool),
		wake:    make(chan struct{}, 1),
	}
}

// Enqueue marks key as needing replica pushes and wakes the run loop. It is
// the Store.OnPut hook; with RF 1 it is a no-op.
func (r *Replicator) Enqueue(key string) {
	if r.cfg.RF <= 1 {
		return
	}
	r.mu.Lock()
	r.pending[sanitizeKey(key)] = true
	n := len(r.pending)
	r.mu.Unlock()
	if r.cfg.OnLag != nil {
		r.cfg.OnLag(n)
	}
	select {
	case r.wake <- struct{}{}:
	default:
	}
}

// Pending reports how many keys still await a successful replica push —
// the replication lag surfaced in /v1/cluster and readyz.
func (r *Replicator) Pending() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.pending)
}

// Run drives the replicator until ctx is cancelled: drain pushes when woken
// by Enqueue, and run one anti-entropy round per interval.
func (r *Replicator) Run(ctx context.Context) {
	t := time.NewTicker(r.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-r.wake:
			r.DrainPushes(ctx)
		case <-t.C:
			r.DrainPushes(ctx)
			r.AntiEntropyRound(ctx)
		}
	}
}

// DrainPushes attempts every pending key once. Keys whose pushes all
// succeed leave the queue; failures stay pending for the next wake or
// anti-entropy tick — the queue is the retry state.
func (r *Replicator) DrainPushes(ctx context.Context) {
	r.mu.Lock()
	keys := make([]string, 0, len(r.pending))
	for k := range r.pending {
		keys = append(keys, k)
	}
	r.mu.Unlock()
	sort.Strings(keys)
	for _, key := range keys {
		if ctx.Err() != nil {
			return
		}
		if r.pushKey(ctx, key) {
			r.mu.Lock()
			delete(r.pending, key)
			n := len(r.pending)
			r.mu.Unlock()
			if r.cfg.OnLag != nil {
				r.cfg.OnLag(n)
			}
		}
	}
}

// pushKey pushes one object to every other member of its replica set.
// Returns true only when all required pushes succeeded (or none were
// required), so partial failures stay queued.
func (r *Replicator) pushKey(ctx context.Context, key string) bool {
	payload, ok := r.cfg.Store.GetLocal(key)
	if !ok {
		return true // evicted or never landed; nothing to replicate
	}
	peerURL := r.peerURLs()
	targets := r.replicaTargets(key, peerURL)
	if len(targets) == 0 {
		// No alive replica target (single-node cluster, or every successor
		// is down). Treat as done: anti-entropy re-offers the key once a
		// target exists, because digests cover the whole local key set.
		return true
	}
	allOK := true
	for _, t := range targets {
		if err := r.pushTo(ctx, t.URL, key, payload); err != nil {
			r.pushFailures.Add(1)
			allOK = false
		} else {
			r.pushes.Add(1)
		}
	}
	return allOK
}

// replicaTargets resolves key's replica set to alive peers other than self.
func (r *Replicator) replicaTargets(key string, peerURL map[string]string) []Peer {
	if r.cfg.ReplicaSet == nil {
		return nil
	}
	var out []Peer
	for _, name := range r.cfg.ReplicaSet(key) {
		if name == r.cfg.Self {
			continue
		}
		if url, ok := peerURL[name]; ok {
			out = append(out, Peer{Name: name, URL: url})
		}
	}
	return out
}

func (r *Replicator) peerURLs() map[string]string {
	out := make(map[string]string)
	if r.cfg.Peers == nil {
		return out
	}
	for _, p := range r.cfg.Peers() {
		out[p.Name] = p.URL
	}
	return out
}

// pushTo POSTs one object to base's replica endpoint, checksum in the
// header so the receiver can refuse torn bytes.
func (r *Replicator) pushTo(ctx context.Context, base, key string, payload []byte) error {
	cctx, cancel := context.WithTimeout(ctx, 2*r.cfg.Interval)
	defer cancel()
	req, err := http.NewRequestWithContext(cctx, http.MethodPost, base+"/v1/store/"+key, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	sum := sha256.Sum256(payload)
	req.Header.Set(storeContentHeader, hex.EncodeToString(sum[:]))
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := r.http.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: replica push to %s: status %d", base, resp.StatusCode)
	}
	return nil
}

// HandlePut serves an inbound replica push (POST /v1/store/{key}): verify
// the declared checksum against the received bytes, then store without
// re-triggering replication.
func (r *Replicator) HandlePut(w http.ResponseWriter, req *http.Request, key string) {
	max := r.cfg.Store.cfg.MaxObjectBytes
	var body io.Reader = req.Body
	if max > 0 {
		body = io.LimitReader(req.Body, max+1)
	}
	payload, err := io.ReadAll(body)
	if err != nil {
		http.Error(w, "torn replica payload", http.StatusBadRequest)
		return
	}
	if max > 0 && int64(len(payload)) > max {
		http.Error(w, "replica payload exceeds max object size", http.StatusRequestEntityTooLarge)
		return
	}
	want := req.Header.Get(storeContentHeader)
	sum := sha256.Sum256(payload)
	if want == "" || hex.EncodeToString(sum[:]) != want {
		http.Error(w, "replica checksum mismatch", http.StatusBadRequest)
		return
	}
	r.cfg.Store.PutReplica(key, payload)
	w.WriteHeader(http.StatusOK)
}

// --- anti-entropy ---

// bucketOf places a (sanitized) key into one of the aeBuckets digest
// buckets.
func bucketOf(key string) int {
	h := fnv.New64a()
	io.WriteString(h, key)
	return int(h.Sum64() % aeBuckets)
}

// foldKeySum is the per-key contribution to a bucket digest: fnv64a over
// "key:sum". XOR-folding the contributions makes the digest independent of
// enumeration order.
func foldKeySum(key, sum string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, key)
	io.WriteString(h, ":")
	io.WriteString(h, sum)
	return h.Sum64()
}

// digestsOf folds a key→sum table into the 64 bucket digests.
func digestsOf(sums map[string]string) [aeBuckets]uint64 {
	var d [aeBuckets]uint64
	for k, s := range sums {
		d[bucketOf(k)] ^= foldKeySum(k, s)
	}
	return d
}

// Anti-entropy wire types. Digests travel as hex strings: they are uint64
// and JSON numbers silently lose precision past 2^53.
type aeRequest struct {
	From    string   `json:"from"`
	Digests []string `json:"digests"`
}

type aeBucket struct {
	Bucket  int               `json:"bucket"`
	KeySums map[string]string `json:"key_sums"`
}

type aeResponse struct {
	From    string     `json:"from"`
	Buckets []aeBucket `json:"buckets"`
}

// AntiEntropyRound runs one digest exchange with the next alive partner
// (round-robin over all alive peers, not just ring successors, so
// convergence does not depend on ring adjacency), pulling keys this node
// is missing and pushing keys the partner is missing.
func (r *Replicator) AntiEntropyRound(ctx context.Context) {
	var peers []Peer
	if r.cfg.Peers != nil {
		peers = r.cfg.Peers()
	}
	if len(peers) == 0 {
		return
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i].Name < peers[j].Name })
	r.mu.Lock()
	r.aeIdx++
	partner := peers[r.aeIdx%len(peers)]
	r.mu.Unlock()
	r.aeRounds.Add(1)

	sums := r.cfg.Store.KeySums()
	digests := digestsOf(sums)
	reqBody := aeRequest{From: r.cfg.Self, Digests: make([]string, aeBuckets)}
	for i, d := range digests {
		reqBody.Digests[i] = fmt.Sprintf("%016x", d)
	}
	raw, _ := json.Marshal(reqBody)
	cctx, cancel := context.WithTimeout(ctx, 2*r.cfg.Interval)
	defer cancel()
	req, err := http.NewRequestWithContext(cctx, http.MethodPost, partner.URL+"/v1/cluster/antientropy", bytes.NewReader(raw))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.http.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return
	}
	var ae aeResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&ae); err != nil {
		return
	}

	// Group our keys by bucket once; each mismatched bucket compares the
	// two key sets.
	mine := make(map[int]map[string]string)
	for k, s := range sums {
		b := bucketOf(k)
		if mine[b] == nil {
			mine[b] = make(map[string]string)
		}
		mine[b][k] = s
	}
	for _, bucket := range ae.Buckets {
		theirs := bucket.KeySums
		ours := mine[bucket.Bucket]
		for key, theirSum := range theirs {
			ourSum, have := ours[key]
			switch {
			case !have:
				if r.memberOfReplicaSet(r.cfg.Self, key) {
					if r.pullFrom(ctx, partner.URL, key, theirSum) {
						r.aePulls.Add(1)
					}
				}
			case ourSum != theirSum:
				// Two verified-at-write stores disagree about the same key.
				// With deterministic pipelines this should be unreachable;
				// count it loudly rather than guessing which side to squash.
				r.divergent.Add(1)
			}
		}
		for key := range ours {
			if _, have := theirs[key]; have {
				continue
			}
			if !r.memberOfReplicaSet(partner.Name, key) {
				continue
			}
			if payload, ok := r.cfg.Store.GetLocal(key); ok {
				if err := r.pushTo(ctx, partner.URL, key, payload); err == nil {
					r.aePushes.Add(1)
				}
			}
		}
	}
}

func (r *Replicator) memberOfReplicaSet(name, key string) bool {
	if r.cfg.ReplicaSet == nil {
		return false
	}
	for _, n := range r.cfg.ReplicaSet(key) {
		if n == name {
			return true
		}
	}
	return false
}

// pullFrom fetches one object from partner's local-store endpoint and
// verifies it against the sum the digest exchange promised before storing.
func (r *Replicator) pullFrom(ctx context.Context, base, key, wantSum string) bool {
	cctx, cancel := context.WithTimeout(ctx, 2*r.cfg.Interval)
	defer cancel()
	req, err := http.NewRequestWithContext(cctx, http.MethodGet, base+"/v1/store/"+key, nil)
	if err != nil {
		return false
	}
	resp, err := r.http.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	max := r.cfg.Store.cfg.MaxObjectBytes
	var body io.Reader = resp.Body
	if max > 0 {
		body = io.LimitReader(resp.Body, max+1)
	}
	payload, err := io.ReadAll(body)
	if err != nil || resp.StatusCode != http.StatusOK {
		return false
	}
	if max > 0 && int64(len(payload)) > max {
		return false
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != wantSum {
		return false // partner served different bytes than it advertised
	}
	r.cfg.Store.PutReplica(key, payload)
	return true
}

// HandleAntiEntropy serves the responder side of a digest exchange: decode
// the requester's digests, compare against ours, and answer with our
// key→sum tables for every mismatched bucket. The requester does all
// transfer work; the responder only reveals what it has.
func (r *Replicator) HandleAntiEntropy(w http.ResponseWriter, req *http.Request) {
	var in aeRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, req.Body, 1<<20)).Decode(&in); err != nil {
		http.Error(w, "bad anti-entropy request", http.StatusBadRequest)
		return
	}
	if len(in.Digests) != aeBuckets {
		http.Error(w, fmt.Sprintf("want %d digests, got %d", aeBuckets, len(in.Digests)), http.StatusBadRequest)
		return
	}
	var theirs [aeBuckets]uint64
	for i, hexd := range in.Digests {
		raw, err := hex.DecodeString(hexd)
		if err != nil || len(raw) != 8 {
			http.Error(w, "bad digest encoding", http.StatusBadRequest)
			return
		}
		theirs[i] = binary.BigEndian.Uint64(raw)
	}
	sums := r.cfg.Store.KeySums()
	ours := digestsOf(sums)
	byBucket := make(map[int]map[string]string)
	for k, s := range sums {
		b := bucketOf(k)
		if byBucket[b] == nil {
			byBucket[b] = make(map[string]string)
		}
		byBucket[b][k] = s
	}
	out := aeResponse{From: r.cfg.Self}
	for i := 0; i < aeBuckets; i++ {
		if ours[i] == theirs[i] {
			continue
		}
		ks := byBucket[i]
		if ks == nil {
			ks = map[string]string{}
		}
		out.Buckets = append(out.Buckets, aeBucket{Bucket: i, KeySums: ks})
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

// Metrics renders the replication counters and lag gauge as Prometheus
// text.
func (r *Replicator) Metrics(w io.Writer) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("sptd_replica_pushes_total", "Store objects pushed to replica-set members.", r.pushes.Load())
	counter("sptd_replica_push_failures_total", "Replica pushes that failed and stayed queued.", r.pushFailures.Load())
	counter("sptd_antientropy_rounds_total", "Anti-entropy digest exchanges initiated.", r.aeRounds.Load())
	counter("sptd_antientropy_pulls_total", "Objects pulled from a partner during anti-entropy.", r.aePulls.Load())
	counter("sptd_antientropy_pushes_total", "Objects pushed to a partner during anti-entropy.", r.aePushes.Load())
	counter("sptd_antientropy_divergent_total", "Keys where two stores held different verified payloads.", r.divergent.Load())
	fmt.Fprintf(w, "# HELP sptd_replica_pending Keys still awaiting a successful replica push.\n# TYPE sptd_replica_pending gauge\nsptd_replica_pending %d\n", r.Pending())
}
