package cluster

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// replNode is one store + replicator pair served over HTTP — the minimal
// slice of a cluster node that replication talks to.
type replNode struct {
	name  string
	store *Store
	repl  *Replicator
	srv   *httptest.Server
}

// newReplPair wires two nodes that consider each other the replica set for
// every key (RF 2, both always alive). Returned in name order a, b.
func newReplPair(t *testing.T) (*replNode, *replNode) {
	t.Helper()
	build := func(name string) *replNode {
		st, err := NewStore(StoreConfig{Dir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		return &replNode{name: name, store: st}
	}
	a, b := build("a"), build("b")
	serve := func(n *replNode) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			switch {
			case strings.HasPrefix(r.URL.Path, "/v1/store/"):
				key := strings.TrimPrefix(r.URL.Path, "/v1/store/")
				if r.Method == http.MethodPost {
					n.repl.HandlePut(w, r, key)
				} else {
					n.store.ServeKey(w, key)
				}
			case r.URL.Path == "/v1/cluster/antientropy":
				n.repl.HandleAntiEntropy(w, r)
			default:
				http.NotFound(w, r)
			}
		}))
	}
	wire := func(n, peer *replNode, peerURL func() string) {
		n.repl = NewReplicator(ReplicatorConfig{
			Self:       n.name,
			RF:         2,
			Interval:   50 * time.Millisecond,
			Store:      n.store,
			ReplicaSet: func(string) []string { return []string{"a", "b"} },
			Peers:      func() []Peer { return []Peer{{Name: peer.name, URL: peerURL()}} },
		})
		n.store.SetOnPut(n.repl.Enqueue)
	}
	wire(a, b, func() string { return b.srv.URL })
	wire(b, a, func() string { return a.srv.URL })
	a.srv = serve(a)
	b.srv = serve(b)
	t.Cleanup(a.srv.Close)
	t.Cleanup(b.srv.Close)
	return a, b
}

func TestReplicatorPushesOnPut(t *testing.T) {
	a, b := newReplPair(t)
	key := Key("simulate", "parser", "rf2")
	payload := []byte(`{"benchmark":"parser","speedup":1.5}`)

	var lags []int
	a.repl.cfg.OnLag = func(n int) { lags = append(lags, n) }

	a.store.Put(key, payload) // fires OnPut → Enqueue
	if got := a.repl.Pending(); got != 1 {
		t.Fatalf("pending after Put = %d, want 1", got)
	}
	a.repl.DrainPushes(context.Background())
	if got := a.repl.Pending(); got != 0 {
		t.Fatalf("pending after drain = %d, want 0", got)
	}
	if len(lags) != 2 || lags[0] != 1 || lags[1] != 0 {
		t.Fatalf("OnLag calls = %v, want [1 0]", lags)
	}
	if got, ok := b.store.GetLocal(key); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("replica GetLocal = (%q, %v)", got, ok)
	}
	// The replica landing must not re-trigger a push back at A.
	if got := b.repl.Pending(); got != 0 {
		t.Fatalf("replica enqueued a push-back: pending = %d", got)
	}
	// The pushed copy survives a replica restart: it was spilled to disk.
	st2, err := NewStore(StoreConfig{Dir: b.store.cfg.Dir})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := st2.Get(key); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("replica restart Get = (%q, %v)", got, ok)
	}
}

func TestReplicatorRetriesFailedPush(t *testing.T) {
	a, b := newReplPair(t)
	key := Key("compile", "gzip", "retry")

	// Swap B's handler for a refusing one, push, then restore and retry.
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no", http.StatusServiceUnavailable)
	}))
	realB := b.srv
	b.srv = down
	a.store.Put(key, []byte("payload"))
	a.repl.DrainPushes(context.Background())
	if got := a.repl.Pending(); got != 1 {
		t.Fatalf("failed push left the queue: pending = %d, want 1", got)
	}
	down.Close()
	b.srv = realB
	a.repl.DrainPushes(context.Background())
	if got := a.repl.Pending(); got != 0 {
		t.Fatalf("retry did not drain: pending = %d", got)
	}
	if !b.store.Has(key) {
		t.Fatal("replica missing after retry")
	}
}

func TestReplicaPushChecksumRejected(t *testing.T) {
	_, b := newReplPair(t)
	key := Key("simulate", "mcf", "bad")
	payload := []byte("legitimate bytes")
	wrong := sha256.Sum256([]byte("different bytes"))

	post := func(sum string) int {
		req, _ := http.NewRequest(http.MethodPost, b.srv.URL+"/v1/store/"+key, bytes.NewReader(payload))
		if sum != "" {
			req.Header.Set(storeContentHeader, sum)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(hex.EncodeToString(wrong[:])); code != http.StatusBadRequest {
		t.Fatalf("mismatched checksum accepted: status %d", code)
	}
	if code := post(""); code != http.StatusBadRequest {
		t.Fatalf("missing checksum accepted: status %d", code)
	}
	if b.store.Has(key) {
		t.Fatal("store kept a payload whose checksum did not verify")
	}
	good := sha256.Sum256(payload)
	if code := post(hex.EncodeToString(good[:])); code != http.StatusOK {
		t.Fatalf("valid push refused: status %d", code)
	}
	if got, ok := b.store.GetLocal(key); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("valid push not stored: (%q, %v)", got, ok)
	}
}

// TestAntiEntropyConverges: A holds a key B lacks and vice versa (a crash ate
// the original pushes). One round initiated by A transfers both — a pull for
// what A is missing, a push for what B is missing.
func TestAntiEntropyConverges(t *testing.T) {
	a, b := newReplPair(t)
	keyA, payloadA := Key("simulate", "twolf", "onlyA"), []byte("payload A")
	keyB, payloadB := Key("simulate", "vpr", "onlyB"), []byte("payload B")
	a.store.PutReplica(keyA, payloadA) // PutReplica: seed without queueing pushes
	b.store.PutReplica(keyB, payloadB)

	a.repl.AntiEntropyRound(context.Background())

	if got, ok := a.store.GetLocal(keyB); !ok || !bytes.Equal(got, payloadB) {
		t.Fatalf("A did not pull B's key: (%q, %v)", got, ok)
	}
	if got, ok := b.store.GetLocal(keyA); !ok || !bytes.Equal(got, payloadA) {
		t.Fatalf("A did not push its key to B: (%q, %v)", got, ok)
	}
	if pulls, pushes := a.repl.aePulls.Load(), a.repl.aePushes.Load(); pulls != 1 || pushes != 1 {
		t.Fatalf("aePulls = %d aePushes = %d, want 1 and 1", pulls, pushes)
	}
	// A second round finds identical digests and moves nothing.
	a.repl.AntiEntropyRound(context.Background())
	if pulls, pushes := a.repl.aePulls.Load(), a.repl.aePushes.Load(); pulls != 1 || pushes != 1 {
		t.Fatalf("converged stores kept transferring: pulls %d pushes %d", pulls, pushes)
	}
}

// TestAntiEntropyRespectsReplicaSet: keys whose replica set excludes a node
// are never transferred to or from it — anti-entropy repairs placement, it
// does not turn RF=2 into full mirroring.
func TestAntiEntropyRespectsReplicaSet(t *testing.T) {
	a, b := newReplPair(t)
	aOnly := Key("simulate", "gap", "a-only")
	bOnly := Key("simulate", "art", "b-only")
	// Replica set for every key is just its holder: the partner never
	// qualifies for a transfer in either direction.
	owner := map[string]string{sanitizeKey(aOnly): "a", sanitizeKey(bOnly): "b"}
	for _, n := range []*replNode{a, b} {
		n.repl.cfg.ReplicaSet = func(key string) []string { return []string{owner[sanitizeKey(key)]} }
	}
	a.store.PutReplica(aOnly, []byte("stays on a"))
	b.store.PutReplica(bOnly, []byte("stays on b"))

	a.repl.AntiEntropyRound(context.Background())

	if a.store.Has(bOnly) {
		t.Fatal("A pulled a key outside its replica set")
	}
	if b.store.Has(aOnly) {
		t.Fatal("A pushed a key outside B's replica set")
	}
	if pulls, pushes := a.repl.aePulls.Load(), a.repl.aePushes.Load(); pulls != 0 || pushes != 0 {
		t.Fatalf("transfers happened: pulls %d pushes %d", pulls, pushes)
	}
}

// TestAntiEntropyDivergenceCountedNotOverwritten: two verified-at-write
// stores holding different payloads for the same key is a should-never-
// happen; the round must count it loudly and leave both sides untouched
// rather than guess which one to squash.
func TestAntiEntropyDivergenceCounted(t *testing.T) {
	a, b := newReplPair(t)
	key := Key("simulate", "parser", "diverged")
	mine, theirs := []byte("version on A"), []byte("version on B")
	a.store.PutReplica(key, mine)
	b.store.PutReplica(key, theirs)

	a.repl.AntiEntropyRound(context.Background())

	if got := a.repl.divergent.Load(); got != 1 {
		t.Fatalf("divergent = %d, want 1", got)
	}
	if got, _ := a.store.GetLocal(key); !bytes.Equal(got, mine) {
		t.Fatalf("A's copy was overwritten: %q", got)
	}
	if got, _ := b.store.GetLocal(key); !bytes.Equal(got, theirs) {
		t.Fatalf("B's copy was overwritten: %q", got)
	}
}

// TestAntiEntropyPullVerifiesAdvertisedSum: a partner whose served bytes do
// not match the sum it advertised in the digest exchange is treated as
// absent — the pull is dropped, not stored.
func TestAntiEntropyPullVerifiesAdvertisedSum(t *testing.T) {
	a, _ := newReplPair(t)
	key := Key("simulate", "mcf", "liar")
	advertised := sha256.Sum256([]byte("what the digest promised"))

	lying := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served := []byte("entirely different bytes")
		sum := sha256.Sum256(served)
		w.Header().Set(storeContentHeader, hex.EncodeToString(sum[:]))
		_, _ = w.Write(served)
	}))
	defer lying.Close()

	if a.repl.pullFrom(context.Background(), lying.URL, sanitizeKey(key), hex.EncodeToString(advertised[:])) {
		t.Fatal("pull accepted bytes that did not match the advertised sum")
	}
	if a.store.Has(key) {
		t.Fatal("mismatched pull was stored anyway")
	}
}

func TestHandleAntiEntropyRejectsMalformed(t *testing.T) {
	a, _ := newReplPair(t)
	post := func(body string) int {
		req := httptest.NewRequest(http.MethodPost, "/v1/cluster/antientropy", strings.NewReader(body))
		rec := httptest.NewRecorder()
		a.repl.HandleAntiEntropy(rec, req)
		return rec.Code
	}
	if code := post("{not json"); code != http.StatusBadRequest {
		t.Fatalf("bad JSON: status %d", code)
	}
	if code := post(`{"from":"x","digests":["0000000000000000"]}`); code != http.StatusBadRequest {
		t.Fatalf("wrong digest count: status %d", code)
	}
	if code := post(`{"from":"x","digests":[` + strings.Repeat(`"zz",`, 63) + `"zz"]}`); code != http.StatusBadRequest {
		t.Fatalf("non-hex digests: status %d", code)
	}
}
