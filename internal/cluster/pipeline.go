package cluster

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/guard"
	"repro/internal/service"
	"repro/spt/client"
)

// Pipeline is a service.Pipeline decorator that consults the tiered Store
// before computing and writes every computed result back. Keys cover
// exactly the fields that determine the result — budgets, priorities and
// async flags are excluded, so a result computed under one budget serves
// every later request for the same work.
//
// Cache-hit responses are decoded into fresh values, so the daemon's
// post-processing (stamping the job id) never mutates stored bytes: what
// the disk holds is the bit-identical computation output.
type Pipeline struct {
	next  service.Pipeline
	store *Store
}

// NewPipeline wraps next with the store read-through.
func NewPipeline(next service.Pipeline, store *Store) *Pipeline {
	return &Pipeline{next: next, store: store}
}

func scaleOf(s int) int {
	if s <= 0 {
		return 1
	}
	return s
}

// CompileKey is the store key of a compile request.
func CompileKey(req client.CompileRequest) string {
	return Key(service.KindCompile, req.Benchmark, fmt.Sprint(scaleOf(req.Scale)))
}

// SimulateKey is the store key of a simulate request.
func SimulateKey(req client.SimulateRequest) string {
	return Key(service.KindSimulate, req.Benchmark, fmt.Sprint(scaleOf(req.Scale)),
		req.Recovery, req.RegCheck, fmt.Sprint(req.SRB))
}

// SweepKey is the store key of a sweep request.
func SweepKey(req client.SweepRequest) string {
	parts := []string{req.Benchmark, fmt.Sprint(scaleOf(req.Scale)), req.Sweep}
	for _, p := range req.Points {
		parts = append(parts, fmt.Sprint(p))
	}
	return Key(service.KindSweep, parts...)
}

// lookup decodes a stored payload into out, reporting whether it hit. A
// payload that fails to decode (format drift across versions) is treated
// as a miss and recomputed.
func (p *Pipeline) lookup(key string, out any) bool {
	payload, ok := p.store.Get(key)
	if !ok {
		return false
	}
	return json.Unmarshal(payload, out) == nil
}

func (p *Pipeline) put(key string, v any) {
	payload, err := json.Marshal(v)
	if err != nil {
		return
	}
	p.store.Put(key, payload)
}

// Compile implements service.Pipeline.
func (p *Pipeline) Compile(ctx context.Context, req client.CompileRequest, budget guard.Budget) (*client.CompileResponse, error) {
	key := CompileKey(req)
	var cached client.CompileResponse
	if p.lookup(key, &cached) {
		return &cached, nil
	}
	resp, err := p.next.Compile(ctx, req, budget)
	if err != nil {
		return nil, err
	}
	p.put(key, resp)
	return resp, nil
}

// Simulate implements service.Pipeline.
func (p *Pipeline) Simulate(ctx context.Context, req client.SimulateRequest, budget guard.Budget) (*client.SimulateResponse, error) {
	key := SimulateKey(req)
	var cached client.SimulateResponse
	if p.lookup(key, &cached) {
		return &cached, nil
	}
	resp, err := p.next.Simulate(ctx, req, budget)
	if err != nil {
		return nil, err
	}
	p.put(key, resp)
	return resp, nil
}

// Sweep implements service.Pipeline.
func (p *Pipeline) Sweep(ctx context.Context, req client.SweepRequest, budget guard.Budget) (*client.SweepResponse, error) {
	key := SweepKey(req)
	var cached client.SweepResponse
	if p.lookup(key, &cached) {
		return &cached, nil
	}
	resp, err := p.next.Sweep(ctx, req, budget)
	if err != nil {
		return nil, err
	}
	p.put(key, resp)
	return resp, nil
}
