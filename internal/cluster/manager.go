package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/service"
	"repro/spt/client"
)

// ManagerConfig wires one node into the cluster.
type ManagerConfig struct {
	// Self is this node's name; it must be a key of Members.
	Self string
	// Members maps statically configured node names (self included) to
	// their base URLs. With gossip, this is only the starting view: peers
	// learned through -join seeds or gossip merge in at runtime.
	Members map[string]string
	// Seeds are base URLs of existing cluster members to join through when
	// Members lists nobody but self (the -join path).
	Seeds []string
	// JournalRoot is the directory holding one journal dir per node
	// (<root>/<name>/jobs.journal). Work stealing first acquires the dead
	// peer's journal-dir lock (held by a live daemon until process death,
	// so a slow-but-alive node fences the steal), then claims the journal
	// by atomically renaming it into this node's dir; every member must
	// see the same filesystem. Empty disables stealing.
	JournalRoot string
	// Heartbeat is the gossip round interval (default 500ms).
	Heartbeat time.Duration
	// MissThreshold is how many consecutive failed direct exchanges a peer
	// accumulates before indirect probes run and suspicion starts
	// (default 3).
	MissThreshold int
	// SuspectAfter is the grace period between suspect and dead (default
	// 3×Heartbeat). Within it a live peer refutes the suspicion for free.
	SuspectAfter time.Duration
	// Replicas is the store replication factor RF — copies per object
	// including the owner (default 2; 1 disables replication).
	Replicas int
	// AntiEntropyInterval is the digest-exchange cadence (default 2s).
	AntiEntropyInterval time.Duration
	// EnableTestHooks mounts POST /v1/gossip/block, the netem-free
	// partition hook used by the soak harness. Never enable in production.
	EnableTestHooks bool
	// HTTPClient probes peers (nil = a client with the heartbeat interval
	// as timeout).
	HTTPClient *http.Client
	// ForwardHTTPClient proxies mis-routed submissions to their ring owner
	// (nil = a client with no overall timeout, so the inbound request's
	// context bounds the proxy call). It must not share the probe client's
	// heartbeat-sized timeout: a compile that takes longer than one
	// heartbeat would abort the forward mid-flight and fall back to local
	// execution, silently degrading routing locality to compute-everywhere.
	ForwardHTTPClient *http.Client
	// Store, when non-nil, is served at GET /v1/store/{key} (local tiers
	// only), fed the alive-peer list for its peer-fetch tier, and
	// replicated at RF=Replicas.
	Store *Store
	// Server is the local daemon — the adoption target for stolen jobs and
	// the source of readiness conditions.
	Server *service.Server
	// RingReplicas overrides the virtual-node count (0 = default).
	RingReplicas int
}

// replicationLagHighWater is the pending-push backlog that raises the
// replication-lag readyz condition; it clears only at zero (hysteresis, so
// the condition does not flap around the threshold).
const replicationLagHighWater = 8

// Manager runs one node's cluster duties: gossiping membership, maintaining
// the consistent-hash ring view, forwarding mis-routed requests to their
// owner, serving the store's peer-fetch and replication endpoints, pushing
// replicas and reconciling them by anti-entropy, and stealing a dead peer's
// journal.
type Manager struct {
	cfg    ManagerConfig
	ring   *client.Ring
	gossip *Gossip
	repl   *Replicator
	http   *http.Client // gossip exchanges (short timeout)
	fwd    *http.Client // request forwarding (inbound ctx bounds it)

	// ctx is the manager lifecycle: created in NewManager, cancelled in
	// Stop, parent of every probe, steal, push and anti-entropy context —
	// Stop cannot wait on an in-flight exchange against a stalled peer.
	ctx    context.Context
	cancel context.CancelFunc

	mu      sync.Mutex
	stolen  map[string]bool // peers whose journal this node already adopted
	lagCond bool            // replication-lag condition currently raised

	stop    chan struct{}
	stopped sync.WaitGroup

	peersDied     atomic.Int64
	peersRevived  atomic.Int64
	stealsWon     atomic.Int64
	stealsLost    atomic.Int64
	stealsFenced  atomic.Int64
	forwards      atomic.Int64
	storeRestores atomic.Int64
	joinsObserved atomic.Int64
}

// NewManager validates the wiring, builds the ring (statically configured
// members start alive) and the gossip and replication layers. Call Start
// to begin gossiping.
func NewManager(cfg ManagerConfig) (*Manager, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: manager needs a node name")
	}
	if _, ok := cfg.Members[cfg.Self]; !ok {
		return nil, fmt.Errorf("cluster: self %q not in members", cfg.Self)
	}
	if cfg.Server == nil {
		return nil, fmt.Errorf("cluster: manager needs the local server")
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 500 * time.Millisecond
	}
	if cfg.MissThreshold <= 0 {
		cfg.MissThreshold = 3
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 3 * cfg.Heartbeat
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	if cfg.AntiEntropyInterval <= 0 {
		cfg.AntiEntropyInterval = 2 * time.Second
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{Timeout: cfg.Heartbeat}
	}
	if cfg.ForwardHTTPClient == nil {
		cfg.ForwardHTTPClient = &http.Client{}
	}
	names := make([]string, 0, len(cfg.Members))
	for name := range cfg.Members {
		names = append(names, name)
	}
	sort.Strings(names)
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:    cfg,
		ring:   client.NewRing(names, cfg.RingReplicas),
		http:   cfg.HTTPClient,
		fwd:    cfg.ForwardHTTPClient,
		ctx:    ctx,
		cancel: cancel,
		stolen: make(map[string]bool),
		stop:   make(chan struct{}),
	}
	static := make(map[string]string, len(cfg.Members))
	for name, url := range cfg.Members {
		static[name] = url
	}
	m.gossip = NewGossip(GossipConfig{
		Self:          cfg.Self,
		SelfURL:       cfg.Members[cfg.Self],
		Seeds:         cfg.Seeds,
		Interval:      cfg.Heartbeat,
		SuspectAfter:  cfg.SuspectAfter,
		MissThreshold: cfg.MissThreshold,
		HTTPClient:    cfg.HTTPClient,
		OnJoin:        m.onJoin,
		OnDead:        m.onDead,
		OnAlive:       m.onAlive,
	}, static)
	if cfg.Store != nil {
		cfg.Store.SetPeerSource(m.AlivePeerURLs)
		m.repl = NewReplicator(ReplicatorConfig{
			Self:       cfg.Self,
			RF:         cfg.Replicas,
			Interval:   cfg.AntiEntropyInterval,
			Store:      cfg.Store,
			ReplicaSet: func(key string) []string { return m.ring.Successors(key, cfg.Replicas) },
			Peers:      m.alivePeers,
			HTTPClient: &http.Client{Timeout: 2 * cfg.AntiEntropyInterval},
			OnLag:      m.onReplicationLag,
		})
		cfg.Store.SetOnPut(m.repl.Enqueue)
	}
	return m, nil
}

// --- gossip transition callbacks ---

// onJoin adds a gossip-discovered member to the routing ring. Ring point
// positions depend only on the name, so every node that learns of the join
// converges on the identical ring without coordination.
func (m *Manager) onJoin(mem Member) {
	m.joinsObserved.Add(1)
	m.ring.Add(mem.Name)
}

// onDead reshards a confirmed-dead member's arcs to its successors and
// attempts to steal its journal (the PR-6 lock fence stays the final
// arbiter — gossip consensus is still just a rumor compared to a held
// flock).
func (m *Manager) onDead(name string) {
	if name == m.cfg.Self {
		return
	}
	m.ring.SetAlive(name, false)
	m.peersDied.Add(1)
	m.steal(name)
}

// onAlive returns a revived member to the ring; a node that died and came
// back may be re-stolen if it dies again.
func (m *Manager) onAlive(name string) {
	if name == m.cfg.Self {
		return
	}
	m.ring.SetAlive(name, true)
	m.peersRevived.Add(1)
	m.mu.Lock()
	delete(m.stolen, name)
	m.mu.Unlock()
}

// onReplicationLag raises the replication-lag readyz condition past the
// high-water backlog and clears it only when the queue fully drains.
func (m *Manager) onReplicationLag(pending int) {
	m.mu.Lock()
	raise := !m.lagCond && pending >= replicationLagHighWater
	clear := m.lagCond && pending == 0
	if raise {
		m.lagCond = true
	}
	if clear {
		m.lagCond = false
	}
	m.mu.Unlock()
	if raise {
		m.cfg.Server.SetCondition(service.CondReplicationLag, true)
	}
	if clear {
		m.cfg.Server.SetCondition(service.CondReplicationLag, false)
	}
}

// Ring exposes this node's ring view (tests, debug endpoint).
func (m *Manager) Ring() *client.Ring { return m.ring }

// Gossip exposes the membership layer (tests, sptd wiring).
func (m *Manager) Gossip() *Gossip { return m.gossip }

// Replicator exposes the replication layer (tests; nil without a store).
func (m *Manager) Replicator() *Replicator { return m.repl }

// alivePeers lists every non-dead member other than self with a known URL.
// Suspect members are included: a node one observer cannot reach can still
// receive replicas pushed by others, and excluding it would thrash the
// replica placement during every transient partition.
func (m *Manager) alivePeers() []Peer {
	var out []Peer
	for _, mem := range m.gossip.Snapshot() {
		if mem.Name == m.cfg.Self || mem.State == StateDead || mem.URL == "" {
			continue
		}
		out = append(out, Peer{Name: mem.Name, URL: mem.URL})
	}
	return out
}

// AlivePeerURLs returns the base URLs of every non-dead member except self
// — the store's peer-fetch tier.
func (m *Manager) AlivePeerURLs() []string {
	var urls []string
	for _, p := range m.alivePeers() {
		urls = append(urls, p.URL)
	}
	return urls
}

// memberURL resolves a member's base URL, preferring the gossip table
// (which tracks joins and address changes) over the static map.
func (m *Manager) memberURL(name string) string {
	if url, ok := m.gossip.URLOf(name); ok && url != "" {
		return url
	}
	return m.cfg.Members[name]
}

// Start launches the gossip loop and (with a store) the replication loop.
func (m *Manager) Start() {
	m.stopped.Add(1)
	go func() {
		defer m.stopped.Done()
		t := time.NewTicker(m.cfg.Heartbeat)
		defer t.Stop()
		for {
			select {
			case <-m.stop:
				return
			case <-t.C:
				m.gossip.Tick(m.ctx)
			}
		}
	}()
	if m.repl != nil {
		m.stopped.Add(1)
		go func() {
			defer m.stopped.Done()
			m.repl.Run(m.ctx)
		}()
	}
}

// Stop cancels the manager lifecycle context — aborting any in-flight
// exchange, push or pull, even one stalled on an unresponsive peer — and
// waits for the loops to exit.
func (m *Manager) Stop() {
	m.cancel()
	select {
	case <-m.stop:
	default:
		close(m.stop)
	}
	m.stopped.Wait()
}

// Tick runs one deterministic gossip round (tests drive this directly
// instead of waiting on the Start ticker).
func (m *Manager) Tick() { m.gossip.Tick(m.ctx) }

// steal claims the dead peer's journal. It is fenced: a running daemon
// holds an exclusive flock on its journal dir for its whole lifetime, and
// the kernel releases that lock only at process death (SIGKILL included).
// A gossip-confirmed death can still be a slow, paused or partitioned peer
// that is still appending; acquiring its lock proves the process is really
// gone before the file is touched — stealing a live node's journal would
// lose every record it appends after the fold and fork the job history.
// Past the fence, every survivor attempts an atomic rename of
// <root>/<dead>/jobs.journal into its own directory, and the filesystem
// arbitrates — exactly one rename succeeds, so exactly one node adopts.
// The claimed file is folded read-only and handed to the server, which
// re-journals unfinished jobs into its own write-ahead log (the adoption
// itself is crash-durable) and skips ids it already holds (idempotent
// against double delivery). Done jobs' results are additionally restored
// into the store and re-replicated, so artifacts whose replica push raced
// the crash still end up at RF copies.
func (m *Manager) steal(dead string) {
	if m.cfg.JournalRoot == "" || m.ctx.Err() != nil {
		return
	}
	m.mu.Lock()
	already := m.stolen[dead]
	m.mu.Unlock()
	if already {
		return
	}
	release, err := service.TryLockJournalDir(filepath.Join(m.cfg.JournalRoot, dead))
	if err != nil {
		if errors.Is(err, service.ErrJournalLocked) {
			// The peer's daemon still holds its journal lock: it is alive,
			// however dead it looks over the network. Leave its journal
			// alone; a later gossip round either revives it or finds the
			// lock released.
			m.stealsFenced.Add(1)
		} else {
			// No journal dir to lock — the peer never journaled here.
			m.stealsLost.Add(1)
		}
		return
	}
	defer release()
	src := filepath.Join(m.cfg.JournalRoot, dead, "jobs.journal")
	dst := filepath.Join(m.cfg.JournalRoot, m.cfg.Self, "stolen-"+dead+".journal")
	if err := os.Rename(src, dst); err != nil {
		// Lost the race (another survivor renamed first) or the peer never
		// journaled; either way there is nothing to adopt here.
		m.stealsLost.Add(1)
		return
	}
	m.stealsWon.Add(1)
	m.mu.Lock()
	m.stolen[dead] = true
	m.mu.Unlock()
	jobs, err := service.FoldJournalFile(dst)
	if err != nil {
		return
	}
	m.restoreResultsToStore(jobs)
	m.cfg.Server.Adopt(jobs, dead)
}

// restoreResultsToStore writes the adopted done jobs' results back into the
// tiered store under their computation keys. The dead node's async pushes
// may have raced its crash; restoring from the journal makes "zero
// recomputes after permanent node loss" hold deterministically — the
// journal is the durable record, the store Put re-triggers replication.
// The journaled Result carries the stamped job_id; the store holds the
// pre-stamp computation bytes, so the id is stripped and the value
// re-marshaled before the Put (struct field order makes the encoding
// deterministic — bit-identical to what the dead node stored).
func (m *Manager) restoreResultsToStore(jobs []service.ReplayedJob) {
	if m.cfg.Store == nil {
		return
	}
	for _, rj := range jobs {
		if rj.State != client.StateDone || rj.Outcome != client.OutcomeOK || len(rj.Result) == 0 {
			continue
		}
		key, payload, ok := storeEntryFor(rj.Submit.Kind, rj.Submit.Req, rj.Result)
		if !ok || m.cfg.Store.Has(key) {
			continue
		}
		m.cfg.Store.Put(key, payload)
		m.storeRestores.Add(1)
	}
}

// storeEntryFor recovers (store key, pre-stamp payload) from a journaled
// job's request and result.
func storeEntryFor(kind string, req, result json.RawMessage) (string, []byte, bool) {
	switch kind {
	case service.KindCompile:
		var cr client.CompileRequest
		var resp client.CompileResponse
		if json.Unmarshal(req, &cr) != nil || json.Unmarshal(result, &resp) != nil {
			return "", nil, false
		}
		resp.JobID = ""
		payload, err := json.Marshal(&resp)
		if err != nil {
			return "", nil, false
		}
		return CompileKey(cr), payload, true
	case service.KindSimulate:
		var sr client.SimulateRequest
		var resp client.SimulateResponse
		if json.Unmarshal(req, &sr) != nil || json.Unmarshal(result, &resp) != nil {
			return "", nil, false
		}
		resp.JobID = ""
		payload, err := json.Marshal(&resp)
		if err != nil {
			return "", nil, false
		}
		return SimulateKey(sr), payload, true
	case service.KindSweep:
		var wr client.SweepRequest
		var resp client.SweepResponse
		if json.Unmarshal(req, &wr) != nil || json.Unmarshal(result, &resp) != nil {
			return "", nil, false
		}
		resp.JobID = ""
		payload, err := json.Marshal(&resp)
		if err != nil {
			return "", nil, false
		}
		return SweepKey(wr), payload, true
	}
	return "", nil, false
}

// StealsWon reports how many dead-peer journals this node claimed (tests).
func (m *Manager) StealsWon() int64 { return m.stealsWon.Load() }

// StealsFenced reports how many steal attempts were aborted because the
// peer's journal lock was still held — the peer was alive, not dead (tests).
func (m *Manager) StealsFenced() int64 { return m.stealsFenced.Load() }

// StoreRestores reports journal-adopted results restored into the store
// (tests).
func (m *Manager) StoreRestores() int64 { return m.storeRestores.Load() }

// --- HTTP middleware ---

// routedRequest is the minimal decode of a submit body needed for routing.
type routedRequest struct {
	Benchmark string `json:"benchmark"`
	Scale     int    `json:"scale"`
}

// forwardedHeader marks an already-forwarded request; a node receiving one
// serves it locally no matter what its ring view says, bounding forwarding
// to one hop even when views disagree during a reshard.
const forwardedHeader = "X-Spt-Forwarded"

// Middleware wraps the daemon handler with the cluster duties:
//
//	GET  /v1/store/{key}         — serve the local store tiers to peers
//	POST /v1/store/{key}         — accept a checksummed replica push
//	GET  /v1/cluster             — membership, replication and steal state
//	POST /v1/cluster/antientropy — digest exchange (responder side)
//	POST /v1/gossip              — membership exchange
//	POST /v1/gossip/probe        — indirect probe on a third node's behalf
//	POST /v1/gossip/block        — partition test hook (EnableTestHooks only)
//	POST /v1/compile|simulate|sweep — forward to the ring owner when a
//	     stale client routed the job here (one hop, marked by header)
//
// Everything else passes through.
func (m *Manager) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case strings.HasPrefix(r.URL.Path, "/v1/store/"):
			key := strings.TrimPrefix(r.URL.Path, "/v1/store/")
			switch {
			case m.cfg.Store == nil:
				http.Error(w, "no store configured", http.StatusNotFound)
			case r.Method == http.MethodGet:
				m.cfg.Store.ServeKey(w, key)
			case r.Method == http.MethodPost && m.repl != nil:
				m.repl.HandlePut(w, r, key)
			default:
				http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			}
			return
		case r.Method == http.MethodGet && r.URL.Path == "/v1/cluster":
			m.serveClusterView(w)
			return
		case r.Method == http.MethodPost && r.URL.Path == "/v1/cluster/antientropy":
			if m.repl == nil {
				http.Error(w, "no store configured", http.StatusNotFound)
				return
			}
			m.repl.HandleAntiEntropy(w, r)
			return
		case r.Method == http.MethodPost && r.URL.Path == "/v1/gossip":
			m.gossip.HandleExchange(w, r)
			return
		case r.Method == http.MethodPost && r.URL.Path == "/v1/gossip/probe":
			m.gossip.HandleProbe(w, r)
			return
		case r.Method == http.MethodPost && r.URL.Path == "/v1/gossip/block":
			if !m.cfg.EnableTestHooks {
				http.Error(w, "test hooks disabled", http.StatusNotFound)
				return
			}
			m.serveBlockHook(w, r)
			return
		case r.Method == http.MethodPost && isSubmitPath(r.URL.Path):
			if m.maybeForward(w, r) {
				return
			}
		}
		next.ServeHTTP(w, r)
	})
}

func isSubmitPath(p string) bool {
	return p == "/v1/compile" || p == "/v1/simulate" || p == "/v1/sweep"
}

// serveBlockHook applies a partition rule to the gossip layer: {"peer":
// "n2", "inbound": true, "outbound": false} refuses n2's inbound exchanges
// while still sending ours — an asymmetric partition with no netem.
func (m *Manager) serveBlockHook(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Peer     string `json:"peer"`
		Inbound  bool   `json:"inbound"`
		Outbound bool   `json:"outbound"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil || req.Peer == "" {
		http.Error(w, "want {peer, inbound, outbound}", http.StatusBadRequest)
		return
	}
	m.gossip.SetBlocked(req.Peer, req.Inbound, req.Outbound)
	w.WriteHeader(http.StatusOK)
}

// maybeForward proxies a submit to its ring owner when that owner is an
// alive peer and the request has not been forwarded already. Reports true
// when it wrote the response. Forwarding keeps the store's locality: all
// requests for one program land on one node, so its trace recording is
// captured once cluster-wide.
func (m *Manager) maybeForward(w http.ResponseWriter, r *http.Request) bool {
	if r.Header.Get(forwardedHeader) != "" {
		return false // one hop max: serve locally even if our view disagrees
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			http.Error(w, "request body too large", http.StatusRequestEntityTooLarge)
		} else {
			// Not a size violation — a client disconnect or transport error
			// mid-body. Don't misreport it as the caller's fault.
			http.Error(w, "error reading request body", http.StatusBadRequest)
		}
		return true
	}
	// Hand the handler a replayable body whether or not we forward.
	r.Body = io.NopCloser(bytes.NewReader(body))
	var rr routedRequest
	if json.Unmarshal(body, &rr) != nil || rr.Benchmark == "" {
		return false // let the handler produce its structured 400
	}
	owner, ok := m.ring.Owner(client.RouteKey(rr.Benchmark, rr.Scale))
	if !ok || owner == m.cfg.Self || !m.ring.IsAlive(owner) {
		return false
	}
	base := m.memberURL(owner)
	if base == "" {
		return false
	}
	m.forwards.Add(1)
	ctx := r.Context()
	preq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+r.URL.Path, bytes.NewReader(body))
	if err != nil {
		return false
	}
	preq.Header.Set("Content-Type", "application/json")
	preq.Header.Set(forwardedHeader, m.cfg.Self)
	resp, err := m.fwd.Do(preq)
	if err != nil {
		// The owner just died under us: serve locally rather than failing
		// the client while the ring catches up.
		return false
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
	return true
}

// clusterView is the GET /v1/cluster body (mirrored by client.ClusterView).
type clusterView struct {
	Self    string            `json:"self"`
	Members map[string]string `json:"members"`
	Alive   []string          `json:"alive"`
	Stolen  []string          `json:"stolen,omitempty"`

	Gossip             []memberView `json:"gossip,omitempty"`
	StoreDegraded      bool         `json:"store_degraded,omitempty"`
	QuarantineBytes    int64        `json:"quarantine_bytes,omitempty"`
	ReplicationPending int          `json:"replication_pending"`
}

type memberView struct {
	Name        string `json:"name"`
	URL         string `json:"url,omitempty"`
	State       string `json:"state"`
	Incarnation uint64 `json:"incarnation"`
}

func (m *Manager) serveClusterView(w http.ResponseWriter) {
	m.mu.Lock()
	stolen := make([]string, 0, len(m.stolen))
	for name := range m.stolen {
		stolen = append(stolen, name)
	}
	m.mu.Unlock()
	sort.Strings(stolen)
	snapshot := m.gossip.Snapshot()
	members := make(map[string]string, len(snapshot))
	gossip := make([]memberView, 0, len(snapshot))
	for _, mem := range snapshot {
		if mem.URL != "" {
			members[mem.Name] = mem.URL
		}
		gossip = append(gossip, memberView{
			Name:        mem.Name,
			URL:         mem.URL,
			State:       mem.State.String(),
			Incarnation: mem.Incarnation,
		})
	}
	view := clusterView{
		Self:    m.cfg.Self,
		Members: members,
		Alive:   m.ring.Alive(),
		Stolen:  stolen,
		Gossip:  gossip,
	}
	if m.cfg.Store != nil {
		view.StoreDegraded = m.cfg.Store.Degraded()
		view.QuarantineBytes = m.cfg.Store.QuarantineBytes()
	}
	if m.repl != nil {
		view.ReplicationPending = m.repl.Pending()
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(view)
}

// Metrics renders the cluster counters as Prometheus text (chained into
// the daemon's /metrics via service.Config.ExtraMetrics), including the
// gossip and replication layers' counters.
func (m *Manager) Metrics(w io.Writer) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("sptd_cluster_heartbeat_probes_total", "Direct gossip exchanges attempted (the heartbeat).", m.gossip.exchanges.Load())
	counter("sptd_cluster_heartbeat_misses_total", "Gossip exchanges that got no usable answer.", m.gossip.exchangeFails.Load())
	counter("sptd_cluster_peers_died_total", "Peers confirmed dead after the suspect grace period.", m.peersDied.Load())
	counter("sptd_cluster_peers_revived_total", "Dead peers that answered again and rejoined the ring.", m.peersRevived.Load())
	counter("sptd_cluster_peers_joined_total", "Members learned through gossip at runtime.", m.joinsObserved.Load())
	counter("sptd_cluster_steals_won_total", "Dead-peer journals this node claimed and adopted.", m.stealsWon.Load())
	counter("sptd_cluster_steals_lost_total", "Steal attempts another survivor won (or nothing to steal).", m.stealsLost.Load())
	counter("sptd_cluster_steals_fenced_total", "Steal attempts aborted because the peer's journal lock was still held (peer alive, not dead).", m.stealsFenced.Load())
	counter("sptd_cluster_forwards_total", "Mis-routed submissions proxied to their ring owner.", m.forwards.Load())
	counter("sptd_cluster_store_restores_total", "Adopted journal results restored into the store for re-replication.", m.storeRestores.Load())
	fmt.Fprintf(w, "# HELP sptd_cluster_alive_peers Alive members in this node's ring view (self included).\n# TYPE sptd_cluster_alive_peers gauge\nsptd_cluster_alive_peers %d\n", len(m.ring.Alive()))
	m.gossip.Metrics(w)
	if m.repl != nil {
		m.repl.Metrics(w)
	}
}
