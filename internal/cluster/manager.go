package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/service"
	"repro/spt/client"
)

// ManagerConfig wires one node into the cluster.
type ManagerConfig struct {
	// Self is this node's name; it must be a key of Members.
	Self string
	// Members maps every node name (self included) to its base URL.
	Members map[string]string
	// JournalRoot is the directory holding one journal dir per node
	// (<root>/<name>/jobs.journal). Work stealing first acquires the dead
	// peer's journal-dir lock (held by a live daemon until process death,
	// so a slow-but-alive node fences the steal), then claims the journal
	// by atomically renaming it into this node's dir; every member must
	// see the same filesystem. Empty disables stealing.
	JournalRoot string
	// Heartbeat is the peer-probe interval (default 500ms).
	Heartbeat time.Duration
	// MissThreshold is how many consecutive failed probes declare a peer
	// dead (default 3).
	MissThreshold int
	// HTTPClient probes peers (nil = a client with the heartbeat interval
	// as timeout).
	HTTPClient *http.Client
	// ForwardHTTPClient proxies mis-routed submissions to their ring owner
	// (nil = a client with no overall timeout, so the inbound request's
	// context bounds the proxy call). It must not share the probe client's
	// heartbeat-sized timeout: a compile that takes longer than one
	// heartbeat would abort the forward mid-flight and fall back to local
	// execution, silently degrading routing locality to compute-everywhere.
	ForwardHTTPClient *http.Client
	// Store, when non-nil, is served at GET /v1/store/{key} (local tiers
	// only) and fed the alive-peer list for its peer-fetch tier.
	Store *Store
	// Server is the local daemon — the adoption target for stolen jobs and
	// the source of readiness conditions.
	Server *service.Server
	// RingReplicas overrides the virtual-node count (0 = default).
	RingReplicas int
}

// Manager runs one node's cluster duties: heartbeating peers, maintaining
// the consistent-hash ring view, forwarding mis-routed requests to their
// owner, serving the store's peer-fetch endpoint, and stealing a dead
// peer's journal.
type Manager struct {
	cfg  ManagerConfig
	ring *client.Ring
	http *http.Client // heartbeat probes (short timeout)
	fwd  *http.Client // request forwarding (inbound ctx bounds it)

	mu     sync.Mutex
	misses map[string]int
	stolen map[string]bool // peers whose journal this node already adopted

	stop    chan struct{}
	stopped sync.WaitGroup

	heartbeatProbes atomic.Int64
	heartbeatMisses atomic.Int64
	peersDied       atomic.Int64
	peersRevived    atomic.Int64
	stealsWon       atomic.Int64
	stealsLost      atomic.Int64
	stealsFenced    atomic.Int64
	forwards        atomic.Int64
}

// NewManager validates the wiring and builds the ring (everyone starts
// alive). Call Start to begin heartbeating.
func NewManager(cfg ManagerConfig) (*Manager, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: manager needs a node name")
	}
	if _, ok := cfg.Members[cfg.Self]; !ok {
		return nil, fmt.Errorf("cluster: self %q not in members", cfg.Self)
	}
	if cfg.Server == nil {
		return nil, fmt.Errorf("cluster: manager needs the local server")
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 500 * time.Millisecond
	}
	if cfg.MissThreshold <= 0 {
		cfg.MissThreshold = 3
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{Timeout: cfg.Heartbeat}
	}
	if cfg.ForwardHTTPClient == nil {
		cfg.ForwardHTTPClient = &http.Client{}
	}
	names := make([]string, 0, len(cfg.Members))
	for name := range cfg.Members {
		names = append(names, name)
	}
	sort.Strings(names)
	m := &Manager{
		cfg:    cfg,
		ring:   client.NewRing(names, cfg.RingReplicas),
		http:   cfg.HTTPClient,
		fwd:    cfg.ForwardHTTPClient,
		misses: make(map[string]int),
		stolen: make(map[string]bool),
		stop:   make(chan struct{}),
	}
	if cfg.Store != nil {
		cfg.Store.SetPeerSource(m.AlivePeerURLs)
	}
	return m, nil
}

// Ring exposes this node's ring view (tests, debug endpoint).
func (m *Manager) Ring() *client.Ring { return m.ring }

// AlivePeerURLs returns the base URLs of every alive member except self —
// the store's peer-fetch tier.
func (m *Manager) AlivePeerURLs() []string {
	var urls []string
	for _, name := range m.ring.Alive() {
		if name != m.cfg.Self {
			urls = append(urls, m.cfg.Members[name])
		}
	}
	return urls
}

// Start launches the heartbeat loop.
func (m *Manager) Start() {
	m.stopped.Add(1)
	go func() {
		defer m.stopped.Done()
		t := time.NewTicker(m.cfg.Heartbeat)
		defer t.Stop()
		for {
			select {
			case <-m.stop:
				return
			case <-t.C:
				m.probePeers()
			}
		}
	}()
}

// Stop ends the heartbeat loop and waits for it.
func (m *Manager) Stop() {
	close(m.stop)
	m.stopped.Wait()
}

// probePeers sends one round of heartbeats. A peer that misses
// MissThreshold consecutive probes is declared dead: it leaves the ring
// (its arcs fall to clockwise successors) and its journal becomes
// stealable. A dead peer that answers again is revived — the ring heals
// and its arcs return.
func (m *Manager) probePeers() {
	for name, base := range m.cfg.Members {
		if name == m.cfg.Self {
			continue
		}
		m.heartbeatProbes.Add(1)
		up := m.probe(base)
		m.mu.Lock()
		if up {
			m.misses[name] = 0
			revived := !m.ring.IsAlive(name)
			m.mu.Unlock()
			if revived {
				m.ring.SetAlive(name, true)
				m.peersRevived.Add(1)
				// A revived node may be re-stolen later if it dies again.
				m.mu.Lock()
				delete(m.stolen, name)
				m.mu.Unlock()
			}
			continue
		}
		m.heartbeatMisses.Add(1)
		m.misses[name]++
		dead := m.misses[name] >= m.cfg.MissThreshold && m.ring.IsAlive(name)
		m.mu.Unlock()
		if dead {
			m.ring.SetAlive(name, false)
			m.peersDied.Add(1)
			m.steal(name)
		}
	}
}

// probe performs one liveness check: any HTTP response (even 503) proves
// the process is up; only transport failure counts as a miss.
func (m *Manager) probe(base string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), m.cfg.Heartbeat)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := m.http.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
	return true
}

// steal claims the dead peer's journal. It is fenced: a running daemon
// holds an exclusive flock on its journal dir for its whole lifetime, and
// the kernel releases that lock only at process death (SIGKILL included).
// Missed heartbeats alone can be a slow, paused or partitioned peer that
// is still appending; acquiring its lock proves the process is really gone
// before the file is touched — stealing a live node's journal would lose
// every record it appends after the fold and fork the job history. Past
// the fence, every survivor attempts an atomic rename of
// <root>/<dead>/jobs.journal into its own directory, and the filesystem
// arbitrates — exactly one rename succeeds, so exactly one node adopts.
// The claimed file is folded read-only and handed to the server, which
// re-journals unfinished jobs into its own write-ahead log (the adoption
// itself is crash-durable) and skips ids it already holds (idempotent
// against double delivery).
func (m *Manager) steal(dead string) {
	if m.cfg.JournalRoot == "" {
		return
	}
	m.mu.Lock()
	already := m.stolen[dead]
	m.mu.Unlock()
	if already {
		return
	}
	release, err := service.TryLockJournalDir(filepath.Join(m.cfg.JournalRoot, dead))
	if err != nil {
		if errors.Is(err, service.ErrJournalLocked) {
			// The peer's daemon still holds its journal lock: it is alive,
			// however dead it looks over the network. Leave its journal
			// alone; a later probe round either revives it or finds the
			// lock released.
			m.stealsFenced.Add(1)
		} else {
			// No journal dir to lock — the peer never journaled here.
			m.stealsLost.Add(1)
		}
		return
	}
	defer release()
	src := filepath.Join(m.cfg.JournalRoot, dead, "jobs.journal")
	dst := filepath.Join(m.cfg.JournalRoot, m.cfg.Self, "stolen-"+dead+".journal")
	if err := os.Rename(src, dst); err != nil {
		// Lost the race (another survivor renamed first) or the peer never
		// journaled; either way there is nothing to adopt here.
		m.stealsLost.Add(1)
		return
	}
	m.stealsWon.Add(1)
	m.mu.Lock()
	m.stolen[dead] = true
	m.mu.Unlock()
	jobs, err := service.FoldJournalFile(dst)
	if err != nil {
		return
	}
	m.cfg.Server.Adopt(jobs, dead)
}

// StealsWon reports how many dead-peer journals this node claimed (tests).
func (m *Manager) StealsWon() int64 { return m.stealsWon.Load() }

// StealsFenced reports how many steal attempts were aborted because the
// peer's journal lock was still held — the peer was alive, not dead (tests).
func (m *Manager) StealsFenced() int64 { return m.stealsFenced.Load() }

// --- HTTP middleware ---

// routedRequest is the minimal decode of a submit body needed for routing.
type routedRequest struct {
	Benchmark string `json:"benchmark"`
	Scale     int    `json:"scale"`
}

// forwardedHeader marks an already-forwarded request; a node receiving one
// serves it locally no matter what its ring view says, bounding forwarding
// to one hop even when views disagree during a reshard.
const forwardedHeader = "X-Spt-Forwarded"

// Middleware wraps the daemon handler with the cluster duties:
//
//	GET  /v1/store/{key}  — serve the local store tiers to peers
//	GET  /v1/cluster      — this node's ring view (debugging, soak asserts)
//	POST /v1/compile|simulate|sweep — forward to the ring owner when a
//	     stale client routed the job here (one hop, marked by header)
//
// Everything else passes through.
func (m *Manager) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/v1/store/"):
			if m.cfg.Store == nil {
				http.Error(w, "no store configured", http.StatusNotFound)
				return
			}
			m.cfg.Store.ServeKey(w, strings.TrimPrefix(r.URL.Path, "/v1/store/"))
			return
		case r.Method == http.MethodGet && r.URL.Path == "/v1/cluster":
			m.serveClusterView(w)
			return
		case r.Method == http.MethodPost && isSubmitPath(r.URL.Path):
			if m.maybeForward(w, r) {
				return
			}
		}
		next.ServeHTTP(w, r)
	})
}

func isSubmitPath(p string) bool {
	return p == "/v1/compile" || p == "/v1/simulate" || p == "/v1/sweep"
}

// maybeForward proxies a submit to its ring owner when that owner is an
// alive peer and the request has not been forwarded already. Reports true
// when it wrote the response. Forwarding keeps the store's locality: all
// requests for one program land on one node, so its trace recording is
// captured once cluster-wide.
func (m *Manager) maybeForward(w http.ResponseWriter, r *http.Request) bool {
	if r.Header.Get(forwardedHeader) != "" {
		return false // one hop max: serve locally even if our view disagrees
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			http.Error(w, "request body too large", http.StatusRequestEntityTooLarge)
		} else {
			// Not a size violation — a client disconnect or transport error
			// mid-body. Don't misreport it as the caller's fault.
			http.Error(w, "error reading request body", http.StatusBadRequest)
		}
		return true
	}
	// Hand the handler a replayable body whether or not we forward.
	r.Body = io.NopCloser(bytes.NewReader(body))
	var rr routedRequest
	if json.Unmarshal(body, &rr) != nil || rr.Benchmark == "" {
		return false // let the handler produce its structured 400
	}
	owner, ok := m.ring.Owner(client.RouteKey(rr.Benchmark, rr.Scale))
	if !ok || owner == m.cfg.Self || !m.ring.IsAlive(owner) {
		return false
	}
	m.forwards.Add(1)
	ctx := r.Context()
	preq, err := http.NewRequestWithContext(ctx, http.MethodPost, m.cfg.Members[owner]+r.URL.Path, bytes.NewReader(body))
	if err != nil {
		return false
	}
	preq.Header.Set("Content-Type", "application/json")
	preq.Header.Set(forwardedHeader, m.cfg.Self)
	resp, err := m.fwd.Do(preq)
	if err != nil {
		// The owner just died under us: serve locally rather than failing
		// the client while the ring catches up.
		return false
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
	return true
}

// clusterView is the GET /v1/cluster body.
type clusterView struct {
	Self    string            `json:"self"`
	Members map[string]string `json:"members"`
	Alive   []string          `json:"alive"`
	Stolen  []string          `json:"stolen,omitempty"`
}

func (m *Manager) serveClusterView(w http.ResponseWriter) {
	m.mu.Lock()
	stolen := make([]string, 0, len(m.stolen))
	for name := range m.stolen {
		stolen = append(stolen, name)
	}
	m.mu.Unlock()
	sort.Strings(stolen)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(clusterView{
		Self:    m.cfg.Self,
		Members: m.cfg.Members,
		Alive:   m.ring.Alive(),
		Stolen:  stolen,
	})
}

// Metrics renders the cluster counters as Prometheus text (chained into
// the daemon's /metrics via service.Config.ExtraMetrics).
func (m *Manager) Metrics(w io.Writer) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("sptd_cluster_heartbeat_probes_total", "Peer liveness probes sent.", m.heartbeatProbes.Load())
	counter("sptd_cluster_heartbeat_misses_total", "Peer probes that got no HTTP response.", m.heartbeatMisses.Load())
	counter("sptd_cluster_peers_died_total", "Peers declared dead after consecutive missed heartbeats.", m.peersDied.Load())
	counter("sptd_cluster_peers_revived_total", "Dead peers that answered again and rejoined the ring.", m.peersRevived.Load())
	counter("sptd_cluster_steals_won_total", "Dead-peer journals this node claimed and adopted.", m.stealsWon.Load())
	counter("sptd_cluster_steals_lost_total", "Steal attempts another survivor won (or nothing to steal).", m.stealsLost.Load())
	counter("sptd_cluster_steals_fenced_total", "Steal attempts aborted because the peer's journal lock was still held (peer alive, not dead).", m.stealsFenced.Load())
	counter("sptd_cluster_forwards_total", "Mis-routed submissions proxied to their ring owner.", m.forwards.Load())
	fmt.Fprintf(w, "# HELP sptd_cluster_alive_peers Alive members in this node's ring view (self included).\n# TYPE sptd_cluster_alive_peers gauge\nsptd_cluster_alive_peers %d\n", len(m.ring.Alive()))
}
