package cluster

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/guard"
	"repro/internal/service"
	"repro/spt/client"
)

func newDiskStore(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := NewStore(StoreConfig{Dir: dir})
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	return s
}

func TestStoreDiskSpillSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	key := Key("simulate", "parser", "1")
	payload := []byte(`{"benchmark":"parser","speedup":1.5}`)

	s1 := newDiskStore(t, dir)
	s1.Put(key, payload)
	if got, ok := s1.Get(key); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("writer Get = (%q, %v)", got, ok)
	}
	if st := s1.Stats(); st.MemHits != 1 || st.Writes != 1 {
		t.Fatalf("writer stats = %+v", st)
	}

	// A fresh store over the same dir is a daemon restart: the memory tier
	// is cold, the disk tier serves.
	s2 := newDiskStore(t, dir)
	if got, ok := s2.Get(key); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("post-restart Get = (%q, %v)", got, ok)
	}
	if st := s2.Stats(); st.DiskHits != 1 || st.Misses != 0 {
		t.Fatalf("post-restart stats = %+v, want one disk hit, zero misses", st)
	}
	// The disk hit repopulated memory.
	s2.Get(key)
	if st := s2.Stats(); st.MemHits != 1 {
		t.Fatalf("second read stats = %+v, want a mem hit", st)
	}
}

func TestStoreCorruptObjectQuarantinedThenRecomputed(t *testing.T) {
	dir := t.TempDir()
	key := Key("simulate", "mcf", "1")
	payload := []byte(`{"benchmark":"mcf"}`)
	newDiskStore(t, dir).Put(key, payload)

	// Rot a bit in the object file behind the store's back.
	objects := filepath.Join(dir, "objects")
	entries, err := os.ReadDir(objects)
	if err != nil || len(entries) != 1 {
		t.Fatalf("objects dir: %v entries, err %v", len(entries), err)
	}
	objPath := filepath.Join(objects, entries[0].Name())
	data, err := os.ReadFile(objPath)
	if err != nil {
		t.Fatal(err)
	}
	data[0] ^= 0xff
	if err := os.WriteFile(objPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s := newDiskStore(t, dir)
	if _, ok := s.Get(key); ok {
		t.Fatal("store served a corrupt payload")
	}
	st := s.Stats()
	if st.Quarantined < 1 || st.Misses != 1 {
		t.Fatalf("stats after corruption = %+v, want quarantine + miss", st)
	}
	// The corrupt file left the serving path.
	if _, err := os.Stat(objPath); !os.IsNotExist(err) {
		t.Fatalf("corrupt object still in objects/: %v", err)
	}
	q, _ := os.ReadDir(filepath.Join(dir, "quarantine"))
	if len(q) < 1 {
		t.Fatal("quarantine dir is empty")
	}

	// The recompute-and-rewrite path heals the spill for the next restart.
	s.Put(key, payload)
	if got, ok := newDiskStore(t, dir).Get(key); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("post-heal restart Get = (%q, %v)", got, ok)
	}
}

func TestStoreCorruptIndexQuarantined(t *testing.T) {
	dir := t.TempDir()
	key := Key("compile", "gzip", "1")
	newDiskStore(t, dir).Put(key, []byte(`{"benchmark":"gzip"}`))

	idxPath := filepath.Join(dir, "index", key)
	if err := os.WriteFile(idxPath, []byte("zzz not a checksum\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := newDiskStore(t, dir)
	if _, ok := s.Get(key); ok {
		t.Fatal("store followed a corrupt index")
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Fatalf("stats = %+v, want exactly the index quarantined", st)
	}
	if _, err := os.Stat(idxPath); !os.IsNotExist(err) {
		t.Fatalf("corrupt index still in index/: %v", err)
	}
}

func TestStoreDegradedOnWriteFailureAndRecovery(t *testing.T) {
	dir := t.TempDir()
	var flips []bool
	s, err := NewStore(StoreConfig{Dir: dir, OnDegraded: func(d bool) { flips = append(flips, d) }})
	if err != nil {
		t.Fatal(err)
	}
	// Replace objects/ with a regular file: every spill write now fails.
	objects := filepath.Join(dir, "objects")
	if err := os.RemoveAll(objects); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(objects, nil, 0o644); err != nil {
		t.Fatal(err)
	}

	s.Put(Key("k", "1"), []byte("x"))
	if !s.Degraded() {
		t.Fatal("store not degraded after a failed spill write")
	}
	if len(flips) != 1 || !flips[0] {
		t.Fatalf("OnDegraded calls = %v, want [true]", flips)
	}
	// Staying degraded does not re-fire the callback.
	s.Put(Key("k", "2"), []byte("y"))
	if len(flips) != 1 {
		t.Fatalf("OnDegraded re-fired while already degraded: %v", flips)
	}
	if st := s.Stats(); st.WriteErrors != 2 {
		t.Fatalf("WriteErrors = %d, want 2", st.WriteErrors)
	}
	// Degraded means "no spill", not "no service": memory still answers.
	if got, ok := s.Get(Key("k", "1")); !ok || !bytes.Equal(got, []byte("x")) {
		t.Fatalf("memory tier lost data while degraded: (%q, %v)", got, ok)
	}

	// Disk comes back: the next successful write clears the condition.
	if err := os.Remove(objects); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(objects, 0o755); err != nil {
		t.Fatal(err)
	}
	s.Put(Key("k", "3"), []byte("z"))
	if s.Degraded() {
		t.Fatal("store still degraded after a successful write")
	}
	if len(flips) != 2 || flips[1] {
		t.Fatalf("OnDegraded calls = %v, want [true false]", flips)
	}
}

func TestStorePeerFetchVerifiedAndSpilled(t *testing.T) {
	dirA := t.TempDir()
	a := newDiskStore(t, dirA)
	key := Key("simulate", "twolf", "1")
	payload := []byte(`{"benchmark":"twolf"}`)
	a.Put(key, payload)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		a.ServeKey(w, strings.TrimPrefix(r.URL.Path, "/v1/store/"))
	}))
	defer ts.Close()

	dirB := t.TempDir()
	b := newDiskStore(t, dirB)
	b.SetPeerSource(func() []string { return []string{ts.URL} })
	if got, ok := b.Get(key); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("peer Get = (%q, %v)", got, ok)
	}
	if st := b.Stats(); st.PeerHits != 1 || st.Misses != 0 {
		t.Fatalf("fetcher stats = %+v, want one peer hit", st)
	}
	// The serving node answered from its local tiers, never recursing into
	// its own peer tier.
	if st := a.Stats(); st.PeerHits != 0 {
		t.Fatalf("server stats = %+v, peer recursion detected", st)
	}
	// The fetched copy was spilled: a cold restart of B (no peers) serves
	// it from disk.
	b2 := newDiskStore(t, dirB)
	if got, ok := b2.Get(key); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("post-restart Get on fetcher = (%q, %v)", got, ok)
	}
	if st := b2.Stats(); st.DiskHits != 1 {
		t.Fatalf("post-restart fetcher stats = %+v, want a disk hit", st)
	}
}

func TestStorePeerCorruptionRejected(t *testing.T) {
	payload := []byte(`{"benchmark":"vpr"}`)
	wrongSum := sha256.Sum256([]byte("something else"))
	lying := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Spt-Store-Sha256", hex.EncodeToString(wrongSum[:]))
		_, _ = w.Write(payload)
	}))
	defer lying.Close()
	headerless := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write(payload)
	}))
	defer headerless.Close()

	s, err := NewStore(StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s.SetPeerSource(func() []string { return []string{lying.URL, headerless.URL} })
	if _, ok := s.Get(Key("simulate", "vpr", "1")); ok {
		t.Fatal("accepted a peer payload whose checksum did not verify")
	}
	if st := s.Stats(); st.Misses != 1 || st.PeerHits != 0 {
		t.Fatalf("stats = %+v, want a clean miss", st)
	}
}

// TestStoreOversizedRejectedAtPutAndPeerFetch: an object over
// MaxObjectBytes is refused at Put (storing it would make every peer fetch
// truncate it and fail the checksum) and skipped — counted, not silently
// recomputed — when a peer serves one anyway.
func TestStoreOversizedRejectedAtPutAndPeerFetch(t *testing.T) {
	st, err := NewStore(StoreConfig{Dir: t.TempDir(), MaxObjectBytes: 8})
	if err != nil {
		t.Fatal(err)
	}
	st.Put("big", bytes.Repeat([]byte{0xab}, 9))
	if _, ok := st.Get("big"); ok {
		t.Fatal("oversized payload was stored")
	}
	if got := st.Stats(); got.Oversized != 1 || got.Writes != 0 {
		t.Fatalf("stats = %+v, want Oversized=1 Writes=0", got)
	}
	// Exactly at the bound is fine.
	st.Put("fits", []byte("12345678"))
	if p, ok := st.Get("fits"); !ok || !bytes.Equal(p, []byte("12345678")) {
		t.Fatalf("at-bound payload lost: (%q, %v)", p, ok)
	}

	// A peer with a larger bound serves a 9-byte object with a valid
	// checksum; the bounded fetcher must skip it and count the skip.
	big := bytes.Repeat([]byte{0xcd}, 9)
	sum := sha256.Sum256(big)
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Spt-Store-Sha256", hex.EncodeToString(sum[:]))
		_, _ = w.Write(big)
	}))
	defer peer.Close()
	st.SetPeerSource(func() []string { return []string{peer.URL} })
	if _, ok := st.Get("huge-elsewhere"); ok {
		t.Fatal("accepted a peer object over MaxObjectBytes")
	}
	if got := st.Stats(); got.Oversized != 2 {
		t.Fatalf("stats = %+v, want the peer skip counted (Oversized=2)", got)
	}
}

// countingPipeline is a service.Pipeline that counts real computations.
type countingPipeline struct {
	compiles, simulates, sweeps atomic.Int64
}

func (p *countingPipeline) Compile(ctx context.Context, req client.CompileRequest, b guard.Budget) (*client.CompileResponse, error) {
	p.compiles.Add(1)
	return &client.CompileResponse{Benchmark: req.Benchmark, Fingerprint: "fp-" + req.Benchmark}, nil
}

func (p *countingPipeline) Simulate(ctx context.Context, req client.SimulateRequest, b guard.Budget) (*client.SimulateResponse, error) {
	p.simulates.Add(1)
	return &client.SimulateResponse{Benchmark: req.Benchmark, Speedup: 1.25}, nil
}

func (p *countingPipeline) Sweep(ctx context.Context, req client.SweepRequest, b guard.Budget) (*client.SweepResponse, error) {
	p.sweeps.Add(1)
	return &client.SweepResponse{Benchmark: req.Benchmark, Sweep: req.Sweep}, nil
}

var _ service.Pipeline = (*countingPipeline)(nil)

func TestPipelineReadThroughKeysOnResultFields(t *testing.T) {
	store, err := NewStore(StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cp := &countingPipeline{}
	p := NewPipeline(cp, store)
	ctx := context.Background()

	req := client.SimulateRequest{Benchmark: "parser", SRB: 64}
	r1, err := p.Simulate(ctx, req, guard.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p.Simulate(ctx, req, guard.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if cp.simulates.Load() != 1 {
		t.Fatalf("simulate computed %d times, want 1 (second call hits the store)", cp.simulates.Load())
	}
	if r2.Speedup != r1.Speedup || r2.Benchmark != r1.Benchmark {
		t.Fatalf("cached response %+v != computed %+v", r2, r1)
	}

	// A different result-determining field is a different key.
	req2 := req
	req2.SRB = 128
	if _, err := p.Simulate(ctx, req2, guard.Budget{}); err != nil {
		t.Fatal(err)
	}
	if cp.simulates.Load() != 2 {
		t.Fatalf("SRB change did not recompute: %d", cp.simulates.Load())
	}

	// Budgets only bound execution; they must not fragment the store.
	budgeted := req
	budgeted.Cycles = 999999
	if _, err := p.Simulate(ctx, budgeted, guard.Budget{Cycles: 999999}); err != nil {
		t.Fatal(err)
	}
	if cp.simulates.Load() != 2 {
		t.Fatalf("budget fields leaked into the store key: %d computes", cp.simulates.Load())
	}

	// Scale 0 and scale 1 are the same program.
	if _, err := p.Compile(ctx, client.CompileRequest{Benchmark: "gap"}, guard.Budget{}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Compile(ctx, client.CompileRequest{Benchmark: "gap", Scale: 1}, guard.Budget{}); err != nil {
		t.Fatal(err)
	}
	if cp.compiles.Load() != 1 {
		t.Fatalf("scale default fragmented the key space: %d computes", cp.compiles.Load())
	}
}

// TestStoreQuarantineCapEvictsOldest: quarantine/ is bounded by file count
// and bytes; an ongoing corruption source evicts the oldest evidence rather
// than filling the disk, and the byte gauge tracks what remains.
func TestStoreQuarantineCapEvictsOldest(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(StoreConfig{Dir: dir, QuarantineMaxFiles: 3, QuarantineMaxBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	// Quarantine five distinct files with strictly increasing mod times so
	// oldest-first is deterministic.
	base := time.Now().Add(-time.Hour)
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("corrupt-%d", i)
		path := filepath.Join(dir, "index", name)
		if err := os.WriteFile(path, []byte("bad bytes"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Chtimes(path, base.Add(time.Duration(i)*time.Minute), base.Add(time.Duration(i)*time.Minute)); err != nil {
			t.Fatal(err)
		}
		s.quarantine(path)
	}
	q, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != 3 {
		t.Fatalf("quarantine holds %d files, want cap of 3", len(q))
	}
	var names []string
	for _, e := range q {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	if names[0] != "corrupt-2" || names[2] != "corrupt-4" {
		t.Fatalf("survivors = %v, want the three newest", names)
	}
	if got := s.QuarantineBytes(); got != 3*int64(len("bad bytes")) {
		t.Fatalf("QuarantineBytes = %d, want %d", got, 3*len("bad bytes"))
	}
	var buf bytes.Buffer
	s.Metrics(&buf)
	if !strings.Contains(buf.String(), fmt.Sprintf("sptd_store_quarantine_bytes %d", s.QuarantineBytes())) {
		t.Fatal("metrics missing the sptd_store_quarantine_bytes gauge")
	}
}

// TestStoreQuarantineByteCap: the byte bound evicts independently of the
// file-count bound.
func TestStoreQuarantineByteCap(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(StoreConfig{Dir: dir, QuarantineMaxFiles: -1, QuarantineMaxBytes: 20})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Now().Add(-time.Hour)
	for i := 0; i < 4; i++ {
		path := filepath.Join(dir, "index", fmt.Sprintf("big-%d", i))
		if err := os.WriteFile(path, []byte("8 bytes!"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Chtimes(path, base.Add(time.Duration(i)*time.Minute), base.Add(time.Duration(i)*time.Minute)); err != nil {
			t.Fatal(err)
		}
		s.quarantine(path)
	}
	// 4×8 = 32 bytes quarantined; the 20-byte cap keeps the newest two.
	q, _ := os.ReadDir(filepath.Join(dir, "quarantine"))
	if len(q) != 2 {
		t.Fatalf("quarantine holds %d files, want 2 under the byte cap", len(q))
	}
	if got := s.QuarantineBytes(); got != 16 {
		t.Fatalf("QuarantineBytes = %d, want 16", got)
	}
}

// TestStoreQuarantineCapAppliedOnBoot: a restart inherits the previous
// process's quarantine and immediately re-applies the cap.
func TestStoreQuarantineCapAppliedOnBoot(t *testing.T) {
	dir := t.TempDir()
	qdir := filepath.Join(dir, "quarantine")
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		t.Fatal(err)
	}
	base := time.Now().Add(-time.Hour)
	for i := 0; i < 6; i++ {
		path := filepath.Join(qdir, fmt.Sprintf("old-%d", i))
		if err := os.WriteFile(path, []byte("leftover"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Chtimes(path, base.Add(time.Duration(i)*time.Minute), base.Add(time.Duration(i)*time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	s, err := NewStore(StoreConfig{Dir: dir, QuarantineMaxFiles: 2, QuarantineMaxBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	q, _ := os.ReadDir(qdir)
	if len(q) != 2 {
		t.Fatalf("boot left %d quarantine files, want cap of 2", len(q))
	}
	if got := s.QuarantineBytes(); got != 2*int64(len("leftover")) {
		t.Fatalf("QuarantineBytes after boot = %d", got)
	}
}
