package cluster

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// gossipNode bundles a Gossip instance with an httptest server that mounts
// its exchange/probe handlers, so tests drive real HTTP round trips while
// controlling time by calling Tick directly.
type gossipNode struct {
	g   *Gossip
	srv *httptest.Server
}

func newGossipNode(t *testing.T, name string, cfg GossipConfig) *gossipNode {
	t.Helper()
	mux := http.NewServeMux()
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	cfg.Self = name
	cfg.SelfURL = srv.URL
	if cfg.Interval == 0 {
		cfg.Interval = 100 * time.Millisecond
	}
	g := NewGossip(cfg, nil)
	mux.HandleFunc("POST /v1/gossip", g.HandleExchange)
	mux.HandleFunc("POST /v1/gossip/probe", g.HandleProbe)
	return &gossipNode{g: g, srv: srv}
}

// tickAll runs n gossip rounds on every node, in order, letting rumors
// propagate deterministically without real timers.
func tickAll(ctx context.Context, n int, nodes ...*gossipNode) {
	for i := 0; i < n; i++ {
		for _, nd := range nodes {
			nd.g.Tick(ctx)
		}
	}
}

func TestGossipJoinViaSeed(t *testing.T) {
	ctx := context.Background()
	a := newGossipNode(t, "a", GossipConfig{})
	b := newGossipNode(t, "b", GossipConfig{Seeds: []string{a.srv.URL}})

	// b knows nobody; its first tick must bootstrap through the seed and
	// leave both tables containing both members, alive.
	tickAll(ctx, 2, a, b)
	for _, nd := range []*gossipNode{a, b} {
		for _, name := range []string{"a", "b"} {
			m, ok := nd.g.StateOf(name)
			if !ok || m.State != StateAlive {
				t.Fatalf("node %s: member %s = %+v ok=%v, want alive", nd.g.cfg.Self, name, m, ok)
			}
		}
	}
	// b learned a's URL through the exchange, not configuration.
	if url, _ := b.g.URLOf("a"); url != a.srv.URL {
		t.Fatalf("b's URL for a = %q, want %q", url, a.srv.URL)
	}
}

func TestGossipSuspectThenDeadAfterGrace(t *testing.T) {
	ctx := context.Background()
	var deadNames []string
	a := newGossipNode(t, "a", GossipConfig{
		MissThreshold: 2,
		SuspectAfter:  50 * time.Millisecond,
		OnDead:        func(name string) { deadNames = append(deadNames, name) },
	})
	b := newGossipNode(t, "b", GossipConfig{Seeds: []string{a.srv.URL}})
	tickAll(ctx, 2, a, b)

	// Stop b entirely: transport failures, no third party to vouch for it.
	b.srv.Close()
	for i := 0; i < 4; i++ {
		a.g.Tick(ctx)
	}
	if m, _ := a.g.StateOf("b"); m.State != StateSuspect {
		t.Fatalf("b state after misses = %v, want suspect", m.State)
	}
	if len(deadNames) != 0 {
		t.Fatalf("OnDead fired during grace period: %v", deadNames)
	}
	time.Sleep(60 * time.Millisecond)
	a.g.Tick(ctx)
	if m, _ := a.g.StateOf("b"); m.State != StateDead {
		t.Fatalf("b state after grace = %v, want dead", m.State)
	}
	if len(deadNames) != 1 || deadNames[0] != "b" {
		t.Fatalf("OnDead calls = %v, want [b]", deadNames)
	}
}

// TestGossipAsymmetricPartition is the satellite-4 scenario: a can reach b
// but b cannot reach a. b accumulates misses against a, yet c (a third
// observer with clear paths to both) confirms a via an indirect probe, so
// a must never escalate past suspicion to dead — and therefore no journal
// steal is ever triggered by this one-way break.
func TestGossipAsymmetricPartition(t *testing.T) {
	ctx := context.Background()
	var deaths []string
	mk := func(name string, seeds []string, onDead func(string)) *gossipNode {
		return newGossipNode(t, name, GossipConfig{
			Seeds:         seeds,
			MissThreshold: 1,
			SuspectAfter:  10 * time.Second, // long grace: dead would only be reachable via a bug
			OnDead:        onDead,
		})
	}
	a := mk("a", nil, func(n string) { deaths = append(deaths, "a:"+n) })
	b := mk("b", []string{a.srv.URL}, func(n string) { deaths = append(deaths, "b:"+n) })
	c := mk("c", []string{a.srv.URL}, func(n string) { deaths = append(deaths, "c:"+n) })
	tickAll(ctx, 3, a, b, c)
	for _, nd := range []*gossipNode{a, b, c} {
		for _, name := range []string{"a", "b", "c"} {
			if m, ok := nd.g.StateOf(name); !ok || m.State != StateAlive {
				t.Fatalf("pre-partition: node %s sees %s = %+v ok=%v", nd.g.cfg.Self, name, m, ok)
			}
		}
	}

	// One-way break: b -> a fails, a -> b still works. (blockedOut on b,
	// blockedIn on a, so the break holds regardless of which side checks.)
	b.g.SetBlocked("a", false, true)
	a.g.SetBlocked("b", true, false)

	for i := 0; i < 12; i++ {
		tickAll(ctx, 1, a, b, c)
	}

	// b may suspect a (it can't reach it directly) but c's indirect path
	// must keep a from being declared dead anywhere.
	for _, nd := range []*gossipNode{a, b, c} {
		m, ok := nd.g.StateOf("a")
		if !ok {
			t.Fatalf("node %s lost member a", nd.g.cfg.Self)
		}
		if m.State == StateDead {
			t.Fatalf("node %s declared a dead across a one-way partition", nd.g.cfg.Self)
		}
	}
	if len(deaths) != 0 {
		t.Fatalf("OnDead fired during asymmetric partition: %v", deaths)
	}

	// Heal. a must converge back to alive on every node within a few rounds
	// (b's direct exchanges succeed again, and a refutes any suspicion).
	b.g.SetBlocked("a", false, false)
	a.g.SetBlocked("b", false, false)
	for i := 0; i < 8; i++ {
		tickAll(ctx, 1, a, b, c)
	}
	for _, nd := range []*gossipNode{a, b, c} {
		if m, _ := nd.g.StateOf("a"); m.State != StateAlive {
			t.Fatalf("after heal: node %s sees a = %v, want alive", nd.g.cfg.Self, m.State)
		}
	}
}

func TestGossipRefutationOutrunsRumor(t *testing.T) {
	ctx := context.Background()
	a := newGossipNode(t, "a", GossipConfig{})
	b := newGossipNode(t, "b", GossipConfig{Seeds: []string{a.srv.URL}})
	tickAll(ctx, 2, a, b)

	// Inject a rumor into b's table: a is dead at a's current incarnation.
	am, _ := b.g.StateOf("a")
	b.g.Merge([]Member{{Name: "a", URL: a.srv.URL, State: StateDead, Incarnation: am.Incarnation}})
	if m, _ := b.g.StateOf("a"); m.State != StateDead {
		t.Fatalf("rumor did not apply: %v", m.State)
	}

	// a's next exchange with b delivers the rumor back to a, which refutes
	// with a bumped incarnation in the same round trip; b's table flips back.
	tickAll(ctx, 3, a, b)
	m, _ := b.g.StateOf("a")
	if m.State != StateAlive {
		t.Fatalf("refutation failed: b sees a as %v", m.State)
	}
	if m.Incarnation <= am.Incarnation {
		t.Fatalf("refutation did not bump incarnation: %d <= %d", m.Incarnation, am.Incarnation)
	}
}

func TestGossipMergeOrdering(t *testing.T) {
	g := NewGossip(GossipConfig{Self: "self", SelfURL: "http://self"}, map[string]string{"p": "http://p"})

	// Same incarnation: more severe state wins.
	g.Merge([]Member{{Name: "p", URL: "http://p", State: StateSuspect, Incarnation: 0}})
	if m, _ := g.StateOf("p"); m.State != StateSuspect {
		t.Fatalf("severity ordering: got %v", m.State)
	}
	// Lower severity at the same incarnation is ignored.
	g.Merge([]Member{{Name: "p", URL: "http://p", State: StateAlive, Incarnation: 0}})
	if m, _ := g.StateOf("p"); m.State != StateSuspect {
		t.Fatalf("same-incarnation downgrade applied: %v", m.State)
	}
	// Higher incarnation always wins, even toward lower severity.
	g.Merge([]Member{{Name: "p", URL: "http://p", State: StateAlive, Incarnation: 1}})
	if m, _ := g.StateOf("p"); m.State != StateAlive || m.Incarnation != 1 {
		t.Fatalf("incarnation override: %+v", m)
	}
	// Stale incarnation is ignored outright.
	g.Merge([]Member{{Name: "p", URL: "http://p", State: StateDead, Incarnation: 0}})
	if m, _ := g.StateOf("p"); m.State != StateAlive {
		t.Fatalf("stale rumor applied: %v", m.State)
	}
	// Unknown member with no URL is unreachable garbage and must not join.
	g.Merge([]Member{{Name: "ghost", State: StateAlive, Incarnation: 9}})
	if _, ok := g.StateOf("ghost"); ok {
		t.Fatal("URL-less member joined the table")
	}
}

func TestGossipEncodeDecodeRoundTrip(t *testing.T) {
	in := []Member{
		{Name: "a", URL: "http://a:1", State: StateAlive, Incarnation: 1},
		{Name: "b", URL: "http://b:2", State: StateSuspect, Incarnation: 1 << 40},
		{Name: "c", URL: "", State: StateDead, Incarnation: 0},
	}
	out, err := DecodeMembers(EncodeMembers(in))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip length %d != %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("entry %d: %+v != %+v", i, out[i], in[i])
		}
	}
}

func TestGossipDecodeRejectsMalformed(t *testing.T) {
	valid := EncodeMembers([]Member{{Name: "a", URL: "http://a", State: StateAlive, Incarnation: 3}})
	cases := map[string][]byte{
		"empty":       nil,
		"bad magic":   []byte("NOPE\x00\x01"),
		"truncated":   valid[:len(valid)-3],
		"trailing":    append(append([]byte{}, valid...), 0xFF),
		"oversized":   append(append([]byte{}, valid...), make([]byte, MaxGossipMessage)...),
		"dup members": EncodeMembers(nil), // patched below
	}
	// Duplicate names require hand-assembly since EncodeMembers dedups nothing
	// but tests should still prove the decoder rejects them.
	dup := EncodeMembers([]Member{
		{Name: "x", URL: "u", State: StateAlive},
		{Name: "x", URL: "u", State: StateDead},
	})
	cases["dup members"] = dup
	for name, data := range cases {
		if _, err := DecodeMembers(data); err == nil {
			t.Errorf("%s: decode accepted malformed input", name)
		}
	}
}

// FuzzGossipDecode is the satellite-4 fuzz target: arbitrary bytes must
// never panic the decoder, and anything that decodes must re-encode to a
// table that decodes identically and merges into a live Gossip without
// corrupting the self entry.
func FuzzGossipDecode(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("SPG1"))
	f.Add(EncodeMembers([]Member{{Name: "n1", URL: "http://n1", State: StateAlive, Incarnation: 7}}))
	f.Add(EncodeMembers([]Member{
		{Name: "n1", URL: "http://n1", State: StateSuspect, Incarnation: 1},
		{Name: "n2", URL: "http://n2", State: StateDead, Incarnation: ^uint64(0)},
	}))
	f.Fuzz(func(t *testing.T, data []byte) {
		members, err := DecodeMembers(data)
		if err != nil {
			return
		}
		// Round trip: decode(encode(decode(x))) is identity.
		again, err := DecodeMembers(EncodeMembers(members))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again) != len(members) {
			t.Fatalf("round trip length %d != %d", len(again), len(members))
		}
		for i := range members {
			if again[i] != members[i] {
				t.Fatalf("round trip entry %d: %+v != %+v", i, again[i], members[i])
			}
		}
		// Merging any decoded table must not poison the member table: the
		// self entry stays alive and its incarnation never decreases.
		g := NewGossip(GossipConfig{Self: "self", SelfURL: "http://self"}, nil)
		before, _ := g.StateOf("self")
		g.Merge(members)
		self, ok := g.StateOf("self")
		if !ok || self.State != StateAlive || self.Incarnation < before.Incarnation {
			t.Fatalf("merge poisoned self entry: %+v ok=%v", self, ok)
		}
		// Bounded growth: the table holds at most self + decoded entries.
		if got := len(g.Snapshot()); got > 1+len(members) {
			t.Fatalf("table grew to %d from %d entries", got, len(members))
		}
	})
}

func TestGossipHandleExchangeTornBody(t *testing.T) {
	g := NewGossip(GossipConfig{Self: "self", SelfURL: "http://self"}, nil)
	req := httptest.NewRequest(http.MethodPost, "/v1/gossip", bytes.NewReader([]byte("garbage")))
	rec := httptest.NewRecorder()
	g.HandleExchange(rec, req)
	// Garbage still gets our table back (liveness over strictness) and the
	// table is untouched.
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if members, err := DecodeMembers(rec.Body.Bytes()); err != nil || len(members) != 1 {
		t.Fatalf("response table: %v %v", members, err)
	}
}
