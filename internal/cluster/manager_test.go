package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/guard"
	"repro/internal/service"
	"repro/spt/client"
)

// newClusterServer builds a daemon node for manager tests: stub pipeline,
// optional journal, cleaned up by drain. The journal is returned (nil
// without journalDir) so death-simulation tests can close it — a real
// SIGKILL releases the journal-dir flock via the kernel, and closing is
// the in-process equivalent.
func newClusterServer(t *testing.T, name, journalDir string) (*service.Server, *service.Journal) {
	t.Helper()
	cfg := service.Config{Pipeline: &countingPipeline{}, NodeName: name}
	var jn *service.Journal
	if journalDir != "" {
		var err error
		jn, err = service.OpenJournal(journalDir)
		if err != nil {
			t.Fatalf("OpenJournal(%s): %v", journalDir, err)
		}
		t.Cleanup(func() { _ = jn.Close() })
		cfg.Journal = jn
	}
	s, err := service.New(cfg)
	if err != nil {
		t.Fatalf("service.New(%s): %v", name, err)
	}
	t.Cleanup(func() { _ = s.Drain(2 * time.Second) })
	return s, jn
}

// writeDeadNodeJournal runs a real daemon as `name`, pushes async jobs
// through it so its write-ahead journal fills, and shuts it down — leaving
// behind exactly what a SIGKILLed node leaves for the survivors.
func writeDeadNodeJournal(t *testing.T, root, name string, benches []string) []string {
	t.Helper()
	s, jn := newClusterServer(t, name, filepath.Join(root, name))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := client.New(ts.URL, ts.Client())
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var ids []string
	for _, bench := range benches {
		resp, err := c.Simulate(ctx, client.SimulateRequest{
			JobRequest: client.JobRequest{Async: true},
			Benchmark:  bench,
		})
		if err != nil {
			t.Fatalf("submit %s: %v", bench, err)
		}
		ids = append(ids, resp.JobID)
	}
	for _, id := range ids {
		if _, err := c.Wait(ctx, id, 5*time.Millisecond); err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
	}
	if err := s.Drain(2 * time.Second); err != nil {
		t.Fatalf("drain dead node: %v", err)
	}
	// Release the journal-dir lock the way a SIGKILL would: until the
	// "dead" node's lock is gone, the steal fence (correctly) refuses to
	// touch its journal.
	_ = jn.Close()
	return ids
}

func TestStealExactlyOneSurvivorAdopts(t *testing.T) {
	root := t.TempDir()
	ids := writeDeadNodeJournal(t, root, "n3", []string{"parser", "mcf"})

	members := map[string]string{
		"n1": "http://127.0.0.1:1",
		"n2": "http://127.0.0.1:2",
		"n3": "http://127.0.0.1:3",
	}
	mk := func(name string) (*service.Server, *Manager) {
		s, _ := newClusterServer(t, name, filepath.Join(root, name))
		m, err := NewManager(ManagerConfig{Self: name, Members: members, JournalRoot: root, Server: s})
		if err != nil {
			t.Fatalf("NewManager(%s): %v", name, err)
		}
		return s, m
	}
	s1, m1 := mk("n1")
	s2, m2 := mk("n2")

	// Both survivors notice the death at once and race for the journal.
	var wg sync.WaitGroup
	for _, m := range []*Manager{m1, m2} {
		wg.Add(1)
		go func(m *Manager) {
			defer wg.Done()
			m.steal("n3")
		}(m)
	}
	wg.Wait()

	if total := m1.StealsWon() + m2.StealsWon(); total != 1 {
		t.Fatalf("steals won = %d + %d, want exactly 1 (rename arbitration)", m1.StealsWon(), m2.StealsWon())
	}
	winner, loser := s1, s2
	if m2.StealsWon() == 1 {
		winner, loser = s2, s1
	}

	// Every dead-node job is pollable on the winner — and only there.
	tsW := httptest.NewServer(winner.Handler())
	defer tsW.Close()
	tsL := httptest.NewServer(loser.Handler())
	defer tsL.Close()
	cw := client.New(tsW.URL, tsW.Client())
	cl := client.New(tsL.URL, tsL.Client())
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, id := range ids {
		js, err := cw.Job(ctx, id)
		if err != nil {
			t.Fatalf("winner lost adopted job %s: %v", id, err)
		}
		if js.State != client.StateDone || js.Outcome != client.OutcomeOK {
			t.Fatalf("adopted job %s = %+v", id, js)
		}
		var ae *client.APIError
		if _, err := cl.Job(ctx, id); !errors.As(err, &ae) || ae.StatusCode != http.StatusNotFound {
			t.Fatalf("loser answered for %s: %v (want 404)", id, err)
		}
	}

	// A second detection round steals nothing new.
	m1.steal("n3")
	m2.steal("n3")
	if total := m1.StealsWon() + m2.StealsWon(); total != 1 {
		t.Fatalf("re-steal changed the count: %d", total)
	}
}

// TestStealFencedWhileVictimAlive: a peer that misses heartbeats but whose
// process is still running (slow, paused, partitioned) holds its
// journal-dir lock, so the steal must refuse to touch its journal — a
// premature rename would lose every record the live victim appends after
// the fold and let its next compaction run against a vanished path.
func TestStealFencedWhileVictimAlive(t *testing.T) {
	root := t.TempDir()
	victim, err := service.OpenJournal(filepath.Join(root, "n3"))
	if err != nil {
		t.Fatal(err)
	}
	s, _ := newClusterServer(t, "n1", filepath.Join(root, "n1"))
	members := map[string]string{"n1": "http://127.0.0.1:1", "n3": "http://127.0.0.1:3"}
	m, err := NewManager(ManagerConfig{Self: "n1", Members: members, JournalRoot: root, Server: s})
	if err != nil {
		t.Fatal(err)
	}

	m.steal("n3")
	if m.StealsWon() != 0 || m.StealsFenced() != 1 {
		t.Fatalf("steal of a live peer: won=%d fenced=%d, want won=0 fenced=1", m.StealsWon(), m.StealsFenced())
	}
	if _, err := os.Stat(filepath.Join(root, "n3", "jobs.journal")); err != nil {
		t.Fatalf("live peer's journal was touched: %v", err)
	}

	// Once the victim really dies the kernel releases its lock (Close is
	// the in-process stand-in for SIGKILL) and the steal goes through.
	if err := victim.Close(); err != nil {
		t.Fatal(err)
	}
	m.steal("n3")
	if m.StealsWon() != 1 {
		t.Fatalf("steal after lock release: won=%d, want 1", m.StealsWon())
	}
}

// TestForwardOutlivesHeartbeatTimeout: forwarding must not share the
// heartbeat probe client's timeout — an owner that needs longer than one
// heartbeat interval to compute would otherwise abort the proxy mid-flight
// and silently fall back to local execution, defeating routing locality.
func TestForwardOutlivesHeartbeatTimeout(t *testing.T) {
	hb := 10 * time.Millisecond
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(8 * hb) // far past the heartbeat-probe timeout
		w.Header().Set("Content-Type", "application/json")
		_, _ = io.WriteString(w, `{"benchmark":"x","job_id":"slow-owner"}`)
	}))
	defer slow.Close()

	sa, _ := newClusterServer(t, "a", "")
	members := map[string]string{"a": "http://127.0.0.1:1", "b": slow.URL}
	ma, err := NewManager(ManagerConfig{Self: "a", Members: members, Heartbeat: hb, Server: sa})
	if err != nil {
		t.Fatal(err)
	}
	tsa := httptest.NewServer(ma.Middleware(sa.Handler()))
	defer tsa.Close()

	var bench string
	for _, cand := range []string{"parser", "mcf", "gzip", "twolf", "vortex", "vpr", "gcc", "gap"} {
		if owner, ok := ma.Ring().Owner(client.RouteKey(cand, 1)); ok && owner == "b" {
			bench = cand
			break
		}
	}
	if bench == "" {
		t.Fatal("no candidate benchmark routes to b")
	}
	resp, err := http.Post(tsa.URL+"/v1/simulate", "application/json",
		strings.NewReader(fmt.Sprintf(`{"benchmark":%q}`, bench)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "slow-owner") {
		t.Fatalf("slow owner's answer was not proxied (fell back to local): %s", body)
	}
	if ma.forwards.Load() != 1 {
		t.Fatalf("forwards = %d, want 1", ma.forwards.Load())
	}
}

// clusterNodePair wires two daemon nodes with manager middleware into
// httptest servers whose URLs the managers know.
func clusterNodePair(t *testing.T) (ma, mb *Manager, tsa, tsb *httptest.Server) {
	t.Helper()
	type handlerBox struct{ h http.Handler }
	mk := func(name string) (*service.Server, *httptest.Server, *atomic.Value) {
		s, _ := newClusterServer(t, name, "")
		var h atomic.Value
		h.Store(handlerBox{s.Handler()})
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			h.Load().(handlerBox).h.ServeHTTP(w, r)
		}))
		t.Cleanup(ts.Close)
		return s, ts, &h
	}
	sa, tsa, ha := mk("a")
	sb, tsb, hb := mk("b")
	members := map[string]string{"a": tsa.URL, "b": tsb.URL}
	var err error
	if ma, err = NewManager(ManagerConfig{Self: "a", Members: members, Server: sa}); err != nil {
		t.Fatal(err)
	}
	if mb, err = NewManager(ManagerConfig{Self: "b", Members: members, Server: sb}); err != nil {
		t.Fatal(err)
	}
	ha.Store(handlerBox{ma.Middleware(sa.Handler())})
	hb.Store(handlerBox{mb.Middleware(sb.Handler())})
	return ma, mb, tsa, tsb
}

func TestMiddlewareForwardsToOwnerOneHop(t *testing.T) {
	ma, mb, tsa, _ := clusterNodePair(t)

	// Find a benchmark whose ring owner is b, then submit it to a.
	var bench string
	for _, cand := range []string{"parser", "mcf", "gzip", "twolf", "vortex", "vpr", "gcc", "gap"} {
		if owner, ok := ma.Ring().Owner(client.RouteKey(cand, 1)); ok && owner == "b" {
			bench = cand
			break
		}
	}
	if bench == "" {
		t.Fatal("no candidate benchmark routes to b")
	}

	submit := func(forwarded bool) *client.SimulateResponse {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, tsa.URL+"/v1/simulate",
			strings.NewReader(fmt.Sprintf(`{"benchmark":%q}`, bench)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if forwarded {
			req.Header.Set("X-Spt-Forwarded", "test")
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("submit = %d", resp.StatusCode)
		}
		var sr client.SimulateResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
		return &sr
	}

	// Mis-routed submit: a proxies it to b, whose node name stamps the id.
	if sr := submit(false); !strings.HasPrefix(sr.JobID, "b-") {
		t.Fatalf("job id %q, want b-* (served by the ring owner)", sr.JobID)
	}
	if ma.forwards.Load() != 1 || mb.forwards.Load() != 0 {
		t.Fatalf("forwards = a:%d b:%d, want exactly one hop a→b", ma.forwards.Load(), mb.forwards.Load())
	}

	// An already-forwarded request is served locally even though a's ring
	// view says b owns it — the one-hop bound under disagreeing views.
	if sr := submit(true); !strings.HasPrefix(sr.JobID, "a-") {
		t.Fatalf("forwarded-marked job id %q, want a-* (no second hop)", sr.JobID)
	}
	if ma.forwards.Load() != 1 {
		t.Fatalf("forwards = %d after marked request, want still 1", ma.forwards.Load())
	}
}

func TestMiddlewareStoreAndClusterView(t *testing.T) {
	s, _ := newClusterServer(t, "a", "")
	st, err := NewStore(StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	key := Key("simulate", "gcc", "1")
	payload := []byte(`{"benchmark":"gcc"}`)
	st.Put(key, payload)
	m, err := NewManager(ManagerConfig{
		Self:    "a",
		Members: map[string]string{"a": "http://127.0.0.1:1"},
		Server:  s,
		Store:   st,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(m.Middleware(s.Handler()))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/store/" + key)
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	_, _ = body.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body.Bytes(), payload) {
		t.Fatalf("GET /v1/store = %d %q", resp.StatusCode, body.String())
	}
	if resp.Header.Get("X-Spt-Store-Sha256") == "" {
		t.Fatal("peer-fetch response missing the checksum header")
	}
	if resp, _ := http.Get(ts.URL + "/v1/store/" + Key("missing")); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET missing key = %d, want 404", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view struct {
		Self  string   `json:"self"`
		Alive []string `json:"alive"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	if view.Self != "a" || len(view.Alive) != 1 || view.Alive[0] != "a" {
		t.Fatalf("cluster view = %+v", view)
	}
}

func TestGossipDeclaresDeadThenRevives(t *testing.T) {
	// b answers with a non-gossip body while up; when "down", the handler
	// aborts the connection without a response — the in-process equivalent
	// of a crashed process (transport failure, not an HTTP answer).
	var down atomic.Bool
	tsb := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			panic(http.ErrAbortHandler)
		}
		_, _ = io.WriteString(w, "not a gossip table, but an answer is an answer")
	}))
	defer tsb.Close()

	sa, _ := newClusterServer(t, "a", "")
	m, err := NewManager(ManagerConfig{
		Self:          "a",
		Members:       map[string]string{"a": "http://127.0.0.1:1", "b": tsb.URL},
		Heartbeat:     10 * time.Millisecond,
		MissThreshold: 2,
		SuspectAfter:  30 * time.Millisecond,
		Server:        sa,
	})
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 3; i++ {
		m.Tick()
	}
	if !m.Ring().IsAlive("b") {
		t.Fatal("answering peer declared dead")
	}

	down.Store(true)
	deadline := time.Now().Add(5 * time.Second)
	for m.Ring().IsAlive("b") && time.Now().Before(deadline) {
		m.Tick() // misses accumulate, suspicion starts, the grace expires
		time.Sleep(5 * time.Millisecond)
	}
	if m.Ring().IsAlive("b") {
		t.Fatal("unreachable peer still alive after misses + suspect grace")
	}
	if st, _ := m.Gossip().StateOf("b"); st.State != StateDead {
		t.Fatalf("gossip state of b = %v, want dead", st.State)
	}
	if m.AlivePeerURLs() != nil {
		t.Fatalf("AlivePeerURLs = %v, want none", m.AlivePeerURLs())
	}

	// b answers again at the same URL: the next direct probe revives it —
	// first-hand contact outranks the local death verdict.
	down.Store(false)
	for i := 0; i < 3 && !m.Ring().IsAlive("b"); i++ {
		m.Tick()
	}
	if !m.Ring().IsAlive("b") {
		t.Fatal("revived peer not returned to the ring")
	}
	if urls := m.AlivePeerURLs(); len(urls) != 1 || urls[0] != tsb.URL {
		t.Fatalf("AlivePeerURLs = %v", urls)
	}
}

// TestStopCancelsInflightProbe is the satellite-1 regression test: a gossip
// exchange against a stalled peer must not outlive Stop — the manager
// lifecycle context created in NewManager is the probe's parent, so
// cancelling it aborts the in-flight request immediately.
func TestStopCancelsInflightProbe(t *testing.T) {
	probeStarted := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	stall := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		once.Do(func() { close(probeStarted) })
		// Hold the probe open until the test ends. A test-owned channel
		// rather than r.Context(): the handler never drains the POST body,
		// so net/http would not notice the client disconnect and Close
		// would hang waiting for this handler.
		<-release
	}))
	defer stall.Close()
	defer close(release)

	sa, _ := newClusterServer(t, "a", "")
	m, err := NewManager(ManagerConfig{
		Self:    "a",
		Members: map[string]string{"a": "http://127.0.0.1:1", "b": stall.URL},
		// A long heartbeat makes the per-exchange timeout far longer than
		// the Stop deadline below, and the client has no timeout of its
		// own: only lifecycle cancellation can end this probe early.
		Heartbeat:  10 * time.Second,
		HTTPClient: &http.Client{},
		Server:     sa,
	})
	if err != nil {
		t.Fatal(err)
	}

	tickDone := make(chan struct{})
	go func() {
		m.Tick() // blocks inside the exchange against the stalled peer
		close(tickDone)
	}()
	<-probeStarted
	stopDone := make(chan struct{})
	go func() {
		m.Stop()
		close(stopDone)
	}()
	for _, step := range []struct {
		name string
		ch   <-chan struct{}
	}{{"Stop", stopDone}, {"Tick", tickDone}} {
		select {
		case <-step.ch:
		case <-time.After(3 * time.Second):
			t.Fatalf("%s did not return promptly with a probe stalled mid-flight", step.name)
		}
	}
}

// TestStealRestoresResultsToStore: adopting a dead peer's journal also
// restores its computed results into the tiered store — the journal is the
// durable record when the dead node's replica pushes raced its crash — so
// a later request for the same work is a store hit, not a recompute.
func TestStealRestoresResultsToStore(t *testing.T) {
	root := t.TempDir()
	writeDeadNodeJournal(t, root, "n3", []string{"parser", "mcf"})

	s, _ := newClusterServer(t, "n1", filepath.Join(root, "n1"))
	st, err := NewStore(StoreConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(ManagerConfig{
		Self:        "n1",
		Members:     map[string]string{"n1": "http://127.0.0.1:1", "n3": "http://127.0.0.1:3"},
		JournalRoot: root,
		Server:      s,
		Store:       st,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.steal("n3")
	if m.StealsWon() != 1 {
		t.Fatalf("steals won = %d, want 1", m.StealsWon())
	}
	if m.StoreRestores() != 2 {
		t.Fatalf("store restores = %d, want 2", m.StoreRestores())
	}
	for _, bench := range []string{"parser", "mcf"} {
		if !st.Has(SimulateKey(client.SimulateRequest{Benchmark: bench})) {
			t.Fatalf("restored store missing %s", bench)
		}
	}

	// The zero-recompute guarantee: a read-through pipeline over the
	// restored store answers without computing, and the payload decodes
	// with no job-id stamp (the pre-stamp computation bytes).
	cp := &countingPipeline{}
	p := NewPipeline(cp, st)
	resp, err := p.Simulate(context.Background(), client.SimulateRequest{Benchmark: "parser"}, guard.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if cp.simulates.Load() != 0 {
		t.Fatalf("restored result recomputed %d times, want 0", cp.simulates.Load())
	}
	if resp.JobID != "" || resp.Benchmark != "parser" {
		t.Fatalf("restored payload = %+v, want pre-stamp bytes", resp)
	}

	// Re-stealing is idempotent: nothing doubles.
	m.steal("n3")
	if m.StoreRestores() != 2 {
		t.Fatalf("re-steal duplicated restores: %d", m.StoreRestores())
	}
}

// TestClusterViewExtendedAndLagCondition: GET /v1/cluster (read through the
// typed client) carries the gossip table, store health and replication lag;
// a pending-push backlog past the high-water mark raises the readyz
// replication-lag condition, which clears only when the queue drains dry.
func TestClusterViewExtendedAndLagCondition(t *testing.T) {
	s, _ := newClusterServer(t, "a", "")
	st, err := NewStore(StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(ManagerConfig{
		Self:    "a",
		Members: map[string]string{"a": "http://127.0.0.1:1"},
		Server:  s,
		Store:   st,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(m.Middleware(s.Handler()))
	defer ts.Close()

	// Fill the push queue past the high-water mark; no peers are alive so
	// nothing drains on its own.
	for i := 0; i < replicationLagHighWater; i++ {
		st.Put(Key("simulate", "bench", fmt.Sprint(i)), []byte(`{"i":1}`))
	}
	view, err := client.New(ts.URL, ts.Client()).ClusterView(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if view.Self != "a" || view.ReplicationPending != replicationLagHighWater {
		t.Fatalf("view = %+v, want pending %d", view, replicationLagHighWater)
	}
	if len(view.Gossip) != 1 || view.Gossip[0].Name != "a" || view.Gossip[0].State != "alive" || view.Gossip[0].Incarnation == 0 {
		t.Fatalf("gossip rows = %+v", view.Gossip)
	}
	if view.StoreDegraded {
		t.Fatal("healthy store reported degraded")
	}
	if ready, conds := s.ReadyState(); ready || len(conds) == 0 || conds[0] != service.CondReplicationLag {
		t.Fatalf("readyz = (%v, %v), want replication-lag raised", ready, conds)
	}

	// Draining to zero clears the condition (hysteresis: only zero does).
	m.repl.DrainPushes(context.Background())
	view, err = client.New(ts.URL, ts.Client()).ClusterView(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if view.ReplicationPending != 0 {
		t.Fatalf("pending after drain = %d", view.ReplicationPending)
	}
	if ready, conds := s.ReadyState(); !ready {
		t.Fatalf("readyz still failing after drain: %v", conds)
	}
}

// TestBlockHookGated: the partition test hook must not exist unless
// explicitly enabled — a production daemon exposes no endpoint that can
// partition its own gossip.
func TestBlockHookGated(t *testing.T) {
	body := `{"peer":"b","inbound":true,"outbound":true}`
	mk := func(hooks bool) *httptest.Server {
		s, _ := newClusterServer(t, "a", "")
		m, err := NewManager(ManagerConfig{
			Self:            "a",
			Members:         map[string]string{"a": "http://127.0.0.1:1", "b": "http://127.0.0.1:2"},
			Server:          s,
			EnableTestHooks: hooks,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(m.Middleware(s.Handler()))
		t.Cleanup(ts.Close)
		return ts
	}
	resp, err := http.Post(mk(false).URL+"/v1/gossip/block", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled hook answered %d, want 404", resp.StatusCode)
	}
	resp, err = http.Post(mk(true).URL+"/v1/gossip/block", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("enabled hook answered %d, want 200", resp.StatusCode)
	}
}
