package cluster

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the SWIM-style membership layer that replaces the static
// -cluster member list: nodes join through any seed peer, piggyback the
// whole member table (alive/suspect/dead plus incarnation numbers) on every
// probe exchange, and escalate a silent peer through suspect before dead so
// one observer's bad network path never declares a live node gone. The
// discipline mirrors the paper's speculation contract: suspicion is a cheap
// misprediction that the suspected node refutes by bumping its incarnation,
// and only an unrefuted suspicion past the grace period commits to dead.

// MemberState is a member's liveness as known to one observer.
type MemberState uint8

// The three SWIM member states. Suspect members stay in the routing ring
// (they may merely be slow or partitioned from one observer); only dead
// members leave it.
const (
	StateAlive MemberState = iota
	StateSuspect
	StateDead
)

// String renders the state for the /v1/cluster view.
func (s MemberState) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Member is one row of the gossiped membership table.
type Member struct {
	Name        string
	URL         string
	State       MemberState
	Incarnation uint64
}

// --- wire format ---
//
// Gossip messages are a compact length-prefixed binary table, not JSON:
// they ride on every probe at the heartbeat cadence, and the format is
// fuzzed (FuzzGossipDecode) so a torn, truncated, oversized or adversarial
// message can never panic the decoder or poison the member table.
//
//	magic "SPG1"  (4 bytes)
//	count uint16  (big endian)
//	entry ×count:
//	  nameLen uint8,  name bytes
//	  urlLen  uint16, url bytes
//	  state   uint8   (0 alive, 1 suspect, 2 dead)
//	  incarnation uint64 (big endian)

const (
	gossipMagic = "SPG1"
	// MaxGossipMessage bounds one wire message; HandleExchange reads no
	// more than this many bytes off an inbound request.
	MaxGossipMessage = 64 << 10
	maxGossipEntries = 1024
	maxMemberName    = 64
	maxMemberURL     = 512
)

// ErrBadGossip is wrapped by every DecodeMembers failure.
var ErrBadGossip = errors.New("cluster: bad gossip message")

// EncodeMembers renders a member table into the gossip wire format.
// Entries violating the format bounds are skipped rather than producing an
// undecodable message.
func EncodeMembers(members []Member) []byte {
	var buf bytes.Buffer
	buf.WriteString(gossipMagic)
	countAt := buf.Len()
	buf.Write([]byte{0, 0})
	n := 0
	for _, m := range members {
		if m.Name == "" || len(m.Name) > maxMemberName || len(m.URL) > maxMemberURL ||
			m.State > StateDead || n >= maxGossipEntries {
			continue
		}
		buf.WriteByte(byte(len(m.Name)))
		buf.WriteString(m.Name)
		var u16 [2]byte
		binary.BigEndian.PutUint16(u16[:], uint16(len(m.URL)))
		buf.Write(u16[:])
		buf.WriteString(m.URL)
		buf.WriteByte(byte(m.State))
		var u64 [8]byte
		binary.BigEndian.PutUint64(u64[:], m.Incarnation)
		buf.Write(u64[:])
		n++
	}
	out := buf.Bytes()
	binary.BigEndian.PutUint16(out[countAt:], uint16(n))
	return out
}

// DecodeMembers parses a gossip wire message. Every failure mode — wrong
// magic, truncation, oversize, out-of-range lengths or states, duplicate
// names — returns an error wrapping ErrBadGossip; it never panics and never
// returns a partially-valid table.
func DecodeMembers(data []byte) ([]Member, error) {
	fail := func(format string, args ...any) ([]Member, error) {
		return nil, fmt.Errorf("%w: "+format, append([]any{ErrBadGossip}, args...)...)
	}
	if len(data) > MaxGossipMessage {
		return fail("message %d bytes exceeds %d", len(data), MaxGossipMessage)
	}
	if len(data) < len(gossipMagic)+2 || string(data[:len(gossipMagic)]) != gossipMagic {
		return fail("missing magic")
	}
	count := int(binary.BigEndian.Uint16(data[len(gossipMagic):]))
	if count > maxGossipEntries {
		return fail("%d entries exceeds %d", count, maxGossipEntries)
	}
	p := data[len(gossipMagic)+2:]
	members := make([]Member, 0, count)
	seen := make(map[string]bool, count)
	for i := 0; i < count; i++ {
		if len(p) < 1 {
			return fail("truncated at entry %d", i)
		}
		nameLen := int(p[0])
		p = p[1:]
		if nameLen == 0 || nameLen > maxMemberName || len(p) < nameLen+2 {
			return fail("entry %d: bad name length %d", i, nameLen)
		}
		name := string(p[:nameLen])
		p = p[nameLen:]
		urlLen := int(binary.BigEndian.Uint16(p))
		p = p[2:]
		if urlLen > maxMemberURL || len(p) < urlLen+1+8 {
			return fail("entry %d: bad url length %d", i, urlLen)
		}
		url := string(p[:urlLen])
		p = p[urlLen:]
		state := MemberState(p[0])
		if state > StateDead {
			return fail("entry %d: unknown state %d", i, p[0])
		}
		inc := binary.BigEndian.Uint64(p[1:9])
		p = p[9:]
		if seen[name] {
			return fail("duplicate member %q", name)
		}
		seen[name] = true
		members = append(members, Member{Name: name, URL: url, State: state, Incarnation: inc})
	}
	if len(p) != 0 {
		return fail("%d trailing bytes", len(p))
	}
	return members, nil
}

// --- membership state machine ---

// GossipConfig wires one node's gossip instance.
type GossipConfig struct {
	// Self is this node's name; SelfURL its advertised base URL.
	Self    string
	SelfURL string
	// Seeds are base URLs to join through when the member table holds
	// nobody but self (the -join path). Ignored once peers are known.
	Seeds []string
	// Interval is the probe cadence (informational here; the owner drives
	// Tick). It sizes the per-exchange timeout.
	Interval time.Duration
	// SuspectAfter is the grace period between suspect and dead (default
	// 3×Interval). A suspicion the member refutes within it costs nothing.
	SuspectAfter time.Duration
	// MissThreshold is how many consecutive failed direct exchanges a peer
	// may accumulate before indirect probes run and suspicion starts
	// (default 3) — smoothing against one slow scheduler quantum.
	MissThreshold int
	// IndirectProbes is how many third-party members are asked to confirm
	// an unreachable peer before it is suspected (default 2).
	IndirectProbes int
	// HTTPClient performs exchanges (nil = a client with Interval timeout).
	HTTPClient *http.Client
	// OnJoin fires when a previously-unknown member is learned (any state).
	OnJoin func(m Member)
	// OnDead fires on a member's transition into StateDead.
	OnDead func(name string)
	// OnAlive fires on a member's transition out of StateDead.
	OnAlive func(name string)
}

type gossipMember struct {
	Member
	suspectSince time.Time // this observer's clock when it first saw suspect
	misses       int       // consecutive failed direct exchanges
}

// Gossip is one node's membership table plus the SWIM probe/merge machinery.
// It is driven by an owner calling Tick at the gossip interval and by the
// HTTP handlers the cluster manager mounts. Safe for concurrent use.
type Gossip struct {
	cfg  GossipConfig
	http *http.Client

	mu         sync.Mutex
	members    map[string]*gossipMember
	probeOrder []string // round-robin cursor state
	probeIdx   int
	seedIdx    int
	blockedIn  map[string]bool // test hook: refuse inbound from these peers
	blockedOut map[string]bool // test hook: fail outbound to these peers

	exchanges      atomic.Int64
	exchangeFails  atomic.Int64
	indirectProbes atomic.Int64
	suspects       atomic.Int64
	refutations    atomic.Int64
	joins          atomic.Int64
}

// NewGossip seeds the table with self (alive, incarnation 1) and any
// statically configured members (incarnation 0, so their own gossip always
// wins over the static seed).
func NewGossip(cfg GossipConfig, static map[string]string) *Gossip {
	if cfg.Interval <= 0 {
		cfg.Interval = 500 * time.Millisecond
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 3 * cfg.Interval
	}
	if cfg.MissThreshold <= 0 {
		cfg.MissThreshold = 3
	}
	if cfg.IndirectProbes <= 0 {
		cfg.IndirectProbes = 2
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{Timeout: cfg.Interval}
	}
	g := &Gossip{
		cfg:        cfg,
		http:       cfg.HTTPClient,
		members:    make(map[string]*gossipMember),
		blockedIn:  make(map[string]bool),
		blockedOut: make(map[string]bool),
	}
	g.members[cfg.Self] = &gossipMember{Member: Member{
		Name: cfg.Self, URL: cfg.SelfURL, State: StateAlive, Incarnation: 1,
	}}
	for name, url := range static {
		if name == cfg.Self {
			continue
		}
		g.members[name] = &gossipMember{Member: Member{Name: name, URL: url, State: StateAlive}}
	}
	return g
}

// Snapshot returns the full member table sorted by name.
func (g *Gossip) Snapshot() []Member {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]Member, 0, len(g.members))
	for _, m := range g.members {
		out = append(out, m.Member)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// StateOf reports one member's state (ok false for unknown names).
func (g *Gossip) StateOf(name string) (Member, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	m, ok := g.members[name]
	if !ok {
		return Member{}, false
	}
	return m.Member, true
}

// URLOf returns a member's advertised base URL.
func (g *Gossip) URLOf(name string) (string, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	m, ok := g.members[name]
	if !ok {
		return "", false
	}
	return m.URL, true
}

// SetBlocked is the partition test hook: while blocked, inbound exchanges
// from peer are refused (503) and outbound exchanges to it fail without
// touching the network. Asymmetric partitions are modeled by blocking only
// one direction.
func (g *Gossip) SetBlocked(peer string, inbound, outbound bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.blockedIn[peer] = inbound
	g.blockedOut[peer] = outbound
}

// errBlocked marks an exchange suppressed by the partition test hook.
var errBlocked = errors.New("cluster: gossip blocked by test hook")

// Tick runs one gossip round: probe the next member (or a seed when nobody
// else is known), fall back to indirect probes through third parties before
// suspecting, and expire overdue suspects to dead. The owner calls it at
// the gossip interval; tests call it directly for determinism.
func (g *Gossip) Tick(ctx context.Context) {
	target, url, viaSeed := g.nextTarget()
	if target == "" && url == "" {
		g.expireSuspects()
		return
	}
	err := g.exchange(ctx, target, url)
	if viaSeed {
		// Seed exchanges bootstrap the table; reachability bookkeeping
		// applies only to named members.
		g.expireSuspects()
		return
	}
	g.mu.Lock()
	m, known := g.members[target]
	if known {
		if err == nil {
			m.misses = 0
			if m.State != StateAlive {
				// The peer answered this node directly: that is first-hand
				// proof of life, stronger than any second-hand rumor at the
				// same incarnation. Locally override to alive; if the peer
				// gossips (it is an sptd node), its own refutation with a
				// bumped incarnation follows and settles the cluster.
				g.setStateLocked(m, StateAlive)
			}
		} else {
			m.misses++
			if m.misses >= g.cfg.MissThreshold && m.State == StateAlive {
				// Before suspecting, ask third parties to vouch: a one-way
				// partition looks exactly like a death from this seat.
				g.mu.Unlock()
				confirmed := g.indirectConfirm(ctx, target, url)
				g.mu.Lock()
				if m, known = g.members[target]; known {
					if confirmed {
						m.misses = 0
					} else if m.State == StateAlive {
						g.suspects.Add(1)
						g.setStateLocked(m, StateSuspect)
					}
				}
			}
		}
	}
	g.mu.Unlock()
	g.expireSuspects()
}

// nextTarget picks the next probe target round-robin over every known
// member but self — dead members included, so a peer that restarts on the
// same address is noticed by direct probing even before its own gossip
// reaches us. With no members known it rotates through the seed URLs.
func (g *Gossip) nextTarget() (name, url string, viaSeed bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	var cands []string
	for n, m := range g.members {
		if n != g.cfg.Self && m.URL != "" {
			cands = append(cands, n)
		}
	}
	if len(cands) == 0 {
		if len(g.cfg.Seeds) == 0 {
			return "", "", false
		}
		url := g.cfg.Seeds[g.seedIdx%len(g.cfg.Seeds)]
		g.seedIdx++
		return "", url, true
	}
	sort.Strings(cands)
	g.probeIdx++
	n := cands[g.probeIdx%len(cands)]
	return n, g.members[n].URL, false
}

// exchange POSTs this node's table to url and merges the response table.
// An HTTP response with an undecodable body still counts as success for
// liveness (the process demonstrably answered); only transport failure is
// a miss.
func (g *Gossip) exchange(ctx context.Context, peer, url string) error {
	g.mu.Lock()
	blocked := peer != "" && g.blockedOut[peer]
	g.mu.Unlock()
	if blocked {
		g.exchangeFails.Add(1)
		return errBlocked
	}
	g.exchanges.Add(1)
	body := EncodeMembers(g.Snapshot())
	cctx, cancel := context.WithTimeout(ctx, g.cfg.Interval)
	defer cancel()
	req, err := http.NewRequestWithContext(cctx, http.MethodPost, url+"/v1/gossip", bytes.NewReader(body))
	if err != nil {
		g.exchangeFails.Add(1)
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set(gossipFromHeader, g.cfg.Self)
	resp, err := g.http.Do(req)
	if err != nil {
		g.exchangeFails.Add(1)
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, MaxGossipMessage+1))
	if err != nil {
		g.exchangeFails.Add(1)
		return err
	}
	if resp.StatusCode != http.StatusOK {
		// The peer refused the exchange (blocked hook, draining proxy):
		// still an HTTP answer, but no table to merge. It proves liveness
		// only when the refusal came from the peer process itself; the
		// block hook uses 503 precisely so a partitioned exchange does NOT
		// count as contact.
		if resp.StatusCode == http.StatusServiceUnavailable {
			g.exchangeFails.Add(1)
			return fmt.Errorf("cluster: gossip exchange refused: %d", resp.StatusCode)
		}
		return nil
	}
	if remote, derr := DecodeMembers(data); derr == nil {
		g.Merge(remote)
	}
	return nil
}

// indirectConfirm asks up to IndirectProbes alive third parties to reach
// target on this node's behalf. One confirmation is enough: the target is
// alive, just unreachable from here — a one-way partition, not a death.
func (g *Gossip) indirectConfirm(ctx context.Context, target, targetURL string) bool {
	g.mu.Lock()
	var helpers []string
	for n, m := range g.members {
		if n != g.cfg.Self && n != target && m.State == StateAlive && !g.blockedOut[n] {
			helpers = append(helpers, n)
		}
	}
	sort.Strings(helpers)
	if len(helpers) > g.cfg.IndirectProbes {
		// Rotate which helpers carry the probes so one bad helper cannot
		// permanently starve confirmation.
		start := g.probeIdx % len(helpers)
		rot := append(append([]string(nil), helpers[start:]...), helpers[:start]...)
		helpers = rot[:g.cfg.IndirectProbes]
	}
	urls := make([]string, len(helpers))
	for i, h := range helpers {
		urls[i] = g.members[h].URL
	}
	g.mu.Unlock()

	payload := EncodeMembers([]Member{{Name: target, URL: targetURL, State: StateAlive}})
	for _, helper := range urls {
		g.indirectProbes.Add(1)
		cctx, cancel := context.WithTimeout(ctx, 2*g.cfg.Interval)
		req, err := http.NewRequestWithContext(cctx, http.MethodPost, helper+"/v1/gossip/probe", bytes.NewReader(payload))
		if err != nil {
			cancel()
			continue
		}
		req.Header.Set(gossipFromHeader, g.cfg.Self)
		resp, err := g.http.Do(req)
		if err != nil {
			cancel()
			continue
		}
		data, rerr := io.ReadAll(io.LimitReader(resp.Body, MaxGossipMessage+1))
		resp.Body.Close()
		cancel()
		if rerr != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		if remote, derr := DecodeMembers(data); derr == nil {
			g.Merge(remote)
		}
		return true
	}
	return false
}

// expireSuspects commits overdue suspicions to dead.
func (g *Gossip) expireSuspects() {
	now := time.Now()
	g.mu.Lock()
	var dead []string
	for name, m := range g.members {
		if name == g.cfg.Self || m.State != StateSuspect {
			continue
		}
		if !m.suspectSince.IsZero() && now.Sub(m.suspectSince) >= g.cfg.SuspectAfter {
			m.State = StateDead
			m.suspectSince = time.Time{}
			dead = append(dead, name)
		}
	}
	g.mu.Unlock()
	sort.Strings(dead)
	for _, name := range dead {
		if g.cfg.OnDead != nil {
			g.cfg.OnDead(name)
		}
	}
}

// setStateLocked applies a state transition under g.mu and fires the
// dead-boundary callbacks after the lock is released via a goroutine-free
// deferred list — callers must hold g.mu; the callback fires synchronously
// once the caller releases it. To keep that simple, setStateLocked only
// mutates and records; callbacks for merge-driven transitions fire in
// Merge. For the two local call sites (probe success / suspicion) the
// transitions never cross the dead boundary except alive-override of a
// dead member, handled explicitly there.
func (g *Gossip) setStateLocked(m *gossipMember, s MemberState) {
	prev := m.State
	m.State = s
	switch {
	case s == StateSuspect && prev != StateSuspect:
		m.suspectSince = time.Now()
	case s != StateSuspect:
		m.suspectSince = time.Time{}
	}
	if prev == StateDead && s == StateAlive && g.cfg.OnAlive != nil {
		name := m.Name
		g.mu.Unlock()
		g.cfg.OnAlive(name)
		g.mu.Lock()
	}
}

// Merge folds a remote member table into the local one under the SWIM
// ordering: a higher incarnation always wins; at equal incarnations the
// more severe state wins (dead > suspect > alive). Entries about self that
// claim suspect or dead are refuted by bumping the local incarnation —
// subsequent exchanges carry the refutation cluster-wide. Unknown members
// are added (the join path). Transition callbacks fire after the table
// settles, outside the lock.
func (g *Gossip) Merge(remote []Member) {
	type transition struct {
		member Member
		kind   string // "join" | "dead" | "alive"
	}
	var fired []transition
	g.mu.Lock()
	for _, r := range remote {
		if r.Name == "" || r.State > StateDead {
			continue
		}
		if r.Name == g.cfg.Self {
			self := g.members[g.cfg.Self]
			if r.State != StateAlive && r.Incarnation >= self.Incarnation {
				// Someone suspects (or buried) this live node: refute with a
				// fresh incarnation that outranks the rumor.
				self.Incarnation = r.Incarnation + 1
				self.State = StateAlive
				g.refutations.Add(1)
			}
			continue
		}
		m, known := g.members[r.Name]
		if !known {
			if r.URL == "" {
				continue // a member we cannot ever reach is not a member
			}
			nm := &gossipMember{Member: r}
			if r.State == StateSuspect {
				nm.suspectSince = time.Now()
			}
			g.members[r.Name] = nm
			g.joins.Add(1)
			fired = append(fired, transition{member: r, kind: "join"})
			if r.State == StateDead {
				fired = append(fired, transition{member: r, kind: "dead"})
			}
			continue
		}
		apply := false
		switch {
		case r.Incarnation > m.Incarnation:
			apply = true
		case r.Incarnation == m.Incarnation && r.State > m.State:
			apply = true
		}
		if !apply {
			continue
		}
		prev := m.State
		m.Incarnation = r.Incarnation
		if r.URL != "" {
			m.URL = r.URL
		}
		m.State = r.State
		switch {
		case r.State == StateSuspect && prev != StateSuspect:
			m.suspectSince = time.Now()
		case r.State != StateSuspect:
			m.suspectSince = time.Time{}
		}
		if r.State == StateAlive {
			m.misses = 0
		}
		if prev != StateDead && r.State == StateDead {
			fired = append(fired, transition{member: m.Member, kind: "dead"})
		}
		if prev == StateDead && r.State != StateDead {
			fired = append(fired, transition{member: m.Member, kind: "alive"})
		}
	}
	g.mu.Unlock()
	for _, tr := range fired {
		switch tr.kind {
		case "join":
			if g.cfg.OnJoin != nil {
				g.cfg.OnJoin(tr.member)
			}
		case "dead":
			if g.cfg.OnDead != nil {
				g.cfg.OnDead(tr.member.Name)
			}
		case "alive":
			if g.cfg.OnAlive != nil {
				g.cfg.OnAlive(tr.member.Name)
			}
		}
	}
}

// gossipFromHeader names the sending node on gossip exchanges so the
// partition test hook can refuse inbound traffic per peer.
const gossipFromHeader = "X-Spt-Gossip-From"

// HandleExchange serves one inbound gossip exchange: merge the sender's
// table, answer with ours. The merge happens before the response is
// rendered, so a node that learns it is suspected refutes in the same
// round trip.
func (g *Gossip) HandleExchange(w http.ResponseWriter, r *http.Request) {
	from := r.Header.Get(gossipFromHeader)
	g.mu.Lock()
	refused := from != "" && g.blockedIn[from]
	g.mu.Unlock()
	if refused {
		http.Error(w, "gossip blocked by test hook", http.StatusServiceUnavailable)
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxGossipMessage))
	if err != nil {
		http.Error(w, "gossip message too large or torn", http.StatusBadRequest)
		return
	}
	if remote, derr := DecodeMembers(data); derr == nil {
		g.Merge(remote)
	}
	// An undecodable body still gets our table back: the sender may be a
	// newer node speaking a format we skip; membership must not wedge on it.
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(EncodeMembers(g.Snapshot()))
}

// HandleProbe serves an indirect-probe request: the body names one target
// member; this node attempts a direct exchange with it and answers 200
// (with the merged table) on success, 502 on failure. This is the third
// observer that keeps a one-way partition from escalating into a death.
func (g *Gossip) HandleProbe(w http.ResponseWriter, r *http.Request) {
	from := r.Header.Get(gossipFromHeader)
	g.mu.Lock()
	refused := from != "" && g.blockedIn[from]
	g.mu.Unlock()
	if refused {
		http.Error(w, "gossip blocked by test hook", http.StatusServiceUnavailable)
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxGossipMessage))
	if err != nil {
		http.Error(w, "probe request too large or torn", http.StatusBadRequest)
		return
	}
	targets, derr := DecodeMembers(data)
	if derr != nil || len(targets) != 1 || targets[0].URL == "" {
		http.Error(w, "probe wants exactly one target member", http.StatusBadRequest)
		return
	}
	t := targets[0]
	if err := g.exchange(r.Context(), t.Name, t.URL); err != nil {
		http.Error(w, "target unreachable from here too", http.StatusBadGateway)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(EncodeMembers(g.Snapshot()))
}

// Metrics renders the gossip counters as Prometheus text.
func (g *Gossip) Metrics(w io.Writer) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("sptd_gossip_exchanges_total", "Direct gossip exchanges attempted.", g.exchanges.Load())
	counter("sptd_gossip_exchange_failures_total", "Gossip exchanges that got no usable answer.", g.exchangeFails.Load())
	counter("sptd_gossip_indirect_probes_total", "Indirect probes asked of third-party members.", g.indirectProbes.Load())
	counter("sptd_gossip_suspects_total", "Members this node marked suspect.", g.suspects.Load())
	counter("sptd_gossip_refutations_total", "Times this node refuted a rumor of its own death.", g.refutations.Load())
	counter("sptd_gossip_joins_total", "Previously-unknown members learned through gossip.", g.joins.Load())
	g.mu.Lock()
	states := map[MemberState]int{}
	for _, m := range g.members {
		states[m.State]++
	}
	g.mu.Unlock()
	fmt.Fprintf(w, "# HELP sptd_gossip_members Members known to this node by state.\n# TYPE sptd_gossip_members gauge\n")
	for _, s := range []MemberState{StateAlive, StateSuspect, StateDead} {
		fmt.Fprintf(w, "sptd_gossip_members{state=%q} %d\n", s.String(), states[s])
	}
}
