package arch

import "repro/internal/ir"

// srbEntry is one speculation-result-buffer record: a speculatively
// executed instruction with its timing and validity.
type srbEntry struct {
	pos      int64 // absolute trace index
	issue    int64
	complete int64
	misspec  bool
	wrongBr  bool // misspeculated branch: replay stops here
}

// specWKey identifies a register of a specific activation in the
// speculative writer map.
type specWKey struct {
	frame int64
	reg   ir.Reg
}

// commitWindow is called when the main thread arrives at the speculative
// thread's start-point: it simulates the speculative core's execution from
// the start-point up to the arrival time (bounded by the SRB), determines
// per-instruction validity with the register and memory dependence
// checkers, and performs fast-commit, selective re-execution replay, or a
// full squash depending on the configured recovery mechanism. The main
// thread resumes at the point replay stops.
func (e *engine) commitWindow() {
	s := e.spec
	e.spec = nil
	defer e.releaseSpec(s)
	arrival := e.main.now()

	entries := e.runSpec(s, arrival)
	if len(entries) > 0 {
		busy := entries[len(entries)-1].complete - s.forkTime
		if busy > 0 {
			e.stats.SpecBusyCycles += busy
		}
	}
	if len(entries) == 0 {
		// The speculative core never got going before the main thread
		// arrived: kill it and continue normally.
		e.stats.Kills++
		if s.loop != nil {
			s.loop.Kills++
		}
		return
	}

	// Dependence checks + transitive misspeculation closure happened in
	// runSpec. Summarize.
	clean := true
	stop := len(entries)
	for i := range entries {
		if entries[i].misspec {
			clean = false
			if entries[i].wrongBr {
				stop = i + 1
				break
			}
		}
	}
	entries = entries[:stop]

	e.stats.SpecInstrs += int64(len(entries))
	if s.loop != nil {
		s.loop.SpecInstrs += int64(len(entries))
	}

	if e.cfg.Recovery == RecoverySquash && !clean {
		// Conventional recovery: discard everything; main re-executes the
		// whole region normally from the start-point.
		e.stats.Kills++
		e.stats.MisspecInstrs += int64(len(entries))
		if s.loop != nil {
			s.loop.Kills++
			s.loop.MisspecInstrs += int64(len(entries))
		}
		return
	}

	if clean {
		// Fast commit: the entire speculative state commits at once.
		e.stats.FastCommits++
		e.stats.CommittedInstr += int64(len(entries))
		if s.loop != nil {
			s.loop.FastCommits++
			s.loop.CommittedInstr += int64(len(entries))
		}
		e.main.advanceTo(arrival + int64(e.cfg.FastCommitCycles))
		e.absorb(entries, s)
		return
	}

	// Selective re-execution replay: walk the SRB in program order; commit
	// correct entries at the replay width, re-execute misspeculated ones on
	// the main pipeline at the normal width.
	e.stats.Replays++
	if s.loop != nil {
		s.loop.Replays++
	}
	var walked, reexec int64
	reexecEntries := e.reexecScratch[:0]
	for i := range entries {
		walked++
		if entries[i].misspec {
			reexec++
			reexecEntries = append(reexecEntries, i)
		}
	}
	e.reexecScratch = reexecEntries
	commitCost := (walked + int64(e.cfg.ReplayIssueWidth) - 1) / int64(e.cfg.ReplayIssueWidth)
	e.main.advanceTo(arrival + commitCost)
	// Re-execute misspeculated instructions with their true latencies.
	for _, i := range reexecEntries {
		ev := e.at(entries[i].pos)
		in := e.lp.InstrAt(ev.Func, ev.ID)
		e.main.exec(ev, in, e.hier, nil, true)
	}
	e.main.advanceTo(e.main.now() + int64(e.cfg.FastCommitCycles)) // register copy-back on commit
	e.stats.MisspecInstrs += reexec
	e.stats.CommittedInstr += walked - reexec
	if s.loop != nil {
		s.loop.MisspecInstrs += reexec
		s.loop.CommittedInstr += walked - reexec
	}
	killed := entries[len(entries)-1].wrongBr
	if killed {
		e.stats.Kills++
		if s.loop != nil {
			s.loop.Kills++
		}
	}
	e.absorb(entries, s)
}

// absorb performs engine bookkeeping for committed entries (the main
// thread adopts them without executing them) and moves the main position
// past the committed region.
func (e *engine) absorb(entries []srbEntry, s *specThread) {
	forkIdx := -1
	// Track the loop frame's register state through the committed region so
	// a re-fork starts from the commit-time context (what the real
	// machine's replay would have in the register file), not the stale
	// fork-event snapshot. The tracking array is engine scratch: it is
	// copied by handleForkFrom before the next window can reuse it.
	var regs []int64
	if len(s.mainRegs) > 0 {
		if cap(e.regsScratch) < len(s.mainRegs) {
			e.regsScratch = make([]int64, len(s.mainRegs))
		}
		regs = e.regsScratch[:len(s.mainRegs)]
		copy(regs, s.mainRegs)
	}
	for i := range entries {
		ev := e.at(entries[i].pos)
		in := e.lp.InstrAt(ev.Func, ev.ID)
		if regs != nil {
			if in.Op == ir.Ret {
				if fi := e.frameOf(ev.Frame); fi != nil && fi.parent == s.frame &&
					fi.retDst != ir.NoReg && int(fi.retDst) < len(regs) {
					regs[fi.retDst] = ev.Val
				}
			}
			if ev.Frame == s.frame {
				if d := in.Def(); d != ir.NoReg && int(d) < len(regs) {
					regs[d] = ev.Val
				}
			}
		}
		e.bookkeep(ev, in)
		// Register readiness for subsequently executed main instructions:
		// committed results are available at commit time.
		if d := in.Def(); d != ir.NoReg {
			e.main.setReady(ev.Frame, d, e.main.now(), false)
		}
		if in.Op == ir.Ret {
			e.main.dropFrame(ev.Frame)
		}
		if in.Op == ir.SptFork && ev.Frame == s.frame {
			// Only forks of the same loop activation can be re-armed with
			// the tracked register context; forks reached in other frames
			// (e.g. a later loop entered after this one exited) fire again
			// naturally when the main thread reaches them.
			forkIdx = i
		}
	}
	e.attributeCycles()
	e.pos = entries[len(entries)-1].pos + 1
	// A committed spt_fork re-arms the speculative core at commit time: the
	// replay walk "executes" the fork, so back-to-back windows keep the
	// speculative core busy even when one iteration overflows the SRB.
	if e.cfg.SPT && forkIdx >= 0 {
		fe := entries[forkIdx]
		ev := e.at(fe.pos)
		cp := *ev
		if regs != nil {
			cp.Snapshot = regs
		}
		e.handleForkFrom(&cp, ev.Frame, e.main.now(), fe.pos, e.pos)
	}
}

// runSpec simulates the speculative core from the start-point: loads first
// search the speculative store buffer, then access the shared cache with
// their timestamps recorded in the load address buffer; issue stops at the
// arrival time, the SRB capacity, a return out of the loop frame, or the
// buffered window's end. Validity is resolved in program order: source
// violations from the register checker (value- or update-based) and the
// memory checker (address-based against the main thread's post-fork stores,
// honouring temporal order), closed transitively over register def-use and
// store-buffer forwarding; a misspeculated branch marks the wrong-path
// stop.
//
// The returned slice aliases engine scratch preallocated to the SRB size;
// it is valid until the next window's runSpec.
func (e *engine) runSpec(s *specThread, arrival int64) []srbEntry {
	entries := e.srbScratch[:0]
	e.specBd = Breakdown{}
	sp := e.specPipe
	sp.reset(s.forkTime)

	// Violated live-in registers of the loop frame.
	if cap(e.violatedScratch) < len(s.snapshot) {
		e.violatedScratch = make([]bool, len(s.snapshot))
	}
	violated := e.violatedScratch[:len(s.snapshot)]
	for r := range violated {
		switch e.cfg.RegCheck {
		case RegCheckValue:
			violated[r] = len(s.mainRegs) > 0 && s.mainRegs[r] != s.snapshot[r]
		case RegCheckUpdate:
			violated[r] = len(s.written) > 0 && s.written[r]
		}
	}

	// Writer tracking is split by frame: the loop frame — where nearly every
	// window event lives — uses a dense register-indexed slice, while callee
	// frames created inside the window go through the map. The split is
	// exact (a register is tracked in exactly one of the two), so validity
	// resolution is unchanged.
	lastWriter := e.lastWriter // specWKey -> entry index (non-loop frames)
	clear(lastWriter)
	if cap(e.lwFrame) < len(s.snapshot) {
		e.lwFrame = make([]int32, len(s.snapshot))
	}
	lw := e.lwFrame[:len(s.snapshot)]
	for i := range lw {
		lw[i] = -1 // no speculative writer yet
	}
	ssb := e.ssb // addr -> entry index of latest spec store
	clear(ssb)
	frameParent := e.specFrameParent
	clear(frameParent)
	frameRet := e.specFrameRet
	clear(frameRet)
	frameParent[s.frame] = -2 // sentinel: the loop frame itself
	depth0 := s.frame
	knownFrame := s.frame // frame-linkage memo: last frame seen in frameParent

	misspecOf := func(idx int) bool { return entries[idx].misspec }

	pos := s.startPos
	for pos < e.end() {
		ev := e.at(pos)
		in := e.lp.InstrAt(ev.Func, ev.ID)

		// Track frames created inside the speculative window. Consecutive
		// events overwhelmingly share a frame, and linkage entries are never
		// deleted within a window, so a frame equal to the last one seen
		// needs no map probe.
		if ev.Frame != knownFrame {
			if _, known := frameParent[ev.Frame]; !known {
				// Called from the previous event's frame.
				if pos > s.startPos {
					prev := e.at(pos - 1)
					pin := e.lp.InstrAt(prev.Func, prev.ID)
					if pin.Op == ir.Call {
						frameParent[ev.Frame] = prev.Frame
						frameRet[ev.Frame] = pin.Dst
						// Parameters inherit the Call entry's validity. Under
						// event-drop fault injection the Call entry may be
						// missing; parameters are then treated as clean.
						if callIdx := len(entries) - 1; callIdx >= 0 {
							callee := e.lp.IR.Funcs[ev.Func]
							for pr := 0; pr < callee.NumParams; pr++ {
								lastWriter[specWKey{ev.Frame, ir.Reg(pr)}] = callIdx
							}
						}
					} else {
						frameParent[ev.Frame] = -3 // unknown linkage
					}
				} else {
					frameParent[ev.Frame] = -3
				}
			}
			knownFrame = ev.Frame
		}
		if in.Op == ir.Ret && ev.Frame == depth0 {
			break // speculation ran out of the loop function
		}
		if len(entries) >= e.cfg.SRBSize {
			break // SRB full: the speculative thread stalls until commit
		}

		issue, complete := sp.exec(ev, in, nil, nil, false)
		if issue > arrival {
			break // killed at arrival
		}

		// Determine validity.
		miss := false
		var uses [4]ir.Reg
		for _, r := range in.Uses(uses[:0]) {
			if ev.Frame == depth0 && int(r) < len(lw) {
				if wi := lw[r]; wi >= 0 {
					if misspecOf(int(wi)) {
						miss = true
					}
				} else if violated[r] {
					miss = true
				}
			} else if wi, ok := lastWriter[specWKey{ev.Frame, r}]; ok {
				if misspecOf(wi) {
					miss = true
				}
			} else if ev.Frame == s.frame && int(r) < len(violated) && violated[r] {
				miss = true
			}
		}
		var memLat int64
		switch in.Op {
		case ir.Load:
			if si, ok := ssb[ev.Addr]; ok {
				// Store-buffer forwarding: inherits the store's validity.
				if misspecOf(si) {
					miss = true
				}
				memLat = 1
			} else {
				memLat = int64(e.hier.Data(ev.Addr, issue))
				// Load address buffer: any main post-fork store to this
				// address at or after the load's issue is a violation.
				for _, st := range s.stores {
					if st.addr == ev.Addr && st.time >= issue {
						miss = true
						break
					}
				}
			}
			complete = issue + memLat
			if d := in.Def(); d != ir.NoReg {
				sp.setReady(ev.Frame, d, complete, true)
			}
		case ir.Store:
			ssb[ev.Addr] = len(entries)
		case ir.Ret:
			// Propagate the return value into the caller frame's writer map.
			if p, ok := frameParent[ev.Frame]; ok && p >= 0 {
				if dst, ok2 := frameRet[ev.Frame]; ok2 && dst != ir.NoReg {
					if p == depth0 && int(dst) < len(lw) {
						lw[dst] = int32(len(entries))
					} else {
						lastWriter[specWKey{p, dst}] = len(entries)
					}
					sp.setReady(p, dst, complete, false)
				}
			}
		}
		if d := in.Def(); d != ir.NoReg {
			if ev.Frame == depth0 && int(d) < len(lw) {
				lw[d] = int32(len(entries))
			} else {
				lastWriter[specWKey{ev.Frame, d}] = len(entries)
			}
		}

		ent := srbEntry{pos: pos, issue: issue, complete: complete, misspec: miss}
		if miss && in.Op == ir.Br {
			ent.wrongBr = true
		}
		entries = append(entries, ent)
		pos++
	}
	e.srbScratch = entries[:0]
	return entries
}
