package arch

import (
	"errors"
	"sync/atomic"

	"repro/internal/ir"
	"repro/internal/multispec"
)

// srbEntry is one speculation-result-buffer record: a speculatively
// executed instruction with its timing and validity.
type srbEntry struct {
	pos      int64 // absolute trace index
	issue    int64
	complete int64
	misspec  bool
	wrongBr  bool // misspeculated branch: replay stops here
}

// specWKey identifies a register of a specific activation in the
// speculative writer map.
type specWKey struct {
	frame int64
	reg   ir.Reg
}

// commitWindow is called when the main thread arrives at the oldest
// speculative thread's start-point: it simulates that core's execution from
// the start-point up to the arrival time (bounded by the SRB and by the
// next thread's start-point), determines per-instruction validity with the
// register and memory dependence checkers, and performs fast-commit,
// selective re-execution replay, or a full squash depending on the
// configured recovery mechanism. The main thread resumes at the point
// replay stops. Commit order is arbitrated by the version chain: threads
// retire strictly in spawn order, which is what keeps N-core runs
// bit-identical across runs and replays.
func (e *engine) commitWindow() {
	s := e.specs[0]
	e.specs = append(e.specs[:0], e.specs[1:]...)
	if err := e.chain.Commit(s.chainID); err != nil {
		e.fail(errors.Join(errors.New("arch: commit arbitration broken"), err))
		return
	}
	defer e.releaseSpec(s)
	arrival := e.main.now()

	entries := e.runSpec(s, arrival)
	if len(entries) > 0 {
		busy := entries[len(entries)-1].complete - s.forkTime
		if busy > 0 {
			e.stats.SpecBusyCycles += busy
		}
	}
	if len(entries) == 0 {
		// The speculative core never got going before the main thread
		// arrived: kill it and continue normally. Successors (if any) were
		// spawned by earlier, committed windows and stay valid.
		e.stats.Kills++
		if s.loop != nil {
			s.loop.Kills++
		}
		multispec.Global.SquashEmpty.Add(1)
		e.freeCore(arrival)
		e.foldChainSSB(nil)
		return
	}

	// Dependence checks + transitive misspeculation closure happened in
	// runSpec. Summarize.
	clean := true
	stop := len(entries)
	for i := range entries {
		if entries[i].misspec {
			clean = false
			if entries[i].wrongBr {
				stop = i + 1
				break
			}
		}
	}
	entries = entries[:stop]
	// Threads spawned beyond the committed region never became
	// architectural: their fork context is wrong-path state.
	e.squashSuccessors(entries[len(entries)-1].pos, &multispec.Global.SquashCascade)

	e.stats.SpecInstrs += int64(len(entries))
	if s.loop != nil {
		s.loop.SpecInstrs += int64(len(entries))
	}

	if e.cfg.Recovery == RecoverySquash && !clean {
		// Conventional recovery: discard everything; main re-executes the
		// whole region normally from the start-point. Successors forked
		// from the discarded window die with it.
		e.stats.Kills++
		e.stats.MisspecInstrs += int64(len(entries))
		if s.loop != nil {
			s.loop.Kills++
			s.loop.MisspecInstrs += int64(len(entries))
		}
		multispec.Global.SquashViolation.Add(1)
		e.squashSuccessors(s.startPos-1, &multispec.Global.SquashCascade)
		e.freeCore(arrival)
		e.foldChainSSB(nil)
		return
	}

	if !clean && e.sched.EagerSquash() {
		// Eager restart: any violation retires the whole chain; speculation
		// restarts from the repaired architectural state (the re-arm in
		// absorb below, which fires once the chain is empty).
		e.squashSuccessors(s.startPos-1, &multispec.Global.SquashEager)
	}

	if clean {
		// Fast commit: the entire speculative state commits at once.
		e.stats.FastCommits++
		e.stats.CommittedInstr += int64(len(entries))
		if s.loop != nil {
			s.loop.FastCommits++
			s.loop.CommittedInstr += int64(len(entries))
		}
		multispec.Global.CommitFast.Add(1)
		e.main.advanceTo(arrival + int64(e.cfg.FastCommitCycles))
		e.freeCore(e.main.now())
		e.foldChainSSB(entries)
		e.absorb(entries, s)
		return
	}

	// Selective re-execution replay: walk the SRB in program order; commit
	// correct entries at the replay width, re-execute misspeculated ones on
	// the main pipeline at the normal width.
	e.stats.Replays++
	if s.loop != nil {
		s.loop.Replays++
	}
	multispec.Global.CommitReplay.Add(1)
	var walked, reexec int64
	reexecEntries := e.reexecScratch[:0]
	for i := range entries {
		walked++
		if entries[i].misspec {
			reexec++
			reexecEntries = append(reexecEntries, i)
		}
	}
	e.reexecScratch = reexecEntries
	commitCost := (walked + int64(e.cfg.ReplayIssueWidth) - 1) / int64(e.cfg.ReplayIssueWidth)
	e.main.advanceTo(arrival + commitCost)
	// Re-execute misspeculated instructions with their true latencies.
	for _, i := range reexecEntries {
		ev := e.at(entries[i].pos)
		in := e.lp.InstrAt(ev.Func, ev.ID)
		e.main.exec(ev, in, e.hier, nil, true)
	}
	e.main.advanceTo(e.main.now() + int64(e.cfg.FastCommitCycles)) // register copy-back on commit
	e.stats.MisspecInstrs += reexec
	e.stats.CommittedInstr += walked - reexec
	if s.loop != nil {
		s.loop.MisspecInstrs += reexec
		s.loop.CommittedInstr += walked - reexec
	}
	killed := entries[len(entries)-1].wrongBr
	if killed {
		e.stats.Kills++
		if s.loop != nil {
			s.loop.Kills++
		}
		multispec.Global.SquashWrongPath.Add(1)
	}
	e.freeCore(e.main.now())
	e.foldChainSSB(entries)
	e.absorb(entries, s)
}

// squashSuccessors retires every in-flight thread whose fork position lies
// beyond limit: its register copy was taken from state that never became
// architectural. Squashing walks from the youngest end, so only a suffix
// of the chain dies — predecessors are untouched (per-thread isolation).
func (e *engine) squashSuccessors(limit int64, cause *atomic.Int64) {
	for len(e.specs) > 0 {
		s := e.specs[len(e.specs)-1]
		if s.forkPos <= limit {
			break
		}
		e.specs = e.specs[:len(e.specs)-1]
		e.chain.Squash(s.chainID)
		e.stats.Kills++
		e.stats.ChainSquashes++
		if s.loop != nil {
			s.loop.Kills++
		}
		cause.Add(1)
		e.freeCore(e.main.now())
		e.releaseSpec(s)
	}
}

// foldChainSSB publishes a committed window's speculative stores to its
// still-in-flight successors (the version chain's memory view): a
// successor's load to the same address forwards from here, inheriting the
// store's validity. With no successors the map is cleared instead — the
// classic one-thread machine therefore never populates it.
func (e *engine) foldChainSSB(entries []srbEntry) {
	if len(e.specs) == 0 {
		if len(e.chainSSB) > 0 {
			clear(e.chainSSB)
		}
		return
	}
	for addr, si := range e.ssb {
		if si < len(entries) {
			e.chainSSB[addr] = entries[si].misspec
		}
	}
}

// absorb performs engine bookkeeping for committed entries (the main
// thread adopts them without executing them) and moves the main position
// past the committed region.
func (e *engine) absorb(entries []srbEntry, s *specThread) {
	forkIdx := -1
	// Track the loop frame's register state through the committed region so
	// a re-fork starts from the commit-time context (what the real
	// machine's replay would have in the register file), not the stale
	// fork-event snapshot. The tracking array is engine scratch: it is
	// copied by armThread before the next window can reuse it.
	var regs []int64
	if len(s.mainRegs) > 0 {
		if cap(e.regsScratch) < len(s.mainRegs) {
			e.regsScratch = make([]int64, len(s.mainRegs))
		}
		regs = e.regsScratch[:len(s.mainRegs)]
		copy(regs, s.mainRegs)
	}
	for i := range entries {
		ev := e.at(entries[i].pos)
		in := e.lp.InstrAt(ev.Func, ev.ID)
		if regs != nil {
			if in.Op == ir.Ret {
				if fi := e.frameOf(ev.Frame); fi != nil && fi.parent == s.frame &&
					fi.retDst != ir.NoReg && int(fi.retDst) < len(regs) {
					regs[fi.retDst] = ev.Val
				}
			}
			if ev.Frame == s.frame {
				if d := in.Def(); d != ir.NoReg && int(d) < len(regs) {
					regs[d] = ev.Val
				}
			}
		}
		e.bookkeep(ev, in, entries[i].pos)
		// Register readiness for subsequently executed main instructions:
		// committed results are available at commit time.
		if d := in.Def(); d != ir.NoReg {
			e.main.setReady(ev.Frame, d, e.main.now(), false)
		}
		if in.Op == ir.Ret {
			e.main.dropFrame(ev.Frame)
		}
		if in.Op == ir.SptFork && ev.Frame == s.frame {
			// Only forks of the same loop activation can be re-armed with
			// the tracked register context; forks reached in other frames
			// (e.g. a later loop entered after this one exited) fire again
			// naturally when the main thread reaches them.
			forkIdx = i
		}
	}
	e.attributeCycles()
	e.pos = entries[len(entries)-1].pos + 1
	// A committed spt_fork re-arms a speculative core at commit time: the
	// replay walk "executes" the fork, so back-to-back windows keep the
	// speculative cores busy even when one iteration overflows the SRB.
	// With successors still in flight the chain already covers the next
	// iterations, so the re-arm only fires once the chain has drained.
	if e.cfg.SPT && forkIdx >= 0 && len(e.specs) == 0 {
		fe := entries[forkIdx]
		ev := e.at(fe.pos)
		cp := *ev
		if regs != nil {
			cp.Snapshot = regs
		}
		e.handleForkFrom(&cp, ev.Frame, e.main.now(), fe.pos, e.pos)
	}
}

// spawnInWalk spawns the committing window's successor thread at one of its
// spt_fork entries — the N-core overlap: the new thread's fork time derives
// from the fork's completion inside the *speculative* pipeline, long before
// the main thread arrives. The spawned thread's live-ins come from the
// walk's speculative state, so wrongness propagates through the version
// chain: a live-in last written by a misspeculated entry (or inherited
// from an already-violated spawner) starts out violated.
func (e *engine) spawnInWalk(parent *specThread, pos, complete int64, entries []srbEntry, lw []int32, violated []bool) *specThread {
	if len(e.coreFree) == 0 {
		e.stats.NoForks++
		return nil
	}
	ev := e.at(pos)
	in := e.lp.InstrAt(ev.Func, ev.ID)
	bi := e.lp.LabelIndex(ev.Func, in.Target)
	if bi < 0 {
		e.stats.NoForks++
		return nil
	}
	startID := e.lp.BlockStart(ev.Func, bi)
	startPos := e.findStart(parent.frame, startID, pos+1)
	if startPos < 0 {
		e.stats.NoForks++
		return nil
	}
	if n := len(e.specs); n > 0 && startPos <= e.specs[n-1].startPos {
		e.stats.NoForks++
		return nil
	}
	s := e.armThread(ev, parent.frame, complete, pos, bi, startID, startPos, parent.loop)
	if n := len(s.snapshot); n > 0 {
		if cap(s.inherit) < n {
			s.inherit = make([]bool, n)
		} else {
			s.inherit = s.inherit[:n]
			clear(s.inherit)
		}
		for r := 0; r < n; r++ {
			if s.plan.Covers(ir.Reg(r)) {
				continue // recomputed by the pre-computation slice at spawn
			}
			if r < len(lw) && lw[r] >= 0 {
				s.inherit[r] = entries[lw[r]].misspec
			} else if r < len(violated) {
				s.inherit[r] = violated[r]
			}
		}
	}
	e.stats.ChainSpawns++
	return s
}

// runSpec simulates a speculative core from the thread's start-point: loads
// first search the thread's own speculative store buffer, then committed
// predecessors' stores (the chain SSB), then the shared cache with their
// timestamps recorded in the load address buffer; issue stops at the
// arrival time, the SRB capacity, a return out of the loop frame, the next
// in-flight thread's start-point, or the buffered window's end. Validity is
// resolved in program order: source violations from the register checker
// (value- or update-based, seeded with violations inherited through the
// version chain) and the memory checker (address-based against
// architectural post-fork stores, honouring temporal order), closed
// transitively over register def-use and store-buffer forwarding; a
// misspeculated branch marks the wrong-path stop. An spt_fork executed in
// the loop frame spawns the next thread in the chain when a core is free.
//
// The returned slice aliases engine scratch preallocated to the SRB size;
// it is valid until the next window's runSpec.
func (e *engine) runSpec(s *specThread, arrival int64) []srbEntry {
	entries := e.srbScratch[:0]
	e.specBd = Breakdown{}
	sp := e.specPipe
	sp.reset(s.forkTime)

	// Violated live-in registers of the loop frame: the configured checker
	// against the post-fork architectural writes, OR-ed with violations
	// inherited at spawn; registers covered by a pre-computation slice are
	// recomputed at spawn and never start violated.
	if cap(e.violatedScratch) < len(s.snapshot) {
		e.violatedScratch = make([]bool, len(s.snapshot))
	}
	violated := e.violatedScratch[:len(s.snapshot)]
	for r := range violated {
		v := false
		switch e.cfg.RegCheck {
		case RegCheckValue:
			v = len(s.mainRegs) > 0 && s.mainRegs[r] != s.snapshot[r]
		case RegCheckUpdate:
			v = len(s.written) > 0 && s.written[r]
		}
		if !v && r < len(s.inherit) && s.inherit[r] {
			v = true
		}
		if v && s.plan.Covers(ir.Reg(r)) {
			v = false
		}
		violated[r] = v
	}

	// The walk must not run past the next in-flight thread's start-point:
	// that iteration range belongs to the successor's core.
	stopAt := int64(-1)
	if len(e.specs) > 0 {
		stopAt = e.specs[0].startPos
	}

	// Writer tracking is split by frame: the loop frame — where nearly every
	// window event lives — uses a dense register-indexed slice, while callee
	// frames created inside the window go through the map. The split is
	// exact (a register is tracked in exactly one of the two), so validity
	// resolution is unchanged.
	lastWriter := e.lastWriter // specWKey -> entry index (non-loop frames)
	clear(lastWriter)
	if cap(e.lwFrame) < len(s.snapshot) {
		e.lwFrame = make([]int32, len(s.snapshot))
	}
	lw := e.lwFrame[:len(s.snapshot)]
	for i := range lw {
		lw[i] = -1 // no speculative writer yet
	}
	ssb := e.ssb // addr -> entry index of latest spec store
	clear(ssb)
	frameParent := e.specFrameParent
	clear(frameParent)
	frameRet := e.specFrameRet
	clear(frameRet)
	frameParent[s.frame] = -2 // sentinel: the loop frame itself
	depth0 := s.frame
	knownFrame := s.frame // frame-linkage memo: last frame seen in frameParent

	misspecOf := func(idx int) bool { return entries[idx].misspec }

	pos := s.startPos
	for pos < e.end() {
		if pos == stopAt {
			break // the successor thread's iteration range starts here
		}
		ev := e.at(pos)
		in := e.lp.InstrAt(ev.Func, ev.ID)

		// Track frames created inside the speculative window. Consecutive
		// events overwhelmingly share a frame, and linkage entries are never
		// deleted within a window, so a frame equal to the last one seen
		// needs no map probe.
		if ev.Frame != knownFrame {
			if _, known := frameParent[ev.Frame]; !known {
				// Called from the previous event's frame.
				if pos > s.startPos {
					prev := e.at(pos - 1)
					pin := e.lp.InstrAt(prev.Func, prev.ID)
					if pin.Op == ir.Call {
						frameParent[ev.Frame] = prev.Frame
						frameRet[ev.Frame] = pin.Dst
						// Parameters inherit the Call entry's validity. Under
						// event-drop fault injection the Call entry may be
						// missing; parameters are then treated as clean.
						if callIdx := len(entries) - 1; callIdx >= 0 {
							callee := e.lp.IR.Funcs[ev.Func]
							for pr := 0; pr < callee.NumParams; pr++ {
								lastWriter[specWKey{ev.Frame, ir.Reg(pr)}] = callIdx
							}
						}
					} else {
						frameParent[ev.Frame] = -3 // unknown linkage
					}
				} else {
					frameParent[ev.Frame] = -3
				}
			}
			knownFrame = ev.Frame
		}
		if in.Op == ir.Ret && ev.Frame == depth0 {
			break // speculation ran out of the loop function
		}
		if len(entries) >= e.cfg.SRBSize {
			break // SRB full: the speculative thread stalls until commit
		}

		issue, complete := sp.exec(ev, in, nil, nil, false)
		if issue > arrival {
			break // killed at arrival
		}

		// Determine validity.
		miss := false
		var uses [4]ir.Reg
		for _, r := range in.Uses(uses[:0]) {
			if ev.Frame == depth0 && int(r) < len(lw) {
				if wi := lw[r]; wi >= 0 {
					if misspecOf(int(wi)) {
						miss = true
					}
				} else if violated[r] {
					miss = true
				}
			} else if wi, ok := lastWriter[specWKey{ev.Frame, r}]; ok {
				if misspecOf(wi) {
					miss = true
				}
			} else if ev.Frame == s.frame && int(r) < len(violated) && violated[r] {
				miss = true
			}
		}
		var memLat int64
		switch in.Op {
		case ir.Load:
			if si, ok := ssb[ev.Addr]; ok {
				// Store-buffer forwarding: inherits the store's validity.
				if misspecOf(si) {
					miss = true
				}
				memLat = 1
			} else if mi, ok := chainLookup(e.chainSSB, ev.Addr); ok {
				// Forwarding from a committed predecessor window's store
				// buffer, validity inherited through the version chain.
				if mi {
					miss = true
				}
				memLat = 1
			} else {
				memLat = int64(e.hier.Data(ev.Addr, issue))
				// Load address buffer: any architectural post-fork store to
				// this address at or after the load's issue is a violation.
				for _, st := range s.stores {
					if st.addr == ev.Addr && st.time >= issue {
						miss = true
						break
					}
				}
			}
			complete = issue + memLat
			if d := in.Def(); d != ir.NoReg {
				sp.setReady(ev.Frame, d, complete, true)
			}
		case ir.Store:
			ssb[ev.Addr] = len(entries)
		case ir.SptFork:
			if e.cfg.SPT && ev.Frame == depth0 {
				if ns := e.spawnInWalk(s, pos, complete, entries, lw, violated); ns != nil {
					stopAt = ns.startPos
				}
			}
		case ir.Ret:
			// Propagate the return value into the caller frame's writer map.
			if p, ok := frameParent[ev.Frame]; ok && p >= 0 {
				if dst, ok2 := frameRet[ev.Frame]; ok2 && dst != ir.NoReg {
					if p == depth0 && int(dst) < len(lw) {
						lw[dst] = int32(len(entries))
					} else {
						lastWriter[specWKey{p, dst}] = len(entries)
					}
					sp.setReady(p, dst, complete, false)
				}
			}
		}
		if d := in.Def(); d != ir.NoReg {
			if ev.Frame == depth0 && int(d) < len(lw) {
				lw[d] = int32(len(entries))
			} else {
				lastWriter[specWKey{ev.Frame, d}] = len(entries)
			}
		}

		ent := srbEntry{pos: pos, issue: issue, complete: complete, misspec: miss}
		if miss && in.Op == ir.Br {
			ent.wrongBr = true
		}
		entries = append(entries, ent)
		pos++
	}
	e.srbScratch = entries[:0]
	return entries
}

// chainLookup probes the chain SSB, skipping the map access entirely when
// it is empty (always, on the classic machine).
func chainLookup(m map[int64]bool, addr int64) (bool, bool) {
	if len(m) == 0 {
		return false, false
	}
	mi, ok := m[addr]
	return mi, ok
}
