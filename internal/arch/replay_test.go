package arch

// Tests for the record-once/replay-many path: RunRecorded must be
// bit-identical to the fused interpret-and-simulate Run for every machine
// configuration, and corrupt recordings must fail with ErrCorruptTrace
// instead of panicking.

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/compiler"
	"repro/internal/interp"
	"repro/internal/trace"
)

// compileParallelLoop compiles the mostly-parallel loop with the SPT
// compiler and loads it; the trace mixes fast commits with selective
// re-execution replays, covering both commit paths.
func compileParallelLoop(tb testing.TB, n int64, depth int) *interp.Program {
	tb.Helper()
	res, err := compiler.Compile(buildMostlyParallelLoop(n, depth), compiler.DefaultOptions())
	if err != nil {
		tb.Fatalf("Compile: %v", err)
	}
	lp, err := interp.Load(res.Program)
	if err != nil {
		tb.Fatalf("Load: %v", err)
	}
	return lp
}

// replayVariants is the configuration matrix the determinism contract is
// checked against: every recovery/regcheck/SRB family member plus window
// and baseline corners.
func replayVariants() map[string]Config {
	vs := map[string]Config{}
	for _, rec := range []RecoveryKind{RecoverySRXFC, RecoverySquash} {
		cfg := DefaultConfig()
		cfg.Recovery = rec
		vs[fmt.Sprintf("recovery=%d", rec)] = cfg
	}
	for _, rc := range []RegCheckKind{RegCheckValue, RegCheckUpdate} {
		cfg := DefaultConfig()
		cfg.RegCheck = rc
		vs[fmt.Sprintf("regcheck=%d", rc)] = cfg
	}
	for _, srb := range []int{4, 64, 1024} {
		cfg := DefaultConfig()
		cfg.SRBSize = srb
		vs[fmt.Sprintf("srb=%d", srb)] = cfg
	}
	base := DefaultConfig()
	base.SPT = false
	vs["baseline"] = base
	narrow := DefaultConfig()
	narrow.SRBSize = 32
	narrow.Window = 64
	vs["window=64"] = narrow
	return vs
}

func TestRunRecordedMatchesRun(t *testing.T) {
	lp := compileParallelLoop(t, 400, 14)
	rec, err := RecordTrace(context.Background(), lp, 0)
	if err != nil {
		t.Fatalf("RecordTrace: %v", err)
	}
	if rec.Len() == 0 || rec.Len() != rec.Steps() {
		t.Fatalf("recording %d events / %d steps", rec.Len(), rec.Steps())
	}
	for name, cfg := range replayVariants() {
		t.Run(name, func(t *testing.T) {
			want, err := NewMachine(lp, cfg).Run()
			if err != nil {
				t.Fatalf("fused Run: %v", err)
			}
			got, err := NewMachine(lp, cfg).RunRecorded(rec)
			if err != nil {
				t.Fatalf("RunRecorded: %v", err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("replayed stats diverge from fused run:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

func TestRunRecordedCorrupt(t *testing.T) {
	lp := compileParallelLoop(t, 100, 6)
	t.Run("nil", func(t *testing.T) {
		if _, err := NewMachine(lp, DefaultConfig()).RunRecorded(nil); !errors.Is(err, ErrCorruptTrace) {
			t.Fatalf("err = %v; want ErrCorruptTrace", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		rec, err := RecordTrace(context.Background(), lp, 0)
		if err != nil {
			t.Fatal(err)
		}
		rec.Truncate(rec.Len() / 2)
		if _, err := NewMachine(lp, DefaultConfig()).RunRecorded(rec); !errors.Is(err, ErrCorruptTrace) {
			t.Fatalf("err = %v; want ErrCorruptTrace", err)
		}
	})
	t.Run("unresolvable-coordinates", func(t *testing.T) {
		r := trace.NewRecorder(nil)
		r.Event(&trace.Event{Func: int32(lp.NumFuncs()) + 7, ID: 0})
		rec := r.Finalize(1)
		if _, err := NewMachine(lp, DefaultConfig()).RunRecorded(rec); !errors.Is(err, ErrCorruptTrace) {
			t.Fatalf("err = %v; want ErrCorruptTrace", err)
		}
	})
}

func TestRunRecordedStepLimit(t *testing.T) {
	lp := compileParallelLoop(t, 200, 8)
	rec, err := RecordTrace(context.Background(), lp, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.StepLimit = rec.Len() / 2
	fusedStats, fusedErr := NewMachine(lp, cfg).Run()
	replayStats, replayErr := NewMachine(lp, cfg).RunRecorded(rec)
	if !errors.Is(fusedErr, interp.ErrStepLimit) || !errors.Is(replayErr, interp.ErrStepLimit) {
		t.Fatalf("fused err = %v, replay err = %v; want interp.ErrStepLimit from both", fusedErr, replayErr)
	}
	if fusedStats != nil || replayStats != nil {
		t.Fatal("budget-exceeded runs must not return stats")
	}
	// Recording under the same limit fails the same way and caches nothing.
	if _, err := RecordTrace(context.Background(), lp, cfg.StepLimit); !errors.Is(err, interp.ErrStepLimit) {
		t.Fatalf("RecordTrace err = %v; want interp.ErrStepLimit", err)
	}
}

func TestRunRecordedCycleLimit(t *testing.T) {
	lp := compileParallelLoop(t, 200, 8)
	rec, err := RecordTrace(context.Background(), lp, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.CycleLimit = 50
	_, fusedErr := NewMachine(lp, cfg).Run()
	_, replayErr := NewMachine(lp, cfg).RunRecorded(rec)
	if !errors.Is(fusedErr, ErrCycleLimit) || !errors.Is(replayErr, ErrCycleLimit) {
		t.Fatalf("fused err = %v, replay err = %v; want ErrCycleLimit from both", fusedErr, replayErr)
	}
}

// TestRunRecordedMiddleware locks in that trace middleware composes with
// replay unchanged: an observing middleware sees the same stream in both
// modes, and a corrupting one fails both modes identically.
func TestRunRecordedMiddleware(t *testing.T) {
	lp := compileParallelLoop(t, 200, 8)
	rec, err := RecordTrace(context.Background(), lp, 0)
	if err != nil {
		t.Fatal(err)
	}
	counting := func(n *atomic.Int64) func(trace.Handler) trace.Handler {
		return func(next trace.Handler) trace.Handler {
			return trace.HandlerFunc(func(ev *trace.Event) {
				n.Add(1)
				next.Event(ev)
			})
		}
	}
	var fusedSeen, replaySeen atomic.Int64
	mf := NewMachine(lp, DefaultConfig())
	mf.SetTraceMiddleware(counting(&fusedSeen))
	want, err := mf.Run()
	if err != nil {
		t.Fatalf("fused Run: %v", err)
	}
	mr := NewMachine(lp, DefaultConfig())
	mr.SetTraceMiddleware(counting(&replaySeen))
	got, err := mr.RunRecorded(rec)
	if err != nil {
		t.Fatalf("RunRecorded: %v", err)
	}
	if fusedSeen.Load() != replaySeen.Load() {
		t.Fatalf("middleware saw %d fused events vs %d replayed", fusedSeen.Load(), replaySeen.Load())
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("middleware-wrapped replay diverges from fused run")
	}

	corrupting := func(next trace.Handler) trace.Handler {
		var n int64
		return trace.HandlerFunc(func(ev *trace.Event) {
			n++
			if n == 100 {
				cp := *ev
				cp.Func = 1 << 20
				next.Event(&cp)
				return
			}
			next.Event(ev)
		})
	}
	mf2 := NewMachine(lp, DefaultConfig())
	mf2.SetTraceMiddleware(corrupting)
	_, fusedErr := mf2.Run()
	mr2 := NewMachine(lp, DefaultConfig())
	mr2.SetTraceMiddleware(corrupting)
	_, replayErr := mr2.RunRecorded(rec)
	if !errors.Is(fusedErr, ErrCorruptTrace) || !errors.Is(replayErr, ErrCorruptTrace) {
		t.Fatalf("fused err = %v, replay err = %v; want ErrCorruptTrace from both", fusedErr, replayErr)
	}
}

// multiVariants is a small mixed bank for RunRecordedMulti tests: a
// baseline core plus SPT variants that disagree on recovery and SRB size.
func multiVariants() []Config {
	base := DefaultConfig()
	base.SPT = false
	squash := DefaultConfig()
	squash.Recovery = RecoverySquash
	srb16 := DefaultConfig()
	srb16.SRBSize = 16
	return []Config{base, DefaultConfig(), squash, srb16}
}

// TestRunRecordedMultiMatchesSingle locks in the broadcast contract at the
// engine level: every variant of a RunRecordedMulti bank returns exactly the
// stats its own RunRecordedContext would have.
func TestRunRecordedMultiMatchesSingle(t *testing.T) {
	lp := compileParallelLoop(t, 300, 10)
	rec, err := RecordTrace(context.Background(), lp, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := multiVariants()
	stats, errs := RunRecordedMulti(context.Background(), lp, rec, cfgs)
	for i, cfg := range cfgs {
		if errs[i] != nil {
			t.Fatalf("variant %d: %v", i, errs[i])
		}
		want, err := NewMachine(lp, cfg).RunRecorded(rec)
		if err != nil {
			t.Fatalf("single replay %d: %v", i, err)
		}
		if !reflect.DeepEqual(stats[i], want) {
			t.Fatalf("variant %d diverges from its own replay:\n got %+v\nwant %+v", i, stats[i], want)
		}
	}
}

// TestRunRecordedMultiBudgetIsolation starves one variant's cycle budget:
// it must fail with ErrCycleLimit while every sibling stays bit-identical
// to a solo replay.
func TestRunRecordedMultiBudgetIsolation(t *testing.T) {
	lp := compileParallelLoop(t, 300, 10)
	rec, err := RecordTrace(context.Background(), lp, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := multiVariants()
	starvedAt := 2
	cfgs[starvedAt].CycleLimit = 50
	stats, errs := RunRecordedMulti(context.Background(), lp, rec, cfgs)
	if !errors.Is(errs[starvedAt], ErrCycleLimit) {
		t.Fatalf("starved variant err = %v; want ErrCycleLimit", errs[starvedAt])
	}
	if stats[starvedAt] != nil {
		t.Fatal("starved variant must not return stats")
	}
	for i, cfg := range cfgs {
		if i == starvedAt {
			continue
		}
		if errs[i] != nil {
			t.Fatalf("sibling %d: %v", i, errs[i])
		}
		want, err := NewMachine(lp, cfg).RunRecorded(rec)
		if err != nil {
			t.Fatalf("single replay %d: %v", i, err)
		}
		if !reflect.DeepEqual(stats[i], want) {
			t.Fatalf("sibling %d perturbed by the starved variant", i)
		}
	}
}

// TestRunRecordedMultiStepLimit gives one variant a private step limit: it
// alone reports interp.ErrStepLimit, exactly like its solo replay, and the
// unlimited siblings still see the full trace.
func TestRunRecordedMultiStepLimit(t *testing.T) {
	lp := compileParallelLoop(t, 200, 8)
	rec, err := RecordTrace(context.Background(), lp, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := multiVariants()
	limitedAt := 1
	cfgs[limitedAt].StepLimit = rec.Len() / 2
	stats, errs := RunRecordedMulti(context.Background(), lp, rec, cfgs)
	if !errors.Is(errs[limitedAt], interp.ErrStepLimit) {
		t.Fatalf("limited variant err = %v; want interp.ErrStepLimit", errs[limitedAt])
	}
	if stats[limitedAt] != nil {
		t.Fatal("step-limited variant must not return stats")
	}
	for i, cfg := range cfgs {
		if i == limitedAt {
			continue
		}
		if errs[i] != nil {
			t.Fatalf("sibling %d: %v", i, errs[i])
		}
		want, err := NewMachine(lp, cfg).RunRecorded(rec)
		if err != nil {
			t.Fatalf("single replay %d: %v", i, err)
		}
		if !reflect.DeepEqual(stats[i], want) {
			t.Fatalf("sibling %d perturbed by the step-limited variant", i)
		}
	}
}

// TestRunRecordedMultiCorrupt feeds torn input through the broadcast path:
// a truncated recording and a doctored event must surface ErrCorruptTrace on
// every variant — never a panic — and an invalid config fails only its slot.
func TestRunRecordedMultiCorrupt(t *testing.T) {
	lp := compileParallelLoop(t, 100, 6)
	cfgs := multiVariants()
	t.Run("truncated", func(t *testing.T) {
		rec, err := RecordTrace(context.Background(), lp, 0)
		if err != nil {
			t.Fatal(err)
		}
		rec.Truncate(rec.Len() / 2)
		stats, errs := RunRecordedMulti(context.Background(), lp, rec, cfgs)
		for i := range cfgs {
			if !errors.Is(errs[i], ErrCorruptTrace) {
				t.Fatalf("variant %d err = %v; want ErrCorruptTrace", i, errs[i])
			}
			if stats[i] != nil {
				t.Fatalf("variant %d returned stats from a torn recording", i)
			}
		}
	})
	t.Run("doctored-event", func(t *testing.T) {
		// Re-record the trace but smuggle in one event whose coordinates do
		// not resolve; every engine must reject it mid-pass.
		im := interp.New(lp)
		r := trace.NewRecorder(nil)
		n := int64(0)
		im.SetHandler(trace.HandlerFunc(func(ev *trace.Event) {
			n++
			if n == 500 {
				cp := *ev
				cp.ID = 1 << 24
				r.Event(&cp)
				return
			}
			r.Event(ev)
		}))
		res, err := im.Run()
		if err != nil {
			t.Fatal(err)
		}
		rec := r.Finalize(res.Steps)
		stats, errs := RunRecordedMulti(context.Background(), lp, rec, cfgs)
		for i := range cfgs {
			if !errors.Is(errs[i], ErrCorruptTrace) {
				t.Fatalf("variant %d err = %v; want ErrCorruptTrace", i, errs[i])
			}
			if stats[i] != nil {
				t.Fatalf("variant %d returned stats from a doctored trace", i)
			}
		}
	})
	t.Run("invalid-config-slot", func(t *testing.T) {
		rec, err := RecordTrace(context.Background(), lp, 0)
		if err != nil {
			t.Fatal(err)
		}
		bank := multiVariants()
		bank[0].Window = -3
		stats, errs := RunRecordedMulti(context.Background(), lp, rec, bank)
		if errs[0] == nil || stats[0] != nil {
			t.Fatalf("invalid config: stats=%v errs=%v; want a validation error", stats[0], errs[0])
		}
		for i := 1; i < len(bank); i++ {
			if errs[i] != nil {
				t.Fatalf("sibling %d failed alongside the invalid config: %v", i, errs[i])
			}
			want, err := NewMachine(lp, bank[i]).RunRecorded(rec)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(stats[i], want) {
				t.Fatalf("sibling %d perturbed by the invalid config", i)
			}
		}
	})
	t.Run("empty-bank", func(t *testing.T) {
		rec, err := RecordTrace(context.Background(), lp, 0)
		if err != nil {
			t.Fatal(err)
		}
		stats, errs := RunRecordedMulti(context.Background(), lp, rec, nil)
		if len(stats) != 0 || len(errs) != 0 {
			t.Fatalf("empty bank returned %d stats, %d errs", len(stats), len(errs))
		}
	})
}
