package arch

import (
	"context"
	"fmt"

	"repro/internal/interp"
	"repro/internal/trace"
)

// RecordTrace interprets lp once and captures its complete architectural
// trace as a Recording. stepLimit > 0 bounds the run exactly like
// Config.StepLimit does for a fused simulation: exceeding it aborts the
// capture with interp.ErrStepLimit and nothing is retained. The returned
// recording replays bit-identically into any machine configuration for the
// same program (RunRecorded).
func RecordTrace(ctx context.Context, lp *interp.Program, stepLimit int64) (*trace.Recording, error) {
	im := interp.New(lp)
	if stepLimit > 0 {
		im.SetStepLimit(stepLimit)
	}
	im.SetContext(ctx)
	rec := trace.NewRecorder(nil)
	im.SetHandler(rec)
	res, err := im.Run()
	if err != nil {
		rec.Abort()
		return nil, err
	}
	return rec.Finalize(res.Steps), nil
}

// RunRecorded is RunContext fed from a finished recording instead of a live
// interpreter. See RunRecordedContext.
func (m *Machine) RunRecorded(rec *trace.Recording) (*RunStats, error) {
	return m.RunRecordedContext(context.Background(), rec)
}

// RunRecordedContext simulates a previously captured trace. The engine is
// fed through exactly the code path a live interpreter uses (the same
// trace.Handler, including any middleware installed with
// SetTraceMiddleware — recordings hold the raw pre-middleware stream), so a
// replayed run is bit-identical to the fused run it stands in for.
//
// Config.StepLimit applies to the replay just as it does to a live run:
// feeding stops after StepLimit events and interp.ErrStepLimit is returned.
// A nil, unfinalized or truncated recording fails with ErrCorruptTrace, as
// does any event whose coordinates do not resolve in the loaded program.
// When both the step and cycle budgets would be exceeded in the same run,
// the surfaced budget error may differ from the fused run's; both modes
// return nil stats and a budget-class error.
// RunRecordedMulti simulates one captured trace under several machine
// configurations in a single broadcast decode pass: N engines are
// constructed up front and every event is decoded once and fanned out to
// all of them (trace.MultiReplayer). Each engine's result is bit-identical
// to a RunRecordedContext of the same configuration — engines share nothing
// mutable, so fan-out order cannot influence per-engine state.
//
// Failure is isolated per variant: an engine that exhausts its cycle budget,
// rejects a corrupt event, or hits its per-variant StepLimit gets its own
// error while its siblings finish normally (a failed engine stops consuming
// and is shed from the pass on the broadcast's polling cadence). An invalid
// configuration or a torn recording likewise fails only the affected
// entries. The returned slices are indexed like cfgs; stats[i] is nil
// exactly when errs[i] is non-nil.
func RunRecordedMulti(ctx context.Context, lp *interp.Program, rec *trace.Recording, cfgs []Config) ([]*RunStats, []error) {
	stats := make([]*RunStats, len(cfgs))
	errs := make([]error, len(cfgs))
	if len(cfgs) == 0 {
		return stats, errs
	}
	var corrupt error
	if !rec.Complete() || rec.Len() != rec.Steps() {
		corrupt = fmt.Errorf("%w: recording incomplete (%d events for %d steps)",
			ErrCorruptTrace, rec.Len(), rec.Steps())
	}
	engines := make([]*engine, len(cfgs))
	hs := make([]trace.Handler, 0, len(cfgs))
	limits := make([]int64, 0, len(cfgs))
	fed := make([]int, 0, len(cfgs)) // bank position -> cfgs index
	limited := make([]bool, len(cfgs))
	for i, cfg := range cfgs {
		if err := cfg.Validate(); err != nil {
			errs[i] = err
			continue
		}
		if corrupt != nil {
			errs[i] = corrupt
			continue
		}
		// No cancel hook: in a bank, one engine's failure must not abort the
		// siblings' pass. The broadcast replayer sheds the dead engine via
		// Quit instead, and Event is a no-op once failure is set.
		e := newEngine(lp, cfg)
		engines[i] = e
		feedN := rec.Len()
		if cfg.StepLimit > 0 && feedN > cfg.StepLimit {
			feedN = cfg.StepLimit
			limited[i] = true
		}
		hs = append(hs, e)
		limits = append(limits, feedN)
		fed = append(fed, i)
	}
	if len(hs) == 0 {
		return stats, errs
	}
	var mr trace.MultiReplayer
	rerr := mr.Replay(ctx, rec, hs, limits)
	defer func() {
		for _, i := range fed {
			engines[i].releaseBuf()
		}
	}()
	for _, i := range fed {
		e := engines[i]
		// Mirror RunRecordedContext's precedence: an engine abort outranks
		// the pass error, which outranks the per-variant step limit.
		if e.failure != nil {
			errs[i] = e.failure
			continue
		}
		if rerr != nil {
			errs[i] = rerr
			continue
		}
		if limited[i] {
			errs[i] = interp.ErrStepLimit
			continue
		}
		e.finish()
		if e.failure != nil {
			errs[i] = e.failure
			continue
		}
		e.stats.Instrs = rec.Steps()
		stats[i] = e.stats
	}
	return stats, errs
}

func (m *Machine) RunRecordedContext(ctx context.Context, rec *trace.Recording) (*RunStats, error) {
	if err := m.cfg.Validate(); err != nil {
		return nil, err
	}
	if !rec.Complete() || rec.Len() != rec.Steps() {
		return nil, fmt.Errorf("%w: recording incomplete (%d events for %d steps)",
			ErrCorruptTrace, rec.Len(), rec.Steps())
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	e := newEngine(m.lp, m.cfg)
	defer e.releaseBuf()
	e.cancel = cancel
	var h trace.Handler = e
	if m.mw != nil {
		h = m.mw(e)
	}
	feed := rec.Len()
	limited := false
	if m.cfg.StepLimit > 0 && feed > m.cfg.StepLimit {
		feed = m.cfg.StepLimit
		limited = true
	}
	var rp trace.Replayer
	rerr := rp.Replay(ctx, rec, h, feed)
	if e.failure != nil {
		// Mirror RunContext: an engine abort (cycle budget, corrupt event)
		// outranks the producer's view of the resulting cancellation.
		return nil, e.failure
	}
	if rerr != nil {
		return nil, rerr
	}
	if limited {
		return nil, interp.ErrStepLimit
	}
	e.finish()
	if e.failure != nil {
		return nil, e.failure
	}
	e.stats.Instrs = rec.Steps()
	return e.stats, nil
}
