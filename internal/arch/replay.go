package arch

import (
	"context"
	"fmt"

	"repro/internal/interp"
	"repro/internal/trace"
)

// RecordTrace interprets lp once and captures its complete architectural
// trace as a Recording. stepLimit > 0 bounds the run exactly like
// Config.StepLimit does for a fused simulation: exceeding it aborts the
// capture with interp.ErrStepLimit and nothing is retained. The returned
// recording replays bit-identically into any machine configuration for the
// same program (RunRecorded).
func RecordTrace(ctx context.Context, lp *interp.Program, stepLimit int64) (*trace.Recording, error) {
	im := interp.New(lp)
	if stepLimit > 0 {
		im.SetStepLimit(stepLimit)
	}
	im.SetContext(ctx)
	rec := trace.NewRecorder(nil)
	im.SetHandler(rec)
	res, err := im.Run()
	if err != nil {
		rec.Abort()
		return nil, err
	}
	return rec.Finalize(res.Steps), nil
}

// RunRecorded is RunContext fed from a finished recording instead of a live
// interpreter. See RunRecordedContext.
func (m *Machine) RunRecorded(rec *trace.Recording) (*RunStats, error) {
	return m.RunRecordedContext(context.Background(), rec)
}

// RunRecordedContext simulates a previously captured trace. The engine is
// fed through exactly the code path a live interpreter uses (the same
// trace.Handler, including any middleware installed with
// SetTraceMiddleware — recordings hold the raw pre-middleware stream), so a
// replayed run is bit-identical to the fused run it stands in for.
//
// Config.StepLimit applies to the replay just as it does to a live run:
// feeding stops after StepLimit events and interp.ErrStepLimit is returned.
// A nil, unfinalized or truncated recording fails with ErrCorruptTrace, as
// does any event whose coordinates do not resolve in the loaded program.
// When both the step and cycle budgets would be exceeded in the same run,
// the surfaced budget error may differ from the fused run's; both modes
// return nil stats and a budget-class error.
func (m *Machine) RunRecordedContext(ctx context.Context, rec *trace.Recording) (*RunStats, error) {
	if err := m.cfg.Validate(); err != nil {
		return nil, err
	}
	if !rec.Complete() || rec.Len() != rec.Steps() {
		return nil, fmt.Errorf("%w: recording incomplete (%d events for %d steps)",
			ErrCorruptTrace, rec.Len(), rec.Steps())
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	e := newEngine(m.lp, m.cfg)
	e.cancel = cancel
	var h trace.Handler = e
	if m.mw != nil {
		h = m.mw(e)
	}
	feed := rec.Len()
	limited := false
	if m.cfg.StepLimit > 0 && feed > m.cfg.StepLimit {
		feed = m.cfg.StepLimit
		limited = true
	}
	var rp trace.Replayer
	rerr := rp.Replay(ctx, rec, h, feed)
	if e.failure != nil {
		// Mirror RunContext: an engine abort (cycle budget, corrupt event)
		// outranks the producer's view of the resulting cancellation.
		return nil, e.failure
	}
	if rerr != nil {
		return nil, rerr
	}
	if limited {
		return nil, interp.ErrStepLimit
	}
	e.finish()
	if e.failure != nil {
		return nil, e.failure
	}
	e.stats.Instrs = rec.Steps()
	return e.stats, nil
}
