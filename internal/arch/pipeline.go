package arch

import (
	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/ir"
	"repro/internal/trace"
)

// regKey identifies a register of a specific activation for scoreboarding.
type regKey struct {
	frame int64
	reg   ir.Reg
}

// pipeline models one in-order core: instructions issue in program order,
// up to `width` per cycle, each waiting for its source operands; loads pay
// the shared cache's access time; mispredicted branches redirect the front
// end after BranchPenalty cycles. Wait cycles are attributed to Figure 9's
// stall categories.
type pipeline struct {
	width   int
	penalty int

	cycle    int64
	slots    int
	redirect int64 // earliest issue after a mispredicted branch

	ready    map[regKey]int64
	fromLoad map[regKey]bool

	bd *Breakdown
}

func newPipeline(width, penalty int, bd *Breakdown) *pipeline {
	return &pipeline{
		width:    width,
		penalty:  penalty,
		ready:    make(map[regKey]int64, 256),
		fromLoad: make(map[regKey]bool, 256),
		bd:       bd,
	}
}

// now returns the pipeline's current cycle.
func (p *pipeline) now() int64 { return p.cycle }

// advanceTo moves the pipeline clock forward (never backward).
func (p *pipeline) advanceTo(t int64) {
	if t > p.cycle {
		p.cycle = t
		p.slots = 0
	}
}

// reset clears scoreboard state (used when a speculative pipeline is
// re-armed for a new thread).
func (p *pipeline) reset(at int64) {
	p.cycle = at
	p.slots = 0
	p.redirect = 0
	clear(p.ready)
	clear(p.fromLoad)
}

// dropFrame forgets scoreboard entries of a dead activation.
func (p *pipeline) dropFrame(frame int64) {
	for k := range p.ready {
		if k.frame == frame {
			delete(p.ready, k)
			delete(p.fromLoad, k)
		}
	}
}

// InstrBytes is the synthetic size of one instruction in the I-cache
// address space (Itanium bundles are 16 bytes for 3 instructions; one
// 5-ish-byte slot per instruction is close enough for locality).
const InstrBytes = 5

// exec issues one traced instruction and returns its issue and completion
// times. mem provides load latencies (nil for a pure timing probe); bp may
// be nil to skip branch prediction.
func (p *pipeline) exec(ev *trace.Event, in *ir.Instr, hier *cache.Hierarchy, bp *bpred.GAg, account bool) (issue, complete int64) {
	// Slot discipline: at most width instructions per cycle, in order.
	if p.slots >= p.width {
		p.cycle++
		p.slots = 0
	}
	// Instruction fetch: a synthetic PC (function base + id) probes the
	// shared L1I; a miss stalls the front end for the extra latency.
	if hier != nil {
		pc := (int64(ev.Func) << 24) + int64(ev.ID)*InstrBytes
		if extra := int64(hier.Instr(pc, p.cycle) - 1); extra > 0 {
			p.cycle += extra
			p.slots = 0
			if account {
				p.bd.PipeStall += extra
			}
		}
	}
	earliest := p.cycle

	// Operand readiness.
	opReady := int64(0)
	opLoad := false
	var uses [4]ir.Reg
	us := in.Uses(uses[:0])
	for _, r := range us {
		k := regKey{ev.Frame, r}
		if t := p.ready[k]; t > opReady {
			opReady = t
			opLoad = p.fromLoad[k]
		}
	}

	start := earliest
	if opReady > start {
		start = opReady
	}
	if p.redirect > start {
		start = p.redirect
	}
	if account && start > earliest {
		wait := start - earliest
		switch {
		case p.redirect >= opReady && p.redirect > earliest:
			p.bd.PipeStall += wait
		case opLoad:
			p.bd.DcacheStall += wait
		default:
			p.bd.Exec += wait // dependence-chain wait: execution time
		}
	}
	if start > p.cycle {
		p.cycle = start
		p.slots = 0
	}
	p.slots++
	if account {
		p.bd.IssueSlots++
	}

	lat := int64(in.Op.Latency())
	switch in.Op {
	case ir.Load:
		if hier != nil {
			lat = int64(hier.Data(ev.Addr, start))
		}
	case ir.Store:
		if hier != nil {
			hier.Data(ev.Addr, start) // warms/updates the shared cache
		}
		lat = 1
	case ir.Br:
		if bp != nil {
			if !bp.Predict(ev.Taken) {
				p.redirect = start + lat + int64(p.penalty)
			}
		}
	}
	complete = start + lat

	if d := in.Def(); d != ir.NoReg {
		k := regKey{ev.Frame, d}
		p.ready[k] = complete
		p.fromLoad[k] = in.Op == ir.Load
	}
	return start, complete
}

// setReady marks a register value available at time t (e.g. a call's
// return value propagated from the callee's Ret).
func (p *pipeline) setReady(frame int64, r ir.Reg, t int64, fromLoad bool) {
	k := regKey{frame, r}
	p.ready[k] = t
	p.fromLoad[k] = fromLoad
}
