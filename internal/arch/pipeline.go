package arch

import (
	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/ir"
	"repro/internal/trace"
)

// frameBoard is the register scoreboard of one activation: per-register
// readiness times and whether the producing instruction was a load. A
// register with no entry (index past the slice) is ready at cycle 0, which
// matches the zero value — so boards grow lazily to the highest register
// actually defined.
type frameBoard struct {
	ready    []int64
	fromLoad []bool
	frame    int64 // key this board is filed under in pipeline.boards
	slot     int   // position in pipeline.live
}

// get returns the readiness time and load-origin of register r.
func (b *frameBoard) get(r ir.Reg) (int64, bool) {
	if b == nil || int(r) >= len(b.ready) {
		return 0, false
	}
	return b.ready[r], b.fromLoad[r]
}

// set records register r becoming ready at t.
func (b *frameBoard) set(r ir.Reg, t int64, fromLoad bool) {
	for int(r) >= len(b.ready) {
		b.ready = append(b.ready, 0)
		b.fromLoad = append(b.fromLoad, false)
	}
	b.ready[r] = t
	b.fromLoad[r] = fromLoad
}

// pipeline models one in-order core: instructions issue in program order,
// up to `width` per cycle, each waiting for its source operands; loads pay
// the shared cache's access time; mispredicted branches redirect the front
// end after BranchPenalty cycles. Wait cycles are attributed to Figure 9's
// stall categories.
type pipeline struct {
	width   int
	penalty int

	cycle    int64
	slots    int
	redirect int64 // earliest issue after a mispredicted branch

	// Scoreboards, one per live activation; dropping a dead frame is O(its
	// registers) instead of a scan over every live entry. Boards are pooled
	// (cleared on release) so the steady state allocates nothing, and the
	// last-touched board is memoized — consecutive events overwhelmingly
	// share a frame. live mirrors the map's values so reset can walk and
	// unlink exactly the boards that exist instead of clearing the whole
	// map (O(capacity) per speculation window).
	boards    map[int64]*frameBoard
	live      []*frameBoard
	boardPool []*frameBoard
	lastFrame int64
	lastBoard *frameBoard

	bd *Breakdown
}

func newPipeline(width, penalty int, bd *Breakdown) *pipeline {
	return &pipeline{
		width:   width,
		penalty: penalty,
		boards:  make(map[int64]*frameBoard, 64),
		bd:      bd,
	}
}

// board returns frame's scoreboard; with create it materializes one (from
// the pool when possible) instead of returning nil.
func (p *pipeline) board(frame int64, create bool) *frameBoard {
	if p.lastBoard != nil && p.lastFrame == frame {
		return p.lastBoard
	}
	b := p.boards[frame]
	if b == nil && create {
		if n := len(p.boardPool); n > 0 {
			b = p.boardPool[n-1]
			p.boardPool = p.boardPool[:n-1]
		} else {
			b = &frameBoard{}
		}
		b.frame = frame
		b.slot = len(p.live)
		p.live = append(p.live, b)
		p.boards[frame] = b
	}
	if b != nil {
		p.lastFrame, p.lastBoard = frame, b
	}
	return b
}

// releaseBoard clears a dead board and returns it to the pool. The caller
// unlinks it from boards and live first.
func (p *pipeline) releaseBoard(b *frameBoard) {
	clear(b.ready)
	clear(b.fromLoad)
	b.ready = b.ready[:0]
	b.fromLoad = b.fromLoad[:0]
	p.boardPool = append(p.boardPool, b)
}

// unlink removes b from the live list (swap-remove, fixing the moved
// board's slot).
func (p *pipeline) unlink(b *frameBoard) {
	last := p.live[len(p.live)-1]
	p.live[b.slot] = last
	last.slot = b.slot
	p.live = p.live[:len(p.live)-1]
}

// now returns the pipeline's current cycle.
func (p *pipeline) now() int64 { return p.cycle }

// advanceTo moves the pipeline clock forward (never backward).
func (p *pipeline) advanceTo(t int64) {
	if t > p.cycle {
		p.cycle = t
		p.slots = 0
	}
}

// reset clears scoreboard state (used when a speculative pipeline is
// re-armed for a new thread).
func (p *pipeline) reset(at int64) {
	p.cycle = at
	p.slots = 0
	p.redirect = 0
	for _, b := range p.live {
		delete(p.boards, b.frame)
		p.releaseBoard(b)
	}
	p.live = p.live[:0]
	p.lastBoard = nil
}

// dropFrame forgets scoreboard entries of a dead activation.
func (p *pipeline) dropFrame(frame int64) {
	b := p.boards[frame]
	if b == nil {
		return
	}
	delete(p.boards, frame)
	p.unlink(b)
	if p.lastBoard == b {
		p.lastBoard = nil
	}
	p.releaseBoard(b)
}

// InstrBytes is the synthetic size of one instruction in the I-cache
// address space (Itanium bundles are 16 bytes for 3 instructions; one
// 5-ish-byte slot per instruction is close enough for locality).
const InstrBytes = 5

// exec issues one traced instruction and returns its issue and completion
// times. mem provides load latencies (nil for a pure timing probe); bp may
// be nil to skip branch prediction.
func (p *pipeline) exec(ev *trace.Event, in *ir.Instr, hier *cache.Hierarchy, bp *bpred.GAg, account bool) (issue, complete int64) {
	// Slot discipline: at most width instructions per cycle, in order.
	if p.slots >= p.width {
		p.cycle++
		p.slots = 0
	}
	// Instruction fetch: a synthetic PC (function base + id) probes the
	// shared L1I; a miss stalls the front end for the extra latency.
	if hier != nil {
		pc := (int64(ev.Func) << 24) + int64(ev.ID)*InstrBytes
		if extra := int64(hier.Instr(pc, p.cycle) - 1); extra > 0 {
			p.cycle += extra
			p.slots = 0
			if account {
				p.bd.PipeStall += extra
			}
		}
	}
	earliest := p.cycle

	// Operand readiness.
	opReady := int64(0)
	opLoad := false
	var uses [4]ir.Reg
	us := in.Uses(uses[:0])
	if len(us) > 0 {
		b := p.board(ev.Frame, false)
		for _, r := range us {
			if t, fl := b.get(r); t > opReady {
				opReady = t
				opLoad = fl
			}
		}
	}

	start := earliest
	if opReady > start {
		start = opReady
	}
	if p.redirect > start {
		start = p.redirect
	}
	if account && start > earliest {
		wait := start - earliest
		switch {
		case p.redirect >= opReady && p.redirect > earliest:
			p.bd.PipeStall += wait
		case opLoad:
			p.bd.DcacheStall += wait
		default:
			p.bd.Exec += wait // dependence-chain wait: execution time
		}
	}
	if start > p.cycle {
		p.cycle = start
		p.slots = 0
	}
	p.slots++
	if account {
		p.bd.IssueSlots++
	}

	lat := int64(in.Op.Latency())
	switch in.Op {
	case ir.Load:
		if hier != nil {
			lat = int64(hier.Data(ev.Addr, start))
		}
	case ir.Store:
		if hier != nil {
			hier.Data(ev.Addr, start) // warms/updates the shared cache
		}
		lat = 1
	case ir.Br:
		if bp != nil {
			if !bp.Predict(ev.Taken) {
				p.redirect = start + lat + int64(p.penalty)
			}
		}
	}
	complete = start + lat

	if d := in.Def(); d != ir.NoReg {
		p.board(ev.Frame, true).set(d, complete, in.Op == ir.Load)
	}
	return start, complete
}

// setReady marks a register value available at time t (e.g. a call's
// return value propagated from the callee's Ret).
func (p *pipeline) setReady(frame int64, r ir.Reg, t int64, fromLoad bool) {
	p.board(frame, true).set(r, t, fromLoad)
}
