package arch

// Micro-benchmarks for the trace-driven engine's hot paths. The central
// invariant locked in here: once warm, simulating speculation episodes
// allocates nothing — the SRB entries, speculative pipeline, thread
// records, snapshots and frame-linkage records are all pooled per engine.

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/interp"
	"repro/internal/trace"
)

// traceRecorder captures a program's full value-annotated trace with
// deep-copied snapshots so it can be replayed through an engine repeatedly.
type traceRecorder struct{ evs []trace.Event }

func (r *traceRecorder) Event(ev *trace.Event) {
	cp := *ev
	if ev.Snapshot != nil {
		cp.Snapshot = append([]int64(nil), ev.Snapshot...)
	}
	r.evs = append(r.evs, cp)
}

// recordSPTTrace compiles the mostly-parallel loop with the SPT compiler
// and records one sequential execution's trace. The loop mixes fast
// commits with selective re-execution replays, covering both commit paths.
func recordSPTTrace(tb testing.TB, n int64, depth int) (*interp.Program, []trace.Event) {
	tb.Helper()
	res, err := compiler.Compile(buildMostlyParallelLoop(n, depth), compiler.DefaultOptions())
	if err != nil {
		tb.Fatalf("Compile: %v", err)
	}
	lp, err := interp.Load(res.Program)
	if err != nil {
		tb.Fatalf("Load: %v", err)
	}
	rec := &traceRecorder{}
	m := interp.New(lp)
	m.SetHandler(rec)
	if _, err := m.Run(); err != nil {
		tb.Fatalf("Run: %v", err)
	}
	if len(rec.evs) == 0 {
		tb.Fatal("empty trace")
	}
	return lp, rec.evs
}

// replay feeds one captured execution through the engine. Replaying the
// same capture again is coherent: every frame dies at its Ret, so repeated
// frame ids always refer to fresh activations.
func replay(e *engine, evs []trace.Event) {
	for i := range evs {
		e.Event(&evs[i])
	}
}

// BenchmarkSpeculationEpisodes measures the steady-state cost of the
// speculation path — fork arming, speculative execution, dependence
// checking, and fast-commit/replay — with a warm engine. Expected:
// 0 allocs/op.
func BenchmarkSpeculationEpisodes(b *testing.B) {
	lp, evs := recordSPTTrace(b, 600, 24)
	e := newEngine(lp, DefaultConfig())
	replay(e, evs) // warm pools, caches and scratch buffers
	episodes := e.stats.Windows
	if episodes == 0 {
		b.Fatal("trace opens no speculative windows")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		replay(e, evs)
	}
	b.StopTimer()
	if e.failure != nil {
		b.Fatal(e.failure)
	}
	b.ReportMetric(float64(episodes), "episodes/op")
}

// BenchmarkBaselineEvents measures the plain single-core event path.
func BenchmarkBaselineEvents(b *testing.B) {
	lp, evs := recordSPTTrace(b, 600, 24)
	e := newEngine(lp, BaselineConfig())
	replay(e, evs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		replay(e, evs)
	}
	b.StopTimer()
	if e.failure != nil {
		b.Fatal(e.failure)
	}
	b.ReportMetric(float64(len(evs)), "events/op")
}

// TestSpeculationSteadyStateAllocs locks in the zero-allocation steady
// state of the speculation episode path.
func TestSpeculationSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is perturbed by the race detector")
	}
	lp, evs := recordSPTTrace(t, 400, 24)
	e := newEngine(lp, DefaultConfig())
	replay(e, evs)
	replay(e, evs) // second warm pass: pools reach steady capacity
	if e.stats.Windows == 0 || e.stats.FastCommits+e.stats.Replays == 0 {
		t.Fatal("trace exercises no speculation commits")
	}
	allocs := testing.AllocsPerRun(3, func() { replay(e, evs) })
	if e.failure != nil {
		t.Fatal(e.failure)
	}
	if allocs > 0 {
		t.Fatalf("steady-state replay allocates %.1f times per execution; want 0", allocs)
	}
}
