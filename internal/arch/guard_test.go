package arch

import (
	"context"
	"errors"
	"testing"

	"repro/internal/trace"
)

// TestRunContextAlreadyCancelled: a cancelled context aborts the run before
// any cycle is simulated.
func TestRunContextAlreadyCancelled(t *testing.T) {
	cres := compileSPT(t, buildParallelLoop(200, 6))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := NewMachine(load(t, cres.Program), DefaultConfig()).RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestCycleLimit: a tiny cycle budget stops the simulation with
// ErrCycleLimit instead of running to completion.
func TestCycleLimit(t *testing.T) {
	p := buildParallelLoop(500, 6)
	full := simulate(t, p, BaselineConfig())
	if full.Cycles < 100 {
		t.Fatalf("test program too small: %d cycles", full.Cycles)
	}
	cfg := BaselineConfig()
	cfg.CycleLimit = full.Cycles / 2
	_, err := NewMachine(load(t, p), cfg).Run()
	if !errors.Is(err, ErrCycleLimit) {
		t.Fatalf("err = %v, want ErrCycleLimit", err)
	}
	// SPT mode respects the budget too.
	cres := compileSPT(t, p)
	cfg = DefaultConfig()
	cfg.CycleLimit = 50
	_, err = NewMachine(load(t, cres.Program), cfg).Run()
	if !errors.Is(err, ErrCycleLimit) {
		t.Fatalf("SPT err = %v, want ErrCycleLimit", err)
	}
}

// TestCancelMidRun: cancelling the context from a trace middleware — a
// deterministic stand-in for an external deadline firing mid-simulation —
// stops the run with the context's error.
func TestCancelMidRun(t *testing.T) {
	cres := compileSPT(t, buildParallelLoop(400, 6))
	lp := load(t, cres.Program)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m := NewMachine(lp, DefaultConfig())
	var n int64
	m.SetTraceMiddleware(func(h trace.Handler) trace.Handler {
		return trace.HandlerFunc(func(ev *trace.Event) {
			n++
			if n == 2000 {
				cancel()
			}
			h.Event(ev)
		})
	})
	_, err := m.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n < 2000 {
		t.Fatalf("middleware saw only %d events", n)
	}
}

// TestCorruptTraceEvent: events with unresolvable coordinates abort the
// simulation with ErrCorruptTrace instead of indexing out of bounds.
func TestCorruptTraceEvent(t *testing.T) {
	cres := compileSPT(t, buildParallelLoop(100, 4))
	for _, mut := range []func(ev *trace.Event){
		func(ev *trace.Event) { ev.Func = 99 },
		func(ev *trace.Event) { ev.Func = -1 },
		func(ev *trace.Event) { ev.ID = 1 << 20 },
		func(ev *trace.Event) { ev.ID = -7 },
	} {
		m := NewMachine(load(t, cres.Program), DefaultConfig())
		var n int64
		m.SetTraceMiddleware(func(h trace.Handler) trace.Handler {
			return trace.HandlerFunc(func(ev *trace.Event) {
				n++
				cp := *ev
				if n == 500 {
					mut(&cp)
				}
				h.Event(&cp)
			})
		})
		_, err := m.Run()
		if !errors.Is(err, ErrCorruptTrace) {
			t.Fatalf("err = %v, want ErrCorruptTrace", err)
		}
	}
}

// TestNegativeBudgetsRejected: Validate refuses negative budgets.
func TestNegativeBudgetsRejected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CycleLimit = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative CycleLimit must not validate")
	}
	cfg = DefaultConfig()
	cfg.StepLimit = -5
	if err := cfg.Validate(); err == nil {
		t.Error("negative StepLimit must not validate")
	}
}
