package arch

// Hand-built SPT programs that probe each hardware structure of Section 3
// in isolation: the speculative store buffer, the load-address buffer's
// temporal-order check, misspeculation taint propagation through register
// def-use and call linkage, the wrong-path replay stop, and the SRB window
// bound. Each program is written directly in the transformed (forked) shape
// so the test controls exactly what the speculative window contains.

import (
	"testing"

	"repro/internal/ir"
)

// forkedLoop builds a canonical pre-transformed SPT loop:
//
//	entry:  <init>; temp_i = i; jmp head
//	head:   c = i > 0 ? start : killblk
//	start:  i = temp_i; temp_i = i-1; spt_fork(start); <body(i)>; i--; jmp head
//	killblk: spt_kill; jmp exit
//	exit:   ret <ret>
//
// body receives the builder and the iteration register.
type forkedLoopSpec struct {
	n       int64
	nregs   int // extra scratch registers to allocate
	globals []ir.Global
	body    func(b *ir.FuncBuilder, i ir.Reg, scratch []ir.Reg)
	retReg  func(scratch []ir.Reg) int // index into scratch, or -1 for i
}

func buildForkedLoop(spec forkedLoopSpec) *ir.Program {
	b := ir.NewFuncBuilder("main", 0)
	i, c, z, ti := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
	scratch := make([]ir.Reg, spec.nregs)
	for k := range scratch {
		scratch[k] = b.NewReg()
	}
	b.Block("entry")
	b.MovI(i, spec.n)
	b.MovI(z, 0)
	for _, r := range scratch {
		b.MovI(r, 0)
	}
	b.Mov(ti, i)
	b.Jmp("head")
	b.Block("head")
	b.ALU(ir.CmpGT, c, i, z)
	b.Br(c, "start", "killblk")
	b.Block("start")
	b.Mov(i, ti)
	b.AddI(ti, i, -1)
	b.SptFork("start")
	spec.body(b, i, scratch)
	b.AddI(i, i, -1)
	b.Jmp("head")
	b.Block("killblk")
	b.SptKill()
	b.Jmp("exit")
	b.Block("exit")
	ret := i
	if spec.retReg != nil {
		if idx := spec.retReg(scratch); idx >= 0 {
			ret = scratch[idx]
		}
	}
	b.Ret(ret)
	pb := ir.NewProgramBuilder("main").AddFunc(b.Done())
	for _, g := range spec.globals {
		pb.AddGlobal(g.Name, g.Size, g.Init...)
	}
	return pb.Done()
}

func runForked(t *testing.T, spec forkedLoopSpec, cfg Config) *RunStats {
	t.Helper()
	p := buildForkedLoop(spec)
	if err := p.Validate(); err != nil {
		t.Fatalf("invalid: %v\n%s", err, p.Disasm())
	}
	return simulate(t, p, cfg)
}

// TestSSBForwarding: an iteration stores to a private slot and immediately
// loads it back. The speculative thread's load must be satisfied by the
// speculative store buffer — never flagged as a violation, even though the
// address is written every iteration.
func TestSSBForwarding(t *testing.T) {
	spec := forkedLoopSpec{
		n:       200,
		nregs:   2,
		globals: []ir.Global{{Name: "slot", Size: 400}},
		body: func(b *ir.FuncBuilder, i ir.Reg, s []ir.Reg) {
			g, v := s[0], s[1]
			b.GAddr(g, "slot")
			b.ALU(ir.Add, g, g, i) // per-iteration slot: no cross-iteration alias
			b.MulI(v, i, 7)
			b.Store(g, 0, v)
			b.Load(v, g, 0) // same-window load: SSB hit
			emitChain(b, v, v, 6)
			b.Store(g, 0, v)
		},
	}
	st := runForked(t, spec, DefaultConfig())
	if st.Windows == 0 {
		t.Fatal("no windows")
	}
	if st.FastCommitRatio() < 0.95 {
		t.Errorf("SSB-forwarded loads caused violations: fast-commit %.2f", st.FastCommitRatio())
	}
}

// TestTemporalOrderMemoryCheck: the load-address buffer only flags stores
// the speculative load could not have seen. A carried dependence whose
// producer store happens *early* in the main iteration and whose consumer
// load happens *late* in the speculative iteration resolves through the
// coherent cache — no violation. Swapping the positions makes every window
// violate.
func TestTemporalOrderMemoryCheck(t *testing.T) {
	mk := func(loadFirst bool) forkedLoopSpec {
		return forkedLoopSpec{
			n:       300,
			nregs:   3,
			globals: []ir.Global{{Name: "cell", Size: 1}},
			body: func(b *ir.FuncBuilder, i ir.Reg, s []ir.Reg) {
				g, v, w := s[0], s[1], s[2]
				b.GAddr(g, "cell")
				if loadFirst {
					// load early ... store late: spec load races ahead of
					// the main store -> violation
					b.Load(v, g, 0)
					emitChain(b, w, i, 10)
					b.ALU(ir.Add, v, v, w)
					b.Store(g, 0, v)
				} else {
					// store early ... nothing reads late: main's store
					// completes before the next window's early chain
					// finishes, and the spec load happens after its own
					// long chain -> mostly no violation
					b.Load(v, g, 0)
					b.AddI(v, v, 1)
					b.Store(g, 0, v)
					emitChain(b, w, i, 10)
					b.ALU(ir.Xor, s[1], v, w)
				}
			},
			retReg: func(s []ir.Reg) int { return 1 },
		}
	}
	early := runForked(t, mk(true), DefaultConfig())
	late := runForked(t, mk(false), DefaultConfig())
	if early.FastCommitRatio() > 0.3 {
		t.Errorf("early-load/late-store loop fast-commits %.2f, want near 0", early.FastCommitRatio())
	}
	if late.FastCommitRatio() < 0.5 {
		t.Errorf("store-early loop fast-commits %.2f, want majority (temporal order satisfied)",
			late.FastCommitRatio())
	}
}

// TestTaintThroughCallLinkage: a violated value passed as a call argument
// taints the callee's computation and the returned value's consumers.
func TestTaintThroughCallLinkage(t *testing.T) {
	// callee(x) -> x*3 + chain
	cb := ir.NewFuncBuilder("callee", 1)
	cv := cb.NewReg()
	cb.Block("entry")
	cb.MulI(cv, cb.Param(0), 3)
	emitChain(cb, cv, cv, 4)
	cb.Ret(cv)
	callee := cb.Done()

	b := ir.NewFuncBuilder("main", 0)
	i, c, z, ti, g, v, acc := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
	b.Block("entry")
	b.MovI(i, 200)
	b.MovI(z, 0)
	b.MovI(acc, 0)
	b.Mov(ti, i)
	b.Jmp("head")
	b.Block("head")
	b.ALU(ir.CmpGT, c, i, z)
	b.Br(c, "start", "killblk")
	b.Block("start")
	b.Mov(i, ti)
	b.AddI(ti, i, -1)
	b.SptFork("start")
	b.GAddr(g, "cell")
	b.Load(v, g, 0) // early load of the carried cell: violates
	b.Call(v, "callee", v)
	b.ALU(ir.Xor, acc, acc, v)
	emitChain(b, v, v, 6)
	b.Store(g, 0, v) // late store: next window's early load is stale
	b.AddI(i, i, -1)
	b.Jmp("head")
	b.Block("killblk")
	b.SptKill()
	b.Jmp("exit")
	b.Block("exit")
	b.Ret(acc)
	p := ir.NewProgramBuilder("main").AddFunc(b.Done()).AddFunc(callee).
		AddGlobal("cell", 1).Done()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	st := simulate(t, p, DefaultConfig())
	if st.Windows == 0 || st.Replays == 0 {
		t.Fatalf("expected replayed windows: %+v", st)
	}
	// Nearly the whole window depends on the violated load through the
	// call: most speculative instructions must be re-executed.
	if st.MisspecRatio() < 0.5 {
		t.Errorf("taint did not propagate through the call: misspec ratio %.2f", st.MisspecRatio())
	}
}

// TestWrongPathStopsReplay: when the violated value feeds a branch early in
// the body, replay must stop there — committed instructions per window stay
// small even though the window is long.
func TestWrongPathStopsReplay(t *testing.T) {
	spec := forkedLoopSpec{
		n:       200,
		nregs:   4,
		globals: []ir.Global{{Name: "cell", Size: 1}},
		body: func(b *ir.FuncBuilder, i ir.Reg, s []ir.Reg) {
			g, v, w, one := s[0], s[1], s[2], s[3]
			b.GAddr(g, "cell")
			b.Load(v, g, 0) // violated early load
			b.MovI(one, 1)
			b.ALU(ir.And, w, v, one)
			b.Br(w, "odd", "even") // misspeculated branch right away
			b.Block("odd")
			emitChain(b, w, i, 12)
			b.Jmp("join")
			b.Block("even")
			emitChain(b, w, i, 12)
			b.Jmp("join")
			b.Block("join")
			b.ALU(ir.Add, v, v, w)
			b.Store(g, 0, v) // late store keeps every window violated
		},
		retReg: func(s []ir.Reg) int { return 1 },
	}
	st := runForked(t, spec, DefaultConfig())
	if st.Replays == 0 {
		t.Fatal("no replays")
	}
	perWindow := float64(st.CommittedInstr+st.MisspecInstrs) / float64(st.Windows)
	// The body is ~35 instructions; replay stopping at the early branch
	// must keep the per-window commit well below that.
	if perWindow > 20 {
		t.Errorf("replay did not stop at the wrong-path branch: %.1f instrs/window", perWindow)
	}
	if st.Kills == 0 {
		t.Error("wrong-path windows should be counted as killed")
	}
}

// TestRecursionInsideSpeculativeWindow: speculative windows that call a
// recursive function must track frames correctly and still commit.
func TestRecursionInsideSpeculativeWindow(t *testing.T) {
	rb := ir.NewFuncBuilder("fib", 1)
	x, c, z, t1, t2 := rb.Param(0), rb.NewReg(), rb.NewReg(), rb.NewReg(), rb.NewReg()
	rb.Block("entry")
	rb.MovI(z, 2)
	rb.ALU(ir.CmpLT, c, x, z)
	rb.Br(c, "base", "rec")
	rb.Block("base")
	rb.Ret(x)
	rb.Block("rec")
	rb.AddI(t1, x, -1)
	rb.Call(t1, "fib", t1)
	rb.AddI(t2, x, -2)
	rb.Call(t2, "fib", t2)
	rb.ALU(ir.Add, t1, t1, t2)
	rb.Ret(t1)
	fib := rb.Done()

	spec := forkedLoopSpec{
		n:       100,
		nregs:   3,
		globals: []ir.Global{{Name: "out", Size: 128}},
		body: func(b *ir.FuncBuilder, i ir.Reg, s []ir.Reg) {
			v, g, m := s[0], s[1], s[2]
			b.MovI(v, 6)
			b.Call(v, "fib", v)
			b.GAddr(g, "out")
			b.MovI(m, 127)
			b.ALU(ir.And, m, i, m)
			b.ALU(ir.Add, g, g, m)
			b.Store(g, 0, v) // per-iteration slot: no carried dependence
		},
	}
	p := buildForkedLoop(spec)
	p.Funcs = append(p.Funcs, fib)
	p.Finalize()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	base := simulate(t, p, BaselineConfig())
	st := simulate(t, p, DefaultConfig())
	if st.Windows == 0 {
		t.Fatal("no windows")
	}
	if st.FastCommitRatio() < 0.9 {
		t.Errorf("recursive windows violated: fast-commit %.2f", st.FastCommitRatio())
	}
	if st.Cycles >= base.Cycles {
		t.Errorf("no speedup on independent recursive bodies: %d vs %d", st.Cycles, base.Cycles)
	}
}

// TestSpecInstrAccounting: committed + misspeculated must equal the
// speculative instruction count, and per-loop stats must not exceed totals.
func TestSpecInstrAccounting(t *testing.T) {
	p := buildParallelLoop(300, 10)
	cres := compileSPT(t, p)
	st := simulate(t, cres.Program, DefaultConfig())
	if st.CommittedInstr+st.MisspecInstrs != st.SpecInstrs {
		t.Errorf("accounting broken: committed %d + misspec %d != spec %d",
			st.CommittedInstr, st.MisspecInstrs, st.SpecInstrs)
	}
	for k, ls := range st.PerLoop {
		if ls.SpecInstrs > st.SpecInstrs || ls.Windows > st.Windows {
			t.Errorf("loop %v stats exceed totals: %+v", k, ls)
		}
		if ls.CommittedInstr+ls.MisspecInstrs != ls.SpecInstrs {
			t.Errorf("loop %v accounting broken: %+v", k, ls)
		}
	}
}

// TestSquashDiscardsEverything: under full-squash recovery no violated
// window contributes committed instructions.
func TestSquashDiscardsEverything(t *testing.T) {
	spec := forkedLoopSpec{
		n:       200,
		nregs:   3,
		globals: []ir.Global{{Name: "cell", Size: 1}},
		body: func(b *ir.FuncBuilder, i ir.Reg, s []ir.Reg) {
			g, v, w := s[0], s[1], s[2]
			b.GAddr(g, "cell")
			b.Load(v, g, 0)
			emitChain(b, w, i, 8)
			b.ALU(ir.Add, v, v, w)
			b.Store(g, 0, v)
		},
		retReg: func(s []ir.Reg) int { return 1 },
	}
	cfg := DefaultConfig()
	cfg.Recovery = RecoverySquash
	st := runForked(t, spec, cfg)
	if st.Replays != 0 {
		t.Errorf("squash recovery must not replay: %d", st.Replays)
	}
	if st.FastCommits > 0 && st.CommittedInstr == 0 {
		t.Error("clean windows should still commit under squash")
	}
	// Every violated window is squashed: misspec == all instructions of
	// those windows.
	if st.Kills == 0 {
		t.Error("violated windows should be killed under squash")
	}
}

// TestWindowOverflowSuppressesForks: when one iteration exceeds the
// engine's lookahead window, the start-point is never found and the fork is
// suppressed rather than wedging the simulation.
func TestWindowOverflowSuppressesForks(t *testing.T) {
	spec := forkedLoopSpec{
		n:     6,
		nregs: 2,
		body: func(b *ir.FuncBuilder, i ir.Reg, s []ir.Reg) {
			// A gigantic inner loop makes each iteration larger than the
			// shrunken lookahead window.
			j, v := s[0], s[1]
			b.MovI(j, 500)
			b.Jmp("inner.head")
			b.Block("inner.head")
			b.MovI(v, 0)
			b.ALU(ir.CmpGT, v, j, v)
			b.Br(v, "inner.body", "inner.exit")
			b.Block("inner.body")
			emitChain(b, v, j, 2)
			b.AddI(j, j, -1)
			b.Jmp("inner.head")
			b.Block("inner.exit")
		},
	}
	cfg := DefaultConfig()
	cfg.Window = 512 // far smaller than the ~3500-instruction iteration
	cfg.SRBSize = 64
	st := runForked(t, spec, cfg)
	if st.NoForks == 0 {
		t.Errorf("expected suppressed forks with a tiny window: %+v", st)
	}
	if st.Cycles == 0 {
		t.Error("simulation wedged")
	}
}
