// Package arch is the trace-driven simulator of the SPT machine (Section 3
// of the paper): a tightly-coupled asymmetric 2-core processor in which the
// main core executes the architectural thread and the speculative core runs
// one speculative thread at a time. It consumes the sequential execution
// trace of a program and simulates it on two in-order pipelines with
// separate cycle counters and a shared, timestamp-ordered cache hierarchy —
// exactly the methodology of Section 5.1.
//
// Implemented hardware structures: spt_fork/spt_kill with register-context
// copy, the speculative store buffer (speculative loads search it before
// the shared cache), the speculative load address buffer (address-based
// memory dependence checking honouring temporal order), value-based or
// update-based register dependence checking, the speculation result buffer
// (FIFO; the speculative thread stalls when it fills), and both recovery
// mechanisms: selective re-execution with fast commit (SRX+FC, the default)
// and full squash (ablation).
package arch

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/multispec"
	"repro/internal/profiler"
)

// RecoveryKind selects the misspeculation recovery mechanism.
type RecoveryKind int

const (
	// RecoverySRXFC is selective re-execution with fast-commit (default):
	// correct speculative results commit from the speculation result
	// buffer; only misspeculated instructions re-execute; a clean window
	// fast-commits in FastCommitCycles.
	RecoverySRXFC RecoveryKind = iota
	// RecoverySquash discards the entire speculative thread on any
	// violation and re-executes it on the main core (the conventional
	// TLS recovery most other architectures use).
	RecoverySquash
)

// RegCheckKind selects the register dependence checker.
type RegCheckKind int

const (
	// RegCheckValue compares fork-time and arrival-time register values;
	// only changed values violate (Table 1 default).
	RegCheckValue RegCheckKind = iota
	// RegCheckUpdate flags any post-fork write to a register the
	// speculative thread read (scoreboard style).
	RegCheckUpdate
)

// Config is the machine configuration (Table 1).
type Config struct {
	SPT bool // false = plain single-core run (the baseline)

	FetchWidth       int // normal / re-execution fetch width (6)
	IssueWidth       int // normal / re-execution issue width (6)
	ReplayFetchWidth int // replay fetch width (12)
	ReplayIssueWidth int // replay issue width (12)

	BranchPenalty    int // mispredicted branch penalty (5)
	RFCopyCycles     int // register-file copy overhead at fork (1 minimum)
	FastCommitCycles int // fast commit overhead (5 minimum)
	SRBSize          int // speculation result buffer entries (1024)

	Recovery RecoveryKind
	RegCheck RegCheckKind

	// Cores is the total CMP core count, main core included. 0 and 2 both
	// select the paper's classic machine (one speculative thread at a
	// time); 3..multispec.MaxCores enable Prophet-style chained
	// speculation where a committing window spawns its successor early on
	// the next free core.
	Cores int
	// Sched is the spec-thread scheduling policy (in-order, stride-K,
	// eager-restart); see multispec.PolicyKind.
	Sched multispec.PolicyKind
	// SchedStride is the iteration lookahead per spawn for SchedStride
	// (0 or 1 = next iteration). Ignored by the other policies.
	SchedStride int
	// LiveIn selects how spawned threads receive their live-in registers:
	// the fork-time snapshot (SVP, default) or DDG backward-slice
	// pre-computation executed at spawn.
	LiveIn multispec.LiveInMode

	BPredEntries int // GAg pattern table entries (1024)

	Cache cache.Config

	// Window bounds how far the trace-driven engine looks ahead for the
	// speculative thread (events). It must exceed SRBSize comfortably.
	Window int

	// StepLimit bounds the simulated program's dynamic instructions
	// (0 = the interpreter's large default); runaway programs terminate
	// with an error instead of hanging the simulation.
	StepLimit int64

	// CycleLimit bounds the main pipeline's simulated cycles (0 =
	// unlimited). When exceeded the run stops with ErrCycleLimit, giving
	// sweeps a hard per-benchmark budget that is independent of host speed.
	CycleLimit int64
}

// Validate reports configuration errors (non-positive widths, buffer sizes
// or penalties) before a simulation is constructed.
func (c Config) Validate() error {
	switch {
	case c.IssueWidth <= 0 || c.FetchWidth <= 0:
		return fmt.Errorf("arch: non-positive core width")
	case c.ReplayIssueWidth <= 0 || c.ReplayFetchWidth <= 0:
		return fmt.Errorf("arch: non-positive replay width")
	case c.SRBSize <= 0:
		return fmt.Errorf("arch: non-positive SRB size")
	case c.Window <= c.SRBSize:
		return fmt.Errorf("arch: lookahead window (%d) must exceed the SRB (%d)", c.Window, c.SRBSize)
	case c.BranchPenalty < 0 || c.RFCopyCycles < 0 || c.FastCommitCycles < 0:
		return fmt.Errorf("arch: negative overhead")
	case c.BPredEntries < 2:
		return fmt.Errorf("arch: branch predictor needs at least 2 entries")
	case c.StepLimit < 0 || c.CycleLimit < 0:
		return fmt.Errorf("arch: negative step/cycle budget")
	case c.Cores < 0 || c.Cores == 1 || c.Cores > multispec.MaxCores:
		return fmt.Errorf("arch: core count %d (want 0, or 2..%d)", c.Cores, multispec.MaxCores)
	case !c.Sched.Valid():
		return fmt.Errorf("arch: unknown scheduling policy %d", c.Sched)
	case c.SchedStride < 0:
		return fmt.Errorf("arch: negative scheduling stride")
	case !c.LiveIn.Valid():
		return fmt.Errorf("arch: unknown live-in mode %d", c.LiveIn)
	}
	return nil
}

// EffCores returns the effective total core count (0 means the classic 2).
func (c Config) EffCores() int {
	if c.Cores == 0 {
		return 2
	}
	return c.Cores
}

// DefaultConfig returns the paper's default machine configuration
// (Table 1).
func DefaultConfig() Config {
	return Config{
		SPT:              true,
		FetchWidth:       6,
		IssueWidth:       6,
		ReplayFetchWidth: 12,
		ReplayIssueWidth: 12,
		BranchPenalty:    5,
		RFCopyCycles:     1,
		FastCommitCycles: 5,
		SRBSize:          1024,
		Recovery:         RecoverySRXFC,
		RegCheck:         RegCheckValue,
		BPredEntries:     1024,
		Cache:            cache.DefaultConfig(),
		Window:           1 << 14,
	}
}

// Canonical returns the configuration with every parameter that cannot
// influence the run's results normalized to its default. For baseline
// (SPT=false) configurations the speculation machinery never engages, so
// the SRB size, fork/commit overheads, recovery and checker kinds, replay
// widths and lookahead window are all irrelevant; normalizing them lets an
// artifact cache share one baseline simulation across a whole ablation
// sweep. Budget knobs (StepLimit, CycleLimit) are preserved — they change
// whether a run completes at all.
func (c Config) Canonical() Config {
	if c.SPT {
		// Cores=2 is the classic machine spelled explicitly, and a stride
		// of 1 is next-iteration spawning spelled explicitly; both reduce
		// to the zero value's code path bit for bit (locked by
		// TestMultiSpecCores2Identity), so cached artifacts are shared.
		if c.Cores == 2 {
			c.Cores = 0
		}
		if c.SchedStride == 1 {
			c.SchedStride = 0
		}
		return c
	}
	d := DefaultConfig()
	c.ReplayFetchWidth = d.ReplayFetchWidth
	c.ReplayIssueWidth = d.ReplayIssueWidth
	c.RFCopyCycles = d.RFCopyCycles
	c.FastCommitCycles = d.FastCommitCycles
	c.SRBSize = d.SRBSize
	c.Recovery = d.Recovery
	c.RegCheck = d.RegCheck
	c.Window = d.Window
	c.Cores = 0
	c.Sched = multispec.SchedInOrder
	c.SchedStride = 0
	c.LiveIn = multispec.LiveInSVP
	return c
}

// BaselineConfig returns the single-core reference configuration: the same
// core and memory subsystem with thread-level speculation disabled.
func BaselineConfig() Config {
	c := DefaultConfig()
	c.SPT = false
	return c
}

// Breakdown decomposes main-pipeline time into the categories of Figure 9:
// execution (issue slots plus dependence waiting — the work an in-order
// pipeline spends computing), pipeline stalls (branch mispredictions and
// front-end redirects), and d-cache stalls (waiting on data-cache misses).
type Breakdown struct {
	Exec        int64 // execution cycles (issue + dependence chains)
	PipeStall   int64 // branch-misprediction / redirect stalls
	DcacheStall int64 // stalls waiting on data-cache misses

	// IssueSlots counts issued instructions before finalization; the engine
	// folds ceil(IssueSlots/width) into Exec when a run completes.
	IssueSlots int64
}

// Total returns the summed cycles of all categories.
func (b Breakdown) Total() int64 { return b.Exec + b.PipeStall + b.DcacheStall }

// LoopStats aggregates per-loop behaviour during a run.
type LoopStats struct {
	Key profiler.LoopKey

	Cycles     int64 // main-pipeline cycles attributed to the loop
	Iterations int64

	Windows     int64 // speculative windows opened by forks in this loop
	FastCommits int64 // windows committed without any violation
	Replays     int64 // windows committed through selective re-execution
	Kills       int64 // windows killed (loop exit / wrong path / empty)

	SpecInstrs     int64 // speculatively executed instructions
	MisspecInstrs  int64 // of those, misspeculated and re-executed
	CommittedInstr int64 // committed from the SRB without re-execution
}

// FastCommitRatio returns FastCommits / Windows.
func (ls *LoopStats) FastCommitRatio() float64 {
	if ls.Windows == 0 {
		return 0
	}
	return float64(ls.FastCommits) / float64(ls.Windows)
}

// MisspecRatio returns the fraction of speculatively executed instructions
// that were misspeculated and re-executed (Figure 8's right axis).
func (ls *LoopStats) MisspecRatio() float64 {
	if ls.SpecInstrs == 0 {
		return 0
	}
	return float64(ls.MisspecInstrs) / float64(ls.SpecInstrs)
}

// RunStats is the result of one simulation run.
type RunStats struct {
	Cycles    int64
	Instrs    int64
	Breakdown Breakdown

	BranchLookups     int64
	BranchMispredicts int64
	Cache             cache.Stats

	// SPT statistics (zero for baseline runs).
	Windows        int64
	FastCommits    int64
	Replays        int64
	Kills          int64
	NoForks        int64 // forks suppressed (spec busy / start not found)
	SpecInstrs     int64
	MisspecInstrs  int64
	CommittedInstr int64
	SpecBusyCycles int64 // cycles the speculative cores spent executing

	// Multi-core chain statistics (zero on the classic 2-core machine).
	ChainSpawns   int64 // threads spawned by an in-flight window (not by main)
	ChainSquashes int64 // successor threads squashed through the version chain

	PerLoop map[profiler.LoopKey]*LoopStats
}

// FastCommitRatio returns the overall fraction of windows that committed
// clean.
func (rs *RunStats) FastCommitRatio() float64 {
	if rs.Windows == 0 {
		return 0
	}
	return float64(rs.FastCommits) / float64(rs.Windows)
}

// SpecUtilization returns the fraction of the run during which the
// speculative core was executing a thread.
func (rs *RunStats) SpecUtilization() float64 {
	if rs.Cycles == 0 {
		return 0
	}
	u := float64(rs.SpecBusyCycles) / float64(rs.Cycles)
	if u > 1 {
		u = 1
	}
	return u
}

// MisspecRatio returns the overall misspeculated fraction of speculative
// instructions.
func (rs *RunStats) MisspecRatio() float64 {
	if rs.SpecInstrs == 0 {
		return 0
	}
	return float64(rs.MisspecInstrs) / float64(rs.SpecInstrs)
}
