package arch

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/profiler"
)

func load(t *testing.T, p *ir.Program) *interp.Program {
	t.Helper()
	lp, err := interp.Load(p)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return lp
}

func simulate(t *testing.T, p *ir.Program, cfg Config) *RunStats {
	t.Helper()
	st, err := NewMachine(load(t, p), cfg).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return st
}

// compileSPT runs the full SPT compiler with defaults.
func compileSPT(t *testing.T, p *ir.Program) *compiler.Result {
	t.Helper()
	res, err := compiler.Compile(p, compiler.DefaultOptions())
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return res
}

// emitChain appends a serial dependence chain of 2*depth operations
// starting from src into dst: realistic scalar code has little ILP, so one
// iteration occupies one in-order core regardless of width — which is what
// makes thread-level speculation worth having.
func emitChain(b *ir.FuncBuilder, dst, src ir.Reg, depth int) {
	b.MulI(dst, src, 3)
	for k := 0; k < depth; k++ {
		b.AddI(dst, dst, int64(k+1))
		b.MulI(dst, dst, 5)
	}
}

// buildParallelLoop: iterations are mutually independent (given the cheap
// induction update) but internally serial — the best case for SPT.
func buildParallelLoop(n int64, depth int) *ir.Program {
	b := ir.NewFuncBuilder("main", 0)
	i, s, c, z, v := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
	b.Block("entry")
	b.MovI(i, n)
	b.MovI(s, 0)
	b.MovI(z, 0)
	b.MovI(v, 0)
	b.Jmp("head")
	b.Block("head")
	b.ALU(ir.CmpGT, c, i, z)
	b.Br(c, "body", "exit")
	b.Block("body")
	emitChain(b, v, i, depth)
	b.ALU(ir.Xor, s, s, v)
	b.AddI(i, i, -1)
	b.Jmp("head")
	b.Block("exit")
	b.Ret(s)
	return ir.NewProgramBuilder("main").AddFunc(b.Done()).Done()
}

// buildSerialLoop: every iteration's chain seeds from what the previous one
// stored — no exploitable parallelism at all.
func buildSerialLoop(n int64, depth int) *ir.Program {
	b := ir.NewFuncBuilder("main", 0)
	i, c, z, g, v := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
	b.Block("entry")
	b.MovI(i, n)
	b.MovI(z, 0)
	b.Jmp("head")
	b.Block("head")
	b.ALU(ir.CmpGT, c, i, z)
	b.Br(c, "body", "exit")
	b.Block("body")
	b.GAddr(g, "cell")
	b.Load(v, g, 0)
	emitChain(b, v, v, depth)
	b.Store(g, 0, v)
	b.AddI(i, i, -1)
	b.Jmp("head")
	b.Block("exit")
	b.Ret(v)
	return ir.NewProgramBuilder("main").AddFunc(b.Done()).AddGlobal("cell", 1).Done()
}

// buildMostlyParallelLoop: a small serial seed through memory plus a large
// independent chain — selective re-execution commits the big valid part and
// re-executes only the seed-dependent tail.
func buildMostlyParallelLoop(n int64, depth int) *ir.Program {
	b := ir.NewFuncBuilder("main", 0)
	i, c, z, g, v, w := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
	b.Block("entry")
	b.MovI(i, n)
	b.MovI(z, 0)
	b.Jmp("head")
	b.Block("head")
	b.ALU(ir.CmpGT, c, i, z)
	b.Br(c, "body", "exit")
	b.Block("body")
	emitChain(b, w, i, depth) // big independent part
	b.GAddr(g, "cell")
	b.Load(v, g, 0) // carried memory dependence (small part)
	b.AddI(v, v, 1)
	b.Store(g, 0, v)
	b.AddI(i, i, -1)
	b.Jmp("head")
	b.Block("exit")
	b.Ret(w)
	return ir.NewProgramBuilder("main").AddFunc(b.Done()).AddGlobal("cell", 1).Done()
}

func TestBaselineSanity(t *testing.T) {
	p := buildParallelLoop(300, 10)
	st := simulate(t, p, BaselineConfig())
	if st.Cycles <= 0 || st.Instrs <= 0 {
		t.Fatal("empty simulation")
	}
	if st.Windows != 0 || st.SpecInstrs != 0 {
		t.Error("baseline run must not speculate")
	}
	if st.Breakdown.Total() <= 0 {
		t.Error("empty breakdown")
	}
	if st.Cycles < st.Instrs/6 {
		t.Errorf("cycles %d impossibly low for %d instrs", st.Cycles, st.Instrs)
	}
	ls := st.PerLoop[profiler.LoopKey{Func: "main", Header: "head"}]
	if ls == nil || ls.Cycles <= 0 {
		t.Fatalf("hot loop not attributed: %+v", ls)
	}
	if ls.Cycles > st.Cycles {
		t.Errorf("loop cycles %d exceed program cycles %d", ls.Cycles, st.Cycles)
	}
	if ls.Iterations != 300 {
		t.Errorf("loop iterations = %d, want 300", ls.Iterations)
	}
}

func TestSPTSpeedsUpParallelLoop(t *testing.T) {
	p := buildParallelLoop(400, 12)
	cres := compileSPT(t, p)
	base := simulate(t, p, BaselineConfig())
	spt := simulate(t, cres.Program, DefaultConfig())

	if spt.Windows == 0 {
		t.Fatal("no speculative windows opened")
	}
	if spt.FastCommitRatio() < 0.8 {
		t.Errorf("fast-commit ratio = %v, want high for a parallel loop", spt.FastCommitRatio())
	}
	speedup := float64(base.Cycles) / float64(spt.Cycles)
	if speedup < 1.3 {
		t.Errorf("program speedup = %.3f (base %d, spt %d), want > 1.3",
			speedup, base.Cycles, spt.Cycles)
	}
	if speedup > 2.1 {
		t.Errorf("program speedup = %.3f — beyond the 2-core bound", speedup)
	}
	if spt.MisspecRatio() > 0.05 {
		t.Errorf("misspec ratio = %v, want tiny", spt.MisspecRatio())
	}
}

func TestSPTSerialLoopNoWin(t *testing.T) {
	p := buildSerialLoop(400, 10)
	opts := compiler.DefaultOptions()
	opts.MinSpeedup = 0 // force transformation despite the dependence
	opts.UnrollFactor = 0
	cres, err := compiler.Compile(p, opts)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if len(cres.SelectedLoops()) == 0 {
		t.Skip("loop not transformable")
	}
	base := simulate(t, p, BaselineConfig())
	spt := simulate(t, cres.Program, DefaultConfig())
	if spt.Windows == 0 {
		t.Fatal("no windows")
	}
	if spt.MisspecInstrs == 0 {
		t.Error("no misspeculation on a fully serial loop")
	}
	slowdown := float64(spt.Cycles) / float64(base.Cycles)
	if slowdown > 2.0 {
		t.Errorf("serial loop slowdown %.2f — selective re-execution should bound the damage", slowdown)
	}
}

func TestSelectiveReplayBeatsSquash(t *testing.T) {
	// Mostly-parallel loop: most speculative results are correct even
	// though nearly every window has a violation — exactly the situation
	// the paper's SRX+FC design targets (Section 3, the parser example).
	p := buildMostlyParallelLoop(400, 14)
	opts := compiler.DefaultOptions()
	opts.MinSpeedup = 0
	opts.UnrollFactor = 0
	cres, err := compiler.Compile(p, opts)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if len(cres.SelectedLoops()) == 0 {
		t.Skip("loop not transformable")
	}
	srx := simulate(t, cres.Program, DefaultConfig())
	sq := DefaultConfig()
	sq.Recovery = RecoverySquash
	squash := simulate(t, cres.Program, sq)
	if srx.MisspecInstrs == 0 {
		t.Skip("no violations: recovery never exercised")
	}
	if srx.Cycles >= squash.Cycles {
		t.Errorf("SRX+FC (%d cycles) not better than squash (%d cycles)", srx.Cycles, squash.Cycles)
	}
	// SRX commits the valid majority.
	if srx.CommittedInstr <= srx.MisspecInstrs {
		t.Errorf("SRX committed %d <= re-executed %d; expected mostly-correct windows",
			srx.CommittedInstr, srx.MisspecInstrs)
	}
}

func TestForkSuppressedAtLoopExit(t *testing.T) {
	// With an odd iteration count the last fork has no next iteration to
	// speculate into: the engine suppresses it (the real machine would fork
	// and kill, wasting only speculative-core cycles).
	p := buildParallelLoop(51, 10)
	cres := compileSPT(t, p)
	spt := simulate(t, cres.Program, DefaultConfig())
	if spt.NoForks == 0 && spt.Kills == 0 {
		t.Errorf("expected a suppressed or killed fork at loop exit: %+v", spt)
	}
}

func TestSRBSizeLimitsSpeculation(t *testing.T) {
	p := buildParallelLoop(300, 12)
	cres := compileSPT(t, p)
	big := simulate(t, cres.Program, DefaultConfig())
	small := DefaultConfig()
	small.SRBSize = 8
	tiny := simulate(t, cres.Program, small)
	if tiny.SpecInstrs >= big.SpecInstrs {
		t.Errorf("SRB 8 committed %d spec instrs >= SRB 1024's %d",
			tiny.SpecInstrs, big.SpecInstrs)
	}
	if tiny.Cycles < big.Cycles {
		t.Errorf("smaller SRB should not be faster: %d < %d", tiny.Cycles, big.Cycles)
	}
}

// buildCheckerProgram hand-builds an already-transformed SPT loop in which
// the only unhoisted violation candidate is a register rewritten with the
// *same value* every iteration: value-based checking fast-commits, while
// update-based checking violates every window.
func buildCheckerProgram(n int64, depth int) *ir.Program {
	b := ir.NewFuncBuilder("main", 0)
	i, s, w, c, z, v := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
	ti, ts := b.NewReg(), b.NewReg() // temp_i, temp_s
	b.Block("entry")
	b.MovI(i, n)
	b.MovI(s, 0)
	b.MovI(w, 5)
	b.MovI(z, 0)
	b.Mov(ti, i)
	b.Mov(ts, s)
	b.Jmp("head")
	b.Block("head")
	b.ALU(ir.CmpGT, c, i, z)
	b.Br(c, "start", "killblk")
	b.Block("start") // start-point: binds, pre-fork, fork
	b.Mov(i, ti)
	b.Mov(s, ts)
	b.AddI(ti, i, -1)       // temp_i = i - 1
	b.ALU(ir.Add, ts, s, w) // temp_s = s + w (reads w live-in pre-fork)
	b.SptFork("start")
	emitChain(b, v, i, depth)
	b.ALU(ir.Add, s, s, w) // original accumulator update
	b.MovI(w, 5)           // post-fork same-value rewrite of w
	b.AddI(i, i, -1)
	b.Jmp("head")
	b.Block("killblk")
	b.SptKill()
	b.Jmp("exit")
	b.Block("exit")
	b.Ret(s)
	return ir.NewProgramBuilder("main").AddFunc(b.Done()).Done()
}

func TestValueVsUpdateRegChecking(t *testing.T) {
	p := buildCheckerProgram(300, 10)
	if err := p.Validate(); err != nil {
		t.Fatalf("hand-built program invalid: %v", err)
	}
	// Sequential sanity first.
	lp := load(t, p)
	m := interp.New(lp)
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 300*5 {
		t.Fatalf("hand-built loop computes %d, want 1500", res.Ret)
	}
	val := simulate(t, p, DefaultConfig())
	upd := DefaultConfig()
	upd.RegCheck = RegCheckUpdate
	updSt := simulate(t, p, upd)
	if val.FastCommitRatio() < 0.9 {
		t.Errorf("value-based fast-commit ratio = %.2f, want ~1", val.FastCommitRatio())
	}
	if updSt.FastCommitRatio() > 0.1 {
		t.Errorf("update-based fast-commit ratio = %.2f, want ~0", updSt.FastCommitRatio())
	}
	if val.Cycles > updSt.Cycles {
		t.Errorf("value-based (%d cycles) slower than update-based (%d)", val.Cycles, updSt.Cycles)
	}
}

func TestSimulationDeterminism(t *testing.T) {
	p := buildParallelLoop(200, 8)
	cres := compileSPT(t, p)
	a := simulate(t, cres.Program, DefaultConfig())
	b := simulate(t, cres.Program, DefaultConfig())
	if a.Cycles != b.Cycles || a.SpecInstrs != b.SpecInstrs || a.FastCommits != b.FastCommits {
		t.Errorf("simulation not deterministic: %+v vs %+v", a, b)
	}
}

func TestPerLoopStatsInSPTRun(t *testing.T) {
	p := buildParallelLoop(300, 10)
	cres := compileSPT(t, p)
	spt := simulate(t, cres.Program, DefaultConfig())
	ls := spt.PerLoop[profiler.LoopKey{Func: "main", Header: "head"}]
	if ls == nil {
		for k := range spt.PerLoop {
			t.Logf("have loop %v", k)
		}
		t.Fatal("transformed loop not attributed under its normalized key")
	}
	if ls.Windows == 0 || ls.FastCommits == 0 {
		t.Errorf("loop window stats empty: %+v", ls)
	}
	if ls.SpecInstrs == 0 {
		t.Error("no spec instrs attributed to the loop")
	}
	if r := ls.FastCommitRatio(); r < 0 || r > 1 {
		t.Errorf("fast-commit ratio %v out of range", r)
	}
	if r := ls.MisspecRatio(); r < 0 || r > 1 {
		t.Errorf("misspec ratio %v out of range", r)
	}
}

func TestBaselineVsSPTLoopCycles(t *testing.T) {
	p := buildParallelLoop(400, 12)
	cres := compileSPT(t, p)
	base := simulate(t, p, BaselineConfig())
	spt := simulate(t, cres.Program, DefaultConfig())
	key := profiler.LoopKey{Func: "main", Header: "head"}
	bl, sl := base.PerLoop[key], spt.PerLoop[key]
	if bl == nil || sl == nil {
		t.Fatal("missing per-loop stats")
	}
	if sl.Cycles >= bl.Cycles {
		t.Errorf("SPT loop cycles %d >= baseline %d", sl.Cycles, bl.Cycles)
	}
	speedup := float64(bl.Cycles) / float64(sl.Cycles)
	if speedup < 1.3 || speedup > 2.1 {
		t.Errorf("loop speedup %.2f outside (1.3, 2.1)", speedup)
	}
}

func TestCacheEffectsVisible(t *testing.T) {
	// A loop streaming over a large array must show d-cache stalls.
	b := ir.NewFuncBuilder("main", 0)
	i, c, z, g, v, s := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
	b.Block("entry")
	b.MovI(i, 20000)
	b.MovI(z, 0)
	b.MovI(s, 0)
	b.Jmp("head")
	b.Block("head")
	b.ALU(ir.CmpGT, c, i, z)
	b.Br(c, "body", "exit")
	b.Block("body")
	b.GAddr(g, "arr")
	b.ALU(ir.Add, g, g, i)
	b.Load(v, g, 0)
	b.ALU(ir.Add, s, s, v) // consume the load: exposes the miss latency
	b.AddI(i, i, -1)
	b.Jmp("head")
	b.Block("exit")
	b.Ret(s)
	p := ir.NewProgramBuilder("main").AddFunc(b.Done()).AddGlobal("arr", 20001).Done()
	st := simulate(t, p, BaselineConfig())
	if st.Breakdown.DcacheStall == 0 {
		t.Error("streaming loop shows no d-cache stalls")
	}
	if st.Cache.L1D.Misses == 0 {
		t.Error("no L1D misses on a 160KB stream")
	}
}

func TestBranchMispredictsVisible(t *testing.T) {
	// Data-dependent unpredictable branches (xorshift PRNG parity).
	b := ir.NewFuncBuilder("main", 0)
	i, c, z, r, bit, s, one := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
	t13, t7, t17 := b.NewReg(), b.NewReg(), b.NewReg()
	b.Block("entry")
	b.MovI(i, 4000)
	b.MovI(z, 0)
	b.MovI(s, 0)
	b.MovI(one, 1)
	b.MovI(r, 88172645463325252)
	b.Jmp("head")
	b.Block("head")
	b.ALU(ir.CmpGT, c, i, z)
	b.Br(c, "body", "exit")
	b.Block("body")
	b.MovI(t13, 13)
	b.ALU(ir.Shl, t13, r, t13)
	b.ALU(ir.Xor, r, r, t13)
	b.MovI(t7, 7)
	b.ALU(ir.Shr, t7, r, t7)
	b.ALU(ir.Xor, r, r, t7)
	b.MovI(t17, 17)
	b.ALU(ir.Shl, t17, r, t17)
	b.ALU(ir.Xor, r, r, t17)
	b.ALU(ir.And, bit, r, one)
	b.Br(bit, "odd", "even")
	b.Block("odd")
	b.AddI(s, s, 3)
	b.Jmp("join")
	b.Block("even")
	b.AddI(s, s, 1)
	b.Jmp("join")
	b.Block("join")
	b.AddI(i, i, -1)
	b.Jmp("head")
	b.Block("exit")
	b.Ret(s)
	p := ir.NewProgramBuilder("main").AddFunc(b.Done()).Done()
	st := simulate(t, p, BaselineConfig())
	if st.BranchMispredicts == 0 {
		t.Error("random branch never mispredicted")
	}
	rate := float64(st.BranchMispredicts) / float64(st.BranchLookups)
	if rate < 0.05 {
		t.Errorf("mispredict rate %.3f suspiciously low for random branches", rate)
	}
}

func TestNormalizeHeader(t *testing.T) {
	if NormalizeHeader("spt.start.head") != "head" {
		t.Error("prefix not stripped")
	}
	if NormalizeHeader("head") != "head" {
		t.Error("plain label mangled")
	}
}

func TestNoForksMeansBaselineTiming(t *testing.T) {
	// A program without spt_fork must time identically under the SPT and
	// baseline configurations (the speculative core never wakes up).
	p := buildParallelLoop(150, 8)
	a := simulate(t, p, BaselineConfig())
	b := simulate(t, p, DefaultConfig())
	if a.Cycles != b.Cycles {
		t.Errorf("fork-free program timed differently: %d vs %d", a.Cycles, b.Cycles)
	}
	if b.Windows != 0 {
		t.Errorf("windows on a fork-free program: %d", b.Windows)
	}
}

func TestIPCBounds(t *testing.T) {
	// In-order width-6 core: IPC must stay within (0, 6].
	for _, depth := range []int{0, 4, 16} {
		p := buildParallelLoop(200, depth)
		st := simulate(t, p, BaselineConfig())
		ipc := float64(st.Instrs) / float64(st.Cycles)
		if ipc <= 0 || ipc > 6.0 {
			t.Errorf("depth %d: IPC %.2f outside (0, 6]", depth, ipc)
		}
	}
}

func TestCacheStatsPlausible(t *testing.T) {
	p := buildParallelLoop(300, 10)
	st := simulate(t, p, BaselineConfig())
	// Instruction fetches hit the L1I for a tiny loop almost always.
	tot := st.Cache.L1I.Hits + st.Cache.L1I.Misses
	if tot == 0 {
		t.Fatal("no instruction fetches recorded")
	}
	if rate := float64(st.Cache.L1I.Hits) / float64(tot); rate < 0.99 {
		t.Errorf("L1I hit rate %.3f for a hot loop, want ~1", rate)
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bads := []func(*Config){
		func(c *Config) { c.IssueWidth = 0 },
		func(c *Config) { c.ReplayIssueWidth = -1 },
		func(c *Config) { c.SRBSize = 0 },
		func(c *Config) { c.Window = c.SRBSize },
		func(c *Config) { c.BranchPenalty = -1 },
		func(c *Config) { c.BPredEntries = 1 },
	}
	for i, mut := range bads {
		c := DefaultConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	// NewMachine surfaces the validation error at Run.
	p := buildParallelLoop(10, 2)
	lp := load(t, p)
	c := DefaultConfig()
	c.SRBSize = 0
	if _, err := NewMachine(lp, c).Run(); err == nil {
		t.Error("invalid config did not fail Run")
	}
}

func TestStepLimitStopsSimulation(t *testing.T) {
	p := buildParallelLoop(100000, 4)
	cfg := BaselineConfig()
	cfg.StepLimit = 5000
	lp := load(t, p)
	if _, err := NewMachine(lp, cfg).Run(); err == nil {
		t.Error("step limit not enforced")
	}
}

func TestSpecUtilization(t *testing.T) {
	p := buildParallelLoop(400, 12)
	cres := compileSPT(t, p)
	st := simulate(t, cres.Program, DefaultConfig())
	u := st.SpecUtilization()
	if u <= 0.2 || u > 1 {
		t.Errorf("speculative core utilization = %.2f, want substantial on a hot parallel loop", u)
	}
	base := simulate(t, p, BaselineConfig())
	if base.SpecUtilization() != 0 {
		t.Error("baseline reports speculative utilization")
	}
}
