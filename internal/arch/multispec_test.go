package arch

// Tests for the N-core chained speculation machine (internal/multispec
// wired through Config.Cores / Config.Sched): the explicit 2-core
// configuration must be bit-identical to the classic zero-value machine,
// N-core runs must be deterministic and replay-stable, squashes must stay
// isolated to the offending suffix of the version chain, and the broadcast
// replay path must carry core-count variants unchanged.

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/multispec"
)

// cores2Corners returns configuration corners whose explicit spelling
// (Cores=2, stride=1, any policy) must reduce to the classic zero-value
// machine bit for bit — the contract Canonical() relies on to share cached
// artifacts between the two spellings.
func cores2Corners() map[string]Config {
	mk := func(mut func(*Config)) Config {
		c := DefaultConfig()
		mut(&c)
		return c
	}
	return map[string]Config{
		"default":  mk(func(c *Config) {}),
		"squash":   mk(func(c *Config) { c.Recovery = RecoverySquash }),
		"update":   mk(func(c *Config) { c.RegCheck = RegCheckUpdate }),
		"srb=16":   mk(func(c *Config) { c.SRBSize = 16 }),
		"eager":    mk(func(c *Config) { c.Sched = multispec.SchedEager }),
		"stride=1": mk(func(c *Config) { c.Sched = multispec.SchedStride; c.SchedStride = 1 }),
		"slice":    mk(func(c *Config) { c.LiveIn = multispec.LiveInSlice }),
	}
}

// TestMultiSpecCores2Identity locks in that Cores=2 is the classic machine
// spelled explicitly: with a single speculative core the chain never holds
// two threads, so the spawn-in-walk, chain-SSB and inherited-violation
// paths are structurally unreachable and the stats must match the
// zero-value configuration exactly. Canonical() normalizes Cores 2 -> 0 on
// the strength of this test.
func TestMultiSpecCores2Identity(t *testing.T) {
	for _, pn := range []string{"parallel", "mostly-parallel"} {
		p := buildParallelLoop(200, 10)
		if pn == "mostly-parallel" {
			p = buildMostlyParallelLoop(200, 10)
		}
		lp := load(t, compileSPT(t, p).Program)
		for name, cfg := range cores2Corners() {
			t.Run(pn+"/"+name, func(t *testing.T) {
				want, err := NewMachine(lp, cfg).Run()
				if err != nil {
					t.Fatalf("classic run: %v", err)
				}
				explicit := cfg
				explicit.Cores = 2
				got, err := NewMachine(lp, explicit).Run()
				if err != nil {
					t.Fatalf("Cores=2 run: %v", err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("Cores=2 diverges from the classic machine:\n got %+v\nwant %+v", got, want)
				}
				if got.ChainSpawns != 0 || got.ChainSquashes != 0 {
					t.Fatalf("chain engaged on the 2-core machine: spawns=%d squashes=%d",
						got.ChainSpawns, got.ChainSquashes)
				}
			})
		}
	}
}

// nCoreVariants is the N-core configuration matrix the determinism and
// replay contracts are checked against.
func nCoreVariants() map[string]Config {
	vs := map[string]Config{}
	for _, cores := range []int{4, 8} {
		for _, pol := range []multispec.PolicyKind{multispec.SchedInOrder, multispec.SchedEager} {
			cfg := DefaultConfig()
			cfg.Cores = cores
			cfg.Sched = pol
			vs[fmt.Sprintf("cores=%d/%s", cores, pol)] = cfg
		}
	}
	stride := DefaultConfig()
	stride.Cores = 4
	stride.Sched = multispec.SchedStride
	stride.SchedStride = 2
	vs["cores=4/stride=2"] = stride
	slice := DefaultConfig()
	slice.Cores = 4
	slice.LiveIn = multispec.LiveInSlice
	vs["cores=4/slice"] = slice
	squash := DefaultConfig()
	squash.Cores = 8
	squash.Recovery = RecoverySquash
	vs["cores=8/squash"] = squash
	return vs
}

// TestMultiSpecDeterminism runs every N-core variant twice fused and once
// through the recorded-trace replay: all three must agree bit for bit —
// the commit-arbitration analogue of TestReplayDeterminismAcrossVariants.
func TestMultiSpecDeterminism(t *testing.T) {
	lp := compileParallelLoop(t, 300, 10)
	rec, err := RecordTrace(context.Background(), lp, 0)
	if err != nil {
		t.Fatalf("RecordTrace: %v", err)
	}
	for name, cfg := range nCoreVariants() {
		t.Run(name, func(t *testing.T) {
			first, err := NewMachine(lp, cfg).Run()
			if err != nil {
				t.Fatalf("first run: %v", err)
			}
			second, err := NewMachine(lp, cfg).Run()
			if err != nil {
				t.Fatalf("second run: %v", err)
			}
			if !reflect.DeepEqual(first, second) {
				t.Fatalf("two fused runs diverge:\n got %+v\nwant %+v", second, first)
			}
			replayed, err := NewMachine(lp, cfg).RunRecorded(rec)
			if err != nil {
				t.Fatalf("RunRecorded: %v", err)
			}
			if !reflect.DeepEqual(replayed, first) {
				t.Fatalf("replay diverges from fused run:\n got %+v\nwant %+v", replayed, first)
			}
		})
	}
}

// TestMultiSpecChainEngages checks the extra cores actually do something on
// a speculation-friendly loop: committing windows spawn successors early,
// and the added overlap never makes the machine slower than the classic
// two-core configuration.
func TestMultiSpecChainEngages(t *testing.T) {
	lp := load(t, compileSPT(t, buildParallelLoop(400, 14)).Program)
	classic, err := NewMachine(lp, DefaultConfig()).Run()
	if err != nil {
		t.Fatal(err)
	}
	quad := DefaultConfig()
	quad.Cores = 4
	st, err := NewMachine(lp, quad).Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.ChainSpawns == 0 {
		t.Fatal("4-core run spawned no chained threads on a parallel loop")
	}
	if st.Cycles > classic.Cycles {
		t.Fatalf("4 cores slower than 2: %d > %d cycles", st.Cycles, classic.Cycles)
	}
	if st.Windows <= classic.Windows/2 {
		t.Fatalf("4-core run opened suspiciously few windows: %d vs %d classic", st.Windows, classic.Windows)
	}
}

// TestMultiSpecSquashIsolation drives a loop with a carried memory
// dependence (every window misspeculates its seed) at 8 cores: squash
// recovery must retire chained successors through the version chain, yet
// the run keeps committing windows — a violation squashes the offender and
// its successors, never the whole machine.
func TestMultiSpecSquashIsolation(t *testing.T) {
	lp := load(t, compileSPT(t, buildMostlyParallelLoop(300, 10)).Program)
	cfg := DefaultConfig()
	cfg.Cores = 8
	cfg.Recovery = RecoverySquash
	st, err := NewMachine(lp, cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.ChainSpawns == 0 {
		t.Fatal("no chained spawns; squash isolation unexercised")
	}
	if st.ChainSquashes == 0 {
		t.Fatal("squash recovery retired no successors through the chain")
	}
	if st.ChainSquashes >= st.Windows {
		t.Fatalf("every window died by cascade (%d of %d): predecessors must survive",
			st.ChainSquashes, st.Windows)
	}
	if st.Windows == 0 || st.FastCommits+st.Replays == 0 {
		t.Fatalf("machine stopped committing: %+v", st)
	}

	// Eager restart squashes the remaining chain on any violation but the
	// machine must still make progress and stay deterministic.
	eager := DefaultConfig()
	eager.Cores = 8
	eager.Sched = multispec.SchedEager
	e1, err := NewMachine(lp, eager).Run()
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewMachine(lp, eager).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(e1, e2) {
		t.Fatal("eager-restart runs diverge")
	}
	if e1.Replays == 0 || e1.ChainSquashes == 0 {
		t.Fatalf("eager policy never fired: %+v", e1)
	}
}

// TestRunRecordedMultiCores sends an N-core bank through the broadcast
// replay path: every variant must return exactly the stats of its own solo
// replay. Run under -race this also exercises the per-engine chain state
// for sharing bugs (the multispec outcome counters are process-global and
// atomic; everything else must be engine-private).
func TestRunRecordedMultiCores(t *testing.T) {
	lp := compileParallelLoop(t, 300, 10)
	rec, err := RecordTrace(context.Background(), lp, 0)
	if err != nil {
		t.Fatal(err)
	}
	var cfgs []Config
	var names []string
	for name, cfg := range nCoreVariants() {
		cfgs = append(cfgs, cfg)
		names = append(names, name)
	}
	cfgs = append(cfgs, DefaultConfig())
	names = append(names, "classic")
	stats, errs := RunRecordedMulti(context.Background(), lp, rec, cfgs)
	for i, cfg := range cfgs {
		if errs[i] != nil {
			t.Fatalf("%s: %v", names[i], errs[i])
		}
		want, err := NewMachine(lp, cfg).RunRecorded(rec)
		if err != nil {
			t.Fatalf("%s solo replay: %v", names[i], err)
		}
		if !reflect.DeepEqual(stats[i], want) {
			t.Fatalf("%s diverges from its solo replay:\n got %+v\nwant %+v", names[i], stats[i], want)
		}
	}
}
