package arch

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/multispec"
	"repro/internal/trace"
)

// ErrCycleLimit is returned when a simulation exceeds Config.CycleLimit.
var ErrCycleLimit = errors.New("arch: cycle budget exceeded")

// ErrCorruptTrace is returned when the engine receives a trace event whose
// coordinates do not resolve to a loaded instruction. The engine stops
// simulating instead of indexing out of bounds.
var ErrCorruptTrace = errors.New("arch: corrupt trace event")

// Machine simulates one program on the SPT processor (or on a single core
// when cfg.SPT is false).
type Machine struct {
	lp  *interp.Program
	cfg Config
	mw  func(trace.Handler) trace.Handler
}

// NewMachine prepares a simulation of the loaded program.
func NewMachine(lp *interp.Program, cfg Config) *Machine {
	return &Machine{lp: lp, cfg: cfg}
}

// SetTraceMiddleware interposes mw between the interpreter and the SPT
// engine on the next Run. It exists for fault injection (dropping or
// corrupting events) and observation; nil restores the direct path.
func (m *Machine) SetTraceMiddleware(mw func(trace.Handler) trace.Handler) { m.mw = mw }

// Run executes the program under the sequential interpreter, feeds the
// trace through the SPT engine, and returns the simulation statistics.
func (m *Machine) Run() (*RunStats, error) { return m.RunContext(context.Background()) }

// RunContext is Run with cancellation and deadline support: ctx is checked
// periodically by the interpreter (every ~1024 steps), and the engine's
// cycle budget (Config.CycleLimit) cancels the run from the inside. The
// returned error distinguishes budget exhaustion (ErrCycleLimit,
// interp.ErrStepLimit, context deadline) from structural failures.
func (m *Machine) RunContext(ctx context.Context) (*RunStats, error) {
	if err := m.cfg.Validate(); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	e := newEngine(m.lp, m.cfg)
	defer e.releaseBuf()
	e.cancel = cancel
	im := interp.New(m.lp)
	if m.cfg.StepLimit > 0 {
		im.SetStepLimit(m.cfg.StepLimit)
	}
	im.SetContext(ctx)
	var h trace.Handler = e
	if m.mw != nil {
		h = m.mw(e)
	}
	im.SetHandler(h)
	res, err := im.Run()
	if e.failure != nil {
		// The engine aborted the run from the inside (cycle budget or a
		// corrupt event); its cause outranks the interpreter's view of the
		// resulting cancellation.
		return nil, e.failure
	}
	if err != nil {
		return nil, err
	}
	e.finish()
	if e.failure != nil {
		// Short traces fit entirely inside the lookahead window, so budget
		// exhaustion can first surface while draining.
		return nil, e.failure
	}
	e.stats.Instrs = res.Steps
	return e.stats, nil
}

// storeRec is one main-thread post-fork store for the speculative load
// address buffer check.
type storeRec struct {
	addr int64
	time int64
}

// specThread is the state of one in-flight speculative thread. Thread
// records are pooled per engine: the slices below keep their backing arrays
// across windows, so arming a thread in steady state allocates nothing. An
// empty (length-0) snapshot is equivalent to a missing one — every consumer
// guards by length.
type specThread struct {
	forkPos  int64 // absolute event index of the spt_fork
	forkTime int64 // cycle the speculative thread may start
	frame    int64 // frame of the forking loop
	fn       int32
	startID  int32  // first instruction id of the fork target block
	startPos int64  // absolute index of the start-point arrival; -1 until seen
	chainID  uint64 // version in the inter-thread chain (commit order)

	snapshot []int64 // fork-time register file of the loop frame
	mainRegs []int64 // architectural view of the loop frame registers since fork
	written  []bool  // registers written after the fork
	// inherit marks live-ins already wrong at spawn time: a thread spawned
	// by an in-flight window copies its register file from speculative
	// state, so a misspeculated last writer (or an inherited violation of
	// the spawner) taints the copy before the thread even starts.
	inherit []bool
	stores  []storeRec

	plan *multispec.SlicePlan // live-in pre-computation coverage (slice mode)
	loop *LoopStats           // loop the fork belongs to
}

// engine is the trace-driven SPT simulation core. It buffers a sliding
// window of events so the speculative thread can execute "future" trace
// entries while the main thread is still behind, exactly like the paper's
// two-pipeline trace simulator.
type engine struct {
	lp    *interp.Program
	cfg   Config
	hier  *cache.Hierarchy
	bp    *bpred.GAg
	main  *pipeline
	stats *RunStats

	buf  []trace.Event
	base int64 // absolute index of buf[0]
	pos  int64 // absolute index of the next main-thread event
	done bool

	// In-flight speculative threads in spawn (= commit) order. On the
	// classic 2-core machine at most one is armed; with Cores=N up to N-1
	// chain up, each covering a later iteration range.
	specs []*specThread
	chain multispec.Chain     // commit-arbitration version chain
	sched multispec.Scheduler // spawn policy (cores, stride, eager restart)
	// coreFree holds one entry per idle speculative core: the cycle the
	// core last became free. Arming a thread pops the front (FIFO — cores
	// free in commit order); retiring a window pushes. A spawn's fork time
	// is clamped to its core's free time, which is what makes Cores=4
	// behave differently from Cores=8 under deep speculation.
	coreFree []int64
	planner  *multispec.Planner // live-in slice planner (slice mode only)
	// chainSSB carries committed windows' speculative stores to their
	// in-flight successors: addr -> whether the last store misspeculated.
	// Only populated while a committed window leaves successors behind, so
	// the classic one-thread machine never sees it.
	chainSSB map[int64]bool

	tracker *loopTracker
	curLoop *LoopStats
	lastCm  int64

	cancel  context.CancelFunc
	failure error // budget exhaustion or corrupt input; simulation stops

	// frame linkage for return-value readiness and reg tracking. The
	// last-touched entry is memoized: consecutive events overwhelmingly
	// share a frame, so most lookups skip the map entirely.
	frameInfo map[int64]*engFrame
	frameTop  []int64 // call stack of frame ids (main thread view)
	lastFrame int64
	lastFI    *engFrame

	// Scratch state reused across events and speculation windows so the
	// simulator's steady state allocates nothing (locked in by
	// BenchmarkSpeculationEpisodes / TestSpeculationSteadyStateAllocs).
	specFree        []*specThread // pooled thread records (commit grabs the next before releasing the old, so two circulate)
	specPipe        *pipeline   // persistent speculative-core pipeline
	specBd          Breakdown   // sink for the speculative pipeline's accounting
	srbScratch      []srbEntry  // SRB entries, preallocated to cfg.SRBSize
	reexecScratch   []int       // replayed entry indices
	violatedScratch []bool      // violated live-in registers
	regsScratch     []int64     // commit-time register tracking (absorb)
	lastWriter      map[specWKey]int
	lwFrame         []int32 // loop-frame register writers (dense fast path; -1 = none)
	ssb             map[int64]int
	specFrameParent map[int64]int64
	specFrameRet    map[int64]ir.Reg
	framePool       []*engFrame // recycled frame-linkage records
	snapPool        [][]int64   // recycled fork-snapshot buffers
}

type engFrame struct {
	fn     int32
	parent int64
	retDst ir.Reg
	lastID int32
}

func newEngine(lp *interp.Program, cfg Config) *engine {
	st := &RunStats{}
	e := &engine{
		lp:        lp,
		cfg:       cfg,
		hier:      cache.New(cfg.Cache),
		bp:        bpred.New(cfg.BPredEntries),
		stats:     st,
		frameInfo: map[int64]*engFrame{},
		tracker:   newLoopTracker(lp),
		buf:       grabBuf(),
	}
	e.main = newPipeline(cfg.IssueWidth, cfg.BranchPenalty, &st.Breakdown)
	e.specPipe = newPipeline(cfg.IssueWidth, cfg.BranchPenalty, &e.specBd)
	e.sched = multispec.NewScheduler(cfg.Sched, cfg.EffCores(), cfg.SchedStride)
	e.coreFree = make([]int64, e.sched.SpecCores())
	e.chainSSB = map[int64]bool{}
	if cfg.SPT && cfg.LiveIn == multispec.LiveInSlice {
		e.planner = multispec.NewPlanner(lp.IR)
	}
	e.srbScratch = make([]srbEntry, 0, cfg.SRBSize)
	e.lastWriter = map[specWKey]int{}
	e.ssb = map[int64]int{}
	e.specFrameParent = map[int64]int64{}
	e.specFrameRet = map[int64]ir.Reg{}
	st.PerLoop = e.tracker.perLoop
	return e
}

// bufPool recycles event-window backing arrays across engines. A window
// grows to a few megabytes on long traces, and a sweep builds one engine per
// variant — without pooling every engine re-grows (and the runtime re-zeroes)
// that array from scratch, which dominates the allocation profile.
var bufPool sync.Pool

// grabBuf returns a recycled event window (length 0) or nil when the pool is
// empty, in which case append grows a fresh one.
func grabBuf() []trace.Event {
	if v := bufPool.Get(); v != nil {
		return (*v.(*[]trace.Event))[:0]
	}
	return nil
}

// releaseBuf returns the engine's event window to the pool once the run is
// over. The full capacity is cleared first: compact leaves stale events (and
// their snapshot aliases) beyond len, and a pooled window must not pin them.
func (e *engine) releaseBuf() {
	if cap(e.buf) == 0 {
		e.buf = nil
		return
	}
	full := e.buf[:cap(e.buf)]
	clear(full)
	b := full[:0]
	bufPool.Put(&b)
	e.buf = nil
}

// grabSpec returns a pooled speculative-thread record; its scratch slices
// keep their capacity across windows.
func (e *engine) grabSpec() *specThread {
	if n := len(e.specFree); n > 0 {
		s := e.specFree[n-1]
		e.specFree = e.specFree[:n-1]
		return s
	}
	return &specThread{}
}

// releaseSpec returns a finished thread record to the pool.
func (e *engine) releaseSpec(s *specThread) {
	s.loop = nil
	s.plan = nil
	e.specFree = append(e.specFree, s)
}

// freeCore returns a speculative core to the idle pool at cycle t.
func (e *engine) freeCore(t int64) {
	e.coreFree = append(e.coreFree, t)
}

// claimCore pops the longest-idle speculative core, returning the cycle it
// became free. Callers check len(e.coreFree) > 0 first.
func (e *engine) claimCore() int64 {
	t := e.coreFree[0]
	e.coreFree = append(e.coreFree[:0], e.coreFree[1:]...)
	return t
}

// fail aborts the simulation with the given cause: further events are
// ignored and the producing interpreter is cancelled.
func (e *engine) fail(err error) {
	if e.failure == nil {
		e.failure = err
		if e.cancel != nil {
			e.cancel()
		}
	}
}

// Quit implements trace.Quitter: a broadcast pass sheds the engine once it
// has aborted (its Event is a no-op from then on).
func (e *engine) Quit() bool { return e.failure != nil }

// frameOf returns the linkage record of frame, consulting the one-entry
// memo before the map.
func (e *engine) frameOf(frame int64) *engFrame {
	if e.lastFI != nil && e.lastFrame == frame {
		return e.lastFI
	}
	fi := e.frameInfo[frame]
	if fi != nil {
		e.lastFrame, e.lastFI = frame, fi
	}
	return fi
}

// Event implements trace.Handler: buffer the event and simulate as far as
// the lookahead window allows. Events whose coordinates do not resolve to a
// loaded instruction abort the run with ErrCorruptTrace instead of
// corrupting engine state.
func (e *engine) Event(ev *trace.Event) {
	if e.failure != nil {
		return
	}
	if ev.Func < 0 || int(ev.Func) >= e.lp.NumFuncs() ||
		ev.ID < 0 || int(ev.ID) >= e.lp.FuncInstrCount(ev.Func) {
		e.fail(fmt.Errorf("%w: func=%d id=%d", ErrCorruptTrace, ev.Func, ev.ID))
		return
	}
	e.buf = append(e.buf, *ev)
	if ev.Snapshot != nil {
		// The producer reuses its snapshot buffer, so the buffered event
		// needs its own copy; recycled buffers come back via compact.
		var buf []int64
		if n := len(e.snapPool); n > 0 {
			buf = e.snapPool[n-1]
			e.snapPool = e.snapPool[:n-1]
		}
		e.buf[len(e.buf)-1].Snapshot = append(buf[:0], ev.Snapshot...)
	}
	lookahead := int64(e.cfg.Window)
	end := e.base + int64(len(e.buf)) // step never appends or compacts
	for e.failure == nil && end-e.pos > lookahead && e.pos < end {
		e.step()
	}
	if len(e.buf) > 4096 { // compact cannot fire below this; skip the call
		e.compact()
	}
}

// finish drains the remaining events after the trace ends.
func (e *engine) finish() {
	e.done = true
	for e.failure == nil && e.pos < e.base+int64(len(e.buf)) {
		e.step()
	}
	e.stats.Cycles = e.main.now()
	e.stats.BranchLookups = e.bp.Lookups
	e.stats.BranchMispredicts = e.bp.Mispredicts
	e.stats.Cache = e.hier.Stats()
	// Fold issue slots into execution cycles.
	e.stats.Breakdown.Exec += (e.stats.Breakdown.IssueSlots + int64(e.cfg.IssueWidth) - 1) / int64(e.cfg.IssueWidth)
	e.stats.Breakdown.IssueSlots = 0
}

// compact drops buffered events no longer reachable by any consumer.
func (e *engine) compact() {
	low := e.pos
	if len(e.specs) > 0 && e.specs[0].forkPos < low {
		low = e.specs[0].forkPos // oldest thread: smallest fork position
	}
	// Compact only once the consumed prefix dominates the buffer: every
	// copied tail element is then paid for by at least one consumed event,
	// so the shift cost amortizes to O(1) per event instead of re-copying a
	// long live window every 4096 events.
	if n := low - e.base; n > 4096 && n > int64(len(e.buf))/2 {
		// Reclaim the dropped events' snapshot buffers: nothing aliases them
		// (speculative threads copy fork snapshots into their own arrays).
		for i := range e.buf[:n] {
			if s := e.buf[i].Snapshot; s != nil {
				e.snapPool = append(e.snapPool, s)
			}
		}
		e.buf = append(e.buf[:0], e.buf[n:]...)
		e.base += n
	}
}

func (e *engine) at(abs int64) *trace.Event {
	return &e.buf[abs-e.base]
}

func (e *engine) end() int64 { return e.base + int64(len(e.buf)) }

// step processes one main-thread event.
func (e *engine) step() {
	if e.cfg.CycleLimit > 0 && e.main.now() >= e.cfg.CycleLimit {
		e.fail(fmt.Errorf("%w: %d cycles at limit %d", ErrCycleLimit, e.main.now(), e.cfg.CycleLimit))
		return
	}
	// Arrival at the oldest speculative thread's start-point?
	if len(e.specs) > 0 && e.specs[0].startPos == e.pos {
		e.commitWindow()
		// commitWindow advanced e.pos past the committed region; continue
		// from there on the next step.
		return
	}
	ev := e.at(e.pos)
	in := e.lp.InstrAt(ev.Func, ev.ID)

	e.bookkeep(ev, in, e.pos)
	_, complete := e.main.exec(ev, in, e.hier, e.bp, true)
	e.attributeCycles()

	switch in.Op {
	case ir.SptFork:
		if e.cfg.SPT {
			e.handleFork(ev, complete)
		}
	case ir.SptKill:
		// Loop exit retires the whole chain: every in-flight thread ran
		// down a path the loop never takes.
		for _, s := range e.specs {
			e.stats.Kills++
			if s.loop != nil {
				s.loop.Kills++
			}
			multispec.Global.SquashLoopExit.Add(1)
			e.freeCore(e.main.now())
			e.releaseSpec(s)
		}
		e.specs = e.specs[:0]
		e.chain.Reset()
		if len(e.chainSSB) > 0 {
			clear(e.chainSSB)
		}
	case ir.Ret:
		// Propagate return value readiness to the caller's pipeline view.
		fi := e.frameInfo[ev.Frame]
		if fi != nil && fi.parent >= 0 && fi.retDst != ir.NoReg {
			e.main.setReady(fi.parent, fi.retDst, complete, false)
		}
		e.main.dropFrame(ev.Frame)
	}
	e.pos++
}

// bookkeep maintains frame linkage, loop tracking and (when speculative
// threads are pending) the architectural post-fork register/store views. It
// must see every event exactly once, in trace order; pos is the event's
// absolute trace index, so threads forked later in the trace (whose
// register copy already reflects earlier events) skip them.
func (e *engine) bookkeep(ev *trace.Event, in *ir.Instr, pos int64) {
	fi := e.frameOf(ev.Frame)
	if fi == nil {
		if n := len(e.framePool); n > 0 {
			fi = e.framePool[n-1]
			e.framePool = e.framePool[:n-1]
		} else {
			fi = &engFrame{}
		}
		*fi = engFrame{fn: ev.Func, parent: -1, retDst: ir.NoReg}
		if len(e.frameTop) > 0 {
			pf := e.frameTop[len(e.frameTop)-1]
			pinfo := e.frameInfo[pf]
			if pinfo != nil {
				pin := e.lp.InstrAt(pinfo.fn, pinfo.lastID)
				if pin.Op == ir.Call {
					fi.parent = pf
					fi.retDst = pin.Dst
				}
			}
		}
		e.frameInfo[ev.Frame] = fi
		e.frameTop = append(e.frameTop, ev.Frame)
		e.lastFrame, e.lastFI = ev.Frame, fi
	}
	fi.lastID = ev.ID

	e.curLoop = e.tracker.observe(ev.Func, ev.Frame, ev.ID, in.Op == ir.Ret)

	for _, s := range e.specs {
		if pos <= s.forkPos {
			// The thread's register copy postdates this event; so do every
			// younger thread's (specs is sorted by fork position).
			break
		}
		// The in-range checks below guard against fork snapshots that are
		// shorter than the frame's register file (possible only under fault
		// injection): out-of-range registers simply aren't tracked.
		switch in.Op {
		case ir.Store:
			s.stores = append(s.stores, storeRec{addr: ev.Addr, time: e.main.now()})
		case ir.Ret:
			// A return into the loop frame writes the call's destination.
			if fi.parent == s.frame && fi.retDst != ir.NoReg && int(fi.retDst) < len(s.mainRegs) {
				s.mainRegs[fi.retDst] = ev.Val
				s.written[fi.retDst] = true
			}
		}
		if ev.Frame == s.frame {
			if d := in.Def(); d != ir.NoReg && int(d) < len(s.mainRegs) {
				s.mainRegs[d] = ev.Val
				s.written[d] = true
			}
		}
	}

	if in.Op == ir.Ret {
		for i := len(e.frameTop) - 1; i >= 0; i-- {
			if e.frameTop[i] == ev.Frame {
				e.frameTop = append(e.frameTop[:i], e.frameTop[i+1:]...)
				break
			}
		}
		delete(e.frameInfo, ev.Frame)
		if e.lastFI == fi {
			e.lastFI = nil
		}
		e.framePool = append(e.framePool, fi)
	}
}

// attributeCycles charges main-pipeline progress since the last event to
// every active loop (inclusive attribution: a loop's cycles include its
// callees' loops, mirroring the profiler's coverage accounting).
func (e *engine) attributeCycles() {
	now := e.main.now()
	if now <= e.lastCm {
		return
	}
	d := now - e.lastCm
	for _, a := range e.tracker.active {
		a.Cycles += d
	}
	e.lastCm = now
}

// handleFork arms a speculative core if one is idle.
func (e *engine) handleFork(ev *trace.Event, complete int64) {
	e.handleForkFrom(ev, ev.Frame, complete, e.pos, e.pos+1)
}

// handleForkFrom arms a speculative core for a fork event observed at
// forkPos, scanning for the start-point from scanFrom onward. Re-forks
// after a commit pass scanFrom = the commit end, since earlier occurrences
// of the start block were already absorbed.
func (e *engine) handleForkFrom(ev *trace.Event, frame int64, complete, forkPos, scanFrom int64) {
	if len(e.coreFree) == 0 {
		e.stats.NoForks++
		return
	}
	in := e.lp.InstrAt(ev.Func, ev.ID)
	bi := e.lp.LabelIndex(ev.Func, in.Target)
	if bi < 0 {
		e.stats.NoForks++
		return
	}
	startID := e.lp.BlockStart(ev.Func, bi)
	startPos := e.findStart(frame, startID, scanFrom)
	if startPos < 0 {
		// The target iteration never begins inside the lookahead window:
		// the loop is exiting (the spt_kill will arrive) or the iteration
		// is far larger than the window. The speculative thread runs down
		// a wrong path and is killed; no commit will happen.
		e.stats.NoForks++
		return
	}
	if n := len(e.specs); n > 0 && startPos <= e.specs[n-1].startPos {
		// Version-chain invariant: threads spawn — and therefore commit —
		// in start-point order. A fork whose start-point does not extend
		// the chain is suppressed.
		e.stats.NoForks++
		return
	}
	e.armThread(ev, frame, complete, forkPos, bi, startID, startPos, e.curLoop)
}

// findStart locates the start-point: the stride-th next occurrence of the
// target block's first instruction in the forking frame, or -1 if the
// frame returns (or the window ends) first.
func (e *engine) findStart(frame int64, startID int32, scanFrom int64) int64 {
	seen := 0
	for p := scanFrom; p < e.end(); p++ {
		x := e.at(p)
		if x.Frame != frame {
			continue
		}
		if x.ID == startID {
			if seen++; seen >= e.sched.Stride() {
				return p
			}
			continue
		}
		if e.lp.InstrAt(x.Func, x.ID).Op == ir.Ret {
			break // the loop frame returns before reaching the start-point
		}
	}
	return -1
}

// armThread claims a speculative core and arms a thread on it. The fork
// time is the fork's completion plus the register-file copy (plus the
// live-in pre-computation slice in slice mode), but never earlier than the
// moment the claimed core became free.
func (e *engine) armThread(ev *trace.Event, frame int64, complete, forkPos int64, bi, startID int32, startPos int64, loop *LoopStats) *specThread {
	s := e.grabSpec()
	s.forkPos = forkPos
	desired := complete + int64(e.cfg.RFCopyCycles)
	if e.planner != nil {
		s.plan = e.planner.Plan(ev.Func, bi)
		desired += s.plan.Cycles
	}
	if free := e.claimCore(); free > desired {
		desired = free
	}
	s.forkTime = desired
	s.frame = frame
	s.fn = ev.Func
	s.startID = startID
	s.startPos = startPos
	s.chainID = e.chain.Spawn()
	s.loop = loop
	s.stores = s.stores[:0]
	s.inherit = s.inherit[:0]
	if n := len(ev.Snapshot); n > 0 {
		s.snapshot = append(s.snapshot[:0], ev.Snapshot...)
		s.mainRegs = append(s.mainRegs[:0], ev.Snapshot...)
		if cap(s.written) < n {
			s.written = make([]bool, n)
		} else {
			s.written = s.written[:n]
			clear(s.written)
		}
	} else {
		s.snapshot = s.snapshot[:0]
		s.mainRegs = s.mainRegs[:0]
		s.written = s.written[:0]
	}
	e.specs = append(e.specs, s)
	e.stats.Windows++
	if s.loop != nil {
		s.loop.Windows++
	}
	return s
}
