package arch

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/trace"
)

// ErrCycleLimit is returned when a simulation exceeds Config.CycleLimit.
var ErrCycleLimit = errors.New("arch: cycle budget exceeded")

// ErrCorruptTrace is returned when the engine receives a trace event whose
// coordinates do not resolve to a loaded instruction. The engine stops
// simulating instead of indexing out of bounds.
var ErrCorruptTrace = errors.New("arch: corrupt trace event")

// Machine simulates one program on the SPT processor (or on a single core
// when cfg.SPT is false).
type Machine struct {
	lp  *interp.Program
	cfg Config
	mw  func(trace.Handler) trace.Handler
}

// NewMachine prepares a simulation of the loaded program.
func NewMachine(lp *interp.Program, cfg Config) *Machine {
	return &Machine{lp: lp, cfg: cfg}
}

// SetTraceMiddleware interposes mw between the interpreter and the SPT
// engine on the next Run. It exists for fault injection (dropping or
// corrupting events) and observation; nil restores the direct path.
func (m *Machine) SetTraceMiddleware(mw func(trace.Handler) trace.Handler) { m.mw = mw }

// Run executes the program under the sequential interpreter, feeds the
// trace through the SPT engine, and returns the simulation statistics.
func (m *Machine) Run() (*RunStats, error) { return m.RunContext(context.Background()) }

// RunContext is Run with cancellation and deadline support: ctx is checked
// periodically by the interpreter (every ~1024 steps), and the engine's
// cycle budget (Config.CycleLimit) cancels the run from the inside. The
// returned error distinguishes budget exhaustion (ErrCycleLimit,
// interp.ErrStepLimit, context deadline) from structural failures.
func (m *Machine) RunContext(ctx context.Context) (*RunStats, error) {
	if err := m.cfg.Validate(); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	e := newEngine(m.lp, m.cfg)
	e.cancel = cancel
	im := interp.New(m.lp)
	if m.cfg.StepLimit > 0 {
		im.SetStepLimit(m.cfg.StepLimit)
	}
	im.SetContext(ctx)
	var h trace.Handler = e
	if m.mw != nil {
		h = m.mw(e)
	}
	im.SetHandler(h)
	res, err := im.Run()
	if e.failure != nil {
		// The engine aborted the run from the inside (cycle budget or a
		// corrupt event); its cause outranks the interpreter's view of the
		// resulting cancellation.
		return nil, e.failure
	}
	if err != nil {
		return nil, err
	}
	e.finish()
	if e.failure != nil {
		// Short traces fit entirely inside the lookahead window, so budget
		// exhaustion can first surface while draining.
		return nil, e.failure
	}
	e.stats.Instrs = res.Steps
	return e.stats, nil
}

// storeRec is one main-thread post-fork store for the speculative load
// address buffer check.
type storeRec struct {
	addr int64
	time int64
}

// specThread is the state of the speculative core's current thread.
type specThread struct {
	forkPos  int64 // absolute event index of the spt_fork
	forkTime int64 // cycle the speculative thread may start
	frame    int64 // frame of the forking loop
	fn       int32
	startID  int32 // first instruction id of the fork target block
	startPos int64 // absolute index of the start-point arrival; -1 until seen

	snapshot []int64 // fork-time register file of the loop frame
	mainRegs []int64 // main's view of the loop frame registers since fork
	written  []bool  // registers written by main post-fork
	stores   []storeRec

	loop *LoopStats // loop the fork belongs to
}

// engine is the trace-driven SPT simulation core. It buffers a sliding
// window of events so the speculative thread can execute "future" trace
// entries while the main thread is still behind, exactly like the paper's
// two-pipeline trace simulator.
type engine struct {
	lp    *interp.Program
	cfg   Config
	hier  *cache.Hierarchy
	bp    *bpred.GAg
	main  *pipeline
	stats *RunStats

	buf  []trace.Event
	base int64 // absolute index of buf[0]
	pos  int64 // absolute index of the next main-thread event
	done bool

	spec *specThread

	tracker *loopTracker
	curLoop *LoopStats
	lastCm  int64

	cancel  context.CancelFunc
	failure error // budget exhaustion or corrupt input; simulation stops

	// frame linkage for return-value readiness and reg tracking
	frameInfo map[int64]*engFrame
	frameTop  []int64 // call stack of frame ids (main thread view)
}

type engFrame struct {
	fn     int32
	parent int64
	retDst ir.Reg
	lastID int32
}

func newEngine(lp *interp.Program, cfg Config) *engine {
	st := &RunStats{}
	e := &engine{
		lp:        lp,
		cfg:       cfg,
		hier:      cache.New(cfg.Cache),
		bp:        bpred.New(cfg.BPredEntries),
		stats:     st,
		frameInfo: map[int64]*engFrame{},
		tracker:   newLoopTracker(lp),
	}
	e.main = newPipeline(cfg.IssueWidth, cfg.BranchPenalty, &st.Breakdown)
	st.PerLoop = e.tracker.perLoop
	return e
}

// fail aborts the simulation with the given cause: further events are
// ignored and the producing interpreter is cancelled.
func (e *engine) fail(err error) {
	if e.failure == nil {
		e.failure = err
		if e.cancel != nil {
			e.cancel()
		}
	}
}

// Event implements trace.Handler: buffer the event and simulate as far as
// the lookahead window allows. Events whose coordinates do not resolve to a
// loaded instruction abort the run with ErrCorruptTrace instead of
// corrupting engine state.
func (e *engine) Event(ev *trace.Event) {
	if e.failure != nil {
		return
	}
	if ev.Func < 0 || int(ev.Func) >= e.lp.NumFuncs() ||
		ev.ID < 0 || int(ev.ID) >= e.lp.FuncInstrCount(ev.Func) {
		e.fail(fmt.Errorf("%w: func=%d id=%d", ErrCorruptTrace, ev.Func, ev.ID))
		return
	}
	cp := *ev
	if ev.Snapshot != nil {
		cp.Snapshot = append([]int64(nil), ev.Snapshot...)
	}
	e.buf = append(e.buf, cp)
	lookahead := int64(e.cfg.Window)
	for e.failure == nil && e.pos < e.base+int64(len(e.buf)) && e.base+int64(len(e.buf))-e.pos > lookahead {
		e.step()
	}
	e.compact()
}

// finish drains the remaining events after the trace ends.
func (e *engine) finish() {
	e.done = true
	for e.failure == nil && e.pos < e.base+int64(len(e.buf)) {
		e.step()
	}
	e.stats.Cycles = e.main.now()
	e.stats.BranchLookups = e.bp.Lookups
	e.stats.BranchMispredicts = e.bp.Mispredicts
	e.stats.Cache = e.hier.Stats()
	// Fold issue slots into execution cycles.
	e.stats.Breakdown.Exec += (e.stats.Breakdown.IssueSlots + int64(e.cfg.IssueWidth) - 1) / int64(e.cfg.IssueWidth)
	e.stats.Breakdown.IssueSlots = 0
}

// compact drops buffered events no longer reachable by any consumer.
func (e *engine) compact() {
	low := e.pos
	if e.spec != nil && e.spec.forkPos < low {
		low = e.spec.forkPos
	}
	if n := low - e.base; n > 4096 {
		e.buf = append(e.buf[:0], e.buf[n:]...)
		e.base += n
	}
}

func (e *engine) at(abs int64) *trace.Event {
	return &e.buf[abs-e.base]
}

func (e *engine) end() int64 { return e.base + int64(len(e.buf)) }

// step processes one main-thread event.
func (e *engine) step() {
	if e.cfg.CycleLimit > 0 && e.main.now() >= e.cfg.CycleLimit {
		e.fail(fmt.Errorf("%w: %d cycles at limit %d", ErrCycleLimit, e.main.now(), e.cfg.CycleLimit))
		return
	}
	// Arrival at the speculative thread's start-point?
	if e.spec != nil && e.spec.startPos == e.pos {
		e.commitWindow()
		// commitWindow advanced e.pos past the committed region; continue
		// from there on the next step.
		return
	}
	ev := e.at(e.pos)
	in := e.lp.InstrAt(ev.Func, ev.ID)

	e.bookkeep(ev, in)
	_, complete := e.main.exec(ev, in, e.hier, e.bp, true)
	e.attributeCycles()

	switch in.Op {
	case ir.SptFork:
		if e.cfg.SPT {
			e.handleFork(ev, complete)
		}
	case ir.SptKill:
		if e.spec != nil {
			e.stats.Kills++
			if e.spec.loop != nil {
				e.spec.loop.Kills++
			}
			e.spec = nil
		}
	case ir.Ret:
		// Propagate return value readiness to the caller's pipeline view.
		fi := e.frameInfo[ev.Frame]
		if fi != nil && fi.parent >= 0 && fi.retDst != ir.NoReg {
			e.main.setReady(fi.parent, fi.retDst, complete, false)
		}
		e.main.dropFrame(ev.Frame)
	}
	e.pos++
}

// bookkeep maintains frame linkage, loop tracking and (when a speculative
// thread is pending) the main thread's post-fork register/store views. It
// must see every event exactly once, in trace order.
func (e *engine) bookkeep(ev *trace.Event, in *ir.Instr) {
	fi := e.frameInfo[ev.Frame]
	if fi == nil {
		fi = &engFrame{fn: ev.Func, parent: -1, retDst: ir.NoReg}
		if len(e.frameTop) > 0 {
			pf := e.frameTop[len(e.frameTop)-1]
			pinfo := e.frameInfo[pf]
			if pinfo != nil {
				pin := e.lp.InstrAt(pinfo.fn, pinfo.lastID)
				if pin.Op == ir.Call {
					fi.parent = pf
					fi.retDst = pin.Dst
				}
			}
		}
		e.frameInfo[ev.Frame] = fi
		e.frameTop = append(e.frameTop, ev.Frame)
	}
	fi.lastID = ev.ID

	e.curLoop = e.tracker.observe(ev.Func, ev.Frame, ev.ID, in.Op == ir.Ret)

	if e.spec != nil {
		s := e.spec
		// The in-range checks below guard against fork snapshots that are
		// shorter than the frame's register file (possible only under fault
		// injection): out-of-range registers simply aren't tracked.
		switch in.Op {
		case ir.Store:
			s.stores = append(s.stores, storeRec{addr: ev.Addr, time: e.main.now()})
		case ir.Ret:
			// A return into the loop frame writes the call's destination.
			if fi.parent == s.frame && fi.retDst != ir.NoReg && int(fi.retDst) < len(s.mainRegs) {
				s.mainRegs[fi.retDst] = ev.Val
				s.written[fi.retDst] = true
			}
		}
		if ev.Frame == s.frame {
			if d := in.Def(); d != ir.NoReg && int(d) < len(s.mainRegs) {
				s.mainRegs[d] = ev.Val
				s.written[d] = true
			}
		}
	}

	if in.Op == ir.Ret {
		for i := len(e.frameTop) - 1; i >= 0; i-- {
			if e.frameTop[i] == ev.Frame {
				e.frameTop = append(e.frameTop[:i], e.frameTop[i+1:]...)
				break
			}
		}
		delete(e.frameInfo, ev.Frame)
	}
}

// attributeCycles charges main-pipeline progress since the last event to
// every active loop (inclusive attribution: a loop's cycles include its
// callees' loops, mirroring the profiler's coverage accounting).
func (e *engine) attributeCycles() {
	now := e.main.now()
	if now <= e.lastCm {
		return
	}
	d := now - e.lastCm
	for _, a := range e.tracker.active {
		a.Cycles += d
	}
	e.lastCm = now
}

// handleFork arms the speculative core if it is idle.
func (e *engine) handleFork(ev *trace.Event, complete int64) {
	e.handleForkFrom(ev, ev.Frame, complete, e.pos, e.pos+1)
}

// handleForkFrom arms the speculative core for a fork event observed at
// forkPos, scanning for the start-point from scanFrom onward. Re-forks
// after a commit pass scanFrom = the commit end, since earlier occurrences
// of the start block were already absorbed.
func (e *engine) handleForkFrom(ev *trace.Event, frame int64, complete, forkPos, scanFrom int64) {
	if e.spec != nil {
		e.stats.NoForks++
		return
	}
	in := e.lp.InstrAt(ev.Func, ev.ID)
	bi := e.lp.LabelIndex(ev.Func, in.Target)
	if bi < 0 {
		e.stats.NoForks++
		return
	}
	startID := e.lp.BlockStart(ev.Func, bi)
	s := &specThread{
		forkPos:  forkPos,
		forkTime: complete + int64(e.cfg.RFCopyCycles),
		frame:    frame,
		fn:       ev.Func,
		startID:  startID,
		startPos: -1,
		loop:     e.curLoop,
	}
	if ev.Snapshot != nil {
		s.snapshot = append([]int64(nil), ev.Snapshot...)
		s.mainRegs = append([]int64(nil), ev.Snapshot...)
		s.written = make([]bool, len(ev.Snapshot))
	}
	// Locate the start-point: the next occurrence of the target block's
	// first instruction in the forking frame.
	for p := scanFrom; p < e.end(); p++ {
		x := e.at(p)
		if x.Frame == s.frame && x.ID == startID {
			s.startPos = p
			break
		}
		if x.Frame == s.frame && e.lp.InstrAt(x.Func, x.ID).Op == ir.Ret {
			break // the loop frame returns before reaching the start-point
		}
	}
	if s.startPos < 0 {
		// The next iteration never begins inside the lookahead window: the
		// loop is exiting (the spt_kill will arrive) or the iteration is
		// far larger than the window. The speculative thread runs down a
		// wrong path and is killed; no commit will happen.
		e.stats.NoForks++
		return
	}
	e.spec = s
	e.stats.Windows++
	if s.loop != nil {
		s.loop.Windows++
	}
}
