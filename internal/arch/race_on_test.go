//go:build race

package arch

// raceEnabled reports whether the race detector is active; allocation-exact
// tests skip under it.
const raceEnabled = true
