package arch

import (
	"strings"

	"repro/internal/cfg"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/profiler"
)

// loopTracker attributes main-pipeline cycles and SPT window statistics to
// the innermost active loop. Loop identity is the (function, header label)
// pair, with the transformation's "spt.start." prefix stripped so baseline
// and SPT runs of the same benchmark share keys.
type loopTracker struct {
	lp      *interp.Program
	statics []trackStatics
	frames  map[int64]*trackFrame
	stack   []*trackFrame
	perLoop map[profiler.LoopKey]*LoopStats

	active []*LoopStats // global activation stack (innermost last)

	framePool []*trackFrame // recycled frame records (zero-alloc steady state)

	// One-entry lookup memo: consecutive observations overwhelmingly come
	// from the same frame, so most observe calls skip the frames map.
	lastFrame int64
	lastFr    *trackFrame
}

type trackStatics struct {
	blockOf []int32
	// chain[b] lists loop keys containing block b, outermost first.
	chain [][]profiler.LoopKey
	// startID0[b] is non-negative when block b's first instruction marks an
	// iteration boundary of the innermost loop at b.
	iterAt []int32 // instruction id that bumps the innermost loop's iteration, or -1
}

type trackFrame struct {
	fi    int32
	prevB int32
	acts  []*LoopStats
}

// NormalizeHeader strips the SPT transformation prefix from a header label.
func NormalizeHeader(label string) string {
	if s, ok := strings.CutPrefix(label, "spt.start."); ok {
		return s
	}
	return label
}

func newLoopTracker(lp *interp.Program) *loopTracker {
	t := &loopTracker{
		lp:      lp,
		frames:  map[int64]*trackFrame{},
		perLoop: map[profiler.LoopKey]*LoopStats{},
	}
	p := lp.IR
	t.statics = make([]trackStatics, len(p.Funcs))
	for fi, f := range p.Funcs {
		st := trackStatics{
			blockOf: make([]int32, f.NumInstrs()),
			chain:   make([][]profiler.LoopKey, len(f.Blocks)),
			iterAt:  make([]int32, len(f.Blocks)),
		}
		for id := 0; id < f.NumInstrs(); id++ {
			st.blockOf[id] = int32(f.Linear[id].Block)
		}
		g, err := cfg.Build(f)
		if err != nil {
			// Unanalyzable function (never produced by Validate-d programs):
			// it simply contributes no per-loop attribution.
			t.statics[fi] = st
			continue
		}
		forest := cfg.FindLoops(g)
		keyOf := map[*cfg.Loop]profiler.LoopKey{}
		startOf := map[*cfg.Loop]int{}
		for _, l := range forest.Loops {
			keyOf[l] = profiler.LoopKey{
				Func:   f.Name,
				Header: NormalizeHeader(f.Blocks[l.Header].Label),
			}
			// Iteration boundary block: the body entry for while-shaped
			// loops, the header otherwise (mirrors the profiler).
			start := l.Header
			if term := f.Blocks[l.Header].Term(); term.Op == ir.Br {
				t1, t2 := f.BlockIndex(term.Target), f.BlockIndex(term.Target2)
				switch {
				case l.Contains(t1) && !l.Contains(t2):
					start = t1
				case l.Contains(t2) && !l.Contains(t1):
					start = t2
				}
			}
			startOf[l] = start
		}
		for b := range f.Blocks {
			st.iterAt[b] = -1
			var chain []profiler.LoopKey
			for l := forest.InnermostAt[b]; l != nil; l = l.Parent {
				chain = append(chain, keyOf[l])
			}
			for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
				chain[i], chain[j] = chain[j], chain[i]
			}
			st.chain[b] = chain
		}
		for _, l := range forest.Loops {
			b := startOf[l]
			st.iterAt[b] = int32(f.Blocks[b].Instrs[0].ID)
		}
		t.statics[fi] = st
	}
	return t
}

func (t *loopTracker) loopStats(k profiler.LoopKey) *LoopStats {
	ls := t.perLoop[k]
	if ls == nil {
		ls = &LoopStats{Key: k}
		t.perLoop[k] = ls
	}
	return ls
}

// current returns the innermost active loop's stats, or nil.
func (t *loopTracker) current() *LoopStats {
	if len(t.active) == 0 {
		return nil
	}
	return t.active[len(t.active)-1]
}

// observe updates loop activations for one (bookkeeping) event and returns
// the innermost active loop after the event.
func (t *loopTracker) observe(fn int32, frame int64, id int32, isRet bool) *LoopStats {
	var fr *trackFrame
	if t.lastFr != nil && t.lastFrame == frame {
		fr = t.lastFr
	} else {
		fr = t.frames[frame]
	}
	if fr == nil {
		if n := len(t.framePool); n > 0 {
			fr = t.framePool[n-1]
			t.framePool = t.framePool[:n-1]
			fr.fi, fr.prevB = fn, -1
			fr.acts = fr.acts[:0]
		} else {
			fr = &trackFrame{fi: fn, prevB: -1}
		}
		t.frames[frame] = fr
		t.stack = append(t.stack, fr)
	}
	t.lastFrame, t.lastFr = frame, fr
	st := &t.statics[fn]
	blk := st.blockOf[id]
	if blk != fr.prevB {
		chain := st.chain[blk]
		keep := 0
		for keep < len(fr.acts) && keep < len(chain) && fr.acts[keep].Key == chain[keep] {
			keep++
		}
		for len(fr.acts) > keep {
			t.popAct(fr)
		}
		for len(fr.acts) < len(chain) {
			ls := t.loopStats(chain[len(fr.acts)])
			fr.acts = append(fr.acts, ls)
			t.active = append(t.active, ls)
		}
		fr.prevB = blk
	}
	if st.iterAt[blk] == id && len(fr.acts) > 0 {
		fr.acts[len(fr.acts)-1].Iterations++
	}
	if isRet {
		for len(fr.acts) > 0 {
			t.popAct(fr)
		}
		delete(t.frames, frame)
		t.lastFr = nil
		for i := len(t.stack) - 1; i >= 0; i-- {
			if t.stack[i] == fr {
				t.stack = append(t.stack[:i], t.stack[i+1:]...)
				break
			}
		}
		t.framePool = append(t.framePool, fr)
	}
	return t.current()
}

func (t *loopTracker) popAct(fr *trackFrame) {
	a := fr.acts[len(fr.acts)-1]
	fr.acts = fr.acts[:len(fr.acts)-1]
	for i := len(t.active) - 1; i >= 0; i-- {
		if t.active[i] == a {
			t.active = append(t.active[:i], t.active[i+1:]...)
			break
		}
	}
}
