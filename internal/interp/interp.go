// Package interp executes IR programs sequentially and emits the
// value-annotated instruction trace that drives profiling and the
// trace-driven SPT architecture simulator.
//
// The interpreter is the architectural reference: SptFork and SptKill are
// no-ops here, so an SPT-transformed program must compute exactly the same
// result as the original — a property the test suite checks extensively.
package interp

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/ir"
	"repro/internal/trace"
)

// ErrStepLimit is returned when execution exceeds the configured step limit.
var ErrStepLimit = errors.New("interp: dynamic step limit exceeded")

// ctxCheckMask: the run context is polled every time the low bits of the
// step counter wrap, i.e. every 1024 dynamic instructions — cheap enough to
// be invisible, frequent enough that deadlines bite within microseconds.
const ctxCheckMask = 1<<10 - 1

// Result summarizes a completed run.
type Result struct {
	Ret   int64 // value returned by the entry function
	Steps int64 // dynamically executed instructions
	// MemChecksum is an order-independent digest of all memory words that
	// were ever written, xor-folded with their addresses. Two runs that
	// perform the same architectural writes produce the same checksum, so
	// it serves as a cheap semantic-equivalence witness.
	MemChecksum uint64
}

// Machine executes one program. It may be reused for several runs; each Run
// resets all state.
type Machine struct {
	prog *Program // loaded program (resolved form)

	mem     *Memory
	heap    *heap
	handler trace.Handler
	ctx     context.Context // optional cancellation/deadline; nil = unbounded

	stepLimit int64
	steps     int64
	nextFrame int64

	ev       trace.Event
	snapshot []int64
	checksum uint64

	// Activation scratch: register files are recycled LIFO across calls and
	// call arguments go through one shared buffer (the callee copies them
	// into its registers before any nested call can overwrite it), so deep
	// call trees stop allocating once the pool is warm.
	regPool    [][]int64
	argScratch []int64
}

// Program is the loaded, execution-ready form of an ir.Program: globals are
// assigned addresses and per-function instruction arrays are flattened.
type Program struct {
	IR          *ir.Program
	GlobalAddrs map[string]int64
	GlobalEnd   int64 // first address past the last global; heap starts here
	funcs       []loadedFunc
	funcIdx     map[string]int32
}

type loadedFunc struct {
	f      *ir.Func
	instrs []ir.Instr // flat, indexed by Instr.ID
	// blockStart[bi] is the instruction id of the first instruction of
	// block bi; succ maps block label to block index for dispatch.
	blockStart []int32
	blockOf    []int32 // instruction id -> block index
	labelIdx   map[string]int32
}

// GlobalBase is the address of the first global; low addresses are kept
// unused so that nil-like zero pointers fault differently from data.
const GlobalBase int64 = 1 << 16

// Load prepares an ir.Program for execution. The program must be finalized
// and valid.
func Load(p *ir.Program) (*Program, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	lp := &Program{
		IR:          p,
		GlobalAddrs: make(map[string]int64, len(p.Globals)),
		funcIdx:     make(map[string]int32, len(p.Funcs)),
	}
	addr := GlobalBase
	for _, g := range p.Globals {
		lp.GlobalAddrs[g.Name] = addr
		addr += g.Size
	}
	lp.GlobalEnd = addr
	lp.funcs = make([]loadedFunc, len(p.Funcs))
	for i, f := range p.Funcs {
		lf := loadedFunc{
			f:        f,
			instrs:   make([]ir.Instr, 0, f.NumInstrs()),
			labelIdx: make(map[string]int32, len(f.Blocks)),
		}
		lf.blockStart = make([]int32, len(f.Blocks))
		lf.blockOf = make([]int32, f.NumInstrs())
		id := int32(0)
		for bi, b := range f.Blocks {
			lf.blockStart[bi] = id
			lf.labelIdx[b.Label] = int32(bi)
			for j := range b.Instrs {
				lf.instrs = append(lf.instrs, b.Instrs[j])
				lf.blockOf[id] = int32(bi)
				id++
			}
		}
		lp.funcs[i] = lf
		lp.funcIdx[f.Name] = int32(i)
	}
	return lp, nil
}

// NumFuncs returns the number of loaded functions.
func (lp *Program) NumFuncs() int { return len(lp.funcs) }

// FuncInstrCount returns the number of instructions in function fi. Consumers
// of the trace use it to validate event coordinates before indexing.
func (lp *Program) FuncInstrCount(fi int32) int { return len(lp.funcs[fi].instrs) }

// FuncIndex returns the index of the named function, or -1.
func (lp *Program) FuncIndex(name string) int32 {
	if i, ok := lp.funcIdx[name]; ok {
		return i
	}
	return -1
}

// InstrAt returns the instruction with the given id in function fi.
func (lp *Program) InstrAt(fi int32, id int32) *ir.Instr { return &lp.funcs[fi].instrs[id] }

// BlockOf returns the block index containing instruction id of function fi.
func (lp *Program) BlockOf(fi int32, id int32) int32 { return lp.funcs[fi].blockOf[id] }

// BlockStart returns the first instruction id of block bi in function fi.
func (lp *Program) BlockStart(fi int32, bi int32) int32 { return lp.funcs[fi].blockStart[bi] }

// LabelIndex returns the block index of the given label in function fi, or -1.
func (lp *Program) LabelIndex(fi int32, label string) int32 {
	if b, ok := lp.funcs[fi].labelIdx[label]; ok {
		return b
	}
	return -1
}

// New creates a machine for the loaded program.
func New(lp *Program) *Machine {
	return &Machine{prog: lp, stepLimit: 1 << 40}
}

// SetHandler installs a trace handler (nil disables tracing).
func (m *Machine) SetHandler(h trace.Handler) { m.handler = h }

// SetStepLimit bounds the number of dynamic instructions per Run.
func (m *Machine) SetStepLimit(n int64) { m.stepLimit = n }

// SetContext installs a cancellation/deadline context checked periodically
// during Run (every ~1024 steps). A nil context disables the checks.
func (m *Machine) SetContext(ctx context.Context) { m.ctx = ctx }

// Run executes the entry function to completion.
func (m *Machine) Run() (Result, error) {
	if err := m.interrupted(); err != nil {
		return Result{}, err
	}
	m.mem = NewMemory()
	m.heap = newHeap(m.prog.GlobalEnd)
	m.steps = 0
	m.nextFrame = 0
	m.checksum = 0
	for _, g := range m.prog.IR.Globals {
		base := m.prog.GlobalAddrs[g.Name]
		for i, v := range g.Init {
			m.mem.Write(base+int64(i), v)
		}
	}
	entry := m.prog.funcIdx[m.prog.IR.Entry]
	ret, err := m.call(entry, nil)
	if err != nil {
		return Result{}, err
	}
	return Result{Ret: ret, Steps: m.steps, MemChecksum: m.checksum}, nil
}

// grabRegs returns a zeroed register file of length n from the pool.
func (m *Machine) grabRegs(n int) []int64 {
	if k := len(m.regPool); k > 0 {
		buf := m.regPool[k-1]
		m.regPool = m.regPool[:k-1]
		if cap(buf) >= n {
			buf = buf[:n]
			clear(buf)
			return buf
		}
	}
	return make([]int64, n)
}

// call runs one function activation and returns its return value.
func (m *Machine) call(fi int32, args []int64) (int64, error) {
	lf := &m.prog.funcs[fi]
	frame := m.nextFrame
	m.nextFrame++
	regs := m.grabRegs(lf.f.NumRegs)
	defer func() { m.regPool = append(m.regPool, regs) }()
	copy(regs, args)

	pc := int32(0) // instruction id
	n := int32(len(lf.instrs))
	for pc < n {
		in := &lf.instrs[pc]
		m.steps++
		if m.steps > m.stepLimit {
			return 0, ErrStepLimit
		}
		if m.steps&ctxCheckMask == 0 {
			if err := m.interrupted(); err != nil {
				return 0, err
			}
		}
		ev := &m.ev
		ev.Func = fi
		ev.ID = pc
		ev.Frame = frame
		ev.Addr = 0
		ev.Val = 0
		ev.Taken = false
		ev.Snapshot = nil

		next := pc + 1
		switch in.Op {
		case ir.Nop:
		case ir.Mov:
			regs[in.Dst] = regs[in.A]
			ev.Val = regs[in.Dst]
		case ir.MovI:
			regs[in.Dst] = in.Imm
			ev.Val = in.Imm
		case ir.AddI:
			regs[in.Dst] = regs[in.A] + in.Imm
			ev.Val = regs[in.Dst]
		case ir.MulI:
			regs[in.Dst] = regs[in.A] * in.Imm
			ev.Val = regs[in.Dst]
		case ir.Add, ir.Sub, ir.Mul, ir.Div, ir.Rem, ir.And, ir.Or, ir.Xor,
			ir.Shl, ir.Shr, ir.CmpEQ, ir.CmpNE, ir.CmpLT, ir.CmpLE, ir.CmpGT, ir.CmpGE:
			v, err := ir.EvalALU(in.Op, regs[in.A], regs[in.B])
			if err != nil {
				return 0, fmt.Errorf("interp: %s@%d: %w", lf.f.Name, pc, err)
			}
			regs[in.Dst] = v
			ev.Val = v
		case ir.Load:
			addr := regs[in.A] + in.Imm
			v := m.mem.Read(addr)
			regs[in.Dst] = v
			ev.Addr = addr
			ev.Val = v
		case ir.Store:
			addr := regs[in.A] + in.Imm
			v := regs[in.B]
			m.mem.Write(addr, v)
			m.checksum = mixChecksum(m.checksum, addr, v)
			ev.Addr = addr
			ev.Val = v
		case ir.GAddr:
			regs[in.Dst] = m.prog.GlobalAddrs[in.Target]
			ev.Val = regs[in.Dst]
		case ir.Alloc:
			size := in.Imm
			if in.A != ir.NoReg {
				size = regs[in.A]
			}
			addr, err := m.heap.alloc(size)
			if err != nil {
				return 0, fmt.Errorf("%s@%d: %w", lf.f.Name, pc, err)
			}
			regs[in.Dst] = addr
			ev.Addr = addr
			ev.Val = size
		case ir.Free:
			addr := regs[in.A]
			if err := m.heap.free(addr); err != nil {
				return 0, fmt.Errorf("%s@%d: %w", lf.f.Name, pc, err)
			}
			ev.Addr = addr
		case ir.Br:
			taken := regs[in.A] != 0
			ev.Taken = taken
			label := in.Target
			if !taken {
				label = in.Target2
			}
			next = lf.blockStart[lf.labelIdx[label]]
		case ir.Jmp:
			next = lf.blockStart[lf.labelIdx[in.Target]]
		case ir.Call:
			// Emit the call event before the callee's events so that the
			// trace preserves program order.
			if m.handler != nil {
				m.handler.Event(ev)
			}
			callee := m.prog.funcIdx[in.Target]
			var args []int64
			if len(in.Args) > 0 {
				if cap(m.argScratch) < len(in.Args) {
					m.argScratch = make([]int64, len(in.Args))
				}
				args = m.argScratch[:len(in.Args)]
				for i, r := range in.Args {
					args[i] = regs[r]
				}
			}
			rv, err := m.call(callee, args)
			if err != nil {
				return 0, err
			}
			regs[in.Dst] = rv
			pc = next
			continue
		case ir.Ret:
			var rv int64
			if in.A != ir.NoReg {
				rv = regs[in.A]
			}
			ev.Val = rv
			if m.handler != nil {
				m.handler.Event(ev)
			}
			return rv, nil
		case ir.SptFork:
			// Architecturally a no-op; the trace event carries the register
			// snapshot the SPT machine would copy to the speculative core.
			if m.handler != nil {
				if cap(m.snapshot) < len(regs) {
					m.snapshot = make([]int64, len(regs))
				}
				m.snapshot = m.snapshot[:len(regs)]
				copy(m.snapshot, regs)
				ev.Snapshot = m.snapshot
			}
		case ir.SptKill:
			// No-op sequentially.
		default:
			return 0, fmt.Errorf("interp: %s@%d: unhandled op %v", lf.f.Name, pc, in.Op)
		}
		if m.handler != nil {
			m.handler.Event(ev)
		}
		pc = next
	}
	return 0, fmt.Errorf("interp: %s: fell off end of function", lf.f.Name)
}

// interrupted reports the machine's context error, if any, wrapped so that
// callers can distinguish cancellation from program faults with errors.Is.
func (m *Machine) interrupted() error {
	if m.ctx == nil {
		return nil
	}
	select {
	case <-m.ctx.Done():
		return fmt.Errorf("interp: run interrupted after %d steps: %w", m.steps, m.ctx.Err())
	default:
		return nil
	}
}

func mixChecksum(sum uint64, addr, val int64) uint64 {
	x := uint64(addr)*0x9E3779B97F4A7C15 ^ uint64(val)
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	return sum + x // commutative fold: order-independent by design
}
