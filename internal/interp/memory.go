package interp

import (
	"errors"
	"fmt"
	"sort"
)

const (
	pageShift = 12 // 4096 words per page
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

type page [pageSize]int64

// Memory is a sparse, word-addressed (int64 words) flat memory.
type Memory struct {
	pages map[int64]*page
	last  *page // one-entry lookup cache
	lastK int64
	init  bool
}

// NewMemory returns an empty memory; reads of unwritten words return 0.
func NewMemory() *Memory {
	return &Memory{pages: make(map[int64]*page, 64)}
}

func (m *Memory) pageFor(addr int64) *page {
	k := addr >> pageShift
	if m.init && k == m.lastK {
		return m.last
	}
	p := m.pages[k]
	if p == nil {
		p = new(page)
		m.pages[k] = p
	}
	m.last, m.lastK, m.init = p, k, true
	return p
}

// Read returns the word at addr.
func (m *Memory) Read(addr int64) int64 {
	k := addr >> pageShift
	if m.init && k == m.lastK {
		return m.last[addr&pageMask]
	}
	p := m.pages[k]
	if p == nil {
		return 0
	}
	m.last, m.lastK = p, k
	return p[addr&pageMask]
}

// Write stores v at addr.
func (m *Memory) Write(addr int64, v int64) {
	m.pageFor(addr)[addr&pageMask] = v
}

// Snapshot returns all non-zero words as a map (for test assertions).
func (m *Memory) Snapshot() map[int64]int64 {
	out := make(map[int64]int64)
	keys := make([]int64, 0, len(m.pages))
	for k := range m.pages {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		p := m.pages[k]
		base := k << pageShift
		for i, v := range p {
			if v != 0 {
				out[base+int64(i)] = v
			}
		}
	}
	return out
}

// errHeap wraps heap misuse errors.
var errHeap = errors.New("interp: heap error")

// heap is a deterministic first-fit free-list allocator. Freed blocks are
// recycled in LIFO order per size class, so allocation patterns like the
// parser benchmark's free/alloc loops re-use addresses — which is what
// creates the cross-iteration memory dependences the SPT machine must
// detect at runtime.
type heap struct {
	next  int64             // bump pointer
	sizes map[int64]int64   // live block address -> size
	freed map[int64][]int64 // size class -> LIFO of freed addresses
}

func newHeap(base int64) *heap {
	// Leave a guard gap between globals and heap.
	return &heap{next: base + pageSize, sizes: make(map[int64]int64), freed: make(map[int64][]int64)}
}

func (h *heap) alloc(words int64) (int64, error) {
	if words <= 0 {
		return 0, fmt.Errorf("%w: alloc of %d words", errHeap, words)
	}
	if lst := h.freed[words]; len(lst) > 0 {
		addr := lst[len(lst)-1]
		h.freed[words] = lst[:len(lst)-1]
		h.sizes[addr] = words
		return addr, nil
	}
	addr := h.next
	h.next += words + 1 // one-word red zone between blocks
	h.sizes[addr] = words
	return addr, nil
}

func (h *heap) free(addr int64) error {
	words, ok := h.sizes[addr]
	if !ok {
		return fmt.Errorf("%w: free of unallocated address %d", errHeap, addr)
	}
	delete(h.sizes, addr)
	h.freed[words] = append(h.freed[words], addr)
	return nil
}
