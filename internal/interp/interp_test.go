package interp

import (
	"testing"
	"testing/quick"

	"repro/internal/ir"
	"repro/internal/trace"
)

// buildSum builds main() { s=0; for i=n; i>0; i-- { s+=i }; return s }.
func buildSum(n int64) *ir.Program {
	b := ir.NewFuncBuilder("main", 0)
	i, s, c := b.NewReg(), b.NewReg(), b.NewReg()
	b.Block("entry")
	b.MovI(i, n)
	b.MovI(s, 0)
	b.Jmp("head")
	b.Block("head")
	b.MovI(c, 0)
	b.ALU(ir.CmpGT, c, i, c)
	b.Br(c, "body", "exit")
	b.Block("body")
	b.ALU(ir.Add, s, s, i)
	b.AddI(i, i, -1)
	b.Jmp("head")
	b.Block("exit")
	b.Ret(s)
	return ir.NewProgramBuilder("main").AddFunc(b.Done()).Done()
}

func mustRun(t *testing.T, p *ir.Program) Result {
	t.Helper()
	lp, err := Load(p)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	m := New(lp)
	res, err := m.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestSumLoop(t *testing.T) {
	res := mustRun(t, buildSum(100))
	if res.Ret != 5050 {
		t.Errorf("Ret = %d, want 5050", res.Ret)
	}
}

func TestSumLoopProperty(t *testing.T) {
	f := func(n uint8) bool {
		nn := int64(n % 64)
		res := mustRun(t, buildSum(nn))
		return res.Ret == nn*(nn+1)/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// buildFib builds a recursive fibonacci to exercise calls and frames.
func buildFib(n int64) *ir.Program {
	fb := ir.NewFuncBuilder("fib", 1)
	x := fb.Param(0)
	c, t1, t2 := fb.NewReg(), fb.NewReg(), fb.NewReg()
	two := fb.NewReg()
	fb.Block("entry")
	fb.MovI(two, 2)
	fb.ALU(ir.CmpLT, c, x, two)
	fb.Br(c, "base", "rec")
	fb.Block("base")
	fb.Ret(x)
	fb.Block("rec")
	fb.AddI(t1, x, -1)
	fb.Call(t1, "fib", t1)
	fb.AddI(t2, x, -2)
	fb.Call(t2, "fib", t2)
	fb.ALU(ir.Add, t1, t1, t2)
	fb.Ret(t1)
	fib := fb.Done()

	mb := ir.NewFuncBuilder("main", 0)
	r := mb.NewReg()
	mb.Block("entry")
	mb.MovI(r, n)
	mb.Call(r, "fib", r)
	mb.Ret(r)
	return ir.NewProgramBuilder("main").AddFunc(mb.Done()).AddFunc(fib).Done()
}

func TestRecursiveFib(t *testing.T) {
	want := []int64{0, 1, 1, 2, 3, 5, 8, 13, 21, 34, 55}
	for n, w := range want {
		res := mustRun(t, buildFib(int64(n)))
		if res.Ret != w {
			t.Errorf("fib(%d) = %d, want %d", n, res.Ret, w)
		}
	}
}

// buildMemProgram exercises globals, loads, stores, alloc and free.
func buildMemProgram() *ir.Program {
	b := ir.NewFuncBuilder("main", 0)
	g, v, node, sum, i, c, sz := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
	b.Block("entry")
	b.GAddr(g, "table")
	b.MovI(v, 7)
	b.Store(g, 0, v)
	b.MovI(v, 9)
	b.Store(g, 1, v)
	// Build a 3-node linked list: node = {value, next}.
	b.MovI(sz, 2)
	b.MovI(node, 0) // head = nil
	b.MovI(i, 3)
	b.Jmp("build")
	b.Block("build")
	b.MovI(c, 0)
	b.ALU(ir.CmpGT, c, i, c)
	b.Br(c, "alloc", "walk")
	b.Block("alloc")
	b.Alloc(v, sz)
	b.Store(v, 0, i)    // value = i
	b.Store(v, 1, node) // next = old head
	b.Mov(node, v)
	b.AddI(i, i, -1)
	b.Jmp("build")
	b.Block("walk")
	b.MovI(sum, 0)
	b.Jmp("walkhead")
	b.Block("walkhead")
	b.MovI(c, 0)
	b.ALU(ir.CmpNE, c, node, c)
	b.Br(c, "walkbody", "done")
	b.Block("walkbody")
	b.Load(v, node, 0)
	b.ALU(ir.Add, sum, sum, v)
	b.Load(i, node, 1)
	b.Free(node)
	b.Mov(node, i)
	b.Jmp("walkhead")
	b.Block("done")
	b.GAddr(g, "table")
	b.Load(v, g, 0)
	b.ALU(ir.Add, sum, sum, v)
	b.Load(v, g, 1)
	b.ALU(ir.Add, sum, sum, v)
	b.Ret(sum)
	return ir.NewProgramBuilder("main").
		AddFunc(b.Done()).
		AddGlobal("table", 8).
		Done()
}

func TestMemoryAndHeap(t *testing.T) {
	res := mustRun(t, buildMemProgram())
	// list sums 1+2+3 = 6, globals 7+9 = 16 -> 22
	if res.Ret != 22 {
		t.Errorf("Ret = %d, want 22", res.Ret)
	}
}

func TestHeapReusesFreedBlocks(t *testing.T) {
	h := newHeap(1000)
	a1, err := h.alloc(4)
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := h.alloc(4)
	if a1 == a2 {
		t.Fatal("distinct allocations share an address")
	}
	if err := h.free(a1); err != nil {
		t.Fatal(err)
	}
	a3, _ := h.alloc(4)
	if a3 != a1 {
		t.Errorf("freed block not reused: got %d want %d", a3, a1)
	}
	if err := h.free(a1); err != nil {
		t.Fatal(err)
	}
	if err := h.free(a1); err == nil {
		t.Error("double free not detected")
	}
	if _, err := h.alloc(0); err == nil {
		t.Error("zero-size alloc not rejected")
	}
}

func TestMemoryPaging(t *testing.T) {
	m := NewMemory()
	addrs := []int64{0, 1, pageSize - 1, pageSize, pageSize + 1, 1 << 30, -5}
	for i, a := range addrs {
		m.Write(a, int64(i+1))
	}
	for i, a := range addrs {
		if got := m.Read(a); got != int64(i+1) {
			t.Errorf("Read(%d) = %d, want %d", a, got, i+1)
		}
	}
	if got := m.Read(424242); got != 0 {
		t.Errorf("unwritten word = %d, want 0", got)
	}
	snap := m.Snapshot()
	if len(snap) != len(addrs) {
		t.Errorf("Snapshot has %d entries, want %d", len(snap), len(addrs))
	}
}

func TestMemoryReadWriteProperty(t *testing.T) {
	f := func(addr int64, val int64) bool {
		m := NewMemory()
		m.Write(addr, val)
		return m.Read(addr) == val && m.Read(addr+1) == 0 || addr+1 == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStepLimit(t *testing.T) {
	// Infinite loop program.
	b := ir.NewFuncBuilder("main", 0)
	b.Block("entry")
	b.Jmp("entry")
	p := ir.NewProgramBuilder("main").AddFunc(b.Done()).Done()
	lp, err := Load(p)
	if err != nil {
		t.Fatal(err)
	}
	m := New(lp)
	m.SetStepLimit(1000)
	if _, err := m.Run(); err != ErrStepLimit {
		t.Errorf("err = %v, want ErrStepLimit", err)
	}
}

func TestTraceEventsOrdered(t *testing.T) {
	p := buildSum(3)
	lp, err := Load(p)
	if err != nil {
		t.Fatal(err)
	}
	m := New(lp)
	var events []trace.Event
	m.SetHandler(trace.HandlerFunc(func(ev *trace.Event) {
		events = append(events, *ev)
	}))
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(events)) != res.Steps {
		t.Fatalf("got %d events, Steps = %d", len(events), res.Steps)
	}
	// Branch events carry Taken; verify the head branch was taken 3 times
	// and not-taken once.
	taken, notTaken := 0, 0
	for _, ev := range events {
		in := lp.InstrAt(ev.Func, ev.ID)
		if in.Op == ir.Br {
			if ev.Taken {
				taken++
			} else {
				notTaken++
			}
		}
	}
	if taken != 3 || notTaken != 1 {
		t.Errorf("branch events: taken=%d notTaken=%d, want 3/1", taken, notTaken)
	}
}

func TestTraceForkSnapshot(t *testing.T) {
	b := ir.NewFuncBuilder("main", 0)
	r := b.NewReg()
	b.Block("entry")
	b.MovI(r, 42)
	b.Jmp("body")
	b.Block("body")
	b.SptFork("body")
	b.Ret(r)
	p := ir.NewProgramBuilder("main").AddFunc(b.Done()).Done()
	lp, err := Load(p)
	if err != nil {
		t.Fatal(err)
	}
	m := New(lp)
	var snap []int64
	m.SetHandler(trace.HandlerFunc(func(ev *trace.Event) {
		if ev.Snapshot != nil {
			snap = append([]int64(nil), ev.Snapshot...)
		}
	}))
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(snap) != 1 || snap[0] != 42 {
		t.Errorf("fork snapshot = %v, want [42]", snap)
	}
}

func TestChecksumDetectsDifferentWrites(t *testing.T) {
	build := func(v int64) *ir.Program {
		b := ir.NewFuncBuilder("main", 0)
		g, r := b.NewReg(), b.NewReg()
		b.Block("entry")
		b.GAddr(g, "x")
		b.MovI(r, v)
		b.Store(g, 0, r)
		b.Ret(r)
		return ir.NewProgramBuilder("main").AddFunc(b.Done()).AddGlobal("x", 1).Done()
	}
	r1 := mustRun(t, build(1))
	r2 := mustRun(t, build(2))
	r1b := mustRun(t, build(1))
	if r1.MemChecksum == r2.MemChecksum {
		t.Error("checksums collide for different writes")
	}
	if r1.MemChecksum != r1b.MemChecksum {
		t.Error("checksum not deterministic")
	}
}

func TestGlobalInit(t *testing.T) {
	b := ir.NewFuncBuilder("main", 0)
	g, v := b.NewReg(), b.NewReg()
	b.Block("entry")
	b.GAddr(g, "data")
	b.Load(v, g, 2)
	b.Ret(v)
	p := ir.NewProgramBuilder("main").AddFunc(b.Done()).
		AddGlobal("data", 4, 10, 20, 30).Done()
	res := mustRun(t, p)
	if res.Ret != 30 {
		t.Errorf("Ret = %d, want 30", res.Ret)
	}
}

func TestProgramHelpers(t *testing.T) {
	p := buildSum(1)
	lp, err := Load(p)
	if err != nil {
		t.Fatal(err)
	}
	if lp.FuncIndex("main") != 0 || lp.FuncIndex("nosuch") != -1 {
		t.Error("FuncIndex wrong")
	}
	fi := lp.FuncIndex("main")
	if lp.LabelIndex(fi, "head") != 1 || lp.LabelIndex(fi, "nosuch") != -1 {
		t.Error("LabelIndex wrong")
	}
	if lp.BlockStart(fi, 0) != 0 {
		t.Error("BlockStart wrong")
	}
	if lp.BlockOf(fi, 0) != 0 {
		t.Error("BlockOf wrong")
	}
}
