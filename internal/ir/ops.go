package ir

import "fmt"

// Op enumerates the IR opcodes.
type Op uint8

// Opcode set. Arithmetic operates on int64 words. Cmp* write 0 or 1.
const (
	Nop Op = iota

	// Data movement.
	Mov  // Dst = A
	MovI // Dst = Imm

	// Integer arithmetic: Dst = A <op> B.
	Add
	Sub
	Mul
	Div // trap-free: x/0 == 0 (keeps the interpreter total)
	Rem // trap-free: x%0 == 0
	And
	Or
	Xor
	Shl // shift counts are masked to 0..63
	Shr // arithmetic shift right, masked count

	// AddI: Dst = A + Imm (common enough to deserve one opcode).
	AddI
	// MulI: Dst = A * Imm.
	MulI

	// Comparisons: Dst = (A <op> B) ? 1 : 0.
	CmpEQ
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE

	// Memory: word addressed. Load: Dst = Mem[A+Imm]. Store: Mem[A+Imm] = B.
	Load
	Store

	// GAddr: Dst = address of the global named Target.
	GAddr

	// Heap: Alloc: Dst = address of a fresh block of A words (or Imm words
	// when A == NoReg). Free releases the block at address A.
	Alloc
	Free

	// Control flow. Br: if A != 0 goto Target else goto Target2. Jmp: goto
	// Target. Both are block terminators; Ret returns A to the caller.
	Br
	Jmp
	Call // Dst = Target(Args...)
	Ret  // return A (A may be NoReg for "return 0")

	// Thread-level speculation hooks (Section 3.1). SptFork forks a
	// speculative thread at the block labelled Target; SptKill kills any
	// running speculative thread. Sequentially both are no-ops.
	SptFork
	SptKill

	numOps
)

// NoReg marks an absent register operand.
const NoReg Reg = 0xFFFF

// Reg is a virtual register index local to a function.
type Reg uint16

func (r Reg) String() string {
	if r == NoReg {
		return "_"
	}
	return fmt.Sprintf("r%d", uint16(r))
}

// opInfo is static per-opcode metadata.
type opInfo struct {
	name    string
	latency int  // base execution latency in cycles (loads add cache time)
	hasDst  bool // writes Dst
	nsrc    int  // number of register sources among {A, B}
	term    bool // block terminator
}

var opTable = [numOps]opInfo{
	Nop:     {"nop", 1, false, 0, false},
	Mov:     {"mov", 1, true, 1, false},
	MovI:    {"movi", 1, true, 0, false},
	Add:     {"add", 1, true, 2, false},
	Sub:     {"sub", 1, true, 2, false},
	Mul:     {"mul", 3, true, 2, false},
	Div:     {"div", 12, true, 2, false},
	Rem:     {"rem", 12, true, 2, false},
	And:     {"and", 1, true, 2, false},
	Or:      {"or", 1, true, 2, false},
	Xor:     {"xor", 1, true, 2, false},
	Shl:     {"shl", 1, true, 2, false},
	Shr:     {"shr", 1, true, 2, false},
	AddI:    {"addi", 1, true, 1, false},
	MulI:    {"muli", 3, true, 1, false},
	CmpEQ:   {"cmpeq", 1, true, 2, false},
	CmpNE:   {"cmpne", 1, true, 2, false},
	CmpLT:   {"cmplt", 1, true, 2, false},
	CmpLE:   {"cmple", 1, true, 2, false},
	CmpGT:   {"cmpgt", 1, true, 2, false},
	CmpGE:   {"cmpge", 1, true, 2, false},
	Load:    {"load", 1, true, 1, false},
	Store:   {"store", 1, false, 2, false},
	GAddr:   {"gaddr", 1, true, 0, false},
	Alloc:   {"alloc", 20, true, 1, false},
	Free:    {"free", 20, false, 1, false},
	Br:      {"br", 1, false, 1, true},
	Jmp:     {"jmp", 1, false, 0, true},
	Call:    {"call", 1, true, 0, false},
	Ret:     {"ret", 1, false, 1, true},
	SptFork: {"spt_fork", 1, false, 0, false},
	SptKill: {"spt_kill", 1, false, 0, false},
}

// String returns the mnemonic of the opcode.
func (op Op) String() string {
	if int(op) < len(opTable) && opTable[op].name != "" {
		return opTable[op].name
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Latency returns the base execution latency of the opcode in cycles. Loads
// additionally pay the cache hierarchy's access time in the simulator.
func (op Op) Latency() int { return opTable[op].latency }

// HasDst reports whether the opcode writes its Dst register.
func (op Op) HasDst() bool { return opTable[op].hasDst }

// NumSrc returns how many of {A, B} are register sources for the opcode.
// Call sources live in Args instead.
func (op Op) NumSrc() int { return opTable[op].nsrc }

// IsTerminator reports whether the opcode must end a basic block.
func (op Op) IsTerminator() bool { return opTable[op].term }

// IsMem reports whether the opcode accesses memory.
func (op Op) IsMem() bool { return op == Load || op == Store }

// IsPure reports whether the instruction has no side effects beyond writing
// Dst: such instructions may be duplicated or reordered freely subject to
// data dependences. Calls, memory operations, heap ops, control flow and the
// SPT hooks are impure.
func (op Op) IsPure() bool {
	switch op {
	case Mov, MovI, Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr,
		AddI, MulI, CmpEQ, CmpNE, CmpLT, CmpLE, CmpGT, CmpGE, GAddr:
		return true
	}
	return false
}

// EvalALU computes the result of a pure two-source ALU operation. It is the
// single source of truth for arithmetic semantics, shared by the interpreter
// and by constant folding in the compiler. A non-ALU opcode returns an
// error; validated programs never trigger it, but callers fed by untrusted
// input (or the interpreter, defensively) surface it instead of panicking.
func EvalALU(op Op, a, b int64) (int64, error) {
	switch op {
	case Add:
		return a + b, nil
	case Sub:
		return a - b, nil
	case Mul:
		return a * b, nil
	case Div:
		if b == 0 {
			return 0, nil
		}
		if a == -1<<63 && b == -1 {
			return a, nil // match hardware wraparound, avoid Go panic
		}
		return a / b, nil
	case Rem:
		if b == 0 {
			return 0, nil
		}
		if a == -1<<63 && b == -1 {
			return 0, nil
		}
		return a % b, nil
	case And:
		return a & b, nil
	case Or:
		return a | b, nil
	case Xor:
		return a ^ b, nil
	case Shl:
		return a << (uint64(b) & 63), nil
	case Shr:
		return a >> (uint64(b) & 63), nil
	case CmpEQ:
		return b2i(a == b), nil
	case CmpNE:
		return b2i(a != b), nil
	case CmpLT:
		return b2i(a < b), nil
	case CmpLE:
		return b2i(a <= b), nil
	case CmpGT:
		return b2i(a > b), nil
	case CmpGE:
		return b2i(a >= b), nil
	}
	return 0, fmt.Errorf("ir: EvalALU on non-ALU op %v", op)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
