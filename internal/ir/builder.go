package ir

import "fmt"

// FuncBuilder constructs a Func block by block. All emit methods append to
// the current block; starting a new block requires the previous one (if any)
// to have been terminated.
type FuncBuilder struct {
	f   *Func
	cur *Block
}

// NewFuncBuilder starts building a function with the given name and number
// of parameters (which occupy registers 0..numParams-1).
func NewFuncBuilder(name string, numParams int) *FuncBuilder {
	return &FuncBuilder{f: &Func{Name: name, NumParams: numParams, NumRegs: numParams}}
}

// Param returns the register holding the i-th parameter.
func (b *FuncBuilder) Param(i int) Reg {
	if i < 0 || i >= b.f.NumParams {
		panic(fmt.Sprintf("ir: param %d out of range for %s", i, b.f.Name))
	}
	return Reg(i)
}

// NewReg allocates a fresh virtual register.
func (b *FuncBuilder) NewReg() Reg { return b.f.NewReg() }

// Block starts a new basic block with the given label.
func (b *FuncBuilder) Block(label string) {
	if b.cur != nil && !b.curTerminated() {
		panic(fmt.Sprintf("ir: block %q of %s not terminated before starting %q",
			b.cur.Label, b.f.Name, label))
	}
	b.cur = &Block{Label: label}
	b.f.Blocks = append(b.f.Blocks, b.cur)
}

func (b *FuncBuilder) curTerminated() bool {
	return len(b.cur.Instrs) > 0 && b.cur.Term().Op.IsTerminator()
}

func (b *FuncBuilder) emit(in Instr) {
	if b.cur == nil {
		panic("ir: emit before first block in " + b.f.Name)
	}
	if b.curTerminated() {
		panic(fmt.Sprintf("ir: emit after terminator in block %q of %s", b.cur.Label, b.f.Name))
	}
	b.cur.Instrs = append(b.cur.Instrs, in)
}

// Emit appends a raw instruction to the current block.
func (b *FuncBuilder) Emit(in Instr) { b.emit(in) }

// Nop emits a no-op.
func (b *FuncBuilder) Nop() { b.emit(Instr{Op: Nop, Dst: NoReg, A: NoReg, B: NoReg}) }

// Mov emits dst = a.
func (b *FuncBuilder) Mov(dst, a Reg) { b.emit(Instr{Op: Mov, Dst: dst, A: a, B: NoReg}) }

// MovI emits dst = imm.
func (b *FuncBuilder) MovI(dst Reg, imm int64) {
	b.emit(Instr{Op: MovI, Dst: dst, A: NoReg, B: NoReg, Imm: imm})
}

// ALU emits dst = a <op> b for a two-source ALU op.
func (b *FuncBuilder) ALU(op Op, dst, a, src2 Reg) {
	if !op.IsPure() || op.NumSrc() != 2 {
		panic(fmt.Sprintf("ir: ALU with non-ALU op %v", op))
	}
	b.emit(Instr{Op: op, Dst: dst, A: a, B: src2})
}

// AddI emits dst = a + imm.
func (b *FuncBuilder) AddI(dst, a Reg, imm int64) {
	b.emit(Instr{Op: AddI, Dst: dst, A: a, B: NoReg, Imm: imm})
}

// MulI emits dst = a * imm.
func (b *FuncBuilder) MulI(dst, a Reg, imm int64) {
	b.emit(Instr{Op: MulI, Dst: dst, A: a, B: NoReg, Imm: imm})
}

// Load emits dst = Mem[base+off].
func (b *FuncBuilder) Load(dst, base Reg, off int64) {
	b.emit(Instr{Op: Load, Dst: dst, A: base, B: NoReg, Imm: off})
}

// Store emits Mem[base+off] = val.
func (b *FuncBuilder) Store(base Reg, off int64, val Reg) {
	b.emit(Instr{Op: Store, Dst: NoReg, A: base, B: val, Imm: off})
}

// GAddr emits dst = &global.
func (b *FuncBuilder) GAddr(dst Reg, global string) {
	b.emit(Instr{Op: GAddr, Dst: dst, A: NoReg, B: NoReg, Target: global})
}

// Alloc emits dst = alloc(size register) — a fresh heap block of that many words.
func (b *FuncBuilder) Alloc(dst, size Reg) {
	b.emit(Instr{Op: Alloc, Dst: dst, A: size, B: NoReg})
}

// AllocI emits dst = alloc(words).
func (b *FuncBuilder) AllocI(dst Reg, words int64) {
	b.emit(Instr{Op: Alloc, Dst: dst, A: NoReg, B: NoReg, Imm: words})
}

// Free emits free(addr).
func (b *FuncBuilder) Free(addr Reg) {
	b.emit(Instr{Op: Free, Dst: NoReg, A: addr, B: NoReg})
}

// Br emits: if cond != 0 goto then else goto els. Terminates the block.
func (b *FuncBuilder) Br(cond Reg, then, els string) {
	b.emit(Instr{Op: Br, Dst: NoReg, A: cond, B: NoReg, Target: then, Target2: els})
}

// Jmp emits an unconditional jump. Terminates the block.
func (b *FuncBuilder) Jmp(label string) {
	b.emit(Instr{Op: Jmp, Dst: NoReg, A: NoReg, B: NoReg, Target: label})
}

// Call emits dst = callee(args...).
func (b *FuncBuilder) Call(dst Reg, callee string, args ...Reg) {
	b.emit(Instr{Op: Call, Dst: dst, A: NoReg, B: NoReg, Target: callee,
		Args: append([]Reg(nil), args...)})
}

// Ret emits a return of register a (pass NoReg to return 0). Terminates the
// block.
func (b *FuncBuilder) Ret(a Reg) {
	b.emit(Instr{Op: Ret, Dst: NoReg, A: a, B: NoReg})
}

// SptFork emits a speculative-thread fork whose start-point is the block
// labelled start.
func (b *FuncBuilder) SptFork(start string) {
	b.emit(Instr{Op: SptFork, Dst: NoReg, A: NoReg, B: NoReg, Target: start})
}

// SptKill emits a speculative-thread kill.
func (b *FuncBuilder) SptKill() {
	b.emit(Instr{Op: SptKill, Dst: NoReg, A: NoReg, B: NoReg})
}

// Done finalizes and returns the function.
func (b *FuncBuilder) Done() *Func {
	if b.cur == nil {
		panic("ir: Done on empty function " + b.f.Name)
	}
	if !b.curTerminated() {
		panic(fmt.Sprintf("ir: block %q of %s not terminated at Done", b.cur.Label, b.f.Name))
	}
	b.f.Finalize()
	return b.f
}

// ProgramBuilder assembles a Program from functions and globals.
type ProgramBuilder struct {
	p *Program
}

// NewProgramBuilder starts a program whose entry function has the given name.
func NewProgramBuilder(entry string) *ProgramBuilder {
	return &ProgramBuilder{p: &Program{Entry: entry}}
}

// AddFunc adds a finished function.
func (pb *ProgramBuilder) AddFunc(f *Func) *ProgramBuilder {
	pb.p.Funcs = append(pb.p.Funcs, f)
	return pb
}

// AddGlobal declares a global of the given size in words.
func (pb *ProgramBuilder) AddGlobal(name string, size int64, init ...int64) *ProgramBuilder {
	pb.p.Globals = append(pb.p.Globals, Global{Name: name, Size: size, Init: init})
	return pb
}

// Done finalizes and returns the program.
func (pb *ProgramBuilder) Done() *Program {
	pb.p.Finalize()
	return pb.p
}
