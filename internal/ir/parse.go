package ir

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
)

// Parse reads the textual IR produced by Program.Disasm back into a
// Program. The grammar, line-oriented:
//
//	.entry <func>
//	.global <name> <size>
//	.init <v0> <v1> ...            ; appends to the preceding .global
//	func <name>(params=<n>, regs=<m>):
//	<label>:
//	    [<id>:] <op> <operands>
//	; comments run to end of line
//
// Instruction ids are informational and ignored. The returned program is
// finalized and validated.
func Parse(text string) (*Program, error) {
	ps := &parseState{p: &Program{}}
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := ps.line(line); err != nil {
			return nil, fmt.Errorf("ir: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ir: %w", err)
	}
	if err := ps.finishFunc(); err != nil {
		return nil, err
	}
	ps.p.Finalize()
	if err := ps.p.Validate(); err != nil {
		return nil, err
	}
	return ps.p, nil
}

type parseState struct {
	p     *Program
	f     *Func
	blk   *Block
	gLast *Global // receiver for .init lines
}

func (ps *parseState) line(line string) error {
	switch {
	case strings.HasPrefix(line, ".entry "):
		ps.p.Entry = strings.TrimSpace(strings.TrimPrefix(line, ".entry "))
		return nil
	case strings.HasPrefix(line, ".global "):
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return fmt.Errorf(".global wants name and size")
		}
		size, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return fmt.Errorf("bad global size %q", fields[2])
		}
		ps.p.Globals = append(ps.p.Globals, Global{Name: fields[1], Size: size})
		ps.gLast = &ps.p.Globals[len(ps.p.Globals)-1]
		return nil
	case strings.HasPrefix(line, ".init"):
		if ps.gLast == nil {
			return fmt.Errorf(".init without a preceding .global")
		}
		for _, tok := range strings.Fields(line)[1:] {
			v, err := strconv.ParseInt(tok, 10, 64)
			if err != nil {
				return fmt.Errorf("bad init value %q", tok)
			}
			ps.gLast.Init = append(ps.gLast.Init, v)
		}
		return nil
	case strings.HasPrefix(line, "func "):
		if err := ps.finishFunc(); err != nil {
			return err
		}
		return ps.funcHeader(line)
	case strings.HasSuffix(line, ":") && !strings.ContainsAny(line, " \t"):
		if ps.f == nil {
			return fmt.Errorf("label outside a function")
		}
		ps.blk = &Block{Label: strings.TrimSuffix(line, ":")}
		ps.f.Blocks = append(ps.f.Blocks, ps.blk)
		return nil
	default:
		if ps.blk == nil {
			return fmt.Errorf("instruction outside a block: %q", line)
		}
		in, err := parseInstr(line)
		if err != nil {
			return err
		}
		ps.blk.Instrs = append(ps.blk.Instrs, in)
		return nil
	}
}

func (ps *parseState) funcHeader(line string) error {
	// func name(params=N, regs=M):
	rest := strings.TrimPrefix(line, "func ")
	open := strings.IndexByte(rest, '(')
	closeP := strings.LastIndexByte(rest, ')')
	if open < 0 || closeP < open || !strings.HasSuffix(strings.TrimSpace(rest), ":") {
		return fmt.Errorf("malformed func header %q", line)
	}
	name := strings.TrimSpace(rest[:open])
	var params, regs int
	for _, kv := range strings.Split(rest[open+1:closeP], ",") {
		kv = strings.TrimSpace(kv)
		switch {
		case strings.HasPrefix(kv, "params="):
			fmt.Sscanf(kv, "params=%d", &params)
		case strings.HasPrefix(kv, "regs="):
			fmt.Sscanf(kv, "regs=%d", &regs)
		default:
			return fmt.Errorf("unknown func attribute %q", kv)
		}
	}
	ps.f = &Func{Name: name, NumParams: params, NumRegs: regs}
	ps.blk = nil
	return nil
}

func (ps *parseState) finishFunc() error {
	if ps.f == nil {
		return nil
	}
	if len(ps.f.Blocks) == 0 {
		return fmt.Errorf("function %s has no blocks", ps.f.Name)
	}
	ps.p.Funcs = append(ps.p.Funcs, ps.f)
	ps.f = nil
	ps.blk = nil
	return nil
}

// parseInstr parses "  12: op a, b, c" (the id prefix is optional).
func parseInstr(line string) (Instr, error) {
	// Strip an optional "<num>:" id prefix.
	if i := strings.IndexByte(line, ':'); i >= 0 {
		if _, err := strconv.Atoi(strings.TrimSpace(line[:i])); err == nil {
			line = strings.TrimSpace(line[i+1:])
		}
	}
	sp := strings.IndexAny(line, " \t")
	mnem, rest := line, ""
	if sp >= 0 {
		mnem, rest = line[:sp], strings.TrimSpace(line[sp+1:])
	}
	op, ok := opByName(mnem)
	if !ok {
		return Instr{}, fmt.Errorf("unknown opcode %q", mnem)
	}
	in := Instr{Op: op, Dst: NoReg, A: NoReg, B: NoReg}
	args := splitOperands(rest)
	argN := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s wants %d operands, got %d (%q)", mnem, n, len(args), rest)
		}
		return nil
	}
	var err error
	switch op {
	case Nop, SptKill:
		return in, argN(0)
	case Mov:
		if err = argN(2); err != nil {
			return in, err
		}
		in.Dst, err = parseReg(args[0])
		if err == nil {
			in.A, err = parseReg(args[1])
		}
		return in, err
	case MovI:
		if err = argN(2); err != nil {
			return in, err
		}
		in.Dst, err = parseReg(args[0])
		if err == nil {
			in.Imm, err = strconv.ParseInt(args[1], 10, 64)
		}
		return in, err
	case AddI, MulI:
		if err = argN(3); err != nil {
			return in, err
		}
		in.Dst, err = parseReg(args[0])
		if err == nil {
			in.A, err = parseReg(args[1])
		}
		if err == nil {
			in.Imm, err = strconv.ParseInt(args[2], 10, 64)
		}
		return in, err
	case Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr,
		CmpEQ, CmpNE, CmpLT, CmpLE, CmpGT, CmpGE:
		if err = argN(3); err != nil {
			return in, err
		}
		in.Dst, err = parseReg(args[0])
		if err == nil {
			in.A, err = parseReg(args[1])
		}
		if err == nil {
			in.B, err = parseReg(args[2])
		}
		return in, err
	case Load:
		if err = argN(2); err != nil {
			return in, err
		}
		in.Dst, err = parseReg(args[0])
		if err == nil {
			in.A, in.Imm, err = parseAddr(args[1])
		}
		return in, err
	case Store:
		if err = argN(2); err != nil {
			return in, err
		}
		in.A, in.Imm, err = parseAddr(args[0])
		if err == nil {
			in.B, err = parseReg(args[1])
		}
		return in, err
	case GAddr:
		if err = argN(2); err != nil {
			return in, err
		}
		in.Dst, err = parseReg(args[0])
		if err == nil {
			if !strings.HasPrefix(args[1], "&") {
				return in, fmt.Errorf("gaddr wants &global, got %q", args[1])
			}
			in.Target = args[1][1:]
		}
		return in, err
	case Alloc:
		if err = argN(2); err != nil {
			return in, err
		}
		in.Dst, err = parseReg(args[0])
		if err != nil {
			return in, err
		}
		if r, rerr := parseReg(args[1]); rerr == nil {
			in.A = r
			return in, nil
		}
		in.Imm, err = strconv.ParseInt(args[1], 10, 64)
		return in, err
	case Free:
		if err = argN(1); err != nil {
			return in, err
		}
		in.A, err = parseReg(args[0])
		return in, err
	case Br:
		if err = argN(3); err != nil {
			return in, err
		}
		in.A, err = parseReg(args[0])
		in.Target, in.Target2 = args[1], args[2]
		return in, err
	case Jmp, SptFork:
		if err = argN(1); err != nil {
			return in, err
		}
		in.Target = args[0]
		return in, nil
	case Call:
		// dst, callee(r1, r2, ...)
		if len(args) < 2 {
			return in, fmt.Errorf("call wants dst and callee(...)")
		}
		in.Dst, err = parseReg(args[0])
		if err != nil {
			return in, err
		}
		calleePart := strings.Join(args[1:], ", ")
		open := strings.IndexByte(calleePart, '(')
		closeP := strings.LastIndexByte(calleePart, ')')
		if open < 0 || closeP < open {
			return in, fmt.Errorf("malformed call %q", rest)
		}
		in.Target = strings.TrimSpace(calleePart[:open])
		inner := strings.TrimSpace(calleePart[open+1 : closeP])
		if inner != "" {
			for _, a := range strings.Split(inner, ",") {
				r, rerr := parseReg(strings.TrimSpace(a))
				if rerr != nil {
					return in, rerr
				}
				in.Args = append(in.Args, r)
			}
		}
		return in, nil
	case Ret:
		if err = argN(1); err != nil {
			return in, err
		}
		if args[0] == "_" {
			in.A = NoReg
			return in, nil
		}
		in.A, err = parseReg(args[0])
		return in, err
	}
	return in, fmt.Errorf("unhandled opcode %q", mnem)
}

// splitOperands splits on top-level commas; parenthesised call argument
// lists are kept intact only as far as splitting is concerned (the call
// handler re-joins them).
func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseReg(s string) (Reg, error) {
	if s == "_" {
		return NoReg, nil
	}
	if !strings.HasPrefix(s, "r") {
		return NoReg, fmt.Errorf("expected register, got %q", s)
	}
	n, err := strconv.ParseUint(s[1:], 10, 16)
	if err != nil {
		return NoReg, fmt.Errorf("bad register %q", s)
	}
	return Reg(n), nil
}

// parseAddr parses "[rN]", "[rN+k]" or "[rN-k]".
func parseAddr(s string) (Reg, int64, error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return NoReg, 0, fmt.Errorf("expected [base±off], got %q", s)
	}
	inner := s[1 : len(s)-1]
	split := -1
	for i := 1; i < len(inner); i++ { // skip the 'r' at 0
		if inner[i] == '+' || inner[i] == '-' {
			split = i
			break
		}
	}
	if split < 0 {
		r, err := parseReg(inner)
		return r, 0, err
	}
	r, err := parseReg(inner[:split])
	if err != nil {
		return NoReg, 0, err
	}
	off, err := strconv.ParseInt(inner[split:], 10, 64)
	if err != nil {
		return NoReg, 0, fmt.Errorf("bad offset in %q", s)
	}
	return r, off, nil
}

var nameToOp = func() map[string]Op {
	m := make(map[string]Op, int(numOps))
	for op := Nop; op < numOps; op++ {
		m[op.String()] = op
	}
	return m
}()

func opByName(name string) (Op, bool) {
	op, ok := nameToOp[name]
	return op, ok
}
