package ir

import (
	"fmt"
	"strings"
)

// Instr is a single IR instruction. The operand fields used depend on Op;
// unused register fields must be NoReg. ID is assigned by Func.Finalize and
// is unique and dense within the function (it indexes Func.Linear).
type Instr struct {
	Op      Op
	Dst     Reg
	A, B    Reg
	Imm     int64
	Target  string // branch/jmp/fork target label, call target function, or global name
	Target2 string // Br only: the not-taken successor label
	Args    []Reg  // Call only: argument registers
	ID      int    // dense per-function instruction id (set by Finalize)
}

// Uses appends the registers read by the instruction to dst and returns it.
func (in *Instr) Uses(dst []Reg) []Reg {
	n := in.Op.NumSrc()
	if n >= 1 && in.A != NoReg {
		dst = append(dst, in.A)
	}
	if n >= 2 && in.B != NoReg {
		dst = append(dst, in.B)
	}
	if in.Op == Call {
		dst = append(dst, in.Args...)
	}
	return dst
}

// Def returns the register written by the instruction, or NoReg.
func (in *Instr) Def() Reg {
	if in.Op.HasDst() {
		return in.Dst
	}
	return NoReg
}

// fmtAddr renders a base+offset memory operand ("r3", "r3+8", "r3-1").
func fmtAddr(base Reg, off int64) string {
	switch {
	case off == 0:
		return base.String()
	case off > 0:
		return fmt.Sprintf("%v+%d", base, off)
	default:
		return fmt.Sprintf("%v%d", base, off)
	}
}

// String renders the instruction in the textual IR syntax (see Parse).
func (in *Instr) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s ", in.Op)
	switch in.Op {
	case Nop, SptKill:
	case Mov:
		fmt.Fprintf(&b, "%v, %v", in.Dst, in.A)
	case MovI:
		fmt.Fprintf(&b, "%v, %d", in.Dst, in.Imm)
	case AddI, MulI:
		fmt.Fprintf(&b, "%v, %v, %d", in.Dst, in.A, in.Imm)
	case Load:
		fmt.Fprintf(&b, "%v, [%s]", in.Dst, fmtAddr(in.A, in.Imm))
	case Store:
		fmt.Fprintf(&b, "[%s], %v", fmtAddr(in.A, in.Imm), in.B)
	case GAddr:
		fmt.Fprintf(&b, "%v, &%s", in.Dst, in.Target)
	case Alloc:
		if in.A == NoReg {
			fmt.Fprintf(&b, "%v, %d", in.Dst, in.Imm)
		} else {
			fmt.Fprintf(&b, "%v, %v", in.Dst, in.A)
		}
	case Free:
		fmt.Fprintf(&b, "%v", in.A)
	case Br:
		fmt.Fprintf(&b, "%v, %s, %s", in.A, in.Target, in.Target2)
	case Jmp, SptFork:
		fmt.Fprintf(&b, "%s", in.Target)
	case Call:
		args := make([]string, len(in.Args))
		for i, r := range in.Args {
			args[i] = r.String()
		}
		fmt.Fprintf(&b, "%v, %s(%s)", in.Dst, in.Target, strings.Join(args, ", "))
	case Ret:
		fmt.Fprintf(&b, "%v", in.A)
	default:
		fmt.Fprintf(&b, "%v, %v, %v", in.Dst, in.A, in.B)
	}
	return strings.TrimRight(b.String(), " ")
}

// Block is a basic block: zero or more non-terminator instructions followed
// by exactly one terminator (Br, Jmp or Ret).
type Block struct {
	Label  string
	Instrs []Instr
}

// Term returns the block's terminator instruction.
func (b *Block) Term() *Instr { return &b.Instrs[len(b.Instrs)-1] }

// Succs appends the labels of the block's successors to dst and returns it.
func (b *Block) Succs(dst []string) []string {
	t := b.Term()
	switch t.Op {
	case Br:
		return append(dst, t.Target, t.Target2)
	case Jmp:
		return append(dst, t.Target)
	}
	return dst
}

// InstrRef identifies one instruction inside a function by position.
type InstrRef struct {
	Block int // index into Func.Blocks
	Index int // index into Block.Instrs
}

// Func is an IR function. Parameters arrive in registers 0..NumParams-1; the
// return value is passed through Ret.
type Func struct {
	Name      string
	NumParams int
	NumRegs   int
	Blocks    []*Block

	// Derived by Finalize:
	blockIdx map[string]int // label -> Blocks index
	Linear   []InstrRef     // instruction id -> position
}

// NumInstrs returns the total instruction count of the function.
func (f *Func) NumInstrs() int { return len(f.Linear) }

// BlockIndex returns the index of the block with the given label, or -1.
func (f *Func) BlockIndex(label string) int {
	if i, ok := f.blockIdx[label]; ok {
		return i
	}
	return -1
}

// BlockByLabel returns the block with the given label, or nil.
func (f *Func) BlockByLabel(label string) *Block {
	if i, ok := f.blockIdx[label]; ok {
		return f.Blocks[i]
	}
	return nil
}

// InstrByID returns a pointer to the instruction with the given id.
func (f *Func) InstrByID(id int) *Instr {
	ref := f.Linear[id]
	return &f.Blocks[ref.Block].Instrs[ref.Index]
}

// Finalize (re)computes the block index and dense instruction ids. It must
// be called after any structural mutation and before validation, execution
// or analysis.
func (f *Func) Finalize() {
	f.blockIdx = make(map[string]int, len(f.Blocks))
	for i, b := range f.Blocks {
		f.blockIdx[b.Label] = i
	}
	f.Linear = f.Linear[:0]
	id := 0
	for bi, b := range f.Blocks {
		for ii := range b.Instrs {
			b.Instrs[ii].ID = id
			f.Linear = append(f.Linear, InstrRef{Block: bi, Index: ii})
			id++
		}
	}
}

// Clone returns a deep copy of the function (Finalize already applied).
func (f *Func) Clone() *Func {
	nf := &Func{Name: f.Name, NumParams: f.NumParams, NumRegs: f.NumRegs}
	nf.Blocks = make([]*Block, len(f.Blocks))
	for i, b := range f.Blocks {
		nb := &Block{Label: b.Label, Instrs: make([]Instr, len(b.Instrs))}
		copy(nb.Instrs, b.Instrs)
		for j := range nb.Instrs {
			if len(nb.Instrs[j].Args) > 0 {
				nb.Instrs[j].Args = append([]Reg(nil), nb.Instrs[j].Args...)
			}
		}
		nf.Blocks[i] = nb
	}
	nf.Finalize()
	return nf
}

// NewReg allocates a fresh virtual register.
func (f *Func) NewReg() Reg {
	r := Reg(f.NumRegs)
	f.NumRegs++
	return r
}

// Global is a named region of statically allocated words.
type Global struct {
	Name string
	Size int64   // in words
	Init []int64 // optional initial contents (len <= Size)
}

// Program is a complete IR program: an entry function, callees and globals.
type Program struct {
	Funcs   []*Func
	Globals []Global
	Entry   string // entry function name; it takes no parameters

	funcIdx map[string]int
}

// Func returns the function with the given name, or nil.
func (p *Program) Func(name string) *Func {
	if i, ok := p.funcIdx[name]; ok {
		return p.Funcs[i]
	}
	return nil
}

// EntryFunc returns the entry function.
func (p *Program) EntryFunc() *Func { return p.Func(p.Entry) }

// Finalize finalizes every function and rebuilds the function index.
func (p *Program) Finalize() {
	p.funcIdx = make(map[string]int, len(p.Funcs))
	for i, f := range p.Funcs {
		f.Finalize()
		p.funcIdx[f.Name] = i
	}
}

// Clone returns a deep copy of the program.
func (p *Program) Clone() *Program {
	np := &Program{Entry: p.Entry}
	np.Funcs = make([]*Func, len(p.Funcs))
	for i, f := range p.Funcs {
		np.Funcs[i] = f.Clone()
	}
	np.Globals = make([]Global, len(p.Globals))
	for i, g := range p.Globals {
		ng := g
		ng.Init = append([]int64(nil), g.Init...)
		np.Globals[i] = ng
	}
	np.Finalize()
	return np
}

// NumInstrs returns the total static instruction count across all functions.
func (p *Program) NumInstrs() int {
	n := 0
	for _, f := range p.Funcs {
		n += f.NumInstrs()
	}
	return n
}

// Disasm renders the whole program as assembly-like text. The output is
// the canonical textual IR: Parse reads it back into an equivalent program
// (instruction ids are informational and ignored by the parser).
func (p *Program) Disasm() string {
	var b strings.Builder
	fmt.Fprintf(&b, ".entry %s\n", p.Entry)
	// Globals are emitted in declaration order: their addresses are
	// assigned in this order at load time, so preserving it keeps parsed
	// programs bit-identical in behaviour (not just equivalent).
	for _, g := range p.Globals {
		fmt.Fprintf(&b, ".global %s %d", g.Name, g.Size)
		for i, v := range g.Init {
			if i%12 == 0 {
				b.WriteString("\n.init")
			}
			fmt.Fprintf(&b, " %d", v)
		}
		b.WriteByte('\n')
	}
	for _, f := range p.Funcs {
		fmt.Fprintf(&b, "\nfunc %s(params=%d, regs=%d):\n", f.Name, f.NumParams, f.NumRegs)
		for _, blk := range f.Blocks {
			fmt.Fprintf(&b, "%s:\n", blk.Label)
			for i := range blk.Instrs {
				fmt.Fprintf(&b, "\t%3d: %s\n", blk.Instrs[i].ID, blk.Instrs[i].String())
			}
		}
	}
	return b.String()
}
