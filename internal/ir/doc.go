// Package ir defines the register-based intermediate representation used by
// the whole SPT stack: the sequential interpreter executes it, the profiler
// annotates it, the cost-driven SPT compiler transforms it, and the SPT
// architecture simulator replays its traces.
//
// The IR is deliberately small: a function is a list of basic blocks over a
// pool of virtual registers holding int64 words; memory is a flat int64
// word-addressed space shared by all functions. Two instructions, SptFork
// and SptKill, are the architectural thread-speculation hooks described in
// Section 3.1 of the paper; both are no-ops to the sequential interpreter
// and to the speculative pipeline, exactly as in the SPT machine.
//
// # Errors and panics
//
// The package draws a hard line between user-reachable failures and
// programmer errors:
//
//   - Everything reachable from untrusted input returns an error. Parse
//     rejects malformed text, and every program it accepts has passed
//     Validate. Validate is the single chokepoint for structural problems —
//     unknown labels, unknown callees and globals, out-of-range registers,
//     arity mismatches, missing terminators, and unknown opcodes — so
//     downstream consumers (interpreter, CFG construction, the compiler)
//     may assume a validated program and surface any residual
//     inconsistency as an error, never a panic. EvalALU likewise returns an
//     error when handed a non-ALU opcode.
//
//   - The FuncBuilder and ProgramBuilder panic on misuse (emitting past a
//     terminator, starting a block before terminating the previous one,
//     referencing an out-of-range parameter). Builders are driven by
//     compiled-in code — benchmarks, transformations, tests — where such a
//     call is a bug in this repository, not a property of the input, and
//     failing fast at the broken call site is the most debuggable outcome.
//     Code that assembles programs from external data must go through
//     Parse/Validate instead of the builders.
package ir
