package ir

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestOpMetadata(t *testing.T) {
	for op := Nop; op < numOps; op++ {
		if op.String() == "" || strings.HasPrefix(op.String(), "op(") {
			t.Errorf("op %d has no name", op)
		}
		if op.Latency() <= 0 {
			t.Errorf("%v: non-positive latency %d", op, op.Latency())
		}
	}
	if !Br.IsTerminator() || !Jmp.IsTerminator() || !Ret.IsTerminator() {
		t.Error("branch/jmp/ret must be terminators")
	}
	if Add.IsTerminator() || Store.IsTerminator() {
		t.Error("add/store must not be terminators")
	}
	if !Load.IsMem() || !Store.IsMem() || Add.IsMem() {
		t.Error("IsMem wrong")
	}
	if p := buildCountdown(2); p.NumInstrs() != p.EntryFunc().NumInstrs() {
		t.Error("Program.NumInstrs mismatch for single-function program")
	}
	if !Add.IsPure() || Store.IsPure() || Call.IsPure() || Load.IsPure() {
		t.Error("IsPure wrong")
	}
	if Ret.NumSrc() != 1 || Ret.HasDst() {
		t.Error("Ret metadata wrong")
	}
}

func TestEvalALUBasics(t *testing.T) {
	cases := []struct {
		op   Op
		a, b int64
		want int64
	}{
		{Add, 2, 3, 5},
		{Sub, 2, 3, -1},
		{Mul, -4, 3, -12},
		{Div, 7, 2, 3},
		{Div, 7, 0, 0},
		{Div, math.MinInt64, -1, math.MinInt64},
		{Rem, 7, 2, 1},
		{Rem, 7, 0, 0},
		{Rem, math.MinInt64, -1, 0},
		{And, 6, 3, 2},
		{Or, 6, 3, 7},
		{Xor, 6, 3, 5},
		{Shl, 1, 4, 16},
		{Shl, 1, 64, 1}, // masked count
		{Shr, -8, 1, -4},
		{CmpEQ, 4, 4, 1},
		{CmpNE, 4, 4, 0},
		{CmpLT, 3, 4, 1},
		{CmpLE, 4, 4, 1},
		{CmpGT, 4, 3, 1},
		{CmpGE, 3, 4, 0},
	}
	for _, c := range cases {
		if got := evalOK(t, c.op, c.a, c.b); got != c.want {
			t.Errorf("EvalALU(%v, %d, %d) = %d, want %d", c.op, c.a, c.b, got, c.want)
		}
	}
}

// evalOK is EvalALU for known-ALU opcodes in tests.
func evalOK(t *testing.T, op Op, a, b int64) int64 {
	t.Helper()
	v, err := EvalALU(op, a, b)
	if err != nil {
		t.Fatalf("EvalALU(%v, %d, %d): %v", op, a, b, err)
	}
	return v
}

func TestEvalALUNonALU(t *testing.T) {
	for _, op := range []Op{Nop, Load, Store, Br, Jmp, Call, Ret, SptFork, SptKill, numOps, Op(200)} {
		if _, err := EvalALU(op, 1, 2); err == nil {
			t.Errorf("EvalALU(%v): expected error for non-ALU op", op)
		}
	}
}

func TestEvalALUProperties(t *testing.T) {
	// Comparison ops always produce 0 or 1.
	cmp01 := func(a, b int64) bool {
		for _, op := range []Op{CmpEQ, CmpNE, CmpLT, CmpLE, CmpGT, CmpGE} {
			v := evalOK(t, op, a, b)
			if v != 0 && v != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(cmp01, nil); err != nil {
		t.Error(err)
	}
	// EQ and NE are complementary; LT+GE and GT+LE partition.
	compl := func(a, b int64) bool {
		return evalOK(t, CmpEQ, a, b)+evalOK(t, CmpNE, a, b) == 1 &&
			evalOK(t, CmpLT, a, b)+evalOK(t, CmpGE, a, b) == 1 &&
			evalOK(t, CmpGT, a, b)+evalOK(t, CmpLE, a, b) == 1
	}
	if err := quick.Check(compl, nil); err != nil {
		t.Error(err)
	}
	// Div/Rem identity when defined: a == (a/b)*b + a%b.
	divrem := func(a, b int64) bool {
		if b == 0 || (a == math.MinInt64 && b == -1) {
			return true
		}
		return a == evalOK(t, Div, a, b)*b+evalOK(t, Rem, a, b)
	}
	if err := quick.Check(divrem, nil); err != nil {
		t.Error(err)
	}
}

// buildCountdown builds: main() { s=0; for i=n; i>0; i-- { s+=i }; return s }
func buildCountdown(n int64) *Program {
	b := NewFuncBuilder("main", 0)
	i, s, c := b.NewReg(), b.NewReg(), b.NewReg()
	b.Block("entry")
	b.MovI(i, n)
	b.MovI(s, 0)
	b.Jmp("head")
	b.Block("head")
	b.MovI(c, 0)
	b.ALU(CmpGT, c, i, c)
	b.Br(c, "body", "exit")
	b.Block("body")
	b.ALU(Add, s, s, i)
	b.AddI(i, i, -1)
	b.Jmp("head")
	b.Block("exit")
	b.Ret(s)
	return NewProgramBuilder("main").AddFunc(b.Done()).Done()
}

func TestBuilderAndFinalize(t *testing.T) {
	p := buildCountdown(10)
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	f := p.EntryFunc()
	if f == nil {
		t.Fatal("entry func missing")
	}
	if f.NumInstrs() != 10 {
		t.Fatalf("NumInstrs = %d, want 10", f.NumInstrs())
	}
	// IDs are dense and InstrByID is consistent with Linear.
	for id := 0; id < f.NumInstrs(); id++ {
		if f.InstrByID(id).ID != id {
			t.Fatalf("instr %d has ID %d", id, f.InstrByID(id).ID)
		}
	}
	if f.BlockIndex("head") != 1 || f.BlockIndex("nosuch") != -1 {
		t.Error("BlockIndex wrong")
	}
	if f.BlockByLabel("exit") == nil || f.BlockByLabel("nosuch") != nil {
		t.Error("BlockByLabel wrong")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := buildCountdown(3)
	q := p.Clone()
	q.EntryFunc().Blocks[0].Instrs[0].Imm = 999
	if p.EntryFunc().Blocks[0].Instrs[0].Imm == 999 {
		t.Error("Clone shares instruction storage")
	}
	if err := q.Validate(); err != nil {
		t.Errorf("clone invalid: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	mk := func(mutate func(p *Program)) error {
		p := buildCountdown(1)
		mutate(p)
		p.Finalize()
		return p.Validate()
	}
	cases := []struct {
		name   string
		mutate func(p *Program)
	}{
		{"bad entry", func(p *Program) { p.Entry = "nosuch" }},
		{"unknown label", func(p *Program) {
			p.Funcs[0].Blocks[0].Term().Target = "nosuch"
		}},
		{"register out of range", func(p *Program) {
			p.Funcs[0].Blocks[1].Instrs[0].Dst = 200
		}},
		{"terminator mid-block", func(p *Program) {
			b := p.Funcs[0].Blocks[0]
			b.Instrs[0] = Instr{Op: Ret, A: 0, Dst: NoReg, B: NoReg}
		}},
		{"missing terminator", func(p *Program) {
			b := p.Funcs[0].Blocks[3]
			b.Instrs = []Instr{{Op: Nop, Dst: NoReg, A: NoReg, B: NoReg}}
		}},
		{"unknown callee", func(p *Program) {
			b := p.Funcs[0].Blocks[0]
			b.Instrs = append([]Instr{{Op: Call, Dst: 0, A: NoReg, B: NoReg, Target: "nosuch"}}, b.Instrs...)
		}},
		{"unknown global", func(p *Program) {
			b := p.Funcs[0].Blocks[0]
			b.Instrs = append([]Instr{{Op: GAddr, Dst: 0, A: NoReg, B: NoReg, Target: "nosuch"}}, b.Instrs...)
		}},
		{"duplicate label", func(p *Program) {
			p.Funcs[0].Blocks[1].Label = "entry"
		}},
		{"unknown opcode", func(p *Program) {
			p.Funcs[0].Blocks[0].Instrs[0].Op = numOps + 7
		}},
		{"numOps opcode", func(p *Program) {
			p.Funcs[0].Blocks[0].Instrs[0].Op = numOps
		}},
	}
	for _, c := range cases {
		if err := mk(c.mutate); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestValidateCallArity(t *testing.T) {
	fb := NewFuncBuilder("callee", 2)
	fb.Block("entry")
	fb.Ret(fb.Param(0))
	callee := fb.Done()

	mb := NewFuncBuilder("main", 0)
	r := mb.NewReg()
	mb.Block("entry")
	mb.MovI(r, 1)
	mb.Call(r, "callee", r) // wrong arity: 1 arg for 2 params
	mb.Ret(r)
	p := NewProgramBuilder("main").AddFunc(mb.Done()).AddFunc(callee).Done()
	if err := p.Validate(); err == nil {
		t.Error("expected arity error")
	}
}

func TestDisasmContainsStructure(t *testing.T) {
	p := buildCountdown(5)
	text := p.Disasm()
	for _, want := range []string{"func main", "entry:", "head:", "body:", "exit:", "cmpgt", "ret"} {
		if !strings.Contains(text, want) {
			t.Errorf("disasm missing %q in:\n%s", want, text)
		}
	}
}

func TestInstrUsesAndDef(t *testing.T) {
	in := Instr{Op: Add, Dst: 3, A: 1, B: 2}
	uses := in.Uses(nil)
	if len(uses) != 2 || uses[0] != 1 || uses[1] != 2 {
		t.Errorf("Uses = %v", uses)
	}
	if in.Def() != 3 {
		t.Errorf("Def = %v", in.Def())
	}
	st := Instr{Op: Store, Dst: NoReg, A: 4, B: 5}
	if st.Def() != NoReg {
		t.Error("store must not define")
	}
	call := Instr{Op: Call, Dst: 1, A: NoReg, B: NoReg, Target: "f", Args: []Reg{7, 8}}
	uses = call.Uses(nil)
	if len(uses) != 2 || uses[0] != 7 || uses[1] != 8 {
		t.Errorf("call Uses = %v", uses)
	}
}

func TestBlockSuccs(t *testing.T) {
	p := buildCountdown(1)
	f := p.EntryFunc()
	head := f.BlockByLabel("head")
	succs := head.Succs(nil)
	if len(succs) != 2 || succs[0] != "body" || succs[1] != "exit" {
		t.Errorf("head succs = %v", succs)
	}
	exit := f.BlockByLabel("exit")
	if got := exit.Succs(nil); len(got) != 0 {
		t.Errorf("exit succs = %v", got)
	}
}
