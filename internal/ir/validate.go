package ir

import "fmt"

// Validate checks structural well-formedness of the program: every block has
// exactly one terminator at its end, every control-flow target and call
// target resolves, every register operand is in range, call arities match,
// global references resolve, and the entry function exists and takes no
// parameters. It returns the first problem found.
func (p *Program) Validate() error {
	if p.funcIdx == nil {
		return fmt.Errorf("ir: program not finalized")
	}
	ef := p.Func(p.Entry)
	if ef == nil {
		return fmt.Errorf("ir: entry function %q not found", p.Entry)
	}
	if ef.NumParams != 0 {
		return fmt.Errorf("ir: entry function %q must take no parameters", p.Entry)
	}
	globals := make(map[string]bool, len(p.Globals))
	for _, g := range p.Globals {
		if g.Size <= 0 {
			return fmt.Errorf("ir: global %q has non-positive size %d", g.Name, g.Size)
		}
		if int64(len(g.Init)) > g.Size {
			return fmt.Errorf("ir: global %q init longer than size", g.Name)
		}
		if globals[g.Name] {
			return fmt.Errorf("ir: duplicate global %q", g.Name)
		}
		globals[g.Name] = true
	}
	for _, f := range p.Funcs {
		if err := p.validateFunc(f, globals); err != nil {
			return err
		}
	}
	return nil
}

func (p *Program) validateFunc(f *Func, globals map[string]bool) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("ir: %s: no blocks", f.Name)
	}
	if f.NumParams > f.NumRegs {
		return fmt.Errorf("ir: %s: NumParams %d > NumRegs %d", f.Name, f.NumParams, f.NumRegs)
	}
	seen := make(map[string]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		if seen[b.Label] {
			return fmt.Errorf("ir: %s: duplicate block label %q", f.Name, b.Label)
		}
		seen[b.Label] = true
	}
	ckReg := func(r Reg, in *Instr) error {
		if r == NoReg {
			return fmt.Errorf("ir: %s: missing register operand in %q", f.Name, in.String())
		}
		if int(r) >= f.NumRegs {
			return fmt.Errorf("ir: %s: register %v out of range in %q", f.Name, r, in.String())
		}
		return nil
	}
	ckLabel := func(l string, in *Instr) error {
		if _, ok := f.blockIdx[l]; !ok {
			return fmt.Errorf("ir: %s: unknown label %q in %q", f.Name, l, in.String())
		}
		return nil
	}
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			return fmt.Errorf("ir: %s: empty block %q", f.Name, b.Label)
		}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			// Opcode range first: every later check indexes per-op metadata,
			// so an unknown opcode must be rejected before anything else.
			if in.Op >= numOps || opTable[in.Op].name == "" {
				return fmt.Errorf("ir: %s: unknown opcode %d in block %q", f.Name, uint8(in.Op), b.Label)
			}
			last := i == len(b.Instrs)-1
			if in.Op.IsTerminator() != last {
				if last {
					return fmt.Errorf("ir: %s: block %q does not end in terminator", f.Name, b.Label)
				}
				return fmt.Errorf("ir: %s: terminator %q mid-block in %q", f.Name, in.String(), b.Label)
			}
			if in.Op.HasDst() {
				if err := ckReg(in.Dst, in); err != nil {
					return err
				}
			}
			nsrc := in.Op.NumSrc()
			if nsrc >= 1 && !(in.Op == Alloc && in.A == NoReg) && !(in.Op == Ret && in.A == NoReg) {
				if err := ckReg(in.A, in); err != nil {
					return err
				}
			}
			if nsrc >= 2 {
				if err := ckReg(in.B, in); err != nil {
					return err
				}
			}
			switch in.Op {
			case Br:
				if err := ckLabel(in.Target, in); err != nil {
					return err
				}
				if err := ckLabel(in.Target2, in); err != nil {
					return err
				}
			case Jmp, SptFork:
				if err := ckLabel(in.Target, in); err != nil {
					return err
				}
			case Call:
				callee := p.Func(in.Target)
				if callee == nil {
					return fmt.Errorf("ir: %s: call to unknown function %q", f.Name, in.Target)
				}
				if len(in.Args) != callee.NumParams {
					return fmt.Errorf("ir: %s: call %q passes %d args, %q takes %d",
						f.Name, in.String(), len(in.Args), in.Target, callee.NumParams)
				}
				for _, a := range in.Args {
					if err := ckReg(a, in); err != nil {
						return err
					}
				}
			case GAddr:
				if !globals[in.Target] {
					return fmt.Errorf("ir: %s: unknown global %q in %q", f.Name, in.Target, in.String())
				}
			}
		}
	}
	return nil
}
