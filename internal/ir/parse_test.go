package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseRoundTripSimple(t *testing.T) {
	p := buildCountdown(7)
	text := p.Disasm()
	q, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse: %v\n%s", err, text)
	}
	if q.Disasm() != text {
		t.Errorf("round trip diverged:\n--- original\n%s\n--- reparsed\n%s", text, q.Disasm())
	}
}

func TestParseHandwritten(t *testing.T) {
	src := `
; a tiny complete program
.entry main
.global table 4
.init 10 20 30

func helper(params=1, regs=3):
entry:
	gaddr   r1, &table
	load    r2, [r1+1]
	add     r2, r2, r0
	ret     r2

func main(params=0, regs=4):
entry:
	movi    r0, 5
	call    r1, helper(r0)
	alloc   r2, 2
	store   [r2], r1
	load    r3, [r2-0]
	free    r2
	spt_fork entry2
	jmp     entry2
entry2:
	spt_kill
	ret     r3
`
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.Entry != "main" {
		t.Errorf("entry = %q", p.Entry)
	}
	if len(p.Funcs) != 2 || len(p.Globals) != 1 {
		t.Fatalf("funcs=%d globals=%d", len(p.Funcs), len(p.Globals))
	}
	if g := p.Globals[0]; g.Size != 4 || len(g.Init) != 3 || g.Init[2] != 30 {
		t.Errorf("global = %+v", g)
	}
	// Round-trip the parsed program.
	q, err := Parse(p.Disasm())
	if err != nil {
		t.Fatalf("re-Parse: %v", err)
	}
	if q.Disasm() != p.Disasm() {
		t.Error("hand-written program does not round trip")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unknown op", ".entry m\nfunc m(params=0, regs=1):\ne:\n\tfrobnicate r0\n\tret r0\n"},
		{"bad register", ".entry m\nfunc m(params=0, regs=1):\ne:\n\tmovi q0, 1\n\tret r0\n"},
		{"instr outside block", ".entry m\nfunc m(params=0, regs=1):\n\tmovi r0, 1\n"},
		{"label outside func", "lbl:\n"},
		{"init without global", ".init 1 2 3\n"},
		{"bad operand count", ".entry m\nfunc m(params=0, regs=2):\ne:\n\tadd r0, r1\n\tret r0\n"},
		{"unknown target", ".entry m\nfunc m(params=0, regs=1):\ne:\n\tjmp nowhere\n"},
		{"semantic: reg range", ".entry m\nfunc m(params=0, regs=1):\ne:\n\tmovi r7, 1\n\tret r7\n"},
		{"malformed addr", ".entry m\nfunc m(params=0, regs=2):\ne:\n\tload r0, r1\n\tret r0\n"},
		{"bad func header", ".entry m\nfunc m[params=0]:\ne:\n\tret r0\n"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestParseIgnoresIDsAndComments(t *testing.T) {
	src := `
.entry main
func main(params=0, regs=2):
entry:
	  0: movi r0, 41   ; the answer minus one
	  1: addi r1, r0, 1
	  2: ret  r1
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.EntryFunc().NumInstrs(); got != 3 {
		t.Errorf("instrs = %d", got)
	}
}

func TestParseRoundTripAllOps(t *testing.T) {
	// A program touching every opcode; built with the builder, round-tripped
	// through text.
	b := NewFuncBuilder("callee", 2)
	x := b.NewReg()
	b.Block("entry")
	b.ALU(Sub, x, b.Param(0), b.Param(1))
	b.Ret(x)
	callee := b.Done()

	m := NewFuncBuilder("main", 0)
	r := make([]Reg, 8)
	for i := range r {
		r[i] = m.NewReg()
	}
	m.Block("entry")
	m.Nop()
	m.MovI(r[0], -9)
	m.Mov(r[1], r[0])
	for _, op := range []Op{Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr,
		CmpEQ, CmpNE, CmpLT, CmpLE, CmpGT, CmpGE} {
		m.ALU(op, r[2], r[0], r[1])
	}
	m.AddI(r[3], r[2], 5)
	m.MulI(r[3], r[3], -2)
	m.GAddr(r[4], "g")
	m.Load(r[5], r[4], 1)
	m.Store(r[4], -1, r[5])
	m.Store(r[4], 0, r[5])
	m.AllocI(r[6], 3)
	m.Alloc(r[7], r[6])
	m.Free(r[7])
	m.Free(r[6])
	m.Call(r[5], "callee", r[0], r[1])
	m.SptFork("next")
	m.Jmp("next")
	m.Block("next")
	m.SptKill()
	m.Br(r[5], "next2", "next3")
	m.Block("next2")
	m.Ret(r[5])
	m.Block("next3")
	m.Ret(NoReg)
	p := NewProgramBuilder("main").AddFunc(m.Done()).AddFunc(callee).
		AddGlobal("g", 8, 1, 2, 3).Done()
	if err := p.Validate(); err != nil {
		t.Fatalf("builder program invalid: %v", err)
	}
	text := p.Disasm()
	q, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse: %v\n%s", err, text)
	}
	if q.Disasm() != text {
		t.Errorf("all-ops round trip diverged")
	}
}

func TestParseLongInitLines(t *testing.T) {
	init := make([]int64, 100)
	for i := range init {
		init[i] = int64(i * 3)
	}
	b := NewFuncBuilder("main", 0)
	g, v := b.NewReg(), b.NewReg()
	b.Block("entry")
	b.GAddr(g, "big")
	b.Load(v, g, 99)
	b.Ret(v)
	p := NewProgramBuilder("main").AddFunc(b.Done()).
		AddGlobal("big", 128, init...).Done()
	text := p.Disasm()
	if !strings.Contains(text, ".init") {
		t.Fatal("no .init lines emitted")
	}
	q, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Globals[0].Init[99]; got != 297 {
		t.Errorf("init[99] = %d", got)
	}
}

func TestParseNeverPanicsOnGarbage(t *testing.T) {
	// Parse must reject, not panic, on arbitrary input.
	f := func(s string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = Parse(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	// And on mutated valid programs.
	base := buildCountdown(3).Disasm()
	g := func(pos uint16, repl byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		b := []byte(base)
		b[int(pos)%len(b)] = repl
		_, _ = Parse(string(b))
		return true
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
