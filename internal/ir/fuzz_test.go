package ir

import "testing"

// FuzzParse exercises the textual-IR parser with mutated inputs. In normal
// `go test` runs only the seed corpus executes; `go test -fuzz=FuzzParse`
// explores further. The invariants: no panic, and any accepted program
// validates and round-trips through Disasm.
func FuzzParse(f *testing.F) {
	f.Add(buildCountdown(3).Disasm())
	f.Add(".entry main\nfunc main(params=0, regs=1):\nentry:\n\tmovi r0, 7\n\tret r0\n")
	f.Add(".global g 4\n.init 1 2 3")
	f.Add("func broken(")
	// Malformed inputs the parser must reject without panicking; the
	// testdata/fuzz/FuzzParse corpus holds more (one per rejection class).
	f.Add(".entry main\nfunc main(params=0, regs=1):\nentry:\n\tbr r0, a, b\n")
	f.Add(".entry main\nfunc main(params=0, regs=0):\nentry:\n\tret r0\n")
	f.Add("entry:\n\tret r0\n")
	f.Add(".entry main\nfunc main(params=0, regs=1):\nentry:\n\tload r0, [r9+4]\n\tret r0\n")
	f.Add(".entry main\nfunc main(params=0, regs=1):\nentry:\n\tadd r0\n\tret r0\n")
	f.Add(".init 1 2\n")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("Parse accepted an invalid program: %v", verr)
		}
		text := p.Disasm()
		q, err := Parse(text)
		if err != nil {
			t.Fatalf("accepted program does not re-parse: %v\n%s", err, text)
		}
		if q.Disasm() != text {
			t.Fatal("accepted program does not round-trip")
		}
	})
}
