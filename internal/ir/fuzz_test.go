package ir

import "testing"

// FuzzParse exercises the textual-IR parser with mutated inputs. In normal
// `go test` runs only the seed corpus executes; `go test -fuzz=FuzzParse`
// explores further. The invariants: no panic, and any accepted program
// validates and round-trips through Disasm.
func FuzzParse(f *testing.F) {
	f.Add(buildCountdown(3).Disasm())
	f.Add(".entry main\nfunc main(params=0, regs=1):\nentry:\n\tmovi r0, 7\n\tret r0\n")
	f.Add(".global g 4\n.init 1 2 3")
	f.Add("func broken(")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("Parse accepted an invalid program: %v", verr)
		}
		text := p.Disasm()
		q, err := Parse(text)
		if err != nil {
			t.Fatalf("accepted program does not re-parse: %v\n%s", err, text)
		}
		if q.Disasm() != text {
			t.Fatal("accepted program does not round-trip")
		}
	})
}
