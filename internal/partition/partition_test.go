package partition

import (
	"math"
	"testing"

	"repro/internal/cfg"
	"repro/internal/cost"
	"repro/internal/ddg"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/profiler"
)

func modelFor(t *testing.T, p *ir.Program, header string) *cost.Model {
	t.Helper()
	lp, err := interp.Load(p)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	prof, err := profiler.Collect(lp, 0)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	f := p.EntryFunc()
	g, err := cfg.Build(f)
	if err != nil {
		t.Fatalf("cfg.Build: %v", err)
	}
	forest := cfg.FindLoops(g)
	eff := ddg.ComputeEffects(p)
	for _, l := range forest.Loops {
		if f.Blocks[l.Header].Label != header {
			continue
		}
		a := ddg.Analyze(p, f, g, l, eff)
		if a == nil {
			t.Fatalf("loop %s unsupported", header)
		}
		lprof := prof.Loop(profiler.LoopKey{Func: f.Name, Header: header})
		if lprof == nil {
			t.Fatalf("loop %s not profiled", header)
		}
		return cost.NewModel(a, lprof, cost.DefaultParams())
	}
	t.Fatalf("no loop %s", header)
	return nil
}

// buildWorkLoop: k carried registers (each a cheap hoistable update), plus
// padW iteration-local filler ops and optionally a hot carried accumulator
// chain to give partitions different costs.
func buildWorkLoop(n int64, k, padW int) *ir.Program {
	b := ir.NewFuncBuilder("main", 0)
	i, c, z := b.NewReg(), b.NewReg(), b.NewReg()
	carried := make([]ir.Reg, k)
	for j := range carried {
		carried[j] = b.NewReg()
	}
	pads := make([]ir.Reg, padW)
	for j := range pads {
		pads[j] = b.NewReg()
	}
	b.Block("entry")
	b.MovI(i, n)
	b.MovI(z, 0)
	for j := range carried {
		b.MovI(carried[j], int64(j))
	}
	for j := range pads {
		b.MovI(pads[j], 0)
	}
	b.Jmp("head")
	b.Block("head")
	b.ALU(ir.CmpGT, c, i, z)
	b.Br(c, "body", "exit")
	b.Block("body")
	for j := range pads {
		b.MulI(pads[j], i, int64(j+3))
	}
	for j := range carried {
		// Use then update: read-before-write makes them violation candidates.
		b.AddI(carried[j], carried[j], int64(j+1))
	}
	b.AddI(i, i, -1)
	b.Jmp("head")
	b.Block("exit")
	b.Ret(i)
	return ir.NewProgramBuilder("main").AddFunc(b.Done()).Done()
}

func TestSearchMatchesExhaustive(t *testing.T) {
	programs := []struct {
		name   string
		p      *ir.Program
		header string
	}{
		{"small", buildWorkLoop(100, 2, 10), "head"},
		{"many-candidates", buildWorkLoop(100, 6, 30), "head"},
		{"no-pad", buildWorkLoop(50, 3, 0), "head"},
	}
	for _, tc := range programs {
		m := modelFor(t, tc.p, tc.header)
		opts := DefaultOptions()
		bb := Search(m, opts)
		ex := SearchExhaustive(m, opts)
		if math.Abs(bb.Speedup-ex.Speedup) > 1e-9 {
			t.Errorf("%s: branch-and-bound speedup %v != exhaustive %v",
				tc.name, bb.Speedup, ex.Speedup)
		}
		if bb.Explored > ex.Explored {
			t.Errorf("%s: B&B explored %d > exhaustive %d", tc.name, bb.Explored, ex.Explored)
		}
	}
}

func TestSearchPrunes(t *testing.T) {
	m := modelFor(t, buildWorkLoop(100, 8, 30), "head")
	res := Search(m, DefaultOptions())
	ex := SearchExhaustive(m, DefaultOptions())
	if res.Pruned == 0 && res.Explored == ex.Explored {
		t.Log("warning: no pruning occurred on an 8-candidate loop")
	}
	if res.Explored+res.Pruned == 0 {
		t.Error("search did nothing")
	}
	if math.Abs(res.Speedup-ex.Speedup) > 1e-9 {
		t.Errorf("pruned search lost the optimum: %v vs %v", res.Speedup, ex.Speedup)
	}
}

func TestSearchSelectsHoisting(t *testing.T) {
	m := modelFor(t, buildWorkLoop(200, 2, 40), "head")
	res := Search(m, DefaultOptions())
	if res.Speedup < 1.2 {
		t.Errorf("speedup = %v, want parallel win on a hoistable loop", res.Speedup)
	}
	if len(res.Part.Hoist) == 0 {
		t.Error("optimal partition should hoist the cheap carried updates")
	}
	if res.MissCost > 1 {
		t.Errorf("misspec cost after hoisting = %v, want ~0", res.MissCost)
	}
}

func TestSearchRespectsSizeBound(t *testing.T) {
	m := modelFor(t, buildWorkLoop(100, 4, 10), "head")
	opts := DefaultOptions()
	opts.MaxPreForkFraction = 0.01 // essentially forbid any pre-fork code
	res := Search(m, opts)
	if pre, _ := m.PreForkSize(res.Part); pre > 0.01*m.P.BodyCycles()+1 {
		t.Errorf("partition pre-fork %v exceeds bound", pre)
	}
}

func TestSearchEmptyCandidates(t *testing.T) {
	// DOALL-style loop: no carried register deps except the induction.
	b := ir.NewFuncBuilder("main", 0)
	i, c, z, g, v := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
	b.Block("entry")
	b.MovI(i, 50)
	b.MovI(z, 0)
	b.Jmp("head")
	b.Block("head")
	b.ALU(ir.CmpGT, c, i, z)
	b.Br(c, "body", "exit")
	b.Block("body")
	b.GAddr(g, "arr")
	b.ALU(ir.Add, g, g, i)
	b.MulI(v, i, 7)
	b.Store(g, 0, v)
	b.AddI(i, i, -1)
	b.Jmp("head")
	b.Block("exit")
	b.Ret(z)
	p := ir.NewProgramBuilder("main").AddFunc(b.Done()).AddGlobal("arr", 64).Done()
	m := modelFor(t, p, "head")
	res := Search(m, DefaultOptions())
	if res.Speedup <= 0 {
		t.Errorf("speedup = %v", res.Speedup)
	}
	// Only i is a candidate; the optimum hoists it.
	if !res.Part.Hoist[0] {
		t.Errorf("induction variable not hoisted: %+v", res.Part)
	}
}
