// Package partition implements the paper's optimal loop partition search
// (Section 4.2). Rather than enumerating all combinations of loop body
// statements, the search space is restricted to combinations of *violation
// candidates* (loop-carried register definitions, grouped per register),
// and it is pruned with the two monotone constraint functions the paper
// describes: the size-bounding function (the pre-fork region only grows as
// candidates are hoisted) and the cost-bounding function (the
// misspeculation cost only shrinks).
package partition

import (
	"repro/internal/cost"
	"repro/internal/ir"
)

// Options tunes the search.
type Options struct {
	// MaxPreForkFraction bounds the pre-fork region relative to the body
	// (Amdahl's law, Section 4): partitions whose pre-fork exceeds this
	// fraction of the per-iteration work are rejected.
	MaxPreForkFraction float64
	// Exhaustive disables branch-and-bound pruning (test oracle).
	Exhaustive bool
}

// DefaultOptions returns the compiler defaults.
func DefaultOptions() Options {
	return Options{MaxPreForkFraction: 0.5}
}

// Result is the outcome of the search for one loop.
type Result struct {
	Part     cost.Partition
	Speedup  float64 // estimated loop speedup of the best partition
	MissCost float64 // its misspeculation cost (Equation 1)
	PreFork  float64 // its pre-fork size in cycles
	Explored int     // partitions actually evaluated
	Pruned   int     // subtree prunes by the bounding functions
}

// Search finds the partition with the best estimated speedup for the
// loop modelled by m.
func Search(m *cost.Model, opts Options) Result {
	maxPre := opts.MaxPreForkFraction * m.P.BodyCycles()
	if maxPre <= 0 {
		maxPre = 1
	}

	// Hoistable candidates drive the combinatorial search; SVP decisions
	// are derived per partition (applied whenever the candidate register is
	// not hoisted and prediction beats the profiled change probability).
	var hoistable []ir.Reg
	for i := range m.Candidates {
		if m.Candidates[i].HoistOK() {
			hoistable = append(hoistable, m.Candidates[i].Reg)
		}
	}

	applySVP := func(p cost.Partition) cost.Partition {
		for i := range m.Candidates {
			c := &m.Candidates[i]
			if p.Hoist[c.Reg] || !c.SVPOK {
				continue
			}
			base := c.ChangeProb
			if !m.Params.ValueBasedRegCheck {
				base = c.WriteProb
			}
			if 1-c.SVPConfidence < base {
				p.SVP[c.Reg] = true
			}
		}
		return p
	}

	best := Result{Speedup: -1}
	consider := func(p cost.Partition) {
		pre, ok := m.PreForkSize(p)
		if !ok || pre > maxPre {
			return
		}
		sp, _ := m.EstimateSpeedup(p)
		best.Explored++
		if sp > best.Speedup {
			best.Speedup = sp
			best.Part = p
			best.MissCost = m.MisspecCost(p)
			best.PreFork = pre
		}
	}
	evaluate := func(p cost.Partition) {
		consider(p.Clone())           // plain hoist decision
		consider(applySVP(p.Clone())) // with derived SVP (may exceed size bound)
	}

	// Depth-first enumeration over hoist decisions with bounding.
	var dfs func(idx int, cur cost.Partition)
	dfs = func(idx int, cur cost.Partition) {
		if idx == len(hoistable) {
			evaluate(cur)
			return
		}
		if !opts.Exhaustive {
			// Size bound: the pre-fork region is monotone non-decreasing in
			// the hoist set; if the current choices already exceed the
			// limit, every completion does too.
			if pre, ok := m.PreForkSize(cur); ok && pre > maxPre {
				best.Pruned++
				return
			}
			// Cost bound: the misspeculation cost is monotone non-increasing
			// in the hoist set, so hoisting everything remaining gives a
			// lower bound; if even that cannot beat the incumbent's
			// estimated speedup, prune.
			if best.Speedup > 0 {
				all := cur.Clone()
				for _, r := range hoistable[idx:] {
					all.Hoist[r] = true
				}
				all = applySVP(all)
				lbCost := m.MisspecCost(all)
				preNow, _ := m.PreForkSize(cur)
				if ub := m.UpperBoundSpeedup(preNow, lbCost); ub <= best.Speedup {
					best.Pruned++
					return
				}
			}
		}
		r := hoistable[idx]
		cur.Hoist[r] = true
		dfs(idx+1, cur)
		delete(cur.Hoist, r)
		dfs(idx+1, cur)
	}
	dfs(0, cost.NewPartition())
	if best.Speedup < 0 {
		// No legal partition at all: fall back to the plain empty partition.
		p := cost.NewPartition()
		pre, _ := m.PreForkSize(p)
		sp, _ := m.EstimateSpeedup(p)
		best = Result{Part: p, Speedup: sp, MissCost: m.MisspecCost(p), PreFork: pre, Explored: 1}
	}
	return best
}

// SearchExhaustive is the brute-force oracle used by tests.
func SearchExhaustive(m *cost.Model, opts Options) Result {
	opts.Exhaustive = true
	return Search(m, opts)
}
