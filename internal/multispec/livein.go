package multispec

import (
	"sort"

	"repro/internal/cfg"
	"repro/internal/ddg"
	"repro/internal/ir"
)

// SlicePlan is the live-in pre-computation plan of one fork site: which
// loop-frame registers have a legal backward hoist slice (recomputed at
// thread spawn, so they can never violate) and the summed slice latency the
// spawn pays before the thread may issue. The empty plan (no coverage,
// zero cycles) degrades to plain SVP behaviour.
type SlicePlan struct {
	covered []bool // indexed by register
	Regs    int    // number of covered registers
	Cycles  int64  // spawn-time latency of executing the union slice
}

// Covers reports whether register r is recomputed by the plan's slice.
func (p *SlicePlan) Covers(r ir.Reg) bool {
	return p != nil && int(r) < len(p.covered) && p.covered[r]
}

var emptyPlan = &SlicePlan{}

// Planner derives SlicePlans from the DDG, one per (function, start block)
// fork site, caching both the per-function loop analyses and the finished
// plans. A Planner serves one engine (no locking); building it is cheap —
// all analysis is lazy, keyed by the fork sites actually reached.
type Planner struct {
	p     *ir.Program
	eff   map[string]ddg.Effects
	plans map[planKey]*SlicePlan
}

type planKey struct {
	fn    int32
	block int32
}

// NewPlanner prepares live-in planning for program p.
func NewPlanner(p *ir.Program) *Planner {
	return &Planner{p: p, plans: map[planKey]*SlicePlan{}}
}

// Plan returns the pre-computation plan for the fork site targeting the
// given block of function fn. Unsupported shapes (no analyzable loop at
// that block, malformed CFG, out-of-range indices) yield the empty plan —
// the engine then behaves exactly as in SVP mode for that site.
func (pl *Planner) Plan(fn, block int32) *SlicePlan {
	k := planKey{fn, block}
	if p, ok := pl.plans[k]; ok {
		return p
	}
	p := pl.build(fn, block)
	pl.plans[k] = p
	return p
}

func (pl *Planner) build(fn, block int32) *SlicePlan {
	if fn < 0 || int(fn) >= len(pl.p.Funcs) {
		return emptyPlan
	}
	f := pl.p.Funcs[fn]
	g, err := cfg.Build(f)
	if err != nil {
		return emptyPlan
	}
	if pl.eff == nil {
		pl.eff = ddg.ComputeEffects(pl.p)
	}
	for _, l := range cfg.FindLoops(g).Loops {
		a := ddg.Analyze(pl.p, f, g, l, pl.eff)
		if a == nil || a.StartBlock != int(block) {
			continue
		}
		return planFromAnalysis(a)
	}
	return emptyPlan
}

// planFromAnalysis covers every live-in register whose next-iteration value
// has a legal hoist slice: all of its loop-carried definitions must slice
// cleanly (ddg.SliceOf), and none may be the External pseudo-def — a value
// flowing in from outside the loop has nothing to recompute. The plan's
// latency is the union slice over all covered registers, so shared
// sub-slices are paid once, mirroring how the partition search costs the
// pre-fork region.
func planFromAnalysis(a *ddg.Analysis) *SlicePlan {
	// Deterministic register order: map iteration would reorder UnionSlices
	// input, which is order-insensitive, but keeps maxReg/coverage stable.
	regs := make([]ir.Reg, 0, len(a.LiveIn))
	for r := range a.LiveIn {
		regs = append(regs, r)
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i] < regs[j] })

	defsOf := make(map[ir.Reg][]int)
	external := make(map[ir.Reg]bool)
	for _, dep := range a.CarriedReg {
		if dep.Def == ddg.External {
			external[dep.Reg] = true
			continue
		}
		ds := defsOf[dep.Reg]
		if len(ds) == 0 || ds[len(ds)-1] != dep.Def {
			defsOf[dep.Reg] = append(ds, dep.Def)
		}
	}

	plan := &SlicePlan{}
	var allDefs []int
	for _, r := range regs {
		defs := defsOf[r]
		if len(defs) == 0 || external[r] {
			continue
		}
		if a.UnionSlices(defs) == nil {
			continue
		}
		for int(r) >= len(plan.covered) {
			plan.covered = append(plan.covered, false)
		}
		plan.covered[r] = true
		plan.Regs++
		allDefs = append(allDefs, defs...)
	}
	if plan.Regs == 0 {
		return emptyPlan
	}
	if u := a.UnionSlices(allDefs); u != nil {
		plan.Cycles = int64(u.Size)
	}
	return plan
}
