package multispec

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/ddg"
	"repro/internal/ir"
)

// sliceableLoop builds a counted loop whose carried registers are cheap
// pure updates — every live-in next-iteration value has a legal hoist
// slice. Returns the program and the loop's start block index.
func sliceableLoop(t *testing.T) (*ir.Program, int32, int) {
	t.Helper()
	b := ir.NewFuncBuilder("main", 0)
	i, c, z, acc := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
	b.Block("entry")
	b.MovI(i, 100)
	b.MovI(z, 0)
	b.MovI(acc, 0)
	b.Jmp("head")
	b.Block("head")
	b.ALU(ir.CmpGT, c, i, z)
	b.Br(c, "body", "exit")
	b.Block("body")
	b.AddI(acc, acc, 2)
	b.AddI(i, i, -1)
	b.Jmp("head")
	b.Block("exit")
	b.Ret(acc)
	p := ir.NewProgramBuilder("main").AddFunc(b.Done()).Done()

	f := p.EntryFunc()
	g, err := cfg.Build(f)
	if err != nil {
		t.Fatalf("cfg.Build: %v", err)
	}
	eff := ddg.ComputeEffects(p)
	for _, l := range cfg.FindLoops(g).Loops {
		if a := ddg.Analyze(p, f, g, l, eff); a != nil {
			return p, 0, a.StartBlock
		}
	}
	t.Fatal("no analyzable loop")
	return nil, 0, 0
}

func TestPlannerCoversCarriedRegs(t *testing.T) {
	p, fn, start := sliceableLoop(t)
	pl := NewPlanner(p)
	plan := pl.Plan(fn, int32(start))
	if plan.Regs == 0 {
		t.Fatal("no live-in covered; carried counter/accumulator should slice")
	}
	if plan.Cycles <= 0 {
		t.Fatalf("covered plan with Cycles=%d; slices have positive latency", plan.Cycles)
	}
	n := 0
	for r := 0; r < len(plan.covered)+2; r++ {
		if plan.Covers(ir.Reg(r)) {
			n++
		}
	}
	if n != plan.Regs {
		t.Fatalf("Covers count %d != Regs %d", n, plan.Regs)
	}
	if plan2 := pl.Plan(fn, int32(start)); plan2 != plan {
		t.Error("plan not cached")
	}
}

func TestPlannerUnsupportedSitesAreEmpty(t *testing.T) {
	p, fn, start := sliceableLoop(t)
	pl := NewPlanner(p)
	if got := pl.Plan(fn, int32(start+100)); got.Regs != 0 || got.Cycles != 0 {
		t.Errorf("out-of-range block planned: %+v", got)
	}
	if got := pl.Plan(99, 0); got.Regs != 0 {
		t.Errorf("out-of-range function planned: %+v", got)
	}
	if got := pl.Plan(-1, 0); got.Regs != 0 {
		t.Errorf("negative function planned: %+v", got)
	}
	if (*SlicePlan)(nil).Covers(0) {
		t.Error("nil plan covers something")
	}
}
