package multispec

import "sync/atomic"

// Counters aggregates speculation outcomes per cause across every engine in
// the process. The engine bumps them at window retirement; /metrics renders
// them as sptd_spec_commits_total / sptd_spec_squashes_total with a label
// per cause. All fields are atomics: sweeps retire windows from many
// goroutines at once. Counters never feed back into simulation results, so
// they cannot perturb determinism.
type Counters struct {
	CommitFast   atomic.Int64 // windows committed clean (fast commit)
	CommitReplay atomic.Int64 // windows committed through selective re-execution

	SquashViolation atomic.Int64 // full-squash recovery discarded a violated window
	SquashWrongPath atomic.Int64 // window truncated at a misspeculated branch
	SquashEmpty     atomic.Int64 // killed at arrival before issuing anything
	SquashLoopExit  atomic.Int64 // spt_kill retired the chain at loop exit
	SquashCascade   atomic.Int64 // successor squashed because its spawning window died
	SquashEager     atomic.Int64 // successor squashed by the eager-restart policy
}

// Global is the process-wide instance the arch engine reports into.
var Global Counters

// CounterSnapshot is a point-in-time copy of Counters, split the way the
// metrics endpoint labels them.
type CounterSnapshot struct {
	Commits  []LabeledCount
	Squashes []LabeledCount
}

// LabeledCount is one cause's running total.
type LabeledCount struct {
	Cause string
	N     int64
}

// Snapshot returns the current totals in a fixed cause order, so metric
// rendering (and tests) see a stable layout.
func (c *Counters) Snapshot() CounterSnapshot {
	return CounterSnapshot{
		Commits: []LabeledCount{
			{"fast", c.CommitFast.Load()},
			{"replay", c.CommitReplay.Load()},
		},
		Squashes: []LabeledCount{
			{"violation", c.SquashViolation.Load()},
			{"wrong_path", c.SquashWrongPath.Load()},
			{"empty", c.SquashEmpty.Load()},
			{"loop_exit", c.SquashLoopExit.Load()},
			{"cascade", c.SquashCascade.Load()},
			{"eager", c.SquashEager.Load()},
		},
	}
}
