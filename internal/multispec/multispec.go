// Package multispec generalizes the paper's one-spec-thread machine to an
// N-core CMP running a chain of speculative threads, in the spirit of the
// Prophet architecture (PAPERS.md): up to N-1 speculative threads execute
// future loop iterations concurrently, each spawned at an iteration
// boundary by its predecessor, with live-ins fed either by the fork-time
// register snapshot (SVP-style) or by executing the backward slice of each
// live-in at spawn (slice pre-computation, see livein.go).
//
// The package owns the pieces that are independent of the trace-driven
// engine in internal/arch (which imports this package, never the reverse):
//
//   - Scheduler: the spawn policy — in-order next-iteration, stride-K
//     lookahead, or eager-restart-on-violation — and the derived knobs the
//     engine consults (iteration stride, successor squashing).
//   - Chain: the inter-thread version chain. Threads are numbered in spawn
//     order and must commit in exactly that order (deterministic commit
//     arbitration); a violation squashes only the offending thread and its
//     successors, never a predecessor.
//   - Planner/SlicePlan: DDG-backed live-in pre-computation (livein.go).
//   - Counters: process-wide per-outcome commit/squash accounting
//     (counters.go), surfaced via /metrics.
package multispec

import "fmt"

// MaxCores bounds Config.Cores: beyond this the simulated commit chain
// stops resembling any buildable CMP and scan costs dominate.
const MaxCores = 64

// maxStride bounds the stride-K lookahead; larger strides never find their
// start-point inside a realistic lookahead window anyway.
const maxStride = 64

// PolicyKind selects the spec-thread scheduling policy.
type PolicyKind uint8

const (
	// SchedInOrder spawns the immediately following iteration (the paper's
	// two-core machine generalized: each window forks its successor).
	SchedInOrder PolicyKind = iota
	// SchedStride spawns the iteration K ahead of the fork point; the
	// intervening iterations run on the spawner's core. Larger windows,
	// later detection of violations.
	SchedStride
	// SchedEager is in-order spawning with eager restart: any violation in
	// a committing window squashes every in-flight successor, restarting
	// speculation from the repaired architectural state.
	SchedEager

	numPolicies // sentinel
)

// Valid reports whether k names a defined policy.
func (k PolicyKind) Valid() bool { return k < numPolicies }

// String returns the wire name of the policy.
func (k PolicyKind) String() string {
	switch k {
	case SchedInOrder:
		return "inorder"
	case SchedStride:
		return "stride"
	case SchedEager:
		return "eager"
	}
	return fmt.Sprintf("policy(%d)", uint8(k))
}

// ParsePolicy maps a wire name onto its PolicyKind. The empty string is
// the in-order default.
func ParsePolicy(s string) (PolicyKind, error) {
	switch s {
	case "", "inorder":
		return SchedInOrder, nil
	case "stride":
		return SchedStride, nil
	case "eager":
		return SchedEager, nil
	}
	return SchedInOrder, fmt.Errorf("multispec: bad policy %q (want inorder | stride | eager)", s)
}

// LiveInMode selects how a spawned thread's live-in registers are fed.
type LiveInMode uint8

const (
	// LiveInSVP uses the fork-time register snapshot; post-fork redefinition
	// is caught by the register dependence checker (the paper's model).
	LiveInSVP LiveInMode = iota
	// LiveInSlice executes the backward hoist slice of each live-in at
	// thread spawn: covered registers are recomputed and never violate, at
	// the cost of the slice's latency added to the fork overhead.
	LiveInSlice

	numLiveIn // sentinel
)

// Valid reports whether m names a defined mode.
func (m LiveInMode) Valid() bool { return m < numLiveIn }

// String returns the wire name of the mode.
func (m LiveInMode) String() string {
	switch m {
	case LiveInSVP:
		return "svp"
	case LiveInSlice:
		return "slice"
	}
	return fmt.Sprintf("livein(%d)", uint8(m))
}

// ParseLiveIn maps a wire name onto its LiveInMode. The empty string is
// the SVP default.
func ParseLiveIn(s string) (LiveInMode, error) {
	switch s {
	case "", "svp":
		return LiveInSVP, nil
	case "slice":
		return LiveInSlice, nil
	}
	return LiveInSVP, fmt.Errorf("multispec: bad live-in mode %q (want svp | slice)", s)
}

// Scheduler is the resolved spawn policy of one simulation: pure decision
// logic, no mutable state, so one value serves every window of a run.
type Scheduler struct {
	Kind    PolicyKind
	Cores   int // total cores including the main core (>= 2)
	StrideN int // normalized iteration lookahead (>= 1)
}

// NewScheduler normalizes the configured policy: zero cores mean the
// classic 2-core machine and a zero or sub-unit stride means next-iteration
// spawning. Validation of out-of-range values happens in arch.Config.
func NewScheduler(kind PolicyKind, cores, stride int) Scheduler {
	if cores <= 0 {
		cores = 2
	}
	if stride < 1 || kind != SchedStride {
		stride = 1
	}
	if stride > maxStride {
		stride = maxStride
	}
	return Scheduler{Kind: kind, Cores: cores, StrideN: stride}
}

// SpecCores returns the number of speculative cores (total minus main).
func (s Scheduler) SpecCores() int { return s.Cores - 1 }

// Stride returns how many iteration boundaries ahead a spawn targets.
func (s Scheduler) Stride() int { return s.StrideN }

// EagerSquash reports whether a violated commit squashes all successors.
func (s Scheduler) EagerSquash() bool { return s.Kind == SchedEager }

// Chain is the inter-thread version chain: every speculative thread gets a
// version number at spawn, and the arbiter admits commits strictly in
// version order. The engine keeps the thread payloads; Chain keeps only
// the order, making the arbitration invariant — the source of bit-identical
// commit behaviour across runs and replays — independently checkable.
type Chain struct {
	order []uint64 // in-flight versions, oldest first
	next  uint64
}

// Spawn registers a new thread and returns its version.
func (c *Chain) Spawn() uint64 {
	v := c.next
	c.next++
	c.order = append(c.order, v)
	return v
}

// Len returns the number of in-flight versions.
func (c *Chain) Len() int { return len(c.order) }

// Commit retires version v. It must be the oldest in-flight version: a
// younger thread can never commit past its predecessor.
func (c *Chain) Commit(v uint64) error {
	if len(c.order) == 0 || c.order[0] != v {
		return fmt.Errorf("multispec: out-of-order commit of version %d (chain %v)", v, c.order)
	}
	c.order = append(c.order[:0], c.order[1:]...)
	return nil
}

// Squash drops version v and every successor, returning how many versions
// (including v) were removed. Squashing an unknown version is a no-op.
func (c *Chain) Squash(v uint64) int {
	for i, o := range c.order {
		if o == v {
			n := len(c.order) - i
			c.order = c.order[:i]
			return n
		}
	}
	return 0
}

// Reset drops every in-flight version (loop exit kills the whole chain).
func (c *Chain) Reset() { c.order = c.order[:0] }
