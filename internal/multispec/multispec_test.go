package multispec

import "testing"

func TestPolicyParseRoundTrip(t *testing.T) {
	for _, k := range []PolicyKind{SchedInOrder, SchedStride, SchedEager} {
		if !k.Valid() {
			t.Errorf("%v not valid", k)
		}
		got, err := ParsePolicy(k.String())
		if err != nil || got != k {
			t.Errorf("ParsePolicy(%q) = %v, %v", k.String(), got, err)
		}
	}
	if k, err := ParsePolicy(""); err != nil || k != SchedInOrder {
		t.Errorf("empty policy = %v, %v; want inorder", k, err)
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("bogus policy accepted")
	}
	if PolicyKind(99).Valid() {
		t.Error("PolicyKind(99) reported valid")
	}
}

func TestLiveInParseRoundTrip(t *testing.T) {
	for _, m := range []LiveInMode{LiveInSVP, LiveInSlice} {
		got, err := ParseLiveIn(m.String())
		if err != nil || got != m {
			t.Errorf("ParseLiveIn(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseLiveIn("psychic"); err == nil {
		t.Error("bad live-in mode accepted")
	}
}

func TestSchedulerNormalization(t *testing.T) {
	s := NewScheduler(SchedInOrder, 0, 7)
	if s.Cores != 2 || s.SpecCores() != 1 {
		t.Errorf("zero cores normalized to %d", s.Cores)
	}
	if s.Stride() != 1 {
		t.Errorf("in-order stride = %d, want 1 (stride only applies to SchedStride)", s.Stride())
	}
	if s.EagerSquash() {
		t.Error("in-order must not eager-squash")
	}
	s = NewScheduler(SchedStride, 4, 3)
	if s.Stride() != 3 {
		t.Errorf("stride = %d, want 3", s.Stride())
	}
	s = NewScheduler(SchedStride, 4, 0)
	if s.Stride() != 1 {
		t.Errorf("zero stride normalized to %d, want 1", s.Stride())
	}
	s = NewScheduler(SchedStride, 4, maxStride+100)
	if s.Stride() != maxStride {
		t.Errorf("oversized stride clamped to %d, want %d", s.Stride(), maxStride)
	}
	if !NewScheduler(SchedEager, 8, 0).EagerSquash() {
		t.Error("eager policy must eager-squash")
	}
}

func TestChainCommitArbitration(t *testing.T) {
	var c Chain
	a := c.Spawn()
	b := c.Spawn()
	d := c.Spawn()
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	// A younger thread must not commit past its predecessor.
	if err := c.Commit(b); err == nil {
		t.Fatal("out-of-order commit admitted")
	}
	if err := c.Commit(a); err != nil {
		t.Fatalf("in-order commit rejected: %v", err)
	}
	// Squash drops the version and its successors, never predecessors.
	if n := c.Squash(d); n != 1 {
		t.Fatalf("Squash(%d) removed %d, want 1", d, n)
	}
	if n := c.Squash(d); n != 0 {
		t.Fatalf("re-squash removed %d, want 0", n)
	}
	if err := c.Commit(b); err != nil {
		t.Fatalf("commit after squash: %v", err)
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d after draining", c.Len())
	}
}

func TestChainSquashCascade(t *testing.T) {
	var c Chain
	c.Spawn()
	b := c.Spawn()
	c.Spawn()
	c.Spawn()
	if n := c.Squash(b); n != 3 {
		t.Fatalf("Squash removed %d, want 3 (the version and both successors)", n)
	}
	if c.Len() != 1 {
		t.Fatalf("predecessor squashed too: len %d", c.Len())
	}
	c.Reset()
	if c.Len() != 0 {
		t.Fatal("Reset left versions in flight")
	}
}

func TestCountersSnapshotStableOrder(t *testing.T) {
	var c Counters
	c.CommitFast.Add(3)
	c.SquashEager.Add(2)
	s := c.Snapshot()
	if len(s.Commits) != 2 || len(s.Squashes) != 6 {
		t.Fatalf("snapshot shape %d/%d", len(s.Commits), len(s.Squashes))
	}
	if s.Commits[0].Cause != "fast" || s.Commits[0].N != 3 {
		t.Errorf("commits[0] = %+v", s.Commits[0])
	}
	if s.Squashes[5].Cause != "eager" || s.Squashes[5].N != 2 {
		t.Errorf("squashes[5] = %+v", s.Squashes[5])
	}
}
