package harness

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/artifact"
	"repro/internal/nativecap"
)

// TestSweepSurvivesBrokenNativeCapturer: a capturer that can never build a
// module (its toolchain path does not exist) must be invisible to sweep
// results — every capture silently falls back to the interpreter, the rows
// match a sweep with no capturer at all, and no job fails.
func TestSweepSurvivesBrokenNativeCapturer(t *testing.T) {
	const name, scale = "mcf", 1
	variants := RecoveryVariants()

	want, err := Sweep(context.Background(), name, scale, variants,
		GuardOptions{Artifacts: &artifact.Cache{}})
	if err != nil {
		t.Fatalf("reference sweep: %v", err)
	}

	nc, err := nativecap.New(nativecap.Options{
		Dir:    t.TempDir(),
		GoTool: filepath.Join(t.TempDir(), "missing-go"),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer nc.Close()

	got, err := Sweep(context.Background(), name, scale, variants,
		GuardOptions{Artifacts: &artifact.Cache{}, Native: nc})
	if err != nil {
		t.Fatalf("sweep with broken capturer: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("rows diverge under broken capturer:\ngot  %+v\nwant %+v", got, want)
	}

	st := nc.Stats()
	if st.Native != 0 {
		t.Fatalf("broken capturer claims %d native captures", st.Native)
	}
	if st.FallbackNoToolchain == 0 {
		t.Fatalf("capturer was never consulted: %+v", st)
	}
}
