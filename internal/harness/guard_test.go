package harness

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/bench"
	"repro/internal/guard"
	"repro/internal/interp"
)

// TestStepLimitThroughRunBenchmark: a step budget on the machine
// configuration surfaces as interp.ErrStepLimit through the whole
// harness pipeline, not as a hang or a panic.
func TestStepLimitThroughRunBenchmark(t *testing.T) {
	cfg := arch.DefaultConfig()
	cfg.StepLimit = 100
	_, err := RunBenchmark("parser", 1, cfg)
	if err == nil {
		t.Fatal("expected step-limit error")
	}
	if !errors.Is(err, interp.ErrStepLimit) {
		t.Fatalf("err = %v, want interp.ErrStepLimit", err)
	}
	if !guard.Exceeded(err) {
		t.Fatalf("Exceeded(%v) = false, want true", err)
	}
}

// TestSpeedupNilSafe: incomplete runs report a neutral speedup instead of
// dereferencing nil stats.
func TestSpeedupNilSafe(t *testing.T) {
	var nilRun *BenchRun
	for name, r := range map[string]*BenchRun{
		"nil run":     nilRun,
		"empty":       {},
		"no baseline": {SPT: &arch.RunStats{Cycles: 10}},
		"no spt":      {Baseline: &arch.RunStats{Cycles: 10}},
		"zero cycles": {Baseline: &arch.RunStats{Cycles: 10}, SPT: &arch.RunStats{}},
	} {
		if sp := r.Speedup(); sp != 1 {
			t.Errorf("%s: Speedup() = %v, want 1", name, sp)
		}
	}
}

// TestRunAllGuardedOneFailure is the acceptance criterion for graceful
// degradation: force one benchmark onto an impossible budget and the other
// nine must still complete, with the failure recorded as a structured
// StageError rather than taking down the suite.
func TestRunAllGuardedOneFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation")
	}
	names := bench.Names()
	victim := names[0]
	opts := GuardOptions{
		Perturb: func(name string, cfg arch.Config) arch.Config {
			if name == victim {
				cfg.StepLimit = 100
			}
			return cfg
		},
	}
	rep := RunAllGuarded(context.Background(), 1, arch.DefaultConfig(), opts)
	if len(rep.Failures) != 1 {
		t.Fatalf("failures = %d, want 1: %v", len(rep.Failures), rep.Failures)
	}
	se := rep.Failures[0]
	if se.Benchmark != victim {
		t.Errorf("failed benchmark = %q, want %q", se.Benchmark, victim)
	}
	if se.Panicked {
		t.Errorf("budget exhaustion reported as panic:\n%s", se.Stack)
	}
	if !guard.Exceeded(se) {
		t.Errorf("failure not classified as budget exhaustion: %v", se)
	}
	if got := len(rep.Successes()); got != len(names)-1 {
		t.Fatalf("successes = %d, want %d", got, len(names)-1)
	}
	for i, run := range rep.Runs {
		if names[i] == victim {
			if run != nil {
				t.Errorf("victim has a run: %+v", run)
			}
			continue
		}
		if run == nil || run.Baseline == nil || run.SPT == nil {
			t.Errorf("%s: incomplete run despite healthy config", names[i])
		}
	}
}

// TestRetryAtReducedScale: a step budget that only the smaller workload
// fits within triggers the rerun-at-halved-scale policy, and the degraded
// run records the scale it actually completed at.
func TestRetryAtReducedScale(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scale evaluation")
	}
	r1 := runBench(t, "mcf", 1)
	r2 := runBench(t, "mcf", 2)
	lo := r1.Baseline.Instrs
	if r1.SPT.Instrs > lo {
		lo = r1.SPT.Instrs
	}
	hi := r2.Baseline.Instrs
	if r2.SPT.Instrs < hi {
		hi = r2.SPT.Instrs
	}
	if hi <= lo+1 {
		t.Fatalf("no budget separates scale 1 (%d instrs) from scale 2 (%d)", lo, hi)
	}
	opts := GuardOptions{Budget: guard.Budget{Steps: (lo + hi) / 2, Retries: 1}}
	run, err := RunBenchmarkGuarded(context.Background(), "mcf", 2, arch.DefaultConfig(), opts)
	if err != nil {
		t.Fatalf("guarded run failed despite retry budget: %v", err)
	}
	if run.RetriedScale != 1 {
		t.Errorf("RetriedScale = %d, want 1", run.RetriedScale)
	}
	// Without the retry allowance the same budget is a hard failure.
	opts.Budget.Retries = 0
	_, err = RunBenchmarkGuarded(context.Background(), "mcf", 2, arch.DefaultConfig(), opts)
	if err == nil || !guard.Exceeded(err) {
		t.Fatalf("err = %v, want budget exhaustion", err)
	}
}

// TestStageDeadline: an unmeetable wall-clock budget aborts in the first
// stage with a structured, budget-classified error — no hang.
func TestStageDeadline(t *testing.T) {
	opts := GuardOptions{Budget: guard.Budget{Timeout: time.Nanosecond}}
	_, err := RunBenchmarkGuarded(context.Background(), "parser", 1, arch.DefaultConfig(), opts)
	if err == nil {
		t.Fatal("expected deadline error")
	}
	var se *guard.StageError
	if !errors.As(err, &se) {
		t.Fatalf("unstructured error: %v", err)
	}
	if !guard.Exceeded(err) {
		t.Fatalf("deadline not classified as budget exhaustion: %v", err)
	}
}

// TestRunAllPartialResults: the legacy RunAll entry point preserves
// completed runs alongside the first failure.
func TestRunAllPartialResults(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation")
	}
	cfg := arch.DefaultConfig()
	cfg.StepLimit = 100 // every benchmark exceeds this
	runs, err := RunAll(1, cfg)
	if err == nil {
		t.Fatal("expected failure")
	}
	if !guard.Exceeded(err) {
		t.Fatalf("err = %v, want budget exhaustion", err)
	}
	if len(runs) != len(bench.Names()) {
		t.Fatalf("runs = %d, want full-length slice", len(runs))
	}
}
