package harness

// Property test for the record-once/replay-many contract at the harness
// level: for every configuration in the ablation variant families, the
// cached pipeline (one interpretation, replayed per config) must produce
// bit-identical statistics to the fused uncached pipeline.

import (
	"reflect"
	"testing"

	"repro/internal/artifact"
)

func TestReplayDeterminismAcrossVariants(t *testing.T) {
	families := []struct {
		name     string
		variants []Variant
	}{
		{"recovery", RecoveryVariants()},
		{"regcheck", RegCheckVariants()},
		{"srb", SRBVariants([]int{16, 64, 256, 1024})},
		{"cores", CoresVariants([]int{2, 4, 8})},
		{"sched", SchedVariants(4, []int{2})},
		{"livein", LiveInVariants(4)},
	}
	const benchName, scale = "parser", 1
	cache := &artifact.Cache{}
	for _, fam := range families {
		for _, v := range fam.variants {
			t.Run(fam.name+"/"+v.Label, func(t *testing.T) {
				want, err := RunBenchmark(benchName, scale, v.Config) // fused, uncached
				if err != nil {
					t.Fatalf("fused: %v", err)
				}
				got, err := RunBenchmarkCached(benchName, scale, v.Config, cache) // recorded + replayed
				if err != nil {
					t.Fatalf("replayed: %v", err)
				}
				if !reflect.DeepEqual(got.Baseline, want.Baseline) {
					t.Error("baseline stats diverge between fused and replayed runs")
				}
				if !reflect.DeepEqual(got.SPT, want.SPT) {
					t.Error("SPT stats diverge between fused and replayed runs")
				}
				if got.Speedup() != want.Speedup() {
					t.Errorf("speedup %v != %v", got.Speedup(), want.Speedup())
				}
			})
		}
	}
	if st := cache.Stats(); st.RecordingMisses == 0 || st.RecordingHits == 0 {
		t.Fatalf("replay path did not engage: %+v", st)
	}
}
