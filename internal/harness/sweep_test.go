package harness

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/artifact"
)

// sweepVariants is a mixed ablation: recovery kinds, SRB sizes and fork
// overheads. Several variants resolve to the same machine configuration
// (SRB=1024 and RFcopy=1 are the defaults), which is exactly what the
// artifact cache is supposed to exploit.
func sweepVariants() []Variant {
	vs := RecoveryVariants()
	vs = append(vs, SRBVariants([]int{16, 1024})...)
	vs = append(vs, OverheadVariants([]int{1, 4})...)
	return vs
}

// TestSweepDeterminism is the PR's acceptance gate: a parallel, fully
// cached Sweep must be indistinguishable — row ordering, speedups, and the
// complete simulation statistics — from a sequential uncached evaluation.
func TestSweepDeterminism(t *testing.T) {
	const name, scale = "parser", 1
	variants := sweepVariants()

	// Sequential, uncached reference.
	var wantRows []AblationRow
	wantRuns := make([]*BenchRun, len(variants))
	for i, v := range variants {
		run, err := RunBenchmark(name, scale, v.Config)
		if err != nil {
			t.Fatalf("sequential %s: %v", v.Label, err)
		}
		wantRuns[i] = run
		wantRows = append(wantRows, AblationRow{Name: name, Variant: v.Label, Speedup: run.Speedup()})
	}

	// Parallel, cached sweep — twice, so both the cold (computing) and the
	// warm (fully cached) paths are exercised.
	passes0, batched0 := BroadcastStats()
	cache := &artifact.Cache{}
	opts := GuardOptions{Artifacts: cache}
	for pass := 0; pass < 2; pass++ {
		got, err := Sweep(context.Background(), name, scale, variants, opts)
		if err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		if !reflect.DeepEqual(got, wantRows) {
			t.Fatalf("pass %d rows diverge from sequential run:\ngot  %+v\nwant %+v", pass, got, wantRows)
		}
	}

	// The complete per-variant statistics — cycle counts, breakdowns,
	// per-loop attribution — must match the uncached pipeline, not just the
	// headline speedups.
	for i, v := range variants {
		run, err := RunBenchmarkCached(name, scale, v.Config, cache)
		if err != nil {
			t.Fatalf("cached %s: %v", v.Label, err)
		}
		if !reflect.DeepEqual(run.Baseline, wantRuns[i].Baseline) {
			t.Errorf("%s: cached baseline stats diverge", v.Label)
		}
		if !reflect.DeepEqual(run.SPT, wantRuns[i].SPT) {
			t.Errorf("%s: cached SPT stats diverge", v.Label)
		}
	}

	st := cache.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Errorf("cache did not engage: %+v", st)
	}
	// Six variants share one program, one compile, one baseline; three of
	// them are the default configuration. The cache must have collapsed the
	// duplicates: at most program+compile+baseline+4 distinct SPT sims,
	// plus the two shared trace recordings (baseline program + SPT program)
	// every simulation replays from.
	if st.Entries > 9 {
		t.Errorf("cache holds %d entries; duplicate work was not collapsed", st.Entries)
	}
	if st.RecordingMisses != 2 {
		t.Errorf("sweep interpreted %d traces; want exactly 2 (baseline + SPT program)", st.RecordingMisses)
	}
	// The six same-step-limit variants form one broadcast batch, whose two
	// stages each pin their recording once and decode it in a single shared
	// pass: one pass feeds the (deduplicated) baseline engine, the other the
	// four distinct SPT engines. The warm pass is answered entirely from the
	// cache and broadcasts nothing.
	passes, batched := BroadcastStats()
	if got := passes - passes0; got != 2 {
		t.Errorf("broadcast passes = %d; want 2 (one per batch stage, cold pass only)", got)
	}
	if got := batched - batched0; got != 5 {
		t.Errorf("batched variants = %d; want 5 (1 baseline + 4 distinct SPT engines)", got)
	}
}

// TestSweepPartialRows: a failing variant does not abort its batch
// siblings — the ok row keeps its speedup, the broken row carries its own
// error, and the sweep error joins the per-variant failures.
func TestSweepPartialRows(t *testing.T) {
	bad := arch.DefaultConfig()
	bad.SRBSize = 0 // fails Validate inside the simulator stage
	variants := []Variant{
		{Label: "ok", Config: arch.DefaultConfig()},
		{Label: "broken", Config: bad},
	}
	rows, err := Sweep(context.Background(), "mcf", 1, variants, GuardOptions{})
	if err == nil {
		t.Fatal("broken variant did not surface an error")
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %+v; want one row per variant", rows)
	}
	if rows[0].Variant != "ok" || rows[0].Err != nil || rows[0].Speedup <= 0 {
		t.Fatalf("ok row = %+v; want a surviving speedup with no error", rows[0])
	}
	if rows[1].Variant != "broken" || rows[1].Err == nil || rows[1].Speedup != 0 {
		t.Fatalf("broken row = %+v; want a zero-speedup row carrying the error", rows[1])
	}
	var zero []Variant
	if rows, err := Sweep(context.Background(), "mcf", 1, zero, GuardOptions{}); err != nil || len(rows) != 0 {
		t.Fatalf("empty sweep: rows=%v err=%v", rows, err)
	}
}

// TestSweepUnknownBenchmark: every variant fails; every row carries the
// compile error, and the sweep error is non-nil.
func TestSweepUnknownBenchmark(t *testing.T) {
	rows, err := Sweep(context.Background(), "nosuch", 1, RecoveryVariants(), GuardOptions{})
	if err == nil || len(rows) != 2 {
		t.Fatalf("rows=%v err=%v; want one errored row per variant and an error", rows, err)
	}
	for _, r := range rows {
		if r.Err == nil || r.Speedup != 0 {
			t.Fatalf("row %+v; want a zero-speedup row carrying the compile error", r)
		}
	}
}

// TestLoopCoverageCached: the cached curve matches the direct one and the
// second query is served from the cache.
func TestLoopCoverageCached(t *testing.T) {
	want, err := LoopCoverage("mcf", 1)
	if err != nil {
		t.Fatal(err)
	}
	cache := &artifact.Cache{}
	for pass := 0; pass < 2; pass++ {
		got, err := LoopCoverageCached("mcf", 1, cache)
		if err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("pass %d: cached coverage diverges", pass)
		}
	}
	if st := cache.Stats(); st.Hits == 0 {
		t.Errorf("second coverage query missed the cache: %+v", st)
	}

	if _, err := LoopCoverageCached("nosuch", 1, cache); err == nil {
		t.Error("unknown benchmark accepted")
	}
	// The failed build must not poison the cache.
	if _, err := LoopCoverageCached("nosuch", 1, cache); err == nil {
		t.Error("unknown benchmark accepted on retry")
	}
}
